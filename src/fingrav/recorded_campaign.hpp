#ifndef FINGRAV_FINGRAV_RECORDED_CAMPAIGN_HPP_
#define FINGRAV_FINGRAV_RECORDED_CAMPAIGN_HPP_

/**
 * @file
 * Cross-campaign run reuse for sweep studies.
 *
 * Window/margin/sync-mode sweeps (bench_ablation, the Section VI external
 * logger discussion) used to re-execute the *same* simulated runs once
 * per sweep point — the simulation dominated the cost while only the
 * stitch-time parameters varied.  RecordedCampaign executes the campaign
 * once and captures everything a restitch needs:
 *
 *  - every executed run up to the maximum top-up budget (replaying a
 *    smaller budget is exact: run execution never depends on how many
 *    runs follow, so a shorter campaign is a prefix of a longer one);
 *  - the calibrated TimeSync in all three variants a sweep can request
 *    (full S2, delay-blind Lang-style, and drift-compensated);
 *  - a *multi-window* power log per run: the primary logger plus any
 *    number of extra windows capture the same execution simultaneously
 *    (RunPlan::extra_windows), so a logger-window sweep re-reads the
 *    recorded samples of each window instead of re-simulating — one
 *    execution observed at several averaging granularities, the setup a
 *    real node runs when amd-smi polls next to the on-GPU logger;
 *  - per-window SSE/SSP execution indices, derived at record time with
 *    the same formula + stabilization scan the Profiler applies.
 *
 * restitch(SweepPoint) then replays steps 6-9 (golden selection, LOI/TOI
 * alignment, stitching, and the step-8 top-up decision loop) from the
 * recorded pool through the incremental ProfileStitcher.  Because the
 * recording pipeline is deterministic, a restitch is bit-identical to
 * re-executing the recorded plan from scratch and stitching at that
 * sweep point — the property bench_campaign hard-fails on.
 */

#include <cstdint>
#include <optional>
#include <vector>

#include "fingrav/campaign_runner.hpp"
#include "fingrav/profiler.hpp"
#include "fingrav/run_executor.hpp"
#include "fingrav/time_sync.hpp"
#include "sim/machine_config.hpp"
#include "support/time_types.hpp"

namespace fingrav::core {

/** One stitch-time parameter point of a sweep study. */
struct SweepPoint {
    /**
     * Run-budget prefix: stitch exactly min(runs, recorded) runs and skip
     * the top-up loop (the #runs sweep).  Unset = the recorded base
     * budget plus the step-8 top-up decision replayed from the pool.
     */
    std::optional<std::size_t> runs;
    /** Binning-margin override (the margin sweep). */
    std::optional<double> margin;
    /** Binning on/off override. */
    std::optional<bool> binning;
    /** Timestamp-mapping mode (the sync-mode sweep). */
    std::optional<SyncMode> sync_mode;
    /** Section VI outlier profiling: target execution-time bin. */
    std::optional<support::Duration> target_bin;
    /** Which recorded window to stitch (0 = primary). */
    std::size_t window_index = 0;
};

/**
 * Outcome of guidance-table autotuning (ROADMAP): the run budget a
 * campaign *actually* needed to meet its LOI target, derived by
 * replaying run-pool prefixes, vs Table I's static recommendation.
 */
struct AutotuneResult {
    /** The LOI target replayed against (the guidance target unless the
     *  caller overrode it). */
    std::size_t loi_target = 0;
    /** Smallest run-pool prefix whose stitched SSP met the target; the
     *  full pool size when the target was never met. */
    std::size_t runs_needed = 0;
    /** True when some prefix met the target within the recorded pool. */
    bool target_met = false;
    /** Table I's static #runs recommendation (the recorded base budget,
     *  including any runs_override). */
    std::size_t recommended_runs = 0;
    /** Runs available in the recorded pool (the max top-up budget). */
    std::size_t pool_runs = 0;
    /** SSP-LOI yield at runs_needed (>= 1.0 when the target was met). */
    double achieved_yield = 0.0;
    /** The recorded window the replay stitched (0 = primary). */
    std::size_t window_index = 0;

    /** Runs saved (+) or missing (-) vs the static recommendation. */
    std::int64_t
    budgetDelta() const
    {
        return static_cast<std::int64_t>(recommended_runs) -
               static_cast<std::int64_t>(runs_needed);
    }
};

/** One executed campaign captured for stitch-time replay. */
class RecordedCampaign {
  public:
    /**
     * Execute `spec` once on a fresh node, capturing the run pool at the
     * maximum top-up budget with loggers at the primary window plus
     * `extra_windows` (all distinct).  The scenario's background loads
     * run while the pool is recorded, so contended-phase campaigns sweep
     * like isolated ones; each captured run carries its contention
     * intervals and restitches annotate LOIs from them.
     */
    static RecordedCampaign record(
        const ScenarioSpec& spec,
        const std::vector<support::Duration>& extra_windows = {},
        const sim::MachineConfig& cfg = sim::mi300xConfig());

    /** Legacy overload: lifts the campaign description into a scenario. */
    static RecordedCampaign record(
        const CampaignSpec& spec,
        const std::vector<support::Duration>& extra_windows = {},
        const sim::MachineConfig& cfg = sim::mi300xConfig());

    /** Replay steps 6-9 at one sweep point; defaults reproduce the
     *  recorded campaign's own parameters. */
    ProfileSet restitch(const SweepPoint& point = {}) const;

    /**
     * Guidance-table autotuning (ROADMAP): replay run-pool prefixes
     * through the incremental stitcher, growing the budget one run at a
     * time until the stitched SSP meets `loi_target`, and report the
     * budget actually needed next to Table I's static recommendation.
     * The replay is stitch-time only — no re-simulation — so tuning is
     * as cheap as one restitch pass over the pool.
     *
     * @param loi_target    Target SSP-LOI count; 0 = the guidance
     *                      table's own recommendation for this kernel.
     * @param window_index  Recorded window to stitch (0 = primary).
     */
    AutotuneResult autotuneBudget(std::size_t loi_target = 0,
                                  std::size_t window_index = 0) const;

    /** Recorded windows; [0] is the primary. */
    const std::vector<support::Duration>& windows() const
    {
        return windows_;
    }

    /** Executed runs in the pool (the maximum top-up budget). */
    std::size_t runCount() const { return window_runs_.front().size(); }

    /** Base (pre-top-up) run budget of the recorded options. */
    std::size_t baseRuns() const { return base_runs_; }

    /** Step-1 measured execution time. */
    support::Duration measuredExecTime() const
    {
        return measured_exec_time_;
    }

    /** The spec as recorded. */
    const ScenarioSpec& spec() const { return spec_; }

  private:
    RecordedCampaign() = default;

    ScenarioSpec spec_;
    support::Duration measured_exec_time_;
    GuidanceEntry guidance_;
    support::Duration tick_;
    std::size_t base_runs_ = 0;
    std::size_t execs_per_run_ = 0;
    std::vector<support::Duration> windows_;
    std::vector<std::size_t> ssp_exec_index_;  ///< per window
    /** Per window: the full run pool with that window's samples. */
    std::vector<std::vector<RunRecord>> window_runs_;
    std::optional<TimeSync> sync_;          ///< full S2 calibration
    std::optional<TimeSync> nodelay_sync_;  ///< Lang-style, delay-blind
    std::optional<TimeSync> drift_sync_;    ///< + post-campaign drift anchor
};

}  // namespace fingrav::core

#endif  // FINGRAV_FINGRAV_RECORDED_CAMPAIGN_HPP_

#ifndef FINGRAV_FINGRAV_DIFFERENTIATION_HPP_
#define FINGRAV_FINGRAV_DIFFERENTIATION_HPP_

/**
 * @file
 * Power-profile differentiation (paper tenet S4, steps 3-4).
 *
 * Two distinct profiles exist for the same kernel:
 *
 *  - SSE (steady-state execution): the first execution after the warm-up
 *    executions, once *execution time* has stabilized (typically three
 *    warm-ups).  This is "the power profile a typical user associates with
 *    a kernel" — and it can be badly wrong, because the logger's averaging
 *    window is still mostly filled with pre-kernel (idle or throttled)
 *    power.
 *
 *  - SSP (steady-state power): the execution after which *reported power*
 *    stops changing: the averaging window has filled with kernel activity
 *    and the power-management transient has settled.  The paper's step-4
 *    rule is max(ceil(window / exec_time), SSE executions); its caveat
 *    ("should throttling incur during warmup runs... binary search can be
 *    necessary") is implemented here as a stabilization scan over an
 *    exploratory run's sample series.
 *
 * Comparing the two quantifies the power/energy measurement error of naive
 * profiling — up to 80 % in the paper, reproduced by bench_fig8.
 */

#include <cstddef>
#include <vector>

#include "support/time_types.hpp"

namespace fingrav::core {

/** S4 rules: SSP execution-count formula + stabilization detection. */
class ProfileDifferentiator {
  public:
    /**
     * @param sse_executions   Executions per run for the SSE profile
     *                         (paper: 4 — three warm-ups plus the SSE).
     * @param stability_eps    Relative power-band width considered stable.
     */
    explicit ProfileDifferentiator(std::size_t sse_executions = 4,
                                   double stability_eps = 0.03);

    /**
     * Paper step-4 formula: executions needed so the averaging window fills
     * with kernel activity: max(ceil(window / exec_time), SSE executions).
     */
    std::size_t sspExecutionFormula(support::Duration exec_time,
                                    support::Duration window) const;

    /**
     * Stabilization scan (the step-4 throttling caveat): given the
     * per-sample power series of one exploratory run, find the first index
     * from which the series stays within a relative band of its trailing
     * mean.
     *
     * @param series  Window-average total power per logger sample.
     * @return Index of the first stable sample, or series.size() when the
     *         series never stabilizes.
     */
    std::size_t detectStabilization(const std::vector<double>& series) const;

    /** SSE executions per run. */
    std::size_t sseExecutions() const { return sse_executions_; }

    /** Stability band width. */
    double stabilityEps() const { return stability_eps_; }

  private:
    std::size_t sse_executions_;
    double stability_eps_;
};

}  // namespace fingrav::core

#endif  // FINGRAV_FINGRAV_DIFFERENTIATION_HPP_

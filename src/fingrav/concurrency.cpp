#include "fingrav/concurrency.hpp"

#include <algorithm>
#include <cmath>
#include <utility>

#include "support/logging.hpp"
#include "support/time_types.hpp"

namespace fingrav::core {

ConcurrencyAdvisor::ConcurrencyAdvisor(runtime::HostRuntime& host,
                                       support::Rng rng)
    : host_(host), rng_(std::move(rng))
{
}

double
ConcurrencyAdvisor::complementarity(const kernels::KernelModel& a,
                                    const kernels::KernelModel& b)
{
    const auto ua = a.workAt(1.0).util;
    const auto ub = b.workAt(1.0).util;
    // Fuzzy-Jaccard overlap of the demand vectors: sum of per-dimension
    // minima over sum of maxima.  Unlike cosine similarity this weighs
    // *magnitudes*, so a tiny demand aligned with a big one still counts
    // as complementary (contention is about capacity, not direction).
    const double dims_a[4] = {ua.xcd_issue, ua.llc_bw, ua.hbm_bw,
                              ua.fabric_bw};
    const double dims_b[4] = {ub.xcd_issue, ub.llc_bw, ub.hbm_bw,
                              ub.fabric_bw};
    double mins = 0.0;
    double maxs = 0.0;
    for (int i = 0; i < 4; ++i) {
        mins += std::min(dims_a[i], dims_b[i]);
        maxs += std::max(dims_a[i], dims_b[i]);
    }
    if (maxs == 0.0)
        return 1.0;
    return 1.0 - mins / maxs;
}

void
ConcurrencyAdvisor::runSchedule(const kernels::KernelModelPtr& a,
                                const kernels::KernelModelPtr& b,
                                int iters, int a_per_iter, int b_per_iter,
                                bool concurrent, double* wall_ms,
                                double* avg_w, double* peak_w,
                                double* energy_j)
{
    // Cool down so both schedules start from comparable thermal/governor
    // state.
    host_.sleep(support::Duration::millis(200.0));

    host_.startPowerLog();
    // The logger in effect may predate this advisor with a non-default
    // window; energy integration below must use the actual window.
    const auto window = host_.powerLogWindow();
    host_.sleep(window);
    const auto t0 = host_.cpuNowNs();
    for (int i = 0; i < iters; ++i) {
        const double warmth = std::min(1.0, i / 3.0);
        for (int k = 0; k < a_per_iter; ++k)
            host_.launch(a->workAt(warmth), 0, /*queue=*/0);
        for (int k = 0; k < b_per_iter; ++k)
            host_.launch(b->workAt(warmth), 0, concurrent ? 1 : 0);
        host_.synchronize();
    }
    const auto t1 = host_.cpuNowNs();
    host_.sleep(window + support::Duration::micros(50.0));
    const auto samples = host_.stopPowerLog();

    *wall_ms = static_cast<double>(t1 - t0) / 1e6;
    *energy_j = 0.0;
    *peak_w = 0.0;
    double busy = 0.0;
    std::size_t busy_n = 0;
    const double idle_threshold = 150.0;
    const double window_s = window.toSeconds();
    for (const auto& s : samples) {
        *energy_j += s.total_w * window_s;
        *peak_w = std::max(*peak_w, s.total_w);
        if (s.total_w > idle_threshold) {
            busy += s.total_w;
            ++busy_n;
        }
    }
    *avg_w = busy_n ? busy / static_cast<double>(busy_n) : 0.0;
}

CoScheduleReport
ConcurrencyAdvisor::evaluate(const kernels::KernelModelPtr& a,
                             const kernels::KernelModelPtr& b, int iters,
                             int a_per_iter, int b_per_iter)
{
    if (!a || !b)
        support::fatal("ConcurrencyAdvisor: null kernel");
    if (iters < 1 || a_per_iter < 1 || b_per_iter < 1)
        support::fatal("ConcurrencyAdvisor: counts must be >= 1");
    if (a->isCollective() || b->isCollective())
        support::fatal("ConcurrencyAdvisor: collectives not supported "
                       "(they occupy every GPU of the node)");

    CoScheduleReport rep;
    rep.kernel_a = a->label();
    rep.kernel_b = b->label();
    rep.complementarity = complementarity(*a, *b);

    double peak_serial = 0.0;
    runSchedule(a, b, iters, a_per_iter, b_per_iter, /*concurrent=*/false,
                &rep.serial_ms, &rep.serial_avg_w, &peak_serial,
                &rep.serial_energy_j);
    runSchedule(a, b, iters, a_per_iter, b_per_iter, /*concurrent=*/true,
                &rep.concurrent_ms, &rep.concurrent_avg_w, &rep.peak_w,
                &rep.concurrent_energy_j);
    rep.speedup =
        rep.concurrent_ms > 0.0 ? rep.serial_ms / rep.concurrent_ms : 0.0;
    return rep;
}

}  // namespace fingrav::core

#include "fingrav/execution_backend.hpp"

#include <algorithm>
#include <mutex>
#include <thread>
#include <utility>

#include "fingrav/campaign_cache.hpp"
#include "fingrav/campaign_runner.hpp"
#include "support/logging.hpp"
#include "support/thread_pool.hpp"

namespace fingrav::core {

ExecutionBackend::CacheConsult
ExecutionBackend::consultCache(const std::vector<ScenarioSpec>& specs,
                               const sim::MachineConfig& cfg) const
{
    CacheConsult consult;
    consult.results.resize(specs.size());
    consult.resolved.assign(specs.size(), 0);
    // lookup() gates uncacheable (profile_fn) specs itself, counting
    // the bypass; they always land in pending.
    for (std::size_t i = 0; i < specs.size(); ++i) {
        if (cache()) {
            if (auto hit = cache()->lookup(specs[i], cfg)) {
                consult.results[i] = std::move(*hit);
                consult.resolved[i] = 1;
                continue;
            }
        }
        consult.pending.push_back(specs[i]);
        consult.slots.push_back(i);
    }
    return consult;
}

void
ExecutionBackend::commitCache(CacheConsult& consult,
                              std::vector<ProfileSet>&& executed,
                              const sim::MachineConfig& cfg) const
{
    if (executed.size() != consult.pending.size()) {
        support::panic("execution backend: ", executed.size(),
                       " results for ", consult.pending.size(),
                       " pending specs");
    }
    for (std::size_t j = 0; j < executed.size(); ++j) {
        if (cache())  // store() ignores uncacheable specs itself
            cache()->store(consult.pending[j], cfg, executed[j]);
        consult.results[consult.slots[j]] = std::move(executed[j]);
    }
}

ThreadPoolBackend::ThreadPoolBackend(std::size_t threads) : threads_(threads)
{
    if (threads_ == 0) {
        const unsigned hw = std::thread::hardware_concurrency();
        threads_ = hw > 0 ? hw : 1;
    }
}

std::vector<ProfileSet>
ThreadPoolBackend::execute(const std::vector<ScenarioSpec>& specs,
                           const sim::MachineConfig& cfg)
{
    if (!cache())
        return executeUncached(specs, cfg);
    // Consult the cache before placing anything: cached specs never
    // occupy a pool slot, and only the residue fans out.
    auto consult = consultCache(specs, cfg);
    commitCache(consult, executeUncached(consult.pending, cfg), cfg);
    return std::move(consult.results);
}

std::vector<ProfileSet>
ThreadPoolBackend::executeUncached(const std::vector<ScenarioSpec>& specs,
                                   const sim::MachineConfig& cfg)
{
    std::vector<ProfileSet> results(specs.size());
    const std::size_t workers =
        std::min<std::size_t>(threads_, specs.size() > 0 ? specs.size() : 1);
    if (workers <= 1) {
        for (std::size_t i = 0; i < specs.size(); ++i)
            results[i] = CampaignRunner::runOne(specs[i], cfg);
        return results;
    }
    // Nested-oversubscription guard: campaign workers multiply with each
    // node's advance-thread pool.  Node stepping is bit-identical for any
    // advance thread count, so capping only relocates work — it never
    // changes results — and keeps distributed-sharding-sized campaign
    // sets from drowning the host in threads.
    sim::MachineConfig effective = cfg;
    const std::size_t advance = std::max<std::size_t>(1, cfg.advance_threads);
    const unsigned hw = std::thread::hardware_concurrency();
    if (hw > 0 && workers * advance > hw) {
        const std::size_t cap = std::max<std::size_t>(1, hw / workers);
        if (cap < advance) {
            static std::once_flag warned;
            std::call_once(warned, [&] {
                support::warn("ThreadPoolBackend: ", workers, " campaign "
                              "threads x ", advance, " advance threads "
                              "exceed ", hw, " hardware threads; capping "
                              "per-campaign advance threads at ", cap,
                              " (results unchanged)");
            });
            effective.advance_threads = cap;
        }
    }
    // Campaigns are hermetic, so the pool only decides where each one
    // executes; every result lands in its spec's slot regardless of
    // completion order.
    support::ThreadPool pool(workers);
    pool.parallelFor(specs.size(), [&](std::size_t i) {
        results[i] = CampaignRunner::runOne(specs[i], effective);
    });
    return results;
}

}  // namespace fingrav::core

#include "fingrav/energy.hpp"

#include "support/logging.hpp"

namespace fingrav::core {

DifferentiationReport
differentiationError(const ProfileSet& set, Rail rail)
{
    DifferentiationReport rep;
    rep.sse_mean_w = set.sse.meanPower(rail);
    rep.ssp_mean_w = set.ssp.meanPower(rail);
    if (rep.ssp_mean_w > 0.0) {
        rep.error_pct =
            (rep.ssp_mean_w - rep.sse_mean_w) / rep.ssp_mean_w * 100.0;
    }
    rep.sse_energy_j = executionEnergy(set.sse, set.ssp_exec_time, rail);
    rep.ssp_energy_j = executionEnergy(set.ssp, set.ssp_exec_time, rail);
    return rep;
}

double
interleavingShiftPct(const ProfileSet& interleaved,
                     const ProfileSet& isolated, Rail rail)
{
    const double ref = isolated.ssp.meanPower(rail);
    if (ref <= 0.0)
        support::fatal("interleavingShiftPct: isolated reference profile "
                       "is empty");
    return (interleaved.ssp.meanPower(rail) - ref) / ref * 100.0;
}

support::Joules
executionEnergy(const PowerProfile& profile, support::Duration exec_time,
                Rail rail)
{
    return profile.meanPower(rail) * exec_time.toSeconds();
}

}  // namespace fingrav::core

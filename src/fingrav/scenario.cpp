#include "fingrav/scenario.hpp"

#include <algorithm>
#include <cmath>

#include "kernels/workloads.hpp"
#include "sim/simulation.hpp"
#include "support/logging.hpp"

namespace fingrav::core {

const char*
toString(BackgroundKind kind)
{
    switch (kind) {
      case BackgroundKind::kKernel:
        return "kernel";
      case BackgroundKind::kFabricDemand:
        return "fabric-demand";
    }
    return "?";
}

ScenarioSpec
ScenarioSpec::fromCampaign(const CampaignSpec& spec)
{
    ScenarioSpec out;
    out.label = spec.label;
    out.seed = spec.seed;
    out.opts = spec.opts;
    out.devices = spec.devices;
    out.profile_fn = spec.profile_fn;
    return out;
}

namespace {

/** Always-on span of a one-shot demand injection ("the whole campaign"). */
constexpr auto kAlwaysOn = support::Duration::seconds(1e6);

runtime::BackgroundStream
compileLoad(const BackgroundLoad& load, sim::Simulation& sim)
{
    runtime::BackgroundStream s;
    s.first = support::SimTime::fromNanos(0) + load.offset;
    if (load.offset.nanos() < 0)
        support::fatal("BackgroundLoad: negative offset");
    if (load.duty_cycle <= 0.0 || load.duty_cycle > 1.0)
        support::fatal("BackgroundLoad: duty_cycle must be in (0, 1], got ",
                       load.duty_cycle);

    const bool one_shot = load.period.nanos() <= 0;
    if (one_shot && load.cycles > 1)
        support::fatal("BackgroundLoad: ", load.cycles,
                       " cycles need a positive period");
    s.period = load.period;
    s.cycles = one_shot ? 1 : load.cycles;

    if (load.kind == BackgroundKind::kFabricDemand) {
        if (load.demand <= 0.0)
            support::fatal("BackgroundLoad: fabric demand must be positive, "
                           "got ", load.demand);
        s.inject_demand = load.demand;
        s.active = one_shot ? kAlwaysOn : load.period * load.duty_cycle;
        return s;
    }

    if (load.device >= sim.deviceCount())
        support::fatal("BackgroundLoad: device ", load.device,
                       " out of range (", sim.deviceCount(), " devices); "
                       "set ScenarioSpec::devices or pick another device");
    const auto model = kernels::kernelByLabel(load.kernel, sim.config());
    // Background processes run warm; their cold ramp is not the subject.
    s.work = model->workAt(1.0);
    s.device = load.device;
    s.queue = load.queue;
    s.jitter_sigma = load.jitter_sigma < 0.0
                         ? sim.config().exec_time_sigma
                         : load.jitter_sigma;
    if (one_shot) {
        s.launches_per_cycle = 1;
    } else {
        // Duty-cycle sizing: enough back-to-back copies to occupy about
        // duty_cycle of each period at the nominal (uncontended) rate.
        const double span =
            load.duty_cycle * static_cast<double>(load.period.nanos());
        const double nominal =
            static_cast<double>(s.work.nominal_duration.nanos());
        FINGRAV_ASSERT(nominal > 0.0, "background kernel with zero cost");
        s.launches_per_cycle = std::max<std::size_t>(
            1, static_cast<std::size_t>(std::floor(span / nominal)));
    }
    s.active = s.work.nominal_duration *
               static_cast<double>(s.launches_per_cycle);
    return s;
}

}  // namespace

std::vector<runtime::BackgroundStream>
buildBackgroundStreams(const ScenarioSpec& spec, sim::Simulation& sim)
{
    std::vector<runtime::BackgroundStream> out;
    out.reserve(spec.background.size());
    for (const auto& load : spec.background)
        out.push_back(compileLoad(load, sim));
    return out;
}

}  // namespace fingrav::core

#include "fingrav/recorded_campaign.hpp"

#include <algorithm>
#include <cmath>
#include <utility>

#include "fingrav/differentiation.hpp"
#include "fingrav/stitcher.hpp"
#include "kernels/workloads.hpp"
#include "runtime/host_runtime.hpp"
#include "sim/simulation.hpp"
#include "support/logging.hpp"
#include "support/statistics.hpp"

namespace fingrav::core {

namespace {

using fingrav::support::Duration;

}  // namespace

RecordedCampaign
RecordedCampaign::record(const CampaignSpec& spec,
                         const std::vector<Duration>& extra_windows,
                         const sim::MachineConfig& cfg)
{
    return record(ScenarioSpec::fromCampaign(spec), extra_windows, cfg);
}

RecordedCampaign
RecordedCampaign::record(const ScenarioSpec& spec,
                         const std::vector<Duration>& extra_windows,
                         const sim::MachineConfig& cfg)
{
    RecordedCampaign rc;
    rc.spec_ = spec;
    const auto& opts = rc.spec_.opts;
    if (opts.timing_reps == 0)
        support::fatal("RecordedCampaign: timing_reps must be >= 1");

    // The fresh node comes from the same CampaignNode contract the
    // runner uses, so record() replicates runOne's trajectory bitwise up
    // to the point the pipelines intentionally diverge (the normalized
    // calibration schedule below).
    CampaignNode node(spec, cfg);
    const auto& kernel = node.kernel();
    runtime::HostRuntime& host = node.host();
    support::Rng rng = node.profilerRng();
    if (opts.device >= node.simulation().deviceCount())
        support::fatal("RecordedCampaign: device ", opts.device,
                       " out of range");
    rc.tick_ = host.timestampTick(opts.device);

    // ---- step 1: execution time + guidance (the Profiler's own helper,
    // same executor fork id, so the pipelines cannot drift) ---------------
    rc.measured_exec_time_ = measureKernelExecTime(host, rng, kernel, opts);
    const auto guidance_table = GuidanceTable::paperDefault();
    rc.guidance_ = guidance_table.lookup(rc.measured_exec_time_);

    // ---- steps 2/7 prep: every sync variant a sweep can request ---------
    // The recording normalizes the calibration schedule: both anchor
    // styles are read up front (the delay-blind one costs one extra
    // timestamp read), and the drift anchor is taken after the full pool.
    // Re-executing record() reproduces the same schedule, which is what
    // the bit-identity contract is stated against.
    rc.sync_ = TimeSync::calibrate(host, opts.device);
    rc.nodelay_sync_ = TimeSync::calibrateIgnoringDelay(host, opts.device);

    // ---- windows --------------------------------------------------------
    const auto primary = opts.logger_window.nanos() > 0
                             ? opts.logger_window
                             : cfg.logger_window;
    rc.windows_.push_back(primary);
    for (const auto& w : extra_windows) {
        if (w.nanos() <= 0)
            support::fatal("RecordedCampaign: non-positive extra window");
        for (const auto& seen : rc.windows_) {
            if (seen == w)
                support::fatal("RecordedCampaign: duplicate window ",
                               w.toMicros(), "us");
        }
        rc.windows_.push_back(w);
    }

    // ---- steps 3-4 per window: SSE/SSP indices --------------------------
    const ProfileDifferentiator differ(opts.sse_executions,
                                       opts.stability_eps);
    std::vector<std::size_t> formula(rc.windows_.size());
    std::size_t max_formula = 0;
    for (std::size_t w = 0; w < rc.windows_.size(); ++w) {
        formula[w] = differ.sspExecutionFormula(rc.measured_exec_time_,
                                                rc.windows_[w]);
        max_formula = std::max(max_formula, formula[w]);
    }

    RunExecutor exec(host, rng.fork(901));
    RunPlan plan;
    plan.main = kernel;
    plan.device = opts.device;
    plan.min_delay = opts.min_delay;
    plan.max_delay = opts.max_delay;
    plan.logger_window = rc.windows_.front();
    plan.extra_windows.assign(rc.windows_.begin() + 1, rc.windows_.end());
    plan.main_execs_per_block =
        std::clamp<std::size_t>(3 * max_formula, 20, max_formula + 128);
    const auto explore = exec.executeRun(plan, 0);

    // The stabilization scan runs per window over that window's series,
    // through the Profiler's own step-4 helpers (full-S2 translation).
    rc.ssp_exec_index_.resize(rc.windows_.size());
    std::size_t max_span = 0;
    for (std::size_t w = 0; w < rc.windows_.size(); ++w) {
        const auto& samples =
            w == 0 ? explore.samples : explore.extra_samples[w - 1];
        rc.ssp_exec_index_[w] =
            sspIndexFromExplore(differ, *rc.sync_, explore, samples,
                                formula[w], opts,
                                plan.main_execs_per_block);
        max_span = std::max(
            max_span,
            rc.ssp_exec_index_[w] +
                harvestExecutions(rc.measured_exec_time_, rc.windows_[w]));
    }
    // Every window's harvest region must fit in one run.
    rc.execs_per_run_ = max_span;
    plan.main_execs_per_block = rc.execs_per_run_;

    // ---- steps 5 + 8 budget: the pool at the maximum top-up budget ------
    rc.base_runs_ = opts.runs_override.value_or(rc.guidance_.runs);
    const std::size_t max_total =
        opts.collect_extra_runs
            ? static_cast<std::size_t>(
                  static_cast<double>(rc.base_runs_) *
                  (1.0 + opts.max_extra_run_factor))
            : rc.base_runs_;
    std::vector<RunRecord> pool;
    pool.reserve(max_total);
    for (std::size_t r = 0; r < max_total; ++r)
        pool.push_back(exec.executeRun(plan, r));

    // Drift anchor after the pool (the longer the span, the better the
    // ppm estimate) for the kFinGraVDrift sweep point.
    rc.drift_sync_ = rc.sync_;
    rc.drift_sync_->addDriftAnchor(host, opts.device);

    // ---- window-major views ---------------------------------------------
    // Sample vectors are moved out of the pool (each window's samples are
    // needed in exactly one view); exec metadata is copied per view.
    rc.window_runs_.resize(rc.windows_.size());
    for (std::size_t w = 1; w < rc.windows_.size(); ++w) {
        auto& view = rc.window_runs_[w];
        view.reserve(pool.size());
        for (auto& run : pool) {
            RunRecord v;
            v.run_index = run.run_index;
            v.execs = run.execs;
            v.main_exec_indices = run.main_exec_indices;
            v.samples = std::move(run.extra_samples[w - 1]);
            v.run_start_cpu_ns = run.run_start_cpu_ns;
            v.log_start_cpu_ns = run.log_start_cpu_ns;
            v.contended_cpu_ns = run.contended_cpu_ns;
            view.push_back(std::move(v));
        }
    }
    for (auto& run : pool)
        run.extra_samples.clear();
    rc.window_runs_[0] = std::move(pool);
    return rc;
}

ProfileSet
RecordedCampaign::restitch(const SweepPoint& point) const
{
    ProfilerOptions opts = spec_.opts;
    if (point.margin.has_value())
        opts.margin_override = point.margin;
    if (point.binning.has_value())
        opts.binning = *point.binning;
    if (point.sync_mode.has_value())
        opts.sync_mode = *point.sync_mode;
    if (point.target_bin.has_value())
        opts.target_bin = point.target_bin;

    const std::size_t w = point.window_index;
    if (w >= windows_.size())
        support::fatal("RecordedCampaign::restitch: window index ", w,
                       " out of range (", windows_.size(), " recorded)");

    const TimeSync& sync =
        opts.sync_mode == SyncMode::kNoDelayAccounting ? *nodelay_sync_
        : opts.sync_mode == SyncMode::kFinGraVDrift    ? *drift_sync_
                                                       : *sync_;

    ProfileSet out;
    out.label = spec_.label;
    out.measured_exec_time = measured_exec_time_;
    out.guidance = guidance_;
    out.loi_target = guidance_.recommendedLois(measured_exec_time_);
    out.read_delay_us = sync.readDelay().toMicros();
    if (opts.sync_mode == SyncMode::kFinGraVDrift)
        out.drift_ppm = sync.estimatedDriftPpm();
    out.sse_exec_index = opts.sse_executions - 1;
    out.ssp_exec_index = ssp_exec_index_[w];
    out.execs_per_run = execs_per_run_;

    // Steps 6-9 plus the step-8 top-up decision loop, replayed from the
    // recorded pool through the incremental stitcher.
    const auto& runs = window_runs_[w];
    ProfileStitcher stitcher(opts, sync, tick_);
    std::size_t budget =
        std::min(point.runs.value_or(base_runs_), runs.size());
    stitcher.restitch(runs, budget, out);
    if (!point.runs.has_value() && opts.collect_extra_runs) {
        while (out.ssp.size() < out.loi_target && budget < runs.size()) {
            ++budget;
            stitcher.restitch(runs, budget, out);
        }
    }
    out.runs_executed = budget;
    return out;
}

AutotuneResult
RecordedCampaign::autotuneBudget(std::size_t loi_target,
                                 std::size_t window_index) const
{
    if (window_index >= windows_.size())
        support::fatal("RecordedCampaign::autotuneBudget: window index ",
                       window_index, " out of range (", windows_.size(),
                       " recorded)");
    const ProfilerOptions& opts = spec_.opts;
    const TimeSync& sync =
        opts.sync_mode == SyncMode::kNoDelayAccounting ? *nodelay_sync_
        : opts.sync_mode == SyncMode::kFinGraVDrift    ? *drift_sync_
                                                       : *sync_;

    AutotuneResult out;
    out.loi_target = loi_target > 0
                         ? loi_target
                         : guidance_.recommendedLois(measured_exec_time_);
    out.recommended_runs = base_runs_;
    out.pool_runs = runCount();
    out.window_index = window_index;

    // Replay prefixes through the incremental stitcher: each +1 run is
    // stitched on top of the previous prefix, so the whole scan costs
    // one pass over the pool, not one restitch per candidate budget.
    // Golden-run selection can shift as runs arrive, so the scan is a
    // genuine replay, not a monotonic counter.
    ProfileSet set;
    set.label = spec_.label;
    set.guidance = guidance_;
    set.sse_exec_index = opts.sse_executions - 1;
    set.ssp_exec_index = ssp_exec_index_[window_index];

    const auto& runs = window_runs_[window_index];
    ProfileStitcher stitcher(opts, sync, tick_);
    std::size_t budget = 0;
    std::size_t lois = 0;
    while (budget < runs.size()) {
        ++budget;
        stitcher.restitch(runs, budget, set);
        lois = set.ssp.size();
        if (lois >= out.loi_target)
            break;
    }
    out.runs_needed = budget;
    out.target_met = lois >= out.loi_target;
    out.achieved_yield =
        out.loi_target > 0
            ? static_cast<double>(lois) / static_cast<double>(out.loi_target)
            : 0.0;
    return out;
}

}  // namespace fingrav::core

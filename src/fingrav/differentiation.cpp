#include "fingrav/differentiation.hpp"

#include <algorithm>
#include <cmath>

#include "support/logging.hpp"

namespace fingrav::core {

ProfileDifferentiator::ProfileDifferentiator(std::size_t sse_executions,
                                             double stability_eps)
    : sse_executions_(sse_executions), stability_eps_(stability_eps)
{
    if (sse_executions == 0)
        support::fatal("ProfileDifferentiator: need at least one execution");
    if (stability_eps <= 0.0 || stability_eps >= 1.0)
        support::fatal("ProfileDifferentiator: stability_eps ",
                       stability_eps, " outside (0, 1)");
}

std::size_t
ProfileDifferentiator::sspExecutionFormula(support::Duration exec_time,
                                           support::Duration window) const
{
    if (exec_time.nanos() <= 0)
        support::fatal("sspExecutionFormula: non-positive execution time");
    if (window.nanos() <= 0)
        support::fatal("sspExecutionFormula: non-positive window");
    const double n = std::ceil(static_cast<double>(window.nanos()) /
                               static_cast<double>(exec_time.nanos()));
    return std::max<std::size_t>(sse_executions_,
                                 static_cast<std::size_t>(n));
}

std::size_t
ProfileDifferentiator::detectStabilization(
    const std::vector<double>& series) const
{
    if (series.empty())
        return 0;
    // Scan candidates front to back; a candidate index i is stable when
    // every later sample stays within eps (relative) of the mean of the
    // tail starting at i.  O(n^2) worst case on a series of at most a few
    // hundred samples — clarity over cleverness.
    for (std::size_t i = 0; i < series.size(); ++i) {
        double mean = 0.0;
        for (std::size_t j = i; j < series.size(); ++j)
            mean += series[j];
        mean /= static_cast<double>(series.size() - i);
        if (mean <= 0.0)
            continue;
        bool stable = true;
        for (std::size_t j = i; j < series.size(); ++j) {
            if (std::fabs(series[j] - mean) > stability_eps_ * mean) {
                stable = false;
                break;
            }
        }
        if (stable)
            return i;
    }
    return series.size();
}

}  // namespace fingrav::core

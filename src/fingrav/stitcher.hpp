#ifndef FINGRAV_FINGRAV_STITCHER_HPP_
#define FINGRAV_FINGRAV_STITCHER_HPP_

/**
 * @file
 * Incremental LOI/TOI stitcher (paper steps 6, 7 and 9).
 *
 * Stitching aligns every power sample of every golden run with the run's
 * kernel executions.  The seed implementation compared each (execution,
 * sample) pair — O(execs × samples) with a timestamp translation per pair
 * — and the step-8 top-up loop re-stitched all runs from scratch after
 * every appended run, quadratic in run count.  ProfileStitcher fixes both
 * hot paths:
 *
 *  - per run, sample CPU timestamps are translated once and cached; the
 *    time-sorted samples are then aligned to the (chronological)
 *    executions with a two-pointer sweep — O(execs + samples);
 *  - restitch() is incremental: when appended runs leave the golden-bin
 *    membership of previously stitched runs unchanged (the common case —
 *    modalCluster returns ascending indices, so unchanged membership
 *    means the old golden set is a prefix of the new one), only the new
 *    runs are scanned; a full rebuild happens only when the modal bin
 *    shifts.
 *
 * stitchReference() preserves the seed's from-scratch quadratic loop; it
 * is the verification oracle (tests/stitch_incremental_test.cpp) and the
 * baseline for bench/bench_hotpath.cpp.  Both paths produce bit-identical
 * ProfileSets on the same inputs.
 */

#include <cstdint>
#include <vector>

#include "fingrav/profiler.hpp"
#include "support/statistics.hpp"
#include "support/time_types.hpp"

namespace fingrav::core {

/** Incremental stitcher; one instance per profiling campaign. */
class ProfileStitcher {
  public:
    /**
     * @param opts  Profiler options in force (sync mode, binning, margin).
     * @param sync  Calibrated CPU-GPU translation; must outlive the
     *              stitcher and not gain anchors between restitch calls.
     * @param tick  GPU timestamp-counter tick (coarse-align mode only).
     */
    ProfileStitcher(const ProfilerOptions& opts, const TimeSync& sync,
                    support::Duration tick);

    /**
     * (Re)stitch `runs` into `out`.
     *
     * Callers append runs to the same vector and call again with the same
     * `out`; `out.guidance`, `out.label`, `out.sse_exec_index` and
     * `out.ssp_exec_index` must be set before the first call and stay
     * fixed.  Fills out.binning, out.sse/ssp/timeline, out.ssp_exec_time.
     */
    void restitch(const std::vector<RunRecord>& runs, ProfileSet& out);

    /**
     * Prefix form: stitch only the first `n` elements of `runs` (n must
     * not shrink between calls).  Lets a replay over a pre-recorded run
     * pool (core::RecordedCampaign) grow the stitched prefix without
     * copying records run by run.
     */
    void restitch(const std::vector<RunRecord>& runs, std::size_t n,
                  ProfileSet& out);

    /** Full rebuilds performed so far (diagnostics; 1 = never re-built). */
    std::size_t rebuildCount() const { return rebuilds_; }

    /**
     * Seed-faithful reference: from-scratch stitch comparing every
     * (execution, sample) pair, with a timestamp translation per pair.
     */
    static void stitchReference(const ProfilerOptions& opts,
                                const TimeSync& sync,
                                support::Duration tick,
                                const std::vector<RunRecord>& runs,
                                ProfileSet& out);

    /**
     * Step 6: golden-run selection shared by both paths.  Runs that
     * recorded no main execution are skipped (they cannot be binned and
     * previously underflowed the representative-execution index).
     */
    static void selectGoldenRuns(const ProfilerOptions& opts,
                                 const std::vector<RunRecord>& runs,
                                 ProfileSet& out);

  private:
    struct RunCache {
        support::Duration rep_time;
        bool eligible = false;  ///< recorded at least one main execution
        bool aligned = false;   ///< sample_cpu_ns / contended filled
        std::vector<std::int64_t> sample_cpu_ns;  ///< ascending
        /**
         * Per-sample contention flag (0/1), resolved once per run by
         * merging the ascending sample times against the run's merged
         * contention intervals — same predicate as RunRecord::contendedAt
         * without the per-point binary search.
         */
        std::vector<std::uint8_t> contended;
    };

    /**
     * Translate a run's whole timestamp column into CPU nanoseconds
     * under the configured sync mode (one vectorized pass; element-wise
     * identical to the former per-sample translation).
     */
    void translateSamples(const RunRecord& run,
                          std::vector<std::int64_t>& out) const;

    /** Extend per-run caches to cover the first `n` runs. */
    void updateCaches(const std::vector<RunRecord>& runs, std::size_t n,
                      const ProfileSet& out);

    /** Append one golden run's points to the profiles (two-pointer). */
    void appendRun(const RunRecord& run, std::size_t run_idx,
                   ProfileSet& out);

    ProfilerOptions opts_;
    const TimeSync* sync_;
    support::Duration tick_;

    std::vector<RunCache> run_caches_;
    std::vector<std::size_t> stitched_golden_;
    support::RunningStats ssp_time_us_;
    bool stitched_once_ = false;
    std::size_t rebuilds_ = 0;
};

}  // namespace fingrav::core

#endif  // FINGRAV_FINGRAV_STITCHER_HPP_

#ifndef FINGRAV_FINGRAV_TIME_SYNC_HPP_
#define FINGRAV_FINGRAV_TIME_SYNC_HPP_

/**
 * @file
 * High-resolution CPU-GPU time synchronization (paper tenet S2).
 *
 * The on-GPU power logger timestamps samples with the GPU counter while
 * kernel start/end events are observed in CPU time.  FinGraV bridges the
 * two by (1) benchmarking the delay of reading the GPU counter from the
 * CPU, (2) reading one (T0, Tc) anchor pair accounting for that delay, and
 * (3) translating every log timestamp T into CPU time as
 * Tc + (T - T0) (paper Fig. 4b: "Tc ~ T0 + delay").
 *
 * The paper notes (Section VII, Lang et al. discussion) that it does not
 * compensate clock *drift* and leaves that to future work; the optional
 * second anchor here implements that future-work extension: two anchors a
 * known interval apart estimate the GPU clock's ppm error, turning the
 * translation into an affine fit.
 */

#include <cstddef>
#include <cstdint>

#include "runtime/host_runtime.hpp"
#include "support/time_types.hpp"

namespace fingrav::core {

/** One-anchor (optionally two-anchor) GPU-to-CPU timestamp translator. */
class TimeSync {
  public:
    /**
     * Calibrate against a device: benchmark the read delay, then take the
     * anchor read.
     *
     * @param host        Runtime to calibrate through.
     * @param device      Device index.
     * @param bench_iters Iterations for the delay benchmark (>= 1).
     */
    static TimeSync calibrate(runtime::HostRuntime& host,
                              std::size_t device = 0,
                              std::size_t bench_iters = 64);

    /**
     * Degraded calibration that pairs the anchor with the read-call entry
     * time, ignoring the round-trip delay — the Lang et al. baseline the
     * paper contrasts with ("the authors did not factor in the delays
     * imposed by the CPU-GPU communication", Section VII).
     */
    static TimeSync calibrateIgnoringDelay(runtime::HostRuntime& host,
                                           std::size_t device = 0);

    /**
     * Take a second anchor now and estimate drift from the pair.
     *
     * The longer the span since calibrate(), the better the ppm estimate.
     */
    void addDriftAnchor(runtime::HostRuntime& host, std::size_t device = 0);

    /** Translate a GPU counter value into CPU-clock nanoseconds. */
    std::int64_t gpuCounterToCpuNs(std::int64_t counter) const;

    /**
     * Translate a whole timestamp column: out[i] =
     * gpuCounterToCpuNs(counters[i]), bit for bit.  Every per-element
     * operation (integer scale, double cast, one division, truncating
     * cast back) is IEEE-exact per lane, so the vectorized loop cannot
     * diverge from the scalar call — the stitcher's alignment cache is
     * filled through here instead of one call per sample.
     */
    void translateColumn(const std::int64_t* counters, std::size_t n,
                         std::int64_t* out) const;

    /** The benchmarked read delay. */
    support::Duration readDelay() const { return read_delay_; }

    /** Estimated GPU clock drift (0 until addDriftAnchor is used). */
    double estimatedDriftPpm() const { return drift_ppm_; }

    /** True when drift compensation is active. */
    bool driftCompensated() const { return drift_compensated_; }

    /** Anchor CPU time (ns on the CPU clock). */
    std::int64_t anchorCpuNs() const { return anchor_cpu_ns_; }

    /** Anchor GPU time (ns on the GPU clock). */
    std::int64_t anchorGpuNs() const { return anchor_gpu_ns_; }

  private:
    TimeSync() = default;

    support::Duration read_delay_;
    std::int64_t anchor_cpu_ns_ = 0;
    std::int64_t anchor_gpu_ns_ = 0;
    std::int64_t tick_ns_ = 1;
    double drift_ppm_ = 0.0;
    bool drift_compensated_ = false;
};

}  // namespace fingrav::core

#endif  // FINGRAV_FINGRAV_TIME_SYNC_HPP_

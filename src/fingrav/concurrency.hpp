#ifndef FINGRAV_FINGRAV_CONCURRENCY_HPP_
#define FINGRAV_FINGRAV_CONCURRENCY_HPP_

/**
 * @file
 * Co-scheduling analysis: the paper's recommendation R1 as an API.
 *
 * Table II, recommendation 1: "available power headroom can be fully
 * utilized by concurrently executing computations with complementary
 * algorithmic and hence complementary power profiles" — e.g. memory-bound
 * attention overlapping compute-bound fully-connected GEMMs (the NanoFlow
 * citation in Section V-C2).
 *
 * ConcurrencyAdvisor evaluates a kernel pair: it measures the serial and
 * concurrent schedules on the simulated node (hardware queues + the
 * contention model), scores profile complementarity from the kernels'
 * per-rail utilization, and reports speedup, power headroom use and
 * energy.  The complementarity score is 1 - the normalized overlap of the
 * two utilization vectors: disjoint resource demands score near 1 (ideal
 * co-schedule), identical demands near 0 (pure contention).
 */

#include <cstdint>
#include <string>

#include "kernels/kernel_model.hpp"
#include "runtime/host_runtime.hpp"
#include "support/rng.hpp"
#include "support/units.hpp"

namespace fingrav::core {

/** Measured comparison of serial vs concurrent execution of a pair. */
struct CoScheduleReport {
    std::string kernel_a;
    std::string kernel_b;

    double complementarity = 0.0;  ///< 1 = disjoint demands, 0 = identical

    double serial_ms = 0.0;        ///< wall time, serial schedule
    double concurrent_ms = 0.0;    ///< wall time, concurrent schedule
    double speedup = 0.0;          ///< serial / concurrent

    double serial_avg_w = 0.0;     ///< busy-window average power, serial
    double concurrent_avg_w = 0.0; ///< busy-window average power, concurrent
    double peak_w = 0.0;           ///< peak window power, concurrent

    support::Joules serial_energy_j = 0.0;
    support::Joules concurrent_energy_j = 0.0;

    /**
     * True when the concurrent schedule wins wall time while its
     * *sustained* power stays within the cap.  Transient window peaks
     * above the cap are the power-management firmware's job (excursion
     * response); sustained overshoot would throttle the whole schedule.
     */
    bool
    worthIt(double power_cap_w) const
    {
        return speedup > 1.05 && concurrent_avg_w <= power_cap_w;
    }
};

/** Evaluates recommendation-R1 co-schedules on a host runtime. */
class ConcurrencyAdvisor {
  public:
    /**
     * @param host  Runtime over the node; must outlive the advisor.
     * @param rng   Workload-jitter stream.
     */
    ConcurrencyAdvisor(runtime::HostRuntime& host, support::Rng rng);

    /**
     * Static complementarity of two kernels' utilization signatures,
     * without running anything.
     */
    static double complementarity(const kernels::KernelModel& a,
                                  const kernels::KernelModel& b);

    /**
     * Measure serial vs concurrent execution of `iters` iterations of
     * {a_per_iter x a, b_per_iter x b}.
     *
     * @param a           First kernel (queue 0).
     * @param b           Second kernel (queue 1 when concurrent).
     * @param iters       Iterations of the combined block.
     * @param a_per_iter  Executions of `a` per iteration.
     * @param b_per_iter  Executions of `b` per iteration.
     */
    CoScheduleReport evaluate(const kernels::KernelModelPtr& a,
                              const kernels::KernelModelPtr& b,
                              int iters = 16, int a_per_iter = 1,
                              int b_per_iter = 1);

  private:
    /** Run one schedule and measure wall/power/energy. */
    void runSchedule(const kernels::KernelModelPtr& a,
                     const kernels::KernelModelPtr& b, int iters,
                     int a_per_iter, int b_per_iter, bool concurrent,
                     double* wall_ms, double* avg_w, double* peak_w,
                     double* energy_j);

    runtime::HostRuntime& host_;
    support::Rng rng_;
};

}  // namespace fingrav::core

#endif  // FINGRAV_FINGRAV_CONCURRENCY_HPP_

#include "fingrav/run_executor.hpp"

#include <algorithm>
#include <cmath>
#include <utility>

#include "support/logging.hpp"

namespace fingrav::core {

support::Duration
RunRecord::mainExecDuration(std::size_t i) const
{
    FINGRAV_ASSERT(i < main_exec_indices.size(),
                   "main exec index ", i, " out of range");
    return execs[main_exec_indices[i]].timing.duration();
}

bool
RunRecord::contendedAt(std::int64_t cpu_ns) const
{
    // Intervals are merged and ascending: binary-search the first
    // interval ending after the instant and test containment.
    const auto it = std::upper_bound(
        contended_cpu_ns.begin(), contended_cpu_ns.end(), cpu_ns,
        [](std::int64_t t, const std::pair<std::int64_t, std::int64_t>& iv) {
            return t < iv.second;
        });
    return it != contended_cpu_ns.end() && cpu_ns >= it->first;
}

RunExecutor::RunExecutor(runtime::HostRuntime& host, support::Rng rng)
    : host_(host), rng_(std::move(rng))
{
}

sim::KernelWork
RunExecutor::sampleWork(const kernels::KernelModel& model,
                        std::size_t appearance, double alloc_factor)
{
    const auto& cfg = host_.simulation().config();
    const double warmth =
        std::min(1.0, static_cast<double>(appearance) / 3.0);
    sim::KernelWork work = model.workAt(warmth);
    const double jitter = rng_.lognormalJitter(cfg.exec_time_sigma);
    work.nominal_duration =
        work.nominal_duration * (alloc_factor * jitter);
    if (alloc_factor > 1.0) {
        // An unlucky allocation stretches the execution because the kernel
        // *stalls* more: the same work issues over a longer period (lower
        // issue/LLC rates) while the cause — extra refetch traffic — keeps
        // HBM busier.  Execution-time outliers therefore carry a power
        // signature of their own, which is exactly why binning (tenet S3)
        // must discard them from the common-case profile.
        work.util.xcd_issue /= alloc_factor;
        work.util.llc_bw /= alloc_factor;
        work.util.hbm_bw =
            std::min(1.0, work.util.hbm_bw * std::sqrt(alloc_factor) * 1.4);
    }
    return work;
}

RunRecord
RunExecutor::executeRun(const RunPlan& plan, std::size_t run_index,
                        bool with_power)
{
    if (!plan.main)
        support::fatal("RunExecutor: plan has no main kernel");
    if (plan.blocks == 0 || plan.main_execs_per_block == 0)
        support::fatal("RunExecutor: plan executes nothing");
    if (plan.max_delay < plan.min_delay)
        support::fatal("RunExecutor: max_delay below min_delay");

    const auto& cfg = host_.simulation().config();

    RunRecord rec;
    rec.run_index = run_index;

    // Fresh-process model: this run's allocation pattern; a small fraction
    // are outliers (challenge C3's "slight differences in memory
    // allocation").
    double alloc = 1.0;
    if (rng_.bernoulli(cfg.outlier_run_probability)) {
        alloc = rng_.uniform(cfg.outlier_slowdown_min,
                             cfg.outlier_slowdown_max);
    }

    const auto window = plan.logger_window.nanos() > 0 ? plan.logger_window
                                                       : cfg.logger_window;
    auto longest = window;
    for (std::size_t i = 0; i < plan.extra_windows.size(); ++i) {
        const auto& w = plan.extra_windows[i];
        if (w.nanos() <= 0)
            support::fatal("RunExecutor: non-positive extra logger window");
        if (w == window)
            support::fatal("RunExecutor: extra window duplicates the "
                           "primary (", w.toMicros(), "us)");
        for (std::size_t j = 0; j < i; ++j) {
            if (plan.extra_windows[j] == w)
                support::fatal("RunExecutor: duplicate extra window (",
                               w.toMicros(), "us)");
        }
        longest = std::max(longest, w);
    }
    if (with_power) {
        rec.log_start_cpu_ns = host_.cpuNowNs();
        host_.startPowerLog(plan.device, window);
        for (const auto& w : plan.extra_windows)
            host_.startPowerLog(plan.device, w);
        // Capture engages at the next window-grid boundary; idle past one
        // full window (the longest, under multi-window capture) so every
        // logger has the run's ramp-up inside its capture.
        host_.sleep(longest);
    }

    // Step 5's random delay: decorrelates kernel start from the window
    // grid so each run lands LOIs at unique TOIs.
    const double delay_us = rng_.uniform(plan.min_delay.toMicros(),
                                         plan.max_delay.toMicros());
    host_.sleep(support::Duration::micros(delay_us));

    // Per-model appearance counts drive cache warmth within the run.
    std::vector<std::pair<const kernels::KernelModel*, std::size_t>> warm;
    auto appearances = [&warm](const kernels::KernelModel* m) {
        for (auto& [model, count] : warm) {
            if (model == m)
                return count++;
        }
        warm.emplace_back(m, 1);
        return std::size_t{0};
    };

    auto run_one = [&](const kernels::KernelModel& model, bool is_main) {
        const auto work =
            sampleWork(model, appearances(&model), alloc);
        ExecObservation obs;
        obs.label = work.label;
        obs.is_main = is_main;
        if (model.isCollective()) {
            // Collectives execute node-wide; timing is observed on the
            // profiled device as usual.
            obs.timing.cpu_start_ns =
                host_.cpuNowNs() +
                cfg.launch_overhead.nanos() + 700;
            host_.launchOnAllDevices(work);
            host_.synchronize(plan.device);
            obs.timing.cpu_end_ns = host_.cpuNowNs();
        } else {
            obs.timing = host_.timedRun(work, plan.device);
        }
        if (is_main)
            rec.main_exec_indices.push_back(rec.execs.size());
        rec.execs.push_back(std::move(obs));
    };

    for (std::size_t block = 0; block < plan.blocks; ++block) {
        for (const auto& item : plan.prelude) {
            FINGRAV_ASSERT(item.model != nullptr, "null prelude model");
            for (std::size_t i = 0; i < item.count; ++i)
                run_one(*item.model, /*is_main=*/false);
        }
        for (std::size_t i = 0; i < plan.main_execs_per_block; ++i)
            run_one(*plan.main, /*is_main=*/true);
    }

    FINGRAV_ASSERT(!rec.execs.empty(), "run executed nothing");
    rec.run_start_cpu_ns = rec.execs.front().timing.cpu_start_ns;

    if (with_power) {
        // Let the window containing the final execution close before
        // stopping, so trailing LOIs are not lost with the partial window.
        host_.sleep(longest + support::Duration::micros(50.0));
        rec.samples = host_.stopPowerLog(plan.device, window);
        rec.extra_samples.reserve(plan.extra_windows.size());
        for (const auto& w : plan.extra_windows)
            rec.extra_samples.push_back(host_.stopPowerLog(plan.device, w));
    }

    // Drain any remaining devices (collectives) and return to idle.
    host_.synchronizeAll();

    // Scenario environments: attach the contention state that was live
    // during the run's capture (everything the channel launched has
    // completed by now — the drain above waited for it — so kernel
    // intervals carry exact bounds).
    if (with_power && host_.backgroundArmed()) {
        rec.contended_cpu_ns = host_.backgroundActiveCpuIntervals(
            rec.log_start_cpu_ns, host_.cpuClockAt(host_.masterNow()));
    }
    return rec;
}

}  // namespace fingrav::core

#ifndef FINGRAV_FINGRAV_PROFILER_HPP_
#define FINGRAV_FINGRAV_PROFILER_HPP_

/**
 * @file
 * The FinGraV profiler: the paper's nine-step methodology (Section IV-B).
 *
 *  1. Time the kernel to find its execution time; look up the guidance
 *     table (#runs, #LOIs, binning margin).
 *  2. Instrument: CPU-side kernel timing, GPU timestamp read, power-log
 *     start/stop around each run.            (RunExecutor)
 *  3. SSE needs four executions per run (three warm-ups + the SSE).
 *  4. SSP execution count: max(ceil(window/exec), SSE), refined by a
 *     stabilization scan when throttling distorts the warm-up
 *     (ProfileDifferentiator).
 *  5. Execute the runs with random inter-run delays.
 *  6. Keep only golden runs (modal execution-time bin within the margin).
 *                                             (ExecutionBinner)
 *  7. Synchronize CPU-GPU time; identify LOIs and their TOIs.  (TimeSync)
 *  8. If fewer LOIs than the guidance target, run more runs.
 *  9. Stitch all LOIs/TOIs into the SSE, SSP and timeline profiles.
 *
 * SyncMode selects between the full methodology and the degraded baselines
 * the paper compares against (Fig. 5 and the Lang et al. discussion);
 * toggling binning off reproduces the no-binning scatter of Fig. 5.
 */

#include <cstddef>
#include <cstdint>
#include <optional>
#include <string>
#include <vector>

#include "fingrav/binning.hpp"
#include "fingrav/differentiation.hpp"
#include "fingrav/guidance.hpp"
#include "fingrav/profile.hpp"
#include "fingrav/run_executor.hpp"
#include "fingrav/time_sync.hpp"
#include "kernels/kernel_model.hpp"
#include "runtime/host_runtime.hpp"
#include "support/rng.hpp"
#include "support/time_types.hpp"

namespace fingrav::core {

/** How power-log timestamps are mapped into CPU time. */
enum class SyncMode {
    /** Full FinGraV S2: benchmarked read delay, single anchor. */
    kFinGraV,
    /** FinGraV + the future-work drift compensation (second anchor). */
    kFinGraVDrift,
    /** Lang et al. style: anchor read without read-delay accounting. */
    kNoDelayAccounting,
    /** Naive: align the run's first sample to the run's start (no sync). */
    kCoarseAlign,
};

/** Printable sync-mode name. */
const char* toString(SyncMode mode);

/** Profiler configuration; defaults follow the paper. */
struct ProfilerOptions {
    std::size_t device = 0;
    /** Override the guidance #runs (e.g. the 50-run resiliency study). */
    std::optional<std::size_t> runs_override;
    /** Override the guidance binning margin. */
    std::optional<double> margin_override;
    /** Executions per run for SSE: three warm-ups + one (paper step 3). */
    std::size_t sse_executions = 4;
    /** Step-1 timing repetitions. */
    std::size_t timing_reps = 5;
    /** Random inter-run delay range (step 5). */
    support::Duration min_delay = support::Duration::micros(200.0);
    support::Duration max_delay = support::Duration::millis(2.0);
    /** Timestamp mapping mode (kFinGraV = the methodology). */
    SyncMode sync_mode = SyncMode::kFinGraV;
    /** Execution-time binning on/off (off = Fig. 5's no-binning scatter). */
    bool binning = true;
    /** Step 8: top up runs until the LOI target is met (bounded). */
    bool collect_extra_runs = true;
    /** Cap on extra runs as a multiple of the base count. */
    double max_extra_run_factor = 1.0;
    /** Stability band for SSP detection. */
    double stability_eps = 0.03;
    /** Logger averaging window; <= 0 selects the machine default (1 ms).
     *  Longer windows model external amd-smi-style loggers (Section VI). */
    support::Duration logger_window;
    /**
     * Section VI outlier profiling: when set, step 6 keeps runs around
     * this target execution time instead of the modal bin.
     */
    std::optional<support::Duration> target_bin;
};

/** Everything one profiling campaign produced. */
struct ProfileSet {
    std::string label;                     ///< kernel label
    support::Duration measured_exec_time;  ///< step-1 median (CPU-timed)
    GuidanceEntry guidance;                ///< the Table I row applied
    std::size_t runs_executed = 0;
    BinningResult binning;                 ///< golden-run selection
    std::size_t sse_exec_index = 0;        ///< among main execs, 0-based
    std::size_t ssp_exec_index = 0;
    std::size_t execs_per_run = 0;
    support::Duration ssp_exec_time;       ///< mean golden SSP duration
    /** The guidance table's LOI collection target for this campaign (the
     *  step-8 top-up goal); 0 when no guidance was applied. */
    std::size_t loi_target = 0;
    double read_delay_us = 0.0;            ///< benchmarked S2 delay
    double drift_ppm = 0.0;                ///< estimated (drift mode only)

    PowerProfile sse;       ///< steady-state-execution profile
    PowerProfile ssp;       ///< steady-state-power profile
    PowerProfile timeline;  ///< full-run view (Fig. 6 / Fig. 8 style)

    /**
     * Achieved SSP-LOI yield against the guidance target (1.0 = target
     * met) — the observable guidance-table autotuning derives #runs
     * from instead of the static Table I
     * (RecordedCampaign::autotuneBudget).
     */
    double
    loiYield() const
    {
        return loi_target > 0 ? static_cast<double>(ssp.size()) /
                                    static_cast<double>(loi_target)
                              : 0.0;
    }
};

/**
 * Step 1 of the methodology: measure warm execution time (median of
 * opts.timing_reps, after opts.sse_executions warm-ups) through a run
 * executor forked on stream 900.  Shared by Profiler and
 * RecordedCampaign so the recorded pipeline cannot drift from the live
 * one.
 */
support::Duration measureKernelExecTime(runtime::HostRuntime& host,
                                        support::Rng& rng,
                                        const kernels::KernelModelPtr& kernel,
                                        const ProfilerOptions& opts);

/**
 * Step-4 helper: the SSP execution index derived from an exploratory
 * run — the step-4 formula refined by the stabilization scan over the
 * run's sample `series`, mapped back to the first execution launched
 * entirely after the first stable window, clamped to
 * [opts.sse_executions, explore_execs - 1].
 */
std::size_t sspIndexFromExplore(const ProfileDifferentiator& differ,
                                const TimeSync& sync,
                                const RunRecord& explore,
                                const sim::SampleColumns& samples,
                                std::size_t formula,
                                const ProfilerOptions& opts,
                                std::size_t explore_execs);

/**
 * Harvest region: executions to keep running past the SSP index so
 * ~1.5 logger windows of steady-state LOIs land per run (clamped to
 * [2, 64]).  Shared by Profiler and RecordedCampaign.
 */
std::size_t harvestExecutions(support::Duration exec_time,
                              support::Duration window);

/** The FinGraV profiler. */
class Profiler {
  public:
    /**
     * @param host  Runtime over the simulated (or one day, real) node.
     * @param opts  Methodology knobs; defaults reproduce the paper.
     * @param rng   Profiling-side randomness (delays, jitter).
     */
    Profiler(runtime::HostRuntime& host, ProfilerOptions opts,
             support::Rng rng);

    /** Profile a kernel in isolation (the paper's default setup). */
    ProfileSet profile(const kernels::KernelModelPtr& kernel);

    /**
     * Profile a kernel with interleaved preludes (Section V-C3): each run
     * repeats [prelude..., main x1] `blocks_per_run` times; the profile is
     * stitched from the main kernel's executions (block 0 is warm-up).
     */
    ProfileSet profileInterleaved(const kernels::KernelModelPtr& main,
                                  const std::vector<InterleaveItem>& prelude,
                                  std::size_t blocks_per_run = 8);

    /** The guidance table in force. */
    const GuidanceTable& guidance() const { return guidance_; }

  private:
    /** Step 1: measure warm execution time (median of timing_reps). */
    support::Duration measureExecTime(const kernels::KernelModelPtr& kernel);

    // Steps 6-9 (golden selection, LOI/TOI alignment, stitching) live in
    // ProfileStitcher (fingrav/stitcher.hpp): incremental two-pointer
    // stitching for the step-8 top-up loop, plus the seed-faithful
    // quadratic reference used by tests and benchmarks.

    runtime::HostRuntime& host_;
    ProfilerOptions opts_;
    support::Rng rng_;
    GuidanceTable guidance_;
    ProfileDifferentiator differ_;
};

}  // namespace fingrav::core

#endif  // FINGRAV_FINGRAV_PROFILER_HPP_

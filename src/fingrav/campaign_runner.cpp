#include "fingrav/campaign_runner.hpp"

#include <thread>

#include "kernels/workloads.hpp"
#include "support/logging.hpp"
#include "support/thread_pool.hpp"

namespace fingrav::core {

namespace {

std::size_t
campaignDevices(const CampaignSpec& spec,
                const kernels::KernelModelPtr& kernel)
{
    return spec.devices != 0 ? spec.devices
                             : (kernel->isCollective() ? 0 : 1);
}

}  // namespace

CampaignNode::CampaignNode(const CampaignSpec& spec,
                           const sim::MachineConfig& cfg)
    : kernel_(kernels::kernelByLabel(spec.label, cfg)),
      sim_(cfg, spec.seed, campaignDevices(spec, kernel_)),
      host_(sim_, sim_.forkRng(7))
{
}

CampaignRunner::CampaignRunner(std::size_t threads) : threads_(threads)
{
    if (threads_ == 0) {
        const unsigned hw = std::thread::hardware_concurrency();
        threads_ = hw > 0 ? hw : 1;
    }
}

ProfileSet
CampaignRunner::runOne(const CampaignSpec& spec, const sim::MachineConfig& cfg)
{
    CampaignNode node(spec, cfg);
    if (spec.profile_fn) {
        return spec.profile_fn(node.host(), node.kernel(), spec.opts,
                               node.profilerRng());
    }
    return Profiler(node.host(), spec.opts, node.profilerRng())
        .profile(node.kernel());
}

std::vector<ProfileSet>
CampaignRunner::run(const std::vector<CampaignSpec>& specs,
                    const sim::MachineConfig& cfg) const
{
    std::vector<ProfileSet> results(specs.size());
    const std::size_t workers =
        std::min<std::size_t>(threads_, specs.size() > 0 ? specs.size() : 1);
    if (workers <= 1) {
        for (std::size_t i = 0; i < specs.size(); ++i)
            results[i] = runOne(specs[i], cfg);
        return results;
    }
    // Campaigns are hermetic, so the pool only decides where each one
    // executes; every result lands in its spec's slot regardless of
    // completion order.
    support::ThreadPool pool(workers);
    pool.parallelFor(specs.size(), [&](std::size_t i) {
        results[i] = runOne(specs[i], cfg);
    });
    return results;
}

bool
identicalProfiles(const PowerProfile& a, const PowerProfile& b)
{
    if (a.label() != b.label() || a.kind() != b.kind() ||
        a.size() != b.size())
        return false;
    for (std::size_t i = 0; i < a.size(); ++i) {
        if (!(a.points()[i] == b.points()[i]))
            return false;
    }
    return true;
}

bool
identicalProfileSets(const ProfileSet& a, const ProfileSet& b)
{
    return a.label == b.label &&
           a.measured_exec_time == b.measured_exec_time &&
           a.guidance.runs == b.guidance.runs &&
           a.guidance.binning_margin == b.guidance.binning_margin &&
           a.runs_executed == b.runs_executed &&
           a.binning.bin_center == b.binning.bin_center &&
           a.binning.golden_runs == b.binning.golden_runs &&
           a.binning.total_runs == b.binning.total_runs &&
           a.sse_exec_index == b.sse_exec_index &&
           a.ssp_exec_index == b.ssp_exec_index &&
           a.execs_per_run == b.execs_per_run &&
           a.ssp_exec_time == b.ssp_exec_time &&
           a.read_delay_us == b.read_delay_us &&
           a.drift_ppm == b.drift_ppm && identicalProfiles(a.sse, b.sse) &&
           identicalProfiles(a.ssp, b.ssp) &&
           identicalProfiles(a.timeline, b.timeline);
}

}  // namespace fingrav::core

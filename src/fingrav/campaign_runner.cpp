#include "fingrav/campaign_runner.hpp"

#include <algorithm>
#include <utility>

#include "kernels/workloads.hpp"
#include "support/logging.hpp"

namespace fingrav::core {

namespace {

std::size_t
scenarioDevices(const ScenarioSpec& spec,
                const kernels::KernelModelPtr& kernel,
                const sim::MachineConfig& cfg)
{
    if (spec.devices != 0)
        return spec.devices;
    if (kernel->isCollective())
        return 0;  // full node
    // Non-collective foreground: one GPU, plus enough devices to host
    // every background kernel load — capped at the node size (a load on
    // a device the node does not have is rejected downstream).
    std::size_t devices = 1;
    for (const auto& load : spec.background) {
        if (load.kind == BackgroundKind::kKernel)
            devices = std::max(devices, load.device + 1);
    }
    return std::min(devices, cfg.node_gpus);
}

}  // namespace

CampaignNode::CampaignNode(const ScenarioSpec& spec,
                           const sim::MachineConfig& cfg)
    : kernel_(kernels::kernelByLabel(spec.label, cfg)),
      sim_(cfg, spec.seed, scenarioDevices(spec, kernel_, cfg)),
      host_(sim_, sim_.forkRng(7))
{
    // The background channel is armed off dedicated root stream 9; an
    // empty background list arms nothing, so an isolated scenario's node
    // is bitwise the pre-scenario node (forking is a pure function of
    // the root seed and never perturbs streams 7/8).
    host_.armBackground(buildBackgroundStreams(spec, sim_), sim_.forkRng(9));
}

CampaignNode::CampaignNode(const CampaignSpec& spec,
                           const sim::MachineConfig& cfg)
    : CampaignNode(ScenarioSpec::fromCampaign(spec), cfg)
{
}

CampaignRunner::CampaignRunner(std::size_t threads)
    : backend_(std::make_shared<ThreadPoolBackend>(threads))
{
    threads_ = static_cast<ThreadPoolBackend&>(*backend_).threads();
}

CampaignRunner::CampaignRunner(std::shared_ptr<ExecutionBackend> backend)
    : threads_(0), backend_(std::move(backend))
{
    if (!backend_)
        support::fatal("CampaignRunner: null execution backend");
}

ProfileSet
CampaignRunner::runOne(const ScenarioSpec& spec, const sim::MachineConfig& cfg)
{
    CampaignNode node(spec, cfg);
    if (spec.profile_fn) {
        return spec.profile_fn(node.host(), node.kernel(), spec.opts,
                               node.profilerRng());
    }
    return Profiler(node.host(), spec.opts, node.profilerRng())
        .profile(node.kernel());
}

ProfileSet
CampaignRunner::runOne(const CampaignSpec& spec, const sim::MachineConfig& cfg)
{
    return runOne(ScenarioSpec::fromCampaign(spec), cfg);
}

std::vector<ProfileSet>
CampaignRunner::run(const std::vector<ScenarioSpec>& specs,
                    const sim::MachineConfig& cfg) const
{
    auto results = backend_->execute(specs, cfg);
    if (results.size() != specs.size()) {
        support::panic("execution backend '", backend_->name(),
                       "' returned ", results.size(), " results for ",
                       specs.size(), " specs");
    }
    return results;
}

std::vector<ProfileSet>
CampaignRunner::run(const std::vector<CampaignSpec>& specs,
                    const sim::MachineConfig& cfg) const
{
    std::vector<ScenarioSpec> scenarios;
    scenarios.reserve(specs.size());
    for (const auto& spec : specs)
        scenarios.push_back(ScenarioSpec::fromCampaign(spec));
    return run(scenarios, cfg);
}

bool
identicalProfiles(const PowerProfile& a, const PowerProfile& b)
{
    if (a.label() != b.label() || a.kind() != b.kind() ||
        a.size() != b.size())
        return false;
    for (std::size_t i = 0; i < a.size(); ++i) {
        if (!(a.points()[i] == b.points()[i]))
            return false;
    }
    return true;
}

bool
identicalProfileSets(const ProfileSet& a, const ProfileSet& b)
{
    return a.label == b.label &&
           a.measured_exec_time == b.measured_exec_time &&
           a.guidance.runs == b.guidance.runs &&
           a.guidance.binning_margin == b.guidance.binning_margin &&
           a.runs_executed == b.runs_executed &&
           a.binning.bin_center == b.binning.bin_center &&
           a.binning.golden_runs == b.binning.golden_runs &&
           a.binning.total_runs == b.binning.total_runs &&
           a.sse_exec_index == b.sse_exec_index &&
           a.ssp_exec_index == b.ssp_exec_index &&
           a.execs_per_run == b.execs_per_run &&
           a.ssp_exec_time == b.ssp_exec_time &&
           a.loi_target == b.loi_target &&
           a.read_delay_us == b.read_delay_us &&
           a.drift_ppm == b.drift_ppm && identicalProfiles(a.sse, b.sse) &&
           identicalProfiles(a.ssp, b.ssp) &&
           identicalProfiles(a.timeline, b.timeline);
}

}  // namespace fingrav::core

#include "fingrav/worker_fleet.hpp"

#include <algorithm>
#include <cerrno>
#include <chrono>
#include <csignal>
#include <cstring>
#include <deque>
#include <map>
#include <mutex>
#include <thread>
#include <utility>

#include <poll.h>
#include <sys/wait.h>

#include "fingrav/campaign_cache.hpp"
#include "fingrav/codec.hpp"
#include "support/logging.hpp"
#include "support/rng.hpp"

namespace fingrav::core {

namespace {

using support::DegradeKind;
using runtime::FrameStatus;
using runtime::IoBudget;
using Clock = std::chrono::steady_clock;

/** One-spec request in the kShardRequest wire layout (count = 1). */
std::vector<std::uint8_t>
encodeSpecRequest(const sim::MachineConfig& cfg, std::size_t slot,
                  const ScenarioSpec& spec)
{
    codec::Encoder enc;
    codec::encodeMachineConfig(enc, cfg);
    enc.u32(1);
    enc.u64(slot);
    codec::encodeScenarioSpec(enc, spec);
    return enc.bytes();
}

}  // namespace

// ---------------------------------------------------------------------------
// WorkerFleet
// ---------------------------------------------------------------------------

WorkerFleet::WorkerFleet(FleetOptions opts)
    : opts_(std::move(opts)), injector_(opts_.fault_plan)
{
    if (opts_.workers == 0)
        support::fatal("WorkerFleet: workers must be >= 1");
    if (opts_.worker_command.empty())
        opts_.worker_command = {"./fingrav_cli", "--serve"};
    members_.resize(opts_.workers);
    runtime::ignoreSigpipeOnce();
}

WorkerFleet::~WorkerFleet()
{
    shutdownAll();
}

WorkerFleet::Ensure
WorkerFleet::ensure(std::size_t seat)
{
    Member& m = members_[seat];
    if (m.live)
        return Ensure::kAlreadyLive;
    if (disabled_)
        return Ensure::kFailed;
    const std::size_t attempt = m.spawn_round++;
    std::string spawn_error;
    bool spawned = false;
    if (injector_.armed() && injector_.onSpawn(seat, attempt)) {
        spawn_error = "injected spawn failure";
    } else {
        std::vector<std::string> argv = opts_.worker_command;
        if (injector_.armed()) {
            // A fresh process restarts its injector state clean; hand it
            // exactly the sub-plan scripted for this (seat, generation).
            const std::string sub_plan = injector_.workerPlan(seat, attempt);
            if (!sub_plan.empty()) {
                argv.push_back("--fault-plan");
                argv.push_back(sub_plan);
            }
        }
        spawned = runtime::spawnWorkerProcess(argv, m.proc);
        if (!spawned)
            spawn_error = std::strerror(errno);
    }
    if (!spawned) {
        support::warn("WorkerFleet: cannot spawn resident '",
                      opts_.worker_command.front(), "' into seat ", seat,
                      " (", spawn_error, ")");
        journal_.record(DegradeKind::kSpawnFailure, "fleet seat ", seat,
                        " generation ", attempt, ": ", spawn_error);
        if (++consecutive_spawn_failures_ >= opts_.crash_loop_spawns) {
            disabled_ = true;
            journal_.record(DegradeKind::kCrashLoop,
                            consecutive_spawn_failures_,
                            " consecutive spawn failures; fleet disabled "
                            "for the rest of its lifetime");
            support::warn(
                "WorkerFleet: ", consecutive_spawn_failures_,
                " consecutive spawn failures — the environment looks "
                "broken; disabling the fleet (results unchanged, "
                "everything executes in-process)");
        }
        return Ensure::kFailed;
    }
    consecutive_spawn_failures_ = 0;
    ++lifetime_spawns_;
    m.live = true;
    return Ensure::kSpawned;
}

bool
WorkerFleet::ping(std::size_t seat)
{
    Member& m = members_[seat];
    if (!m.live)
        return false;
    const auto wire = codec::encodeFrame(codec::FrameType::kPing, {});
    const IoBudget budget =
        IoBudget::inactivityOnly(std::max<long>(1, opts_.keepalive_timeout_ms));
    bool ok = runtime::writeAll(m.proc.to_child, wire.data(), wire.size(),
                                budget);
    if (ok) {
        codec::Frame frame;
        ok = runtime::readWorkerFrame(m.proc.from_child, budget, frame) ==
                 FrameStatus::kFrame &&
             frame.type == codec::FrameType::kPong;
    }
    if (!ok) {
        journal_.record(DegradeKind::kWorkerDeath, "fleet seat ", seat,
                        ": resident failed its keepalive probe; retired");
        support::warn("WorkerFleet: resident in seat ", seat,
                      " failed its keepalive probe; retiring it");
        retire(seat, true);
    }
    return ok;
}

void
WorkerFleet::retire(std::size_t seat, bool kill)
{
    Member& m = members_[seat];
    runtime::closeFd(m.proc.to_child);
    runtime::closeFd(m.proc.from_child);
    if (m.proc.pid > 0) {
        // A retiring worker may still be alive (stalled, mid-compute):
        // kill its whole process group first so the blocking reap below
        // cannot hang on it.
        if (kill)
            ::kill(-static_cast<pid_t>(m.proc.pid), SIGKILL);
        ::waitpid(static_cast<pid_t>(m.proc.pid), nullptr, 0);
        m.proc.pid = -1;
    }
    m.live = false;
}

void
WorkerFleet::shutdownAll()
{
    // Graceful pass: an explicit kShutdown frame plus the pipe EOF
    // backstop; the serve loop treats either as a clean exit.
    const auto wire = codec::encodeFrame(codec::FrameType::kShutdown, {});
    for (Member& m : members_) {
        if (!m.live)
            continue;
        runtime::writeAll(m.proc.to_child, wire.data(), wire.size(),
                          IoBudget::inactivityOnly(200));
        runtime::closeFd(m.proc.to_child);
    }
    // Bounded reap: residents exit promptly from their read loop; a
    // straggler (wedged, stalled by a fault) is killed rather than
    // letting a destructor hang.
    const auto deadline = Clock::now() + std::chrono::milliseconds(1000);
    for (Member& m : members_) {
        if (m.proc.pid <= 0) {
            runtime::closeFd(m.proc.from_child);
            m.live = false;
            continue;
        }
        for (;;) {
            const pid_t reaped = ::waitpid(
                static_cast<pid_t>(m.proc.pid), nullptr, WNOHANG);
            if (reaped != 0)
                break;
            if (Clock::now() >= deadline) {
                ::kill(-static_cast<pid_t>(m.proc.pid), SIGKILL);
                ::waitpid(static_cast<pid_t>(m.proc.pid), nullptr, 0);
                break;
            }
            std::this_thread::sleep_for(std::chrono::milliseconds(5));
        }
        m.proc.pid = -1;
        runtime::closeFd(m.proc.from_child);
        m.live = false;
    }
}

// ---------------------------------------------------------------------------
// FleetBackend
// ---------------------------------------------------------------------------

FleetBackend::FleetBackend(FleetOptions opts) : fleet_(std::move(opts)) {}

std::vector<ProfileSet>
FleetBackend::execute(const std::vector<ScenarioSpec>& specs,
                      const sim::MachineConfig& cfg)
{
    if (executing_.exchange(true)) {
        support::fatal(
            "FleetBackend::execute called reentrantly: one instance "
            "serves one run at a time (hold one FleetBackend per "
            "concurrent driver)");
    }
    struct Release {
        std::atomic<bool>& flag;
        ~Release() { flag.store(false); }
    } release{executing_};

    // Both the fleet (spawn failures, keepalive deaths, crash loop) and
    // the cache journal their own degradations; fold the events this
    // call produced so lastStats() is the one place they surface.
    const std::size_t fleet_mark = fleet_.journal().size();
    const std::size_t cache_mark =
        cache() ? cache()->journal().size() : 0;

    stats_ = {};
    std::vector<ProfileSet> out;
    if (!cache()) {
        out = executeUncached(specs, cfg);
    } else {
        auto consult = consultCache(specs, cfg);
        stats_.cached_specs = specs.size() - consult.pending.size();
        commitCache(consult, executeUncached(consult.pending, cfg), cfg);
        out = std::move(consult.results);
    }
    for (const auto& event : fleet_.journal().eventsSince(fleet_mark))
        stats_.journal.record(event.kind, event.detail);
    if (cache()) {
        for (const auto& event : cache()->journal().eventsSince(cache_mark))
            stats_.journal.record(event.kind, event.detail);
    }
    return out;
}

std::vector<ProfileSet>
FleetBackend::executeUncached(const std::vector<ScenarioSpec>& specs,
                              const sim::MachineConfig& cfg)
{
    std::vector<ProfileSet> results(specs.size());
    if (specs.empty())
        return results;
    const FleetOptions& opts = fleet_.options();

    // profile_fn specs have no wire form: they stay in-process.
    std::vector<std::size_t> fallback;
    std::vector<std::size_t> remote_slots;
    for (std::size_t i = 0; i < specs.size(); ++i) {
        if (specs[i].profile_fn) {
            fallback.push_back(i);
            ++stats_.local_specs;
        } else {
            remote_slots.push_back(i);
        }
    }

    // Longest-predicted-first: the scheduler's whole job is keeping the
    // most expensive spec from being picked up last.  Ties break on the
    // slot so the queue order is deterministic.
    const CostModel& model = opts.cost_model;
    std::vector<std::pair<double, std::size_t>> ranked;
    ranked.reserve(remote_slots.size());
    for (const std::size_t slot : remote_slots)
        ranked.emplace_back(model.predict(specs[slot], cfg), slot);
    std::sort(ranked.begin(), ranked.end(), [](const auto& a, const auto& b) {
        if (a.first != b.first)
            return a.first > b.first;
        return a.second < b.second;
    });
    std::deque<std::size_t> queue;
    for (const auto& [cost, slot] : ranked)
        queue.push_back(slot);

    // Nested-oversubscription guard, mirrored from the other backends:
    // the shipped config must not depend on scheduling decisions (the
    // cache key embeds it), so the cap derives from the fleet size the
    // dispatch *could* use, never from the retry path.
    const std::size_t initial_workers = std::min(
        fleet_.size(), std::max<std::size_t>(queue.size(), 1));
    sim::MachineConfig effective = cfg;
    const std::size_t advance =
        std::max<std::size_t>(1, cfg.advance_threads);
    const unsigned hw = std::thread::hardware_concurrency();
    if (hw > 0 && initial_workers * advance > hw) {
        const std::size_t cap =
            std::max<std::size_t>(1, hw / initial_workers);
        if (cap < advance) {
            static std::once_flag warned;
            std::call_once(warned, [&] {
                support::warn("FleetBackend: ", initial_workers,
                              " workers x ", advance,
                              " advance threads exceed ", hw,
                              " hardware threads; capping per-campaign "
                              "advance threads at ", cap,
                              " (results unchanged)");
            });
            effective.advance_threads = cap;
        }
    }

    // Acquire: probe residents that survived the previous dispatch —
    // one that died in between must not be trusted with a request.
    const std::size_t want = std::min(fleet_.size(), queue.size());
    for (std::size_t seat = 0; seat < want; ++seat) {
        if (fleet_.live(seat) && !fleet_.ping(seat))
            ++stats_.keepalive_failures;
    }

    /** Per-seat dispatch state for this execute() call. */
    struct SeatState {
        bool busy = false;
        bool delivered = false;  ///< result for `slot` already landed
        bool assigned_before = false;
        std::size_t slot = 0;
        Clock::time_point last_activity;
        bool has_deadline = false;
        Clock::time_point deadline;
    };
    std::vector<SeatState> seats(fleet_.size());

    std::map<std::size_t, std::size_t> worker_deaths;  // slot -> count
    std::map<std::size_t, std::size_t> slot_retries;
    std::vector<std::size_t> exhausted;
    support::Rng backoff_rng(opts.backoff_seed);
    std::size_t redispatch_events = 0;

    /** Budget for frame reads off one busy seat. */
    const auto seatBudget = [&](const SeatState& seat) {
        IoBudget budget = IoBudget::inactivityOnly(opts.io_timeout_ms);
        budget.has_deadline = seat.has_deadline;
        budget.deadline = seat.deadline;
        return budget;
    };

    /** Hand the queue front to a live idle seat; false = write failed. */
    const auto sendTo = [&](std::size_t seat, std::size_t slot) {
        SeatState& state = seats[seat];
        state.slot = slot;
        state.delivered = false;
        const auto request = encodeSpecRequest(effective, slot, specs[slot]);
        const auto wire =
            codec::encodeFrame(codec::FrameType::kShardRequest, request);
        if (!runtime::writeAll(fleet_.writeFd(seat), wire.data(),
                               wire.size(),
                               IoBudget::inactivityOnly(opts.io_timeout_ms)))
            return false;
        state.busy = true;
        state.last_activity = Clock::now();
        state.has_deadline = opts.spec_deadline_ms > 0;
        if (state.has_deadline) {
            state.deadline =
                state.last_activity +
                std::chrono::milliseconds(opts.spec_deadline_ms);
        }
        if (state.assigned_before)
            ++stats_.pulls;
        state.assigned_before = true;
        stats_.dispatch_order.push_back(slot);
        return true;
    };

    /** A busy seat's worker is gone: retire it, re-place its spec. */
    const auto forfeit = [&](std::size_t seat, DegradeKind kind,
                             const char* cause) {
        SeatState& state = seats[seat];
        const std::size_t slot = state.slot;
        ++stats_.worker_failures;
        fleet_.retire(seat, true);
        state.busy = false;
        if (state.delivered) {
            // The result already landed bit-exact; only the worker (and
            // its clean completion frame) was lost.
            stats_.journal.record(kind, "fleet seat ", seat, ": worker ",
                                  cause, " after delivering slot ", slot);
            return;
        }
        stats_.journal.record(kind, "fleet seat ", seat, ": worker ",
                              cause, " with slot ", slot, " outstanding");
        support::warn("FleetBackend: worker in seat ", seat, " ", cause,
                      " with spec '", specs[slot].label, "' (slot ", slot,
                      ") outstanding");
        if (++worker_deaths[slot] >= opts.quarantine_deaths) {
            stats_.journal.record(
                DegradeKind::kQuarantine, "slot ", slot, " (",
                specs[slot].label, ") survived ", worker_deaths[slot],
                " worker deaths; quarantined to the in-process path");
            support::warn("FleetBackend: spec '", specs[slot].label,
                          "' (slot ", slot, ") killed ",
                          worker_deaths[slot],
                          " workers; quarantining it to the in-process "
                          "path");
            ++stats_.quarantined_specs;
            exhausted.push_back(slot);
            return;
        }
        if (slot_retries[slot] >= opts.max_retries) {
            exhausted.push_back(slot);
            return;
        }
        ++slot_retries[slot];
        ++stats_.retried_specs;
        ++redispatch_events;
        const int shift = static_cast<int>(
            std::min<std::size_t>(redispatch_events - 1, 20));
        const long base = std::min(opts.backoff_cap_ms,
                                   opts.backoff_base_ms << shift);
        const double jitter =
            backoff_rng.fork(redispatch_events).uniform(0.5, 1.5);
        const long delay_ms = std::max<long>(
            0, static_cast<long>(static_cast<double>(base) * jitter));
        stats_.backoff_ms.push_back(delay_ms);
        stats_.journal.record(DegradeKind::kRetry, "slot ", slot,
                              " redispatching (retry ", slot_retries[slot],
                              ") after ", delay_ms, " ms backoff");
        if (delay_ms > 0)
            std::this_thread::sleep_for(
                std::chrono::milliseconds(delay_ms));
        // Back to the queue front: the slot was among the
        // highest-priority pending work or it would not have been
        // running already.
        queue.push_front(slot);
    };

    /**
     * Drain one seat's response: a kShardResult then the kShardDone the
     * serve loop writes back-to-back.  Any other outcome forfeits.
     */
    const auto drainSeat = [&](std::size_t seat) {
        SeatState& state = seats[seat];
        while (state.busy) {
            codec::Frame frame;
            const FrameStatus status =
                readWorkerFrame(fleet_.readFd(seat), seatBudget(state),
                                frame);
            if (status != FrameStatus::kFrame) {
                DegradeKind kind = DegradeKind::kWorkerDeath;
                const char* cause = "died";
                if (status == FrameStatus::kCorrupt) {
                    kind = DegradeKind::kFrameCorruption;
                    cause = "produced a corrupt stream";
                } else if (status == FrameStatus::kTimeout) {
                    kind = DegradeKind::kTimeout;
                    cause = "exceeded its I/O budget";
                }
                forfeit(seat, kind, cause);
                return;
            }
            state.last_activity = Clock::now();
            try {
                switch (frame.type) {
                  case codec::FrameType::kShardResult: {
                    codec::Decoder dec(frame.payload);
                    const std::size_t slot =
                        static_cast<std::size_t>(dec.u64());
                    auto set = codec::decodeProfileSet(dec);
                    dec.expectEnd("shard result");
                    if (slot != state.slot || state.delivered) {
                        support::fatal("fleet seat ", seat,
                                       " returned unexpected slot ", slot);
                    }
                    results[slot] = std::move(set);
                    state.delivered = true;
                    ++stats_.remote_specs;
                    break;
                  }
                  case codec::FrameType::kShardDone: {
                    codec::Decoder dec(frame.payload);
                    const std::uint32_t count = dec.u32();
                    dec.expectEnd("shard done");
                    if (count != 1 || !state.delivered) {
                        support::fatal("fleet seat ", seat,
                                       " completed with its slot "
                                       "unaccounted for");
                    }
                    state.busy = false;  // idle resident, ready to pull
                    break;
                  }
                  case codec::FrameType::kWorkerError: {
                    codec::Decoder dec(frame.payload);
                    const std::string message = dec.str();
                    forfeit(seat, DegradeKind::kWorkerDeath,
                            ("reported: " + message).c_str());
                    return;
                  }
                  default:
                    support::fatal("fleet seat ", seat,
                                   " sent unexpected frame type '",
                                   codec::toString(frame.type), "'");
                }
            } catch (const support::FatalError& e) {
                support::warn("FleetBackend: seat ", seat,
                              " protocol error: ", e.what());
                forfeit(seat, DegradeKind::kFrameCorruption,
                        "broke protocol");
                return;
            }
        }
    };

    // The dispatch loop: fill idle seats from the queue front, then
    // wait (poll across every busy pipe) for whichever worker finishes
    // first and hand it the next spec — pull-based stealing; no
    // partition, so no partition imbalance.
    for (;;) {
        for (std::size_t seat = 0;
             seat < seats.size() && !queue.empty(); ++seat) {
            if (seats[seat].busy)
                continue;
            if (!fleet_.live(seat)) {
                switch (fleet_.ensure(seat)) {
                  case WorkerFleet::Ensure::kSpawned:
                    ++stats_.workers_spawned;
                    break;
                  case WorkerFleet::Ensure::kFailed:
                    ++stats_.spawn_failures;
                    stats_.crash_loop = fleet_.disabled();
                    continue;
                  case WorkerFleet::Ensure::kAlreadyLive:
                    break;
                }
            }
            const std::size_t slot = queue.front();
            queue.pop_front();
            if (!sendTo(seat, slot)) {
                seats[seat].busy = true;  // forfeit() expects a busy seat
                forfeit(seat, DegradeKind::kWorkerDeath,
                        "rejected its request");
            }
        }

        std::vector<std::size_t> busy;
        for (std::size_t seat = 0; seat < seats.size(); ++seat) {
            if (seats[seat].busy)
                busy.push_back(seat);
        }
        if (busy.empty()) {
            // Nothing in flight.  With work left and spawning still
            // allowed, retry the seats: every consecutive failure
            // advances the crash-loop counter, so this terminates —
            // either a spawn succeeds or the fleet disables itself.
            if (!queue.empty() && !fleet_.disabled())
                continue;
            break;
        }

        // Poll timeout: the earliest inactivity/deadline expiry across
        // the busy seats (a computing worker writes nothing, so the
        // budget has to be enforced here, not just inside frame reads).
        const auto now = Clock::now();
        long timeout_ms = -1;
        for (const std::size_t seat : busy) {
            const SeatState& state = seats[seat];
            bool bounded = false;
            Clock::time_point expiry{};
            if (opts.io_timeout_ms > 0) {
                expiry = state.last_activity +
                         std::chrono::milliseconds(opts.io_timeout_ms);
                bounded = true;
            }
            if (state.has_deadline &&
                (!bounded || state.deadline < expiry)) {
                expiry = state.deadline;
                bounded = true;
            }
            if (!bounded)
                continue;
            const long remaining = static_cast<long>(
                std::chrono::duration_cast<std::chrono::milliseconds>(
                    expiry - now)
                    .count());
            const long clamped = std::max<long>(0, remaining);
            timeout_ms = timeout_ms < 0 ? clamped
                                        : std::min(timeout_ms, clamped);
        }

        std::vector<struct pollfd> pfds;
        pfds.reserve(busy.size());
        for (const std::size_t seat : busy) {
            struct pollfd pfd {};
            pfd.fd = fleet_.readFd(seat);
            pfd.events = POLLIN;
            pfds.push_back(pfd);
        }
        const int ready = ::poll(
            pfds.data(), pfds.size(),
            timeout_ms < 0 ? -1 : static_cast<int>(timeout_ms));
        if (ready < 0) {
            if (errno == EINTR)
                continue;  // budgets re-derived from the clock above
            support::fatal("FleetBackend: poll failed: ",
                           std::strerror(errno));
        }
        if (ready > 0) {
            for (std::size_t k = 0; k < busy.size(); ++k) {
                if (pfds[k].revents != 0)
                    drainSeat(busy[k]);
            }
        } else {
            // Timeout: forfeit every busy seat whose budget expired.
            const auto deadline_now = Clock::now();
            for (const std::size_t seat : busy) {
                const SeatState& state = seats[seat];
                const bool inactivity_expired =
                    opts.io_timeout_ms > 0 &&
                    deadline_now - state.last_activity >=
                        std::chrono::milliseconds(opts.io_timeout_ms);
                const bool deadline_expired =
                    state.has_deadline && deadline_now >= state.deadline;
                if (inactivity_expired || deadline_expired) {
                    forfeit(seat, DegradeKind::kTimeout,
                            "exceeded its I/O budget");
                }
            }
        }
    }

    // Slots the scheduler could not place — retry budget exhausted,
    // quarantined, or no live worker left — join the in-process path.
    if (!queue.empty()) {
        exhausted.insert(exhausted.end(), queue.begin(), queue.end());
        queue.clear();
    }
    if (!exhausted.empty()) {
        stats_.journal.record(
            DegradeKind::kFallback, exhausted.size(),
            " slot(s) fall back in-process (",
            stats_.crash_loop ? "fleet disabled by crash loop"
                              : "retry budget exhausted",
            ")");
        fallback.insert(fallback.end(), exhausted.begin(),
                        exhausted.end());
    }

    if (!fallback.empty()) {
        std::sort(fallback.begin(), fallback.end());
        std::vector<ScenarioSpec> local_specs;
        local_specs.reserve(fallback.size());
        for (const std::size_t slot : fallback)
            local_specs.push_back(specs[slot]);
        auto local_results = ThreadPoolBackend(opts.fallback_threads)
                                 .execute(local_specs, cfg);
        for (std::size_t k = 0; k < fallback.size(); ++k)
            results[fallback[k]] = std::move(local_results[k]);
        stats_.fallback_specs = fallback.size() - stats_.local_specs;
    }
    for (std::size_t seat = 0; seat < fleet_.size(); ++seat) {
        if (fleet_.live(seat))
            ++stats_.workers_live;
    }
    return results;
}

std::vector<std::string>
defaultServeCommand(const std::string& argv0)
{
    const auto slash = argv0.find_last_of('/');
    const std::string base =
        slash == std::string::npos ? argv0 : argv0.substr(slash + 1);
    if (base == "fingrav_cli")
        return {argv0, "--serve"};
    const std::string dir =
        slash == std::string::npos ? "." : argv0.substr(0, slash);
    return {dir + "/fingrav_cli", "--serve"};
}

}  // namespace fingrav::core

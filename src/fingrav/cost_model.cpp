#include "fingrav/cost_model.hpp"

#include <algorithm>
#include <array>
#include <cmath>

#include "fingrav/guidance.hpp"
#include "fingrav/profiler.hpp"
#include "fingrav/recorded_campaign.hpp"
#include "kernels/workloads.hpp"
#include "support/logging.hpp"

namespace fingrav::core {

namespace {

// Floors keeping every feature positive: an unknown kernel label, a
// zero-duration kernel or an empty background list must still produce a
// finite, sortable prediction (and no expression below may divide).
constexpr double kMinExecUs = 0.1;
constexpr double kMinPrediction = 1e-3;

/** Assemble the feature vector from resolved inputs (see features()). */
CostFeatures
assembleFeatures(const ScenarioSpec& spec, const sim::MachineConfig& cfg,
                 double exec_us, bool collective, double runs)
{
    CostFeatures f;
    f.exec_us = std::max(exec_us, kMinExecUs);
    f.runs = std::max(runs, 1.0);

    // Executions per run: the SSE warm-up block plus the harvest region
    // the profiler keeps running so steady-state LOIs land per run.
    const support::Duration window =
        spec.opts.logger_window.nanos() > 0 ? spec.opts.logger_window
                                            : cfg.logger_window;
    const std::size_t harvest =
        harvestExecutions(support::Duration::micros(f.exec_us), window);
    f.execs_per_run = std::max<double>(
        1.0, static_cast<double>(spec.opts.sse_executions + harvest));

    // Devices the node steps each advance: explicit when the spec says
    // so, otherwise the auto rule CampaignNode applies — the full node
    // for collectives or any scenario with background loads, one GPU
    // for an isolated compute kernel.
    if (spec.devices > 0) {
        f.devices = static_cast<double>(spec.devices);
    } else if (collective || !spec.background.empty()) {
        f.devices = static_cast<double>(std::max<std::size_t>(
            1, cfg.node_gpus));
    } else {
        f.devices = 1.0;
    }

    // Environment activity: each load adds its duty-cycle-weighted
    // pressure (a kernel load is one busy co-tenant; a demand load
    // scales with the injected bandwidth fraction).  One-shot loads
    // (period <= 0) are always-on for scheduling purposes.
    f.background = 1.0;
    for (const auto& load : spec.background) {
        const double duty =
            load.period.nanos() <= 0
                ? 1.0
                : std::clamp(load.duty_cycle, 0.0, 1.0);
        const double weight = load.kind == BackgroundKind::kKernel
                                  ? 1.0
                                  : std::max(load.demand, 0.0);
        f.background += duty * weight;
    }
    return f;
}

}  // namespace

CostFeatures
CostModel::features(const ScenarioSpec& spec,
                    const sim::MachineConfig& cfg) const
{
    double exec_us = kMinExecUs;
    bool collective = false;
    try {
        const auto kernel = kernels::kernelByLabel(spec.label, cfg);
        exec_us = kernel->nominalDuration().toMicros();
        collective = kernel->isCollective();
    } catch (const support::FatalError&) {
        // Unknown label (custom profile_fn campaigns): predict off the
        // floors rather than refuse to schedule.
    }
    double runs;
    if (spec.opts.runs_override.has_value()) {
        runs = static_cast<double>(*spec.opts.runs_override);
    } else {
        runs = static_cast<double>(
            GuidanceTable::paperDefault()
                .lookup(support::Duration::micros(
                    std::max(exec_us, kMinExecUs)))
                .runs);
    }
    // Step-8 top-up headroom: campaigns that collect extra runs execute
    // more than the base budget when the LOI target is short; half the
    // cap is the expected overshoot.
    if (spec.opts.collect_extra_runs)
        runs *= 1.0 + 0.5 * std::max(spec.opts.max_extra_run_factor, 0.0);
    return assembleFeatures(spec, cfg, exec_us, collective, runs);
}

double
CostModel::predict(const ScenarioSpec& spec,
                   const sim::MachineConfig& cfg) const
{
    const CostFeatures f = features(spec, cfg);
    if (!calibrated_)
        return std::max(f.work(), kMinPrediction);
    return std::max(coeff_base_ + coeff_event_ * f.events() +
                        coeff_work_ * f.work(),
                    kMinPrediction);
}

void
CostModel::observe(const ScenarioSpec& spec, const sim::MachineConfig& cfg,
                   double wall_ms)
{
    observations_.push_back({features(spec, cfg), wall_ms});
}

void
CostModel::observe(const RecordedCampaign& recording,
                   const sim::MachineConfig& cfg, double wall_ms)
{
    // The recording knows what actually ran: the executed run pool and
    // the step-1 measured execution time replace the static plan.
    const ScenarioSpec& spec = recording.spec();
    bool collective = false;
    try {
        collective = kernels::kernelByLabel(spec.label, cfg)->isCollective();
    } catch (const support::FatalError&) {
    }
    observations_.push_back(
        {assembleFeatures(spec, cfg,
                          recording.measuredExecTime().toMicros(),
                          collective,
                          static_cast<double>(recording.runCount())),
         wall_ms});
}

bool
CostModel::calibrate()
{
    if (observations_.size() < 3)
        return false;

    // Normal equations for wall ~= a + b*events + c*work: accumulate
    // X^T X (symmetric 3x3) and X^T y, then Gaussian elimination with
    // partial pivoting.  Work values span orders of magnitude, so the
    // pivot threshold is relative to the column scale.
    std::array<std::array<double, 3>, 3> m{};
    std::array<double, 3> rhs{};
    for (const auto& obs : observations_) {
        const std::array<double, 3> x{1.0, obs.features.events(),
                                      obs.features.work()};
        for (std::size_t i = 0; i < 3; ++i) {
            rhs[i] += x[i] * obs.wall_ms;
            for (std::size_t j = 0; j < 3; ++j)
                m[i][j] += x[i] * x[j];
        }
    }
    double scale = 0.0;
    for (const auto& row : m)
        for (const double v : row)
            scale = std::max(scale, std::fabs(v));
    if (scale <= 0.0)
        return false;
    for (std::size_t col = 0; col < 3; ++col) {
        std::size_t pivot = col;
        for (std::size_t row = col + 1; row < 3; ++row) {
            if (std::fabs(m[row][col]) > std::fabs(m[pivot][col]))
                pivot = row;
        }
        if (std::fabs(m[pivot][col]) < 1e-12 * scale)
            return false;  // singular: e.g. all observations identical
        std::swap(m[col], m[pivot]);
        std::swap(rhs[col], rhs[pivot]);
        for (std::size_t row = col + 1; row < 3; ++row) {
            const double factor = m[row][col] / m[col][col];
            for (std::size_t j = col; j < 3; ++j)
                m[row][j] -= factor * m[col][j];
            rhs[row] -= factor * rhs[col];
        }
    }
    std::array<double, 3> solution{};
    for (std::size_t i = 3; i-- > 0;) {
        double v = rhs[i];
        for (std::size_t j = i + 1; j < 3; ++j)
            v -= m[i][j] * solution[j];
        solution[i] = v / m[i][i];
    }
    if (!std::isfinite(solution[0]) || !std::isfinite(solution[1]) ||
        !std::isfinite(solution[2]))
        return false;
    coeff_base_ = solution[0];
    coeff_event_ = solution[1];
    coeff_work_ = solution[2];
    calibrated_ = true;
    return true;
}

}  // namespace fingrav::core

#ifndef FINGRAV_FINGRAV_CODEC_HPP_
#define FINGRAV_FINGRAV_CODEC_HPP_

/**
 * @file
 * Versioned canonical binary encoding for the campaign wire contract.
 *
 * Distributed campaign sharding (fingrav/shard_backend.hpp) ships
 * hermetic scenarios to worker processes and slot-addressed results
 * back; the encoding defined here is the wire contract both sides speak.
 * Three properties it must hold, in order of importance:
 *
 *  - *Round-trip exactness.*  decode(encode(x)) reproduces every field
 *    of x bit-for-bit — doubles travel as their IEEE-754 bit patterns,
 *    simulated time as raw nanosecond counts — so a ProfileSet computed
 *    in a worker and reassembled by the driver is indistinguishable from
 *    one computed in-process (the ShardBackend bit-identity gate).
 *
 *  - *Canonical form.*  Equal values encode to equal bytes: fixed-width
 *    little-endian integers, length-prefixed strings and vectors, fields
 *    in declaration order, no padding, no optional representations.
 *
 *  - *Versioned framing.*  Every frame carries the codec version and an
 *    FNV-1a payload checksum; a reader confronted with a foreign
 *    version, a corrupt header or a truncated/mangled payload fails
 *    cleanly (support::FatalError) instead of decoding garbage.
 *    Any change to any encoded layout MUST bump kCodecVersion — there
 *    is deliberately no per-field tagging; the version is the schema.
 *
 * What crosses the wire: ScenarioSpec (foreground kernel reference,
 * BackgroundLoad schedules, seeds, profiler options), MachineConfig
 * (so a worker rebuilds the exact node the driver would have), and
 * ProfileSet (SSE/SSP/timeline points including contention flags,
 * guidance/LOI-yield fields, sync calibration outputs).  A ScenarioSpec
 * carrying a custom profile_fn cannot cross the wire (a std::function
 * has no canonical bytes); encodeScenarioSpec rejects it and the
 * ShardBackend keeps such specs on the in-process path.
 */

#include <cstddef>
#include <cstdint>
#include <iosfwd>
#include <optional>
#include <string>
#include <vector>

#include "fingrav/profiler.hpp"
#include "fingrav/scenario.hpp"
#include "sim/machine_config.hpp"
#include "support/time_types.hpp"

namespace fingrav::core::codec {

/** "FGRV" in little-endian byte order. */
inline constexpr std::uint32_t kMagic = 0x56524746u;

/**
 * Schema version; bump on ANY layout change (docs/ARCHITECTURE.md).
 * v2: PowerProfile payloads are columnar — one contiguous little-endian
 * block per point field plus a packed contention bitmap, instead of
 * field-interleaved per-point records.
 * v3: control frames for persistent workers — kPing/kPong keepalive and
 * kShutdown — extend the frame-type range a v2 reader would reject.
 */
inline constexpr std::uint16_t kVersion = 3;

/** Frame payload types. */
enum class FrameType : std::uint16_t {
    kScenarioSpec = 1,  ///< one ScenarioSpec (tests, tooling)
    kProfileSet = 2,    ///< one ProfileSet (tests, tooling)
    kShardRequest = 3,  ///< MachineConfig + [(slot, ScenarioSpec)]
    kShardResult = 4,   ///< one (slot, ProfileSet) — streamed per spec
    kShardDone = 5,     ///< u32 result count: clean shard completion
    kWorkerError = 6,   ///< string: worker-side fatal diagnostic
    kCacheEntry = 7,    ///< key bytes + ProfileSet (on-disk campaign cache)
    kPing = 8,          ///< empty: driver keepalive probe to an idle worker
    kPong = 9,          ///< empty: worker liveness reply to kPing
    kShutdown = 10,     ///< empty: clean fleet-worker shutdown request
};

/** Printable frame-type name. */
const char* toString(FrameType type);

/**
 * Append-only canonical byte builder.  All integers little-endian,
 * doubles as IEEE-754 bit patterns, strings/vectors length-prefixed.
 */
class Encoder {
  public:
    void u8(std::uint8_t v);
    void u16(std::uint16_t v);
    void u32(std::uint32_t v);
    void u64(std::uint64_t v);
    void i64(std::int64_t v);
    void f64(double v);
    void boolean(bool v);
    void str(const std::string& v);
    void duration(support::Duration v);

    void optU64(const std::optional<std::size_t>& v);
    void optF64(const std::optional<double>& v);
    void optDuration(const std::optional<support::Duration>& v);

    /**
     * Bulk column writers (v2 profile frames): the whole vector as one
     * contiguous little-endian element block — on little-endian hosts a
     * single byte append, no per-element shifting.  The element count is
     * NOT written; the enclosing layout carries it once.
     */
    void f64Column(const std::vector<double>& v);
    void i64Column(const std::vector<std::int64_t>& v);
    void u64Column(const std::vector<std::uint64_t>& v);

    const std::vector<std::uint8_t>& bytes() const { return bytes_; }

  private:
    std::vector<std::uint8_t> bytes_;
};

/**
 * Bounds-checked reader over an encoded payload.  Every read that would
 * cross the end of the buffer throws support::FatalError ("truncated"),
 * as does any enum/length field outside its valid range — a corrupted
 * or foreign payload can never silently decode.
 */
class Decoder {
  public:
    Decoder(const std::uint8_t* data, std::size_t size)
        : data_(data), size_(size)
    {
    }

    explicit Decoder(const std::vector<std::uint8_t>& buffer)
        : Decoder(buffer.data(), buffer.size())
    {
    }

    std::uint8_t u8();
    std::uint16_t u16();
    std::uint32_t u32();
    std::uint64_t u64();
    std::int64_t i64();
    double f64();
    bool boolean();
    std::string str();
    support::Duration duration();

    std::optional<std::size_t> optU64();
    std::optional<double> optF64();
    std::optional<support::Duration> optDuration();

    /**
     * Bulk column readers (v2 profile frames): `n` little-endian
     * elements in one bounds check + block copy.  `n` must already have
     * passed checkedCount; truncation is fatal as usual.
     */
    std::vector<double> f64Column(std::size_t n);
    std::vector<std::int64_t> i64Column(std::size_t n);
    std::vector<std::uint64_t> u64Column(std::size_t n);

    /** Bytes not yet consumed. */
    std::size_t remaining() const { return size_ - pos_; }

    /** True once the payload is fully consumed. */
    bool atEnd() const { return pos_ == size_; }

    /** Fail unless the payload was consumed exactly. */
    void expectEnd(const char* what) const;

  private:
    const std::uint8_t* need(std::size_t n);

    const std::uint8_t* data_;
    std::size_t size_;
    std::size_t pos_ = 0;
};

// ---------------------------------------------------------------------------
// Payload codecs (field-by-field, declaration order; see kVersion rule)
// ---------------------------------------------------------------------------

void encodeScenarioSpec(Encoder& enc, const ScenarioSpec& spec);
ScenarioSpec decodeScenarioSpec(Decoder& dec);

void encodeProfileSet(Encoder& enc, const ProfileSet& set);
ProfileSet decodeProfileSet(Decoder& dec);

void encodeMachineConfig(Encoder& enc, const sim::MachineConfig& cfg);
sim::MachineConfig decodeMachineConfig(Decoder& dec);

/** Convenience whole-value round trips (tests, tooling). */
std::vector<std::uint8_t> encode(const ScenarioSpec& spec);
std::vector<std::uint8_t> encode(const ProfileSet& set);
std::vector<std::uint8_t> encode(const sim::MachineConfig& cfg);
ScenarioSpec decodeScenarioSpec(const std::vector<std::uint8_t>& bytes);
ProfileSet decodeProfileSet(const std::vector<std::uint8_t>& bytes);
sim::MachineConfig decodeMachineConfig(
    const std::vector<std::uint8_t>& bytes);

// ---------------------------------------------------------------------------
// Framing
// ---------------------------------------------------------------------------

/** magic(4) + version(2) + type(2) + payload_len(8) + checksum(8). */
inline constexpr std::size_t kFrameHeaderBytes = 24;

/** Parsed frame header (payload follows on the wire). */
struct FrameHeader {
    FrameType type = FrameType::kShardDone;
    std::uint64_t payload_len = 0;
    std::uint64_t checksum = 0;
};

/** FNV-1a 64-bit payload checksum. */
std::uint64_t fnv1a64(const std::uint8_t* data, std::size_t size);

/**
 * Guard for wire-derived lengths/counts: fatal when `n` is implausibly
 * large (a corrupted field must never be trusted with an allocation).
 * Every length the codec itself decodes is already guarded; custom
 * payload decoders (shard requests/results) must apply it to their own
 * count fields too.
 */
std::uint64_t checkedCount(std::uint64_t n, const char* what);

/** Serialize header + payload into one wire buffer. */
std::vector<std::uint8_t> encodeFrame(
    FrameType type, const std::vector<std::uint8_t>& payload);

/**
 * Parse and validate a frame header; fatal on bad magic or a version
 * other than kVersion (the version-mismatch rejection contract).
 * `data` must hold kFrameHeaderBytes.
 */
FrameHeader decodeFrameHeader(const std::uint8_t* data);

/** Fatal unless the payload matches the header's checksum. */
void verifyFramePayload(const FrameHeader& header,
                        const std::uint8_t* payload);

/** One frame read off a stream. */
struct Frame {
    FrameType type = FrameType::kShardDone;
    std::vector<std::uint8_t> payload;
};

/** Write one frame; returns false on stream failure. */
bool writeFrame(std::ostream& out, FrameType type,
                const std::vector<std::uint8_t>& payload);

/**
 * Read one frame.  Clean EOF on the frame boundary returns nullopt;
 * EOF inside a frame, bad magic, foreign version or checksum mismatch
 * is fatal.
 */
std::optional<Frame> readFrame(std::istream& in);

/** Parse a whole in-memory frame (header + payload, exact size). */
Frame parseFrame(const std::vector<std::uint8_t>& bytes);

}  // namespace fingrav::core::codec

#endif  // FINGRAV_FINGRAV_CODEC_HPP_

#ifndef FINGRAV_FINGRAV_COST_MODEL_HPP_
#define FINGRAV_FINGRAV_COST_MODEL_HPP_

/**
 * @file
 * Per-spec cost prediction for campaign placement.
 *
 * A campaign's wall-clock cost is predictable from the ScenarioSpec
 * alone: the guidance table fixes the run budget from the kernel's
 * nominal execution time (Table I), the profiler's harvest/SSE
 * machinery fixes executions per run, and the node shape (device count,
 * background loads) scales how much simulated machinery every advance
 * step drags along.  CostModel turns those knobs into one scalar so the
 * fleet scheduler (fingrav/worker_fleet.hpp) can dispatch
 * longest-predicted-first and keep a skewed campaign from straggling
 * behind one long scenario.
 *
 * Two operating points:
 *  - **Uncalibrated**: predict() returns the raw work product
 *    (exec-time x runs x execs-per-run x devices x background factor) —
 *    unitless, but monotone enough to sort a queue.
 *  - **Calibrated**: observe() accumulates (features, measured wall ms)
 *    pairs — hand-timed execute() calls or RecordedCampaign captures —
 *    and calibrate() fits wall_ms ~= a + b*events + c*work by least
 *    squares.  The affine term is the point: short-kernel campaigns are
 *    dominated by per-run/per-execution fixed overhead (sync
 *    calibration, inter-run delays, logger startup) that the raw
 *    product cannot see, and exactly those campaigns mis-rank without
 *    it.
 *
 * Prediction only steers placement; results are slot-addressed and
 * bit-identical whatever order the scheduler picks, so a bad prediction
 * costs wall-clock, never correctness.
 */

#include <cstddef>
#include <vector>

#include "fingrav/scenario.hpp"
#include "sim/machine_config.hpp"

namespace fingrav::core {

class RecordedCampaign;

/** The knobs predict() derives from one spec (all >= their floors). */
struct CostFeatures {
    double exec_us = 0.0;       ///< nominal foreground execution time
    double runs = 1.0;          ///< planned run budget incl. top-up headroom
    double execs_per_run = 1.0; ///< SSE warm-ups + harvest region
    double devices = 1.0;       ///< devices the node steps each advance
    double background = 1.0;    ///< environment activity factor (>= 1)

    /** Scheduled simulated events: every run pays per-event machinery. */
    double
    events() const
    {
        return runs * execs_per_run;
    }

    /** Raw work product — the uncalibrated cost. */
    double
    work() const
    {
        return exec_us * runs * execs_per_run * devices * background;
    }
};

/** One (features, measured wall-clock) calibration pair. */
struct CostObservation {
    CostFeatures features;
    double wall_ms = 0.0;
};

/**
 * Per-spec cost predictor; cheap to copy (three doubles + the
 * observation pool), deterministic, and safe on degenerate specs — an
 * unknown or zero-duration kernel and an empty background list all
 * produce finite positive predictions (floors, no division anywhere).
 */
class CostModel {
  public:
    /** Derive the cost features of one spec under `cfg`. */
    CostFeatures features(const ScenarioSpec& spec,
                          const sim::MachineConfig& cfg) const;

    /**
     * Predicted cost of executing `spec` under `cfg`.  Unitless work
     * when uncalibrated; approximate milliseconds once calibrated.
     * Always finite and > 0, so any sort on it is total.
     */
    double predict(const ScenarioSpec& spec,
                   const sim::MachineConfig& cfg) const;

    /** Record one measured execution for later calibration. */
    void observe(const ScenarioSpec& spec, const sim::MachineConfig& cfg,
                 double wall_ms);

    /**
     * Record a RecordedCampaign capture: the recording carries the run
     * pool actually executed (top-up budget included), so its feature
     * vector uses observed runs and measured execution time instead of
     * the spec's static plan.
     */
    void observe(const RecordedCampaign& recording,
                 const sim::MachineConfig& cfg, double wall_ms);

    /**
     * Fit wall_ms ~= a + b*events + c*work over the observation pool by
     * least squares (3x3 normal equations).  Returns false — and leaves
     * the model uncalibrated — with fewer than three observations or a
     * singular system (e.g. all observations identical).
     */
    bool calibrate();

    bool calibrated() const { return calibrated_; }
    std::size_t observations() const { return observations_.size(); }

    /** Fitted coefficients (a, b, c); zeros until calibrated. */
    double coeffBase() const { return coeff_base_; }
    double coeffPerEvent() const { return coeff_event_; }
    double coeffPerWork() const { return coeff_work_; }

  private:
    std::vector<CostObservation> observations_;
    bool calibrated_ = false;
    double coeff_base_ = 0.0;
    double coeff_event_ = 0.0;
    double coeff_work_ = 0.0;
};

}  // namespace fingrav::core

#endif  // FINGRAV_FINGRAV_COST_MODEL_HPP_

#ifndef FINGRAV_FINGRAV_CAMPAIGN_RUNNER_HPP_
#define FINGRAV_FINGRAV_CAMPAIGN_RUNNER_HPP_

/**
 * @file
 * Campaign-level execution engine: concurrent multi-scenario profiling.
 *
 * A profiling *campaign* — one scenario taken through the full nine-step
 * methodology on a fresh node — is hermetic: it owns its Simulation, its
 * HostRuntime, its background channel and every RNG stream, all derived
 * from the scenario seed.  Campaigns are therefore embarrassingly
 * parallel (the paper profiles each kernel in isolation; Section IV-B),
 * and every figure/table reproduction is a set of independent scenarios.
 * CampaignRunner owns that spec-order/bit-identity contract and
 * delegates *placement* to a pluggable core::ExecutionBackend
 * (fingrav/execution_backend.hpp): the default ThreadPoolBackend fans
 * specs over a support::ThreadPool, one node per campaign; ShardBackend
 * (fingrav/shard_backend.hpp) dispatches spec shards to worker
 * processes over the codec wire format.  Either way run() returns
 * ProfileSets in spec order — bit-identical to the serial loop for any
 * thread count, shard count and any completion order, because no state
 * is shared between campaigns and each result lands in its spec's slot.
 *
 * Determinism contract:
 *  - a campaign's entire trajectory is a pure function of (spec, machine
 *    config): Simulation(cfg, seed) owns the root RNG; the runtime forks
 *    stream 7, the profiler stream 8 and the background channel stream 9,
 *    exactly as the serial analysis::Campaign always did (plus the
 *    channel), so runner results replicate the legacy per-campaign loops
 *    bitwise when the scenario has no background;
 *  - the backend only decides *where* a campaign executes, never what
 *    it sees: specs never share a Simulation, a device, a logger or an
 *    Rng (the ExecutionBackend admissibility contract).
 *
 * For sweep studies that re-examine the *same* executions under varied
 * stitch-time parameters, see fingrav/recorded_campaign.hpp.
 */

#include <cstdint>
#include <memory>
#include <string>
#include <vector>

#include "fingrav/execution_backend.hpp"
#include "fingrav/profiler.hpp"
#include "fingrav/scenario.hpp"
#include "kernels/kernel_model.hpp"
#include "runtime/host_runtime.hpp"
#include "sim/machine_config.hpp"
#include "sim/simulation.hpp"
#include "support/rng.hpp"

namespace fingrav::core {

/**
 * The fresh node of one campaign: kernel, simulation, runtime, armed
 * background channel.
 *
 * This class *is* the bit-identity contract of campaign construction —
 * resolved kernel, auto device count (full node for collectives, enough
 * devices for the background loads, 1 GPU otherwise), runtime RNG = root
 * stream 7, profiler RNG = root stream 8 (profilerRng()), background
 * channel = root stream 9 — mirroring analysis::Campaign exactly for
 * background-free scenarios.  Both CampaignRunner::runOne and
 * RecordedCampaign::record build on it, so the live and recorded
 * pipelines cannot drift apart.
 */
class CampaignNode {
  public:
    CampaignNode(const ScenarioSpec& spec, const sim::MachineConfig& cfg);

    /** Legacy campaign description: an isolated-environment scenario. */
    CampaignNode(const CampaignSpec& spec, const sim::MachineConfig& cfg);

    const kernels::KernelModelPtr& kernel() const { return kernel_; }
    sim::Simulation& simulation() { return sim_; }
    runtime::HostRuntime& host() { return host_; }

    /** The profiling-side RNG stream (fork once per campaign). */
    support::Rng profilerRng() { return sim_.forkRng(8); }

  private:
    kernels::KernelModelPtr kernel_;
    sim::Simulation sim_;
    runtime::HostRuntime host_;
};

/** Executes independent campaigns through a placement backend. */
class CampaignRunner {
  public:
    /**
     * In-process placement (ThreadPoolBackend).
     *
     * @param threads  Campaign-level concurrency including the calling
     *                 thread; 0 = hardware concurrency, 1 = serial.
     */
    explicit CampaignRunner(std::size_t threads = 0);

    /**
     * Custom placement: any admissible ExecutionBackend (e.g.
     * core::ShardBackend for multi-process execution).
     */
    explicit CampaignRunner(std::shared_ptr<ExecutionBackend> backend);

    /** Thread budget in force (0 when a custom backend decides). */
    std::size_t threads() const { return threads_; }

    /** The placement backend in force. */
    ExecutionBackend& backend() const { return *backend_; }

    /**
     * Attach a content-addressed campaign cache to the backend
     * (fingrav/campaign_cache.hpp): cached specs are served without
     * placement and fresh results are stored.  run() output is unchanged
     * by construction (cached results are bit-identical); null detaches.
     */
    void attachCache(std::shared_ptr<CampaignCache> cache) const
    {
        backend_->attachCache(std::move(cache));
    }

    /**
     * Execute one scenario on a fresh node (serial, on this thread).
     */
    static ProfileSet runOne(const ScenarioSpec& spec,
                             const sim::MachineConfig& cfg =
                                 sim::mi300xConfig());

    /**
     * Legacy overload: execute one campaign description.  Construction
     * mirrors analysis::Campaign, so results are bit-identical to the
     * pre-scenario profileOnFreshNode path.
     */
    static ProfileSet runOne(const CampaignSpec& spec,
                             const sim::MachineConfig& cfg =
                                 sim::mi300xConfig());

    /**
     * Execute every scenario through the backend; results are in spec
     * order and bit-identical to running the specs serially, whatever
     * the backend's placement (threads, worker processes, retries).
     */
    std::vector<ProfileSet> run(const std::vector<ScenarioSpec>& specs,
                                const sim::MachineConfig& cfg =
                                    sim::mi300xConfig()) const;

    /** Legacy overload: lifts each CampaignSpec into a scenario. */
    std::vector<ProfileSet> run(const std::vector<CampaignSpec>& specs,
                                const sim::MachineConfig& cfg =
                                    sim::mi300xConfig()) const;

  private:
    std::size_t threads_;
    std::shared_ptr<ExecutionBackend> backend_;
};

/** Bitwise profile equality (parallel/serial and reuse/re-execute gates). */
bool identicalProfiles(const PowerProfile& a, const PowerProfile& b);

/** Bitwise ProfileSet equality across every field and profile point. */
bool identicalProfileSets(const ProfileSet& a, const ProfileSet& b);

}  // namespace fingrav::core

#endif  // FINGRAV_FINGRAV_CAMPAIGN_RUNNER_HPP_

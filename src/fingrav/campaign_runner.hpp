#ifndef FINGRAV_FINGRAV_CAMPAIGN_RUNNER_HPP_
#define FINGRAV_FINGRAV_CAMPAIGN_RUNNER_HPP_

/**
 * @file
 * Campaign-level execution engine: concurrent multi-kernel profiling.
 *
 * A profiling *campaign* — one kernel taken through the full nine-step
 * methodology on a fresh node — is hermetic: it owns its Simulation, its
 * HostRuntime and every RNG stream, all derived from the campaign seed.
 * Campaigns are therefore embarrassingly parallel (the paper profiles
 * each kernel in isolation; Section IV-B), and every figure/table
 * reproduction is a set of independent campaigns.  CampaignRunner fans a
 * spec list out over a support::ThreadPool, one node per campaign, and
 * returns ProfileSets in spec order — bit-identical to the serial loop
 * for any thread count and any completion order, because no state is
 * shared between campaigns and each result lands in its spec's slot.
 *
 * Determinism contract:
 *  - a campaign's entire trajectory is a pure function of (spec, machine
 *    config): Simulation(cfg, seed) owns the root RNG; the runtime forks
 *    stream 7 and the profiler stream 8, exactly as the serial
 *    analysis::Campaign always did, so runner results replicate the
 *    legacy per-campaign loops bitwise;
 *  - the pool only decides *where* a campaign executes, never what it
 *    sees: specs never share a Simulation, a device, a logger or an Rng.
 *
 * For sweep studies that re-examine the *same* executions under varied
 * stitch-time parameters, see fingrav/recorded_campaign.hpp.
 */

#include <cstdint>
#include <functional>
#include <string>
#include <vector>

#include "fingrav/profiler.hpp"
#include "kernels/kernel_model.hpp"
#include "runtime/host_runtime.hpp"
#include "sim/machine_config.hpp"
#include "sim/simulation.hpp"
#include "support/rng.hpp"

namespace fingrav::core {

/**
 * Custom profiling procedure for one campaign (defaults to the full
 * FinGraV Profiler).  Lets baseline profilers (src/baselines/) and other
 * degraded pipelines ride the same runner without a layering cycle.
 */
using ProfileFn = std::function<ProfileSet(
    runtime::HostRuntime& host, const kernels::KernelModelPtr& kernel,
    const ProfilerOptions& opts, support::Rng rng)>;

/**
 * Adapt a profiler factory `(host, opts, rng) -> profiler-with-.profile`
 * into a ProfileFn — the one-liner that puts a baseline profiler
 * (src/baselines/) on the runner.
 */
template <typename MakeProfiler>
ProfileFn
makeProfileFn(MakeProfiler make_profiler)
{
    return ProfileFn([make_profiler](runtime::HostRuntime& host,
                                     const kernels::KernelModelPtr& kernel,
                                     const ProfilerOptions& opts,
                                     support::Rng rng) {
        return make_profiler(host, opts, std::move(rng)).profile(kernel);
    });
}

/** One independent profiling campaign. */
struct CampaignSpec {
    std::string label;          ///< kernel label (kernels/workloads.hpp)
    std::uint64_t seed = 1;     ///< root seed; campaigns are bit-reproducible
    ProfilerOptions opts;       ///< methodology knobs
    /** GPUs to instantiate; 0 = auto (full node for collectives, 1 GPU
     *  otherwise, as analysis::profileOnFreshNode always chose). */
    std::size_t devices = 0;
    /** Custom profiling procedure; null = core::Profiler::profile. */
    ProfileFn profile_fn;
};

/**
 * The fresh node of one campaign: kernel, simulation, runtime.
 *
 * This class *is* the bit-identity contract of campaign construction —
 * resolved kernel, auto device count (full node for collectives, 1 GPU
 * otherwise), runtime RNG = root stream 7, profiler RNG = root stream 8
 * (profilerRng()) — mirroring analysis::Campaign exactly.  Both
 * CampaignRunner::runOne and RecordedCampaign::record build on it, so
 * the live and recorded pipelines cannot drift apart.
 */
class CampaignNode {
  public:
    CampaignNode(const CampaignSpec& spec, const sim::MachineConfig& cfg);

    const kernels::KernelModelPtr& kernel() const { return kernel_; }
    sim::Simulation& simulation() { return sim_; }
    runtime::HostRuntime& host() { return host_; }

    /** The profiling-side RNG stream (fork once per campaign). */
    support::Rng profilerRng() { return sim_.forkRng(8); }

  private:
    kernels::KernelModelPtr kernel_;
    sim::Simulation sim_;
    runtime::HostRuntime host_;
};

/** Fans independent campaigns out over a thread pool. */
class CampaignRunner {
  public:
    /**
     * @param threads  Campaign-level concurrency including the calling
     *                 thread; 0 = hardware concurrency, 1 = serial.
     */
    explicit CampaignRunner(std::size_t threads = 0);

    /** Thread budget in force. */
    std::size_t threads() const { return threads_; }

    /**
     * Execute one campaign on a fresh node (serial, on this thread).
     * Construction mirrors analysis::Campaign, so results are
     * bit-identical to the legacy profileOnFreshNode path.
     */
    static ProfileSet runOne(const CampaignSpec& spec,
                             const sim::MachineConfig& cfg =
                                 sim::mi300xConfig());

    /**
     * Execute every campaign, fanned out over the pool; results are in
     * spec order and bit-identical to running the specs serially.
     */
    std::vector<ProfileSet> run(const std::vector<CampaignSpec>& specs,
                                const sim::MachineConfig& cfg =
                                    sim::mi300xConfig()) const;

  private:
    std::size_t threads_;
};

/** Bitwise profile equality (parallel/serial and reuse/re-execute gates). */
bool identicalProfiles(const PowerProfile& a, const PowerProfile& b);

/** Bitwise ProfileSet equality across every field and profile point. */
bool identicalProfileSets(const ProfileSet& a, const ProfileSet& b);

}  // namespace fingrav::core

#endif  // FINGRAV_FINGRAV_CAMPAIGN_RUNNER_HPP_

#ifndef FINGRAV_FINGRAV_GUIDANCE_HPP_
#define FINGRAV_FINGRAV_GUIDANCE_HPP_

/**
 * @file
 * The FinGraV empirical profiling-guidance table (paper Table I).
 *
 * Step 1 of the methodology times the kernel a few times and looks the
 * median up in this table to obtain the recommended number of runs, the
 * LOI (log-of-interest) collection target and the execution-time binning
 * margin.  The paper's table covers the ranges its GEMM kernels land in;
 * paperDefault() extends it downward with a sub-25 us row (the paper's
 * GEMVs run shorter than the table's first row) using the 25-50 us row's
 * parameters, as the paper's own guidance implies for ever-shorter
 * kernels.
 */

#include <cstddef>
#include <vector>

#include "support/time_types.hpp"

namespace fingrav::core {

/** One row of the guidance table. */
struct GuidanceEntry {
    support::Duration exec_lo;   ///< inclusive lower bound of the range
    support::Duration exec_hi;   ///< exclusive upper bound of the range
    std::size_t runs = 0;        ///< recommended #runs
    support::Duration loi_per;   ///< collect one LOI per this much exec time
    double binning_margin = 0.0; ///< relative execution-time margin

    /** Target LOI count for a kernel of the given execution time. */
    std::size_t recommendedLois(support::Duration exec_time) const;
};

/** Lookup table mapping execution-time ranges to profiling parameters. */
class GuidanceTable {
  public:
    /** Build from explicit rows (must be contiguous and ascending). */
    explicit GuidanceTable(std::vector<GuidanceEntry> rows);

    /** The paper's Table I (plus the sub-25 us extension row). */
    static GuidanceTable paperDefault();

    /** Row covering the given execution time (clamps to first/last row). */
    const GuidanceEntry& lookup(support::Duration exec_time) const;

    /** All rows, ascending by execution time. */
    const std::vector<GuidanceEntry>& rows() const { return rows_; }

  private:
    std::vector<GuidanceEntry> rows_;
};

}  // namespace fingrav::core

#endif  // FINGRAV_FINGRAV_GUIDANCE_HPP_

#include "fingrav/shard_backend.hpp"

#include <algorithm>
#include <cerrno>
#include <csignal>
#include <cstring>
#include <mutex>
#include <set>
#include <thread>
#include <utility>

#include <poll.h>
#include <sys/wait.h>
#include <unistd.h>

#include "fingrav/campaign_runner.hpp"
#include "fingrav/codec.hpp"
#include "support/logging.hpp"

namespace fingrav::core {

namespace {

/**
 * A worker whose driver-side pipe has gone away must surface as an
 * EPIPE write error (handled: the shard falls back in-process), not as
 * a process-killing SIGPIPE.  Installed once, only if the disposition
 * is still the default — an embedding application's handler is kept.
 */
void
ignoreSigpipeOnce()
{
    static std::once_flag once;
    std::call_once(once, [] {
        struct sigaction current {};
        if (sigaction(SIGPIPE, nullptr, &current) == 0 &&
            current.sa_handler == SIG_DFL) {
            struct sigaction ignore {};
            ignore.sa_handler = SIG_IGN;
            sigaction(SIGPIPE, &ignore, nullptr);
        }
    });
}

/** Wait for fd readiness; true when ready, false on timeout/error.
 *  timeout_ms <= 0 waits forever (every byte of progress re-arms the
 *  timeout, so it bounds *inactivity*, not total shard time). */
bool
awaitReady(int fd, short events, long timeout_ms)
{
    struct pollfd pfd {};
    pfd.fd = fd;
    pfd.events = events;
    for (;;) {
        const int n = ::poll(&pfd, 1, timeout_ms > 0
                                          ? static_cast<int>(timeout_ms)
                                          : -1);
        if (n < 0) {
            if (errno == EINTR)
                continue;
            return false;
        }
        return n > 0;  // 0 = timeout: the worker is treated as dead
    }
}

bool
writeAll(int fd, const std::uint8_t* data, std::size_t size,
         long timeout_ms)
{
    while (size > 0) {
        if (!awaitReady(fd, POLLOUT, timeout_ms))
            return false;
        const ssize_t n = ::write(fd, data, size);
        if (n < 0) {
            if (errno == EINTR)
                continue;
            return false;
        }
        data += n;
        size -= static_cast<std::size_t>(n);
    }
    return true;
}

/** False on EOF, error or inactivity timeout before `size` bytes. */
bool
readExact(int fd, std::uint8_t* data, std::size_t size, long timeout_ms)
{
    while (size > 0) {
        if (!awaitReady(fd, POLLIN, timeout_ms))
            return false;
        const ssize_t n = ::read(fd, data, size);
        if (n < 0) {
            if (errno == EINTR)
                continue;
            return false;
        }
        if (n == 0)
            return false;
        data += n;
        size -= static_cast<std::size_t>(n);
    }
    return true;
}

void
closeFd(int& fd)
{
    if (fd >= 0) {
        ::close(fd);
        fd = -1;
    }
}

/** One spawned shard worker and its outstanding slots. */
struct WorkerProc {
    long pid = -1;
    int to_child = -1;    ///< request pipe, driver write end
    int from_child = -1;  ///< response pipe, driver read end
    std::vector<std::size_t> slots;  ///< spec indices, shard order
    bool failed = false;
};

/** fork/exec the worker argv with stdin/stdout piped; stderr shared. */
bool
spawnWorker(const std::vector<std::string>& argv, WorkerProc& worker)
{
    int to_child[2];    // driver -> worker stdin
    int from_child[2];  // worker stdout -> driver
    if (::pipe(to_child) != 0)
        return false;
    if (::pipe(from_child) != 0) {
        ::close(to_child[0]);
        ::close(to_child[1]);
        return false;
    }
    const pid_t pid = ::fork();
    if (pid < 0) {
        ::close(to_child[0]);
        ::close(to_child[1]);
        ::close(from_child[0]);
        ::close(from_child[1]);
        return false;
    }
    if (pid == 0) {
        // Each worker leads its own process group, so a fault injector
        // (or operator) can kill the worker *and* anything it forked in
        // one signal — otherwise an orphaned grandchild keeps the
        // response pipe open and the driver never sees EOF.
        ::setpgid(0, 0);
        ::dup2(to_child[0], STDIN_FILENO);
        ::dup2(from_child[1], STDOUT_FILENO);
        ::close(to_child[0]);
        ::close(to_child[1]);
        ::close(from_child[0]);
        ::close(from_child[1]);
        std::vector<char*> cargv;
        cargv.reserve(argv.size() + 1);
        for (const auto& arg : argv)
            cargv.push_back(const_cast<char*>(arg.c_str()));
        cargv.push_back(nullptr);
        ::execvp(cargv[0], cargv.data());
        // Exec failure: exit without running any atexit handlers of the
        // forked image; the driver sees EOF and falls back.
        ::_exit(127);
    }
    // Mirror the child's setpgid so the group exists before this call
    // returns, whichever side runs first (the classic double-setpgid
    // idiom; EACCES after the child exec'd means the child already won).
    ::setpgid(pid, pid);
    worker.pid = pid;
    worker.to_child = to_child[1];
    worker.from_child = from_child[0];
    ::close(to_child[0]);
    ::close(from_child[1]);
    return true;
}

std::vector<std::uint8_t>
encodeShardRequest(const sim::MachineConfig& cfg,
                   const std::vector<ScenarioSpec>& specs,
                   const std::vector<std::size_t>& slots)
{
    codec::Encoder enc;
    codec::encodeMachineConfig(enc, cfg);
    enc.u32(static_cast<std::uint32_t>(slots.size()));
    for (const std::size_t slot : slots) {
        enc.u64(slot);
        codec::encodeScenarioSpec(enc, specs[slot]);
    }
    return enc.bytes();
}

/** One frame off the worker's stdout; nullopt = EOF/corrupt/foreign/
 *  inactivity timeout. */
std::optional<codec::Frame>
readWorkerFrame(int fd, long timeout_ms)
{
    std::uint8_t header_bytes[codec::kFrameHeaderBytes];
    if (!readExact(fd, header_bytes, codec::kFrameHeaderBytes, timeout_ms))
        return std::nullopt;
    try {
        const auto header = codec::decodeFrameHeader(header_bytes);
        codec::Frame frame;
        frame.type = header.type;
        frame.payload.resize(static_cast<std::size_t>(header.payload_len));
        if (header.payload_len > 0 &&
            !readExact(fd, frame.payload.data(), frame.payload.size(),
                       timeout_ms))
            return std::nullopt;
        codec::verifyFramePayload(header, frame.payload.data());
        return frame;
    } catch (const support::FatalError& e) {
        support::warn("ShardBackend: worker stream rejected: ", e.what());
        return std::nullopt;
    }
}

}  // namespace

ShardBackend::ShardBackend(ShardOptions opts) : opts_(std::move(opts))
{
    if (opts_.shards == 0)
        support::fatal("ShardBackend: shards must be >= 1");
    if (opts_.worker_command.empty())
        opts_.worker_command = {"./fingrav_cli", "--worker"};
}

std::vector<ProfileSet>
ShardBackend::execute(const std::vector<ScenarioSpec>& specs,
                      const sim::MachineConfig& cfg)
{
    stats_ = {};
    if (!cache())
        return executeUncached(specs, cfg);
    // Cache consult happens before any placement: cached specs are
    // excluded from the shard partition entirely, so a fully warm run
    // spawns zero worker processes (stats_.shards_launched == 0).
    auto consult = consultCache(specs, cfg);
    stats_.cached_specs = specs.size() - consult.pending.size();
    commitCache(consult, executeUncached(consult.pending, cfg), cfg);
    return std::move(consult.results);
}

std::vector<ProfileSet>
ShardBackend::executeUncached(const std::vector<ScenarioSpec>& specs,
                              const sim::MachineConfig& cfg)
{
    std::vector<ProfileSet> results(specs.size());
    if (specs.empty())
        return results;
    ignoreSigpipeOnce();

    // profile_fn specs have no wire form: they stay in-process.
    std::vector<std::size_t> remote;
    std::vector<std::size_t> fallback;
    for (std::size_t i = 0; i < specs.size(); ++i) {
        if (specs[i].profile_fn) {
            fallback.push_back(i);
            ++stats_.local_specs;
        } else {
            remote.push_back(i);
        }
    }

    // Round-robin the remote slots over the shards so heterogeneous
    // campaign costs spread; results are slot-addressed, so the
    // partition shape is invisible in the output.
    const std::size_t shard_count =
        std::min(opts_.shards, std::max<std::size_t>(remote.size(), 1));
    std::vector<WorkerProc> workers(shard_count);
    for (std::size_t k = 0; k < remote.size(); ++k)
        workers[k % shard_count].slots.push_back(remote[k]);

    // Nested-oversubscription guard, mirrored from ThreadPoolBackend:
    // worker processes multiply with each node's advance-thread pool,
    // and node stepping is bit-identical for any advance thread count,
    // so capping the config we ship only relocates work.
    sim::MachineConfig effective = cfg;
    const std::size_t advance = std::max<std::size_t>(1, cfg.advance_threads);
    const unsigned hw = std::thread::hardware_concurrency();
    if (hw > 0 && shard_count * advance > hw) {
        const std::size_t cap = std::max<std::size_t>(1, hw / shard_count);
        if (cap < advance) {
            static std::once_flag warned;
            std::call_once(warned, [&] {
                support::warn("ShardBackend: ", shard_count, " workers x ",
                              advance, " advance threads exceed ", hw,
                              " hardware threads; capping per-campaign "
                              "advance threads at ", cap,
                              " (results unchanged)");
            });
            effective.advance_threads = cap;
        }
    }

    // Dispatch: spawn every worker and hand it its shard.  Workers read
    // the whole request before computing, so sequential request writes
    // cannot deadlock; computation overlaps across workers from the
    // moment each one is spawned.
    for (std::size_t s = 0; s < workers.size(); ++s) {
        WorkerProc& worker = workers[s];
        if (worker.slots.empty())
            continue;
        if (!spawnWorker(opts_.worker_command, worker)) {
            support::warn("ShardBackend: cannot spawn worker '",
                          opts_.worker_command.front(), "' for shard ", s,
                          " (", std::strerror(errno),
                          "); falling back in-process");
            worker.failed = true;
            continue;
        }
        ++stats_.shards_launched;
        const auto request =
            encodeShardRequest(effective, specs, worker.slots);
        const auto wire =
            codec::encodeFrame(codec::FrameType::kShardRequest, request);
        if (!writeAll(worker.to_child, wire.data(), wire.size(),
                      opts_.io_timeout_ms)) {
            support::warn("ShardBackend: worker for shard ", s,
                          " rejected its request (",
                          std::strerror(errno),
                          "); falling back in-process");
            worker.failed = true;
        }
        closeFd(worker.to_child);
        if (opts_.spawn_hook)
            opts_.spawn_hook(s, worker.pid);
    }

    // Reassemble: results stream back one frame per completed spec and
    // land in their slots; a worker that stops short forfeits only its
    // unfinished slots.  Reading shard-by-shard is fine — workers
    // compute concurrently regardless of the order we drain them in.
    for (std::size_t s = 0; s < workers.size(); ++s) {
        WorkerProc& worker = workers[s];
        if (worker.slots.empty())
            continue;
        std::set<std::size_t> pending(worker.slots.begin(),
                                      worker.slots.end());
        bool done = false;
        while (!worker.failed && !done) {
            const auto frame =
                readWorkerFrame(worker.from_child, opts_.io_timeout_ms);
            if (!frame.has_value()) {
                if (!pending.empty()) {
                    support::warn("ShardBackend: worker for shard ", s,
                                  " died or stalled with ",
                                  pending.size(),
                                  " spec(s) outstanding; falling back "
                                  "in-process");
                    worker.failed = true;
                }
                break;
            }
            try {
                switch (frame->type) {
                  case codec::FrameType::kShardResult: {
                    codec::Decoder dec(frame->payload);
                    const std::size_t slot =
                        static_cast<std::size_t>(dec.u64());
                    auto set = codec::decodeProfileSet(dec);
                    dec.expectEnd("shard result");
                    if (pending.erase(slot) == 0) {
                        support::fatal("shard ", s,
                                       " returned unexpected slot ", slot);
                    }
                    results[slot] = std::move(set);
                    ++stats_.remote_specs;
                    break;
                  }
                  case codec::FrameType::kShardDone: {
                    codec::Decoder dec(frame->payload);
                    const std::uint32_t count = dec.u32();
                    dec.expectEnd("shard done");
                    if (!pending.empty() ||
                        count != worker.slots.size()) {
                        support::fatal("shard ", s, " completed with ",
                                       pending.size(),
                                       " spec(s) unaccounted for");
                    }
                    done = true;
                    break;
                  }
                  case codec::FrameType::kWorkerError: {
                    codec::Decoder dec(frame->payload);
                    support::warn("ShardBackend: worker for shard ", s,
                                  " reported: ", dec.str());
                    worker.failed = true;
                    break;
                  }
                  default:
                    support::fatal("shard ", s,
                                   " sent unexpected frame type '",
                                   codec::toString(frame->type), "'");
                }
            } catch (const support::FatalError& e) {
                support::warn("ShardBackend: shard ", s,
                              " protocol error: ", e.what(),
                              "; falling back in-process");
                worker.failed = true;
            }
        }
        closeFd(worker.from_child);
        closeFd(worker.to_child);
        if (worker.pid > 0) {
            // A failed worker may still be alive (stalled past the
            // inactivity timeout): kill its whole process group first
            // so the blocking reap below cannot hang on it.
            if (worker.failed)
                ::kill(-static_cast<pid_t>(worker.pid), SIGKILL);
            ::waitpid(static_cast<pid_t>(worker.pid), nullptr, 0);
        }
        if (worker.failed) {
            ++stats_.shard_failures;
            for (const std::size_t slot : worker.slots) {
                if (pending.count(slot))
                    fallback.push_back(slot);
            }
        }
    }

    // Fallback: every forfeited or process-local slot re-executes on the
    // in-process path — the same runOne the workers bottom out in, so
    // the output is bit-identical however the work was placed.
    if (!fallback.empty()) {
        std::sort(fallback.begin(), fallback.end());
        std::vector<ScenarioSpec> local_specs;
        local_specs.reserve(fallback.size());
        for (const std::size_t slot : fallback)
            local_specs.push_back(specs[slot]);
        auto local_results =
            ThreadPoolBackend(opts_.fallback_threads)
                .execute(local_specs, cfg);
        for (std::size_t k = 0; k < fallback.size(); ++k)
            results[fallback[k]] = std::move(local_results[k]);
        stats_.fallback_specs = fallback.size() - stats_.local_specs;
    }
    return results;
}

std::vector<std::string>
defaultWorkerCommand(const std::string& argv0)
{
    const auto slash = argv0.find_last_of('/');
    const std::string base =
        slash == std::string::npos ? argv0 : argv0.substr(slash + 1);
    if (base == "fingrav_cli")
        return {argv0, "--worker"};
    const std::string dir =
        slash == std::string::npos ? "." : argv0.substr(0, slash);
    return {dir + "/fingrav_cli", "--worker"};
}

}  // namespace fingrav::core

#include "fingrav/shard_backend.hpp"

#include <algorithm>
#include <cerrno>
#include <chrono>
#include <csignal>
#include <cstring>
#include <map>
#include <mutex>
#include <set>
#include <thread>
#include <utility>

#include <poll.h>
#include <sys/wait.h>
#include <unistd.h>

#include "fingrav/campaign_cache.hpp"
#include "fingrav/campaign_runner.hpp"
#include "fingrav/codec.hpp"
#include "support/logging.hpp"
#include "support/rng.hpp"

namespace fingrav::core {

namespace {

using support::DegradeKind;

/**
 * A worker whose driver-side pipe has gone away must surface as an
 * EPIPE write error (handled: the shard falls back in-process), not as
 * a process-killing SIGPIPE.  Installed once, only if the disposition
 * is still the default — an embedding application's handler is kept.
 */
void
ignoreSigpipeOnce()
{
    static std::once_flag once;
    std::call_once(once, [] {
        struct sigaction current {};
        if (sigaction(SIGPIPE, nullptr, &current) == 0 &&
            current.sa_handler == SIG_DFL) {
            struct sigaction ignore {};
            ignore.sa_handler = SIG_IGN;
            sigaction(SIGPIPE, &ignore, nullptr);
        }
    });
}

/**
 * The I/O budget one read/write waits under: a per-syscall inactivity
 * timeout (every byte of progress re-arms it) plus an optional absolute
 * deadline (ShardOptions::spec_deadline_ms x slots — total wall-clock
 * for a worker's drain, regardless of progress).
 */
struct IoBudget {
    long inactivity_ms = 0;  ///< <= 0: no inactivity bound
    bool has_deadline = false;
    std::chrono::steady_clock::time_point deadline;

    static IoBudget
    inactivityOnly(long ms)
    {
        IoBudget budget;
        budget.inactivity_ms = ms;
        return budget;
    }
};

enum class IoWait { kReady, kTimeout, kError };

/** Wait for fd readiness under the budget. */
IoWait
awaitReady(int fd, short events, const IoBudget& budget)
{
    struct pollfd pfd {};
    pfd.fd = fd;
    pfd.events = events;
    for (;;) {
        long timeout_ms = budget.inactivity_ms > 0 ? budget.inactivity_ms
                                                   : -1;
        if (budget.has_deadline) {
            const auto remaining =
                std::chrono::duration_cast<std::chrono::milliseconds>(
                    budget.deadline - std::chrono::steady_clock::now())
                    .count();
            if (remaining <= 0)
                return IoWait::kTimeout;
            timeout_ms = timeout_ms < 0
                             ? remaining
                             : std::min<long>(timeout_ms, remaining);
        }
        const int n = ::poll(&pfd, 1,
                             timeout_ms > 0 ? static_cast<int>(timeout_ms)
                                            : -1);
        if (n < 0) {
            if (errno == EINTR)
                continue;  // budget re-derived from the clock above
            return IoWait::kError;
        }
        return n > 0 ? IoWait::kReady : IoWait::kTimeout;
    }
}

bool
writeAll(int fd, const std::uint8_t* data, std::size_t size,
         const IoBudget& budget)
{
    while (size > 0) {
        if (awaitReady(fd, POLLOUT, budget) != IoWait::kReady)
            return false;
        const ssize_t n = ::write(fd, data, size);
        if (n < 0) {
            if (errno == EINTR)
                continue;
            return false;
        }
        data += n;
        size -= static_cast<std::size_t>(n);
    }
    return true;
}

/** Why a read stopped short — the journal taxonomy needs the cause. */
enum class ReadStatus { kOk, kEof, kTimeout, kError };

ReadStatus
readExact(int fd, std::uint8_t* data, std::size_t size,
          const IoBudget& budget, std::size_t* bytes_read)
{
    if (bytes_read != nullptr)
        *bytes_read = 0;
    while (size > 0) {
        switch (awaitReady(fd, POLLIN, budget)) {
          case IoWait::kTimeout:
            return ReadStatus::kTimeout;
          case IoWait::kError:
            return ReadStatus::kError;
          case IoWait::kReady:
            break;
        }
        const ssize_t n = ::read(fd, data, size);
        if (n < 0) {
            if (errno == EINTR)
                continue;
            return ReadStatus::kError;
        }
        if (n == 0)
            return ReadStatus::kEof;
        data += n;
        size -= static_cast<std::size_t>(n);
        if (bytes_read != nullptr)
            *bytes_read += static_cast<std::size_t>(n);
    }
    return ReadStatus::kOk;
}

void
closeFd(int& fd)
{
    if (fd >= 0) {
        ::close(fd);
        fd = -1;
    }
}

/** One spawned shard worker and its outstanding slots. */
struct WorkerProc {
    long pid = -1;
    int to_child = -1;    ///< request pipe, driver write end
    int from_child = -1;  ///< response pipe, driver read end
    std::vector<std::size_t> slots;  ///< spec indices, shard order
    bool failed = false;
};

/** fork/exec the worker argv with stdin/stdout piped; stderr shared. */
bool
spawnWorker(const std::vector<std::string>& argv, WorkerProc& worker)
{
    int to_child[2];    // driver -> worker stdin
    int from_child[2];  // worker stdout -> driver
    if (::pipe(to_child) != 0)
        return false;
    if (::pipe(from_child) != 0) {
        ::close(to_child[0]);
        ::close(to_child[1]);
        return false;
    }
    const pid_t pid = ::fork();
    if (pid < 0) {
        ::close(to_child[0]);
        ::close(to_child[1]);
        ::close(from_child[0]);
        ::close(from_child[1]);
        return false;
    }
    if (pid == 0) {
        // Each worker leads its own process group, so a fault injector
        // (or operator) can kill the worker *and* anything it forked in
        // one signal — otherwise an orphaned grandchild keeps the
        // response pipe open and the driver never sees EOF.
        ::setpgid(0, 0);
        ::dup2(to_child[0], STDIN_FILENO);
        ::dup2(from_child[1], STDOUT_FILENO);
        ::close(to_child[0]);
        ::close(to_child[1]);
        ::close(from_child[0]);
        ::close(from_child[1]);
        std::vector<char*> cargv;
        cargv.reserve(argv.size() + 1);
        for (const auto& arg : argv)
            cargv.push_back(const_cast<char*>(arg.c_str()));
        cargv.push_back(nullptr);
        ::execvp(cargv[0], cargv.data());
        // Exec failure: exit without running any atexit handlers of the
        // forked image; the driver sees EOF and falls back.
        ::_exit(127);
    }
    // Mirror the child's setpgid so the group exists before this call
    // returns, whichever side runs first (the classic double-setpgid
    // idiom; EACCES after the child exec'd means the child already won).
    ::setpgid(pid, pid);
    worker.pid = pid;
    worker.to_child = to_child[1];
    worker.from_child = from_child[0];
    ::close(to_child[0]);
    ::close(from_child[1]);
    return true;
}

std::vector<std::uint8_t>
encodeShardRequest(const sim::MachineConfig& cfg,
                   const std::vector<ScenarioSpec>& specs,
                   const std::vector<std::size_t>& slots)
{
    codec::Encoder enc;
    codec::encodeMachineConfig(enc, cfg);
    enc.u32(static_cast<std::uint32_t>(slots.size()));
    for (const std::size_t slot : slots) {
        enc.u64(slot);
        codec::encodeScenarioSpec(enc, specs[slot]);
    }
    return enc.bytes();
}

/** How one frame read off a worker's stdout ended. */
enum class FrameStatus {
    kFrame,    ///< `frame` holds a verified frame
    kEof,      ///< clean EOF on a frame boundary: the worker is gone
    kCorrupt,  ///< truncated/bit-flipped/foreign-version stream
    kTimeout,  ///< inactivity timeout or deadline budget exceeded
};

FrameStatus
readWorkerFrame(int fd, const IoBudget& budget, codec::Frame& frame)
{
    std::uint8_t header_bytes[codec::kFrameHeaderBytes];
    std::size_t got = 0;
    switch (readExact(fd, header_bytes, codec::kFrameHeaderBytes, budget,
                      &got)) {
      case ReadStatus::kOk:
        break;
      case ReadStatus::kTimeout:
        return FrameStatus::kTimeout;
      case ReadStatus::kEof:
      case ReadStatus::kError:
        // EOF on the frame boundary is death; EOF mid-header is a
        // truncated stream — the same observable a half-written frame
        // leaves, so it journals as corruption.
        return got == 0 ? FrameStatus::kEof : FrameStatus::kCorrupt;
    }
    try {
        const auto header = codec::decodeFrameHeader(header_bytes);
        frame.type = header.type;
        frame.payload.resize(static_cast<std::size_t>(header.payload_len));
        if (header.payload_len > 0) {
            switch (readExact(fd, frame.payload.data(),
                              frame.payload.size(), budget, nullptr)) {
              case ReadStatus::kOk:
                break;
              case ReadStatus::kTimeout:
                return FrameStatus::kTimeout;
              case ReadStatus::kEof:
              case ReadStatus::kError:
                return FrameStatus::kCorrupt;  // truncated payload
            }
        }
        codec::verifyFramePayload(header, frame.payload.data());
        return FrameStatus::kFrame;
    } catch (const support::FatalError& e) {
        support::warn("ShardBackend: worker stream rejected: ", e.what());
        return FrameStatus::kCorrupt;
    }
}

}  // namespace

ShardBackend::ShardBackend(ShardOptions opts) : opts_(std::move(opts))
{
    if (opts_.shards == 0)
        support::fatal("ShardBackend: shards must be >= 1");
    if (opts_.worker_command.empty())
        opts_.worker_command = {"./fingrav_cli", "--worker"};
}

std::vector<ProfileSet>
ShardBackend::execute(const std::vector<ScenarioSpec>& specs,
                      const sim::MachineConfig& cfg)
{
    // Reentrancy guard (the documented footgun, now loud): overlapping
    // execute() calls on one instance would interleave stats_ and the
    // journal silently.  The exchange fails *before* the guard object
    // exists, so the throw never releases the owner's flag.
    if (executing_.exchange(true)) {
        support::fatal(
            "ShardBackend::execute called reentrantly: one instance "
            "serves one run at a time (hold one ShardBackend per "
            "concurrent driver)");
    }
    struct Release {
        std::atomic<bool>& flag;
        ~Release() { flag.store(false); }
    } release{executing_};

    // The cache journals its own degradations (corrupt blobs, failed
    // stores); fold the events this run produced into our journal so
    // lastStats() is the one place degradations surface.
    const std::size_t cache_mark =
        cache() ? cache()->journal().size() : 0;

    stats_ = {};
    std::vector<ProfileSet> out;
    if (!cache()) {
        out = executeUncached(specs, cfg);
    } else {
        // Cache consult happens before any placement: cached specs are
        // excluded from the shard partition entirely, so a fully warm
        // run spawns zero worker processes (stats_.shards_launched == 0).
        auto consult = consultCache(specs, cfg);
        stats_.cached_specs = specs.size() - consult.pending.size();
        commitCache(consult, executeUncached(consult.pending, cfg), cfg);
        out = std::move(consult.results);
    }
    if (cache()) {
        for (const auto& event : cache()->journal().eventsSince(cache_mark))
            stats_.journal.record(event.kind, event.detail);
    }
    return out;
}

std::vector<ProfileSet>
ShardBackend::executeUncached(const std::vector<ScenarioSpec>& specs,
                              const sim::MachineConfig& cfg)
{
    std::vector<ProfileSet> results(specs.size());
    if (specs.empty())
        return results;
    ignoreSigpipeOnce();

    // profile_fn specs have no wire form: they stay in-process.
    std::vector<std::size_t> pending_remote;
    std::vector<std::size_t> fallback;
    for (std::size_t i = 0; i < specs.size(); ++i) {
        if (specs[i].profile_fn) {
            fallback.push_back(i);
            ++stats_.local_specs;
        } else {
            pending_remote.push_back(i);
        }
    }

    // Nested-oversubscription guard, mirrored from ThreadPoolBackend:
    // worker processes multiply with each node's advance-thread pool,
    // and node stepping is bit-identical for any advance thread count,
    // so capping the config we ship only relocates work.  Computed from
    // the first round's worker count; retry rounds reuse it (fewer
    // workers can only be less oversubscribed, and the shipped config
    // must not depend on the retry path — bit-identity aside, the cache
    // key embeds the config).
    const std::size_t initial_shards = std::min(
        opts_.shards, std::max<std::size_t>(pending_remote.size(), 1));
    sim::MachineConfig effective = cfg;
    const std::size_t advance =
        std::max<std::size_t>(1, cfg.advance_threads);
    const unsigned hw = std::thread::hardware_concurrency();
    if (hw > 0 && initial_shards * advance > hw) {
        const std::size_t cap =
            std::max<std::size_t>(1, hw / initial_shards);
        if (cap < advance) {
            static std::once_flag warned;
            std::call_once(warned, [&] {
                support::warn("ShardBackend: ", initial_shards,
                              " workers x ", advance,
                              " advance threads exceed ", hw,
                              " hardware threads; capping per-campaign "
                              "advance threads at ", cap,
                              " (results unchanged)");
            });
            effective.advance_threads = cap;
        }
    }

    // The supervisor: dispatch pending slots, collect what the workers
    // deliver, and redispatch forfeits on fresh workers for up to
    // max_retries rounds.  Every decision is deterministic — the backoff
    // schedule is seeded, fault injection fires on exact coordinates,
    // and slot partitions are sorted — so a fixed (options, fault plan)
    // reproduces the same supervision trace on every run.
    support::FaultInjector injector(opts_.fault_plan);
    support::Rng backoff_rng(opts_.backoff_seed);
    std::map<std::size_t, std::size_t> worker_deaths;  // slot -> count
    std::size_t consecutive_spawn_failures = 0;
    bool sharding_enabled = true;

    for (std::size_t round = 0;
         sharding_enabled && !pending_remote.empty() &&
         round <= opts_.max_retries;
         ++round) {
        if (round > 0) {
            const int shift =
                static_cast<int>(std::min<std::size_t>(round - 1, 20));
            const long base = std::min(opts_.backoff_cap_ms,
                                       opts_.backoff_base_ms << shift);
            const double jitter =
                backoff_rng.fork(round).uniform(0.5, 1.5);
            const long delay_ms = std::max<long>(
                0, static_cast<long>(static_cast<double>(base) * jitter));
            ++stats_.retries;
            stats_.retried_specs += pending_remote.size();
            stats_.backoff_ms.push_back(delay_ms);
            stats_.journal.record(
                DegradeKind::kRetry, "round ", round, ": redispatching ",
                pending_remote.size(), " slot(s) to fresh workers after ",
                delay_ms, " ms backoff");
            support::warn("ShardBackend: retry round ", round, ": ",
                          pending_remote.size(),
                          " forfeited slot(s) redispatching after ",
                          delay_ms, " ms backoff");
            if (delay_ms > 0)
                std::this_thread::sleep_for(
                    std::chrono::milliseconds(delay_ms));
        }

        // Round-robin the pending slots over the shards so heterogeneous
        // campaign costs spread; results are slot-addressed, so the
        // partition shape is invisible in the output.
        const std::size_t shard_count =
            std::min(opts_.shards, pending_remote.size());
        std::vector<WorkerProc> workers(shard_count);
        for (std::size_t k = 0; k < pending_remote.size(); ++k)
            workers[k % shard_count].slots.push_back(pending_remote[k]);
        std::vector<std::size_t> next_round;

        // Dispatch: spawn every worker and hand it its shard.  Workers
        // read the whole request before computing, so sequential request
        // writes cannot deadlock; computation overlaps across workers
        // from the moment each one is spawned.
        for (std::size_t s = 0; s < workers.size(); ++s) {
            WorkerProc& worker = workers[s];
            if (worker.slots.empty())
                continue;
            if (!sharding_enabled) {
                // Crash loop tripped earlier in this round: stop
                // spawning; the drain loop forfeits these slots.
                worker.failed = true;
                continue;
            }
            std::string spawn_error;
            bool spawned = false;
            if (injector.armed() && injector.onSpawn(s, round)) {
                spawn_error = "injected spawn failure";
            } else {
                std::vector<std::string> argv = opts_.worker_command;
                if (injector.armed()) {
                    // The worker is a fresh process each launch, so its
                    // injector state restarts clean; hand it exactly the
                    // sub-plan scripted for this (shard, attempt).
                    const std::string sub_plan =
                        injector.workerPlan(s, round);
                    if (!sub_plan.empty()) {
                        argv.push_back("--fault-plan");
                        argv.push_back(sub_plan);
                    }
                }
                spawned = spawnWorker(argv, worker);
                if (!spawned)
                    spawn_error = std::strerror(errno);
            }
            if (!spawned) {
                support::warn("ShardBackend: cannot spawn worker '",
                              opts_.worker_command.front(),
                              "' for shard ", s, " (", spawn_error, ")");
                stats_.journal.record(DegradeKind::kSpawnFailure, "shard ",
                                      s, " round ", round, ": ",
                                      spawn_error);
                worker.failed = true;
                ++stats_.spawn_failures;
                ++consecutive_spawn_failures;
                if (consecutive_spawn_failures >=
                        opts_.crash_loop_spawns &&
                    !stats_.crash_loop) {
                    stats_.crash_loop = true;
                    sharding_enabled = false;
                    stats_.journal.record(
                        DegradeKind::kCrashLoop,
                        consecutive_spawn_failures,
                        " consecutive spawn failures; sharding disabled "
                        "for the rest of the run");
                    support::warn(
                        "ShardBackend: ", consecutive_spawn_failures,
                        " consecutive worker spawn failures — the "
                        "environment looks broken; disabling sharding "
                        "for the rest of the run (results unchanged, "
                        "everything executes in-process)");
                }
                continue;
            }
            consecutive_spawn_failures = 0;
            ++stats_.shards_launched;
            const auto request =
                encodeShardRequest(effective, specs, worker.slots);
            const auto wire =
                codec::encodeFrame(codec::FrameType::kShardRequest,
                                   request);
            if (!writeAll(worker.to_child, wire.data(), wire.size(),
                          IoBudget::inactivityOnly(opts_.io_timeout_ms))) {
                support::warn("ShardBackend: worker for shard ", s,
                              " rejected its request (",
                              std::strerror(errno), ")");
                stats_.journal.record(DegradeKind::kWorkerDeath, "shard ",
                                      s, " round ", round,
                                      ": worker rejected its request");
                worker.failed = true;
            }
            closeFd(worker.to_child);
        }

        // Reassemble: results stream back one frame per completed spec
        // and land in their slots; a worker that stops short forfeits
        // only its unfinished slots.  Reading shard-by-shard is fine —
        // workers compute concurrently regardless of drain order.
        for (std::size_t s = 0; s < workers.size(); ++s) {
            WorkerProc& worker = workers[s];
            if (worker.slots.empty())
                continue;
            std::set<std::size_t> pending(worker.slots.begin(),
                                          worker.slots.end());
            IoBudget budget =
                IoBudget::inactivityOnly(opts_.io_timeout_ms);
            if (opts_.spec_deadline_ms > 0) {
                budget.has_deadline = true;
                budget.deadline =
                    std::chrono::steady_clock::now() +
                    std::chrono::milliseconds(
                        opts_.spec_deadline_ms *
                        static_cast<long>(worker.slots.size()));
            }
            bool done = false;
            while (!worker.failed && !done) {
                codec::Frame frame;
                const FrameStatus status =
                    readWorkerFrame(worker.from_child, budget, frame);
                if (status != FrameStatus::kFrame) {
                    if (pending.empty() && status == FrameStatus::kEof)
                        break;  // all delivered; kShardDone got lost
                    DegradeKind kind = DegradeKind::kWorkerDeath;
                    const char* cause = "died";
                    if (status == FrameStatus::kCorrupt) {
                        kind = DegradeKind::kFrameCorruption;
                        cause = "produced a corrupt stream";
                    } else if (status == FrameStatus::kTimeout) {
                        kind = DegradeKind::kTimeout;
                        cause = "exceeded its I/O budget";
                    }
                    support::warn("ShardBackend: worker for shard ", s,
                                  " ", cause, " with ", pending.size(),
                                  " spec(s) outstanding");
                    stats_.journal.record(kind, "shard ", s, " round ",
                                          round, ": worker ", cause,
                                          " with ", pending.size(),
                                          " slot(s) outstanding");
                    worker.failed = true;
                    break;
                }
                try {
                    switch (frame.type) {
                      case codec::FrameType::kShardResult: {
                        codec::Decoder dec(frame.payload);
                        const std::size_t slot =
                            static_cast<std::size_t>(dec.u64());
                        auto set = codec::decodeProfileSet(dec);
                        dec.expectEnd("shard result");
                        if (pending.erase(slot) == 0) {
                            support::fatal("shard ", s,
                                           " returned unexpected slot ",
                                           slot);
                        }
                        results[slot] = std::move(set);
                        ++stats_.remote_specs;
                        break;
                      }
                      case codec::FrameType::kShardDone: {
                        codec::Decoder dec(frame.payload);
                        const std::uint32_t count = dec.u32();
                        dec.expectEnd("shard done");
                        if (!pending.empty() ||
                            count != worker.slots.size()) {
                            support::fatal("shard ", s,
                                           " completed with ",
                                           pending.size(),
                                           " spec(s) unaccounted for");
                        }
                        done = true;
                        break;
                      }
                      case codec::FrameType::kWorkerError: {
                        codec::Decoder dec(frame.payload);
                        const std::string message = dec.str();
                        support::warn("ShardBackend: worker for shard ",
                                      s, " reported: ", message);
                        stats_.journal.record(
                            DegradeKind::kWorkerDeath, "shard ", s,
                            " round ", round, ": worker reported: ",
                            message);
                        worker.failed = true;
                        break;
                      }
                      default:
                        support::fatal("shard ", s,
                                       " sent unexpected frame type '",
                                       codec::toString(frame.type), "'");
                    }
                } catch (const support::FatalError& e) {
                    support::warn("ShardBackend: shard ", s,
                                  " protocol error: ", e.what());
                    stats_.journal.record(DegradeKind::kFrameCorruption,
                                          "shard ", s, " round ", round,
                                          ": protocol error: ",
                                          e.what());
                    worker.failed = true;
                }
            }
            closeFd(worker.from_child);
            closeFd(worker.to_child);
            if (worker.pid > 0) {
                // A failed worker may still be alive (stalled past the
                // inactivity timeout): kill its whole process group
                // first so the blocking reap below cannot hang on it.
                if (worker.failed)
                    ::kill(-static_cast<pid_t>(worker.pid), SIGKILL);
                ::waitpid(static_cast<pid_t>(worker.pid), nullptr, 0);
            }
            if (!worker.failed)
                continue;
            ++stats_.shard_failures;
            const bool worker_ran = worker.pid > 0;
            for (const std::size_t slot : worker.slots) {
                if (pending.count(slot) == 0)
                    continue;
                // Spawn failures say nothing about the spec, so they do
                // not count toward quarantine — only a launched worker
                // dying under a slot does.
                if (worker_ran &&
                    ++worker_deaths[slot] >= opts_.quarantine_deaths) {
                    stats_.journal.record(
                        DegradeKind::kQuarantine, "slot ", slot, " (",
                        specs[slot].label, ") survived ",
                        worker_deaths[slot],
                        " worker deaths; quarantined to the in-process "
                        "path");
                    support::warn("ShardBackend: spec '",
                                  specs[slot].label, "' (slot ", slot,
                                  ") killed ", worker_deaths[slot],
                                  " workers; quarantining it to the "
                                  "in-process path");
                    ++stats_.quarantined_specs;
                    fallback.push_back(slot);
                } else {
                    next_round.push_back(slot);
                }
            }
        }

        std::sort(next_round.begin(), next_round.end());
        pending_remote = std::move(next_round);
    }

    // Slots the supervisor could not place remotely — retry budget
    // exhausted or sharding disabled — join the in-process path, loudly.
    if (!pending_remote.empty()) {
        stats_.journal.record(
            DegradeKind::kFallback, pending_remote.size(),
            " slot(s) fall back in-process (",
            stats_.crash_loop ? "sharding disabled by crash loop"
                              : "retry budget exhausted",
            ")");
        for (const std::size_t slot : pending_remote)
            fallback.push_back(slot);
    }

    // Fallback: every forfeited or process-local slot re-executes on the
    // in-process path — the same runOne the workers bottom out in, so
    // the output is bit-identical however the work was placed.
    if (!fallback.empty()) {
        std::sort(fallback.begin(), fallback.end());
        std::vector<ScenarioSpec> local_specs;
        local_specs.reserve(fallback.size());
        for (const std::size_t slot : fallback)
            local_specs.push_back(specs[slot]);
        auto local_results =
            ThreadPoolBackend(opts_.fallback_threads)
                .execute(local_specs, cfg);
        for (std::size_t k = 0; k < fallback.size(); ++k)
            results[fallback[k]] = std::move(local_results[k]);
        stats_.fallback_specs = fallback.size() - stats_.local_specs;
    }
    return results;
}

std::vector<std::string>
defaultWorkerCommand(const std::string& argv0)
{
    const auto slash = argv0.find_last_of('/');
    const std::string base =
        slash == std::string::npos ? argv0 : argv0.substr(slash + 1);
    if (base == "fingrav_cli")
        return {argv0, "--worker"};
    const std::string dir =
        slash == std::string::npos ? "." : argv0.substr(0, slash);
    return {dir + "/fingrav_cli", "--worker"};
}

}  // namespace fingrav::core

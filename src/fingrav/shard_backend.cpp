#include "fingrav/shard_backend.hpp"

#include <algorithm>
#include <cerrno>
#include <chrono>
#include <cstring>
#include <map>
#include <mutex>
#include <set>
#include <thread>
#include <utility>

#include <sys/wait.h>

#include "fingrav/campaign_cache.hpp"
#include "fingrav/campaign_runner.hpp"
#include "fingrav/codec.hpp"
#include "runtime/worker_channel.hpp"
#include "support/logging.hpp"
#include "support/rng.hpp"

namespace fingrav::core {

namespace {

using support::DegradeKind;

// The spawn/pipe/frame plumbing lives in runtime/worker_channel.hpp,
// shared with the persistent WorkerFleet; this backend keeps only the
// one-shot supervision policy on top of it.
using runtime::FrameStatus;
using runtime::IoBudget;
using runtime::closeFd;
using runtime::ignoreSigpipeOnce;
using runtime::readWorkerFrame;
using runtime::writeAll;

/** One spawned shard worker and its outstanding slots. */
struct WorkerProc {
    runtime::WorkerProcess proc;
    std::vector<std::size_t> slots;  ///< spec indices, shard order
    bool failed = false;
};

std::vector<std::uint8_t>
encodeShardRequest(const sim::MachineConfig& cfg,
                   const std::vector<ScenarioSpec>& specs,
                   const std::vector<std::size_t>& slots)
{
    codec::Encoder enc;
    codec::encodeMachineConfig(enc, cfg);
    enc.u32(static_cast<std::uint32_t>(slots.size()));
    for (const std::size_t slot : slots) {
        enc.u64(slot);
        codec::encodeScenarioSpec(enc, specs[slot]);
    }
    return enc.bytes();
}

}  // namespace

ShardBackend::ShardBackend(ShardOptions opts) : opts_(std::move(opts))
{
    if (opts_.shards == 0)
        support::fatal("ShardBackend: shards must be >= 1");
    if (opts_.worker_command.empty())
        opts_.worker_command = {"./fingrav_cli", "--worker"};
}

std::vector<ProfileSet>
ShardBackend::execute(const std::vector<ScenarioSpec>& specs,
                      const sim::MachineConfig& cfg)
{
    // Reentrancy guard (the documented footgun, now loud): overlapping
    // execute() calls on one instance would interleave stats_ and the
    // journal silently.  The exchange fails *before* the guard object
    // exists, so the throw never releases the owner's flag.
    if (executing_.exchange(true)) {
        support::fatal(
            "ShardBackend::execute called reentrantly: one instance "
            "serves one run at a time (hold one ShardBackend per "
            "concurrent driver)");
    }
    struct Release {
        std::atomic<bool>& flag;
        ~Release() { flag.store(false); }
    } release{executing_};

    // The cache journals its own degradations (corrupt blobs, failed
    // stores); fold the events this run produced into our journal so
    // lastStats() is the one place degradations surface.
    const std::size_t cache_mark =
        cache() ? cache()->journal().size() : 0;

    stats_ = {};
    std::vector<ProfileSet> out;
    if (!cache()) {
        out = executeUncached(specs, cfg);
    } else {
        // Cache consult happens before any placement: cached specs are
        // excluded from the shard partition entirely, so a fully warm
        // run spawns zero worker processes (stats_.shards_launched == 0).
        auto consult = consultCache(specs, cfg);
        stats_.cached_specs = specs.size() - consult.pending.size();
        commitCache(consult, executeUncached(consult.pending, cfg), cfg);
        out = std::move(consult.results);
    }
    if (cache()) {
        for (const auto& event : cache()->journal().eventsSince(cache_mark))
            stats_.journal.record(event.kind, event.detail);
    }
    return out;
}

std::vector<ProfileSet>
ShardBackend::executeUncached(const std::vector<ScenarioSpec>& specs,
                              const sim::MachineConfig& cfg)
{
    std::vector<ProfileSet> results(specs.size());
    if (specs.empty())
        return results;
    ignoreSigpipeOnce();

    // profile_fn specs have no wire form: they stay in-process.
    std::vector<std::size_t> pending_remote;
    std::vector<std::size_t> fallback;
    for (std::size_t i = 0; i < specs.size(); ++i) {
        if (specs[i].profile_fn) {
            fallback.push_back(i);
            ++stats_.local_specs;
        } else {
            pending_remote.push_back(i);
        }
    }

    // Nested-oversubscription guard, mirrored from ThreadPoolBackend:
    // worker processes multiply with each node's advance-thread pool,
    // and node stepping is bit-identical for any advance thread count,
    // so capping the config we ship only relocates work.  Computed from
    // the first round's worker count; retry rounds reuse it (fewer
    // workers can only be less oversubscribed, and the shipped config
    // must not depend on the retry path — bit-identity aside, the cache
    // key embeds the config).
    const std::size_t initial_shards = std::min(
        opts_.shards, std::max<std::size_t>(pending_remote.size(), 1));
    sim::MachineConfig effective = cfg;
    const std::size_t advance =
        std::max<std::size_t>(1, cfg.advance_threads);
    const unsigned hw = std::thread::hardware_concurrency();
    if (hw > 0 && initial_shards * advance > hw) {
        const std::size_t cap =
            std::max<std::size_t>(1, hw / initial_shards);
        if (cap < advance) {
            static std::once_flag warned;
            std::call_once(warned, [&] {
                support::warn("ShardBackend: ", initial_shards,
                              " workers x ", advance,
                              " advance threads exceed ", hw,
                              " hardware threads; capping per-campaign "
                              "advance threads at ", cap,
                              " (results unchanged)");
            });
            effective.advance_threads = cap;
        }
    }

    // The supervisor: dispatch pending slots, collect what the workers
    // deliver, and redispatch forfeits on fresh workers for up to
    // max_retries rounds.  Every decision is deterministic — the backoff
    // schedule is seeded, fault injection fires on exact coordinates,
    // and slot partitions are sorted — so a fixed (options, fault plan)
    // reproduces the same supervision trace on every run.
    support::FaultInjector injector(opts_.fault_plan);
    support::Rng backoff_rng(opts_.backoff_seed);
    std::map<std::size_t, std::size_t> worker_deaths;  // slot -> count
    std::size_t consecutive_spawn_failures = 0;
    bool sharding_enabled = true;

    for (std::size_t round = 0;
         sharding_enabled && !pending_remote.empty() &&
         round <= opts_.max_retries;
         ++round) {
        if (round > 0) {
            const int shift =
                static_cast<int>(std::min<std::size_t>(round - 1, 20));
            const long base = std::min(opts_.backoff_cap_ms,
                                       opts_.backoff_base_ms << shift);
            const double jitter =
                backoff_rng.fork(round).uniform(0.5, 1.5);
            const long delay_ms = std::max<long>(
                0, static_cast<long>(static_cast<double>(base) * jitter));
            ++stats_.retries;
            stats_.retried_specs += pending_remote.size();
            stats_.backoff_ms.push_back(delay_ms);
            stats_.journal.record(
                DegradeKind::kRetry, "round ", round, ": redispatching ",
                pending_remote.size(), " slot(s) to fresh workers after ",
                delay_ms, " ms backoff");
            support::warn("ShardBackend: retry round ", round, ": ",
                          pending_remote.size(),
                          " forfeited slot(s) redispatching after ",
                          delay_ms, " ms backoff");
            if (delay_ms > 0)
                std::this_thread::sleep_for(
                    std::chrono::milliseconds(delay_ms));
        }

        // Round-robin the pending slots over the shards so heterogeneous
        // campaign costs spread; results are slot-addressed, so the
        // partition shape is invisible in the output.
        const std::size_t shard_count =
            std::min(opts_.shards, pending_remote.size());
        std::vector<WorkerProc> workers(shard_count);
        for (std::size_t k = 0; k < pending_remote.size(); ++k)
            workers[k % shard_count].slots.push_back(pending_remote[k]);
        std::vector<std::size_t> next_round;

        // Dispatch: spawn every worker and hand it its shard.  Workers
        // read the whole request before computing, so sequential request
        // writes cannot deadlock; computation overlaps across workers
        // from the moment each one is spawned.
        for (std::size_t s = 0; s < workers.size(); ++s) {
            WorkerProc& worker = workers[s];
            if (worker.slots.empty())
                continue;
            if (!sharding_enabled) {
                // Crash loop tripped earlier in this round: stop
                // spawning; the drain loop forfeits these slots.
                worker.failed = true;
                continue;
            }
            std::string spawn_error;
            bool spawned = false;
            if (injector.armed() && injector.onSpawn(s, round)) {
                spawn_error = "injected spawn failure";
            } else {
                std::vector<std::string> argv = opts_.worker_command;
                if (injector.armed()) {
                    // The worker is a fresh process each launch, so its
                    // injector state restarts clean; hand it exactly the
                    // sub-plan scripted for this (shard, attempt).
                    const std::string sub_plan =
                        injector.workerPlan(s, round);
                    if (!sub_plan.empty()) {
                        argv.push_back("--fault-plan");
                        argv.push_back(sub_plan);
                    }
                }
                spawned = runtime::spawnWorkerProcess(argv, worker.proc);
                if (!spawned)
                    spawn_error = std::strerror(errno);
            }
            if (!spawned) {
                support::warn("ShardBackend: cannot spawn worker '",
                              opts_.worker_command.front(),
                              "' for shard ", s, " (", spawn_error, ")");
                stats_.journal.record(DegradeKind::kSpawnFailure, "shard ",
                                      s, " round ", round, ": ",
                                      spawn_error);
                worker.failed = true;
                ++stats_.spawn_failures;
                ++consecutive_spawn_failures;
                if (consecutive_spawn_failures >=
                        opts_.crash_loop_spawns &&
                    !stats_.crash_loop) {
                    stats_.crash_loop = true;
                    sharding_enabled = false;
                    stats_.journal.record(
                        DegradeKind::kCrashLoop,
                        consecutive_spawn_failures,
                        " consecutive spawn failures; sharding disabled "
                        "for the rest of the run");
                    support::warn(
                        "ShardBackend: ", consecutive_spawn_failures,
                        " consecutive worker spawn failures — the "
                        "environment looks broken; disabling sharding "
                        "for the rest of the run (results unchanged, "
                        "everything executes in-process)");
                }
                continue;
            }
            consecutive_spawn_failures = 0;
            ++stats_.shards_launched;
            const auto request =
                encodeShardRequest(effective, specs, worker.slots);
            const auto wire =
                codec::encodeFrame(codec::FrameType::kShardRequest,
                                   request);
            if (!writeAll(worker.proc.to_child, wire.data(), wire.size(),
                          IoBudget::inactivityOnly(opts_.io_timeout_ms))) {
                support::warn("ShardBackend: worker for shard ", s,
                              " rejected its request (",
                              std::strerror(errno), ")");
                stats_.journal.record(DegradeKind::kWorkerDeath, "shard ",
                                      s, " round ", round,
                                      ": worker rejected its request");
                worker.failed = true;
            }
            closeFd(worker.proc.to_child);
        }

        // Reassemble: results stream back one frame per completed spec
        // and land in their slots; a worker that stops short forfeits
        // only its unfinished slots.  Reading shard-by-shard is fine —
        // workers compute concurrently regardless of drain order.
        for (std::size_t s = 0; s < workers.size(); ++s) {
            WorkerProc& worker = workers[s];
            if (worker.slots.empty())
                continue;
            std::set<std::size_t> pending(worker.slots.begin(),
                                          worker.slots.end());
            IoBudget budget =
                IoBudget::inactivityOnly(opts_.io_timeout_ms);
            if (opts_.spec_deadline_ms > 0) {
                budget.has_deadline = true;
                budget.deadline =
                    std::chrono::steady_clock::now() +
                    std::chrono::milliseconds(
                        opts_.spec_deadline_ms *
                        static_cast<long>(worker.slots.size()));
            }
            bool done = false;
            while (!worker.failed && !done) {
                codec::Frame frame;
                const FrameStatus status =
                    readWorkerFrame(worker.proc.from_child, budget, frame);
                if (status != FrameStatus::kFrame) {
                    if (pending.empty() && status == FrameStatus::kEof)
                        break;  // all delivered; kShardDone got lost
                    DegradeKind kind = DegradeKind::kWorkerDeath;
                    const char* cause = "died";
                    if (status == FrameStatus::kCorrupt) {
                        kind = DegradeKind::kFrameCorruption;
                        cause = "produced a corrupt stream";
                    } else if (status == FrameStatus::kTimeout) {
                        kind = DegradeKind::kTimeout;
                        cause = "exceeded its I/O budget";
                    }
                    support::warn("ShardBackend: worker for shard ", s,
                                  " ", cause, " with ", pending.size(),
                                  " spec(s) outstanding");
                    stats_.journal.record(kind, "shard ", s, " round ",
                                          round, ": worker ", cause,
                                          " with ", pending.size(),
                                          " slot(s) outstanding");
                    worker.failed = true;
                    break;
                }
                try {
                    switch (frame.type) {
                      case codec::FrameType::kShardResult: {
                        codec::Decoder dec(frame.payload);
                        const std::size_t slot =
                            static_cast<std::size_t>(dec.u64());
                        auto set = codec::decodeProfileSet(dec);
                        dec.expectEnd("shard result");
                        if (pending.erase(slot) == 0) {
                            support::fatal("shard ", s,
                                           " returned unexpected slot ",
                                           slot);
                        }
                        results[slot] = std::move(set);
                        ++stats_.remote_specs;
                        break;
                      }
                      case codec::FrameType::kShardDone: {
                        codec::Decoder dec(frame.payload);
                        const std::uint32_t count = dec.u32();
                        dec.expectEnd("shard done");
                        if (!pending.empty() ||
                            count != worker.slots.size()) {
                            support::fatal("shard ", s,
                                           " completed with ",
                                           pending.size(),
                                           " spec(s) unaccounted for");
                        }
                        done = true;
                        break;
                      }
                      case codec::FrameType::kWorkerError: {
                        codec::Decoder dec(frame.payload);
                        const std::string message = dec.str();
                        support::warn("ShardBackend: worker for shard ",
                                      s, " reported: ", message);
                        stats_.journal.record(
                            DegradeKind::kWorkerDeath, "shard ", s,
                            " round ", round, ": worker reported: ",
                            message);
                        worker.failed = true;
                        break;
                      }
                      default:
                        support::fatal("shard ", s,
                                       " sent unexpected frame type '",
                                       codec::toString(frame.type), "'");
                    }
                } catch (const support::FatalError& e) {
                    support::warn("ShardBackend: shard ", s,
                                  " protocol error: ", e.what());
                    stats_.journal.record(DegradeKind::kFrameCorruption,
                                          "shard ", s, " round ", round,
                                          ": protocol error: ",
                                          e.what());
                    worker.failed = true;
                }
            }
            closeFd(worker.proc.from_child);
            closeFd(worker.proc.to_child);
            if (worker.proc.pid > 0) {
                // A failed worker may still be alive (stalled past the
                // inactivity timeout): kill its whole process group
                // first so the blocking reap below cannot hang on it.
                if (worker.failed)
                    ::kill(-static_cast<pid_t>(worker.proc.pid), SIGKILL);
                ::waitpid(static_cast<pid_t>(worker.proc.pid), nullptr, 0);
            }
            if (!worker.failed)
                continue;
            ++stats_.shard_failures;
            const bool worker_ran = worker.proc.pid > 0;
            for (const std::size_t slot : worker.slots) {
                if (pending.count(slot) == 0)
                    continue;
                // Spawn failures say nothing about the spec, so they do
                // not count toward quarantine — only a launched worker
                // dying under a slot does.
                if (worker_ran &&
                    ++worker_deaths[slot] >= opts_.quarantine_deaths) {
                    stats_.journal.record(
                        DegradeKind::kQuarantine, "slot ", slot, " (",
                        specs[slot].label, ") survived ",
                        worker_deaths[slot],
                        " worker deaths; quarantined to the in-process "
                        "path");
                    support::warn("ShardBackend: spec '",
                                  specs[slot].label, "' (slot ", slot,
                                  ") killed ", worker_deaths[slot],
                                  " workers; quarantining it to the "
                                  "in-process path");
                    ++stats_.quarantined_specs;
                    fallback.push_back(slot);
                } else {
                    next_round.push_back(slot);
                }
            }
        }

        std::sort(next_round.begin(), next_round.end());
        pending_remote = std::move(next_round);
    }

    // Slots the supervisor could not place remotely — retry budget
    // exhausted or sharding disabled — join the in-process path, loudly.
    if (!pending_remote.empty()) {
        stats_.journal.record(
            DegradeKind::kFallback, pending_remote.size(),
            " slot(s) fall back in-process (",
            stats_.crash_loop ? "sharding disabled by crash loop"
                              : "retry budget exhausted",
            ")");
        for (const std::size_t slot : pending_remote)
            fallback.push_back(slot);
    }

    // Fallback: every forfeited or process-local slot re-executes on the
    // in-process path — the same runOne the workers bottom out in, so
    // the output is bit-identical however the work was placed.
    if (!fallback.empty()) {
        std::sort(fallback.begin(), fallback.end());
        std::vector<ScenarioSpec> local_specs;
        local_specs.reserve(fallback.size());
        for (const std::size_t slot : fallback)
            local_specs.push_back(specs[slot]);
        auto local_results =
            ThreadPoolBackend(opts_.fallback_threads)
                .execute(local_specs, cfg);
        for (std::size_t k = 0; k < fallback.size(); ++k)
            results[fallback[k]] = std::move(local_results[k]);
        stats_.fallback_specs = fallback.size() - stats_.local_specs;
    }
    return results;
}

std::vector<std::string>
defaultWorkerCommand(const std::string& argv0)
{
    const auto slash = argv0.find_last_of('/');
    const std::string base =
        slash == std::string::npos ? argv0 : argv0.substr(slash + 1);
    if (base == "fingrav_cli")
        return {argv0, "--worker"};
    const std::string dir =
        slash == std::string::npos ? "." : argv0.substr(0, slash);
    return {dir + "/fingrav_cli", "--worker"};
}

}  // namespace fingrav::core

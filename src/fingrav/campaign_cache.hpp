#ifndef FINGRAV_FINGRAV_CAMPAIGN_CACHE_HPP_
#define FINGRAV_FINGRAV_CAMPAIGN_CACHE_HPP_

/**
 * @file
 * Content-addressed campaign memoization: the fleet's cache layer.
 *
 * Guidance tables and ablation sweeps overwhelmingly re-profile
 * scenarios whose (ScenarioSpec, MachineConfig) inputs they have seen
 * before, and campaigns are pure functions of exactly those inputs plus
 * the codec schema version.  The wire codec (fingrav/codec.hpp) gives
 * every such pair a canonical byte string, so a campaign result is
 * content-addressable:
 *
 *     key  = canonical_bytes(codec::kVersion, ScenarioSpec, MachineConfig)
 *     hash = FNV-1a-64(key)
 *
 * CampaignCache maps that key to the resulting ProfileSet through two
 * tiers:
 *
 *  - a size-bounded in-memory LRU holding decoded ProfileSets (weighted
 *    by their canonical encoded size, so the bound tracks real payload
 *    volume, not entry counts);
 *
 *  - an optional on-disk store of codec-framed blobs,
 *    `<dir>/<hash:016x>.fgc`, each a kCacheEntry frame carrying the
 *    *full* key bytes plus the encoded ProfileSet.  Writes go to a
 *    process-unique temp file and are published by atomic rename, so
 *    concurrent writers (threads, worker processes, other machines on a
 *    shared filesystem) can never expose a half-written entry.
 *
 * Durability contract — the load-bearing property the fault-injection
 * suite (tests/cache_fault_test.cpp) attacks: a lookup NEVER surfaces an
 * error and NEVER returns a value that is not bit-identical to
 * re-executing the campaign.  Truncated files, bit flips, foreign codec
 * versions, key mismatches (hash collisions or foreign blobs) and
 * unreadable directories are all treated as a miss — counted in stats(),
 * the caller simply re-executes and the store overwrites the bad entry.
 * Invalidation is structural: the key embeds codec::kVersion, so the
 * kVersion bump discipline that guards the wire also expires every
 * cached result whose layout semantics changed.
 *
 * Specs carrying a custom profile_fn are not cacheable (a std::function
 * has no canonical bytes — the same reason they never cross the shard
 * wire); lookup()/store() ignore them, mirroring the backend contract.
 *
 * Thread safety: all members are safe to call concurrently; disk I/O is
 * performed outside the tier lock.
 */

#include <cstddef>
#include <cstdint>
#include <list>
#include <mutex>
#include <optional>
#include <string>
#include <unordered_map>

#include "fingrav/profiler.hpp"
#include "fingrav/scenario.hpp"
#include "sim/machine_config.hpp"
#include "support/fault_injector.hpp"
#include "support/run_journal.hpp"

namespace fingrav::core {

/** CampaignCache configuration. */
struct CacheOptions {
    /** On-disk store directory; empty = in-memory tier only.  Created
     *  (one level) on first store if absent. */
    std::string dir;

    /** In-memory LRU bound, in canonical-encoding bytes.  0 disables
     *  the memory tier (every hit re-reads the disk store). */
    std::size_t memory_capacity_bytes = 256u << 20;

    /** Scripted disk-tier faults (store-short actions fail store()
     *  writes ENOSPC-style at the real write site; see
     *  support/fault_injector.hpp).  Empty in production. */
    support::FaultPlan fault_plan;
};

/** What a cache observed since construction (monotonic counters) plus a
 *  snapshot of the memory tier.  All hits are bit-exact by contract. */
struct CacheStats {
    std::uint64_t memory_hits = 0;   ///< served from the LRU tier
    std::uint64_t disk_hits = 0;     ///< served from the on-disk store
    std::uint64_t misses = 0;        ///< absent everywhere (incl. corrupt)
    /** Of the misses: lookups that found a disk blob but rejected it
     *  (truncated, bit-flipped, foreign version, key mismatch).  The
     *  silent-fallback observable the fault suite asserts on. */
    std::uint64_t corrupt_misses = 0;
    std::uint64_t stores = 0;           ///< results inserted
    std::uint64_t store_failures = 0;   ///< disk writes that failed (silent)
    std::uint64_t evictions = 0;        ///< LRU entries displaced
    std::uint64_t uncacheable = 0;      ///< profile_fn specs bypassing us
    std::uint64_t disk_bytes_written = 0;
    std::uint64_t disk_bytes_read = 0;
    std::uint64_t memory_entries = 0;   ///< snapshot
    std::uint64_t memory_bytes = 0;     ///< snapshot (encoded-size weight)

    std::uint64_t hits() const { return memory_hits + disk_hits; }
    std::uint64_t lookups() const { return hits() + misses; }
};

/** One on-disk store surveyed by CampaignCache::scanDir (cache stats). */
struct CacheDirScan {
    std::uint64_t entries = 0;        ///< *.fgc blobs present
    std::uint64_t valid_entries = 0;  ///< blobs that fully revalidate
    std::uint64_t corrupt_entries = 0;
    std::uint64_t bytes = 0;          ///< total blob bytes
    std::uint64_t temp_files = 0;     ///< unpublished write-temp leftovers
};

/** Two-tier content-addressed (spec, config) -> ProfileSet cache. */
class CampaignCache {
  public:
    explicit CampaignCache(CacheOptions opts = {});

    /** False for specs carrying a profile_fn: no canonical bytes, no
     *  key, never cached (they bypass the wire for the same reason). */
    static bool cacheable(const ScenarioSpec& spec);

    /**
     * The canonical content key: codec version + ScenarioSpec +
     * MachineConfig, in canonical codec bytes.  Fatal for uncacheable
     * specs — callers gate on cacheable() first.
     */
    static std::string key(const ScenarioSpec& spec,
                           const sim::MachineConfig& cfg);

    /** FNV-1a-64 of the key bytes: the on-disk blob address. */
    static std::uint64_t keyHash(const std::string& key);

    /**
     * Look the scenario up in both tiers.  Returns the cached ProfileSet
     * — bit-identical to executing the spec — or nullopt on any miss
     * (absent, corrupt, foreign version, unreadable, uncacheable).
     * Never throws for any disk-store state.
     */
    std::optional<ProfileSet> lookup(const ScenarioSpec& spec,
                                     const sim::MachineConfig& cfg);

    /**
     * Insert an executed result into both tiers.  Disk failures (no
     * directory, no permission, disk full) are silent — the cache
     * degrades to its memory tier and the failure is counted.
     * Uncacheable specs are ignored.
     */
    void store(const ScenarioSpec& spec, const sim::MachineConfig& cfg,
               const ProfileSet& set);

    /** Counter snapshot (thread-safe). */
    CacheStats stats() const;

    /**
     * Every degradation since construction — corrupt blobs served as
     * misses, failed store writes — as typed events.  The counters in
     * stats() stay authoritative for totals; the journal carries the
     * per-event context backends fold into their own run journal so no
     * cache degradation stays silent (support/run_journal.hpp).
     */
    const support::RunJournal& journal() const { return journal_; }

    /** The options in force. */
    const CacheOptions& options() const { return opts_; }

    /**
     * Survey an on-disk store: blob count and bytes, how many blobs
     * revalidate end to end, and leftover write-temps.  Powers the CLI's
     * `cache stats`; never throws (a missing directory scans as empty).
     */
    static CacheDirScan scanDir(const std::string& dir);

    /** The blob path a key hashes to (tests, tooling). */
    static std::string entryPath(const std::string& dir,
                                 const std::string& key);

  private:
    struct Entry {
        std::string key;
        ProfileSet set;
        std::size_t weight = 0;  ///< canonical encoded payload size
    };

    /** Insert into the LRU (caller holds no lock). */
    void memoryInsert(const std::string& key, const ProfileSet& set,
                      std::size_t weight);

    CacheOptions opts_;
    support::FaultInjector injector_;
    support::RunJournal journal_;

    mutable std::mutex mu_;
    std::list<Entry> lru_;  ///< front = most recently used
    std::unordered_map<std::string, std::list<Entry>::iterator> index_;
    std::size_t memory_bytes_ = 0;
    CacheStats stats_;
};

}  // namespace fingrav::core

#endif  // FINGRAV_FINGRAV_CAMPAIGN_CACHE_HPP_

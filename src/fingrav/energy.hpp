#ifndef FINGRAV_FINGRAV_ENERGY_HPP_
#define FINGRAV_FINGRAV_ENERGY_HPP_

/**
 * @file
 * Power/energy error analysis over FinGraV profiles.
 *
 * The paper's headline measurement warning: assuming the SSE profile is
 * "the kernel's power" misestimates power — and therefore energy, since
 * energy is power integrated over time — by up to 80 % depending on the
 * ratio of kernel execution time to the logger's averaging window
 * (takeaway #1 / measurement guidance #1, Table II).  These helpers
 * quantify that error and the related interleaving contamination
 * (takeaway #5 / measurement guidance #2).
 */

#include "fingrav/profile.hpp"
#include "fingrav/profiler.hpp"
#include "support/units.hpp"

namespace fingrav::core {

/** SSE-vs-SSP analysis of one profiling campaign. */
struct DifferentiationReport {
    double sse_mean_w = 0.0;   ///< mean SSE power (a naive user's answer)
    double ssp_mean_w = 0.0;   ///< mean SSP power (the true steady state)
    double error_pct = 0.0;    ///< (ssp - sse) / ssp * 100
    support::Joules sse_energy_j = 0.0;  ///< per-execution energy, naive
    support::Joules ssp_energy_j = 0.0;  ///< per-execution energy, true
};

/**
 * Quantify the measurement error of skipping profile differentiation.
 *
 * @param set   A completed profiling campaign (needs both profiles).
 * @param rail  Rail to analyse (paper reports total power).
 */
DifferentiationReport differentiationError(const ProfileSet& set,
                                           Rail rail = Rail::kTotal);

/**
 * Relative change of an interleaved profile against the isolated SSP
 * reference, percent.  Positive = the interleaved measurement reads higher
 * (compute-heavy predecessors), negative = lower (light predecessors) —
 * the paper's Fig. 9 contamination directions.
 */
double interleavingShiftPct(const ProfileSet& interleaved,
                            const ProfileSet& isolated,
                            Rail rail = Rail::kTotal);

/** Energy of one execution from a profile's mean power, joules. */
support::Joules executionEnergy(const PowerProfile& profile,
                                support::Duration exec_time,
                                Rail rail = Rail::kTotal);

}  // namespace fingrav::core

#endif  // FINGRAV_FINGRAV_ENERGY_HPP_

#include "fingrav/campaign_cache.hpp"

#include <atomic>
#include <cstdio>
#include <filesystem>
#include <fstream>
#include <utility>
#include <vector>

#include <unistd.h>

#include "fingrav/codec.hpp"
#include "support/logging.hpp"

namespace fingrav::core {

namespace fscodec = fingrav::core::codec;
namespace stdfs = std::filesystem;

namespace {

/** Read a whole file as bytes; nullopt when it cannot be opened. */
std::optional<std::vector<std::uint8_t>>
readAll(const std::string& path)
{
    std::ifstream in(path, std::ios::binary);
    if (!in)
        return std::nullopt;
    std::vector<std::uint8_t> bytes;
    char buf[1 << 16];
    while (in.read(buf, sizeof buf) || in.gcount() > 0) {
        bytes.insert(bytes.end(), buf, buf + in.gcount());
        if (!in)
            break;
    }
    if (in.bad())
        return std::nullopt;
    return bytes;
}

/**
 * Decode one on-disk blob back to (key bytes, ProfileSet).  Throws
 * support::FatalError on ANY inconsistency — truncation, bit flip
 * (checksum), foreign version, wrong frame type, trailing bytes — which
 * callers translate into a miss.
 */
std::pair<std::string, ProfileSet>
decodeEntry(const std::vector<std::uint8_t>& bytes)
{
    const auto frame = fscodec::parseFrame(bytes);
    if (frame.type != fscodec::FrameType::kCacheEntry) {
        support::fatal("campaign cache: blob holds a ",
                       fscodec::toString(frame.type),
                       " frame, not a cache entry");
    }
    fscodec::Decoder dec(frame.payload);
    std::string key = dec.str();
    ProfileSet set = fscodec::decodeProfileSet(dec);
    dec.expectEnd("cache entry");
    return {std::move(key), std::move(set)};
}

}  // namespace

CampaignCache::CampaignCache(CacheOptions opts)
    : opts_(std::move(opts)), injector_(opts_.fault_plan)
{
}

bool
CampaignCache::cacheable(const ScenarioSpec& spec)
{
    return !spec.profile_fn;
}

std::string
CampaignCache::key(const ScenarioSpec& spec, const sim::MachineConfig& cfg)
{
    if (!cacheable(spec)) {
        support::fatal("campaign cache: a spec with a custom profile_fn "
                       "has no canonical bytes and cannot be keyed");
    }
    fscodec::Encoder enc;
    // The version is part of the content address: any layout-semantics
    // change bumps kVersion and thereby expires every cached result.
    enc.u16(fscodec::kVersion);
    fscodec::encodeScenarioSpec(enc, spec);
    fscodec::encodeMachineConfig(enc, cfg);
    return std::string(enc.bytes().begin(), enc.bytes().end());
}

std::uint64_t
CampaignCache::keyHash(const std::string& key)
{
    return fscodec::fnv1a64(
        reinterpret_cast<const std::uint8_t*>(key.data()), key.size());
}

std::string
CampaignCache::entryPath(const std::string& dir, const std::string& key)
{
    char name[32];
    std::snprintf(name, sizeof name, "%016llx.fgc",
                  static_cast<unsigned long long>(keyHash(key)));
    return (stdfs::path(dir) / name).string();
}

std::optional<ProfileSet>
CampaignCache::lookup(const ScenarioSpec& spec, const sim::MachineConfig& cfg)
{
    if (!cacheable(spec)) {
        std::lock_guard<std::mutex> lock(mu_);
        ++stats_.uncacheable;
        return std::nullopt;
    }
    const std::string k = key(spec, cfg);

    {
        std::lock_guard<std::mutex> lock(mu_);
        const auto it = index_.find(k);
        if (it != index_.end()) {
            lru_.splice(lru_.begin(), lru_, it->second);
            ++stats_.memory_hits;
            return it->second->set;
        }
    }

    if (opts_.dir.empty()) {
        std::lock_guard<std::mutex> lock(mu_);
        ++stats_.misses;
        return std::nullopt;
    }

    // Disk tier.  Everything from here on is adversarial territory: the
    // blob may be truncated, bit-flipped, written by a foreign codec
    // version, or a hash-colliding stranger.  All of it is a miss.
    const auto bytes = readAll(entryPath(opts_.dir, k));
    if (!bytes.has_value()) {
        std::lock_guard<std::mutex> lock(mu_);
        ++stats_.misses;
        return std::nullopt;
    }
    try {
        auto [stored_key, set] = decodeEntry(*bytes);
        if (stored_key != k) {
            // A valid blob for different content (hash collision or a
            // foreign file): serving it would violate bit-identity.
            support::fatal("campaign cache: blob key does not match "
                           "the probed content key");
        }
        memoryInsert(k, set, bytes->size());
        std::lock_guard<std::mutex> lock(mu_);
        ++stats_.disk_hits;
        stats_.disk_bytes_read += bytes->size();
        return std::move(set);
    } catch (const std::exception& e) {
        // The caller simply re-executes and the subsequent store
        // overwrites the bad blob — never an error to the caller, but
        // never silent either: the rejection is journaled.
        journal_.record(support::DegradeKind::kCacheCorruptionMiss,
                        "blob rejected (", e.what(), "); re-executing");
        std::lock_guard<std::mutex> lock(mu_);
        ++stats_.misses;
        ++stats_.corrupt_misses;
        return std::nullopt;
    }
}

void
CampaignCache::store(const ScenarioSpec& spec, const sim::MachineConfig& cfg,
                     const ProfileSet& set)
{
    if (!cacheable(spec))
        return;
    const std::string k = key(spec, cfg);

    fscodec::Encoder enc;
    enc.str(k);
    fscodec::encodeProfileSet(enc, set);
    const auto frame =
        fscodec::encodeFrame(fscodec::FrameType::kCacheEntry, enc.bytes());

    memoryInsert(k, set, frame.size());
    {
        std::lock_guard<std::mutex> lock(mu_);
        ++stats_.stores;
    }
    if (opts_.dir.empty())
        return;

    // Atomic publication: write a process-unique temp sibling, then
    // rename onto the final name.  Readers either see the previous blob
    // or the complete new one, never a partial write — the property the
    // concurrent-writer fault test leans on.
    auto fail = [&](const char* cause) {
        journal_.record(support::DegradeKind::kCacheStoreFailure,
                        "store write failed (", cause,
                        "); disk tier skipped for this entry");
        std::lock_guard<std::mutex> lock(mu_);
        ++stats_.store_failures;
    };
    std::error_code ec;
    stdfs::create_directories(opts_.dir, ec);  // best effort
    const std::string path = entryPath(opts_.dir, k);
    static std::atomic<std::uint64_t> temp_seq{0};
    const std::string temp =
        path + ".tmp." + std::to_string(::getpid()) + "." +
        std::to_string(temp_seq.fetch_add(1, std::memory_order_relaxed));
    {
        std::ofstream out(temp, std::ios::binary | std::ios::trunc);
        if (!out) {
            fail("cannot open temp file");
            return;
        }
        // Injected ENOSPC-style short write: only part of the blob
        // reaches the temp file before the stream "fails".  The same
        // cleanup path a real full disk takes runs — the temp is
        // removed, nothing is published, the failure is counted and
        // journaled — so lookups can never see the partial blob.
        if (injector_.armed() && injector_.onStoreWrite()) {
            out.write(reinterpret_cast<const char*>(frame.data()),
                      static_cast<std::streamsize>(frame.size() / 2));
            out.flush();
            out.close();
            stdfs::remove(temp, ec);
            fail("injected short write, ENOSPC-style");
            return;
        }
        out.write(reinterpret_cast<const char*>(frame.data()),
                  static_cast<std::streamsize>(frame.size()));
        out.flush();
        if (!out) {
            out.close();
            stdfs::remove(temp, ec);
            fail("short write");
            return;
        }
    }
    stdfs::rename(temp, path, ec);
    if (ec) {
        stdfs::remove(temp, ec);
        fail("rename failed");
        return;
    }
    std::lock_guard<std::mutex> lock(mu_);
    stats_.disk_bytes_written += frame.size();
}

CacheStats
CampaignCache::stats() const
{
    std::lock_guard<std::mutex> lock(mu_);
    CacheStats out = stats_;
    out.memory_entries = lru_.size();
    out.memory_bytes = memory_bytes_;
    return out;
}

void
CampaignCache::memoryInsert(const std::string& key, const ProfileSet& set,
                            std::size_t weight)
{
    std::lock_guard<std::mutex> lock(mu_);
    if (opts_.memory_capacity_bytes == 0)
        return;
    const auto it = index_.find(key);
    if (it != index_.end()) {
        lru_.splice(lru_.begin(), lru_, it->second);
        memory_bytes_ -= it->second->weight;
        it->second->set = set;
        it->second->weight = weight;
        memory_bytes_ += weight;
    } else {
        lru_.push_front(Entry{key, set, weight});
        index_[key] = lru_.begin();
        memory_bytes_ += weight;
    }
    while (memory_bytes_ > opts_.memory_capacity_bytes && !lru_.empty()) {
        const Entry& victim = lru_.back();
        memory_bytes_ -= victim.weight;
        index_.erase(victim.key);
        lru_.pop_back();
        ++stats_.evictions;
    }
}

CacheDirScan
CampaignCache::scanDir(const std::string& dir)
{
    CacheDirScan scan;
    std::error_code ec;
    stdfs::directory_iterator it(dir, ec);
    if (ec)
        return scan;
    for (const auto& entry : it) {
        std::error_code sec;
        if (!entry.is_regular_file(sec))
            continue;
        const std::string name = entry.path().filename().string();
        if (name.find(".fgc.tmp.") != std::string::npos) {
            ++scan.temp_files;
            continue;
        }
        if (entry.path().extension() != ".fgc")
            continue;
        ++scan.entries;
        scan.bytes += entry.file_size(sec);
        const auto bytes = readAll(entry.path().string());
        if (!bytes.has_value()) {
            ++scan.corrupt_entries;
            continue;
        }
        try {
            const auto [key, set] = decodeEntry(*bytes);
            // The blob must also live at the address its key hashes to —
            // a renamed/copied foreign blob fails revalidation.
            if (stdfs::path(entryPath(dir, key)).filename() !=
                entry.path().filename())
                throw support::FatalError("misaddressed cache blob");
            ++scan.valid_entries;
        } catch (const std::exception&) {
            ++scan.corrupt_entries;
        }
    }
    return scan;
}

}  // namespace fingrav::core

#ifndef FINGRAV_FINGRAV_BINNING_HPP_
#define FINGRAV_FINGRAV_BINNING_HPP_

/**
 * @file
 * Kernel execution-time binning (paper tenet S3, step 6).
 *
 * Sub-millisecond kernels show run-to-run execution-time variation (e.g.
 * from allocation-dependent access patterns), which makes power
 * measurements from different runs incomparable.  FinGraV bins per-run
 * execution times and keeps only the "golden runs": those whose times fall
 * in the bin with the maximum number of executions within the guidance
 * margin of each other.  Everything else is an outlier run and is
 * discarded from the common-case profile (Section VI discusses profiling
 * the outliers themselves; see OutlierProfiler).
 */

#include <cstddef>
#include <vector>

#include "support/time_types.hpp"

namespace fingrav::core {

/** Outcome of golden-run selection. */
struct BinningResult {
    /** Representative (modal) execution time of the golden bin. */
    support::Duration bin_center;
    /** Indices of runs whose execution time fell inside the bin. */
    std::vector<std::size_t> golden_runs;
    /** Total runs examined. */
    std::size_t total_runs = 0;

    /** Number of discarded (outlier) runs. */
    std::size_t
    outlierCount() const
    {
        return total_runs - golden_runs.size();
    }

    /** Fraction of runs kept. */
    double
    goldenFraction() const
    {
        return total_runs == 0
                   ? 0.0
                   : static_cast<double>(golden_runs.size()) /
                         static_cast<double>(total_runs);
    }
};

/** Golden-run selector with a relative execution-time margin. */
class ExecutionBinner {
  public:
    /** @param margin Relative margin (e.g. 0.05 = the paper's 5 %). */
    explicit ExecutionBinner(double margin);

    /**
     * Select golden runs from per-run representative execution times.
     *
     * @param exec_times One representative (SSP) execution time per run.
     */
    BinningResult select(
        const std::vector<support::Duration>& exec_times) const;

    /**
     * Select runs belonging to a *target* time instead of the modal bin —
     * the paper's Section VI outlier-profiling variant of step 6.
     */
    BinningResult selectAround(
        const std::vector<support::Duration>& exec_times,
        support::Duration target) const;

    /** The margin in force. */
    double margin() const { return margin_; }

  private:
    double margin_;
};

}  // namespace fingrav::core

#endif  // FINGRAV_FINGRAV_BINNING_HPP_

#include "fingrav/codec.hpp"

#include <bit>
#include <cstring>
#include <istream>
#include <limits>
#include <ostream>
#include <type_traits>
#include <utility>

#include "support/logging.hpp"

namespace fingrav::core::codec {

namespace {

using fingrav::support::Duration;

/** Hard cap on string/vector lengths: a corrupted length field must not
 *  turn into a multi-gigabyte allocation before the checksum/bounds
 *  checks have a chance to fire. */
constexpr std::uint64_t kMaxElementCount = 1ULL << 28;

}  // namespace

std::uint64_t
checkedCount(std::uint64_t n, const char* what)
{
    if (n > kMaxElementCount)
        support::fatal("codec: implausible ", what, " count ", n);
    return n;
}

const char*
toString(FrameType type)
{
    switch (type) {
      case FrameType::kScenarioSpec:
        return "scenario-spec";
      case FrameType::kProfileSet:
        return "profile-set";
      case FrameType::kShardRequest:
        return "shard-request";
      case FrameType::kShardResult:
        return "shard-result";
      case FrameType::kShardDone:
        return "shard-done";
      case FrameType::kWorkerError:
        return "worker-error";
      case FrameType::kCacheEntry:
        return "cache-entry";
      case FrameType::kPing:
        return "ping";
      case FrameType::kPong:
        return "pong";
      case FrameType::kShutdown:
        return "shutdown";
    }
    return "unknown";
}

// ---------------------------------------------------------------------------
// Encoder
// ---------------------------------------------------------------------------

void
Encoder::u8(std::uint8_t v)
{
    bytes_.push_back(v);
}

void
Encoder::u16(std::uint16_t v)
{
    bytes_.push_back(static_cast<std::uint8_t>(v));
    bytes_.push_back(static_cast<std::uint8_t>(v >> 8));
}

void
Encoder::u32(std::uint32_t v)
{
    for (int shift = 0; shift < 32; shift += 8)
        bytes_.push_back(static_cast<std::uint8_t>(v >> shift));
}

void
Encoder::u64(std::uint64_t v)
{
    for (int shift = 0; shift < 64; shift += 8)
        bytes_.push_back(static_cast<std::uint8_t>(v >> shift));
}

void
Encoder::i64(std::int64_t v)
{
    u64(static_cast<std::uint64_t>(v));
}

void
Encoder::f64(double v)
{
    u64(std::bit_cast<std::uint64_t>(v));
}

void
Encoder::boolean(bool v)
{
    u8(v ? 1 : 0);
}

void
Encoder::str(const std::string& v)
{
    u32(static_cast<std::uint32_t>(v.size()));
    bytes_.insert(bytes_.end(), v.begin(), v.end());
}

void
Encoder::duration(Duration v)
{
    i64(v.nanos());
}

void
Encoder::optU64(const std::optional<std::size_t>& v)
{
    boolean(v.has_value());
    if (v.has_value())
        u64(*v);
}

void
Encoder::optF64(const std::optional<double>& v)
{
    boolean(v.has_value());
    if (v.has_value())
        f64(*v);
}

void
Encoder::optDuration(const std::optional<Duration>& v)
{
    boolean(v.has_value());
    if (v.has_value())
        duration(*v);
}

namespace {

/** One contiguous little-endian element block (canonical bytes match the
 *  per-element writers exactly — the fast path is pure layout). */
template <typename T>
void
appendColumnBytes(std::vector<std::uint8_t>& bytes, const std::vector<T>& v)
{
    if constexpr (std::endian::native == std::endian::little) {
        const auto* raw = reinterpret_cast<const std::uint8_t*>(v.data());
        bytes.insert(bytes.end(), raw, raw + v.size() * sizeof(T));
    } else {
        for (const T x : v) {
            std::uint64_t u;
            if constexpr (std::is_same_v<T, double>)
                u = std::bit_cast<std::uint64_t>(x);
            else
                u = static_cast<std::uint64_t>(x);
            for (int shift = 0; shift < 64; shift += 8)
                bytes.push_back(static_cast<std::uint8_t>(u >> shift));
        }
    }
}

}  // namespace

void
Encoder::f64Column(const std::vector<double>& v)
{
    appendColumnBytes(bytes_, v);
}

void
Encoder::i64Column(const std::vector<std::int64_t>& v)
{
    appendColumnBytes(bytes_, v);
}

void
Encoder::u64Column(const std::vector<std::uint64_t>& v)
{
    appendColumnBytes(bytes_, v);
}

// ---------------------------------------------------------------------------
// Decoder
// ---------------------------------------------------------------------------

const std::uint8_t*
Decoder::need(std::size_t n)
{
    if (size_ - pos_ < n) {
        support::fatal("codec: truncated payload (need ", n, " bytes, ",
                       size_ - pos_, " left)");
    }
    const std::uint8_t* at = data_ + pos_;
    pos_ += n;
    return at;
}

std::uint8_t
Decoder::u8()
{
    return *need(1);
}

std::uint16_t
Decoder::u16()
{
    const std::uint8_t* p = need(2);
    return static_cast<std::uint16_t>(p[0] | (p[1] << 8));
}

std::uint32_t
Decoder::u32()
{
    const std::uint8_t* p = need(4);
    std::uint32_t v = 0;
    for (int i = 0; i < 4; ++i)
        v |= static_cast<std::uint32_t>(p[i]) << (8 * i);
    return v;
}

std::uint64_t
Decoder::u64()
{
    const std::uint8_t* p = need(8);
    std::uint64_t v = 0;
    for (int i = 0; i < 8; ++i)
        v |= static_cast<std::uint64_t>(p[i]) << (8 * i);
    return v;
}

std::int64_t
Decoder::i64()
{
    return static_cast<std::int64_t>(u64());
}

double
Decoder::f64()
{
    return std::bit_cast<double>(u64());
}

bool
Decoder::boolean()
{
    const std::uint8_t v = u8();
    if (v > 1)
        support::fatal("codec: corrupt boolean value ", int(v));
    return v == 1;
}

std::string
Decoder::str()
{
    const std::uint64_t n = checkedCount(u32(), "string");
    const std::uint8_t* p = need(n);
    return std::string(reinterpret_cast<const char*>(p), n);
}

Duration
Decoder::duration()
{
    return Duration::nanos(i64());
}

std::optional<std::size_t>
Decoder::optU64()
{
    if (!boolean())
        return std::nullopt;
    return static_cast<std::size_t>(u64());
}

std::optional<double>
Decoder::optF64()
{
    if (!boolean())
        return std::nullopt;
    return f64();
}

std::optional<Duration>
Decoder::optDuration()
{
    if (!boolean())
        return std::nullopt;
    return duration();
}

namespace {

/** Block-read `n` little-endian elements: one bounds check, one memcpy on
 *  little-endian hosts (zero-copy of the v2 column layout). */
template <typename T>
std::vector<T>
readColumn(const std::uint8_t* p, std::size_t n)
{
    std::vector<T> out(n);
    if constexpr (std::endian::native == std::endian::little) {
        if (n > 0)
            std::memcpy(out.data(), p, n * sizeof(T));
    } else {
        for (std::size_t i = 0; i < n; ++i) {
            std::uint64_t u = 0;
            for (int b = 0; b < 8; ++b)
                u |= static_cast<std::uint64_t>(p[i * 8 + b]) << (8 * b);
            if constexpr (std::is_same_v<T, double>)
                out[i] = std::bit_cast<double>(u);
            else
                out[i] = static_cast<T>(u);
        }
    }
    return out;
}

}  // namespace

std::vector<double>
Decoder::f64Column(std::size_t n)
{
    return readColumn<double>(need(n * sizeof(double)), n);
}

std::vector<std::int64_t>
Decoder::i64Column(std::size_t n)
{
    return readColumn<std::int64_t>(need(n * sizeof(std::int64_t)), n);
}

std::vector<std::uint64_t>
Decoder::u64Column(std::size_t n)
{
    return readColumn<std::uint64_t>(need(n * sizeof(std::uint64_t)), n);
}

void
Decoder::expectEnd(const char* what) const
{
    if (!atEnd()) {
        support::fatal("codec: ", remaining(), " trailing bytes after ",
                       what);
    }
}

// ---------------------------------------------------------------------------
// ScenarioSpec
// ---------------------------------------------------------------------------

namespace {

void
encodeProfilerOptions(Encoder& enc, const ProfilerOptions& opts)
{
    enc.u64(opts.device);
    enc.optU64(opts.runs_override);
    enc.optF64(opts.margin_override);
    enc.u64(opts.sse_executions);
    enc.u64(opts.timing_reps);
    enc.duration(opts.min_delay);
    enc.duration(opts.max_delay);
    enc.u8(static_cast<std::uint8_t>(opts.sync_mode));
    enc.boolean(opts.binning);
    enc.boolean(opts.collect_extra_runs);
    enc.f64(opts.max_extra_run_factor);
    enc.f64(opts.stability_eps);
    enc.duration(opts.logger_window);
    enc.optDuration(opts.target_bin);
}

ProfilerOptions
decodeProfilerOptions(Decoder& dec)
{
    ProfilerOptions opts;
    opts.device = dec.u64();
    opts.runs_override = dec.optU64();
    opts.margin_override = dec.optF64();
    opts.sse_executions = dec.u64();
    opts.timing_reps = dec.u64();
    opts.min_delay = dec.duration();
    opts.max_delay = dec.duration();
    const std::uint8_t mode = dec.u8();
    if (mode > static_cast<std::uint8_t>(SyncMode::kCoarseAlign))
        support::fatal("codec: invalid sync mode ", int(mode));
    opts.sync_mode = static_cast<SyncMode>(mode);
    opts.binning = dec.boolean();
    opts.collect_extra_runs = dec.boolean();
    opts.max_extra_run_factor = dec.f64();
    opts.stability_eps = dec.f64();
    opts.logger_window = dec.duration();
    opts.target_bin = dec.optDuration();
    return opts;
}

void
encodeBackgroundLoad(Encoder& enc, const BackgroundLoad& load)
{
    enc.u8(static_cast<std::uint8_t>(load.kind));
    enc.str(load.kernel);
    enc.f64(load.demand);
    enc.u64(load.device);
    enc.u64(load.queue);
    enc.duration(load.offset);
    enc.duration(load.period);
    enc.f64(load.duty_cycle);
    enc.u64(load.cycles);
    enc.f64(load.jitter_sigma);
}

BackgroundLoad
decodeBackgroundLoad(Decoder& dec)
{
    BackgroundLoad load;
    const std::uint8_t kind = dec.u8();
    if (kind > static_cast<std::uint8_t>(BackgroundKind::kFabricDemand))
        support::fatal("codec: invalid background kind ", int(kind));
    load.kind = static_cast<BackgroundKind>(kind);
    load.kernel = dec.str();
    load.demand = dec.f64();
    load.device = dec.u64();
    load.queue = dec.u64();
    load.offset = dec.duration();
    load.period = dec.duration();
    load.duty_cycle = dec.f64();
    load.cycles = dec.u64();
    load.jitter_sigma = dec.f64();
    return load;
}

}  // namespace

void
encodeScenarioSpec(Encoder& enc, const ScenarioSpec& spec)
{
    if (spec.profile_fn) {
        support::fatal("codec: a ScenarioSpec with a custom profile_fn "
                       "cannot cross the wire (", spec.label,
                       "); run it on the in-process path");
    }
    enc.str(spec.label);
    enc.u64(spec.seed);
    encodeProfilerOptions(enc, spec.opts);
    enc.u64(spec.devices);
    enc.u32(static_cast<std::uint32_t>(spec.background.size()));
    for (const auto& load : spec.background)
        encodeBackgroundLoad(enc, load);
}

ScenarioSpec
decodeScenarioSpec(Decoder& dec)
{
    ScenarioSpec spec;
    spec.label = dec.str();
    spec.seed = dec.u64();
    spec.opts = decodeProfilerOptions(dec);
    spec.devices = dec.u64();
    const std::uint64_t loads = checkedCount(dec.u32(), "background-load");
    spec.background.reserve(loads);
    for (std::uint64_t i = 0; i < loads; ++i)
        spec.background.push_back(decodeBackgroundLoad(dec));
    return spec;
}

// ---------------------------------------------------------------------------
// ProfileSet
// ---------------------------------------------------------------------------

namespace {

/**
 * v2 columnar profile layout: label, kind, point count, then one
 * contiguous block per column in declaration order — toi_us, toi_frac,
 * run_time_us, gpu_timestamp, total_w, xcd_w, iod_w, hbm_w, run_index,
 * exec_index — and finally the packed contention bitmap, (n + 63) / 64
 * u64 words whose trailing bits past n MUST be zero (canonical form;
 * decode rejects trailing garbage).  The word count is derived from n,
 * never read off the wire.
 */
void
encodePowerProfile(Encoder& enc, const PowerProfile& profile)
{
    enc.str(profile.label());
    enc.u8(static_cast<std::uint8_t>(profile.kind()));
    enc.u32(static_cast<std::uint32_t>(profile.size()));
    enc.f64Column(profile.toiUs());
    enc.f64Column(profile.toiFrac());
    enc.f64Column(profile.runTimeUs());
    enc.i64Column(profile.gpuTimestamps());
    enc.f64Column(profile.railColumn(Rail::kTotal));
    enc.f64Column(profile.railColumn(Rail::kXcd));
    enc.f64Column(profile.railColumn(Rail::kIod));
    enc.f64Column(profile.railColumn(Rail::kHbm));
    enc.u64Column(profile.runIndices());
    enc.u64Column(profile.execIndices());
    enc.u64Column(profile.contendedWords());
}

PowerProfile
decodePowerProfile(Decoder& dec)
{
    const std::string label = dec.str();
    const std::uint8_t kind = dec.u8();
    if (kind > static_cast<std::uint8_t>(ProfileKind::kTimeline))
        support::fatal("codec: invalid profile kind ", int(kind));
    PowerProfile profile(label, static_cast<ProfileKind>(kind));
    const auto n = static_cast<std::size_t>(
        checkedCount(dec.u32(), "profile-point"));
    auto toi_us = dec.f64Column(n);
    auto toi_frac = dec.f64Column(n);
    auto run_time_us = dec.f64Column(n);
    auto gpu_timestamp = dec.i64Column(n);
    auto total_w = dec.f64Column(n);
    auto xcd_w = dec.f64Column(n);
    auto iod_w = dec.f64Column(n);
    auto hbm_w = dec.f64Column(n);
    auto run_index = dec.u64Column(n);
    auto exec_index = dec.u64Column(n);
    auto contended_words = dec.u64Column((n + 63) / 64);
    if (n % 64 != 0 && !contended_words.empty()) {
        const std::uint64_t tail_mask = ~std::uint64_t{0} << (n % 64);
        if ((contended_words.back() & tail_mask) != 0) {
            support::fatal("codec: profile contention bitmap has set bits "
                           "past the point count (non-canonical frame)");
        }
    }
    profile.adoptColumns(n, std::move(toi_us), std::move(toi_frac),
                         std::move(run_time_us), std::move(gpu_timestamp),
                         std::move(total_w), std::move(xcd_w),
                         std::move(iod_w), std::move(hbm_w),
                         std::move(run_index), std::move(exec_index),
                         std::move(contended_words));
    return profile;
}

void
encodeGuidanceEntry(Encoder& enc, const GuidanceEntry& entry)
{
    enc.duration(entry.exec_lo);
    enc.duration(entry.exec_hi);
    enc.u64(entry.runs);
    enc.duration(entry.loi_per);
    enc.f64(entry.binning_margin);
}

GuidanceEntry
decodeGuidanceEntry(Decoder& dec)
{
    GuidanceEntry entry;
    entry.exec_lo = dec.duration();
    entry.exec_hi = dec.duration();
    entry.runs = dec.u64();
    entry.loi_per = dec.duration();
    entry.binning_margin = dec.f64();
    return entry;
}

void
encodeBinningResult(Encoder& enc, const BinningResult& binning)
{
    enc.duration(binning.bin_center);
    enc.u32(static_cast<std::uint32_t>(binning.golden_runs.size()));
    for (const std::size_t run : binning.golden_runs)
        enc.u64(run);
    enc.u64(binning.total_runs);
}

BinningResult
decodeBinningResult(Decoder& dec)
{
    BinningResult binning;
    binning.bin_center = dec.duration();
    const std::uint64_t golden = checkedCount(dec.u32(), "golden-run");
    binning.golden_runs.reserve(golden);
    for (std::uint64_t i = 0; i < golden; ++i)
        binning.golden_runs.push_back(dec.u64());
    binning.total_runs = dec.u64();
    return binning;
}

}  // namespace

void
encodeProfileSet(Encoder& enc, const ProfileSet& set)
{
    enc.str(set.label);
    enc.duration(set.measured_exec_time);
    encodeGuidanceEntry(enc, set.guidance);
    enc.u64(set.runs_executed);
    encodeBinningResult(enc, set.binning);
    enc.u64(set.sse_exec_index);
    enc.u64(set.ssp_exec_index);
    enc.u64(set.execs_per_run);
    enc.duration(set.ssp_exec_time);
    enc.u64(set.loi_target);
    enc.f64(set.read_delay_us);
    enc.f64(set.drift_ppm);
    encodePowerProfile(enc, set.sse);
    encodePowerProfile(enc, set.ssp);
    encodePowerProfile(enc, set.timeline);
}

ProfileSet
decodeProfileSet(Decoder& dec)
{
    ProfileSet set;
    set.label = dec.str();
    set.measured_exec_time = dec.duration();
    set.guidance = decodeGuidanceEntry(dec);
    set.runs_executed = dec.u64();
    set.binning = decodeBinningResult(dec);
    set.sse_exec_index = dec.u64();
    set.ssp_exec_index = dec.u64();
    set.execs_per_run = dec.u64();
    set.ssp_exec_time = dec.duration();
    set.loi_target = dec.u64();
    set.read_delay_us = dec.f64();
    set.drift_ppm = dec.f64();
    set.sse = decodePowerProfile(dec);
    set.ssp = decodePowerProfile(dec);
    set.timeline = decodePowerProfile(dec);
    return set;
}

// ---------------------------------------------------------------------------
// MachineConfig (declaration order; nested params appended)
// ---------------------------------------------------------------------------

void
encodeMachineConfig(Encoder& enc, const sim::MachineConfig& cfg)
{
    enc.u64(cfg.num_xcds);
    enc.u64(cfg.cus_per_xcd);
    enc.u64(cfg.num_iods);
    enc.u64(cfg.num_hbm_stacks);
    enc.f64(cfg.peak_matrix_flops);
    enc.f64(cfg.peak_vector_flops);
    enc.f64(cfg.hbm_bandwidth);
    enc.f64(cfg.llc_bandwidth);
    enc.i64(cfg.llc_capacity);
    enc.i64(cfg.l2_capacity_per_xcd);
    enc.i64(cfg.hbm_capacity);
    enc.u64(cfg.node_gpus);
    enc.u64(cfg.fabric_links);
    enc.f64(cfg.fabric_link_bandwidth);
    enc.f64(cfg.boost_frequency_hz);
    enc.f64(cfg.nominal_frequency_hz);
    enc.f64(cfg.idle_frequency_hz);
    enc.duration(cfg.timestamp_tick);
    enc.f64(cfg.gpu_clock_drift_ppm);
    enc.duration(cfg.power_step);
    enc.duration(cfg.idle_step);
    enc.u64(cfg.advance_threads);
    enc.duration(cfg.logger_window);
    enc.f64(cfg.logger_noise_w);
    enc.duration(cfg.launch_overhead);
    enc.duration(cfg.sync_overhead);
    enc.duration(cfg.timestamp_read_delay);
    enc.f64(cfg.timestamp_read_jitter);
    enc.f64(cfg.exec_time_sigma);
    enc.f64(cfg.outlier_run_probability);
    enc.f64(cfg.outlier_slowdown_min);
    enc.f64(cfg.outlier_slowdown_max);

    const auto& p = cfg.power;
    enc.f64(p.xcd_idle_w);
    enc.f64(p.iod_idle_w);
    enc.f64(p.hbm_idle_w);
    enc.f64(p.misc_w);
    enc.f64(p.xcd_dyn_w);
    enc.f64(p.xcd_residency_weight);
    enc.f64(p.xcd_issue_weight);
    enc.f64(p.iod_llc_w);
    enc.f64(p.iod_hbmphy_w);
    enc.f64(p.iod_fabric_w);
    enc.f64(p.hbm_dyn_w);
    enc.f64(p.leakage_fraction);
    enc.f64(p.leakage_temp_coeff);
    enc.f64(p.t_ref_c);
    enc.f64(p.voltage_floor);

    const auto& d = cfg.dvfs;
    enc.f64(d.boost_ratio);
    enc.f64(d.min_ratio);
    enc.f64(d.idle_ratio);
    enc.f64(d.sustained_limit_w);
    enc.f64(d.peak_limit_w);
    enc.duration(d.fast_tau);
    enc.duration(d.slow_tau);
    enc.f64(d.excursion_cut);
    enc.duration(d.excursion_hold);
    enc.f64(d.kp_per_us);
    enc.f64(d.recovery_per_us);
    enc.duration(d.idle_park_delay);
    enc.duration(d.boost_budget);
    enc.f64(d.nominal_ratio);
    enc.f64(d.recovery_guard);

    const auto& t = cfg.thermal;
    enc.f64(t.ambient_c);
    enc.f64(t.resistance_c_per_w);
    enc.duration(t.time_constant);
}

sim::MachineConfig
decodeMachineConfig(Decoder& dec)
{
    sim::MachineConfig cfg;
    cfg.num_xcds = dec.u64();
    cfg.cus_per_xcd = dec.u64();
    cfg.num_iods = dec.u64();
    cfg.num_hbm_stacks = dec.u64();
    cfg.peak_matrix_flops = dec.f64();
    cfg.peak_vector_flops = dec.f64();
    cfg.hbm_bandwidth = dec.f64();
    cfg.llc_bandwidth = dec.f64();
    cfg.llc_capacity = dec.i64();
    cfg.l2_capacity_per_xcd = dec.i64();
    cfg.hbm_capacity = dec.i64();
    cfg.node_gpus = dec.u64();
    cfg.fabric_links = dec.u64();
    cfg.fabric_link_bandwidth = dec.f64();
    cfg.boost_frequency_hz = dec.f64();
    cfg.nominal_frequency_hz = dec.f64();
    cfg.idle_frequency_hz = dec.f64();
    cfg.timestamp_tick = dec.duration();
    cfg.gpu_clock_drift_ppm = dec.f64();
    cfg.power_step = dec.duration();
    cfg.idle_step = dec.duration();
    cfg.advance_threads = dec.u64();
    cfg.logger_window = dec.duration();
    cfg.logger_noise_w = dec.f64();
    cfg.launch_overhead = dec.duration();
    cfg.sync_overhead = dec.duration();
    cfg.timestamp_read_delay = dec.duration();
    cfg.timestamp_read_jitter = dec.f64();
    cfg.exec_time_sigma = dec.f64();
    cfg.outlier_run_probability = dec.f64();
    cfg.outlier_slowdown_min = dec.f64();
    cfg.outlier_slowdown_max = dec.f64();

    auto& p = cfg.power;
    p.xcd_idle_w = dec.f64();
    p.iod_idle_w = dec.f64();
    p.hbm_idle_w = dec.f64();
    p.misc_w = dec.f64();
    p.xcd_dyn_w = dec.f64();
    p.xcd_residency_weight = dec.f64();
    p.xcd_issue_weight = dec.f64();
    p.iod_llc_w = dec.f64();
    p.iod_hbmphy_w = dec.f64();
    p.iod_fabric_w = dec.f64();
    p.hbm_dyn_w = dec.f64();
    p.leakage_fraction = dec.f64();
    p.leakage_temp_coeff = dec.f64();
    p.t_ref_c = dec.f64();
    p.voltage_floor = dec.f64();

    auto& d = cfg.dvfs;
    d.boost_ratio = dec.f64();
    d.min_ratio = dec.f64();
    d.idle_ratio = dec.f64();
    d.sustained_limit_w = dec.f64();
    d.peak_limit_w = dec.f64();
    d.fast_tau = dec.duration();
    d.slow_tau = dec.duration();
    d.excursion_cut = dec.f64();
    d.excursion_hold = dec.duration();
    d.kp_per_us = dec.f64();
    d.recovery_per_us = dec.f64();
    d.idle_park_delay = dec.duration();
    d.boost_budget = dec.duration();
    d.nominal_ratio = dec.f64();
    d.recovery_guard = dec.f64();

    auto& t = cfg.thermal;
    t.ambient_c = dec.f64();
    t.resistance_c_per_w = dec.f64();
    t.time_constant = dec.duration();
    return cfg;
}

// ---------------------------------------------------------------------------
// Whole-value helpers
// ---------------------------------------------------------------------------

std::vector<std::uint8_t>
encode(const ScenarioSpec& spec)
{
    Encoder enc;
    encodeScenarioSpec(enc, spec);
    return enc.bytes();
}

std::vector<std::uint8_t>
encode(const ProfileSet& set)
{
    Encoder enc;
    encodeProfileSet(enc, set);
    return enc.bytes();
}

std::vector<std::uint8_t>
encode(const sim::MachineConfig& cfg)
{
    Encoder enc;
    encodeMachineConfig(enc, cfg);
    return enc.bytes();
}

ScenarioSpec
decodeScenarioSpec(const std::vector<std::uint8_t>& bytes)
{
    Decoder dec(bytes);
    auto spec = decodeScenarioSpec(dec);
    dec.expectEnd("ScenarioSpec");
    return spec;
}

ProfileSet
decodeProfileSet(const std::vector<std::uint8_t>& bytes)
{
    Decoder dec(bytes);
    auto set = decodeProfileSet(dec);
    dec.expectEnd("ProfileSet");
    return set;
}

sim::MachineConfig
decodeMachineConfig(const std::vector<std::uint8_t>& bytes)
{
    Decoder dec(bytes);
    auto cfg = decodeMachineConfig(dec);
    dec.expectEnd("MachineConfig");
    return cfg;
}

// ---------------------------------------------------------------------------
// Framing
// ---------------------------------------------------------------------------

std::uint64_t
fnv1a64(const std::uint8_t* data, std::size_t size)
{
    std::uint64_t hash = 0xcbf29ce484222325ULL;
    for (std::size_t i = 0; i < size; ++i) {
        hash ^= data[i];
        hash *= 0x100000001b3ULL;
    }
    return hash;
}

std::vector<std::uint8_t>
encodeFrame(FrameType type, const std::vector<std::uint8_t>& payload)
{
    Encoder header;
    header.u32(kMagic);
    header.u16(kVersion);
    header.u16(static_cast<std::uint16_t>(type));
    header.u64(payload.size());
    header.u64(fnv1a64(payload.data(), payload.size()));
    std::vector<std::uint8_t> out = header.bytes();
    out.insert(out.end(), payload.begin(), payload.end());
    return out;
}

FrameHeader
decodeFrameHeader(const std::uint8_t* data)
{
    Decoder dec(data, kFrameHeaderBytes);
    const std::uint32_t magic = dec.u32();
    if (magic != kMagic)
        support::fatal("codec: bad frame magic 0x", std::hex, magic);
    const std::uint16_t version = dec.u16();
    if (version != kVersion) {
        support::fatal("codec: frame version ", version,
                       " does not match this build's version ", kVersion,
                       "; driver and worker binaries must match");
    }
    FrameHeader header;
    const std::uint16_t type = dec.u16();
    if (type < static_cast<std::uint16_t>(FrameType::kScenarioSpec) ||
        type > static_cast<std::uint16_t>(FrameType::kShutdown))
        support::fatal("codec: unknown frame type ", type);
    header.type = static_cast<FrameType>(type);
    // Validated here so every reader — stream- or fd-based — rejects a
    // corrupt length before trusting it with an allocation.
    header.payload_len = checkedCount(dec.u64(), "frame-payload byte");
    header.checksum = dec.u64();
    return header;
}

void
verifyFramePayload(const FrameHeader& header, const std::uint8_t* payload)
{
    const std::uint64_t sum =
        fnv1a64(payload, static_cast<std::size_t>(header.payload_len));
    if (sum != header.checksum) {
        support::fatal("codec: ", toString(header.type),
                       " frame payload checksum mismatch (corrupt or "
                       "truncated stream)");
    }
}

bool
writeFrame(std::ostream& out, FrameType type,
           const std::vector<std::uint8_t>& payload)
{
    const auto wire = encodeFrame(type, payload);
    out.write(reinterpret_cast<const char*>(wire.data()),
              static_cast<std::streamsize>(wire.size()));
    out.flush();
    return static_cast<bool>(out);
}

std::optional<Frame>
readFrame(std::istream& in)
{
    std::uint8_t header_bytes[kFrameHeaderBytes];
    in.read(reinterpret_cast<char*>(header_bytes), kFrameHeaderBytes);
    if (in.gcount() == 0 && in.eof())
        return std::nullopt;  // clean EOF on the frame boundary
    if (static_cast<std::size_t>(in.gcount()) != kFrameHeaderBytes)
        support::fatal("codec: truncated frame header (", in.gcount(),
                       " of ", kFrameHeaderBytes, " bytes)");
    const auto header = decodeFrameHeader(header_bytes);
    Frame frame;
    frame.type = header.type;
    frame.payload.resize(static_cast<std::size_t>(header.payload_len));
    if (header.payload_len > 0) {
        in.read(reinterpret_cast<char*>(frame.payload.data()),
                static_cast<std::streamsize>(header.payload_len));
        if (static_cast<std::uint64_t>(in.gcount()) != header.payload_len)
            support::fatal("codec: truncated ", toString(header.type),
                           " frame payload");
    }
    verifyFramePayload(header, frame.payload.data());
    return frame;
}

Frame
parseFrame(const std::vector<std::uint8_t>& bytes)
{
    if (bytes.size() < kFrameHeaderBytes)
        support::fatal("codec: frame shorter than its header");
    const auto header = decodeFrameHeader(bytes.data());
    if (bytes.size() - kFrameHeaderBytes != header.payload_len)
        support::fatal("codec: frame length mismatch (header claims ",
                       header.payload_len, " payload bytes, buffer has ",
                       bytes.size() - kFrameHeaderBytes, ")");
    Frame frame;
    frame.type = header.type;
    frame.payload.assign(bytes.begin() + kFrameHeaderBytes, bytes.end());
    verifyFramePayload(header, frame.payload.data());
    return frame;
}

}  // namespace fingrav::core::codec

#include "fingrav/profile.hpp"

#include <algorithm>

#include "support/logging.hpp"

namespace fingrav::core {

const char*
toString(Rail rail)
{
    switch (rail) {
      case Rail::kTotal:
        return "total";
      case Rail::kXcd:
        return "XCD";
      case Rail::kIod:
        return "IOD";
      case Rail::kHbm:
        return "HBM";
    }
    return "?";
}

double
railValue(const sim::PowerSample& s, Rail rail)
{
    switch (rail) {
      case Rail::kTotal:
        return s.total_w;
      case Rail::kXcd:
        return s.xcd_w;
      case Rail::kIod:
        return s.iod_w;
      case Rail::kHbm:
        return s.hbm_w;
    }
    return 0.0;
}

const char*
toString(ProfileKind kind)
{
    switch (kind) {
      case ProfileKind::kSse:
        return "SSE";
      case ProfileKind::kSsp:
        return "SSP";
      case ProfileKind::kTimeline:
        return "timeline";
    }
    return "?";
}

double
PowerProfile::meanPower(Rail rail) const
{
    if (points_.empty())
        return 0.0;
    double acc = 0.0;
    for (const auto& p : points_)
        acc += railValue(p.sample, rail);
    return acc / static_cast<double>(points_.size());
}

double
PowerProfile::minPower(Rail rail) const
{
    if (points_.empty())
        return 0.0;
    double v = railValue(points_.front().sample, rail);
    for (const auto& p : points_)
        v = std::min(v, railValue(p.sample, rail));
    return v;
}

double
PowerProfile::maxPower(Rail rail) const
{
    if (points_.empty())
        return 0.0;
    double v = railValue(points_.front().sample, rail);
    for (const auto& p : points_)
        v = std::max(v, railValue(p.sample, rail));
    return v;
}

std::size_t
PowerProfile::contendedCount() const
{
    std::size_t n = 0;
    for (const auto& p : points_)
        n += p.contended ? 1 : 0;
    return n;
}

double
PowerProfile::meanPowerWhere(bool contended, Rail rail) const
{
    double acc = 0.0;
    std::size_t n = 0;
    for (const auto& p : points_) {
        if (p.contended != contended)
            continue;
        acc += railValue(p.sample, rail);
        ++n;
    }
    return n > 0 ? acc / static_cast<double>(n) : 0.0;
}

support::PolyFitResult
PowerProfile::trend(Rail rail, std::size_t degree) const
{
    std::vector<double> xs;
    std::vector<double> ys;
    xs.reserve(points_.size());
    ys.reserve(points_.size());
    for (const auto& p : points_) {
        xs.push_back(kind_ == ProfileKind::kTimeline ? p.run_time_us
                                                     : p.toi_us);
        ys.push_back(railValue(p.sample, rail));
    }
    return support::fitPolynomial(xs, ys, degree);
}

}  // namespace fingrav::core

#include "fingrav/profile.hpp"

#include <algorithm>
#include <bit>
#include <utility>

#include "support/logging.hpp"
#include "support/simd.hpp"

namespace fingrav::core {

const char*
toString(Rail rail)
{
    switch (rail) {
      case Rail::kTotal:
        return "total";
      case Rail::kXcd:
        return "XCD";
      case Rail::kIod:
        return "IOD";
      case Rail::kHbm:
        return "HBM";
    }
    return "?";
}

double
railValue(const sim::PowerSample& s, Rail rail)
{
    switch (rail) {
      case Rail::kTotal:
        return s.total_w;
      case Rail::kXcd:
        return s.xcd_w;
      case Rail::kIod:
        return s.iod_w;
      case Rail::kHbm:
        return s.hbm_w;
    }
    support::fatal("railValue: out-of-enum Rail ", static_cast<int>(rail));
}

const char*
toString(ProfileKind kind)
{
    switch (kind) {
      case ProfileKind::kSse:
        return "SSE";
      case ProfileKind::kSsp:
        return "SSP";
      case ProfileKind::kTimeline:
        return "timeline";
    }
    return "?";
}

void
PowerProfile::add(const ProfilePoint& p)
{
    addRow(p.toi_us, p.toi_frac, p.run_time_us, p.sample, p.run_index,
           p.exec_index, p.contended);
    // gpu_timestamp rides inside the sample; addRow stored it already.
}

void
PowerProfile::addRow(double toi_us, double toi_frac, double run_time_us,
                     const sim::PowerSample& sample, std::size_t run_index,
                     std::size_t exec_index, bool contended)
{
    toi_us_.push_back(toi_us);
    toi_frac_.push_back(toi_frac);
    run_time_us_.push_back(run_time_us);
    gpu_timestamp_.push_back(sample.gpu_timestamp);
    total_w_.push_back(sample.total_w);
    xcd_w_.push_back(sample.xcd_w);
    iod_w_.push_back(sample.iod_w);
    hbm_w_.push_back(sample.hbm_w);
    run_index_.push_back(static_cast<std::uint64_t>(run_index));
    exec_index_.push_back(static_cast<std::uint64_t>(exec_index));
    setContended(size_, contended);
    ++size_;
}

void
PowerProfile::appendTimelineRun(const sim::PowerSample* samples,
                                const std::int64_t* cpu_ns,
                                const std::uint8_t* contended, std::size_t n,
                                std::int64_t run_start_cpu_ns,
                                std::size_t run_index)
{
    const std::size_t base = size_;
    const std::size_t total = base + n;
    toi_us_.resize(total, 0.0);
    toi_frac_.resize(total, 0.0);
    run_time_us_.resize(total);
    gpu_timestamp_.resize(total);
    total_w_.resize(total);
    xcd_w_.resize(total);
    iod_w_.resize(total);
    hbm_w_.resize(total);
    run_index_.resize(total, static_cast<std::uint64_t>(run_index));
    exec_index_.resize(total, 0);
    contended_words_.resize((total + 63) / 64, 0);

    double* rt = run_time_us_.data() + base;
    FINGRAV_SIMD_LOOP
    for (std::size_t k = 0; k < n; ++k)
        rt[k] = static_cast<double>(cpu_ns[k] - run_start_cpu_ns) / 1e3;
    std::int64_t* ts = gpu_timestamp_.data() + base;
    double* tw = total_w_.data() + base;
    double* xw = xcd_w_.data() + base;
    double* iw = iod_w_.data() + base;
    double* hw = hbm_w_.data() + base;
    for (std::size_t k = 0; k < n; ++k) {
        ts[k] = samples[k].gpu_timestamp;
        tw[k] = samples[k].total_w;
        xw[k] = samples[k].xcd_w;
        iw[k] = samples[k].iod_w;
        hw[k] = samples[k].hbm_w;
    }
    for (std::size_t k = 0; k < n; ++k) {
        if (contended[k]) {
            const std::size_t i = base + k;
            contended_words_[i >> 6] |= std::uint64_t{1} << (i & 63);
        }
    }
    size_ = total;
}

void
PowerProfile::appendTimelineRun(const sim::SampleColumns& samples,
                                const std::int64_t* cpu_ns,
                                const std::uint8_t* contended,
                                std::int64_t run_start_cpu_ns,
                                std::size_t run_index)
{
    const std::size_t n = samples.size();
    const std::size_t base = size_;
    const std::size_t total = base + n;
    toi_us_.resize(total, 0.0);
    toi_frac_.resize(total, 0.0);
    run_time_us_.resize(total);
    run_index_.resize(total, static_cast<std::uint64_t>(run_index));
    exec_index_.resize(total, 0);

    // The rail and timestamp columns already exist contiguously in the
    // capture block — straight column-to-column bulk copies.
    gpu_timestamp_.insert(gpu_timestamp_.end(), samples.gpu_timestamp.begin(),
                          samples.gpu_timestamp.end());
    total_w_.insert(total_w_.end(), samples.total_w.begin(),
                    samples.total_w.end());
    xcd_w_.insert(xcd_w_.end(), samples.xcd_w.begin(), samples.xcd_w.end());
    iod_w_.insert(iod_w_.end(), samples.iod_w.begin(), samples.iod_w.end());
    hbm_w_.insert(hbm_w_.end(), samples.hbm_w.begin(), samples.hbm_w.end());

    double* rt = run_time_us_.data() + base;
    FINGRAV_SIMD_LOOP
    for (std::size_t k = 0; k < n; ++k)
        rt[k] = static_cast<double>(cpu_ns[k] - run_start_cpu_ns) / 1e3;

    contended_words_.resize((total + 63) / 64, 0);
    for (std::size_t k = 0; k < n; ++k) {
        if (contended[k]) {
            const std::size_t i = base + k;
            contended_words_[i >> 6] |= std::uint64_t{1} << (i & 63);
        }
    }
    size_ = total;
}

void
PowerProfile::adoptColumns(std::size_t n, std::vector<double> toi_us,
                           std::vector<double> toi_frac,
                           std::vector<double> run_time_us,
                           std::vector<std::int64_t> gpu_timestamp,
                           std::vector<double> total_w,
                           std::vector<double> xcd_w,
                           std::vector<double> iod_w,
                           std::vector<double> hbm_w,
                           std::vector<std::uint64_t> run_index,
                           std::vector<std::uint64_t> exec_index,
                           std::vector<std::uint64_t> contended_words)
{
    const std::size_t words = (n + 63) / 64;
    FINGRAV_ASSERT(toi_us.size() == n && toi_frac.size() == n &&
                       run_time_us.size() == n &&
                       gpu_timestamp.size() == n && total_w.size() == n &&
                       xcd_w.size() == n && iod_w.size() == n &&
                       hbm_w.size() == n && run_index.size() == n &&
                       exec_index.size() == n,
                   "profile: adopted columns disagree on length");
    FINGRAV_ASSERT(contended_words.size() == words,
                   "profile: contended bitmap has wrong word count");
    if (n % 64 != 0 && words > 0) {
        const std::uint64_t tail_mask = ~std::uint64_t{0} << (n % 64);
        FINGRAV_ASSERT((contended_words.back() & tail_mask) == 0,
                       "profile: contended bitmap has trailing garbage");
    }
    size_ = n;
    toi_us_ = std::move(toi_us);
    toi_frac_ = std::move(toi_frac);
    run_time_us_ = std::move(run_time_us);
    gpu_timestamp_ = std::move(gpu_timestamp);
    total_w_ = std::move(total_w);
    xcd_w_ = std::move(xcd_w);
    iod_w_ = std::move(iod_w);
    hbm_w_ = std::move(hbm_w);
    run_index_ = std::move(run_index);
    exec_index_ = std::move(exec_index);
    contended_words_ = std::move(contended_words);
}

void
PowerProfile::reserve(std::size_t n)
{
    toi_us_.reserve(n);
    toi_frac_.reserve(n);
    run_time_us_.reserve(n);
    gpu_timestamp_.reserve(n);
    total_w_.reserve(n);
    xcd_w_.reserve(n);
    iod_w_.reserve(n);
    hbm_w_.reserve(n);
    run_index_.reserve(n);
    exec_index_.reserve(n);
    contended_words_.reserve((n + 63) / 64);
}

ProfilePoint
PowerProfile::point(std::size_t i) const
{
    FINGRAV_ASSERT(i < size_, "profile: point index out of range");
    ProfilePoint p;
    p.toi_us = toi_us_[i];
    p.toi_frac = toi_frac_[i];
    p.run_time_us = run_time_us_[i];
    p.sample.gpu_timestamp = gpu_timestamp_[i];
    p.sample.total_w = total_w_[i];
    p.sample.xcd_w = xcd_w_[i];
    p.sample.iod_w = iod_w_[i];
    p.sample.hbm_w = hbm_w_[i];
    p.run_index = static_cast<std::size_t>(run_index_[i]);
    p.exec_index = static_cast<std::size_t>(exec_index_[i]);
    p.contended = contendedBit(i);
    return p;
}

const std::vector<double>&
PowerProfile::railColumn(Rail rail) const
{
    switch (rail) {
      case Rail::kTotal:
        return total_w_;
      case Rail::kXcd:
        return xcd_w_;
      case Rail::kIod:
        return iod_w_;
      case Rail::kHbm:
        return hbm_w_;
    }
    // An out-of-enum Rail is a caller bug; silently reading the total
    // column here used to mask it.
    support::fatal("railColumn: out-of-enum Rail ", static_cast<int>(rail));
}

RailStats
PowerProfile::railStats(Rail rail, ContentionFilter filter) const
{
    RailStats st;
    const std::vector<double>& col = railColumn(rail);
    if (filter == ContentionFilter::kAll) {
        if (size_ == 0)
            return st;
        // One streaming pass; the sum accumulates in point order so the
        // mean matches the former scalar loop bit for bit.
        const double* v = col.data();
        double acc = 0.0;
        double mn = v[0];
        double mx = v[0];
        for (std::size_t i = 0; i < size_; ++i) {
            acc += v[i];
            mn = std::min(mn, v[i]);
            mx = std::max(mx, v[i]);
        }
        st.count = size_;
        st.sum = acc;
        st.min = mn;
        st.max = mx;
        return st;
    }

    // Filtered path: the bitmap-guarded reduction the autovectorizer
    // balks on — routed through the SIMD shim's word-skipping kernel
    // (scalar fallback under FINGRAV_SIMD_SCALAR), which visits selected
    // points in the same order as the former branchy loop, bit for bit.
    const bool want = filter == ContentionFilter::kContended;
    const auto r = support::simd::filteredReduce(
        col.data(), contended_words_.data(), size_, want);
    st.count = r.count;
    st.sum = r.sum;
    st.min = r.min;
    st.max = r.max;
    return st;
}

std::size_t
PowerProfile::contendedCount() const
{
    std::size_t n = 0;
    for (const std::uint64_t w : contended_words_)
        n += static_cast<std::size_t>(std::popcount(w));
    return n;
}

support::PolyFitResult
PowerProfile::trend(Rail rail, std::size_t degree) const
{
    // Both inputs are stored columns — no staging copies.
    return support::fitPolynomial(xColumn(), railColumn(rail), degree);
}

}  // namespace fingrav::core

#include "fingrav/stitcher.hpp"

#include <algorithm>
#include <utility>

#include "fingrav/binning.hpp"
#include "support/logging.hpp"
#include "support/simd.hpp"

namespace fingrav::core {

namespace {

using fingrav::support::Duration;

/** Representative (SSP) execution time of a run; run must be eligible. */
Duration
repTime(const RunRecord& run, const ProfileSet& out)
{
    const std::size_t rep = std::min(out.ssp_exec_index,
                                     run.main_exec_indices.size() - 1);
    return run.mainExecDuration(rep);
}

/** Timestamp translation under the configured sync mode. */
std::int64_t
translateSample(const ProfilerOptions& opts, const TimeSync& sync,
                Duration tick, const RunRecord& run,
                std::int64_t gpu_timestamp)
{
    if (opts.sync_mode == SyncMode::kCoarseAlign) {
        // Naive alignment: pretend the first sample of the run's log
        // landed exactly when the log was started.  The true offset is the
        // distance to the next window-grid boundary — up to a full window,
        // different for every run.  This is the paper's "unsynchronized"
        // comparison (Fig. 5).
        if (run.samples.empty())
            return run.log_start_cpu_ns;
        return run.log_start_cpu_ns +
               (gpu_timestamp - run.samples.gpu_timestamp.front()) *
                   tick.nanos();
    }
    return sync.gpuCounterToCpuNs(gpu_timestamp);
}

}  // namespace

ProfileStitcher::ProfileStitcher(const ProfilerOptions& opts,
                                 const TimeSync& sync,
                                 support::Duration tick)
    : opts_(opts), sync_(&sync), tick_(tick)
{
}

void
ProfileStitcher::translateSamples(const RunRecord& run,
                                  std::vector<std::int64_t>& out) const
{
    const std::size_t m = run.samples.size();
    out.resize(m);
    const std::int64_t* ts = run.samples.gpu_timestamp.data();
    if (opts_.sync_mode == SyncMode::kCoarseAlign) {
        const std::int64_t t0 = m > 0 ? ts[0] : 0;
        const std::int64_t base = run.log_start_cpu_ns;
        const std::int64_t tick = tick_.nanos();
        std::int64_t* o = out.data();
        FINGRAV_SIMD_LOOP
        for (std::size_t k = 0; k < m; ++k)
            o[k] = base + (ts[k] - t0) * tick;
        return;
    }
    // Whole-column translation (one call, vectorized element-exact math)
    // instead of one gpuCounterToCpuNs call per sample.
    sync_->translateColumn(ts, m, out.data());
}

namespace {

/** Step-6 golden selection over the first `n` runs (see header). */
void
selectGoldenPrefix(const ProfilerOptions& opts,
                   const std::vector<RunRecord>& runs, std::size_t n,
                   ProfileSet& out)
{
    // Runs that recorded zero main executions cannot provide a
    // representative execution time (indexing size-1 underflowed before);
    // they are excluded from binning and count as outliers.
    std::vector<Duration> rep_times;
    std::vector<std::size_t> eligible;
    rep_times.reserve(n);
    eligible.reserve(n);
    for (std::size_t i = 0; i < n; ++i) {
        if (runs[i].main_exec_indices.empty()) {
            support::warn("stitch: run ", runs[i].run_index,
                          " recorded no main executions; skipping");
            continue;
        }
        rep_times.push_back(repTime(runs[i], out));
        eligible.push_back(i);
    }

    const double margin =
        opts.margin_override.value_or(out.guidance.binning_margin);
    if (opts.target_bin.has_value()) {
        // Section VI outlier profiling: focus on a chosen execution-time
        // bin rather than the common case.
        out.binning = ExecutionBinner(margin).selectAround(
            rep_times, *opts.target_bin);
        for (auto& g : out.binning.golden_runs)
            g = eligible[g];
    } else if (opts.binning) {
        out.binning = ExecutionBinner(margin).select(rep_times);
        for (auto& g : out.binning.golden_runs)
            g = eligible[g];
    } else {
        out.binning = BinningResult{};
        out.binning.golden_runs = eligible;
        out.binning.bin_center = rep_times.empty()
                                     ? support::Duration()
                                     : rep_times.front();
    }
    out.binning.total_runs = n;
}

}  // namespace

void
ProfileStitcher::selectGoldenRuns(const ProfilerOptions& opts,
                                  const std::vector<RunRecord>& runs,
                                  ProfileSet& out)
{
    selectGoldenPrefix(opts, runs, runs.size(), out);
}

void
ProfileStitcher::updateCaches(const std::vector<RunRecord>& runs,
                              std::size_t n, const ProfileSet& out)
{
    FINGRAV_ASSERT(n >= run_caches_.size(),
                   "restitch: runs shrank between calls");
    FINGRAV_ASSERT(n <= runs.size(), "restitch: prefix beyond runs");
    for (std::size_t i = run_caches_.size(); i < n; ++i) {
        RunCache rc;
        rc.eligible = !runs[i].main_exec_indices.empty();
        if (rc.eligible)
            rc.rep_time = repTime(runs[i], out);
        run_caches_.push_back(std::move(rc));
    }
}

void
ProfileStitcher::appendRun(const RunRecord& run, std::size_t run_idx,
                           ProfileSet& out)
{
    RunCache& rc = run_caches_[run_idx];
    if (!rc.aligned) {
        const std::size_t m = run.samples.size();
        translateSamples(run, rc.sample_cpu_ns);
        // Contention flags in the same pass discipline: sample times
        // ascend and the contention intervals are merged and ascending,
        // so one forward merge resolves every flag — same containment
        // predicate as RunRecord::contendedAt ([first, second)), without
        // a binary search per sample.
        rc.contended.assign(m, 0);
        const auto& ivs = run.contended_cpu_ns;
        std::size_t ii = 0;
        for (std::size_t k = 0; k < m; ++k) {
            const std::int64_t t = rc.sample_cpu_ns[k];
            while (ii < ivs.size() && t >= ivs[ii].second)
                ++ii;
            rc.contended[k] =
                (ii < ivs.size() && t >= ivs[ii].first) ? 1 : 0;
        }
        rc.aligned = true;
    }
    const auto& cpu = rc.sample_cpu_ns;
    const std::size_t n = cpu.size();

    // Executions are chronological and samples ascend in CPU time, so one
    // forward sweep aligns them: O(execs + samples) instead of the seed's
    // O(execs × samples) with a translation per pair.  Points land in the
    // profile columns directly (addRow) — no ProfilePoint staging.
    std::size_t si = 0;
    for (std::size_t j = 0; j < run.main_exec_indices.size(); ++j) {
        const auto& timing = run.execs[run.main_exec_indices[j]].timing;
        const double dur_ns = static_cast<double>(
            timing.cpu_end_ns - timing.cpu_start_ns);
        if (dur_ns <= 0.0)
            continue;
        // Boundary scans through the SIMD shim's 4-wide branchless
        // advance (scalar fallback under FINGRAV_SIMD_SCALAR): same
        // indices as the former advance-while-less loops, `cpu` ascends.
        si = support::simd::scanGe(cpu.data(), si, n, timing.cpu_start_ns);
        const bool is_sse = j == out.sse_exec_index;
        const bool is_ssp = j >= out.ssp_exec_index;
        if (!is_sse && !is_ssp)
            continue;
        const std::size_t ke =
            support::simd::scanGt(cpu.data(), si, n, timing.cpu_end_ns);
        for (std::size_t k = si; k < ke; ++k) {
            const double toi_ns =
                static_cast<double>(cpu[k] - timing.cpu_start_ns);
            const double toi_us = toi_ns / 1e3;
            const double toi_frac = toi_ns / dur_ns;
            const double run_time_us =
                static_cast<double>(cpu[k] - run.run_start_cpu_ns) / 1e3;
            const bool contended = rc.contended[k] != 0;
            if (is_sse)
                out.sse.addRow(toi_us, toi_frac, run_time_us,
                               run.samples[k], run.run_index, j, contended);
            if (is_ssp)
                out.ssp.addRow(toi_us, toi_frac, run_time_us,
                               run.samples[k], run.run_index, j, contended);
        }
    }

    // Timeline view: every sample of the run in run-relative time,
    // bulk-copied capture columns → profile columns (no transpose).
    out.timeline.appendTimelineRun(run.samples, cpu.data(),
                                   rc.contended.data(),
                                   run.run_start_cpu_ns, run.run_index);
}

void
ProfileStitcher::restitch(const std::vector<RunRecord>& runs,
                          ProfileSet& out)
{
    restitch(runs, runs.size(), out);
}

void
ProfileStitcher::restitch(const std::vector<RunRecord>& runs, std::size_t n,
                          ProfileSet& out)
{
    updateCaches(runs, n, out);
    selectGoldenPrefix(opts_, runs, n, out);
    const auto& golden = out.binning.golden_runs;

    // Incremental iff every previously stitched run is still golden, in
    // the same order (golden indices ascend, so unchanged membership of
    // old runs puts them in a prefix).  Otherwise the modal bin moved and
    // the profiles are rebuilt from scratch.
    const bool incremental =
        stitched_once_ && golden.size() >= stitched_golden_.size() &&
        std::equal(stitched_golden_.begin(), stitched_golden_.end(),
                   golden.begin());
    if (!incremental) {
        out.sse = PowerProfile(out.label, ProfileKind::kSse);
        out.ssp = PowerProfile(out.label, ProfileKind::kSsp);
        out.timeline = PowerProfile(out.label, ProfileKind::kTimeline);
        ssp_time_us_ = support::RunningStats();
        ++rebuilds_;
    }

    const std::size_t from = incremental ? stitched_golden_.size() : 0;
    // Every sample of every appended run lands in the timeline, and the
    // capture columns carry their sizes — reserve the whole extent once
    // so the per-run bulk appends never re-allocate the profile columns.
    std::size_t extra = 0;
    for (std::size_t g = from; g < golden.size(); ++g)
        extra += runs[golden[g]].samples.size();
    out.timeline.reserve(out.timeline.size() + extra);
    for (std::size_t g = from; g < golden.size(); ++g) {
        const std::size_t idx = golden[g];
        ssp_time_us_.add(run_caches_[idx].rep_time.toMicros());
        appendRun(runs[idx], idx, out);
    }

    stitched_golden_ = golden;
    stitched_once_ = true;
    out.ssp_exec_time = support::Duration::micros(ssp_time_us_.mean());
}

void
ProfileStitcher::stitchReference(const ProfilerOptions& opts,
                                 const TimeSync& sync,
                                 support::Duration tick,
                                 const std::vector<RunRecord>& runs,
                                 ProfileSet& out)
{
    // ---- step 6: golden-run selection ----------------------------------
    selectGoldenRuns(opts, runs, out);

    // ---- steps 7 + 9: LOI/TOI extraction and stitching ------------------
    // The seed's quadratic loop, kept as the verification oracle and
    // benchmark baseline: every (execution, sample) pair is compared, and
    // every comparison re-translates the sample timestamp.
    out.sse = PowerProfile(out.label, ProfileKind::kSse);
    out.ssp = PowerProfile(out.label, ProfileKind::kSsp);
    out.timeline = PowerProfile(out.label, ProfileKind::kTimeline);

    support::RunningStats ssp_time_us;
    for (const std::size_t run_idx : out.binning.golden_runs) {
        const RunRecord& run = runs[run_idx];
        ssp_time_us.add(repTime(run, out).toMicros());

        for (std::size_t j = 0; j < run.main_exec_indices.size(); ++j) {
            const auto& timing =
                run.execs[run.main_exec_indices[j]].timing;
            const double dur_ns = static_cast<double>(
                timing.cpu_end_ns - timing.cpu_start_ns);
            if (dur_ns <= 0.0)
                continue;
            for (const auto& s : run.samples) {
                const auto cpu =
                    translateSample(opts, sync, tick, run, s.gpu_timestamp);
                if (cpu < timing.cpu_start_ns || cpu > timing.cpu_end_ns)
                    continue;
                ProfilePoint p;
                p.toi_us = static_cast<double>(cpu - timing.cpu_start_ns) /
                           1e3;
                p.toi_frac =
                    static_cast<double>(cpu - timing.cpu_start_ns) / dur_ns;
                p.run_time_us =
                    static_cast<double>(cpu - run.run_start_cpu_ns) / 1e3;
                p.sample = s;
                p.run_index = run.run_index;
                p.exec_index = j;
                p.contended = run.contendedAt(cpu);
                if (j == out.sse_exec_index)
                    out.sse.add(p);
                if (j >= out.ssp_exec_index)
                    out.ssp.add(p);
            }
        }

        for (const auto& s : run.samples) {
            const auto cpu =
                translateSample(opts, sync, tick, run, s.gpu_timestamp);
            ProfilePoint p;
            p.run_time_us =
                static_cast<double>(cpu - run.run_start_cpu_ns) / 1e3;
            p.sample = s;
            p.run_index = run.run_index;
            p.contended = run.contendedAt(cpu);
            out.timeline.add(p);
        }
    }
    out.ssp_exec_time = support::Duration::micros(ssp_time_us.mean());
}

}  // namespace fingrav::core

#ifndef FINGRAV_FINGRAV_EXECUTION_BACKEND_HPP_
#define FINGRAV_FINGRAV_EXECUTION_BACKEND_HPP_

/**
 * @file
 * Pluggable campaign placement: where a spec list executes.
 *
 * CampaignRunner's public contract — run(specs) returns ProfileSets in
 * spec order, bit-identical to the serial loop — never depended on
 * campaigns executing in the caller's address space; it only depended on
 * campaigns being hermetic (pure functions of (spec, machine config))
 * and results being slot-addressed.  ExecutionBackend makes that split
 * explicit: the runner owns the contract, a backend owns placement.
 *
 *  - ThreadPoolBackend: the classic in-process path — specs fanned over
 *    a support::ThreadPool, one fresh node per campaign, with the
 *    nested-oversubscription guard capping per-campaign advance threads.
 *
 *  - ShardBackend (fingrav/shard_backend.hpp): specs partitioned into
 *    shards and dispatched to worker *processes* over the codec wire
 *    format, with an in-process fallback for failed workers.
 *
 * Backend admissibility: execute() must return exactly specs.size()
 * results with results[i] produced from specs[i], each bit-identical to
 * CampaignRunner::runOne(specs[i], cfg).  Placement — threads,
 * processes, machines, retry and completion order — must be invisible
 * in the results (tests/shard_test.cpp, bench_shard's hard-fail gate).
 */

#include <cstddef>
#include <memory>
#include <vector>

#include "fingrav/profiler.hpp"
#include "fingrav/scenario.hpp"
#include "sim/machine_config.hpp"

namespace fingrav::core {

class CampaignCache;

/** Where a campaign spec list executes; see file comment for the
 *  admissibility contract. */
class ExecutionBackend {
  public:
    virtual ~ExecutionBackend() = default;

    /** Short placement name for diagnostics ("thread-pool", "shard"). */
    virtual const char* name() const = 0;

    /** Execute every spec; results in spec order (see contract above). */
    virtual std::vector<ProfileSet> execute(
        const std::vector<ScenarioSpec>& specs,
        const sim::MachineConfig& cfg) = 0;

    /**
     * Attach a content-addressed campaign cache
     * (fingrav/campaign_cache.hpp).  Every built-in backend then
     * consults it *before placing work* — cached specs never reach a
     * thread pool slot or a worker process — and stores every freshly
     * executed result.  Because cached results are bit-identical to
     * execution by the cache's own contract, attaching a cache never
     * perturbs execute()'s output; null detaches.
     */
    void attachCache(std::shared_ptr<CampaignCache> cache)
    {
        cache_ = std::move(cache);
    }

    /** The cache in force (null = uncached). */
    const std::shared_ptr<CampaignCache>& cache() const { return cache_; }

  protected:
    /**
     * The per-spec cache consult every backend shares: resolved[i] is
     * true when results[i] was served from the cache; pending/slots list
     * the residual specs (in spec order) the backend must still place.
     * With no cache attached, everything is pending.  profile_fn specs
     * are always pending (uncacheable, just as they are unwireable).
     */
    struct CacheConsult {
        std::vector<ProfileSet> results;
        std::vector<std::uint8_t> resolved;
        std::vector<ScenarioSpec> pending;
        std::vector<std::size_t> slots;  ///< pending[j] -> specs slot
    };
    CacheConsult consultCache(const std::vector<ScenarioSpec>& specs,
                              const sim::MachineConfig& cfg) const;

    /** Store freshly executed pending results and merge them into their
     *  slots of `consult.results`. */
    void commitCache(CacheConsult& consult,
                     std::vector<ProfileSet>&& executed,
                     const sim::MachineConfig& cfg) const;

  private:
    std::shared_ptr<CampaignCache> cache_;
};

/**
 * The in-process placement: campaigns fanned over a support::ThreadPool.
 *
 * Nested oversubscription: campaign-level threads multiply with
 * MachineConfig::advance_threads (the node stepper's pool).  When the
 * product would exceed the hardware, execute() caps the per-campaign
 * advance threads — results are unchanged (node stepping is
 * bit-identical for any advance thread count), only thread placement is.
 */
class ThreadPoolBackend final : public ExecutionBackend {
  public:
    /**
     * @param threads  Campaign-level concurrency including the calling
     *                 thread; 0 = hardware concurrency, 1 = serial.
     */
    explicit ThreadPoolBackend(std::size_t threads = 0);

    /** Thread budget in force. */
    std::size_t threads() const { return threads_; }

    const char* name() const override { return "thread-pool"; }

    std::vector<ProfileSet> execute(const std::vector<ScenarioSpec>& specs,
                                    const sim::MachineConfig& cfg) override;

  private:
    /** The classic fan-out, after the cache consult. */
    std::vector<ProfileSet> executeUncached(
        const std::vector<ScenarioSpec>& specs,
        const sim::MachineConfig& cfg);

    std::size_t threads_;
};

}  // namespace fingrav::core

#endif  // FINGRAV_FINGRAV_EXECUTION_BACKEND_HPP_

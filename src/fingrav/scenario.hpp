#ifndef FINGRAV_FINGRAV_SCENARIO_HPP_
#define FINGRAV_FINGRAV_SCENARIO_HPP_

/**
 * @file
 * Declarative profiling scenarios: foreground kernel + environment.
 *
 * The paper profiles every kernel in isolation, but per-phase SSP
 * visibility is most valuable exactly when phases *interact*: a
 * collective stretched by competing fabric traffic changes shape in ways
 * isolated profiling cannot see.  A ScenarioSpec describes one profiling
 * campaign *and the environment it runs in*: the foreground kernel taken
 * through the nine-step methodology, plus any number of BackgroundLoads
 * — kernels executing on other devices of the node, or raw bandwidth
 * demand injected on the shared node fabric — with phase/offset/
 * duty-cycle scheduling.  The campaign engine (CampaignNode,
 * CampaignRunner, RecordedCampaign, analysis::profileOnFreshNode) builds
 * nodes from scenarios; the classic isolated campaign is simply a
 * scenario with an empty background list and replicates the legacy
 * CampaignSpec trajectory bitwise (tests/scenario_test.cpp).
 *
 * Determinism: background launches are driven by the runtime's
 * background channel off a dedicated root-RNG stream (stream 9; the
 * runtime holds 7 and the profiler 8), so a scenario's trajectory stays
 * a pure function of (spec, machine config) — bit-identical for any
 * CampaignRunner thread count, any spec order and any completion order.
 */

#include <cstdint>
#include <functional>
#include <string>
#include <vector>

#include "fingrav/profiler.hpp"
#include "kernels/kernel_model.hpp"
#include "runtime/background_channel.hpp"
#include "runtime/host_runtime.hpp"
#include "support/rng.hpp"
#include "support/time_types.hpp"

namespace fingrav::sim {
class Simulation;
}

namespace fingrav::core {

/**
 * Custom profiling procedure for one campaign (defaults to the full
 * FinGraV Profiler).  Lets baseline profilers (src/baselines/) and other
 * degraded pipelines ride the same runner without a layering cycle.
 */
using ProfileFn = std::function<ProfileSet(
    runtime::HostRuntime& host, const kernels::KernelModelPtr& kernel,
    const ProfilerOptions& opts, support::Rng rng)>;

/**
 * Adapt a profiler factory `(host, opts, rng) -> profiler-with-.profile`
 * into a ProfileFn — the one-liner that puts a baseline profiler
 * (src/baselines/) on the runner.
 */
template <typename MakeProfiler>
ProfileFn
makeProfileFn(MakeProfiler make_profiler)
{
    return ProfileFn([make_profiler](runtime::HostRuntime& host,
                                     const kernels::KernelModelPtr& kernel,
                                     const ProfilerOptions& opts,
                                     support::Rng rng) {
        return make_profiler(host, opts, std::move(rng)).profile(kernel);
    });
}

/** What kind of environment load a BackgroundLoad schedules. */
enum class BackgroundKind {
    /**
     * Kernel executions on a background device.  A collective label
     * (e.g. "AR-512MB") runs as one inter-GPU *transfer* submitted on
     * `device` with its own transfer id per launch — the configurable
     * background traffic that contends the shared node fabric with the
     * foreground collective.  Compute labels model busy co-tenants.
     */
    kKernel,
    /**
     * Raw bandwidth demand injected on the node fabric (no kernel):
     * `demand` is posted as a distinct transfer for the active span of
     * each cycle.  The cheapest way to model external fabric pressure.
     */
    kFabricDemand,
};

/** Printable kind name. */
const char* toString(BackgroundKind kind);

/**
 * One scheduled environment load of a scenario.
 *
 * Scheduling: cycle k starts at scenario time `offset + k * period` and
 * is active for `duty_cycle * period`.  Kernel loads queue enough
 * launches per cycle (back-to-back in one device queue) to occupy
 * roughly the active span; demand loads hold the injected demand for
 * exactly the active span.  `period <= 0` declares a one-shot load: a
 * single burst for kernels, an always-on injection for demand loads.
 * Cycle starts falling inside an end-of-run drain slip to the next host
 * interaction (runtime/background_channel.hpp).
 */
struct BackgroundLoad {
    BackgroundKind kind = BackgroundKind::kKernel;
    /** Paper kernel label (kKernel; see kernels::kernelByLabel). */
    std::string kernel;
    /** Fraction of one GPU's achievable fabric bandwidth (kFabricDemand). */
    double demand = 0.5;
    /** Executing device (kKernel).  May equal the profiled device to
     *  model a co-located tenant; continuous same-device loads will trip
     *  the synchronize watchdog. */
    std::size_t device = 1;
    /** Device queue; a non-zero default keeps background work concurrent
     *  with (not serialized behind) foreground copies on the device. */
    std::size_t queue = 1;
    /** Phase offset of cycle 0 from scenario start. */
    support::Duration offset;
    /** Cycle length; <= 0 = one-shot (see above). */
    support::Duration period;
    /** Active fraction of each cycle, in (0, 1]. */
    double duty_cycle = 1.0;
    /** Number of cycles; 0 = repeat for the whole campaign. */
    std::size_t cycles = 0;
    /** Per-launch lognormal duration jitter sigma; < 0 = machine default
     *  (kKernel only). */
    double jitter_sigma = -1.0;
};

/**
 * Legacy pre-scenario campaign description: kernel + opts + an opaque
 * profiling procedure, no environment.  Kept as the compatibility front
 * door; ScenarioSpec::fromCampaign lifts it into the scenario layer and
 * replicates its trajectory bitwise (tests/scenario_test.cpp).
 */
struct CampaignSpec {
    std::string label;          ///< kernel label (kernels/workloads.hpp)
    std::uint64_t seed = 1;     ///< root seed; campaigns are bit-reproducible
    ProfilerOptions opts;       ///< methodology knobs
    /** GPUs to instantiate; 0 = auto (full node for collectives, 1 GPU
     *  otherwise, as analysis::profileOnFreshNode always chose). */
    std::size_t devices = 0;
    /** Custom profiling procedure; null = core::Profiler::profile. */
    ProfileFn profile_fn;
};

/**
 * One declarative profiling scenario: the unified spec type every
 * figure/table bench rides, and the spec/result contract unit
 * distributed campaign sharding serializes (fingrav/codec.hpp encodes
 * every field except profile_fn, which is process-local and keeps a
 * spec on the in-process execution path — fingrav/shard_backend.hpp).
 */
struct ScenarioSpec {
    std::string label;          ///< foreground kernel label
    std::uint64_t seed = 1;     ///< root seed; scenarios are bit-reproducible
    ProfilerOptions opts;       ///< methodology knobs
    /** GPUs to instantiate; 0 = auto (full node for collectives or when
     *  any background load needs one, 1 GPU otherwise). */
    std::size_t devices = 0;
    /** Custom profiling procedure; null = core::Profiler::profile. */
    ProfileFn profile_fn;
    /** Environment loads active while the foreground is profiled. */
    std::vector<BackgroundLoad> background;

    /** Lift a legacy campaign description (isolated environment). */
    static ScenarioSpec fromCampaign(const CampaignSpec& spec);
};

/**
 * Compile a scenario's background loads into runtime background streams
 * for `sim` (labels resolved, bursts sized, devices validated).  Empty
 * when the scenario profiles in isolation.
 */
std::vector<runtime::BackgroundStream> buildBackgroundStreams(
    const ScenarioSpec& spec, sim::Simulation& sim);

}  // namespace fingrav::core

#endif  // FINGRAV_FINGRAV_SCENARIO_HPP_

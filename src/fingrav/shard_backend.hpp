#ifndef FINGRAV_FINGRAV_SHARD_BACKEND_HPP_
#define FINGRAV_FINGRAV_SHARD_BACKEND_HPP_

/**
 * @file
 * Multi-process campaign placement: spec shards dispatched to workers,
 * supervised.
 *
 * ShardBackend partitions a spec list into shards (round-robin, so
 * heterogeneous campaign costs spread across workers), dispatches each
 * shard to a worker subprocess (`fingrav_cli --worker` by default) over
 * a length-prefixed stdin/stdout frame protocol (fingrav/codec.hpp),
 * and reassembles the streamed results into their spec slots.  This is
 * the process-level unit of the ROADMAP's distributed-sharding item:
 * the same wire contract carries shards to other machines once a
 * transport replaces the local pipe pair.
 *
 * Protocol (driver -> worker on stdin, worker -> driver on stdout):
 *
 *   driver: kShardRequest { MachineConfig, [(slot, ScenarioSpec)] }
 *   worker: kShardResult  { slot, ProfileSet }      (one per spec,
 *                                                    in shard order)
 *   worker: kShardDone    { result count }          (clean completion)
 *
 * The worker executes specs with CampaignRunner::runOne — the exact
 * code path every other backend bottoms out in — so a shipped result is
 * bit-identical to computing it in-process (codec round-trips are
 * exact).  Results are slot-addressed; shard membership, worker count
 * and completion order are invisible in run()'s output.
 *
 * Supervision: a worker that cannot be spawned, dies mid-shard (killed,
 * crashed, exec failure), writes a kWorkerError frame, stalls past the
 * I/O budget, or produces a short/corrupt/foreign-version stream
 * forfeits its *unfinished* slots; results streamed before the failure
 * are kept (they are already bit-exact).  Forfeited slots are not
 * dumped straight to the in-process path: the supervisor redispatches
 * them to fresh workers for up to `max_retries` rounds, separated by
 * deterministic exponential backoff with seeded jitter (the schedule is
 * a pure function of ShardOptions, so retried runs reproduce exactly).
 * A spec whose worker dies `quarantine_deaths` times is quarantined —
 * it runs in-process and is flagged in the journal, so one poisoned
 * spec cannot keep killing fresh workers.  `crash_loop_spawns`
 * consecutive spawn failures disable sharding for the rest of the run
 * (loudly — the environment, not the work, is broken).  Slots that
 * exhaust every round re-execute on the in-process fallback path, so
 * run() degrades to ThreadPoolBackend behaviour — never to an error —
 * and stays bit-identical.  Every degradation is recorded in
 * ShardStats::journal (support/run_journal.hpp); none are silent.
 * Specs carrying a custom profile_fn never leave the process (a
 * std::function has no wire form); they always execute on the fallback
 * path.
 *
 * Fault injection: scripted FaultPlans (support/fault_injector.hpp)
 * exercise every failure path above deterministically — spawn failures
 * fire at the driver's spawn site, and worker-side faults (kill,
 * truncate, corrupt, stall) are handed to each worker subprocess as a
 * derived `--fault-plan` sub-plan, so the whole supervision stack is
 * testable end to end through the real subprocess machinery.
 */

#include <cstddef>
#include <string>
#include <vector>

#include "fingrav/execution_backend.hpp"
#include "support/fault_injector.hpp"
#include "support/run_journal.hpp"

#include <atomic>

namespace fingrav::core {

/** ShardBackend configuration. */
struct ShardOptions {
    /** Worker subprocess count; specs are round-robined across them.
     *  Clamped to the spec count; 0 is a user error. */
    std::size_t shards = 2;

    /**
     * Worker argv (argv[0] = executable path).  Empty selects
     * {"./fingrav_cli", "--worker"} (cwd-relative); callers that know
     * their own argv[0] should pass defaultWorkerCommand(argv0) to
     * resolve the worker next to themselves in the build tree.
     */
    std::vector<std::string> worker_command;

    /**
     * Thread budget of the in-process fallback path (profile_fn specs
     * and forfeited shards); 0 = hardware concurrency, matching the
     * "degrades to ThreadPoolBackend behaviour" contract — results are
     * bit-identical for any value.
     */
    std::size_t fallback_threads = 0;

    /**
     * Per-syscall I/O inactivity timeout, milliseconds: a worker pipe
     * that moves no bytes for this long is treated as dead — the
     * worker's process group is killed and its unfinished slots are
     * forfeited to the supervisor.  0 (the default) waits forever: a
     * legitimate shard may compute for arbitrarily long between result
     * frames, so only deployments that know their per-spec ceiling
     * should set it.
     */
    long io_timeout_ms = 0;

    /**
     * Per-spec deadline budget, milliseconds, generalizing
     * io_timeout_ms: each worker's drain gets a total wall-clock budget
     * of `spec_deadline_ms x (slots in the shard)`; exceeding it
     * forfeits the unfinished slots even if bytes are still trickling.
     * 0 (the default) disables the budget.
     */
    long spec_deadline_ms = 0;

    /**
     * How many redispatch rounds forfeited slots get on fresh workers
     * before falling back in-process.  0 restores the pre-supervisor
     * behaviour (straight to fallback).
     */
    std::size_t max_retries = 2;

    /** A spec whose worker died this many times is quarantined: it runs
     *  in-process and is flagged in the journal (poisoned-spec guard). */
    std::size_t quarantine_deaths = 2;

    /** This many *consecutive* spawn failures disable sharding for the
     *  rest of the run (crash-loop guard — the environment is broken,
     *  retrying spawns would only burn the backoff budget). */
    std::size_t crash_loop_spawns = 3;

    /** Exponential backoff between retry rounds: round r (1-based)
     *  sleeps `min(backoff_cap_ms, backoff_base_ms << (r-1))` scaled by
     *  a jitter factor in [0.5, 1.5) drawn from a deterministic stream
     *  seeded with backoff_seed — same options, same schedule. */
    long backoff_base_ms = 25;
    long backoff_cap_ms = 2000;
    std::uint64_t backoff_seed = 0;

    /** Scripted faults driven through the real execution machinery
     *  (spawn site, worker subprocesses, see fault_injector.hpp).
     *  Empty in production. */
    support::FaultPlan fault_plan;
};

/** What one execute() call observed (fallback-path test observability). */
struct ShardStats {
    std::size_t shards_launched = 0;   ///< worker subprocesses spawned
    std::size_t shard_failures = 0;    ///< workers that forfeited slots
    std::size_t remote_specs = 0;      ///< results received over the wire
    std::size_t fallback_specs = 0;    ///< specs re-run in-process
    std::size_t local_specs = 0;       ///< profile_fn specs (never shipped)
    std::size_t cached_specs = 0;      ///< specs served by the attached
                                       ///< campaign cache (never placed)
    std::size_t spawn_failures = 0;    ///< worker spawns that failed
    std::size_t retries = 0;           ///< redispatch rounds that ran
    std::size_t retried_specs = 0;     ///< slot redispatches (sum over rounds)
    std::size_t quarantined_specs = 0; ///< specs flagged as worker-killers
    bool crash_loop = false;           ///< sharding disabled mid-run
    /** Backoff actually slept before each retry round, in ms (the
     *  deterministic schedule — retry-determinism tests compare it). */
    std::vector<long> backoff_ms;
    /** Every degradation this run, in order; empty = clean run. */
    support::RunJournal journal;
};

/**
 * Multi-process placement over the codec wire protocol.
 *
 * Not reentrant: execute() accumulates the stats lastStats() reports,
 * so one instance must serve one run() at a time — concurrent drivers
 * should hold one ShardBackend each (workers are per-call resources;
 * nothing else is shared).  Overlapping execute() calls on one instance
 * are detected and rejected with a FatalError rather than corrupting
 * stats silently.
 */
class ShardBackend final : public ExecutionBackend {
  public:
    explicit ShardBackend(ShardOptions opts);

    const char* name() const override { return "shard"; }

    std::vector<ProfileSet> execute(const std::vector<ScenarioSpec>& specs,
                                    const sim::MachineConfig& cfg) override;

    /** Observations of the most recent execute() call. */
    const ShardStats& lastStats() const { return stats_; }

    /** The options in force (worker command resolved). */
    const ShardOptions& options() const { return opts_; }

  private:
    /** The sharded placement itself, after the cache consult. */
    std::vector<ProfileSet> executeUncached(
        const std::vector<ScenarioSpec>& specs,
        const sim::MachineConfig& cfg);

    ShardOptions opts_;
    ShardStats stats_;
    std::atomic<bool> executing_{false};  ///< reentrancy guard
};

/**
 * The default worker argv for a driver whose own executable path is
 * `argv0`: {"<dir(argv0)>/fingrav_cli", "--worker"} — benches, tests
 * and the CLI all sit next to fingrav_cli in the build tree.  The CLI
 * itself passes its own argv[0] and gets {argv0, "--worker"}.
 */
std::vector<std::string> defaultWorkerCommand(const std::string& argv0);

}  // namespace fingrav::core

#endif  // FINGRAV_FINGRAV_SHARD_BACKEND_HPP_

#ifndef FINGRAV_FINGRAV_SHARD_BACKEND_HPP_
#define FINGRAV_FINGRAV_SHARD_BACKEND_HPP_

/**
 * @file
 * Multi-process campaign placement: spec shards dispatched to workers.
 *
 * ShardBackend partitions a spec list into shards (round-robin, so
 * heterogeneous campaign costs spread across workers), dispatches each
 * shard to a worker subprocess (`fingrav_cli --worker` by default) over
 * a length-prefixed stdin/stdout frame protocol (fingrav/codec.hpp),
 * and reassembles the streamed results into their spec slots.  This is
 * the process-level unit of the ROADMAP's distributed-sharding item:
 * the same wire contract carries shards to other machines once a
 * transport replaces the local pipe pair.
 *
 * Protocol (driver -> worker on stdin, worker -> driver on stdout):
 *
 *   driver: kShardRequest { MachineConfig, [(slot, ScenarioSpec)] }
 *   worker: kShardResult  { slot, ProfileSet }      (one per spec,
 *                                                    in shard order)
 *   worker: kShardDone    { result count }          (clean completion)
 *
 * The worker executes specs with CampaignRunner::runOne — the exact
 * code path every other backend bottoms out in — so a shipped result is
 * bit-identical to computing it in-process (codec round-trips are
 * exact).  Results are slot-addressed; shard membership, worker count
 * and completion order are invisible in run()'s output.
 *
 * Failure handling: a worker that cannot be spawned, dies mid-shard
 * (killed, crashed, exec failure), writes a kWorkerError frame, or
 * produces a short/corrupt/foreign-version stream forfeits its
 * *unfinished* slots; results streamed before the failure are kept
 * (they are already bit-exact).  Every forfeited slot is re-executed on
 * the in-process fallback path, so run() degrades to ThreadPoolBackend
 * behaviour — never to an error — and stays bit-identical.  Specs
 * carrying a custom profile_fn never leave the process (a std::function
 * has no wire form); they always execute on the fallback path.
 */

#include <cstddef>
#include <functional>
#include <string>
#include <vector>

#include "fingrav/execution_backend.hpp"

namespace fingrav::core {

/** ShardBackend configuration. */
struct ShardOptions {
    /** Worker subprocess count; specs are round-robined across them.
     *  Clamped to the spec count; 0 is a user error. */
    std::size_t shards = 2;

    /**
     * Worker argv (argv[0] = executable path).  Empty selects
     * {"./fingrav_cli", "--worker"} (cwd-relative); callers that know
     * their own argv[0] should pass defaultWorkerCommand(argv0) to
     * resolve the worker next to themselves in the build tree.
     */
    std::vector<std::string> worker_command;

    /**
     * Thread budget of the in-process fallback path (profile_fn specs
     * and forfeited shards); 0 = hardware concurrency, matching the
     * "degrades to ThreadPoolBackend behaviour" contract — results are
     * bit-identical for any value.
     */
    std::size_t fallback_threads = 0;

    /**
     * Per-syscall I/O inactivity timeout, milliseconds: a worker pipe
     * that moves no bytes for this long is treated as dead — the
     * worker's process group is killed and its unfinished slots fall
     * back in-process.  0 (the default) waits forever: a legitimate
     * shard may compute for arbitrarily long between result frames, so
     * only deployments that know their per-spec ceiling should set it.
     */
    long io_timeout_ms = 0;

    /**
     * Test hook: invoked after a shard's request has been written, with
     * the shard index and worker pid (worker-kill fault injection).
     * Null in production.
     */
    std::function<void(std::size_t shard, long pid)> spawn_hook;
};

/** What one execute() call observed (fallback-path test observability). */
struct ShardStats {
    std::size_t shards_launched = 0;   ///< worker subprocesses spawned
    std::size_t shard_failures = 0;    ///< workers that forfeited slots
    std::size_t remote_specs = 0;      ///< results received over the wire
    std::size_t fallback_specs = 0;    ///< specs re-run in-process
    std::size_t local_specs = 0;       ///< profile_fn specs (never shipped)
    std::size_t cached_specs = 0;      ///< specs served by the attached
                                       ///< campaign cache (never placed)
};

/**
 * Multi-process placement over the codec wire protocol.
 *
 * Not reentrant: execute() accumulates the stats lastStats() reports,
 * so one instance must serve one run() at a time — concurrent drivers
 * should hold one ShardBackend each (workers are per-call resources;
 * nothing else is shared).
 */
class ShardBackend final : public ExecutionBackend {
  public:
    explicit ShardBackend(ShardOptions opts);

    const char* name() const override { return "shard"; }

    std::vector<ProfileSet> execute(const std::vector<ScenarioSpec>& specs,
                                    const sim::MachineConfig& cfg) override;

    /** Observations of the most recent execute() call. */
    const ShardStats& lastStats() const { return stats_; }

    /** The options in force (worker command resolved). */
    const ShardOptions& options() const { return opts_; }

  private:
    /** The sharded placement itself, after the cache consult. */
    std::vector<ProfileSet> executeUncached(
        const std::vector<ScenarioSpec>& specs,
        const sim::MachineConfig& cfg);

    ShardOptions opts_;
    ShardStats stats_;
};

/**
 * The default worker argv for a driver whose own executable path is
 * `argv0`: {"<dir(argv0)>/fingrav_cli", "--worker"} — benches, tests
 * and the CLI all sit next to fingrav_cli in the build tree.  The CLI
 * itself passes its own argv[0] and gets {argv0, "--worker"}.
 */
std::vector<std::string> defaultWorkerCommand(const std::string& argv0);

}  // namespace fingrav::core

#endif  // FINGRAV_FINGRAV_SHARD_BACKEND_HPP_

#ifndef FINGRAV_FINGRAV_RUN_EXECUTOR_HPP_
#define FINGRAV_FINGRAV_RUN_EXECUTOR_HPP_

/**
 * @file
 * Executes instrumented profiling runs (paper steps 2 and 5).
 *
 * A *run* is one instrumented batch: a random idle delay (step 5 — this is
 * what decorrelates the logger's window grid from kernel start so LOIs land
 * at unique TOIs), power-log start, a sequence of kernel executions with
 * CPU-side timing of each (step 2), and power-log stop.  Runs model fresh
 * process invocations: caches start cold (warmth ramps over the first
 * executions) and each run draws its own memory-allocation pattern, a small
 * fraction of which are outliers (the execution-time variation of paper
 * challenge C3).
 *
 * A run may interleave *prelude* kernels before the profiled kernel
 * (Section V-C3's interleaved-execution experiments) and may repeat the
 * [prelude, main] block several times.
 */

#include <cstddef>
#include <cstdint>
#include <string>
#include <utility>
#include <vector>

#include "kernels/kernel_model.hpp"
#include "runtime/host_runtime.hpp"
#include "sim/machine_config.hpp"
#include "sim/power_logger.hpp"
#include "support/rng.hpp"
#include "support/time_types.hpp"

namespace fingrav::core {

/** One interleaved prelude element: run `count` executions of `model`. */
struct InterleaveItem {
    kernels::KernelModelPtr model;
    std::size_t count = 1;
};

/** What a run executes. */
struct RunPlan {
    kernels::KernelModelPtr main;          ///< the profiled kernel
    std::vector<InterleaveItem> prelude;   ///< executed before main, per block
    std::size_t blocks = 1;                ///< block repetitions
    std::size_t main_execs_per_block = 1;  ///< main executions per block
    std::size_t device = 0;                ///< profiled device
    support::Duration min_delay = support::Duration::micros(200.0);
    support::Duration max_delay = support::Duration::millis(2.0);
    /** Logger averaging window; <= 0 selects the machine default (1 ms). */
    support::Duration logger_window;
    /**
     * Additional logger windows captured *simultaneously* with the
     * primary one (multi-window capture: the same execution observed at
     * several averaging granularities, e.g. the on-GPU 1 ms logger next
     * to an amd-smi-style 50 ms one).  Windows must be positive, distinct
     * from each other and from the primary.  The pre/post capture idle
     * sleeps span the longest window so every capture engages.  Samples
     * land in RunRecord::extra_samples, parallel to this list.
     */
    std::vector<support::Duration> extra_windows;
};

/** One observed kernel execution (CPU-domain bounds). */
struct ExecObservation {
    runtime::HostTiming timing;
    std::string label;
    bool is_main = false;  ///< true for executions of the profiled kernel
};

/** Everything one run produced. */
struct RunRecord {
    std::size_t run_index = 0;
    std::vector<ExecObservation> execs;         ///< in execution order
    std::vector<std::size_t> main_exec_indices; ///< indices into execs
    /** The run's power log, columnar end to end from capture. */
    sim::SampleColumns samples;
    /** Per extra window (RunPlan::extra_windows order): that logger's log. */
    std::vector<sim::SampleColumns> extra_samples;
    std::int64_t run_start_cpu_ns = 0;          ///< first execution start
    std::int64_t log_start_cpu_ns = 0;          ///< power-log start call
    /**
     * Contention state active during the run: background-active CPU-clock
     * intervals (merged, ascending) overlapping the run's capture, from
     * the runtime's background channel.  Empty for isolated campaigns.
     * The stitcher annotates each LOI against these intervals.
     */
    std::vector<std::pair<std::int64_t, std::int64_t>> contended_cpu_ns;

    /** CPU-measured duration of the i-th main execution. */
    support::Duration mainExecDuration(std::size_t i) const;

    /** True when the CPU-clock instant fell inside a contended interval. */
    bool contendedAt(std::int64_t cpu_ns) const;
};

/** Executes RunPlans against a host runtime. */
class RunExecutor {
  public:
    /**
     * @param host  Runtime to drive.
     * @param rng   Stream for delays, jitter and allocation outliers.
     */
    RunExecutor(runtime::HostRuntime& host, support::Rng rng);

    /**
     * Execute one run.
     *
     * @param plan        What to execute.
     * @param run_index   Stored in the record (and used for diagnostics).
     * @param with_power  Capture the power log (off for pure-timing runs).
     */
    RunRecord executeRun(const RunPlan& plan, std::size_t run_index,
                         bool with_power = true);

    /**
     * Materialize a kernel invocation: cost at the current warmth, scaled
     * by the run's allocation factor and per-execution jitter.
     *
     * @param appearance  How many times this kernel has already executed
     *                    in the current run (drives warmth).
     */
    sim::KernelWork sampleWork(const kernels::KernelModel& model,
                               std::size_t appearance, double alloc_factor);

  private:
    runtime::HostRuntime& host_;
    support::Rng rng_;
};

}  // namespace fingrav::core

#endif  // FINGRAV_FINGRAV_RUN_EXECUTOR_HPP_

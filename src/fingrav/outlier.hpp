#ifndef FINGRAV_FINGRAV_OUTLIER_HPP_
#define FINGRAV_FINGRAV_OUTLIER_HPP_

/**
 * @file
 * Outlier-execution analysis (paper Section VI).
 *
 * FinGraV's common-case profiles deliberately discard outlier runs; the
 * paper sketches two ways to study the outliers themselves and leaves them
 * to future work.  Both are implemented here:
 *
 *  1. OutlierProfiler — "employ FinGraV methodology and focus on
 *     collecting profiles for a specific outlier execution time and
 *     discarding the rest (changing step-6)".  The campaign first runs the
 *     standard pipeline to locate the outlier cluster, then re-bins around
 *     it.  As the paper warns, this costs more runs: outliers are rare, so
 *     the target bin fills slowly.
 *
 *  2. PhaseSlice — "the kernel can be artificially terminated after half
 *     the number of workgroups are completed and each half of the
 *     execution can be studied separately".  PhaseSlice wraps any
 *     KernelModel and exposes a [from, to) fraction of its workgroups as a
 *     standalone kernel, so each phase can be profiled (and its
 *     execution-time variation assessed) independently.
 */

#include <cstddef>
#include <optional>
#include <string>

#include "fingrav/profiler.hpp"
#include "kernels/kernel_model.hpp"
#include "runtime/host_runtime.hpp"
#include "support/rng.hpp"
#include "support/time_types.hpp"

namespace fingrav::core {

/** Result of an outlier-focused campaign. */
struct OutlierProfileResult {
    ProfileSet common;    ///< the standard common-case campaign
    ProfileSet outlier;   ///< the campaign re-focused on the outlier bin
    support::Duration outlier_target;  ///< the execution time targeted
    bool outlier_found = false;        ///< false when no outlier cluster
};

/** Profiles the outlier execution-time bin instead of the modal one. */
class OutlierProfiler {
  public:
    /**
     * @param host  Runtime over the node.
     * @param opts  Base options (binning settings are managed internally).
     * @param rng   Campaign randomness.
     */
    OutlierProfiler(runtime::HostRuntime& host, ProfilerOptions opts,
                    support::Rng rng);

    /**
     * Run the two-stage campaign: common-case first (which also surfaces
     * the outlier population), then a re-binned campaign around the
     * slowest outlier cluster.
     *
     * @param kernel           Kernel to study.
     * @param min_outlier_gap  Minimum relative slowdown for a time to
     *                         count as an outlier (e.g. 0.08 = 8 %).
     */
    OutlierProfileResult profile(const kernels::KernelModelPtr& kernel,
                                 double min_outlier_gap = 0.08);

  private:
    runtime::HostRuntime& host_;
    ProfilerOptions opts_;
    support::Rng rng_;
};

}  // namespace fingrav::core

namespace fingrav::kernels {

/** A contiguous slice of another kernel's workgroups (Section VI). */
class PhaseSlice : public KernelModel {
  public:
    /**
     * @param base  The kernel being split; shared ownership.
     * @param from  Slice start as a fraction of total work, in [0, 1).
     * @param to    Slice end, in (from, 1].
     */
    PhaseSlice(KernelModelPtr base, double from, double to);

    std::string label() const override;
    sim::KernelWork workAt(double warmth) const override;
    double opsPerByte() const override { return base_->opsPerByte(); }
    bool isCollective() const override { return base_->isCollective(); }

    /** The underlying kernel. */
    const KernelModel& base() const { return *base_; }

    /** Fraction of the base kernel's work this slice covers. */
    double fraction() const { return to_ - from_; }

  private:
    KernelModelPtr base_;
    double from_;
    double to_;
};

}  // namespace fingrav::kernels

#endif  // FINGRAV_FINGRAV_OUTLIER_HPP_

#include "fingrav/guidance.hpp"

#include <cmath>

#include "support/logging.hpp"

namespace fingrav::core {

std::size_t
GuidanceEntry::recommendedLois(support::Duration exec_time) const
{
    if (loi_per.nanos() <= 0)
        return 1;
    const double n = std::ceil(static_cast<double>(exec_time.nanos()) /
                               static_cast<double>(loi_per.nanos()));
    return std::max<std::size_t>(1, static_cast<std::size_t>(n));
}

GuidanceTable::GuidanceTable(std::vector<GuidanceEntry> rows)
    : rows_(std::move(rows))
{
    if (rows_.empty())
        support::fatal("GuidanceTable: need at least one row");
    for (std::size_t i = 0; i < rows_.size(); ++i) {
        const auto& r = rows_[i];
        if (r.exec_hi <= r.exec_lo)
            support::fatal("GuidanceTable: row ", i, " has empty range");
        if (r.runs == 0)
            support::fatal("GuidanceTable: row ", i, " has zero runs");
        if (r.binning_margin < 0.0)
            support::fatal("GuidanceTable: row ", i, " has negative margin");
        if (i > 0 && rows_[i - 1].exec_hi != r.exec_lo)
            support::fatal("GuidanceTable: rows ", i - 1, " and ", i,
                           " are not contiguous");
    }
}

GuidanceTable
GuidanceTable::paperDefault()
{
    using support::Duration;
    std::vector<GuidanceEntry> rows;
    // Extension row: kernels shorter than the paper's first range reuse
    // the 25-50 us parameters (the shortest kernels need the most runs).
    rows.push_back({Duration::nanos(0), Duration::micros(25.0), 400,
                    Duration::micros(5.0), 0.05});
    // Paper Table I.
    rows.push_back({Duration::micros(25.0), Duration::micros(50.0), 400,
                    Duration::micros(5.0), 0.05});
    rows.push_back({Duration::micros(50.0), Duration::micros(200.0), 200,
                    Duration::micros(10.0), 0.05});
    rows.push_back({Duration::micros(200.0), Duration::millis(1.0), 200,
                    Duration::micros(10.0), 0.02});
    rows.push_back({Duration::millis(1.0), Duration::seconds(3600.0), 200,
                    Duration::micros(10.0), 0.02});
    return GuidanceTable(std::move(rows));
}

const GuidanceEntry&
GuidanceTable::lookup(support::Duration exec_time) const
{
    for (const auto& r : rows_) {
        if (exec_time >= r.exec_lo && exec_time < r.exec_hi)
            return r;
    }
    return exec_time < rows_.front().exec_lo ? rows_.front() : rows_.back();
}

}  // namespace fingrav::core

#include "fingrav/time_sync.hpp"

#include "support/logging.hpp"
#include "support/simd.hpp"

namespace fingrav::core {

TimeSync
TimeSync::calibrate(runtime::HostRuntime& host, std::size_t device,
                    std::size_t bench_iters)
{
    TimeSync sync;
    sync.tick_ns_ = host.timestampTick(device).nanos();
    // Step (1): benchmark the read delay separately (paper Fig. 4b).
    sync.read_delay_ = host.benchmarkTimestampReadDelay(device, bench_iters);
    // Step (2): one anchor read; the counter was sampled roughly halfway
    // through the round trip, so the CPU time to pair with it is the
    // call-entry time plus half the benchmarked delay.
    const auto read = host.readGpuTimestamp(device);
    sync.anchor_cpu_ns_ =
        read.cpu_before_ns + sync.read_delay_.nanos() / 2;
    sync.anchor_gpu_ns_ = read.gpu_counter * sync.tick_ns_;
    return sync;
}

TimeSync
TimeSync::calibrateIgnoringDelay(runtime::HostRuntime& host,
                                 std::size_t device)
{
    TimeSync sync;
    sync.tick_ns_ = host.timestampTick(device).nanos();
    sync.read_delay_ = support::Duration();
    const auto read = host.readGpuTimestamp(device);
    // No delay accounting: the anchor CPU time is simply the call entry.
    sync.anchor_cpu_ns_ = read.cpu_before_ns;
    sync.anchor_gpu_ns_ = read.gpu_counter * sync.tick_ns_;
    return sync;
}

void
TimeSync::addDriftAnchor(runtime::HostRuntime& host, std::size_t device)
{
    const auto read = host.readGpuTimestamp(device);
    const std::int64_t cpu_ns =
        read.cpu_before_ns + read_delay_.nanos() / 2;
    const std::int64_t gpu_ns = read.gpu_counter * tick_ns_;
    const std::int64_t d_cpu = cpu_ns - anchor_cpu_ns_;
    const std::int64_t d_gpu = gpu_ns - anchor_gpu_ns_;
    if (d_cpu < 100'000'000)
        support::warn("TimeSync::addDriftAnchor: anchors only ",
                      d_cpu / 1000, "us apart; drift estimate will be "
                      "noisy (want >= 100ms)");
    if (d_cpu <= 0)
        support::fatal("TimeSync::addDriftAnchor: non-positive anchor span");
    drift_ppm_ = (static_cast<double>(d_gpu) / static_cast<double>(d_cpu) -
                  1.0) * 1e6;
    drift_compensated_ = true;
}

std::int64_t
TimeSync::gpuCounterToCpuNs(std::int64_t counter) const
{
    const std::int64_t gpu_ns = counter * tick_ns_;
    const double d_gpu = static_cast<double>(gpu_ns - anchor_gpu_ns_);
    // Without drift compensation the GPU nanosecond is taken at face value
    // (the paper's approach); with it, the affine rate is divided out.
    const double rate = 1.0 + drift_ppm_ * 1e-6;
    return anchor_cpu_ns_ + static_cast<std::int64_t>(d_gpu / rate);
}

void
TimeSync::translateColumn(const std::int64_t* counters, std::size_t n,
                          std::int64_t* out) const
{
    const std::int64_t tick = tick_ns_;
    const std::int64_t anchor_gpu = anchor_gpu_ns_;
    const std::int64_t anchor_cpu = anchor_cpu_ns_;
    const double rate = 1.0 + drift_ppm_ * 1e-6;
    FINGRAV_SIMD_LOOP
    for (std::size_t i = 0; i < n; ++i) {
        const double d_gpu =
            static_cast<double>(counters[i] * tick - anchor_gpu);
        out[i] = anchor_cpu + static_cast<std::int64_t>(d_gpu / rate);
    }
}

}  // namespace fingrav::core

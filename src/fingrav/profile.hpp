#ifndef FINGRAV_FINGRAV_PROFILE_HPP_
#define FINGRAV_FINGRAV_PROFILE_HPP_

/**
 * @file
 * Stitched fine-grain power profiles (the FinGraV output artifact).
 *
 * A PowerProfile is a cloud of (TOI, power) points collected across runs:
 * each point is one power log-of-interest (LOI) whose synced CPU-domain
 * timestamp fell inside a kernel execution, positioned at its
 * time-of-interest (TOI) within that execution.  Random inter-run delays
 * decorrelate the logger's window grid from kernel start, so across many
 * runs the TOIs cover the whole execution — that is what makes the stitched
 * cloud a *fine-grain time series* of a kernel that is far shorter than the
 * logger window (paper step 9: "stitch the different runs by plotting all
 * collected LOIs and TOIs").
 */

#include <cstddef>
#include <string>
#include <vector>

#include "sim/power_logger.hpp"
#include "support/polyfit.hpp"
#include "support/time_types.hpp"

namespace fingrav::core {

/** Telemetry rail selector. */
enum class Rail {
    kTotal,
    kXcd,
    kIod,
    kHbm,
};

/** Printable rail name. */
const char* toString(Rail rail);

/** Rail value of a sample. */
double railValue(const sim::PowerSample& s, Rail rail);

/** One stitched profile point. */
struct ProfilePoint {
    double toi_us = 0.0;        ///< time into the execution, microseconds
    double toi_frac = 0.0;      ///< TOI normalized by execution time
    double run_time_us = 0.0;   ///< time since the run's first execution
    sim::PowerSample sample;    ///< the LOI (per-rail window averages)
    std::size_t run_index = 0;  ///< which run produced it
    std::size_t exec_index = 0; ///< which execution within the run
    /**
     * Contention state active when this LOI closed: true when the
     * sample's timestamp fell inside a background-active interval of its
     * run (scenario environments; fingrav/scenario.hpp).  Always false
     * for isolated campaigns, so reports can split SSP/SSE into
     * uncontended vs contended phases.
     */
    bool contended = false;
};

/** Bitwise point equality (stitcher equivalence checks). */
inline bool
operator==(const ProfilePoint& a, const ProfilePoint& b)
{
    return a.toi_us == b.toi_us && a.toi_frac == b.toi_frac &&
           a.run_time_us == b.run_time_us && a.sample == b.sample &&
           a.run_index == b.run_index && a.exec_index == b.exec_index &&
           a.contended == b.contended;
}

/** Profile flavour per the paper's S4 differentiation. */
enum class ProfileKind {
    kSse,       ///< steady-state-execution profile (first post-warm-up exec)
    kSsp,       ///< steady-state-power profile (post power stabilization)
    kTimeline,  ///< all samples of the runs laid out in run time (Fig. 6/8)
};

/** Printable kind name. */
const char* toString(ProfileKind kind);

/** A stitched power profile. */
class PowerProfile {
  public:
    PowerProfile() = default;

    /**
     * @param label  Kernel label the profile belongs to.
     * @param kind   SSE / SSP / timeline.
     */
    PowerProfile(std::string label, ProfileKind kind)
        : label_(std::move(label)), kind_(kind)
    {
    }

    /** Append a point. */
    void add(const ProfilePoint& p) { points_.push_back(p); }

    /** All points (unsorted). */
    const std::vector<ProfilePoint>& points() const { return points_; }

    /** Number of LOIs. */
    std::size_t size() const { return points_.size(); }

    /** True when no LOIs were captured. */
    bool empty() const { return points_.empty(); }

    /** Mean of a rail across all points; 0 when empty. */
    double meanPower(Rail rail = Rail::kTotal) const;

    /** Min/max of a rail across all points; 0 when empty. */
    double minPower(Rail rail = Rail::kTotal) const;
    double maxPower(Rail rail = Rail::kTotal) const;

    /** LOIs flagged as contended (scenario environments). */
    std::size_t contendedCount() const;

    /** Mean of a rail over points with the given contention flag; 0 when
     *  no point carries that flag. */
    double meanPowerWhere(bool contended, Rail rail = Rail::kTotal) const;

    /**
     * Degree-`degree` least-squares trend of a rail over TOI (the paper's
     * "linear regression of degree four" overlay).  X is toi_us for
     * SSE/SSP profiles and run_time_us for timelines.
     */
    support::PolyFitResult trend(Rail rail, std::size_t degree = 4) const;

    /** Kernel label. */
    const std::string& label() const { return label_; }

    /** Profile flavour. */
    ProfileKind kind() const { return kind_; }

  private:
    std::string label_;
    ProfileKind kind_ = ProfileKind::kSsp;
    std::vector<ProfilePoint> points_;
};

}  // namespace fingrav::core

#endif  // FINGRAV_FINGRAV_PROFILE_HPP_

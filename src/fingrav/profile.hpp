#ifndef FINGRAV_FINGRAV_PROFILE_HPP_
#define FINGRAV_FINGRAV_PROFILE_HPP_

/**
 * @file
 * Stitched fine-grain power profiles (the FinGraV output artifact).
 *
 * A PowerProfile is a cloud of (TOI, power) points collected across runs:
 * each point is one power log-of-interest (LOI) whose synced CPU-domain
 * timestamp fell inside a kernel execution, positioned at its
 * time-of-interest (TOI) within that execution.  Random inter-run delays
 * decorrelate the logger's window grid from kernel start, so across many
 * runs the TOIs cover the whole execution — that is what makes the stitched
 * cloud a *fine-grain time series* of a kernel that is far shorter than the
 * logger window (paper step 9: "stitch the different runs by plotting all
 * collected LOIs and TOIs").
 *
 * Storage is structure-of-arrays: one contiguous column per point field
 * (TOI, per-rail power, run/exec indices, a packed contention bitmap)
 * instead of a vector of ProfilePoint structs.  The hot analysis kernels
 * (rail reductions, trend fits, phase binning, codec encode) stream whole
 * columns with no per-point rail dispatch, and the wire codec moves
 * columns as single byte blocks.  ProfilePoint remains the point-at-a-time
 * exchange type: point(i) materializes one, points() yields a view whose
 * iterator materializes on demand, so point-wise callers (tests, oracles,
 * CSV dumps) are source-compatible with the old AoS layout.
 */

#include <cstddef>
#include <cstdint>
#include <iterator>
#include <string>
#include <vector>

#include "sim/power_logger.hpp"
#include "support/polyfit.hpp"
#include "support/time_types.hpp"

namespace fingrav::core {

/** Telemetry rail selector. */
enum class Rail {
    kTotal,
    kXcd,
    kIod,
    kHbm,
};

/** Printable rail name. */
const char* toString(Rail rail);

/** Rail value of a sample. */
double railValue(const sim::PowerSample& s, Rail rail);

/** One stitched profile point. */
struct ProfilePoint {
    double toi_us = 0.0;        ///< time into the execution, microseconds
    double toi_frac = 0.0;      ///< TOI normalized by execution time
    double run_time_us = 0.0;   ///< time since the run's first execution
    sim::PowerSample sample;    ///< the LOI (per-rail window averages)
    std::size_t run_index = 0;  ///< which run produced it
    std::size_t exec_index = 0; ///< which execution within the run
    /**
     * Contention state active when this LOI closed: true when the
     * sample's timestamp fell inside a background-active interval of its
     * run (scenario environments; fingrav/scenario.hpp).  Always false
     * for isolated campaigns, so reports can split SSP/SSE into
     * uncontended vs contended phases.
     */
    bool contended = false;
};

/** Bitwise point equality (stitcher equivalence checks). */
inline bool
operator==(const ProfilePoint& a, const ProfilePoint& b)
{
    return a.toi_us == b.toi_us && a.toi_frac == b.toi_frac &&
           a.run_time_us == b.run_time_us && a.sample == b.sample &&
           a.run_index == b.run_index && a.exec_index == b.exec_index &&
           a.contended == b.contended;
}

/** Profile flavour per the paper's S4 differentiation. */
enum class ProfileKind {
    kSse,       ///< steady-state-execution profile (first post-warm-up exec)
    kSsp,       ///< steady-state-power profile (post power stabilization)
    kTimeline,  ///< all samples of the runs laid out in run time (Fig. 6/8)
};

/** Printable kind name. */
const char* toString(ProfileKind kind);

/** Which points a rail reduction runs over. */
enum class ContentionFilter {
    kAll,          ///< every point
    kContended,    ///< points whose contended flag is set
    kUncontended,  ///< points whose contended flag is clear
};

/**
 * One-pass rail reduction outcome: count, running sum (accumulated in
 * point order, so means reproduce the former per-accessor loops bit for
 * bit), and extrema of the selected points.
 */
struct RailStats {
    std::size_t count = 0;
    double sum = 0.0;
    double min = 0.0;  ///< 0 when count == 0
    double max = 0.0;  ///< 0 when count == 0

    /** Arithmetic mean; 0 when no point matched. */
    double
    mean() const
    {
        return count > 0 ? sum / static_cast<double>(count) : 0.0;
    }
};

/** A stitched power profile. */
class PowerProfile {
  public:
    PowerProfile() = default;

    /**
     * @param label  Kernel label the profile belongs to.
     * @param kind   SSE / SSP / timeline.
     */
    PowerProfile(std::string label, ProfileKind kind)
        : label_(std::move(label)), kind_(kind)
    {
    }

    /** Append a point (scattered into the columns). */
    void add(const ProfilePoint& p);

    /**
     * Append one point without constructing a ProfilePoint — the stitcher
     * hot path writes straight into the columns.
     */
    void addRow(double toi_us, double toi_frac, double run_time_us,
                const sim::PowerSample& sample, std::size_t run_index,
                std::size_t exec_index, bool contended);

    /**
     * Bulk-append one run's timeline: for every sample k, run time is
     * (cpu_ns[k] - run_start_cpu_ns) / 1e3 with TOI fields zero and no
     * exec attribution — the stitcher's whole-run view.  `contended`
     * holds one 0/1 byte per sample.  Columns are resized once and
     * filled with tight per-column loops.
     */
    void appendTimelineRun(const sim::PowerSample* samples,
                           const std::int64_t* cpu_ns,
                           const std::uint8_t* contended, std::size_t n,
                           std::int64_t run_start_cpu_ns,
                           std::size_t run_index);

    /**
     * Columnar form: the run's samples arrive as capture-time columns
     * (sim::SampleColumns) and are bulk-copied column to column — no
     * row materialization, no transpose.  Bit-identical to the pointer
     * overload fed the same rows.
     */
    void appendTimelineRun(const sim::SampleColumns& samples,
                           const std::int64_t* cpu_ns,
                           const std::uint8_t* contended,
                           std::int64_t run_start_cpu_ns,
                           std::size_t run_index);

    /**
     * Adopt fully-built columns wholesale (the codec's zero-copy decode
     * lands here): every column must hold exactly `n` elements and
     * `contended_words` must hold (n + 63) / 64 packed bits with all
     * trailing bits zero; anything else is fatal.
     */
    void adoptColumns(std::size_t n, std::vector<double> toi_us,
                      std::vector<double> toi_frac,
                      std::vector<double> run_time_us,
                      std::vector<std::int64_t> gpu_timestamp,
                      std::vector<double> total_w, std::vector<double> xcd_w,
                      std::vector<double> iod_w, std::vector<double> hbm_w,
                      std::vector<std::uint64_t> run_index,
                      std::vector<std::uint64_t> exec_index,
                      std::vector<std::uint64_t> contended_words);

    /** Reserve capacity in every column. */
    void reserve(std::size_t n);

    /** Materialize point i. */
    ProfilePoint point(std::size_t i) const;

    /** Number of LOIs. */
    std::size_t size() const { return size_; }

    /** True when no LOIs were captured. */
    bool empty() const { return size_ == 0; }

    // -- point-at-a-time view (source compatibility with the AoS layout) --

    /** Iterator materializing ProfilePoints from the columns on demand. */
    class PointIterator {
      public:
        using iterator_category = std::input_iterator_tag;
        using value_type = ProfilePoint;
        using difference_type = std::ptrdiff_t;
        using pointer = const ProfilePoint*;
        using reference = ProfilePoint;

        PointIterator(const PowerProfile* p, std::size_t i)
            : profile_(p), i_(i)
        {
        }

        ProfilePoint operator*() const { return profile_->point(i_); }
        PointIterator& operator++() { ++i_; return *this; }
        PointIterator operator++(int) { auto c = *this; ++i_; return c; }
        bool operator==(const PointIterator& o) const { return i_ == o.i_; }
        bool operator!=(const PointIterator& o) const { return i_ != o.i_; }

      private:
        const PowerProfile* profile_;
        std::size_t i_;
    };

    /** Range/index view over the points (materialized on access). */
    class PointsView {
      public:
        explicit PointsView(const PowerProfile* p) : profile_(p) {}

        std::size_t size() const { return profile_->size(); }
        bool empty() const { return profile_->empty(); }
        ProfilePoint operator[](std::size_t i) const
        {
            return profile_->point(i);
        }
        PointIterator begin() const { return {profile_, 0}; }
        PointIterator end() const { return {profile_, profile_->size()}; }

      private:
        const PowerProfile* profile_;
    };

    /** All points (unsorted), materialized on access. */
    PointsView points() const { return PointsView(this); }

    // -- columns ---------------------------------------------------------

    const std::vector<double>& toiUs() const { return toi_us_; }
    const std::vector<double>& toiFrac() const { return toi_frac_; }
    const std::vector<double>& runTimeUs() const { return run_time_us_; }
    const std::vector<std::int64_t>& gpuTimestamps() const
    {
        return gpu_timestamp_;
    }
    const std::vector<std::uint64_t>& runIndices() const
    {
        return run_index_;
    }
    const std::vector<std::uint64_t>& execIndices() const
    {
        return exec_index_;
    }
    /** Packed contention bitmap, 64 points per word, LSB-first. */
    const std::vector<std::uint64_t>& contendedWords() const
    {
        return contended_words_;
    }
    /** The power column of one rail. */
    const std::vector<double>& railColumn(Rail rail) const;

    /** Contention flag of point i. */
    bool
    contendedBit(std::size_t i) const
    {
        return (contended_words_[i >> 6] >> (i & 63)) & 1u;
    }

    /** X column a trend/series runs over (run time for timelines, TOI
     *  otherwise). */
    const std::vector<double>&
    xColumn() const
    {
        return kind_ == ProfileKind::kTimeline ? run_time_us_ : toi_us_;
    }

    // -- reductions ------------------------------------------------------

    /**
     * One-pass reduction over a rail column: count, sum (point order),
     * min, max of the selected points.  All the former per-accessor
     * loops (meanPower, minPower, maxPower, meanPowerWhere, the
     * contention-delta means) collapse into this kernel.
     */
    RailStats railStats(Rail rail,
                        ContentionFilter filter =
                            ContentionFilter::kAll) const;

    /** Mean of a rail across all points; 0 when empty. */
    double
    meanPower(Rail rail = Rail::kTotal) const
    {
        return railStats(rail).mean();
    }

    /** Min/max of a rail across all points; 0 when empty. */
    double minPower(Rail rail = Rail::kTotal) const
    {
        return railStats(rail).min;
    }
    double maxPower(Rail rail = Rail::kTotal) const
    {
        return railStats(rail).max;
    }

    /** LOIs flagged as contended (popcount over the packed bitmap). */
    std::size_t contendedCount() const;

    /** Mean of a rail over points with the given contention flag; 0 when
     *  no point carries that flag. */
    double
    meanPowerWhere(bool contended, Rail rail = Rail::kTotal) const
    {
        return railStats(rail, contended ? ContentionFilter::kContended
                                         : ContentionFilter::kUncontended)
            .mean();
    }

    /**
     * Degree-`degree` least-squares trend of a rail over TOI (the paper's
     * "linear regression of degree four" overlay).  X is toi_us for
     * SSE/SSP profiles and run_time_us for timelines; both are handed to
     * the fitter as column views — no copies.
     */
    support::PolyFitResult trend(Rail rail, std::size_t degree = 4) const;

    /** Kernel label. */
    const std::string& label() const { return label_; }

    /** Profile flavour. */
    ProfileKind kind() const { return kind_; }

  private:
    /** Set bit i (columns already grown past i). */
    void
    setContended(std::size_t i, bool contended)
    {
        const std::size_t word = i >> 6;
        if (word >= contended_words_.size())
            contended_words_.resize(word + 1, 0);
        if (contended)
            contended_words_[word] |= std::uint64_t{1} << (i & 63);
    }

    std::string label_;
    ProfileKind kind_ = ProfileKind::kSsp;

    std::size_t size_ = 0;
    std::vector<double> toi_us_;
    std::vector<double> toi_frac_;
    std::vector<double> run_time_us_;
    std::vector<std::int64_t> gpu_timestamp_;
    std::vector<double> total_w_;
    std::vector<double> xcd_w_;
    std::vector<double> iod_w_;
    std::vector<double> hbm_w_;
    std::vector<std::uint64_t> run_index_;
    std::vector<std::uint64_t> exec_index_;
    std::vector<std::uint64_t> contended_words_;
};

}  // namespace fingrav::core

#endif  // FINGRAV_FINGRAV_PROFILE_HPP_

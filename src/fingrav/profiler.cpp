#include "fingrav/profiler.hpp"

#include <algorithm>
#include <cmath>
#include <limits>
#include <utility>

#include "fingrav/stitcher.hpp"
#include "support/logging.hpp"
#include "support/statistics.hpp"

namespace fingrav::core {

namespace {

/** SSE index marker meaning "no SSE profile for this campaign". */
constexpr std::size_t kNoSse = std::numeric_limits<std::size_t>::max();

}  // namespace

const char*
toString(SyncMode mode)
{
    switch (mode) {
      case SyncMode::kFinGraV:
        return "fingrav";
      case SyncMode::kFinGraVDrift:
        return "fingrav+drift";
      case SyncMode::kNoDelayAccounting:
        return "no-delay-accounting";
      case SyncMode::kCoarseAlign:
        return "coarse-align";
    }
    return "?";
}

Profiler::Profiler(runtime::HostRuntime& host, ProfilerOptions opts,
                   support::Rng rng)
    : host_(host), opts_(opts), rng_(std::move(rng)),
      guidance_(GuidanceTable::paperDefault()),
      differ_(opts.sse_executions, opts.stability_eps)
{
    if (opts_.timing_reps == 0)
        support::fatal("Profiler: timing_reps must be >= 1");
    if (opts_.device >= host.simulation().deviceCount())
        support::fatal("Profiler: device ", opts_.device, " out of range");
}

support::Duration
measureKernelExecTime(runtime::HostRuntime& host, support::Rng& rng,
                      const kernels::KernelModelPtr& kernel,
                      const ProfilerOptions& opts)
{
    // Paper step 1: time the kernel a few times.  Warm-ups are excluded by
    // timing sse_executions + timing_reps executions and taking the median
    // of the trailing timing_reps.
    RunExecutor exec(host, rng.fork(900));
    RunPlan plan;
    plan.main = kernel;
    plan.device = opts.device;
    plan.main_execs_per_block = opts.sse_executions + opts.timing_reps;
    plan.min_delay = opts.min_delay;
    plan.max_delay = opts.min_delay;  // no need for phase randomness here
    const auto rec = exec.executeRun(plan, 0, /*with_power=*/false);

    std::vector<double> tail_us;
    for (std::size_t i = opts.sse_executions;
         i < rec.main_exec_indices.size(); ++i) {
        tail_us.push_back(rec.mainExecDuration(i).toMicros());
    }
    return support::Duration::micros(support::medianInPlace(tail_us));
}

std::size_t
sspIndexFromExplore(const ProfileDifferentiator& differ, const TimeSync& sync,
                    const RunRecord& explore,
                    const sim::SampleColumns& samples,
                    std::size_t formula, const ProfilerOptions& opts,
                    std::size_t explore_execs)
{
    // The stabilization series *is* the total-power column — no copy.
    const std::size_t stable_sample =
        differ.detectStabilization(samples.total_w);

    std::size_t detected = explore_execs;
    if (stable_sample < samples.size()) {
        // The first stable sample's window ends at its timestamp; the SSP
        // region starts with the first execution launched entirely after
        // that window, so no SSP LOI straddles the settling transient.
        const auto stable_cpu =
            sync.gpuCounterToCpuNs(samples.gpu_timestamp[stable_sample]);
        for (std::size_t j = 0; j < explore.main_exec_indices.size(); ++j) {
            if (explore.execs[explore.main_exec_indices[j]]
                    .timing.cpu_start_ns >= stable_cpu) {
                detected = j;
                break;
            }
        }
    }
    return std::clamp<std::size_t>(std::max(formula, detected),
                                   opts.sse_executions, explore_execs - 1);
}

std::size_t
harvestExecutions(support::Duration exec_time, support::Duration window)
{
    return std::clamp<std::size_t>(
        static_cast<std::size_t>(
            std::ceil(1.5 * window.toMicros() / exec_time.toMicros())),
        2, 64);
}

support::Duration
Profiler::measureExecTime(const kernels::KernelModelPtr& kernel)
{
    return measureKernelExecTime(host_, rng_, kernel, opts_);
}

ProfileSet
Profiler::profile(const kernels::KernelModelPtr& kernel)
{
    if (!kernel)
        support::fatal("Profiler::profile: null kernel");

    ProfileSet out;
    out.label = kernel->label();

    // ---- step 1: execution time + guidance lookup -----------------------
    out.measured_exec_time = measureExecTime(kernel);
    out.guidance = guidance_.lookup(out.measured_exec_time);
    out.loi_target = out.guidance.recommendedLois(out.measured_exec_time);

    // ---- step 2/7 prep: CPU-GPU time sync -------------------------------
    TimeSync sync = TimeSync::calibrate(host_, opts_.device);
    if (opts_.sync_mode == SyncMode::kNoDelayAccounting) {
        // Lang et al. style: synchronize but ignore the read delay.  The
        // anchor is re-derived by shifting out the delay correction.
        sync = TimeSync::calibrateIgnoringDelay(host_, opts_.device);
    }
    out.read_delay_us = sync.readDelay().toMicros();

    // ---- steps 3-4: SSE/SSP execution indices ---------------------------
    const auto window =
        opts_.logger_window.nanos() > 0
            ? opts_.logger_window
            : host_.simulation().config().logger_window;
    const std::size_t formula =
        differ_.sspExecutionFormula(out.measured_exec_time, window);
    out.sse_exec_index = opts_.sse_executions - 1;

    RunExecutor exec(host_, rng_.fork(901));
    RunPlan plan;
    plan.main = kernel;
    plan.device = opts_.device;
    plan.min_delay = opts_.min_delay;
    plan.max_delay = opts_.max_delay;
    plan.logger_window = opts_.logger_window;
    plan.main_execs_per_block =
        std::clamp<std::size_t>(3 * formula, 20, formula + 128);
    const auto explore = exec.executeRun(plan, 0);
    out.ssp_exec_index =
        sspIndexFromExplore(differ_, sync, explore, explore.samples,
                            formula, opts_, plan.main_execs_per_block);

    out.execs_per_run =
        out.ssp_exec_index + harvestExecutions(out.measured_exec_time,
                                               window);
    plan.main_execs_per_block = out.execs_per_run;

    // ---- step 5: the runs ------------------------------------------------
    const std::size_t base_runs =
        opts_.runs_override.value_or(out.guidance.runs);
    std::vector<RunRecord> runs;
    runs.reserve(base_runs);
    for (std::size_t r = 0; r < base_runs; ++r)
        runs.push_back(exec.executeRun(plan, r));
    out.runs_executed = runs.size();

    if (opts_.sync_mode == SyncMode::kFinGraVDrift) {
        // Future-work extension: a second anchor after the campaign
        // estimates and compensates GPU clock drift.
        sync.addDriftAnchor(host_, opts_.device);
        out.drift_ppm = sync.estimatedDriftPpm();
    }

    // ---- steps 6, 7, 9 ----------------------------------------------------
    ProfileStitcher stitcher(opts_, sync, host_.timestampTick(opts_.device));
    stitcher.restitch(runs, out);

    // ---- step 8: top up runs until the LOI target ------------------------
    // Appended runs are stitched incrementally; the stitcher rebuilds only
    // when a new run shifts the modal execution-time bin.
    if (opts_.collect_extra_runs) {
        const auto max_total = static_cast<std::size_t>(
            static_cast<double>(base_runs) *
            (1.0 + opts_.max_extra_run_factor));
        while (out.ssp.size() < out.loi_target && runs.size() < max_total) {
            runs.push_back(exec.executeRun(plan, runs.size()));
            out.runs_executed = runs.size();
            stitcher.restitch(runs, out);
        }
    }
    return out;
}

ProfileSet
Profiler::profileInterleaved(const kernels::KernelModelPtr& main,
                             const std::vector<InterleaveItem>& prelude,
                             std::size_t blocks_per_run)
{
    if (!main)
        support::fatal("Profiler::profileInterleaved: null kernel");
    if (prelude.empty())
        support::fatal("Profiler::profileInterleaved: empty prelude; use "
                       "profile() for isolated executions");
    if (blocks_per_run < 2)
        support::fatal("Profiler::profileInterleaved: need >= 2 blocks "
                       "(block 0 is warm-up)");

    ProfileSet out;
    out.label = main->label();
    out.measured_exec_time = measureExecTime(main);
    out.guidance = guidance_.lookup(out.measured_exec_time);
    out.loi_target = out.guidance.recommendedLois(out.measured_exec_time);

    TimeSync sync = TimeSync::calibrate(host_, opts_.device);
    if (opts_.sync_mode == SyncMode::kNoDelayAccounting)
        sync = TimeSync::calibrateIgnoringDelay(host_, opts_.device);
    out.read_delay_us = sync.readDelay().toMicros();

    // Main-kernel instances: one per block; block 0 warms up.
    out.sse_exec_index = kNoSse;
    out.ssp_exec_index = 1;
    out.execs_per_run = blocks_per_run;

    RunExecutor exec(host_, rng_.fork(902));
    RunPlan plan;
    plan.main = main;
    plan.prelude = prelude;
    plan.blocks = blocks_per_run;
    plan.main_execs_per_block = 1;
    plan.device = opts_.device;
    plan.min_delay = opts_.min_delay;
    plan.max_delay = opts_.max_delay;
    plan.logger_window = opts_.logger_window;

    const std::size_t base_runs =
        opts_.runs_override.value_or(out.guidance.runs);
    std::vector<RunRecord> runs;
    runs.reserve(base_runs);
    for (std::size_t r = 0; r < base_runs; ++r)
        runs.push_back(exec.executeRun(plan, r));
    out.runs_executed = runs.size();

    ProfileStitcher stitcher(opts_, sync, host_.timestampTick(opts_.device));
    stitcher.restitch(runs, out);

    if (opts_.collect_extra_runs) {
        const auto max_total = static_cast<std::size_t>(
            static_cast<double>(base_runs) *
            (1.0 + opts_.max_extra_run_factor));
        while (out.ssp.size() < out.loi_target && runs.size() < max_total) {
            runs.push_back(exec.executeRun(plan, runs.size()));
            out.runs_executed = runs.size();
            stitcher.restitch(runs, out);
        }
    }
    return out;
}

}  // namespace fingrav::core

#include "fingrav/binning.hpp"

#include <cmath>

#include "support/histogram.hpp"
#include "support/logging.hpp"

namespace fingrav::core {

ExecutionBinner::ExecutionBinner(double margin) : margin_(margin)
{
    if (margin < 0.0 || margin > 0.5)
        support::fatal("ExecutionBinner: margin ", margin,
                       " outside [0, 0.5]");
}

BinningResult
ExecutionBinner::select(
    const std::vector<support::Duration>& exec_times) const
{
    std::vector<double> us;
    us.reserve(exec_times.size());
    for (const auto& t : exec_times)
        us.push_back(t.toMicros());

    const auto cluster = support::modalCluster(us, margin_);

    BinningResult out;
    out.total_runs = exec_times.size();
    out.bin_center = support::Duration::micros(cluster.center);
    out.golden_runs = cluster.indices;
    return out;
}

BinningResult
ExecutionBinner::selectAround(
    const std::vector<support::Duration>& exec_times,
    support::Duration target) const
{
    if (target.nanos() <= 0)
        support::fatal("ExecutionBinner::selectAround: non-positive target");
    BinningResult out;
    out.total_runs = exec_times.size();
    out.bin_center = target;
    const double c = target.toMicros();
    for (std::size_t i = 0; i < exec_times.size(); ++i) {
        const double t = exec_times[i].toMicros();
        if (std::fabs(t - c) <= margin_ * c)
            out.golden_runs.push_back(i);
    }
    return out;
}

}  // namespace fingrav::core

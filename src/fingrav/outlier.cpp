#include "fingrav/outlier.hpp"

#include <algorithm>
#include <sstream>
#include <utility>
#include <vector>

#include "support/logging.hpp"
#include "support/statistics.hpp"

namespace fingrav::core {

OutlierProfiler::OutlierProfiler(runtime::HostRuntime& host,
                                 ProfilerOptions opts, support::Rng rng)
    : host_(host), opts_(opts), rng_(std::move(rng))
{
}

OutlierProfileResult
OutlierProfiler::profile(const kernels::KernelModelPtr& kernel,
                         double min_outlier_gap)
{
    if (min_outlier_gap <= 0.0)
        support::fatal("OutlierProfiler: min_outlier_gap must be positive");

    OutlierProfileResult result;

    // Stage 1: the standard common-case campaign.  Its binning result
    // tells us both the modal time and which runs fell outside.
    ProfilerOptions common_opts = opts_;
    common_opts.target_bin.reset();
    common_opts.binning = true;
    {
        Profiler profiler(host_, common_opts, rng_.fork(1));
        result.common = profiler.profile(kernel);
    }

    // Identify the slowest outlier cluster: the paper's outliers are
    // slower executions (allocation-unlucky runs).  We approximate the
    // cluster centre as the median of times that exceed the modal bin by
    // min_outlier_gap.
    const double modal_us = result.common.binning.bin_center.toMicros();
    // Re-deriving per-run times from the profile points would undercount
    // discarded runs, so run a light timing-only probe: execute extra runs
    // and collect SSP execution times without power capture.
    RunExecutor exec(host_, rng_.fork(2));
    RunPlan plan;
    plan.main = kernel;
    plan.device = opts_.device;
    plan.main_execs_per_block = result.common.ssp_exec_index + 1;
    std::vector<double> outlier_times_us;
    const std::size_t probes =
        std::max<std::size_t>(60, result.common.runs_executed / 2);
    for (std::size_t r = 0; r < probes; ++r) {
        const auto rec = exec.executeRun(plan, r, /*with_power=*/false);
        const double t =
            rec.mainExecDuration(rec.main_exec_indices.size() - 1)
                .toMicros();
        if (t > modal_us * (1.0 + min_outlier_gap))
            outlier_times_us.push_back(t);
    }

    if (outlier_times_us.empty()) {
        support::warn("OutlierProfiler: no outlier executions beyond ",
                      min_outlier_gap * 100.0, "% of the modal time in ",
                      probes, " probe runs");
        result.outlier_found = false;
        return result;
    }
    result.outlier_found = true;
    result.outlier_target =
        support::Duration::micros(support::medianInPlace(outlier_times_us));

    // Stage 2: re-run with step 6 redirected at the outlier bin.  More
    // runs are necessary, as the paper warns — the bin is sparsely
    // populated (we scale by the inverse outlier rate, capped at 3x).
    ProfilerOptions outlier_opts = opts_;
    outlier_opts.target_bin = result.outlier_target;
    const double outlier_rate =
        static_cast<double>(outlier_times_us.size()) /
        static_cast<double>(probes);
    const double scale =
        std::clamp(0.25 / std::max(outlier_rate, 0.02), 1.0, 3.0);
    const std::size_t base_runs =
        opts_.runs_override.value_or(result.common.guidance.runs);
    outlier_opts.runs_override = static_cast<std::size_t>(
        static_cast<double>(base_runs) * scale);
    {
        Profiler profiler(host_, outlier_opts, rng_.fork(3));
        result.outlier = profiler.profile(kernel);
    }
    return result;
}

}  // namespace fingrav::core

namespace fingrav::kernels {

PhaseSlice::PhaseSlice(KernelModelPtr base, double from, double to)
    : base_(std::move(base)), from_(from), to_(to)
{
    if (!base_)
        fingrav::support::fatal("PhaseSlice: null base kernel");
    if (from < 0.0 || to > 1.0 || to <= from)
        fingrav::support::fatal("PhaseSlice: invalid slice [", from, ", ",
                                to, ")");
}

std::string
PhaseSlice::label() const
{
    std::ostringstream oss;
    oss << base_->label() << "[" << static_cast<int>(from_ * 100.0) << "-"
        << static_cast<int>(to_ * 100.0) << "%]";
    return oss.str();
}

sim::KernelWork
PhaseSlice::workAt(double warmth) const
{
    sim::KernelWork work = base_->workAt(warmth);
    work.label = label();
    // The slice executes its share of the workgroups; utilization is that
    // of the base kernel while resident.  The artificial termination adds
    // a small drain/relaunch overhead at the cut (idle wavefront drain).
    const double frac = to_ - from_;
    work.nominal_duration =
        work.nominal_duration * frac +
        support::Duration::micros(1.0);
    return work;
}

}  // namespace fingrav::kernels

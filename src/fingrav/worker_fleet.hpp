#ifndef FINGRAV_FINGRAV_WORKER_FLEET_HPP_
#define FINGRAV_FINGRAV_WORKER_FLEET_HPP_

/**
 * @file
 * Persistent worker fleet with cost-aware pull dispatch.
 *
 * ShardBackend re-pays spawn + handshake on every execute() and
 * partitions specs by static round-robin, so one long scenario
 * straggles its whole shard while other workers sit idle.  This file
 * replaces both costs:
 *
 *  - **WorkerFleet** keeps `fingrav_cli --serve` subprocesses resident
 *    across dispatches.  A serve worker's loop (runtime/shard_worker)
 *    answers any number of kShardRequest frames until EOF or an
 *    explicit kShutdown, and idle residents are probed with kPing
 *    (answered kPong) at acquire time so a worker that died between
 *    dispatches is respawned instead of trusted.  Spawn failures and
 *    keepalive deaths are journaled; `crash_loop_spawns` consecutive
 *    spawn failures disable the fleet for its remaining lifetime (the
 *    environment, not the work, is broken).
 *
 *  - **FleetBackend** dispatches *one spec per request* from a shared
 *    queue sorted longest-predicted-first by core::CostModel.  A worker
 *    that finishes its spec pulls the next one — pull-based stealing
 *    with no partition to mis-balance, so the skewed-campaign straggler
 *    tail collapses to (roughly) the longest single spec.  Results are
 *    slot-addressed, so placement, pull order and worker count are
 *    invisible in the output: execute() is bit-identical to
 *    ThreadPoolBackend for any fleet size (tests/fleet_test.cpp,
 *    bench_fleet's hard-fail gate).
 *
 * Supervision (rehosted from ShardBackend, same taxonomy): a worker
 * that dies, stalls past its I/O budget, or streams corruption forfeits
 * only the one spec it was running.  The slot re-queues under seeded
 * exponential backoff, a replacement worker is spawned into the same
 * fleet seat, and a spec that kills `quarantine_deaths` workers is
 * quarantined to the in-process path.  Slots that exhaust
 * `max_retries` redispatches — or find no live worker — fall back to
 * ThreadPoolBackend execution, loudly, in the degradation journal.
 * Fault plans address workers as (shard = fleet seat, attempt = spawn
 * generation of that seat); worker-site faults count result frames over
 * the worker's *lifetime*, matching the persistent serve loop.
 */

#include <atomic>
#include <cstddef>
#include <cstdint>
#include <string>
#include <vector>

#include "fingrav/cost_model.hpp"
#include "fingrav/execution_backend.hpp"
#include "runtime/worker_channel.hpp"
#include "support/fault_injector.hpp"
#include "support/run_journal.hpp"

namespace fingrav::core {

/** WorkerFleet / FleetBackend configuration. */
struct FleetOptions {
    /** Fleet seats: resident worker subprocesses kept across
     *  dispatches.  Clamped to the spec count per dispatch (surplus
     *  seats stay empty until a larger dispatch needs them); 0 is a
     *  user error. */
    std::size_t workers = 2;

    /**
     * Worker argv (argv[0] = executable path).  Empty selects
     * {"./fingrav_cli", "--serve"} (cwd-relative); callers that know
     * their own argv[0] should pass defaultServeCommand(argv0).
     */
    std::vector<std::string> worker_command;

    /** Thread budget of the in-process fallback path; 0 = hardware
     *  concurrency.  Results are bit-identical for any value. */
    std::size_t fallback_threads = 0;

    /** Per-syscall I/O inactivity timeout, ms; 0 waits forever (see
     *  ShardOptions::io_timeout_ms — same semantics per frame read). */
    long io_timeout_ms = 0;

    /** Per-spec wall-clock deadline, ms, armed when the spec is sent;
     *  0 disables.  One spec per request makes this exact, not the
     *  `x slots` approximation the shard drain needs. */
    long spec_deadline_ms = 0;

    /** Keepalive probe budget, ms: how long an idle resident gets to
     *  answer kPing before it is declared dead and respawned. */
    long keepalive_timeout_ms = 1000;

    /** Redispatch budget per slot before it falls back in-process. */
    std::size_t max_retries = 2;

    /** A spec whose worker died this many times is quarantined. */
    std::size_t quarantine_deaths = 2;

    /** Consecutive spawn failures that disable the fleet for the rest
     *  of its lifetime (crash-loop guard). */
    std::size_t crash_loop_spawns = 3;

    /** Exponential backoff before each redispatch: event e (1-based)
     *  sleeps `min(backoff_cap_ms, backoff_base_ms << (e-1))` scaled by
     *  jitter in [0.5, 1.5) from a stream seeded with backoff_seed. */
    long backoff_base_ms = 25;
    long backoff_cap_ms = 2000;
    std::uint64_t backoff_seed = 0;

    /** Scripted faults (support/fault_injector.hpp): spawn site keyed
     *  (seat, spawn generation); worker sites shipped as sub-plans.
     *  Empty in production. */
    support::FaultPlan fault_plan;

    /** Cost predictor driving longest-predicted-first dispatch; a
     *  default-constructed (uncalibrated) model sorts by raw work.
     *  Callers may calibrate it against recorded campaigns first. */
    CostModel cost_model;
};

/** What one FleetBackend::execute() call observed. */
struct FleetStats {
    std::size_t workers_spawned = 0;   ///< spawns this dispatch (0 = warm)
    std::size_t workers_live = 0;      ///< residents alive at dispatch end
    std::size_t keepalive_failures = 0;///< residents found dead at acquire
    std::size_t worker_failures = 0;   ///< workers lost mid-dispatch
    std::size_t remote_specs = 0;      ///< results received over the wire
    std::size_t fallback_specs = 0;    ///< specs re-run in-process
    std::size_t local_specs = 0;       ///< profile_fn specs (never shipped)
    std::size_t cached_specs = 0;      ///< specs served by the cache
    std::size_t spawn_failures = 0;    ///< spawns that failed
    std::size_t pulls = 0;             ///< specs pulled beyond each
                                       ///< worker's first assignment
    std::size_t retried_specs = 0;     ///< slot redispatches
    std::size_t quarantined_specs = 0; ///< specs flagged as worker-killers
    bool crash_loop = false;           ///< fleet disabled by spawn failures
    /** Backoff slept before each redispatch, ms. */
    std::vector<long> backoff_ms;
    /** Slots in first-dispatch order (longest-predicted-first; the
     *  cost-model scheduling observable tests assert on). */
    std::vector<std::size_t> dispatch_order;
    /** Every degradation this dispatch, in order; empty = clean. */
    support::RunJournal journal;
};

/**
 * The resident worker pool: spawn/probe/retire/shutdown of `--serve`
 * subprocesses, one per fleet seat.  Owns the processes and their
 * pipes; knows nothing about specs or scheduling (FleetBackend does).
 * Degradations it observes land in journal(); callers fold the events
 * their call produced via journal().eventsSince(mark).
 */
class WorkerFleet {
  public:
    explicit WorkerFleet(FleetOptions opts);
    ~WorkerFleet();
    WorkerFleet(const WorkerFleet&) = delete;
    WorkerFleet& operator=(const WorkerFleet&) = delete;

    /** How ensure() left a seat. */
    enum class Ensure { kAlreadyLive, kSpawned, kFailed };

    const FleetOptions& options() const { return opts_; }

    /** Fleet seats (fixed at construction). */
    std::size_t size() const { return members_.size(); }

    bool live(std::size_t seat) const { return members_[seat].live; }

    /** Driver write/read fds of a live seat. */
    int writeFd(std::size_t seat) const
    {
        return members_[seat].proc.to_child;
    }
    int readFd(std::size_t seat) const
    {
        return members_[seat].proc.from_child;
    }

    /** Spawn generation of a seat (0 before the first spawn). */
    std::size_t spawnRound(std::size_t seat) const
    {
        return members_[seat].spawn_round;
    }

    /**
     * Make a seat live: no-op when it already is, otherwise spawn a
     * worker into it (fault-injected spawn failures included).  On
     * failure the seat stays dead, the journal records it, and enough
     * consecutive failures trip the crash-loop guard (disabled()).
     */
    Ensure ensure(std::size_t seat);

    /**
     * Probe a live resident with kPing.  A wrong/absent kPong retires
     * the seat (journaled) and returns false; callers respawn via
     * ensure().  False on a dead seat.
     */
    bool ping(std::size_t seat);

    /**
     * Retire a seat: kill its process group (when `kill`; a worker
     * already gone just gets reaped), close the pipes, mark it dead.
     */
    void retire(std::size_t seat, bool kill);

    /** Send kShutdown to every live resident and reap them (graceful,
     *  bounded; stragglers are killed).  Idempotent. */
    void shutdownAll();

    /** Crash-loop guard tripped: no further spawns this lifetime. */
    bool disabled() const { return disabled_; }

    /** Worker processes spawned over the fleet's lifetime. */
    std::size_t lifetimeSpawns() const { return lifetime_spawns_; }

    /** Fleet-lifetime degradation journal (see class comment). */
    const support::RunJournal& journal() const { return journal_; }

  private:
    struct Member {
        runtime::WorkerProcess proc;
        bool live = false;
        std::size_t spawn_round = 0;  ///< next spawn's fault coordinate
    };

    FleetOptions opts_;
    std::vector<Member> members_;
    support::FaultInjector injector_;
    support::RunJournal journal_;
    std::size_t consecutive_spawn_failures_ = 0;
    std::size_t lifetime_spawns_ = 0;
    bool disabled_ = false;
};

/**
 * Cost-scheduled placement over a persistent WorkerFleet.
 *
 * Not reentrant (same contract as ShardBackend): execute() accumulates
 * lastStats() and drives the fleet's pipes, so one instance serves one
 * run at a time; overlap is a FatalError.  The fleet lives as long as
 * the backend — back-to-back execute() calls reuse the residents, which
 * is the spawn-amortization win bench_fleet measures.
 */
class FleetBackend final : public ExecutionBackend {
  public:
    explicit FleetBackend(FleetOptions opts);

    const char* name() const override { return "fleet"; }

    std::vector<ProfileSet> execute(const std::vector<ScenarioSpec>& specs,
                                    const sim::MachineConfig& cfg) override;

    /** Observations of the most recent execute() call. */
    const FleetStats& lastStats() const { return stats_; }

    /** The resident pool (kept across execute() calls). */
    WorkerFleet& fleet() { return fleet_; }

    const FleetOptions& options() const { return fleet_.options(); }

  private:
    std::vector<ProfileSet> executeUncached(
        const std::vector<ScenarioSpec>& specs,
        const sim::MachineConfig& cfg);

    WorkerFleet fleet_;
    FleetStats stats_;
    std::atomic<bool> executing_{false};  ///< reentrancy guard
};

/**
 * The default fleet-worker argv for a driver whose own executable path
 * is `argv0`: {"<dir(argv0)>/fingrav_cli", "--serve"} (the CLI itself
 * gets {argv0, "--serve"}) — the persistent sibling of
 * defaultWorkerCommand().
 */
std::vector<std::string> defaultServeCommand(const std::string& argv0);

}  // namespace fingrav::core

#endif  // FINGRAV_FINGRAV_WORKER_FLEET_HPP_

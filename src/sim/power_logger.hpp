#ifndef FINGRAV_SIM_POWER_LOGGER_HPP_
#define FINGRAV_SIM_POWER_LOGGER_HPP_

/**
 * @file
 * The on-GPU averaging power logger (paper tenet S1).
 *
 * Models the telemetry the paper builds on: "each power sample is the
 * average of multiple instantaneous power readings in the last 1ms"
 * (Section IV-A).  The logger lives on the GPU clock: windows are
 * contiguous, aligned to multiples of the window length *in GPU time*, and
 * each emitted sample carries the GPU timestamp-counter value at the window
 * end.  It is agnostic of kernel start/end events — re-aligning samples
 * into CPU time is the job of the FinGraV TimeSync stage (tenet S2).
 *
 * The same class models external coarse loggers (amd-smi style, Section VI)
 * by choosing a longer window.
 *
 * The device feeds the logger piecewise-constant power slices; the logger
 * splits slices exactly at window boundaries, so a window's reported power
 * is the exact time-average of instantaneous power over that window (plus
 * optional Gaussian measurement noise per rail).
 *
 * Accounting is *grouping-invariant*: contiguous slices carrying bitwise
 * equal rail power extend a pending constant-power segment (exact integer
 * nanosecond spans); the floating-point energy product is taken once per
 * segment per window, when the segment closes.  Delivering a stretch as
 * one bulk slice or as many sub-slices therefore yields bit-identical
 * samples — the property the event-driven device stepping relies on
 * (see docs/PERFORMANCE.md).  The same invariance is what lets the node
 * stepper split stretches at fabric epoch barriers for free: a contended
 * collective phase arrives as ordinary constant-power slices at the
 * stretched utilization — no per-quantum re-slicing — and an epoch cut
 * inside a constant-power interval cannot change any emitted sample.
 */

#include <cstdint>
#include <optional>
#include <vector>

#include "sim/clock_domain.hpp"
#include "sim/power_model.hpp"
#include "sim/sample_columns.hpp"
#include "support/rng.hpp"
#include "support/time_types.hpp"

namespace fingrav::sim {

/** Windowed-averaging power logger on the GPU clock. */
class PowerLogger {
  public:
    /**
     * @param window      Averaging window (1 ms models the paper's logger).
     * @param gpu_clock   Clock domain whose counter timestamps the samples.
     * @param noise_w     Std-dev of per-rail measurement noise (0 = exact).
     * @param rng         Noise stream (unused when noise_w == 0).
     */
    PowerLogger(support::Duration window, const ClockDomain& gpu_clock,
                double noise_w, support::Rng rng);

    /**
     * Account a slice of constant power.
     *
     * Slices must be delivered in non-decreasing master-time order and must
     * not overlap; gaps are not allowed (the device integrates continuously
     * while the logger is enabled).  A slice may span any number of whole
     * windows — the bulk path emits every completed window in one pass.
     *
     * @param master_start Slice start on the master axis.
     * @param dt           Slice length (master time).
     * @param rails        Instantaneous rail power during the slice.
     */
    void addSlice(support::SimTime master_start, support::Duration dt,
                  const RailPower& rails);

    /**
     * Next window-grid boundary strictly after `gpu_now` (GPU-domain ns).
     * The grid is fixed by the window length; capture start/stop only
     * selects which grid cells emit samples.
     */
    std::int64_t
    nextWindowEndGpuNs(std::int64_t gpu_now) const
    {
        const std::int64_t w = window_.nanos();
        return (gpu_now / w + 1) * w;
    }

    /** Pre-grow the sample columns by `n` additional samples. */
    void
    reserveSamples(std::size_t n)
    {
        samples_.reserve(samples_.size() + n);
    }

    /** Enable capture; samples are appended from the next window boundary. */
    void start(support::SimTime master_now);

    /** Disable capture (the partially filled window is discarded). */
    void stop();

    /** True while capturing. */
    bool capturing() const { return capturing_; }

    /**
     * All samples captured since construction, as columns: samples are
     * *born* columnar here (one append per field as each window closes)
     * and stay columnar through RunRecord into the stitcher — the row
     * view (SampleColumns::operator[]) is for point-wise consumers.
     */
    const SampleColumns& samples() const { return samples_; }

    /** Drop captured samples (capture state is unaffected). */
    void clearSamples() { samples_.clear(); }

    /** The averaging window. */
    support::Duration window() const { return window_; }

  private:
    /** Close the current window and emit a sample. */
    void emitWindow(std::int64_t window_end_gpu_ns);

    /** Fold the pending constant-power segment into the window energy. */
    void flushSegment();

    support::Duration window_;
    const ClockDomain& gpu_clock_;
    double noise_w_;
    support::Rng rng_;

    bool capturing_ = false;
    /** GPU-domain ns of the start of the currently accumulating window. */
    std::int64_t window_start_gpu_ns_ = 0;
    /** Energy accumulated in the current window, W * gpu-ns. */
    double acc_xcd_ = 0.0;
    double acc_iod_ = 0.0;
    double acc_hbm_ = 0.0;
    double acc_misc_ = 0.0;
    /** Pending constant-power segment of the current window. */
    RailPower seg_rails_;
    std::int64_t seg_span_ns_ = 0;

    SampleColumns samples_;
};

}  // namespace fingrav::sim

#endif  // FINGRAV_SIM_POWER_LOGGER_HPP_

#include "sim/event_queue.hpp"

#include <utility>

#include "support/logging.hpp"

namespace fingrav::sim {

void
EventQueue::schedule(support::SimTime when, Callback fn)
{
    if (when < now_)
        support::fatal("EventQueue: scheduling into the past (",
                       when.nanos(), "ns < now ", now_.nanos(), "ns)");
    FINGRAV_ASSERT(fn != nullptr, "null event callback");
    heap_.push(Entry{when, next_seq_++, std::move(fn)});
}

support::SimTime
EventQueue::nextTime() const
{
    FINGRAV_ASSERT(!heap_.empty(), "nextTime() on empty queue");
    return heap_.top().when;
}

std::size_t
EventQueue::runUntil(support::SimTime limit)
{
    std::size_t fired = 0;
    while (!heap_.empty() && heap_.top().when <= limit) {
        // Copy out before pop so the callback may schedule new events.
        Entry e = heap_.top();
        heap_.pop();
        now_ = e.when;
        e.fn();
        ++fired;
    }
    if (limit > now_)
        now_ = limit;
    return fired;
}

}  // namespace fingrav::sim

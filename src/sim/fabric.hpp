#ifndef FINGRAV_SIM_FABRIC_HPP_
#define FINGRAV_SIM_FABRIC_HPP_

/**
 * @file
 * Infinity-Fabric-style node interconnect: pricing model and shared-node
 * bandwidth arbiter.
 *
 * The paper's node is an 8x MI300X Infinity Platform: every GPU connects to
 * the seven others with 64 GB/s unidirectional links (Section II-A).  RCCL
 * runs ring collectives across these links; FabricModel prices an
 * N-GPU ring collective with the standard alpha-beta formulation:
 *
 *   all-gather:  t = steps * hop_latency + (N-1)/N * size / achievable_bw
 *   all-reduce:  reduce-scatter + all-gather (2x the data volume) plus a
 *                small per-element reduction cost on the XCDs
 *
 * where achievable_bw aggregates all outbound links at a tunable
 * efficiency.  Latency- vs bandwidth-bound classification (Section V-A)
 * falls out of the same formula: a size is latency-bound while the
 * alpha term dominates.
 *
 * NodeFabric is the node-level *resource* built on top of that pricing: a
 * ring collective already saturates the aggregate of a GPU's links, so
 * concurrent transfers share the same wires.  Each device registers the
 * bandwidth demand of its running node-fabric kernels (keyed by the
 * transfer id, KernelWork::fabric_group, so the per-device copies of one
 * collective are counted once); when the distinct-transfer demand total
 * exceeds capacity, every participant's progress stretches by the
 * oversubscription factor (fair share) and the links run saturated —
 * longer, hotter collectives, exactly the contended-phase power signature
 * the paper's Fig. 10 analysis builds on.  Demand changes are published in
 * *epochs* committed by Simulation between stepping barriers, which keeps
 * device advancement order-independent (docs/ARCHITECTURE.md).
 */

#include <atomic>
#include <cstddef>
#include <cstdint>
#include <optional>
#include <vector>

#include "support/time_types.hpp"
#include "support/units.hpp"

namespace fingrav::sim {

struct MachineConfig;

/** Node-level collective cost model over the GPU-to-GPU fabric. */
class FabricModel {
  public:
    /**
     * @param gpus            Participating GPUs (ring size).
     * @param links_per_gpu   Outbound links usable by concurrent rings.
     * @param link_bandwidth  Unidirectional bandwidth per link, B/s.
     */
    FabricModel(std::size_t gpus, std::size_t links_per_gpu,
                support::BytesPerSecond link_bandwidth);

    /** Build from a machine description (node fields). */
    static FabricModel fromConfig(const MachineConfig& cfg);

    /** End-to-end all-gather time for `bytes` of payload per GPU result. */
    support::Duration allGatherTime(support::Bytes bytes) const;

    /** End-to-end all-reduce time for `bytes` of payload. */
    support::Duration allReduceTime(support::Bytes bytes) const;

    /** Aggregate achievable bandwidth across rings, B/s. */
    support::BytesPerSecond achievableBandwidth() const;

    /** Fabric utilization fraction during a transfer moving bytes/t. */
    double utilization(support::Bytes bytes, support::Duration t) const;

    /** Per-ring-step latency (software + SerDes + switch traversal). */
    support::Duration hopLatency() const { return hop_latency_; }

    /** Fixed collective setup latency (kernel launch, channel setup). */
    support::Duration baseLatency() const { return base_latency_; }

    /** Ring size. */
    std::size_t gpus() const { return gpus_; }

  private:
    std::size_t gpus_;
    std::size_t links_per_gpu_;
    support::BytesPerSecond link_bandwidth_;
    double efficiency_ = 0.78;  ///< achieved fraction of aggregate link bw
    support::Duration hop_latency_ = support::Duration::micros(2.2);
    support::Duration base_latency_ = support::Duration::micros(7.0);
};

/** One transfer's registered demand on the shared node fabric. */
struct FabricDemand {
    std::uint64_t group = 0;  ///< transfer id (KernelWork::fabric_group)
    double demand = 0.0;      ///< fraction of per-GPU achievable fabric bw

    bool operator==(const FabricDemand&) const = default;
};

/**
 * Node-level shared-fabric bandwidth arbiter (owned by Simulation).
 *
 * Devices post the demand of their running node-fabric kernels into a
 * per-device *pending* slot (postDemand); Simulation copies pending to the
 * *committed* view at epoch barriers (commit), bumping the epoch counter
 * when anything changed.  Between commits the committed view is immutable,
 * so devices advancing in parallel read a consistent snapshot and the
 * result is bit-identical to serial advancement in any order.
 *
 * Thread-safety contract (parallel node stepping): during an epoch each
 * device may call postDemand on its own slot, and sharedDemand / epoch /
 * noteRetired concurrently; allocGroup, noteSubmitted and commit are
 * host-thread-only, between epochs.
 */
class NodeFabric {
  public:
    /**
     * @param cfg      Machine description (fabric fields; the pricing
     *                 model is available when cfg.node_gpus >= 2).
     * @param devices  Instantiated GPU count (demand-slot count; may be
     *                 smaller than cfg.node_gpus for single-GPU sims).
     */
    NodeFabric(const MachineConfig& cfg, std::size_t devices);

    NodeFabric(const NodeFabric&) = delete;
    NodeFabric& operator=(const NodeFabric&) = delete;

    /** Fresh transfer id (> 0) for one inter-GPU transfer. */
    std::uint64_t allocGroup() { return next_group_++; }

    /** A node-fabric kernel entered a device queue. */
    void
    noteSubmitted()
    {
        outstanding_.fetch_add(1, std::memory_order_relaxed);
    }

    /** A node-fabric kernel completed (callable from stepping threads). */
    void
    noteRetired()
    {
        outstanding_.fetch_sub(1, std::memory_order_relaxed);
    }

    /**
     * True while any node-fabric kernel is queued or running anywhere,
     * or host-injected background demand is active — the runtime routes
     * per-device synchronization through the coupled node stepper while
     * this holds.
     */
    bool
    coupled() const
    {
        return outstanding_.load(std::memory_order_relaxed) > 0 ||
               injected_;
    }

    /** Replace `device`'s pending demand list (its running transfers). */
    void postDemand(std::size_t device,
                    const std::vector<FabricDemand>& demands);

    /**
     * Replace the host-injected background demand (scenario-layer
     * environment pressure; runtime/background_channel.hpp).  Injected
     * transfers occupy a dedicated arbiter slot beyond the device slots
     * and participate in the distinct-transfer total exactly like remote
     * kernels' demand.  Host-thread-only, between advances; published at
     * the next epoch commit.
     */
    void injectDemand(const std::vector<FabricDemand>& demands);

    /**
     * Total node demand seen by `device`: its own (live, uncommitted)
     * demands plus the committed demands of other devices, counting each
     * distinct transfer once — remote copies of a transfer the device
     * itself runs are the same bytes and are skipped.
     */
    double sharedDemand(std::size_t device,
                        const std::vector<FabricDemand>& own) const;

    /** Publish pending demands; returns true (and bumps the epoch) on change. */
    bool commit();

    /** Committed-view version; devices re-price contention when it moves. */
    std::uint64_t epoch() const { return epoch_; }

    /** Committed distinct-transfer demand total (tests/introspection). */
    double nodeDemand() const;

    /** Fair-share slowdown of node-fabric transfers at committed demand. */
    double stretch() const;

    /** Per-kernel pricing model (absent when cfg.node_gpus < 2). */
    const std::optional<FabricModel>& model() const { return model_; }

  private:
    /**
     * Distinct-transfer demand total: `own` plus the committed demands
     * of every device except `exclude_device`, each group counted once.
     */
    double distinctDemand(std::size_t exclude_device,
                          const std::vector<FabricDemand>& own) const;

    std::optional<FabricModel> model_;
    std::size_t devices_ = 0;  ///< device slot count (slot devices_ = injection)
    std::vector<std::vector<FabricDemand>> pending_;
    std::vector<std::vector<FabricDemand>> committed_;
    std::uint64_t epoch_ = 0;
    std::uint64_t next_group_ = 1;
    std::atomic<std::int64_t> outstanding_{0};
    bool injected_ = false;  ///< host-injected demand pending/active
};

}  // namespace fingrav::sim

#endif  // FINGRAV_SIM_FABRIC_HPP_

#ifndef FINGRAV_SIM_FABRIC_HPP_
#define FINGRAV_SIM_FABRIC_HPP_

/**
 * @file
 * Infinity-Fabric-style node interconnect cost model.
 *
 * The paper's node is an 8x MI300X Infinity Platform: every GPU connects to
 * the seven others with 64 GB/s unidirectional links (Section II-A).  RCCL
 * runs ring collectives across these links; this model prices an
 * N-GPU ring collective with the standard alpha-beta formulation:
 *
 *   all-gather:  t = steps * hop_latency + (N-1)/N * size / achievable_bw
 *   all-reduce:  reduce-scatter + all-gather (2x the data volume) plus a
 *                small per-element reduction cost on the XCDs
 *
 * where achievable_bw aggregates all outbound links at a tunable
 * efficiency.  Latency- vs bandwidth-bound classification (Section V-A)
 * falls out of the same formula: a size is latency-bound while the
 * alpha term dominates.
 */

#include <cstddef>

#include "support/time_types.hpp"
#include "support/units.hpp"

namespace fingrav::sim {

struct MachineConfig;

/** Node-level collective cost model over the GPU-to-GPU fabric. */
class FabricModel {
  public:
    /**
     * @param gpus            Participating GPUs (ring size).
     * @param links_per_gpu   Outbound links usable by concurrent rings.
     * @param link_bandwidth  Unidirectional bandwidth per link, B/s.
     */
    FabricModel(std::size_t gpus, std::size_t links_per_gpu,
                support::BytesPerSecond link_bandwidth);

    /** Build from a machine description (node fields). */
    static FabricModel fromConfig(const MachineConfig& cfg);

    /** End-to-end all-gather time for `bytes` of payload per GPU result. */
    support::Duration allGatherTime(support::Bytes bytes) const;

    /** End-to-end all-reduce time for `bytes` of payload. */
    support::Duration allReduceTime(support::Bytes bytes) const;

    /** Aggregate achievable bandwidth across rings, B/s. */
    support::BytesPerSecond achievableBandwidth() const;

    /** Fabric utilization fraction during a transfer moving bytes/t. */
    double utilization(support::Bytes bytes, support::Duration t) const;

    /** Per-ring-step latency (software + SerDes + switch traversal). */
    support::Duration hopLatency() const { return hop_latency_; }

    /** Fixed collective setup latency (kernel launch, channel setup). */
    support::Duration baseLatency() const { return base_latency_; }

    /** Ring size. */
    std::size_t gpus() const { return gpus_; }

  private:
    std::size_t gpus_;
    std::size_t links_per_gpu_;
    support::BytesPerSecond link_bandwidth_;
    double efficiency_ = 0.78;  ///< achieved fraction of aggregate link bw
    support::Duration hop_latency_ = support::Duration::micros(2.2);
    support::Duration base_latency_ = support::Duration::micros(7.0);
};

}  // namespace fingrav::sim

#endif  // FINGRAV_SIM_FABRIC_HPP_

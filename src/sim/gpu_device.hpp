#ifndef FINGRAV_SIM_GPU_DEVICE_HPP_
#define FINGRAV_SIM_GPU_DEVICE_HPP_

/**
 * @file
 * The simulated GPU: execution engine + power/thermal/DVFS integration.
 *
 * A GpuDevice advances along the master time axis in *stretches*: maximal
 * intervals over which the set of resident kernels, their progress rates
 * and the instantaneous rail power are all constant.  A stretch ends at
 * the earliest of: the exact completion of a running kernel, the next
 * kernel-ready time, a capturing logger's next window-grid boundary, a
 * governor state event (idle park, excursion-hold expiry, boost-budget
 * expiry), the advancement limit, a thermal-feedback bound (power is held
 * constant per stretch while temperature feeds back into leakage power,
 * so a stretch may only run as far as temperature can drift by a small
 * epsilon; the cap loosens as the thermal RC converges), and — while the
 * DVFS governor is actively moving the clock — a bounded integration
 * quantum (MachineConfig::power_step) that preserves the legacy
 * control-loop dynamics.  Per stretch the device evaluates rail power once, feeds the
 * power loggers, steps the governor and thermal models with the exact
 * stretch length (both are exact-exponential and step-size independent),
 * and advances kernel progress analytically.  Idle and steady-state
 * stretches therefore cost one slice instead of thousands, while kernel
 * completions still split time exactly, so recorded execution intervals
 * are nanosecond-accurate (the execution-time binning methodology, tenet
 * S3, depends on measuring genuine sub-percent run-to-run variation).
 *
 * The legacy fixed-quantum engine (SteppingMode::kQuantum, retired after
 * one release as scheduled in ROADMAP.md) replayed the same stretch
 * schedule with a sub-sliced logger feed; the logger's grouping-invariant
 * accounting made both bit-identical, so the retirement changed no
 * output.  tests/stepping_equivalence_test.cpp now locks the event
 * engine against recorded golden outputs instead.
 *
 * Devices advance independently *within a fabric epoch*; the runtime
 * (src/runtime/) aligns them with the host timeline at interaction points
 * (launch, sync, log start), and Simulation's node stepper bounds each
 * advance at the next shared-fabric demand change (a remote collective
 * starting or completing), the fabric-demand stretch terminator.  When
 * attached to a NodeFabric the device posts the demand of its running
 * node-fabric kernels, folds the committed fair-share oversubscription
 * into its contention scalar, and re-prices whenever the fabric epoch
 * moves (docs/ARCHITECTURE.md).
 */

#include <cstdint>
#include <deque>
#include <memory>
#include <optional>
#include <string>
#include <vector>

#include "sim/clock_domain.hpp"
#include "sim/dvfs_governor.hpp"
#include "sim/fabric.hpp"
#include "sim/kernel_work.hpp"
#include "sim/machine_config.hpp"
#include "sim/power_logger.hpp"
#include "sim/power_model.hpp"
#include "sim/thermal.hpp"
#include "support/rng.hpp"
#include "support/time_types.hpp"

namespace fingrav::sim {

/** One simulated GPU with execution queues, power model and telemetry. */
class GpuDevice {
  public:
    /**
     * @param cfg        Machine description (copied).
     * @param rng        Device-private random stream (clock offset, noise).
     * @param device_id  Position in the node (0-based).
     */
    GpuDevice(const MachineConfig& cfg, support::Rng rng,
              std::size_t device_id);

    GpuDevice(const GpuDevice&) = delete;
    GpuDevice& operator=(const GpuDevice&) = delete;

    /** Completed-execution record with exact master-time bounds. */
    struct ExecutionRecord {
        std::uint64_t id = 0;
        std::string label;
        support::SimTime start;  ///< first cycle of execution (master time)
        support::SimTime end;    ///< completion (master time)
        std::size_t queue = 0;
    };

    /** Advancement-cost counters (see bench/bench_hotpath.cpp). */
    struct StepStats {
        std::uint64_t stretches = 0;  ///< constant-power intervals integrated
        std::uint64_t slices = 0;     ///< logger-feed slices (== stretches)
    };

    /**
     * Enqueue a kernel.
     *
     * @param work      The kernel invocation.
     * @param ready_at  Master time at which it may start (launch overhead
     *                  is applied by the runtime before calling this).
     * @param queue     Hardware queue; kernels in one queue run in order,
     *                  different queues run concurrently (with contention).
     * @return Execution id for matching against executionLog().
     */
    std::uint64_t submit(const KernelWork& work, support::SimTime ready_at,
                         std::size_t queue = 0);

    /** Advance the device state to `master` (never backwards). */
    void advanceTo(support::SimTime master);

    /**
     * Advance until all queues drain or `limit` is reached.
     *
     * @return The exact master time the device went idle (or `limit`).
     */
    support::SimTime advanceUntilIdle(support::SimTime limit);

    // ------------------------------------------------------------------
    // Node-fabric coupling (driven by Simulation's epoch stepper)
    // ------------------------------------------------------------------

    /**
     * Attach the node-level shared-fabric arbiter (Simulation only; must
     * outlive the device).  Unattached devices price fabric contention
     * from local demand alone, as before.
     */
    void attachFabric(NodeFabric* fabric) { fabric_ = fabric; }

    /**
     * Start any ready kernels and post the device's current node-fabric
     * demand, without advancing time.  Called by the node stepper before
     * each fabric commit so demand changes that are already due (starts
     * at the epoch boundary, harvested completions) are visible to it.
     */
    void pollFabricDemand();

    /**
     * Earliest master time at/after which this device's node-fabric
     * demand can change — the next start or completion of a node-fabric
     * kernel at current rates — capped at `limit`.  Refreshes queue state
     * (and fabric pricing) as a side effect; strictly after localNow()
     * whenever the device is behind `limit`.
     */
    support::SimTime nextFabricEvent(support::SimTime limit);

    /** True when nothing is running or queued. */
    bool idle() const;

    /** The device's position on the master time axis. */
    support::SimTime localNow() const { return now_; }

    /** The GPU timestamp-counter clock domain. */
    const ClockDomain& gpuClock() const { return gpu_clock_; }

    /**
     * Attach a power logger with the given averaging window.
     *
     * The device owns the logger; the reference stays valid for the device
     * lifetime.  noise_w < 0 selects the config default.
     */
    PowerLogger& addLogger(support::Duration window, double noise_w = -1.0);

    /** Completed executions in completion order. */
    const std::vector<ExecutionRecord>& executionLog() const
    {
        return execution_log_;
    }

    /** Forget completed-execution records (queues are unaffected). */
    void clearExecutionLog() { execution_log_.clear(); }

    /** Governor introspection (read-only). */
    const DvfsGovernor& governor() const { return governor_; }

    /** Junction temperature, degrees C. */
    double temperatureC() const { return thermal_.temperature(); }

    /** Instantaneous rail power at the current state. */
    RailPower currentPower() const;

    /** Machine description in force. */
    const MachineConfig& config() const { return cfg_; }

    /** Device id within the node. */
    std::size_t deviceId() const { return device_id_; }

    /** Advancement-cost counters since construction. */
    const StepStats& stepStats() const { return step_stats_; }

  private:
    struct QueueEntry {
        std::uint64_t id;
        KernelWork work;
        support::SimTime ready_at;
        double remaining_s;  ///< nominal-seconds of work left at the anchor
        std::optional<support::SimTime> started;
        /** Progress rate in force since rate_anchor (0 = needs computing). */
        double rate = 0.0;
        /** Progress last harvested into remaining_s at this master time. */
        support::SimTime rate_anchor;
        /** Exact completion time at the current rate. */
        support::SimTime completion_due;
    };

    /** Aggregate state of the queue fronts, valid while no event fires. */
    struct QueueState {
        bool dirty = true;
        UtilizationVector util;
        double contention = 1.0;
        std::size_t running = 0;
        bool active = false;
    };

    /** Start any queue-front kernels whose ready time has arrived. */
    void startReady();

    /** Mark queue state dirty when the fabric epoch moved since last seen. */
    void noteFabricEpoch();

    /** One pass over the queue fronts: utilization, contention, activity. */
    void refreshQueueState();

    /** Re-anchor progress and completion times of running kernels at `f`. */
    void refreshProgress(double f);

    /** Aggregate utilization and count of running kernels (oracle). */
    UtilizationVector aggregateUtil(std::size_t* running) const;

    /** Earliest capturing-logger window boundary after now_, capped. */
    support::SimTime nextLoggerCut(support::SimTime limit) const;

    /** Core stepping loop; stops at `limit` or (optionally) on idle. */
    support::SimTime stepLoop(support::SimTime limit, bool stop_on_idle);

    MachineConfig cfg_;
    std::size_t device_id_;
    support::Rng rng_;
    ClockDomain gpu_clock_;
    PowerModel power_;
    DvfsGovernor governor_;
    ThermalModel thermal_;
    NodeFabric* fabric_ = nullptr;        ///< owned by Simulation
    std::uint64_t fabric_epoch_seen_ = 0; ///< last committed view priced
    std::size_t fabric_kernels_ = 0;      ///< queued+running, this device
    std::vector<FabricDemand> fabric_demands_;  ///< scratch: running transfers

    support::SimTime now_;
    std::vector<std::deque<QueueEntry>> queues_;
    QueueState queue_state_;
    std::vector<ExecutionRecord> execution_log_;
    std::vector<std::unique_ptr<PowerLogger>> loggers_;
    std::uint64_t next_id_ = 1;
    StepStats step_stats_;
};

}  // namespace fingrav::sim

#endif  // FINGRAV_SIM_GPU_DEVICE_HPP_

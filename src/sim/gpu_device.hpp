#ifndef FINGRAV_SIM_GPU_DEVICE_HPP_
#define FINGRAV_SIM_GPU_DEVICE_HPP_

/**
 * @file
 * The simulated GPU: execution engine + power/thermal/DVFS integration.
 *
 * A GpuDevice advances along the master time axis in bounded slices
 * (MachineConfig::power_step while active).  Per slice it aggregates the
 * utilization of resident kernels, evaluates instantaneous rail power at
 * the governor's current operating point, feeds the slice to any attached
 * power loggers, steps the governor and thermal models, and integrates
 * kernel work progress (compute-bound work stretches under throttling).
 * Kernel completions split slices exactly, so recorded execution intervals
 * are nanosecond-accurate rather than quantized to the step size — the
 * execution-time binning methodology (tenet S3) depends on measuring
 * genuine sub-percent run-to-run variation.
 *
 * Devices advance independently; the runtime (src/runtime/) aligns them
 * with the host timeline at interaction points (launch, sync, log start).
 */

#include <cstdint>
#include <deque>
#include <memory>
#include <optional>
#include <string>
#include <vector>

#include "sim/clock_domain.hpp"
#include "sim/dvfs_governor.hpp"
#include "sim/kernel_work.hpp"
#include "sim/machine_config.hpp"
#include "sim/power_logger.hpp"
#include "sim/power_model.hpp"
#include "sim/thermal.hpp"
#include "support/rng.hpp"
#include "support/time_types.hpp"

namespace fingrav::sim {

/** One simulated GPU with execution queues, power model and telemetry. */
class GpuDevice {
  public:
    /**
     * @param cfg        Machine description (copied).
     * @param rng        Device-private random stream (clock offset, noise).
     * @param device_id  Position in the node (0-based).
     */
    GpuDevice(const MachineConfig& cfg, support::Rng rng,
              std::size_t device_id);

    GpuDevice(const GpuDevice&) = delete;
    GpuDevice& operator=(const GpuDevice&) = delete;

    /** Completed-execution record with exact master-time bounds. */
    struct ExecutionRecord {
        std::uint64_t id = 0;
        std::string label;
        support::SimTime start;  ///< first cycle of execution (master time)
        support::SimTime end;    ///< completion (master time)
        std::size_t queue = 0;
    };

    /**
     * Enqueue a kernel.
     *
     * @param work      The kernel invocation.
     * @param ready_at  Master time at which it may start (launch overhead
     *                  is applied by the runtime before calling this).
     * @param queue     Hardware queue; kernels in one queue run in order,
     *                  different queues run concurrently (with contention).
     * @return Execution id for matching against executionLog().
     */
    std::uint64_t submit(const KernelWork& work, support::SimTime ready_at,
                         std::size_t queue = 0);

    /** Advance the device state to `master` (never backwards). */
    void advanceTo(support::SimTime master);

    /**
     * Advance until all queues drain or `limit` is reached.
     *
     * @return The exact master time the device went idle (or `limit`).
     */
    support::SimTime advanceUntilIdle(support::SimTime limit);

    /** True when nothing is running or queued. */
    bool idle() const;

    /** The device's position on the master time axis. */
    support::SimTime localNow() const { return now_; }

    /** The GPU timestamp-counter clock domain. */
    const ClockDomain& gpuClock() const { return gpu_clock_; }

    /**
     * Attach a power logger with the given averaging window.
     *
     * The device owns the logger; the reference stays valid for the device
     * lifetime.  noise_w < 0 selects the config default.
     */
    PowerLogger& addLogger(support::Duration window, double noise_w = -1.0);

    /** Completed executions in completion order. */
    const std::vector<ExecutionRecord>& executionLog() const
    {
        return execution_log_;
    }

    /** Forget completed-execution records (queues are unaffected). */
    void clearExecutionLog() { execution_log_.clear(); }

    /** Governor introspection (read-only). */
    const DvfsGovernor& governor() const { return governor_; }

    /** Junction temperature, degrees C. */
    double temperatureC() const { return thermal_.temperature(); }

    /** Instantaneous rail power at the current state. */
    RailPower currentPower() const;

    /** Machine description in force. */
    const MachineConfig& config() const { return cfg_; }

    /** Device id within the node. */
    std::size_t deviceId() const { return device_id_; }

  private:
    struct QueueEntry {
        std::uint64_t id;
        KernelWork work;
        support::SimTime ready_at;
        double remaining_s;  ///< nominal-seconds of work left
        std::optional<support::SimTime> started;
    };

    /** Start any queue-front kernels whose ready time has arrived. */
    void startReady();

    /** Aggregate utilization and count of running kernels. */
    UtilizationVector aggregateUtil(std::size_t* running) const;

    /** Core stepping loop; stops at `limit` or (optionally) on idle. */
    support::SimTime stepLoop(support::SimTime limit, bool stop_on_idle);

    MachineConfig cfg_;
    std::size_t device_id_;
    support::Rng rng_;
    ClockDomain gpu_clock_;
    PowerModel power_;
    DvfsGovernor governor_;
    ThermalModel thermal_;

    support::SimTime now_;
    std::vector<std::deque<QueueEntry>> queues_;
    std::vector<ExecutionRecord> execution_log_;
    std::vector<std::unique_ptr<PowerLogger>> loggers_;
    std::uint64_t next_id_ = 1;
};

}  // namespace fingrav::sim

#endif  // FINGRAV_SIM_GPU_DEVICE_HPP_

#include "sim/thermal.hpp"

#include <cmath>

#include "support/logging.hpp"

namespace fingrav::sim {

void
ThermalModel::update(support::Duration dt, double power_w)
{
    FINGRAV_ASSERT(dt.nanos() >= 0, "negative thermal step ", dt.nanos());
    if (dt.nanos() == 0)
        return;
    const double target = steadyState(power_w);
    const double alpha =
        std::exp(-dt.toSeconds() / p_.time_constant.toSeconds());
    temp_c_ = target + (temp_c_ - target) * alpha;
}

}  // namespace fingrav::sim

#include "sim/fabric.hpp"

#include <algorithm>

#include "sim/machine_config.hpp"
#include "support/logging.hpp"

namespace fingrav::sim {

FabricModel::FabricModel(std::size_t gpus, std::size_t links_per_gpu,
                         support::BytesPerSecond link_bandwidth)
    : gpus_(gpus), links_per_gpu_(links_per_gpu),
      link_bandwidth_(link_bandwidth)
{
    if (gpus < 2)
        support::fatal("FabricModel: need at least 2 GPUs, got ", gpus);
    if (links_per_gpu == 0 || link_bandwidth <= 0.0)
        support::fatal("FabricModel: degenerate link configuration");
}

FabricModel
FabricModel::fromConfig(const MachineConfig& cfg)
{
    return FabricModel(cfg.node_gpus, cfg.fabric_links,
                       cfg.fabric_link_bandwidth);
}

support::BytesPerSecond
FabricModel::achievableBandwidth() const
{
    return static_cast<double>(links_per_gpu_) * link_bandwidth_ *
           efficiency_;
}

support::Duration
FabricModel::allGatherTime(support::Bytes bytes) const
{
    FINGRAV_ASSERT(bytes > 0, "all-gather of zero bytes");
    const auto n = static_cast<double>(gpus_);
    const double moved =
        static_cast<double>(bytes) * (n - 1.0) / n;
    const double bw_s = moved / achievableBandwidth();
    const double alpha_s =
        base_latency_.toSeconds() +
        (n - 1.0) * hop_latency_.toSeconds();
    return support::Duration::seconds(alpha_s + bw_s);
}

support::Duration
FabricModel::allReduceTime(support::Bytes bytes) const
{
    FINGRAV_ASSERT(bytes > 0, "all-reduce of zero bytes");
    const auto n = static_cast<double>(gpus_);
    // Ring all-reduce = reduce-scatter + all-gather: 2 * (N-1)/N the data,
    // 2 * (N-1) hops, plus a small reduction-compute term that matters only
    // for large payloads.
    const double moved =
        2.0 * static_cast<double>(bytes) * (n - 1.0) / n;
    const double bw_s = moved / achievableBandwidth();
    const double alpha_s =
        base_latency_.toSeconds() +
        2.0 * (n - 1.0) * hop_latency_.toSeconds();
    const double reduce_s = static_cast<double>(bytes) / 2.0e13;
    return support::Duration::seconds(alpha_s + bw_s + reduce_s);
}

double
FabricModel::utilization(support::Bytes bytes, support::Duration t) const
{
    if (t.nanos() <= 0)
        return 0.0;
    const auto n = static_cast<double>(gpus_);
    const double rate =
        static_cast<double>(bytes) * (n - 1.0) / n / t.toSeconds();
    const double peak =
        static_cast<double>(links_per_gpu_) * link_bandwidth_;
    return std::clamp(rate / peak, 0.0, 1.0);
}

// ---------------------------------------------------------------------------
// NodeFabric
// ---------------------------------------------------------------------------

NodeFabric::NodeFabric(const MachineConfig& cfg, std::size_t devices)
    // One demand slot per device plus the host-injection slot (index
    // `devices`), so injected background demand rides the same
    // pending/committed epoch machinery as kernel demand.
    : devices_(devices), pending_(devices + 1), committed_(devices + 1)
{
    if (devices == 0)
        support::fatal("NodeFabric: node must contain at least one GPU");
    if (cfg.node_gpus >= 2)
        model_.emplace(FabricModel::fromConfig(cfg));
}

void
NodeFabric::postDemand(std::size_t device,
                       const std::vector<FabricDemand>& demands)
{
    FINGRAV_ASSERT(device < devices_,
                   "NodeFabric: device index out of range");
    pending_[device] = demands;
}

void
NodeFabric::injectDemand(const std::vector<FabricDemand>& demands)
{
    pending_[devices_] = demands;
    injected_ = !demands.empty();
}

double
NodeFabric::distinctDemand(std::size_t exclude_device,
                           const std::vector<FabricDemand>& own) const
{
    double total = 0.0;
    for (const auto& d : own)
        total += d.demand;
    // Committed demands of the non-excluded devices, one contribution
    // per distinct transfer.  Copies of a transfer carry equal demand,
    // so the first sighting stands in for the group.
    std::vector<std::uint64_t> seen;
    for (std::size_t j = 0; j < committed_.size(); ++j) {
        if (j == exclude_device)
            continue;
        for (const auto& d : committed_[j]) {
            bool skip = false;
            for (const auto& o : own) {
                if (o.group == d.group) {
                    skip = true;
                    break;
                }
            }
            for (const auto g : seen) {
                if (g == d.group) {
                    skip = true;
                    break;
                }
            }
            if (skip)
                continue;
            seen.push_back(d.group);
            total += d.demand;
        }
    }
    return total;
}

double
NodeFabric::sharedDemand(std::size_t device,
                         const std::vector<FabricDemand>& own) const
{
    FINGRAV_ASSERT(device < devices_,
                   "NodeFabric: device index out of range");
    return distinctDemand(device, own);
}

bool
NodeFabric::commit()
{
    bool changed = false;
    for (std::size_t i = 0; i < pending_.size(); ++i) {
        if (pending_[i] != committed_[i]) {
            committed_[i] = pending_[i];
            changed = true;
        }
    }
    if (changed)
        ++epoch_;
    return changed;
}

double
NodeFabric::nodeDemand() const
{
    return distinctDemand(committed_.size(), {});
}

double
NodeFabric::stretch() const
{
    return std::max(1.0, nodeDemand());
}

}  // namespace fingrav::sim

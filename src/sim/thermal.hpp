#ifndef FINGRAV_SIM_THERMAL_HPP_
#define FINGRAV_SIM_THERMAL_HPP_

/**
 * @file
 * First-order RC package thermal model.
 *
 * dT/dt = (T_ambient + R * P - T) / tau.  The exact exponential solution is
 * applied per integration slice, so the model is step-size independent.
 * Temperature feeds back into leakage power (power_model) — the paper's SSP
 * profiles are "by definition specific to a given voltage-frequency setting"
 * and drift with the thermal state (Section IV-A, S4 discussion).
 */

#include "support/time_types.hpp"

namespace fingrav::sim {

/** Thermal RC parameters. */
struct ThermalParams {
    double ambient_c = 35.0;          ///< cold-plate / inlet temperature
    double resistance_c_per_w = 0.055; ///< junction-to-ambient, K/W
    support::Duration time_constant = support::Duration::seconds(1.5);
};

/** Package temperature state with exact exponential stepping. */
class ThermalModel {
  public:
    explicit ThermalModel(const ThermalParams& params)
        : p_(params), temp_c_(params.ambient_c)
    {
    }

    /** Advance the state by dt under constant dissipated power. */
    void update(support::Duration dt, double power_w);

    /** Current junction temperature, degrees C. */
    double temperature() const { return temp_c_; }

    /** Steady-state temperature for a constant power draw. */
    double
    steadyState(double power_w) const
    {
        return p_.ambient_c + p_.resistance_c_per_w * power_w;
    }

  private:
    ThermalParams p_;
    double temp_c_;
};

}  // namespace fingrav::sim

#endif  // FINGRAV_SIM_THERMAL_HPP_

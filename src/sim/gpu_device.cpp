#include "sim/gpu_device.hpp"

#include <algorithm>
#include <cmath>
#include <utility>

#include "support/logging.hpp"

namespace fingrav::sim {

namespace {

/** Work remainders below this are treated as complete (sub-ns). */
constexpr double kWorkEpsilonS = 1e-13;

}  // namespace

GpuDevice::GpuDevice(const MachineConfig& cfg, support::Rng rng,
                     std::size_t device_id)
    : cfg_(cfg), device_id_(device_id), rng_(std::move(rng)),
      gpu_clock_(
          // Each GPU boots at a different wall time: give the counter a
          // large random epoch offset so nothing accidentally relies on
          // GPU time resembling CPU time.
          support::Duration::seconds(rng_.uniform(1e3, 9e4)),
          cfg.gpu_clock_drift_ppm, cfg.timestamp_tick),
      power_(cfg.power), governor_(cfg.dvfs), thermal_(cfg.thermal),
      queues_(1)
{
}

std::uint64_t
GpuDevice::submit(const KernelWork& work, support::SimTime ready_at,
                  std::size_t queue)
{
    if (work.nominal_duration.nanos() <= 0)
        support::fatal("GpuDevice::submit: kernel '", work.label,
                       "' has non-positive duration");
    if (queue >= 16)
        support::fatal("GpuDevice::submit: queue ", queue,
                       " out of range (max 16 hardware queues)");
    if (queue >= queues_.size())
        queues_.resize(queue + 1);

    QueueEntry entry;
    entry.id = next_id_++;
    entry.work = work;
    // Work cannot start before the device's own present.
    entry.ready_at = std::max(ready_at, now_);
    entry.remaining_s = work.nominal_duration.toSeconds();
    queues_[queue].push_back(std::move(entry));
    return queues_[queue].back().id;
}

bool
GpuDevice::idle() const
{
    for (const auto& q : queues_) {
        if (!q.empty())
            return false;
    }
    return true;
}

void
GpuDevice::startReady()
{
    bool was_idle = true;
    for (const auto& q : queues_) {
        if (!q.empty() && q.front().started)
            was_idle = false;
    }
    for (auto& q : queues_) {
        if (q.empty())
            continue;
        QueueEntry& front = q.front();
        if (!front.started && front.ready_at <= now_) {
            front.started = now_;
            if (was_idle) {
                governor_.wake();
                was_idle = false;
            }
        }
    }
}

UtilizationVector
GpuDevice::aggregateUtil(std::size_t* running) const
{
    UtilizationVector agg;
    std::size_t n = 0;
    for (const auto& q : queues_) {
        if (!q.empty() && q.front().started) {
            agg = agg.saturatingAdd(q.front().work.util);
            ++n;
        }
    }
    if (running != nullptr)
        *running = n;
    return agg;
}

RailPower
GpuDevice::currentPower() const
{
    const UtilizationVector util = aggregateUtil(nullptr);
    return power_.instantaneous(util, governor_.frequencyRatio(),
                                thermal_.temperature());
}

PowerLogger&
GpuDevice::addLogger(support::Duration window, double noise_w)
{
    const double noise = noise_w < 0.0 ? cfg_.logger_noise_w : noise_w;
    loggers_.push_back(std::make_unique<PowerLogger>(
        window, gpu_clock_, noise,
        rng_.fork(1000 + loggers_.size())));
    return *loggers_.back();
}

void
GpuDevice::advanceTo(support::SimTime master)
{
    stepLoop(master, /*stop_on_idle=*/false);
}

support::SimTime
GpuDevice::advanceUntilIdle(support::SimTime limit)
{
    return stepLoop(limit, /*stop_on_idle=*/true);
}

support::SimTime
GpuDevice::stepLoop(support::SimTime limit, bool stop_on_idle)
{
    while (now_ < limit) {
        startReady();

        // Raw utilization demand (uncapped sums) for the contention model:
        // when concurrent queues oversubscribe a resource dimension —
        // including CU residency slots (occupancy) — every resident
        // kernel's progress is scaled by the peak oversubscription.
        double demand_occ = 0.0;
        double demand_xcd = 0.0;
        double demand_llc = 0.0;
        double demand_hbm = 0.0;
        double demand_fab = 0.0;
        std::size_t running = 0;
        for (const auto& q : queues_) {
            if (!q.empty() && q.front().started) {
                const UtilizationVector& u = q.front().work.util;
                demand_occ += u.xcd_occupancy;
                demand_xcd += u.xcd_issue;
                demand_llc += u.llc_bw;
                demand_hbm += u.hbm_bw;
                demand_fab += u.fabric_bw;
                ++running;
            }
        }
        const double contention =
            std::max({1.0, demand_occ, demand_xcd, demand_llc, demand_hbm,
                      demand_fab});
        const bool active = running > 0;

        const double f = governor_.frequencyRatio();

        // Candidate slice end: step quantum (finer while active), the
        // earliest kernel completion, the next kernel-ready time, and the
        // overall limit.
        support::Duration dt =
            active ? cfg_.power_step : cfg_.idle_step;
        if (limit - now_ < dt)
            dt = limit - now_;

        for (auto& q : queues_) {
            if (q.empty())
                continue;
            QueueEntry& front = q.front();
            if (front.started) {
                const double rate =
                    ((1.0 - front.work.freq_sensitivity) +
                     front.work.freq_sensitivity * f) /
                    contention;
                FINGRAV_ASSERT(rate > 0.0, "non-positive progress rate");
                const double complete_ns =
                    std::ceil(front.remaining_s / rate * 1e9);
                const auto d = support::Duration::nanos(
                    std::max<std::int64_t>(
                        1, static_cast<std::int64_t>(complete_ns)));
                if (d < dt)
                    dt = d;
            } else if (front.ready_at > now_ && front.ready_at - now_ < dt) {
                dt = front.ready_at - now_;
            }
        }

        if (dt.nanos() <= 0) {
            // Can only happen when limit == now_; nothing left to do.
            break;
        }

        // Evaluate power for the slice and integrate all models.
        const UtilizationVector util = aggregateUtil(nullptr);
        const RailPower rails =
            power_.instantaneous(util, f, thermal_.temperature());
        for (auto& logger : loggers_)
            logger->addSlice(now_, dt, rails);
        governor_.update(dt, rails.total(), active);
        thermal_.update(dt, rails.total());

        // Progress kernel work and harvest completions.
        const support::SimTime slice_end = now_ + dt;
        for (auto& q : queues_) {
            if (q.empty() || !q.front().started)
                continue;
            QueueEntry& front = q.front();
            const double rate =
                ((1.0 - front.work.freq_sensitivity) +
                 front.work.freq_sensitivity * f) /
                contention;
            front.remaining_s -= dt.toSeconds() * rate;
            if (front.remaining_s <= kWorkEpsilonS) {
                ExecutionRecord rec;
                rec.id = front.id;
                rec.label = front.work.label;
                rec.start = *front.started;
                rec.end = slice_end;
                rec.queue = static_cast<std::size_t>(&q - queues_.data());
                execution_log_.push_back(std::move(rec));
                q.pop_front();
            }
        }

        now_ = slice_end;
        if (stop_on_idle && idle())
            return now_;
    }
    return now_;
}

}  // namespace fingrav::sim

#include "sim/gpu_device.hpp"

#include <algorithm>
#include <cmath>
#include <utility>

#include "support/logging.hpp"

namespace fingrav::sim {

namespace {

using fingrav::support::Duration;
using fingrav::support::SimTime;

/**
 * Maximum temperature drift tolerated within one stretch, degrees C.
 *
 * Power is held constant per stretch, which freezes the temperature →
 * leakage → power feedback loop for the stretch's duration.  Capping the
 * per-stretch drift bounds that approximation everywhere — with or
 * without a capturing logger — while still letting stretches grow
 * unbounded once the thermal RC has converged.  At the default leakage
 * coefficients 0.05 C bounds the per-stretch power error near 0.03 W,
 * well under the logger noise floor.
 */
constexpr double kThermalEpsC = 0.05;

/** Upper bound on the thermal-feedback stretch cap (overflow guard). */
constexpr double kThermalBoundMaxS = 3600.0;

}  // namespace

GpuDevice::GpuDevice(const MachineConfig& cfg, support::Rng rng,
                     std::size_t device_id)
    : cfg_(cfg), device_id_(device_id), rng_(std::move(rng)),
      gpu_clock_(
          // Each GPU boots at a different wall time: give the counter a
          // large random epoch offset so nothing accidentally relies on
          // GPU time resembling CPU time.
          support::Duration::seconds(rng_.uniform(1e3, 9e4)),
          cfg.gpu_clock_drift_ppm, cfg.timestamp_tick),
      power_(cfg.power), governor_(cfg.dvfs), thermal_(cfg.thermal),
      queues_(1)
{
}

std::uint64_t
GpuDevice::submit(const KernelWork& work, support::SimTime ready_at,
                  std::size_t queue)
{
    if (work.nominal_duration.nanos() <= 0)
        support::fatal("GpuDevice::submit: kernel '", work.label,
                       "' has non-positive duration");
    if (queue >= 16)
        support::fatal("GpuDevice::submit: queue ", queue,
                       " out of range (max 16 hardware queues)");
    if (queue >= queues_.size())
        queues_.resize(queue + 1);

    QueueEntry entry;
    entry.id = next_id_++;
    entry.work = work;
    if (entry.work.fabric_group == KernelWork::kAutoFabricGroup) {
        // Each un-grouped launch is its own transfer; without a node
        // arbiter (standalone device) fabric traffic stays local-only.
        entry.work.fabric_group =
            fabric_ != nullptr ? fabric_->allocGroup() : 0;
    }
    if (entry.work.fabric_group != 0) {
        ++fabric_kernels_;
        if (fabric_ != nullptr)
            fabric_->noteSubmitted();
    }
    // Work cannot start before the device's own present.
    entry.ready_at = std::max(ready_at, now_);
    entry.remaining_s = work.nominal_duration.toSeconds();
    queues_[queue].push_back(std::move(entry));
    queue_state_.dirty = true;
    return queues_[queue].back().id;
}

bool
GpuDevice::idle() const
{
    for (const auto& q : queues_) {
        if (!q.empty())
            return false;
    }
    return true;
}

void
GpuDevice::startReady()
{
    bool was_idle = true;
    for (const auto& q : queues_) {
        if (!q.empty() && q.front().started)
            was_idle = false;
    }
    for (auto& q : queues_) {
        if (q.empty())
            continue;
        QueueEntry& front = q.front();
        if (!front.started && front.ready_at <= now_) {
            front.started = now_;
            front.rate = 0.0;  // force rate/due computation
            front.rate_anchor = now_;
            queue_state_.dirty = true;
            if (was_idle) {
                governor_.wake();
                was_idle = false;
            }
        }
    }
}

void
GpuDevice::refreshQueueState()
{
    // Raw utilization demand (uncapped sums) for the contention model:
    // when concurrent queues oversubscribe a resource dimension —
    // including CU residency slots (occupancy) — every resident
    // kernel's progress is scaled by the peak oversubscription.
    double demand_occ = 0.0;
    double demand_xcd = 0.0;
    double demand_llc = 0.0;
    double demand_hbm = 0.0;
    double demand_fab = 0.0;
    UtilizationVector agg;
    std::size_t running = 0;
    fabric_demands_.clear();
    for (const auto& q : queues_) {
        if (q.empty() || !q.front().started)
            continue;
        const UtilizationVector& u = q.front().work.util;
        demand_occ += u.xcd_occupancy;
        demand_xcd += u.xcd_issue;
        demand_llc += u.llc_bw;
        demand_hbm += u.hbm_bw;
        demand_fab += u.fabric_bw;
        agg = agg.saturatingAdd(u);
        ++running;
        if (q.front().work.fabric_group != 0) {
            fabric_demands_.push_back(
                {q.front().work.fabric_group, u.fabric_bw});
        }
    }
    // Shared node fabric: this device's transfers plus the committed
    // demand of transfers on other devices, each distinct transfer once.
    // Oversubscription stretches progress (fair share) and saturates the
    // links, so fabric utilization — and IOD power — rises while the
    // contended phase lasts.  Only the node-fabric share of utilization
    // is scaled: on-package traffic (fabric_group 0) never touches the
    // contended GPU-to-GPU links.
    double fabric_stretch = 1.0;
    if (fabric_ != nullptr) {
        fabric_->postDemand(device_id_, fabric_demands_);
        if (!fabric_demands_.empty()) {
            fabric_stretch = std::max(
                1.0, fabric_->sharedDemand(device_id_, fabric_demands_));
            if (fabric_stretch > 1.0) {
                double node_fab = 0.0;
                for (const auto& d : fabric_demands_)
                    node_fab += d.demand;
                agg.fabric_bw = std::min(
                    1.0,
                    agg.fabric_bw + node_fab * (fabric_stretch - 1.0));
            }
        }
    }
    queue_state_.contention =
        std::max({1.0, demand_occ, demand_xcd, demand_llc, demand_hbm,
                  demand_fab, fabric_stretch});
    queue_state_.util = agg;
    queue_state_.running = running;
    queue_state_.active = running > 0;
    queue_state_.dirty = false;
}

void
GpuDevice::noteFabricEpoch()
{
    if (fabric_ == nullptr)
        return;
    const std::uint64_t e = fabric_->epoch();
    if (e != fabric_epoch_seen_) {
        fabric_epoch_seen_ = e;
        queue_state_.dirty = true;
    }
}

void
GpuDevice::pollFabricDemand()
{
    startReady();
    noteFabricEpoch();
    if (queue_state_.dirty)
        refreshQueueState();
}

support::SimTime
GpuDevice::nextFabricEvent(support::SimTime limit)
{
    startReady();
    noteFabricEpoch();
    if (queue_state_.dirty)
        refreshQueueState();
    refreshProgress(governor_.frequencyRatio());
    // Demand can only change through this device's node-fabric kernels,
    // but *any* queue event — a start or completion on any queue —
    // changes local contention and re-anchors their rates (possibly
    // pulling a fabric completion earlier).  So while a fabric kernel is
    // queued or running anywhere on the device, every front boundary is
    // a conservative probe point; with none, demand cannot change.
    if (fabric_kernels_ == 0)
        return limit;
    SimTime best = limit;
    for (const auto& q : queues_) {
        if (q.empty())
            continue;
        const QueueEntry& front = q.front();
        if (front.started) {
            if (front.completion_due < best)
                best = front.completion_due;
        } else if (front.ready_at > now_ && front.ready_at < best) {
            best = front.ready_at;
        }
    }
    return best;
}

void
GpuDevice::refreshProgress(double f)
{
    for (auto& q : queues_) {
        if (q.empty() || !q.front().started)
            continue;
        QueueEntry& e = q.front();
        const double rate =
            ((1.0 - e.work.freq_sensitivity) +
             e.work.freq_sensitivity * f) /
            queue_state_.contention;
        FINGRAV_ASSERT(rate > 0.0, "non-positive progress rate");
        if (rate == e.rate)
            continue;  // anchor and completion time stay valid
        if (e.rate > 0.0 && now_ > e.rate_anchor) {
            e.remaining_s -=
                (now_ - e.rate_anchor).toSeconds() * e.rate;
        }
        e.rate = rate;
        e.rate_anchor = now_;
        const double complete_ns =
            std::ceil(std::max(0.0, e.remaining_s) / rate * 1e9);
        e.completion_due =
            now_ + Duration::nanos(std::max<std::int64_t>(
                       1, static_cast<std::int64_t>(complete_ns)));
    }
}

UtilizationVector
GpuDevice::aggregateUtil(std::size_t* running) const
{
    UtilizationVector agg;
    std::size_t n = 0;
    for (const auto& q : queues_) {
        if (!q.empty() && q.front().started) {
            agg = agg.saturatingAdd(q.front().work.util);
            ++n;
        }
    }
    if (running != nullptr)
        *running = n;
    return agg;
}

RailPower
GpuDevice::currentPower() const
{
    const UtilizationVector util = aggregateUtil(nullptr);
    return power_.instantaneous(util, governor_.frequencyRatio(),
                                thermal_.temperature());
}

PowerLogger&
GpuDevice::addLogger(support::Duration window, double noise_w)
{
    const double noise = noise_w < 0.0 ? cfg_.logger_noise_w : noise_w;
    loggers_.push_back(std::make_unique<PowerLogger>(
        window, gpu_clock_, noise,
        rng_.fork(1000 + loggers_.size())));
    return *loggers_.back();
}

void
GpuDevice::advanceTo(support::SimTime master)
{
    stepLoop(master, /*stop_on_idle=*/false);
}

support::SimTime
GpuDevice::advanceUntilIdle(support::SimTime limit)
{
    return stepLoop(limit, /*stop_on_idle=*/true);
}

support::SimTime
GpuDevice::nextLoggerCut(support::SimTime limit) const
{
    SimTime best = limit;
    const std::int64_t g_now = gpu_clock_.domainTime(now_).nanos();
    for (const auto& logger : loggers_) {
        if (!logger->capturing())
            continue;
        const std::int64_t boundary = logger->nextWindowEndGpuNs(g_now);
        SimTime m = gpu_clock_.masterTime(SimTime::fromNanos(boundary));
        // The inverse map truncates; step forward to the first integer
        // master nanosecond at/after the boundary (at most a few ns).
        while (gpu_clock_.domainTime(m).nanos() < boundary)
            m += Duration::nanos(1);
        if (m < best)
            best = m;
    }
    return best;
}

support::SimTime
GpuDevice::stepLoop(support::SimTime limit, bool stop_on_idle)
{
    while (now_ < limit) {
        startReady();
        // Fabric-demand stretch terminator: when the committed node-fabric
        // view moved (a remote transfer started or completed at the last
        // epoch barrier), re-price contention before the next stretch.
        noteFabricEpoch();

        const double f = governor_.frequencyRatio();
        if (queue_state_.dirty)
            refreshQueueState();
        refreshProgress(f);
        const bool active = queue_state_.active;

        // ---- stretch end: the earliest next event -----------------------
        SimTime t_end = limit;
        for (const auto& q : queues_) {
            if (q.empty())
                continue;
            const QueueEntry& front = q.front();
            if (front.started) {
                if (front.completion_due < t_end)
                    t_end = front.completion_due;
            } else if (front.ready_at > now_ && front.ready_at < t_end) {
                t_end = front.ready_at;
            }
        }
        if (active) {
            if (governor_.inExcursion()) {
                const SimTime expiry = now_ + governor_.holdRemaining();
                if (expiry < t_end)
                    t_end = expiry;
            }
            if (const auto budget = governor_.timeToBoostBudget()) {
                const SimTime crossing = now_ + *budget;
                if (crossing < t_end)
                    t_end = crossing;
            }
        } else if (const auto park = governor_.timeToPark()) {
            const SimTime parks = now_ + *park;
            if (parks < t_end)
                t_end = parks;
        }
        if (!loggers_.empty())
            t_end = nextLoggerCut(t_end);

        // Power is held constant over the stretch, so it is evaluated
        // before choosing the integration bound.
        const RailPower rails = power_.instantaneous(
            queue_state_.util, f, thermal_.temperature());

        // While the governor is actively moving the clock (recovery slew,
        // sustained backoff, or a limit the EMAs may cross), integration
        // stays bounded by the legacy quantum so the control-loop dynamics
        // are preserved; quiescent stretches integrate in one exact step.
        const Duration quantum = active ? cfg_.power_step : cfg_.idle_step;
        const bool quiescent =
            !active || governor_.quiescentAt(rails.total());
        if (!quiescent && now_ + quantum < t_end)
            t_end = now_ + quantum;

        // Thermal-feedback bound: temperature feeds back into leakage
        // power, so a stretch may only run as far as temperature can
        // drift by kThermalEpsC.  dT over dt is (target - T) * dt / tau
        // to first order; the cap therefore loosens as the RC converges
        // and never cuts finer than the legacy idle quantum.
        const double gap_c =
            std::abs(thermal_.steadyState(rails.total()) -
                     thermal_.temperature());
        if (gap_c > kThermalEpsC) {
            const double bound_s = std::min(
                kThermalBoundMaxS,
                cfg_.thermal.time_constant.toSeconds() * kThermalEpsC /
                    gap_c);
            const Duration bound =
                std::max(cfg_.idle_step, Duration::seconds(bound_s));
            if (now_ + bound < t_end)
                t_end = now_ + bound;
        }

        if (t_end <= now_)
            break;  // can only happen when limit == now_
        const Duration dt = t_end - now_;

        // ---- logger feed: one bulk slice per stretch --------------------
        for (auto& logger : loggers_)
            logger->addSlice(now_, dt, rails);
        ++step_stats_.slices;

        // ---- integrate the stretch --------------------------------------
        governor_.update(dt, rails.total(), active);
        thermal_.update(dt, rails.total());
        ++step_stats_.stretches;
        now_ = t_end;

        // ---- harvest completions due exactly now ------------------------
        for (std::size_t qi = 0; qi < queues_.size(); ++qi) {
            auto& q = queues_[qi];
            if (q.empty() || !q.front().started)
                continue;
            QueueEntry& front = q.front();
            if (front.completion_due <= now_) {
                ExecutionRecord rec;
                rec.id = front.id;
                rec.label = front.work.label;
                rec.start = *front.started;
                rec.end = now_;
                rec.queue = qi;
                if (front.work.fabric_group != 0) {
                    --fabric_kernels_;
                    if (fabric_ != nullptr)
                        fabric_->noteRetired();
                }
                execution_log_.push_back(std::move(rec));
                q.pop_front();
                queue_state_.dirty = true;
            }
        }

        if (stop_on_idle && idle())
            return now_;
    }
    return now_;
}

}  // namespace fingrav::sim

#ifndef FINGRAV_SIM_DVFS_GOVERNOR_HPP_
#define FINGRAV_SIM_DVFS_GOVERNOR_HPP_

/**
 * @file
 * Power-management firmware model (DVFS governor).
 *
 * Reproduces the behaviour the paper attributes to the MI300X power
 * management firmware (Section V-C1): from idle, work is granted boost
 * clocks; a compute-heavy kernel at boost exceeds the peak power limit and
 * triggers an *excursion response* — an immediate deep frequency cut held
 * for a short period ("invoking the power management firmware to throttle
 * frequency to manage power excursions"); afterwards a slower control loop
 * converges the clock to the highest frequency whose sustained power stays
 * under the board limit.  This produces the paper's observed
 * rise-then-drop-then-slight-recovery power trend for CB-8K-GEMM (Fig. 6)
 * and the "warm-up executions are slower than steady state" effect.
 *
 * Frequency feedback: kernels whose cost is frequency-sensitive execute
 * more slowly while throttled (see GpuDevice's work-progress integration).
 */

#include <cstddef>
#include <optional>

#include "support/time_types.hpp"

namespace fingrav::sim {

/** Governor tuning (frequencies are expressed as ratios of nominal). */
struct DvfsGovernorParams {
    double boost_ratio = 1.0;       ///< ceiling granted on wake-up
    double min_ratio = 0.40;        ///< deepest throttle floor
    double idle_ratio = 0.25;       ///< parked clock when idle

    double sustained_limit_w = 750.0;  ///< board power limit (PPT)
    double peak_limit_w = 820.0;       ///< excursion threshold

    /** Fast power-estimate EMA time constant (excursion detector). */
    support::Duration fast_tau = support::Duration::micros(40.0);
    /** Slow power-estimate EMA time constant (sustained control). */
    support::Duration slow_tau = support::Duration::micros(400.0);

    double excursion_cut = 0.72;    ///< multiplicative cut on excursion
    support::Duration excursion_hold = support::Duration::micros(150.0);

    /** Proportional gain of the sustained loop, ratio per (W/limit) per us. */
    double kp_per_us = 0.0016;
    /** Recovery slew toward boost when below the limit, ratio per us. */
    double recovery_per_us = 0.00030;

    /**
     * Idle-park hysteresis: the clock parks (and the next wake-up is
     * granted boost) only after this much continuous inactivity.  Short
     * inter-execution gaps (launch/sync overhead) therefore do not reset
     * the throttle/recovery state mid-run.
     */
    support::Duration idle_park_delay = support::Duration::micros(30.0);

    /**
     * Boost-residency budget: cumulative *active* time since wake-up
     * during which clocks above nominal_ratio are permitted.  Real parts
     * hold boost clocks only briefly; afterwards sustained operation caps
     * at the nominal point.  Zero disables the budget.
     */
    support::Duration boost_budget = support::Duration::millis(3.0);

    /** Sustained clock ceiling once the boost budget is spent. */
    double nominal_ratio = 1.0;

    /**
     * Recovery stops once the fast power estimate reaches this fraction
     * of the peak limit, keeping the operating point from sawtoothing
     * through the excursion threshold.
     */
    double recovery_guard = 0.99;
};

/** Stateful governor; update() once per integration slice. */
class DvfsGovernor {
  public:
    explicit DvfsGovernor(const DvfsGovernorParams& params);

    /**
     * Advance the control loops by dt.
     *
     * @param dt       Slice length.
     * @param power_w  Instantaneous total power over the slice.
     * @param active   True when at least one kernel is resident.
     */
    void update(support::Duration dt, double power_w, bool active);

    /**
     * Grant boost clocks on wake-up from idle.
     *
     * The device calls this when a kernel becomes resident on a previously
     * idle GPU.  Boost is granted only when the clock had actually parked
     * (idle longer than idle_park_delay); brief inter-execution gaps keep
     * the current operating point.
     */
    void wake();

    /** True when the clock is parked at the idle ratio. */
    bool parked() const { return parked_; }

    /** Current engine-clock ratio (f / f_nominal). */
    double frequencyRatio() const { return ratio_; }

    /** Fast (excursion-detector) power estimate, watts. */
    double fastPower() const { return fast_w_; }

    /** Slow (sustained-loop) power estimate, watts. */
    double slowPower() const { return slow_w_; }

    /** True while the excursion response is holding the clock down. */
    bool inExcursion() const { return hold_remaining_.nanos() > 0; }

    /** Remaining excursion-hold time (zero when no hold is active). */
    support::Duration holdRemaining() const { return hold_remaining_; }

    /** Number of excursion events since construction. */
    std::size_t excursionCount() const { return excursions_; }

    /**
     * True when, at constant instantaneous power `power_w`, update() leaves
     * the operating point unchanged for a step of *any* length: either the
     * excursion hold pins the clock (expiry is a schedulable event), or the
     * clock already sits at the current cap and both power estimates plus
     * the target are at/below every throttle threshold — the EMAs converge
     * monotonically toward power_w, so no limit can be crossed mid-stretch.
     *
     * Event-driven stepping (sim/gpu_device) integrates whole
     * constant-power stretches in a single update() when this holds.
     */
    bool quiescentAt(double power_w) const;

    /**
     * Active time left until the boost budget expires *and* the expiry
     * would move the clock (ratio above the post-budget nominal cap).
     * Empty when the budget is disabled, already spent, or irrelevant.
     */
    std::optional<support::Duration> timeToBoostBudget() const;

    /**
     * Continuous idle time left before the clock parks.  Empty while
     * active, already parked, or when no park delay is configured.
     */
    std::optional<support::Duration> timeToPark() const;

  private:
    /** Clock ceiling at the current boost-budget state. */
    double currentCap() const;

    DvfsGovernorParams p_;
    double ratio_;
    double fast_w_ = 0.0;
    double slow_w_ = 0.0;
    bool estimates_primed_ = false;
    bool parked_ = true;
    support::Duration inactive_;
    support::Duration active_since_wake_;
    support::Duration hold_remaining_;
    std::size_t excursions_ = 0;
};

}  // namespace fingrav::sim

#endif  // FINGRAV_SIM_DVFS_GOVERNOR_HPP_

#ifndef FINGRAV_SIM_MACHINE_CONFIG_HPP_
#define FINGRAV_SIM_MACHINE_CONFIG_HPP_

/**
 * @file
 * Static description of the simulated GPU and node.
 *
 * The defaults (mi300xConfig()) model an AMD Instinct MI300X-class part as
 * described in the paper's Section II-A and the CDNA3 whitepaper: 8 XCDs of
 * 38 CUs, 4 IODs with a 256 MB memory-side Infinity Cache, 8 HBM stacks at
 * a combined 5.3 TB/s, and 7 Infinity-Fabric links of 64 GB/s each to the
 * other GPUs of an 8-GPU fully-connected node.  Power numbers are *not* the
 * paper's (it reports only relative power); they are plausible absolute
 * values calibrated so that every relative relationship the paper reports
 * holds (see tests/power_model_test.cpp and bench/bench_table2).
 */

#include <cstddef>

#include "sim/dvfs_governor.hpp"
#include "sim/power_model.hpp"
#include "sim/thermal.hpp"
#include "support/time_types.hpp"
#include "support/units.hpp"

namespace fingrav::sim {

/** Compute/memory/interconnect envelope and simulation knobs of one GPU. */
struct MachineConfig {
    // --- topology (paper Section II-A) ---
    std::size_t num_xcds = 8;          ///< accelerator complex dies
    std::size_t cus_per_xcd = 38;      ///< active compute units per XCD
    std::size_t num_iods = 4;          ///< I/O dies
    std::size_t num_hbm_stacks = 8;    ///< HBM stacks

    // --- capacities / throughputs at boost clock ---
    support::FlopsPerSecond peak_matrix_flops = 1.3e15;  ///< fp16/bf16 MFMA peak
    support::FlopsPerSecond peak_vector_flops = 1.6e14;  ///< fp32 vector peak
    support::BytesPerSecond hbm_bandwidth = 5.3e12;      ///< peak HBM bandwidth
    support::BytesPerSecond llc_bandwidth = 1.7e13;      ///< peak Infinity-Cache bw
    support::Bytes llc_capacity = 256LL * 1024 * 1024;   ///< Infinity Cache
    support::Bytes l2_capacity_per_xcd = 4LL * 1024 * 1024;
    support::Bytes hbm_capacity = 192LL * 1024 * 1024 * 1024;

    // --- node-level fabric (8-GPU Infinity Platform) ---
    std::size_t node_gpus = 8;                            ///< GPUs per node
    std::size_t fabric_links = 7;                         ///< links per GPU
    support::BytesPerSecond fabric_link_bandwidth = 64e9; ///< unidirectional per link

    // --- clocks ---
    double boost_frequency_hz = 2.1e9;   ///< peak XCD engine clock
    double nominal_frequency_hz = 2.1e9; ///< clock at which peaks are quoted
    double idle_frequency_hz = 0.5e9;    ///< clock parked when idle

    /** GPU timestamp-counter resolution (100 MHz counter = 10 ns/tick). */
    support::Duration timestamp_tick = support::Duration::nanos(10);

    /** GPU clock drift vs the CPU clock, parts-per-million. */
    double gpu_clock_drift_ppm = 4.0;

    /**
     * Integration bound while the DVFS governor is actively moving the
     * clock (recovery slew, sustained backoff): stretches are capped at
     * this quantum so the control-loop dynamics stay step-size calibrated.
     * Quiescent stretches integrate in one exact step regardless.
     */
    support::Duration power_step = support::Duration::micros(2.0);

    /** Floor of the thermal-feedback stretch cap (sim/gpu_device.cpp). */
    support::Duration idle_step = support::Duration::micros(50.0);

    /**
     * Thread budget of Simulation::advanceAllTo / advanceAllUntilIdle
     * (including the calling thread); 1 = serial.  Devices are advanced
     * concurrently between fabric epochs; results are bit-identical to the
     * serial path for any value (docs/ARCHITECTURE.md).
     */
    std::size_t advance_threads = 1;

    /** Default averaging window of the on-GPU power logger (paper: 1 ms). */
    support::Duration logger_window = support::Duration::millis(1.0);

    /** Std-dev of per-sample logger measurement noise, watts per rail. */
    double logger_noise_w = 1.2;

    /** Host-visible kernel-launch overhead (enqueue to start of execution). */
    support::Duration launch_overhead = support::Duration::micros(2.5);

    /** Host synchronization return latency after kernel completion. */
    support::Duration sync_overhead = support::Duration::micros(2.0);

    /** GPU timestamp read round-trip latency from the host. */
    support::Duration timestamp_read_delay = support::Duration::micros(1.5);

    /** Relative jitter of the timestamp read latency. */
    double timestamp_read_jitter = 0.15;

    /** Per-execution lognormal execution-time jitter (sigma). */
    double exec_time_sigma = 0.010;

    /** Probability that a run draws an allocation-pattern outlier factor. */
    double outlier_run_probability = 0.06;

    /** Outlier slowdown range (uniform multiplier). */
    double outlier_slowdown_min = 1.10;
    double outlier_slowdown_max = 1.35;

    PowerModelParams power;     ///< rail power coefficients
    DvfsGovernorParams dvfs;    ///< power-management firmware behaviour
    ThermalParams thermal;      ///< package thermal RC model

    /** Machine balance in FLOP per byte (compute-bound threshold). */
    double
    machineOpsPerByte() const
    {
        return peak_matrix_flops / hbm_bandwidth;
    }

    /** Total CU count across all XCDs. */
    std::size_t
    totalCus() const
    {
        return num_xcds * cus_per_xcd;
    }
};

/** Calibrated MI300X-class default configuration. */
MachineConfig mi300xConfig();

}  // namespace fingrav::sim

#endif  // FINGRAV_SIM_MACHINE_CONFIG_HPP_

#include "sim/machine_config.hpp"

namespace fingrav::sim {

MachineConfig
mi300xConfig()
{
    MachineConfig cfg;
    // Topology and throughput envelope follow the paper's Section II-A /
    // the CDNA3 whitepaper and are left at the struct defaults (8 XCDs x
    // 38 CUs, 4 IODs, 256 MB Infinity Cache, 5.3 TB/s HBM, 8-GPU node with
    // 7 x 64 GB/s links).

    // --- power rail calibration -----------------------------------------
    // Absolute watts are plausible for a 750 W-class part; what matters
    // (and what tests/bench assert) is that every *relative* relationship
    // reported by the paper holds.  Derivation anchors:
    //   idle total     = 40+35+18+12                    = 105 W
    //   CB-8K-GEMM     rides the 760 W sustained limit  (throttled)
    //   CB-4K/2K-GEMM  run at boost without throttling  (~700/636 W)
    //   XCD residency weight 0.70 keeps all CB GEMMs within ~12 % XCD
    //   power despite CB-2K's ~half compute utilization (takeaway #4).
    cfg.power.xcd_idle_w = 40.0;
    cfg.power.iod_idle_w = 35.0;
    cfg.power.hbm_idle_w = 18.0;
    cfg.power.misc_w = 12.0;
    cfg.power.xcd_dyn_w = 700.0;
    cfg.power.xcd_residency_weight = 0.70;
    cfg.power.xcd_issue_weight = 0.30;
    cfg.power.iod_llc_w = 70.0;
    cfg.power.iod_hbmphy_w = 40.0;
    cfg.power.iod_fabric_w = 110.0;
    cfg.power.hbm_dyn_w = 170.0;
    cfg.power.leakage_fraction = 0.45;
    cfg.power.leakage_temp_coeff = 0.010;
    cfg.power.t_ref_c = 45.0;
    cfg.power.voltage_floor = 0.62;

    // --- power-management firmware ---------------------------------------
    // Boost 5 % above nominal with a 3 ms boost-residency budget: a run's
    // early executions enjoy boost clocks, sustained operation settles at
    // the nominal point.  Only CB-8K-GEMM-class kernels exceed the 780 W
    // excursion threshold at boost (~812 W with cold-cache traffic); the
    // board-telemetry EMA (tau 700 us) crosses the threshold during the
    // second execution of a run, producing Fig. 6's rise-then-deep-drop
    // power trend.  Recovery at 0.003 % per us climbs back to the nominal
    // operating point (~762 W) over several executions — the SSE-to-SSP
    // power rise.  CB-4K (~742 W peak at boost) and everything lighter
    // never throttles; their profiles are shaped by window-fill averaging
    // plus the boost-budget expiry alone.
    cfg.dvfs.boost_ratio = 1.05;
    cfg.dvfs.min_ratio = 0.40;
    cfg.dvfs.idle_ratio = 0.25;
    cfg.dvfs.sustained_limit_w = 778.0;
    cfg.dvfs.peak_limit_w = 780.0;
    cfg.dvfs.fast_tau = support::Duration::micros(700.0);
    cfg.dvfs.slow_tau = support::Duration::micros(700.0);
    cfg.dvfs.excursion_cut = 0.75;
    cfg.dvfs.excursion_hold = support::Duration::micros(300.0);
    cfg.dvfs.kp_per_us = 0.0016;
    cfg.dvfs.recovery_per_us = 0.00003;
    cfg.dvfs.idle_park_delay = support::Duration::micros(30.0);
    cfg.dvfs.boost_budget = support::Duration::millis(3.0);
    cfg.dvfs.nominal_ratio = 1.0;
    cfg.dvfs.recovery_guard = 0.99;

    // --- thermals ---------------------------------------------------------
    // Die-level hotspot time constant (tens of ms): temperature — and with
    // it leakage — drifts visibly within a profiling campaign, which is
    // why the paper pins SSP profiles to a voltage-frequency-temperature
    // operating point.
    cfg.thermal.ambient_c = 35.0;
    cfg.thermal.resistance_c_per_w = 0.055;
    cfg.thermal.time_constant = support::Duration::millis(35.0);

    return cfg;
}

}  // namespace fingrav::sim

#include "sim/simulation.hpp"

#include <algorithm>

#include "support/logging.hpp"

namespace fingrav::sim {

Simulation::Simulation(const MachineConfig& cfg, std::uint64_t seed,
                       std::size_t devices)
    : cfg_(cfg), root_rng_(seed),
      cpu_clock_(
          // The CPU clock is the drift reference; its epoch offset is
          // arbitrary (a realistic large boot-time value).
          support::Duration::seconds(root_rng_.fork(0).uniform(1e5, 2e5)),
          /*drift_ppm=*/0.0, support::Duration::nanos(1)),
      devices_()
{
    const std::size_t n = devices == 0 ? cfg.node_gpus : devices;
    if (n == 0)
        support::fatal("Simulation: node must contain at least one GPU");
    devices_.reserve(n);
    for (std::size_t i = 0; i < n; ++i) {
        devices_.push_back(std::make_unique<GpuDevice>(
            cfg, root_rng_.fork(100 + i), i));
    }
}

void
Simulation::advanceAllTo(support::SimTime master)
{
    for (auto& dev : devices_)
        dev->advanceTo(master);
}

support::SimTime
Simulation::advanceAllUntilIdle(support::SimTime limit)
{
    auto latest = support::SimTime::fromNanos(0);
    for (auto& dev : devices_)
        latest = std::max(latest, dev->advanceUntilIdle(limit));
    return latest;
}

GpuDevice&
Simulation::device(std::size_t i)
{
    if (i >= devices_.size())
        support::fatal("Simulation: device index ", i, " out of range (",
                       devices_.size(), " devices)");
    return *devices_[i];
}

const GpuDevice&
Simulation::device(std::size_t i) const
{
    if (i >= devices_.size())
        support::fatal("Simulation: device index ", i, " out of range (",
                       devices_.size(), " devices)");
    return *devices_[i];
}

}  // namespace fingrav::sim

#include "sim/simulation.hpp"

#include <algorithm>

#include "support/logging.hpp"

namespace fingrav::sim {

Simulation::Simulation(const MachineConfig& cfg, std::uint64_t seed,
                       std::size_t devices)
    : cfg_(cfg), root_rng_(seed),
      cpu_clock_(
          // The CPU clock is the drift reference; its epoch offset is
          // arbitrary (a realistic large boot-time value).
          support::Duration::seconds(root_rng_.fork(0).uniform(1e5, 2e5)),
          /*drift_ppm=*/0.0, support::Duration::nanos(1)),
      fabric_(cfg, devices == 0 ? cfg.node_gpus : devices),
      devices_(),
      advance_threads_(std::max<std::size_t>(1, cfg.advance_threads))
{
    const std::size_t n = devices == 0 ? cfg.node_gpus : devices;
    if (n == 0)
        support::fatal("Simulation: node must contain at least one GPU");
    devices_.reserve(n);
    for (std::size_t i = 0; i < n; ++i) {
        devices_.push_back(std::make_unique<GpuDevice>(
            cfg, root_rng_.fork(100 + i), i));
        devices_.back()->attachFabric(&fabric_);
    }
}

void
Simulation::setAdvanceThreads(std::size_t threads)
{
    advance_threads_ = std::max<std::size_t>(1, threads);
    if (pool_ != nullptr && pool_->threads() != advance_threads_)
        pool_.reset();
}

void
Simulation::runEpochs(const std::function<std::size_t()>& leader,
                      const std::function<void(std::size_t)>& item)
{
    // Batched dispatch: the whole epoch loop runs inside one pool job —
    // the leader section (poll, commit, probe) runs exclusively between
    // rounds — instead of paying the job submission/wake handshake per
    // epoch.  The epoch schedule is identical for every thread count, so
    // results are bit-identical; with advance_threads <= 1 the pool has
    // no workers and roundLoop degenerates to the plain serial loop.
    if (pool_ == nullptr)
        pool_ = std::make_unique<support::ThreadPool>(advance_threads_);
    pool_->roundLoop(leader, item);
}

support::SimTime
Simulation::epochBoundary(const std::vector<std::size_t>& active,
                          support::SimTime limit)
{
    // Demand changes already due (epoch-boundary starts, harvested
    // completions) must reach the committed view before anyone moves.
    // Every device is polled — including ones that drained or sit ahead
    // of this epoch's advancers — or a retired transfer would keep its
    // committed demand and stretch the survivors against a ghost.
    for (const auto& dev : devices_)
        dev->pollFabricDemand();
    fabric_.commit();
    // Devices are independent until the next node-fabric demand change.
    auto t_sync = limit;
    for (const auto i : active)
        t_sync = std::min(t_sync, devices_[i]->nextFabricEvent(limit));
    return t_sync;
}

void
Simulation::advanceAllTo(support::SimTime master)
{
    std::vector<std::size_t> behind;
    behind.reserve(devices_.size());
    support::SimTime t_sync;
    runEpochs(
        [&]() -> std::size_t {
            behind.clear();
            for (std::size_t i = 0; i < devices_.size(); ++i) {
                if (devices_[i]->localNow() < master)
                    behind.push_back(i);
            }
            if (behind.empty())
                return 0;
            t_sync = epochBoundary(behind, master);
            return behind.size();
        },
        [&](std::size_t k) { devices_[behind[k]]->advanceTo(t_sync); });
}

support::SimTime
Simulation::advanceAllUntilIdle(support::SimTime limit)
{
    auto latest = support::SimTime::fromNanos(0);
    std::vector<char> done(devices_.size(), 0);
    std::vector<support::SimTime> reached(devices_.size());
    std::vector<std::size_t> active;
    active.reserve(devices_.size());
    support::SimTime t_sync;
    bool first = true;
    runEpochs(
        [&]() -> std::size_t {
            if (!first) {
                for (const auto i : active) {
                    // A drained device stops at its idle time and sits out
                    // the remaining epochs (its posted demand is zero from
                    // here on).
                    if (devices_[i]->idle() || t_sync >= limit) {
                        done[i] = 1;
                        latest = std::max(latest, reached[i]);
                    }
                }
            }
            first = false;
            active.clear();
            for (std::size_t i = 0; i < devices_.size(); ++i) {
                if (!done[i])
                    active.push_back(i);
            }
            if (active.empty())
                return 0;
            t_sync = epochBoundary(active, limit);
            return active.size();
        },
        [&](std::size_t k) {
            reached[active[k]] = devices_[active[k]]->advanceUntilIdle(t_sync);
        });
    return latest;
}

support::SimTime
Simulation::advanceDeviceUntilIdle(std::size_t i, support::SimTime limit)
{
    if (i >= devices_.size())
        support::fatal("Simulation: device index ", i, " out of range (",
                       devices_.size(), " devices)");
    // Every sibling participates: lagging and time-aligned ones ride
    // along to the epoch boundary, and a sibling sitting *ahead* with a
    // transfer still in flight must contribute its completion to the
    // probe (or the target would drain against frozen demand); advanceTo
    // is a no-op for devices already past t_sync.
    std::vector<std::size_t> active(devices_.size());
    for (std::size_t j = 0; j < devices_.size(); ++j)
        active[j] = j;
    support::SimTime t_sync;
    runEpochs(
        [&]() -> std::size_t {
            if (devices_[i]->idle() || devices_[i]->localNow() >= limit)
                return 0;
            t_sync = epochBoundary(active, limit);
            return active.size();
        },
        [&](std::size_t k) {
            const std::size_t j = active[k];
            if (j == i)
                devices_[j]->advanceUntilIdle(t_sync);
            else
                devices_[j]->advanceTo(t_sync);
        });
    return devices_[i]->localNow();
}

GpuDevice&
Simulation::device(std::size_t i)
{
    if (i >= devices_.size())
        support::fatal("Simulation: device index ", i, " out of range (",
                       devices_.size(), " devices)");
    return *devices_[i];
}

const GpuDevice&
Simulation::device(std::size_t i) const
{
    if (i >= devices_.size())
        support::fatal("Simulation: device index ", i, " out of range (",
                       devices_.size(), " devices)");
    return *devices_[i];
}

}  // namespace fingrav::sim

#ifndef FINGRAV_SIM_EVENT_QUEUE_HPP_
#define FINGRAV_SIM_EVENT_QUEUE_HPP_

/**
 * @file
 * Minimal discrete-event scheduler.
 *
 * Used by Simulation for host-side timed callbacks (e.g. injecting kernel
 * launches at scheduled points in interleaving experiments) and available
 * to library users building custom schedules.  Events at equal timestamps
 * fire in insertion order (deterministic).
 */

#include <cstdint>
#include <functional>
#include <queue>
#include <vector>

#include "support/time_types.hpp"

namespace fingrav::sim {

/** Priority queue of timed callbacks with deterministic tie-breaking. */
class EventQueue {
  public:
    using Callback = std::function<void()>;

    /** Schedule `fn` at time `when`; `when` may not precede now(). */
    void schedule(support::SimTime when, Callback fn);

    /** Time of the most recently fired (or currently firing) event. */
    support::SimTime now() const { return now_; }

    /** True when no events are pending. */
    bool empty() const { return heap_.empty(); }

    /** Number of pending events. */
    std::size_t size() const { return heap_.size(); }

    /** Timestamp of the next pending event; undefined when empty. */
    support::SimTime nextTime() const;

    /**
     * Fire all events with timestamp <= limit, in order.
     *
     * Events scheduled *during* processing are honoured when they fall
     * within the limit.  Advances now() to `limit`.
     *
     * @return Number of events fired.
     */
    std::size_t runUntil(support::SimTime limit);

  private:
    struct Entry {
        support::SimTime when;
        std::uint64_t seq;
        Callback fn;
    };

    struct Later {
        bool
        operator()(const Entry& a, const Entry& b) const
        {
            if (a.when != b.when)
                return a.when > b.when;
            return a.seq > b.seq;
        }
    };

    std::priority_queue<Entry, std::vector<Entry>, Later> heap_;
    support::SimTime now_;
    std::uint64_t next_seq_ = 0;
};

}  // namespace fingrav::sim

#endif  // FINGRAV_SIM_EVENT_QUEUE_HPP_

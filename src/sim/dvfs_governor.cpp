#include "sim/dvfs_governor.hpp"

#include <algorithm>
#include <cmath>

#include "support/logging.hpp"

namespace fingrav::sim {

DvfsGovernor::DvfsGovernor(const DvfsGovernorParams& params)
    : p_(params), ratio_(params.idle_ratio)
{
    FINGRAV_ASSERT(p_.min_ratio <= p_.boost_ratio, "governor ratio bounds");
    FINGRAV_ASSERT(p_.sustained_limit_w <= p_.peak_limit_w,
                   "sustained limit above peak limit");
}

double
DvfsGovernor::currentCap() const
{
    if (p_.boost_budget.nanos() > 0 &&
        active_since_wake_ >= p_.boost_budget) {
        return p_.nominal_ratio;
    }
    return p_.boost_ratio;
}

bool
DvfsGovernor::quiescentAt(double power_w) const
{
    if (hold_remaining_.nanos() > 0)
        return true;  // clock pinned by the excursion response
    if (ratio_ != currentCap())
        return false;  // recovery or backoff is moving the clock
    if (fast_w_ > p_.peak_limit_w || power_w > p_.peak_limit_w)
        return false;
    if (slow_w_ > p_.sustained_limit_w || power_w > p_.sustained_limit_w)
        return false;
    return true;
}

std::optional<support::Duration>
DvfsGovernor::timeToBoostBudget() const
{
    if (p_.boost_budget.nanos() <= 0)
        return std::nullopt;
    if (active_since_wake_ >= p_.boost_budget)
        return std::nullopt;
    // The cap change only matters when the clock sits above the
    // post-budget ceiling; below it, the clamp is unaffected (and any
    // later recovery runs under quantum-bounded stepping anyway).
    if (ratio_ <= p_.nominal_ratio)
        return std::nullopt;
    return p_.boost_budget - active_since_wake_;
}

std::optional<support::Duration>
DvfsGovernor::timeToPark() const
{
    if (parked_ || p_.idle_park_delay.nanos() <= 0)
        return std::nullopt;
    const auto left = p_.idle_park_delay - inactive_;
    return left.nanos() > 0 ? left : support::Duration::nanos(1);
}

void
DvfsGovernor::wake()
{
    if (!parked_)
        return;
    parked_ = false;
    inactive_ = support::Duration();
    active_since_wake_ = support::Duration();
    ratio_ = p_.boost_ratio;
    hold_remaining_ = support::Duration();
}

void
DvfsGovernor::update(support::Duration dt, double power_w, bool active)
{
    FINGRAV_ASSERT(dt.nanos() >= 0, "negative governor step");
    if (dt.nanos() == 0)
        return;

    // EMA power estimates (exact exponential decay for step independence).
    if (!estimates_primed_) {
        fast_w_ = power_w;
        slow_w_ = power_w;
        estimates_primed_ = true;
    } else {
        const double af =
            1.0 - std::exp(-dt.toSeconds() / p_.fast_tau.toSeconds());
        const double as =
            1.0 - std::exp(-dt.toSeconds() / p_.slow_tau.toSeconds());
        fast_w_ += af * (power_w - fast_w_);
        slow_w_ += as * (power_w - slow_w_);
    }

    if (!active) {
        // Park only after sustained inactivity; launch/sync gaps between
        // the executions of a run keep the operating point alive.
        inactive_ += dt;
        if (!parked_ && inactive_ >= p_.idle_park_delay) {
            parked_ = true;
            ratio_ = p_.idle_ratio;
            hold_remaining_ = support::Duration();
        }
        return;
    }
    inactive_ = support::Duration();
    parked_ = false;
    active_since_wake_ += dt;

    const double dt_us = dt.toMicros();

    if (hold_remaining_.nanos() > 0) {
        // Excursion response in progress: hold the deep throttle.
        hold_remaining_ -= dt;
        if (hold_remaining_.nanos() < 0)
            hold_remaining_ = support::Duration();
        return;
    }

    if (fast_w_ > p_.peak_limit_w) {
        // Excursion: immediate deep cut, held for excursion_hold.
        ratio_ = std::max(p_.min_ratio, ratio_ * p_.excursion_cut);
        hold_remaining_ = p_.excursion_hold;
        ++excursions_;
        return;
    }

    if (slow_w_ > p_.sustained_limit_w) {
        // Sustained loop: proportional backoff on overshoot.
        const double overshoot =
            (slow_w_ - p_.sustained_limit_w) / p_.sustained_limit_w;
        ratio_ -= p_.kp_per_us * overshoot * dt_us * 100.0;
    } else if (fast_w_ < p_.peak_limit_w * p_.recovery_guard) {
        // Below both limits with excursion headroom: slew back up.  The
        // guard keeps the operating point just under the excursion
        // threshold instead of sawtoothing through it.
        ratio_ += p_.recovery_per_us * dt_us;
    }
    ratio_ = std::clamp(ratio_, p_.min_ratio, currentCap());
}

}  // namespace fingrav::sim

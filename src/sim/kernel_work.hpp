#ifndef FINGRAV_SIM_KERNEL_WORK_HPP_
#define FINGRAV_SIM_KERNEL_WORK_HPP_

/**
 * @file
 * The unit of work a GpuDevice executes.
 *
 * Kernel cost models (src/kernels/) reduce a kernel invocation to: a
 * nominal duration (at frequency ratio 1.0), the share of that duration
 * that scales with the engine clock (compute-bound kernels stretch under
 * DVFS throttling, memory-/fabric-bound kernels barely do), and the
 * resource utilization it imposes while resident.  The device integrates
 * work progress against the live governor frequency, which is how the
 * paper's "warm-up executions are slower" observation emerges.
 */

#include <string>

#include "sim/utilization.hpp"
#include "support/time_types.hpp"

namespace fingrav::sim {

/** A kernel invocation as seen by the device. */
struct KernelWork {
    std::string label;                   ///< e.g. "CB-4K-GEMM"
    support::Duration nominal_duration;  ///< execution time at f/fn == 1.0
    double freq_sensitivity = 0.9;       ///< clock-scaled share of the work
    UtilizationVector util;              ///< resource load while resident
};

}  // namespace fingrav::sim

#endif  // FINGRAV_SIM_KERNEL_WORK_HPP_

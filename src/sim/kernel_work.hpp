#ifndef FINGRAV_SIM_KERNEL_WORK_HPP_
#define FINGRAV_SIM_KERNEL_WORK_HPP_

/**
 * @file
 * The unit of work a GpuDevice executes.
 *
 * Kernel cost models (src/kernels/) reduce a kernel invocation to: a
 * nominal duration (at frequency ratio 1.0), the share of that duration
 * that scales with the engine clock (compute-bound kernels stretch under
 * DVFS throttling, memory-/fabric-bound kernels barely do), and the
 * resource utilization it imposes while resident.  The device integrates
 * work progress against the live governor frequency, which is how the
 * paper's "warm-up executions are slower" observation emerges.
 */

#include <cstdint>
#include <string>

#include "sim/utilization.hpp"
#include "support/time_types.hpp"

namespace fingrav::sim {

/** A kernel invocation as seen by the device. */
struct KernelWork {
    /** Sentinel fabric_group: allocate a fresh transfer id at launch. */
    static constexpr std::uint64_t kAutoFabricGroup = ~std::uint64_t{0};

    std::string label;                   ///< e.g. "CB-4K-GEMM"
    support::Duration nominal_duration;  ///< execution time at f/fn == 1.0
    double freq_sensitivity = 0.9;       ///< clock-scaled share of the work
    UtilizationVector util;              ///< resource load while resident

    /**
     * Shared-node-fabric transfer id.  0 means the kernel's fabric_bw is
     * on-package traffic only (cross-XCD/IOD) and places no demand on the
     * node-level GPU-to-GPU fabric.  A non-zero id marks the kernel as one
     * inter-GPU transfer: the per-device copies of a collective launched
     * across the node carry the *same* id (they are the same bytes on the
     * same links and must not contend with themselves), while distinct
     * concurrent transfers carry distinct ids and share node bandwidth
     * fairly (sim::NodeFabric).  Kernel models set kAutoFabricGroup to
     * request a fresh id at launch/submit time.
     */
    std::uint64_t fabric_group = 0;
};

}  // namespace fingrav::sim

#endif  // FINGRAV_SIM_KERNEL_WORK_HPP_

#include "sim/power_model.hpp"

#include <algorithm>

#include "support/logging.hpp"

namespace fingrav::sim {

double
PowerModel::voltageRatio(double freq_ratio) const
{
    return p_.voltage_floor + (1.0 - p_.voltage_floor) * freq_ratio;
}

double
PowerModel::leakageScale(double temp_c) const
{
    const double leaky = p_.leakage_fraction;
    const double scale =
        1.0 + p_.leakage_temp_coeff * (temp_c - p_.t_ref_c);
    // Leakage cannot go negative even for absurdly cold inputs.
    return (1.0 - leaky) + leaky * std::max(0.0, scale);
}

RailPower
PowerModel::idle(double freq_ratio, double temp_c) const
{
    FINGRAV_ASSERT(freq_ratio > 0.0, "freq_ratio=", freq_ratio);
    const double leak = leakageScale(temp_c);
    RailPower r;
    r.xcd = p_.xcd_idle_w * leak;
    r.iod = p_.iod_idle_w * leak;
    r.hbm = p_.hbm_idle_w;
    r.misc = p_.misc_w;
    return r;
}

RailPower
PowerModel::instantaneous(const UtilizationVector& util, double freq_ratio,
                          double temp_c) const
{
    RailPower r = idle(freq_ratio, temp_c);
    const double v = voltageRatio(freq_ratio);
    const double fv2 = freq_ratio * v * v;

    r.xcd += p_.xcd_dyn_w * fv2 *
             (p_.xcd_residency_weight * util.xcd_occupancy +
              p_.xcd_issue_weight * util.xcd_issue);
    r.iod += p_.iod_llc_w * util.llc_bw + p_.iod_hbmphy_w * util.hbm_bw +
             p_.iod_fabric_w * util.fabric_bw;
    r.hbm += p_.hbm_dyn_w * util.hbm_bw;
    return r;
}

}  // namespace fingrav::sim

#include "sim/power_logger.hpp"

#include <algorithm>
#include <cmath>

#include "support/logging.hpp"

namespace fingrav::sim {

namespace {

/** Bitwise rail-power equality (segments extend only on exact matches). */
bool
sameRails(const RailPower& a, const RailPower& b)
{
    return a.xcd == b.xcd && a.iod == b.iod && a.hbm == b.hbm &&
           a.misc == b.misc;
}

}  // namespace

PowerLogger::PowerLogger(support::Duration window,
                         const ClockDomain& gpu_clock, double noise_w,
                         support::Rng rng)
    : window_(window), gpu_clock_(gpu_clock), noise_w_(noise_w),
      rng_(std::move(rng))
{
    if (window.nanos() <= 0)
        support::fatal("PowerLogger: window must be positive, got ",
                       window.nanos(), "ns");
}

void
PowerLogger::start(support::SimTime master_now)
{
    if (capturing_)
        return;
    capturing_ = true;
    const std::int64_t gpu_ns = gpu_clock_.domainTime(master_now).nanos();
    // Capture begins at the next window-grid boundary: a real logger's
    // window phase is a property of the device, not of the request.
    window_start_gpu_ns_ = nextWindowEndGpuNs(gpu_ns);
    acc_xcd_ = acc_iod_ = acc_hbm_ = acc_misc_ = 0.0;
    seg_span_ns_ = 0;
}

void
PowerLogger::stop()
{
    capturing_ = false;
    // The partially filled window is discarded, pending segment included.
    seg_span_ns_ = 0;
}

void
PowerLogger::flushSegment()
{
    if (seg_span_ns_ <= 0)
        return;
    const double span = static_cast<double>(seg_span_ns_);
    acc_xcd_ += seg_rails_.xcd * span;
    acc_iod_ += seg_rails_.iod * span;
    acc_hbm_ += seg_rails_.hbm * span;
    acc_misc_ += seg_rails_.misc * span;
    seg_span_ns_ = 0;
}

void
PowerLogger::emitWindow(std::int64_t window_end_gpu_ns)
{
    const double w_ns = static_cast<double>(window_.nanos());
    const std::int64_t ts = window_end_gpu_ns / gpu_clock_.tick().nanos();
    double xcd = acc_xcd_ / w_ns;
    double iod = acc_iod_ / w_ns;
    double hbm = acc_hbm_ / w_ns;
    double misc = acc_misc_ / w_ns;
    if (noise_w_ > 0.0) {
        xcd += rng_.normal(0.0, noise_w_);
        iod += rng_.normal(0.0, noise_w_);
        hbm += rng_.normal(0.0, noise_w_);
        misc += rng_.normal(0.0, noise_w_ * 0.5);
    }
    // Appended column-wise: samples are never staged as row structs.
    samples_.push(ts, xcd + iod + hbm + misc, xcd, iod, hbm);
}

void
PowerLogger::addSlice(support::SimTime master_start, support::Duration dt,
                      const RailPower& rails)
{
    if (!capturing_ || dt.nanos() <= 0)
        return;

    // Map the slice to GPU-domain nanoseconds.  Drift is ppm-scale, so the
    // mapped interval has essentially the master length; all boundary
    // arithmetic below is exact integer math in GPU time, and mapped slice
    // endpoints telescope across consecutive calls.
    const std::int64_t g0 = gpu_clock_.domainTime(master_start).nanos();
    const std::int64_t g1 =
        gpu_clock_.domainTime(master_start + dt).nanos();
    if (g1 <= g0)
        return;

    const std::int64_t w = window_.nanos();
    std::int64_t cur = std::max(g0, window_start_gpu_ns_);
    if (cur >= g1)
        return;

    if (seg_span_ns_ > 0 && !sameRails(seg_rails_, rails))
        flushSegment();
    seg_rails_ = rails;

    // Bulk path: a long constant-power slice closes many windows at once.
    const std::int64_t whole_windows = (g1 - window_start_gpu_ns_) / w;
    if (whole_windows > 4)
        samples_.reserve(samples_.size() +
                         static_cast<std::size_t>(whole_windows));

    while (cur < g1) {
        const std::int64_t window_end = window_start_gpu_ns_ + w;
        const std::int64_t span_end = std::min(g1, window_end);
        seg_span_ns_ += span_end - cur;
        if (span_end == window_end) {
            flushSegment();
            emitWindow(window_end);
            window_start_gpu_ns_ = window_end;
            acc_xcd_ = acc_iod_ = acc_hbm_ = acc_misc_ = 0.0;
        }
        cur = span_end;
    }
}

}  // namespace fingrav::sim

#ifndef FINGRAV_SIM_UTILIZATION_HPP_
#define FINGRAV_SIM_UTILIZATION_HPP_

/**
 * @file
 * Per-resource utilization of a kernel while it executes.
 *
 * Kernel cost models (src/kernels/) reduce a kernel to the fraction of each
 * GPU resource it keeps busy; the power model maps these fractions to rail
 * power.  The five dimensions are the ones the paper's component analysis
 * discriminates on (Section V-C2): XCD compute (occupancy vs issue rate are
 * split so the model can express the paper's power-proportionality takeaway
 * — high occupancy with low issue still burns most of the XCD power), LLC
 * and HBM bandwidth (both housed in the IOD/HBM rails), and Infinity-Fabric
 * bandwidth (IOD rail, dominant for bandwidth-bound collectives).
 */

#include <algorithm>

namespace fingrav::sim {

/** Resource-utilization fractions in [0, 1] while a kernel executes. */
struct UtilizationVector {
    double xcd_occupancy = 0.0;  ///< fraction of CUs holding resident waves
    double xcd_issue = 0.0;      ///< compute-pipe issue-rate fraction
    double llc_bw = 0.0;         ///< fraction of peak Infinity-Cache bandwidth
    double hbm_bw = 0.0;         ///< fraction of peak HBM bandwidth
    double fabric_bw = 0.0;      ///< fraction of peak Infinity-Fabric bandwidth

    /** Element-wise sum, each dimension clamped to 1.0 (resource saturation). */
    UtilizationVector
    saturatingAdd(const UtilizationVector& o) const
    {
        UtilizationVector r;
        r.xcd_occupancy = std::min(1.0, xcd_occupancy + o.xcd_occupancy);
        r.xcd_issue = std::min(1.0, xcd_issue + o.xcd_issue);
        r.llc_bw = std::min(1.0, llc_bw + o.llc_bw);
        r.hbm_bw = std::min(1.0, hbm_bw + o.hbm_bw);
        r.fabric_bw = std::min(1.0, fabric_bw + o.fabric_bw);
        return r;
    }

    /** Largest demand across dimensions (used for contention scaling). */
    double
    peakDemand() const
    {
        return std::max({xcd_issue, llc_bw, hbm_bw, fabric_bw});
    }
};

}  // namespace fingrav::sim

#endif  // FINGRAV_SIM_UTILIZATION_HPP_

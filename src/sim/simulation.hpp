#ifndef FINGRAV_SIM_SIMULATION_HPP_
#define FINGRAV_SIM_SIMULATION_HPP_

/**
 * @file
 * Top-level container of a simulated node.
 *
 * Owns the GPUs of one node, the shared-fabric bandwidth arbiter that
 * couples them during collectives, the host-visible CPU clock domain, the
 * master event queue for scheduled host callbacks, and the root RNG from
 * which every stochastic component forks a private stream.  The runtime
 * layer (src/runtime/) drives this object; nothing here knows about
 * kernels or profiling methodology.
 *
 * Node stepping is epoch-driven: between two fabric-demand changes (a
 * collective starting or completing anywhere on the node) devices are
 * independent, so advanceAllTo advances them in epochs — poll demand,
 * commit the fabric view, advance every device to the earliest next
 * fabric event — optionally in parallel (MachineConfig::advance_threads).
 * The committed fabric view is immutable within an epoch and every device
 * touches only its own state, so the parallel path is bit-identical to
 * the serial one (docs/ARCHITECTURE.md).  The parallel path batches the
 * whole epoch loop into one thread-pool dispatch (ThreadPool::roundLoop):
 * the poll/commit/probe leader section runs exclusively between rounds,
 * so fine-grained epochs no longer pay a job submission handshake each.
 */

#include <cstdint>
#include <functional>
#include <memory>
#include <vector>

#include "sim/clock_domain.hpp"
#include "sim/event_queue.hpp"
#include "sim/fabric.hpp"
#include "sim/gpu_device.hpp"
#include "sim/machine_config.hpp"
#include "support/rng.hpp"
#include "support/thread_pool.hpp"

namespace fingrav::sim {

/** A simulated multi-GPU node plus host clock and event queue. */
class Simulation {
  public:
    /**
     * @param cfg      Machine description applied to every GPU.
     * @param seed     Root seed; all randomness derives from it.
     * @param devices  GPU count (cfg.node_gpus when 0).
     */
    Simulation(const MachineConfig& cfg, std::uint64_t seed,
               std::size_t devices = 0);

    Simulation(const Simulation&) = delete;
    Simulation& operator=(const Simulation&) = delete;

    /** GPU by index. */
    GpuDevice& device(std::size_t i);
    const GpuDevice& device(std::size_t i) const;

    /**
     * Advance every device to `master` in fabric epochs (devices behind
     * the target step; devices already past it are untouched).  Node-level
     * sweeps use this instead of per-device advanceTo calls: it is the
     * path that models shared-fabric contention between devices and, with
     * advance_threads > 1, advances devices concurrently between epochs.
     */
    void advanceAllTo(support::SimTime master);

    /**
     * Advance every device until it drains or `limit` is reached, in
     * fabric epochs.
     *
     * @return The latest master time any device went idle (or `limit`).
     */
    support::SimTime advanceAllUntilIdle(support::SimTime limit);

    /**
     * Advance the node in fabric epochs until device `i` drains or
     * `limit` is reached.  Sibling devices ride along to each epoch
     * boundary so their fabric demand stays current — the coupled
     * equivalent of GpuDevice::advanceUntilIdle, used by the runtime's
     * synchronize while collectives are in flight.
     *
     * @return The master time device `i` went idle (or `limit`).
     */
    support::SimTime advanceDeviceUntilIdle(std::size_t i,
                                            support::SimTime limit);

    /** Number of GPUs in the node. */
    std::size_t deviceCount() const { return devices_.size(); }

    /** The shared node-fabric bandwidth arbiter. */
    NodeFabric& fabric() { return fabric_; }
    const NodeFabric& fabric() const { return fabric_; }

    /** Override the advanceAllTo thread budget (1 = serial). */
    void setAdvanceThreads(std::size_t threads);

    /** Thread budget in force for node stepping. */
    std::size_t advanceThreads() const { return advance_threads_; }

    /** The CPU (host) clock domain: ns resolution, no drift vs master. */
    const ClockDomain& cpuClock() const { return cpu_clock_; }

    /** Host-side timed-callback queue. */
    EventQueue& events() { return events_; }

    /** Machine description in force. */
    const MachineConfig& config() const { return cfg_; }

    /** Fork an independent RNG stream for a named consumer. */
    support::Rng forkRng(std::uint64_t stream_id) { return root_rng_.fork(stream_id); }

  private:
    /**
     * One coupled epoch over `active` devices: poll demand, commit the
     * fabric view, probe the earliest next fabric event (capped at
     * `limit`), and return that epoch boundary.
     */
    support::SimTime epochBoundary(const std::vector<std::size_t>& active,
                                   support::SimTime limit);

    /**
     * Drive an epoch loop: `leader` runs exclusively between rounds (poll
     * demand, commit, probe the epoch boundary) and returns the item
     * count of the next round (0 = done); `item(k)` advances one device.
     * Serial when advance_threads <= 1, one batched pool dispatch
     * otherwise — identical epoch schedule either way.
     */
    void runEpochs(const std::function<std::size_t()>& leader,
                   const std::function<void(std::size_t)>& item);

    MachineConfig cfg_;
    support::Rng root_rng_;
    ClockDomain cpu_clock_;
    EventQueue events_;
    NodeFabric fabric_;  ///< must outlive devices_ (devices hold a pointer)
    std::vector<std::unique_ptr<GpuDevice>> devices_;
    std::size_t advance_threads_;
    std::unique_ptr<support::ThreadPool> pool_;
};

}  // namespace fingrav::sim

#endif  // FINGRAV_SIM_SIMULATION_HPP_

#ifndef FINGRAV_SIM_SIMULATION_HPP_
#define FINGRAV_SIM_SIMULATION_HPP_

/**
 * @file
 * Top-level container of a simulated node.
 *
 * Owns the GPUs of one node, the host-visible CPU clock domain, the master
 * event queue for scheduled host callbacks, and the root RNG from which
 * every stochastic component forks a private stream.  The runtime layer
 * (src/runtime/) drives this object; nothing here knows about kernels or
 * profiling methodology.
 */

#include <cstdint>
#include <memory>
#include <vector>

#include "sim/clock_domain.hpp"
#include "sim/event_queue.hpp"
#include "sim/gpu_device.hpp"
#include "sim/machine_config.hpp"
#include "support/rng.hpp"

namespace fingrav::sim {

/** A simulated multi-GPU node plus host clock and event queue. */
class Simulation {
  public:
    /**
     * @param cfg      Machine description applied to every GPU.
     * @param seed     Root seed; all randomness derives from it.
     * @param devices  GPU count (cfg.node_gpus when 0).
     */
    Simulation(const MachineConfig& cfg, std::uint64_t seed,
               std::size_t devices = 0);

    Simulation(const Simulation&) = delete;
    Simulation& operator=(const Simulation&) = delete;

    /** GPU by index. */
    GpuDevice& device(std::size_t i);
    const GpuDevice& device(std::size_t i) const;

    /**
     * Advance every device to `master` in one coordinated loop (devices
     * behind the target step; devices already past it are untouched).
     * Node-level sweeps use this instead of per-device advanceTo calls.
     */
    void advanceAllTo(support::SimTime master);

    /**
     * Advance every device until it drains or `limit` is reached.
     *
     * @return The latest master time any device went idle (or `limit`).
     */
    support::SimTime advanceAllUntilIdle(support::SimTime limit);

    /** Number of GPUs in the node. */
    std::size_t deviceCount() const { return devices_.size(); }

    /** The CPU (host) clock domain: ns resolution, no drift vs master. */
    const ClockDomain& cpuClock() const { return cpu_clock_; }

    /** Host-side timed-callback queue. */
    EventQueue& events() { return events_; }

    /** Machine description in force. */
    const MachineConfig& config() const { return cfg_; }

    /** Fork an independent RNG stream for a named consumer. */
    support::Rng forkRng(std::uint64_t stream_id) { return root_rng_.fork(stream_id); }

  private:
    MachineConfig cfg_;
    support::Rng root_rng_;
    ClockDomain cpu_clock_;
    EventQueue events_;
    std::vector<std::unique_ptr<GpuDevice>> devices_;
};

}  // namespace fingrav::sim

#endif  // FINGRAV_SIM_SIMULATION_HPP_

#ifndef FINGRAV_SIM_SAMPLE_COLUMNS_HPP_
#define FINGRAV_SIM_SAMPLE_COLUMNS_HPP_

/**
 * @file
 * Columnar power-sample storage — the capture-time SoA block.
 *
 * PR 6 made the *stitched* profile columnar; SampleColumns extends the
 * treatment upstream to capture time.  PowerLogger appends straight into
 * these columns as windows close, RunRecord carries them through the
 * pipeline, and PowerProfile::appendTimelineRun bulk-copies them — no
 * AoS→SoA transpose anywhere between window emission and the stitched
 * profile.
 *
 * PowerSample stays the point-at-a-time exchange type: operator[] and the
 * row iterator materialize one on demand, so point-wise callers (tests,
 * oracles, examples) are source-compatible with the retired
 * std::vector<PowerSample> layout.  The columns are public — kernels
 * index them directly — with the equal-length invariant maintained by
 * the mutators below; code mutating columns directly must keep it.
 */

#include <cstddef>
#include <cstdint>
#include <iterator>
#include <vector>

namespace fingrav::sim {

/** One emitted power log entry (the row view of SampleColumns). */
struct PowerSample {
    std::int64_t gpu_timestamp = 0;  ///< GPU counter ticks at window end
    double total_w = 0.0;            ///< window-average VR output power
    double xcd_w = 0.0;              ///< window-average XCD rail power
    double iod_w = 0.0;              ///< window-average IOD rail power
    double hbm_w = 0.0;              ///< window-average HBM rail power
};

/** Bitwise sample equality (stepping-mode equivalence checks). */
inline bool
operator==(const PowerSample& a, const PowerSample& b)
{
    return a.gpu_timestamp == b.gpu_timestamp && a.total_w == b.total_w &&
           a.xcd_w == b.xcd_w && a.iod_w == b.iod_w && a.hbm_w == b.hbm_w;
}

/** A run's power log, one contiguous column per sample field. */
struct SampleColumns {
    std::vector<std::int64_t> gpu_timestamp;
    std::vector<double> total_w;
    std::vector<double> xcd_w;
    std::vector<double> iod_w;
    std::vector<double> hbm_w;

    std::size_t size() const { return gpu_timestamp.size(); }
    bool empty() const { return gpu_timestamp.empty(); }

    void
    clear()
    {
        gpu_timestamp.clear();
        total_w.clear();
        xcd_w.clear();
        iod_w.clear();
        hbm_w.clear();
    }

    /** Reserve capacity (absolute, vector semantics) in every column. */
    void
    reserve(std::size_t n)
    {
        gpu_timestamp.reserve(n);
        total_w.reserve(n);
        xcd_w.reserve(n);
        iod_w.reserve(n);
        hbm_w.reserve(n);
    }

    /** Append one row field-wise (the logger's emission path). */
    void
    push(std::int64_t ts, double total, double xcd, double iod, double hbm)
    {
        gpu_timestamp.push_back(ts);
        total_w.push_back(total);
        xcd_w.push_back(xcd);
        iod_w.push_back(iod);
        hbm_w.push_back(hbm);
    }

    /** Append one row from the exchange type. */
    void
    push_back(const PowerSample& s)
    {
        push(s.gpu_timestamp, s.total_w, s.xcd_w, s.iod_w, s.hbm_w);
    }

    /** Materialize row i. */
    PowerSample
    operator[](std::size_t i) const
    {
        PowerSample s;
        s.gpu_timestamp = gpu_timestamp[i];
        s.total_w = total_w[i];
        s.xcd_w = xcd_w[i];
        s.iod_w = iod_w[i];
        s.hbm_w = hbm_w[i];
        return s;
    }

    /** Materialize the first/last row (columns must be non-empty). */
    PowerSample front() const { return (*this)[0]; }
    PowerSample back() const { return (*this)[size() - 1]; }

    // -- row view (source compatibility with the AoS layout) -------------

    /** Iterator materializing PowerSamples from the columns on demand. */
    class RowIterator {
      public:
        using iterator_category = std::input_iterator_tag;
        using value_type = PowerSample;
        using difference_type = std::ptrdiff_t;
        using pointer = const PowerSample*;
        using reference = PowerSample;

        RowIterator(const SampleColumns* c, std::size_t i) : cols_(c), i_(i)
        {
        }

        PowerSample operator*() const { return (*cols_)[i_]; }
        RowIterator& operator++() { ++i_; return *this; }
        RowIterator operator++(int) { auto c = *this; ++i_; return c; }
        bool operator==(const RowIterator& o) const { return i_ == o.i_; }
        bool operator!=(const RowIterator& o) const { return i_ != o.i_; }

      private:
        const SampleColumns* cols_;
        std::size_t i_;
    };

    RowIterator begin() const { return {this, 0}; }
    RowIterator end() const { return {this, size()}; }
};

/** Bitwise column equality (thread-count / replay equivalence checks). */
inline bool
operator==(const SampleColumns& a, const SampleColumns& b)
{
    return a.gpu_timestamp == b.gpu_timestamp && a.total_w == b.total_w &&
           a.xcd_w == b.xcd_w && a.iod_w == b.iod_w && a.hbm_w == b.hbm_w;
}

inline bool
operator!=(const SampleColumns& a, const SampleColumns& b)
{
    return !(a == b);
}

}  // namespace fingrav::sim

#endif  // FINGRAV_SIM_SAMPLE_COLUMNS_HPP_

#include "sim/clock_domain.hpp"

#include <cmath>

#include "support/logging.hpp"

namespace fingrav::sim {

ClockDomain::ClockDomain(support::Duration offset, double drift_ppm,
                         support::Duration tick)
    : offset_(offset), drift_ppm_(drift_ppm), tick_(tick),
      rate_(1.0 + drift_ppm * 1e-6)
{
    if (tick.nanos() <= 0)
        support::fatal("ClockDomain: tick must be positive, got ",
                       tick.nanos(), "ns");
    FINGRAV_ASSERT(rate_ > 0.0, "clock rate must be positive");
}

support::SimTime
ClockDomain::domainTime(support::SimTime master) const
{
    const double ns =
        static_cast<double>(offset_.nanos()) +
        static_cast<double>(master.nanos()) * rate_;
    return support::SimTime::fromNanos(static_cast<std::int64_t>(ns));
}

support::SimTime
ClockDomain::masterTime(support::SimTime domain) const
{
    const double ns =
        (static_cast<double>(domain.nanos()) -
         static_cast<double>(offset_.nanos())) /
        rate_;
    return support::SimTime::fromNanos(static_cast<std::int64_t>(ns));
}

std::int64_t
ClockDomain::readCounter(support::SimTime master) const
{
    return domainTime(master).nanos() / tick_.nanos();
}

}  // namespace fingrav::sim

#ifndef FINGRAV_SIM_CLOCK_DOMAIN_HPP_
#define FINGRAV_SIM_CLOCK_DOMAIN_HPP_

/**
 * @file
 * Clock domains over master simulation time.
 *
 * The paper's challenge C2 exists because the GPU power logger timestamps
 * samples with the *GPU* timestamp counter while kernel scheduling is
 * observed in *CPU* time; the two clocks share neither epoch nor exact rate.
 * A ClockDomain is an affine map from master simulation time to a domain
 * clock:
 *
 *   domain_ns(master) = offset_ns + (master_ns) * (1 + drift_ppm * 1e-6)
 *
 * plus counter quantization (the GPU counter ticks at a finite rate).  The
 * CPU clock of a simulation is a ClockDomain with zero drift and its own
 * large epoch offset; the GPU clock drifts by a few ppm, which is what makes
 * naive one-shot synchronization degrade over long captures (the Lang et
 * al. comparison in Section VII).
 */

#include <cstdint>

#include "support/time_types.hpp"

namespace fingrav::sim {

/** Affine clock over master time with quantized counter reads. */
class ClockDomain {
  public:
    /**
     * @param offset     Domain time at master time zero.
     * @param drift_ppm  Rate error relative to master, parts per million.
     * @param tick       Counter resolution (> 0).
     */
    ClockDomain(support::Duration offset, double drift_ppm,
                support::Duration tick);

    /** Exact (unquantized) domain time for a master time. */
    support::SimTime domainTime(support::SimTime master) const;

    /** Inverse map: master time at which the domain clock reads `domain`. */
    support::SimTime masterTime(support::SimTime domain) const;

    /** Quantized counter value (in ticks) at a master time. */
    std::int64_t readCounter(support::SimTime master) const;

    /** Convert a counter value to domain nanoseconds. */
    std::int64_t
    counterToNanos(std::int64_t ticks) const
    {
        return ticks * tick_.nanos();
    }

    /** Counter resolution. */
    support::Duration tick() const { return tick_; }

    /** Rate error in ppm. */
    double driftPpm() const { return drift_ppm_; }

    /** Domain time at master zero. */
    support::Duration offset() const { return offset_; }

  private:
    support::Duration offset_;
    double drift_ppm_;
    support::Duration tick_;
    double rate_;  ///< 1 + drift_ppm * 1e-6
};

}  // namespace fingrav::sim

#endif  // FINGRAV_SIM_CLOCK_DOMAIN_HPP_

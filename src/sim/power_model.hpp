#ifndef FINGRAV_SIM_POWER_MODEL_HPP_
#define FINGRAV_SIM_POWER_MODEL_HPP_

/**
 * @file
 * Instantaneous per-rail power model.
 *
 * The MI300X telemetry in the paper decomposes voltage-regulator output
 * power into XCD (compute chiplets), IOD (I/O dies: Infinity Cache, HBM
 * controllers/PHY, Infinity Fabric) and HBM rails.  This model maps a
 * kernel's UtilizationVector plus the dynamic operating point (frequency
 * ratio, voltage ratio, temperature) to watts per rail:
 *
 *   XCD = idle·leak(T) + D_xcd · (f/fn)(V/Vn)^2 · (w_res·occ + w_iss·issue)
 *   IOD = idle·leak(T) + D_llc·llc + D_phy·hbm + D_fab·fabric
 *   HBM = idle + D_hbm·hbm
 *   misc = constant (VR losses, board)
 *
 * The deliberately large `w_res` residency weight encodes the paper's
 * power-proportionality takeaway #4: an XCD with resident waves burns most
 * of its dynamic power even at half the issue rate (CB-2K-GEMM vs
 * CB-8K-GEMM observation, Section V-C2).
 */

#include "sim/utilization.hpp"

namespace fingrav::sim {

/** Power per telemetry rail, watts. */
struct RailPower {
    double xcd = 0.0;   ///< accelerated compute dies
    double iod = 0.0;   ///< I/O dies (LLC + memory interface + fabric)
    double hbm = 0.0;   ///< HBM stacks
    double misc = 0.0;  ///< regulator losses, board, everything else

    /** Voltage-regulator output total (the paper's "total power"). */
    double total() const { return xcd + iod + hbm + misc; }

    RailPower
    operator+(const RailPower& o) const
    {
        return {xcd + o.xcd, iod + o.iod, hbm + o.hbm, misc + o.misc};
    }

    RailPower
    operator*(double f) const
    {
        return {xcd * f, iod * f, hbm * f, misc * f};
    }
};

/** Coefficients of the rail power model (see file comment for the form). */
struct PowerModelParams {
    // Idle floors, watts.
    double xcd_idle_w = 60.0;
    double iod_idle_w = 55.0;
    double hbm_idle_w = 30.0;
    double misc_w = 20.0;

    // XCD dynamic power at nominal frequency/voltage, watts at full load.
    double xcd_dyn_w = 500.0;
    double xcd_residency_weight = 0.70;  ///< non-proportional share (takeaway #4)
    double xcd_issue_weight = 0.30;      ///< issue-proportional share

    // IOD dynamic contributions, watts at full utilization of each port.
    double iod_llc_w = 70.0;     ///< Infinity-Cache bandwidth
    double iod_hbmphy_w = 40.0;  ///< HBM controller + PHY
    double iod_fabric_w = 110.0; ///< Infinity-Fabric SerDes

    // HBM dynamic power at full bandwidth, watts.
    double hbm_dyn_w = 170.0;

    // Leakage: fraction of the XCD/IOD idle floors that scales with
    // temperature, and the linear coefficient per kelvin around t_ref_c.
    double leakage_fraction = 0.45;
    double leakage_temp_coeff = 0.010;
    double t_ref_c = 45.0;

    // Voltage curve: V(f)/Vn = v_floor + (1 - v_floor) * (f/fn).
    double voltage_floor = 0.62;
};

/** Stateless evaluator of the rail power model. */
class PowerModel {
  public:
    explicit PowerModel(const PowerModelParams& params) : p_(params) {}

    /**
     * Instantaneous rail power.
     *
     * @param util        Aggregate utilization of currently-running kernels.
     * @param freq_ratio  f / f_nominal in (0, ~1.05].
     * @param temp_c      Package temperature, degrees C.
     */
    RailPower instantaneous(const UtilizationVector& util, double freq_ratio,
                            double temp_c) const;

    /** Idle rail power at the given operating point. */
    RailPower idle(double freq_ratio, double temp_c) const;

    /** Voltage ratio V/Vn for a frequency ratio (linear DVFS curve). */
    double voltageRatio(double freq_ratio) const;

    /** The parameter set in use. */
    const PowerModelParams& params() const { return p_; }

  private:
    /** Temperature multiplier applied to the leaky share of idle power. */
    double leakageScale(double temp_c) const;

    PowerModelParams p_;
};

}  // namespace fingrav::sim

#endif  // FINGRAV_SIM_POWER_MODEL_HPP_

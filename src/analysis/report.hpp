#ifndef FINGRAV_ANALYSIS_REPORT_HPP_
#define FINGRAV_ANALYSIS_REPORT_HPP_

/**
 * @file
 * Shared experiment scaffolding for the bench binaries.
 *
 * Every bench regenerates one paper table or figure: it builds a fresh
 * simulated node per campaign (deterministic given the seed), runs the
 * profiler, prints the paper-style rows/series, and dumps CSVs for
 * external replotting under ./fingrav_out/.
 */

#include <memory>
#include <string>

#include "fingrav/campaign_runner.hpp"
#include "fingrav/profiler.hpp"
#include "fingrav/recorded_campaign.hpp"
#include "kernels/kernel_model.hpp"
#include "runtime/host_runtime.hpp"
#include "sim/machine_config.hpp"
#include "sim/simulation.hpp"
#include "support/rng.hpp"

namespace fingrav::analysis {

/** A fresh node + runtime bundle for one profiling campaign. */
class Campaign {
  public:
    /**
     * @param seed     Root seed (campaigns are bit-reproducible).
     * @param devices  GPUs to instantiate (0 = full node).
     * @param cfg      Machine description (default: calibrated MI300X).
     */
    explicit Campaign(std::uint64_t seed, std::size_t devices = 1,
                      const sim::MachineConfig& cfg = sim::mi300xConfig());

    /** The runtime to hand to profilers. */
    runtime::HostRuntime& host() { return *host_; }

    /** The machine description. */
    const sim::MachineConfig& config() const { return cfg_; }

    /** Build a profiler over this campaign's runtime. */
    core::Profiler profiler(core::ProfilerOptions opts = {});

    /** Run a full default-methodology campaign for one kernel. */
    core::ProfileSet run(const kernels::KernelModelPtr& kernel,
                         core::ProfilerOptions opts = {});

  private:
    sim::MachineConfig cfg_;
    std::unique_ptr<sim::Simulation> sim_;
    std::unique_ptr<runtime::HostRuntime> host_;
};

/**
 * Profile a paper kernel on a fresh node (devices chosen automatically:
 * full node for collectives, single GPU otherwise).  Builds an isolated
 * core::ScenarioSpec and hands it to core::CampaignRunner::runOne;
 * campaign *sets* should go through core::CampaignRunner::run to profile
 * concurrently.
 */
core::ProfileSet profileOnFreshNode(const std::string& label,
                                    std::uint64_t seed,
                                    core::ProfilerOptions opts = {});

/**
 * The nine-kernel Fig. 10 campaign set (bench_fig10's labels and seed
 * base 10001) at the given run budget (no step-8 top-up), optionally
 * plus one AR-512MB scenario under steady 60 % injected fabric demand.
 * The shared spec list the sharding identity gates compare placements
 * on (tests/shard_test.cpp, bench_shard) — one definition, so the
 * gates cannot desynchronize.
 */
std::vector<core::ScenarioSpec> fig10ScenarioSet(
    std::size_t runs, bool with_contended = true);

/** One-line summary of a campaign (label, exec time, LOIs, golden runs). */
std::string summarize(const core::ProfileSet& set);

/**
 * Summary extended with the guidance-autotuning observable: the LOI
 * yield line gains the run budget the campaign *actually* needed
 * (core::RecordedCampaign::autotuneBudget) next to Table I's static
 * recommendation.
 */
std::string summarize(const core::ProfileSet& set,
                      const core::AutotuneResult& autotune);

/** One normalized-TOI phase of a contention comparison. */
struct ContentionPhase {
    double frac_lo = 0.0;        ///< phase start, fraction of exec time
    double frac_hi = 0.0;        ///< phase end
    double isolated_w = 0.0;     ///< mean isolated SSP power in the phase
    double contended_w = 0.0;    ///< mean contended SSP power in the phase
    std::size_t isolated_lois = 0;
    std::size_t contended_lois = 0;

    /** Contended-vs-isolated power shift, percent (0 when no LOIs). */
    double deltaPct() const;
};

/**
 * Per-phase SSP comparison of the same kernel profiled in isolation and
 * under a scenario environment: execution-time stretch, contended-LOI
 * coverage, and the SSP power delta per normalized-TOI phase (phases are
 * fractions of execution time because the contended execution runs
 * longer — the paper-style per-phase view).
 */
struct ContentionDelta {
    double exec_stretch = 0.0;       ///< contended/isolated SSP exec time
    double ssp_delta_pct = 0.0;      ///< overall mean SSP power shift, %
    double contended_loi_frac = 0.0; ///< contended-flagged share of LOIs
    std::vector<ContentionPhase> phases;
};

/** Compare isolated vs contended ProfileSets of one kernel. */
ContentionDelta contentionDelta(const core::ProfileSet& isolated,
                                const core::ProfileSet& contended,
                                std::size_t phases = 4);

/** Printable per-phase contention-delta table. */
std::string contentionReport(const ContentionDelta& delta);

/** Dump a profile as CSV under ./fingrav_out/<name>.csv (best effort). */
void dumpProfileCsv(const core::PowerProfile& profile,
                    const std::string& name);

/** Print the standard bench header. */
void printHeader(const std::string& experiment, const std::string& claim);

}  // namespace fingrav::analysis

#endif  // FINGRAV_ANALYSIS_REPORT_HPP_

#include "analysis/series.hpp"

#include <algorithm>
#include <numeric>

#include "support/logging.hpp"

namespace fingrav::analysis {

Series
toSeries(const core::PowerProfile& profile, core::Rail rail)
{
    // Index sort over the stored x column, then one gather per output
    // column — no point materialization, no per-point rail dispatch.
    // Same comparator as ever, so ordering (including the treatment of
    // ties by std::sort) is unchanged.
    const std::vector<double>& xs = profile.xColumn();
    const std::vector<double>& ys = profile.railColumn(rail);
    std::vector<std::size_t> order(profile.size());
    std::iota(order.begin(), order.end(), 0);
    std::sort(order.begin(), order.end(),
              [&](std::size_t a, std::size_t b) { return xs[a] < xs[b]; });

    Series s;
    s.x.reserve(order.size());
    s.y.reserve(order.size());
    for (std::size_t i : order) {
        s.x.push_back(xs[i]);
        s.y.push_back(ys[i]);
    }
    return s;
}

Series
normalized(Series s, double reference)
{
    if (reference <= 0.0)
        support::fatal("normalized: non-positive reference ", reference);
    for (double& v : s.y)
        v /= reference;
    return s;
}

double
meanY(const Series& s)
{
    if (s.y.empty())
        return 0.0;
    return std::accumulate(s.y.begin(), s.y.end(), 0.0) /
           static_cast<double>(s.y.size());
}

double
maxY(const Series& s)
{
    if (s.y.empty())
        return 0.0;
    return *std::max_element(s.y.begin(), s.y.end());
}

Series
trendSeries(const core::PowerProfile& profile, core::Rail rail,
            std::size_t degree, std::size_t points)
{
    Series out;
    if (profile.empty() || points < 2)
        return out;
    const auto fit = profile.trend(rail, degree);
    const auto raw = toSeries(profile, rail);
    const double lo = raw.x.front();
    const double hi = raw.x.back();
    out.x.reserve(points);
    out.y.reserve(points);
    for (std::size_t i = 0; i < points; ++i) {
        const double x =
            lo + (hi - lo) * static_cast<double>(i) /
                     static_cast<double>(points - 1);
        out.x.push_back(x);
        out.y.push_back(fit.poly(x));
    }
    return out;
}

}  // namespace fingrav::analysis

#include "analysis/series.hpp"

#include <algorithm>
#include <numeric>

#include "support/logging.hpp"

namespace fingrav::analysis {

Series
toSeries(const core::PowerProfile& profile, core::Rail rail)
{
    const auto& pts = profile.points();
    std::vector<std::size_t> order(pts.size());
    std::iota(order.begin(), order.end(), 0);
    const bool timeline =
        profile.kind() == core::ProfileKind::kTimeline;
    auto key = [&](std::size_t i) {
        return timeline ? pts[i].run_time_us : pts[i].toi_us;
    };
    std::sort(order.begin(), order.end(),
              [&](std::size_t a, std::size_t b) { return key(a) < key(b); });

    Series s;
    s.x.reserve(pts.size());
    s.y.reserve(pts.size());
    for (std::size_t i : order) {
        s.x.push_back(key(i));
        s.y.push_back(core::railValue(pts[i].sample, rail));
    }
    return s;
}

Series
normalized(Series s, double reference)
{
    if (reference <= 0.0)
        support::fatal("normalized: non-positive reference ", reference);
    for (double& v : s.y)
        v /= reference;
    return s;
}

double
meanY(const Series& s)
{
    if (s.y.empty())
        return 0.0;
    return std::accumulate(s.y.begin(), s.y.end(), 0.0) /
           static_cast<double>(s.y.size());
}

double
maxY(const Series& s)
{
    if (s.y.empty())
        return 0.0;
    return *std::max_element(s.y.begin(), s.y.end());
}

Series
trendSeries(const core::PowerProfile& profile, core::Rail rail,
            std::size_t degree, std::size_t points)
{
    Series out;
    if (profile.empty() || points < 2)
        return out;
    const auto fit = profile.trend(rail, degree);
    const auto raw = toSeries(profile, rail);
    const double lo = raw.x.front();
    const double hi = raw.x.back();
    out.x.reserve(points);
    out.y.reserve(points);
    for (std::size_t i = 0; i < points; ++i) {
        const double x =
            lo + (hi - lo) * static_cast<double>(i) /
                     static_cast<double>(points - 1);
        out.x.push_back(x);
        out.y.push_back(fit.poly(x));
    }
    return out;
}

}  // namespace fingrav::analysis

#include "analysis/ascii_plot.hpp"

#include <algorithm>
#include <cmath>
#include <iomanip>
#include <limits>
#include <sstream>

#include "support/logging.hpp"

namespace fingrav::analysis {

AsciiPlot::AsciiPlot(std::size_t width, std::size_t height)
    : width_(width), height_(height)
{
    if (width < 16 || height < 4)
        support::fatal("AsciiPlot: grid ", width, "x", height, " too small");
}

void
AsciiPlot::addSeries(const Series& s, char glyph, std::string legend)
{
    layers_.push_back(Layer{s, glyph, std::move(legend)});
}

void
AsciiPlot::setYRange(double lo, double hi)
{
    if (hi <= lo)
        support::fatal("AsciiPlot: empty y range");
    fixed_y_ = true;
    y_lo_ = lo;
    y_hi_ = hi;
}

std::string
AsciiPlot::render() const
{
    double x_lo = std::numeric_limits<double>::infinity();
    double x_hi = -x_lo;
    double y_lo = fixed_y_ ? y_lo_ : std::numeric_limits<double>::infinity();
    double y_hi = fixed_y_ ? y_hi_ : -std::numeric_limits<double>::infinity();
    bool any = false;
    for (const auto& layer : layers_) {
        for (std::size_t i = 0; i < layer.series.size(); ++i) {
            any = true;
            x_lo = std::min(x_lo, layer.series.x[i]);
            x_hi = std::max(x_hi, layer.series.x[i]);
            if (!fixed_y_) {
                y_lo = std::min(y_lo, layer.series.y[i]);
                y_hi = std::max(y_hi, layer.series.y[i]);
            }
        }
    }
    if (!any)
        return "(no data)\n";
    if (x_hi <= x_lo)
        x_hi = x_lo + 1.0;
    if (y_hi <= y_lo)
        y_hi = y_lo + 1.0;

    std::vector<std::string> grid(height_, std::string(width_, ' '));
    for (const auto& layer : layers_) {
        for (std::size_t i = 0; i < layer.series.size(); ++i) {
            const double fx = (layer.series.x[i] - x_lo) / (x_hi - x_lo);
            const double fy = (layer.series.y[i] - y_lo) / (y_hi - y_lo);
            auto cx = static_cast<std::size_t>(
                std::round(fx * static_cast<double>(width_ - 1)));
            auto cy = static_cast<std::size_t>(
                std::round((1.0 - std::clamp(fy, 0.0, 1.0)) *
                           static_cast<double>(height_ - 1)));
            grid[cy][cx] = layer.glyph;
        }
    }

    std::ostringstream oss;
    oss << std::setprecision(4);
    for (std::size_t r = 0; r < height_; ++r) {
        if (r == 0) {
            oss << std::setw(9) << y_hi << " |";
        } else if (r == height_ - 1) {
            oss << std::setw(9) << y_lo << " |";
        } else {
            oss << std::string(9, ' ') << " |";
        }
        oss << grid[r] << "\n";
    }
    oss << std::string(10, ' ') << "+" << std::string(width_, '-') << "\n";
    oss << std::string(11, ' ') << x_lo << " ... " << x_hi << "\n";
    for (const auto& layer : layers_)
        oss << "            " << layer.glyph << " = " << layer.legend << "\n";
    return oss.str();
}

}  // namespace fingrav::analysis

#ifndef FINGRAV_ANALYSIS_SERIES_HPP_
#define FINGRAV_ANALYSIS_SERIES_HPP_

/**
 * @file
 * (x, y) series extraction from power profiles.
 *
 * The figure benches plot profiles the way the paper does: LOI power
 * against TOI (per-execution profiles) or against run time (Fig. 6/8
 * timelines), optionally normalized to relative power — the paper reports
 * only relative power data (its footnote 1).
 */

#include <vector>

#include "fingrav/profile.hpp"

namespace fingrav::analysis {

/** A plottable series. */
struct Series {
    std::vector<double> x;
    std::vector<double> y;

    std::size_t size() const { return x.size(); }
    bool empty() const { return x.empty(); }
};

/**
 * Extract a rail series from a profile, sorted by x.
 *
 * X is TOI (us) for SSE/SSP profiles and run time (us) for timelines.
 */
Series toSeries(const core::PowerProfile& profile, core::Rail rail);

/** Scale a series' y values by 1/reference (relative power). */
Series normalized(Series s, double reference);

/** Mean of the y values; 0 when empty. */
double meanY(const Series& s);

/** Largest y value; 0 when empty. */
double maxY(const Series& s);

/**
 * Evaluate a profile's polynomial trend on an even x grid (the paper's
 * regression-line overlays), returning a dense series of `points` points.
 */
Series trendSeries(const core::PowerProfile& profile, core::Rail rail,
                   std::size_t degree = 4, std::size_t points = 64);

}  // namespace fingrav::analysis

#endif  // FINGRAV_ANALYSIS_SERIES_HPP_

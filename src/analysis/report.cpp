#include "analysis/report.hpp"

#include <filesystem>
#include <iostream>
#include <sstream>

#include "kernels/workloads.hpp"
#include "support/logging.hpp"
#include "support/table.hpp"

namespace fingrav::analysis {

Campaign::Campaign(std::uint64_t seed, std::size_t devices,
                   const sim::MachineConfig& cfg)
    : cfg_(cfg),
      sim_(std::make_unique<sim::Simulation>(cfg, seed, devices)),
      host_(std::make_unique<runtime::HostRuntime>(*sim_,
                                                   sim_->forkRng(7)))
{
}

core::Profiler
Campaign::profiler(core::ProfilerOptions opts)
{
    return core::Profiler(*host_, opts, sim_->forkRng(8));
}

core::ProfileSet
Campaign::run(const kernels::KernelModelPtr& kernel,
              core::ProfilerOptions opts)
{
    return profiler(opts).profile(kernel);
}

core::ProfileSet
profileOnFreshNode(const std::string& label, std::uint64_t seed,
                   core::ProfilerOptions opts)
{
    // Delegates to the campaign engine; CampaignRunner::runOne mirrors
    // the Campaign construction bitwise, so results are unchanged.
    core::CampaignSpec spec;
    spec.label = label;
    spec.seed = seed;
    spec.opts = opts;
    return core::CampaignRunner::runOne(spec);
}

std::string
summarize(const core::ProfileSet& set)
{
    std::ostringstream oss;
    oss << set.label << ": exec " << set.measured_exec_time.toMicros()
        << " us, runs " << set.runs_executed << " (golden "
        << set.binning.golden_runs.size() << ", "
        << set.binning.outlierCount() << " outliers), SSE idx "
        << set.sse_exec_index << ", SSP idx " << set.ssp_exec_index
        << ", LOIs sse/ssp " << set.sse.size() << "/" << set.ssp.size()
        << ", SSP power " << set.ssp.meanPower() << " W";
    return oss.str();
}

void
dumpProfileCsv(const core::PowerProfile& profile, const std::string& name)
{
    namespace fs = std::filesystem;
    std::error_code ec;
    fs::create_directories("fingrav_out", ec);
    if (ec) {
        support::warn("dumpProfileCsv: cannot create fingrav_out: ",
                      ec.message());
        return;
    }
    support::CsvWriter csv({"toi_us", "toi_frac", "run_time_us", "total_w",
                            "xcd_w", "iod_w", "hbm_w", "run", "exec"});
    for (const auto& p : profile.points()) {
        csv.addNumericRow({p.toi_us, p.toi_frac, p.run_time_us,
                           p.sample.total_w, p.sample.xcd_w, p.sample.iod_w,
                           p.sample.hbm_w,
                           static_cast<double>(p.run_index),
                           static_cast<double>(p.exec_index)});
    }
    csv.writeFile("fingrav_out/" + name + ".csv");
}

void
printHeader(const std::string& experiment, const std::string& claim)
{
    std::cout << "\n=============================================================\n"
              << experiment << "\n" << claim << "\n"
              << "=============================================================\n";
}

}  // namespace fingrav::analysis

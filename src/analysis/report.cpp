#include "analysis/report.hpp"

#include <algorithm>
#include <filesystem>
#include <iostream>
#include <sstream>

#include "kernels/workloads.hpp"
#include "support/logging.hpp"
#include "support/table.hpp"

namespace fingrav::analysis {

Campaign::Campaign(std::uint64_t seed, std::size_t devices,
                   const sim::MachineConfig& cfg)
    : cfg_(cfg),
      sim_(std::make_unique<sim::Simulation>(cfg, seed, devices)),
      host_(std::make_unique<runtime::HostRuntime>(*sim_,
                                                   sim_->forkRng(7)))
{
}

core::Profiler
Campaign::profiler(core::ProfilerOptions opts)
{
    return core::Profiler(*host_, opts, sim_->forkRng(8));
}

core::ProfileSet
Campaign::run(const kernels::KernelModelPtr& kernel,
              core::ProfilerOptions opts)
{
    return profiler(opts).profile(kernel);
}

core::ProfileSet
profileOnFreshNode(const std::string& label, std::uint64_t seed,
                   core::ProfilerOptions opts)
{
    // Delegates to the campaign engine as an isolated scenario;
    // CampaignNode mirrors the legacy Campaign construction bitwise for
    // background-free scenarios, so results are unchanged.
    core::ScenarioSpec spec;
    spec.label = label;
    spec.seed = seed;
    spec.opts = opts;
    return core::CampaignRunner::runOne(spec);
}

std::vector<core::ScenarioSpec>
fig10ScenarioSet(std::size_t runs, bool with_contended)
{
    core::ProfilerOptions opts;
    opts.runs_override = runs;
    opts.collect_extra_runs = false;

    std::vector<core::ScenarioSpec> specs;
    std::uint64_t seed = 10001;  // bench_fig10's seeds
    for (const char* label :
         {"AG-64KB", "AG-128KB", "AG-512MB", "AG-1GB", "AR-64KB",
          "AR-128KB", "AR-512MB", "AR-1GB", "CB-8K-GEMM"}) {
        core::ScenarioSpec spec;
        spec.label = label;
        spec.seed = seed++;
        spec.opts = opts;
        specs.push_back(std::move(spec));
    }
    if (with_contended) {
        core::ScenarioSpec contended;
        contended.label = "AR-512MB";
        contended.seed = seed;
        contended.opts = opts;
        core::BackgroundLoad demand;
        demand.kind = core::BackgroundKind::kFabricDemand;
        demand.demand = 0.6;
        contended.background.push_back(demand);
        specs.push_back(std::move(contended));
    }
    return specs;
}

std::string
summarize(const core::ProfileSet& set)
{
    std::ostringstream oss;
    oss << set.label << ": exec " << set.measured_exec_time.toMicros()
        << " us, runs " << set.runs_executed << " (golden "
        << set.binning.golden_runs.size() << ", "
        << set.binning.outlierCount() << " outliers), SSE idx "
        << set.sse_exec_index << ", SSP idx " << set.ssp_exec_index
        << ", LOIs sse/ssp " << set.sse.size() << "/" << set.ssp.size();
    // Custom profile_fn pipelines may apply no guidance target at all.
    if (set.loi_target > 0) {
        oss << ", LOI yield " << set.ssp.size() << "/" << set.loi_target
            << " (" << static_cast<int>(set.loiYield() * 100.0 + 0.5)
            << "%)";
    }
    oss << ", SSP power " << set.ssp.meanPower() << " W";
    if (const auto contended = set.ssp.contendedCount(); contended > 0)
        oss << ", contended LOIs " << contended << "/" << set.ssp.size();
    return oss.str();
}

std::string
summarize(const core::ProfileSet& set,
          const core::AutotuneResult& autotune)
{
    std::ostringstream oss;
    oss << summarize(set) << ", autotuned runs " << autotune.runs_needed
        << " vs Table I " << autotune.recommended_runs << " (target "
        << autotune.loi_target << " LOIs ";
    if (autotune.target_met) {
        oss << "met";
        if (autotune.budgetDelta() > 0)
            oss << ", " << autotune.budgetDelta() << " runs to spare";
    } else {
        oss << "NOT met within the " << autotune.pool_runs << "-run pool";
    }
    oss << ")";
    return oss.str();
}

double
ContentionPhase::deltaPct() const
{
    if (isolated_lois == 0 || contended_lois == 0 || isolated_w == 0.0)
        return 0.0;
    return (contended_w - isolated_w) / isolated_w * 100.0;
}

ContentionDelta
contentionDelta(const core::ProfileSet& isolated,
                const core::ProfileSet& contended, std::size_t phases)
{
    if (phases == 0)
        support::fatal("contentionDelta: need at least one phase");
    if (isolated.label != contended.label)
        support::warn("contentionDelta: comparing different kernels (",
                      isolated.label, " vs ", contended.label, ")");

    ContentionDelta out;
    if (isolated.ssp_exec_time.nanos() > 0) {
        out.exec_stretch = contended.ssp_exec_time.toMicros() /
                           isolated.ssp_exec_time.toMicros();
    }
    const double iso_w = isolated.ssp.meanPower();
    if (iso_w > 0.0) {
        out.ssp_delta_pct =
            (contended.ssp.meanPower() - iso_w) / iso_w * 100.0;
    }
    if (!contended.ssp.empty()) {
        out.contended_loi_frac =
            static_cast<double>(contended.ssp.contendedCount()) /
            static_cast<double>(contended.ssp.size());
    }

    // Phases are normalized-TOI bins: the contended execution is longer,
    // so absolute TOIs do not correspond — fractions of each execution do.
    out.phases.resize(phases);
    for (std::size_t i = 0; i < phases; ++i) {
        out.phases[i].frac_lo =
            static_cast<double>(i) / static_cast<double>(phases);
        out.phases[i].frac_hi =
            static_cast<double>(i + 1) / static_cast<double>(phases);
    }
    auto bin_of = [&](double frac) {
        const auto b = static_cast<std::size_t>(
            std::clamp(frac, 0.0, 1.0) * static_cast<double>(phases));
        return std::min(b, phases - 1);
    };
    // Histogram fill straight off the toi_frac / total_w columns, in
    // point order (sums reproduce the former point-loop bit for bit).
    {
        const auto& frac = isolated.ssp.toiFrac();
        const auto& watts = isolated.ssp.railColumn(core::Rail::kTotal);
        for (std::size_t i = 0; i < frac.size(); ++i) {
            auto& phase = out.phases[bin_of(frac[i])];
            phase.isolated_w += watts[i];
            ++phase.isolated_lois;
        }
    }
    {
        const auto& frac = contended.ssp.toiFrac();
        const auto& watts = contended.ssp.railColumn(core::Rail::kTotal);
        for (std::size_t i = 0; i < frac.size(); ++i) {
            auto& phase = out.phases[bin_of(frac[i])];
            phase.contended_w += watts[i];
            ++phase.contended_lois;
        }
    }
    for (auto& phase : out.phases) {
        if (phase.isolated_lois > 0)
            phase.isolated_w /= static_cast<double>(phase.isolated_lois);
        if (phase.contended_lois > 0)
            phase.contended_w /= static_cast<double>(phase.contended_lois);
    }
    return out;
}

std::string
contentionReport(const ContentionDelta& delta)
{
    std::ostringstream oss;
    oss << "exec stretch " << delta.exec_stretch << "x, SSP power shift "
        << delta.ssp_delta_pct << " %, contended LOI coverage "
        << delta.contended_loi_frac * 100.0 << " %\n";
    support::TableWriter table({"phase (frac of exec)", "isolated (W)",
                                "contended (W)", "delta (%)",
                                "LOIs iso/cont"});
    for (const auto& p : delta.phases) {
        std::ostringstream range;
        range << p.frac_lo << "-" << p.frac_hi;
        table.addRow({range.str(),
                      support::TableWriter::num(p.isolated_w, 1),
                      support::TableWriter::num(p.contended_w, 1),
                      support::TableWriter::num(p.deltaPct(), 1),
                      std::to_string(p.isolated_lois) + "/" +
                          std::to_string(p.contended_lois)});
    }
    table.print(oss);
    return oss.str();
}

void
dumpProfileCsv(const core::PowerProfile& profile, const std::string& name)
{
    namespace fs = std::filesystem;
    std::error_code ec;
    fs::create_directories("fingrav_out", ec);
    if (ec) {
        support::warn("dumpProfileCsv: cannot create fingrav_out: ",
                      ec.message());
        return;
    }
    support::CsvWriter csv({"toi_us", "toi_frac", "run_time_us", "total_w",
                            "xcd_w", "iod_w", "hbm_w", "run", "exec"});
    for (const auto& p : profile.points()) {
        csv.addNumericRow({p.toi_us, p.toi_frac, p.run_time_us,
                           p.sample.total_w, p.sample.xcd_w, p.sample.iod_w,
                           p.sample.hbm_w,
                           static_cast<double>(p.run_index),
                           static_cast<double>(p.exec_index)});
    }
    csv.writeFile("fingrav_out/" + name + ".csv");
}

void
printHeader(const std::string& experiment, const std::string& claim)
{
    std::cout << "\n=============================================================\n"
              << experiment << "\n" << claim << "\n"
              << "=============================================================\n";
}

}  // namespace fingrav::analysis

#ifndef FINGRAV_ANALYSIS_ASCII_PLOT_HPP_
#define FINGRAV_ANALYSIS_ASCII_PLOT_HPP_

/**
 * @file
 * Terminal scatter plots for the figure benches.
 *
 * Each bench regenerates a paper figure; the AsciiPlot renders the series
 * as a character grid so the *shape* (ramps, spikes, crossovers) is
 * visible directly in the benchmark output, alongside the CSV dump for
 * external replotting.
 */

#include <string>
#include <vector>

#include "analysis/series.hpp"

namespace fingrav::analysis {

/** Multi-series terminal scatter plot. */
class AsciiPlot {
  public:
    /**
     * @param width   Plot columns (>= 16).
     * @param height  Plot rows (>= 4).
     */
    AsciiPlot(std::size_t width, std::size_t height);

    /**
     * Add a series drawn with `glyph`.
     *
     * Later series draw over earlier ones where cells collide.
     */
    void addSeries(const Series& s, char glyph, std::string legend);

    /** Fix the y-axis range (otherwise auto-scaled to the data). */
    void setYRange(double lo, double hi);

    /** Render the grid, axes and legend. */
    std::string render() const;

  private:
    struct Layer {
        Series series;
        char glyph;
        std::string legend;
    };

    std::size_t width_;
    std::size_t height_;
    std::vector<Layer> layers_;
    bool fixed_y_ = false;
    double y_lo_ = 0.0;
    double y_hi_ = 1.0;
};

}  // namespace fingrav::analysis

#endif  // FINGRAV_ANALYSIS_ASCII_PLOT_HPP_

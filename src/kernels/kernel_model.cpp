#include "kernels/kernel_model.hpp"

namespace fingrav::kernels {

const char*
toString(Boundedness b)
{
    switch (b) {
      case Boundedness::kComputeBound:
        return "compute-bound";
      case Boundedness::kMemoryBound:
        return "memory-bound";
    }
    return "unknown";
}

}  // namespace fingrav::kernels

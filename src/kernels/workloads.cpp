#include "kernels/workloads.hpp"

#include <memory>

#include "support/logging.hpp"

namespace fingrav::kernels {

using support::literals::operator""_KB;
using support::literals::operator""_MB;
using support::literals::operator""_GB;

KernelModelPtr
makeSquareGemm(std::int64_t edge, const sim::MachineConfig& cfg)
{
    GemmShape s;
    s.m = edge;
    s.n = edge;
    s.k = edge;
    return std::make_shared<GemmKernel>(s, cfg);
}

KernelModelPtr
makeGemv(std::int64_t edge, const sim::MachineConfig& cfg)
{
    GemmShape s;
    s.m = edge;
    s.n = 1;
    s.k = edge;
    return std::make_shared<GemmKernel>(s, cfg);
}

KernelModelPtr
makeCollective(CollectiveOp op, support::Bytes bytes,
               const sim::MachineConfig& cfg)
{
    return std::make_shared<CollectiveKernel>(op, bytes, cfg);
}

std::vector<KernelModelPtr>
paperGemmKernels(const sim::MachineConfig& cfg)
{
    std::vector<KernelModelPtr> out;
    for (std::int64_t edge : {8192, 4096, 2048}) {
        out.push_back(makeSquareGemm(edge, cfg));
    }
    for (std::int64_t edge : {8192, 4096, 2048}) {
        out.push_back(makeGemv(edge, cfg));
    }
    return out;
}

std::vector<KernelModelPtr>
paperCollectiveKernels(const sim::MachineConfig& cfg)
{
    std::vector<KernelModelPtr> out;
    for (auto op : {CollectiveOp::kAllGather, CollectiveOp::kAllReduce}) {
        for (support::Bytes bytes :
             {64_KB, 128_KB, 512_MB, 1_GB}) {
            out.push_back(makeCollective(op, bytes, cfg));
        }
    }
    return out;
}

std::vector<KernelModelPtr>
paperKernels(const sim::MachineConfig& cfg)
{
    auto out = paperGemmKernels(cfg);
    auto comms = paperCollectiveKernels(cfg);
    out.insert(out.end(), comms.begin(), comms.end());
    return out;
}

KernelModelPtr
kernelByLabel(const std::string& label, const sim::MachineConfig& cfg)
{
    const auto all = paperKernels(cfg);
    for (auto& k : all) {
        if (k->label() == label)
            return k;
    }
    std::string available;
    for (const auto& k : all) {
        if (!available.empty())
            available += ", ";
        available += k->label();
    }
    support::fatal("kernelByLabel: unknown kernel '", label,
                   "'; available paper labels: ", available);
}

}  // namespace fingrav::kernels

#include "kernels/collective.hpp"

#include <algorithm>
#include <cmath>
#include <sstream>

#include "support/logging.hpp"

namespace fingrav::kernels {

namespace {

/**
 * HBM traffic multiple of the payload: the chunked ring pipeline reads the
 * source, stages chunks through intermediate buffers on every hop and
 * writes the destination, so local memory moves several times the payload.
 */
constexpr double kChunkTrafficFactor = 6.0;

/** Cold-start slowdown of a collective (channel setup, cold buffers). */
constexpr double kColdFactor = 1.18;

}  // namespace

CollectiveKernel::CollectiveKernel(CollectiveOp op, support::Bytes bytes,
                                   const sim::MachineConfig& cfg)
    : op_(op), bytes_(bytes), cfg_(cfg),
      fabric_(sim::FabricModel::fromConfig(cfg))
{
    if (bytes <= 0)
        support::fatal("CollectiveKernel: payload must be positive, got ",
                       bytes);
}

support::Duration
CollectiveKernel::baseDuration() const
{
    return op_ == CollectiveOp::kAllGather ? fabric_.allGatherTime(bytes_)
                                           : fabric_.allReduceTime(bytes_);
}

double
CollectiveKernel::alphaShare() const
{
    const double hops = op_ == CollectiveOp::kAllGather
                            ? static_cast<double>(fabric_.gpus() - 1)
                            : 2.0 * static_cast<double>(fabric_.gpus() - 1);
    const double alpha_s = fabric_.baseLatency().toSeconds() +
                           hops * fabric_.hopLatency().toSeconds();
    return alpha_s / baseDuration().toSeconds();
}

CollectiveBoundedness
CollectiveKernel::boundedness() const
{
    // Latency-bound while the alpha term still dominates: doubling the
    // payload would not grow latency commensurately.
    return alphaShare() > 0.5 ? CollectiveBoundedness::kLatencyBound
                              : CollectiveBoundedness::kBandwidthBound;
}

std::string
CollectiveKernel::label() const
{
    std::ostringstream oss;
    oss << toString(op_) << "-";
    if (bytes_ % (1000LL * 1000 * 1000) == 0)
        oss << bytes_ / (1000LL * 1000 * 1000) << "GB";
    else if (bytes_ % (1000LL * 1000) == 0)
        oss << bytes_ / (1000LL * 1000) << "MB";
    else if (bytes_ % 1000LL == 0)
        oss << bytes_ / 1000LL << "KB";
    else
        oss << bytes_ << "B";
    return oss.str();
}

sim::KernelWork
CollectiveKernel::workAt(double warmth) const
{
    const double w = std::clamp(warmth, 0.0, 1.0);
    const auto base = baseDuration();
    const double factor = kColdFactor + (1.0 - kColdFactor) * w;
    const auto dur = base * factor;

    sim::KernelWork out;
    out.label = label();
    out.nominal_duration = dur;
    // Fabric- and memory-bound: the engine clock barely matters.
    out.freq_sensitivity = 0.05;
    // One inter-GPU transfer on the shared node fabric: the launch path
    // assigns the concrete transfer id (the same id across the per-device
    // copies of this collective), and sim::NodeFabric fair-shares node
    // bandwidth between concurrent transfers.
    out.fabric_group = sim::KernelWork::kAutoFabricGroup;

    const bool reduce = op_ == CollectiveOp::kAllReduce;
    out.util.xcd_occupancy = reduce ? 0.13 : 0.06;
    out.util.xcd_issue = reduce ? 0.09 : 0.04;
    out.util.llc_bw = 0.10;
    const double moved_bytes =
        static_cast<double>(reduce ? bytes_ * 2 : bytes_);
    out.util.fabric_bw = fabric_.utilization(
        reduce ? bytes_ * 2 : bytes_, dur);
    const double hbm_rate =
        moved_bytes * kChunkTrafficFactor / dur.toSeconds();
    out.util.hbm_bw = std::min(0.6, hbm_rate / cfg_.hbm_bandwidth);
    return out;
}

const char*
toString(CollectiveOp op)
{
    switch (op) {
      case CollectiveOp::kAllGather:
        return "AG";
      case CollectiveOp::kAllReduce:
        return "AR";
    }
    return "??";
}

const char*
toString(CollectiveBoundedness b)
{
    switch (b) {
      case CollectiveBoundedness::kLatencyBound:
        return "latency-bound";
      case CollectiveBoundedness::kBandwidthBound:
        return "bandwidth-bound";
    }
    return "unknown";
}

}  // namespace fingrav::kernels

#include "kernels/gemm.hpp"

#include <algorithm>
#include <cmath>
#include <sstream>

#include "support/logging.hpp"

namespace fingrav::kernels {

namespace {

/** Per-CU MFMA pipeline ceiling by macro-tile edge. */
double
tileCeiling(std::int64_t tile)
{
    return tile >= 256 ? 0.93 : 0.60;
}

/** K-depth at which the pipeline loses half its ceiling to prologue cost. */
constexpr double kHalfK = 500.0;

/** LLC panel re-fetch factor when the working set spills the LLC. */
constexpr double kSpillRefetch = 4.0;

/** Residual HBM traffic fraction for LLC-resident warm working sets. */
constexpr double kWarmResidualTraffic = 0.10;

/** Cold-start extra re-fetch multiplier (cold caches, cold TLB). */
constexpr double kColdRefetch = 8.0;

/** GEMV: fraction of LLC peak achieved as a function of row count. */
double
gemvLlcEfficiency(std::int64_t m)
{
    const double x = static_cast<double>(m);
    return 0.92 * x / (x + 1500.0);
}

/**
 * GEMV LLC traffic amplification: split-K passes and vector re-reads move
 * the matrix through the Infinity Cache several times per invocation.
 */
constexpr double kGemvLlcTrafficFactor = 3.0;

/** GEMV floor: wave launch, barriers and cache latency bound tiny sizes. */
constexpr double kGemvFloorSeconds = 3.0e-6;

}  // namespace

GemmKernel::GemmKernel(const GemmShape& shape, const sim::MachineConfig& cfg)
    : shape_(shape), cfg_(cfg)
{
    if (shape.m < 1 || shape.n < 1 || shape.k < 1)
        support::fatal("GemmKernel: degenerate shape ", shape.m, "x",
                       shape.n, "x", shape.k);
    if (shape.dtype_bytes <= 0)
        support::fatal("GemmKernel: dtype_bytes must be positive");
    // BLAS-heuristic tile selection: large square problems take the big
    // MFMA macro-tile; smaller ones fall back to 128 to keep enough
    // workgroups in flight.
    tile_ = (std::min(shape.m, shape.n) >= 4096) ? 256 : 128;
}

double
GemmKernel::flops() const
{
    return 2.0 * static_cast<double>(shape_.m) *
           static_cast<double>(shape_.n) * static_cast<double>(shape_.k);
}

support::Bytes
GemmKernel::workingSetBytes() const
{
    const auto m = shape_.m;
    const auto n = shape_.n;
    const auto k = shape_.k;
    return (m * k + k * n + m * n) * shape_.dtype_bytes;
}

double
GemmKernel::opsPerByte() const
{
    return flops() / static_cast<double>(workingSetBytes());
}

Boundedness
GemmKernel::boundedness() const
{
    // The paper's definition: compute-bound iff the algorithmic op:byte
    // ratio exceeds the machine's op:byte ratio.
    return opsPerByte() > cfg_.machineOpsPerByte()
               ? Boundedness::kComputeBound
               : Boundedness::kMemoryBound;
}

double
GemmKernel::quantizationEfficiency() const
{
    const double wgs =
        std::ceil(static_cast<double>(shape_.m) / static_cast<double>(tile_)) *
        std::ceil(static_cast<double>(shape_.n) / static_cast<double>(tile_));
    const double cus = static_cast<double>(cfg_.totalCus());
    const double waves = std::ceil(wgs / cus);
    return wgs / (waves * cus);
}

double
GemmKernel::pipeEfficiency() const
{
    const double k = static_cast<double>(shape_.k);
    return tileCeiling(tile_) * k / (k + kHalfK);
}

double
GemmKernel::achievedComputeUtilization() const
{
    const auto work = workAt(1.0);
    return flops() / work.nominal_duration.toSeconds() /
           cfg_.peak_matrix_flops;
}

std::string
GemmKernel::label() const
{
    std::ostringstream oss;
    oss << (boundedness() == Boundedness::kComputeBound ? "CB-" : "MB-");
    const auto dim = shape_.m;
    if (dim % 1024 == 0)
        oss << (dim / 1024) << "K-";
    else
        oss << dim << "-";
    oss << (isGemv() ? "GEMV" : "GEMM");
    return oss.str();
}

sim::KernelWork
GemmKernel::workAt(double warmth) const
{
    const double w = std::clamp(warmth, 0.0, 1.0);
    sim::KernelWork out;
    out.label = label();

    if (isGemv()) {
        // ---- GEMV path: stream the matrix through the LLC --------------
        const double bytes = static_cast<double>(workingSetBytes());
        const double llc_bytes = bytes * kGemvLlcTrafficFactor;
        const double llc_eff = gemvLlcEfficiency(shape_.m);
        // Warm: LLC-resident (working sets here are <= 256 MB); cold:
        // streaming from HBM at a fraction of peak.
        const double warm_s =
            llc_bytes / (cfg_.llc_bandwidth * llc_eff);
        const double cold_s = bytes / (cfg_.hbm_bandwidth * 0.70) +
                              0.5 * warm_s;
        const double dur_s =
            std::max(kGemvFloorSeconds, cold_s + (warm_s - cold_s) * w);
        out.nominal_duration = support::Duration::seconds(dur_s);
        out.freq_sensitivity = 0.15;

        const double x = static_cast<double>(shape_.m);
        out.util.xcd_occupancy = std::min(0.35, 0.10 + x / 60000.0);
        out.util.xcd_issue = std::min(0.15, 0.04 + x / 140000.0);
        // LLC/HBM utilization follow the achieved byte rates.
        const double miss = 0.05 + 0.75 * (1.0 - w);
        out.util.llc_bw = std::min(
            1.0,
            llc_bytes * (1.0 - miss * 0.5) / dur_s / cfg_.llc_bandwidth);
        out.util.hbm_bw =
            std::min(1.0, bytes * miss / dur_s / cfg_.hbm_bandwidth);
        return out;
    }

    // ---- GEMM path: tiled MFMA kernel ----------------------------------
    const double quant = quantizationEfficiency();
    const double pipe = pipeEfficiency();
    const double compute_eff = quant * pipe;
    FINGRAV_ASSERT(compute_eff > 0.0, "zero compute efficiency");

    // LLC-level panel traffic: each output tile streams an A row-panel and
    // a B column-panel, plus C read+write.
    const double wgs =
        std::ceil(static_cast<double>(shape_.m) / static_cast<double>(tile_)) *
        std::ceil(static_cast<double>(shape_.n) / static_cast<double>(tile_));
    const double llc_bytes =
        wgs * 2.0 * static_cast<double>(tile_) *
            static_cast<double>(shape_.k) * shape_.dtype_bytes +
        2.0 * static_cast<double>(shape_.m) * static_cast<double>(shape_.n) *
            shape_.dtype_bytes;

    // HBM traffic: spilling working sets re-fetch panels; resident warm
    // working sets leave only residual streaming traffic.  Cold starts pay
    // full-footprint fetches regardless.
    const double ws = static_cast<double>(workingSetBytes());
    const bool spills = ws > static_cast<double>(cfg_.llc_capacity);
    const double warm_refetch = spills ? kSpillRefetch : kWarmResidualTraffic;
    const double cold_refetch = spills ? kColdRefetch : 1.0;
    const double refetch = cold_refetch + (warm_refetch - cold_refetch) * w;
    const double hbm_bytes = ws * refetch;

    const double t_compute =
        flops() / (cfg_.peak_matrix_flops * compute_eff);
    const double t_llc = llc_bytes / (cfg_.llc_bandwidth * 0.85);
    const double t_hbm = hbm_bytes / (cfg_.hbm_bandwidth * 0.80);
    // Cold execution also pays a fixed-ish setup penalty (page mapping,
    // code upload) shrinking with warmth.
    const double setup_s = (1.0 - w) * 0.22 * t_compute;
    const double dur_s = std::max({t_compute, t_llc, t_hbm}) + setup_s;

    out.nominal_duration = support::Duration::seconds(dur_s);
    out.freq_sensitivity = t_compute >= std::max(t_llc, t_hbm) ? 0.95 : 0.20;
    out.util.xcd_occupancy = quant;
    out.util.xcd_issue = compute_eff * (t_compute / dur_s);
    out.util.llc_bw = std::min(1.0, llc_bytes / dur_s / cfg_.llc_bandwidth);
    out.util.hbm_bw = std::min(1.0, hbm_bytes / dur_s / cfg_.hbm_bandwidth);
    return out;
}

}  // namespace fingrav::kernels

#ifndef FINGRAV_KERNELS_WORKLOADS_HPP_
#define FINGRAV_KERNELS_WORKLOADS_HPP_

/**
 * @file
 * The paper's AI-operator workload registry.
 *
 * Section V-A fixes the operator space: compute-bound square GEMMs of edge
 * 8K/4K/2K, memory-bound GEMVs on the same matrices (M=K, N=1), and
 * all-gather / all-reduce collectives at latency-bound (64 KB, 128 KB) and
 * bandwidth-bound (512 MB, 1 GB) sizes.  These factories build the exact
 * fourteen kernels the evaluation profiles, with the paper's labels.
 */

#include <vector>

#include "kernels/collective.hpp"
#include "kernels/gemm.hpp"
#include "kernels/kernel_model.hpp"
#include "sim/machine_config.hpp"
#include "support/units.hpp"

namespace fingrav::kernels {

/** Square compute-bound GEMM (M = N = K = edge). */
KernelModelPtr makeSquareGemm(std::int64_t edge,
                              const sim::MachineConfig& cfg);

/** Memory-bound GEMV on the same matrix (M = K = edge, N = 1). */
KernelModelPtr makeGemv(std::int64_t edge, const sim::MachineConfig& cfg);

/** Collective of the given op and payload. */
KernelModelPtr makeCollective(CollectiveOp op, support::Bytes bytes,
                              const sim::MachineConfig& cfg);

/** The six GEMM/GEMV kernels of Section V-C (8K/4K/2K x {GEMM, GEMV}). */
std::vector<KernelModelPtr> paperGemmKernels(const sim::MachineConfig& cfg);

/** The eight communication kernels of Section V-D. */
std::vector<KernelModelPtr> paperCollectiveKernels(
    const sim::MachineConfig& cfg);

/** All fourteen kernels of the paper's evaluation. */
std::vector<KernelModelPtr> paperKernels(const sim::MachineConfig& cfg);

/** Look up a kernel by its paper label (e.g. "CB-4K-GEMM"); fatal if absent. */
KernelModelPtr kernelByLabel(const std::string& label,
                             const sim::MachineConfig& cfg);

}  // namespace fingrav::kernels

#endif  // FINGRAV_KERNELS_WORKLOADS_HPP_

#ifndef FINGRAV_KERNELS_KERNEL_MODEL_HPP_
#define FINGRAV_KERNELS_KERNEL_MODEL_HPP_

/**
 * @file
 * Abstract kernel cost model.
 *
 * A KernelModel prices one kernel invocation on the simulated machine:
 * duration at nominal clock, per-resource utilization, and frequency
 * sensitivity, all as a function of *warmth* — how recently this kernel
 * (and its memory allocation) has run.  Warmth 0 is a cold start (first
 * execution of a fresh run: cold caches, unmapped pages); warmth 1 is
 * fully warmed.  The paper's observation that "three warm-up executions
 * from GPU idle state" suffice for execution-time stabilization
 * (Section IV-B step 3) corresponds to warmth reaching ~1 by the fourth
 * execution.
 */

#include <memory>
#include <string>
#include <vector>

#include "sim/kernel_work.hpp"
#include "support/time_types.hpp"

namespace fingrav::kernels {

/** Compute- vs memory-bound classification (paper Section V-A). */
enum class Boundedness {
    kComputeBound,
    kMemoryBound,
};

/** Printable name. */
const char* toString(Boundedness b);

/** Cost model of one kernel on the configured machine. */
class KernelModel {
  public:
    virtual ~KernelModel() = default;

    /** Paper-style label, e.g. "CB-4K-GEMM" or "AG-1GB". */
    virtual std::string label() const = 0;

    /**
     * The kernel invocation at a given warmth.
     *
     * @param warmth  0 = cold start, 1 = steady state; clamped.
     */
    virtual sim::KernelWork workAt(double warmth) const = 0;

    /** Steady-state duration at nominal clock (warmth 1, no jitter). */
    support::Duration
    nominalDuration() const
    {
        return workAt(1.0).nominal_duration;
    }

    /** Algorithmic FLOP:byte ratio (0 when not meaningful, e.g. comms). */
    virtual double opsPerByte() const = 0;

    /**
     * True for kernels that execute on every GPU of the node at once
     * (collectives); the profiler then launches node-wide while profiling
     * device 0, as the paper does.
     */
    virtual bool isCollective() const { return false; }
};

/** Shared pointer alias used by workload registries. */
using KernelModelPtr = std::shared_ptr<const KernelModel>;

}  // namespace fingrav::kernels

#endif  // FINGRAV_KERNELS_KERNEL_MODEL_HPP_

#ifndef FINGRAV_KERNELS_GEMM_HPP_
#define FINGRAV_KERNELS_GEMM_HPP_

/**
 * @file
 * rocBLAS-like GEMM / GEMV cost model.
 *
 * GEMM (M x K * K x N): a tiled MFMA kernel.  The model selects a tile size
 * the way a BLAS heuristic would, derives workgroup count, wave count and
 * the resulting CU-occupancy quantization, prices compute vs LLC vs HBM
 * roofline terms, and reports utilization of each resource.  LLC residency
 * matters: working sets that fit the 256 MB Infinity Cache are served
 * on-chip once warm (the paper's footnote 3: "data movement is heavily
 * biased toward on-chip data movement for our executions"), while
 * CB-8K-GEMM's 402 MB working set spills and keeps HBM busy — which is why
 * the paper finds it has the highest HBM power of all GEMMs.
 *
 * GEMV (N == 1): a bandwidth kernel streaming the matrix once; short
 * vectors limit achieved bandwidth.  Warm executions are served mostly
 * from the Infinity Cache (stressing IOD power — the paper's MB-8K-GEMV
 * observation), cold executions stream from HBM.
 */

#include <cstdint>
#include <string>

#include "kernels/kernel_model.hpp"
#include "sim/machine_config.hpp"

namespace fingrav::kernels {

/** Problem shape; N == 1 selects the GEMV path. */
struct GemmShape {
    std::int64_t m = 0;
    std::int64_t n = 0;
    std::int64_t k = 0;
    int dtype_bytes = 2;  ///< fp16/bf16
};

/** GEMM/GEMV cost model (see file comment). */
class GemmKernel : public KernelModel {
  public:
    /**
     * @param shape  Problem shape (all dims >= 1; fatal otherwise).
     * @param cfg    Machine description (copied).
     */
    GemmKernel(const GemmShape& shape, const sim::MachineConfig& cfg);

    std::string label() const override;
    sim::KernelWork workAt(double warmth) const override;
    double opsPerByte() const override;

    /** The shape. */
    const GemmShape& shape() const { return shape_; }

    /** True when this is the GEMV (N == 1) path. */
    bool isGemv() const { return shape_.n == 1; }

    /** Total fused-multiply-add work, FLOP. */
    double flops() const;

    /** A+B+C footprint in bytes. */
    support::Bytes workingSetBytes() const;

    /** Compute- vs memory-bound against this machine's balance point. */
    Boundedness boundedness() const;

    /** Selected macro-tile edge (GEMM path). */
    std::int64_t tileSize() const { return tile_; }

    /** CU-occupancy after wave quantization (GEMM path). */
    double quantizationEfficiency() const;

    /**
     * Achieved fraction of peak compute at steady state (the quantity the
     * paper uses for the power-proportionality takeaway: CB-2K-GEMM
     * reaches about half the utilization of CB-4K/8K).
     */
    double achievedComputeUtilization() const;

  private:
    /** Per-CU pipeline efficiency for the selected tile and K depth. */
    double pipeEfficiency() const;

    GemmShape shape_;
    sim::MachineConfig cfg_;
    std::int64_t tile_;
};

}  // namespace fingrav::kernels

#endif  // FINGRAV_KERNELS_GEMM_HPP_

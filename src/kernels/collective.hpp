#ifndef FINGRAV_KERNELS_COLLECTIVE_HPP_
#define FINGRAV_KERNELS_COLLECTIVE_HPP_

/**
 * @file
 * RCCL-like collective-communication kernel model.
 *
 * Prices ring all-gather and all-reduce across the node fabric
 * (sim::FabricModel) and reports the power-relevant utilization signature
 * the paper measures in Fig. 10: negligible XCD load (slightly higher for
 * all-reduce, which runs reduction math), heavy Infinity-Fabric (and hence
 * IOD) utilization for bandwidth-bound sizes, and substantial HBM traffic
 * from the chunked ring pipeline (payload is read, staged and written
 * several times per hop — kChunkTrafficFactor).
 *
 * Latency- vs bandwidth-bound classification follows the paper's
 * Section V-A definition: a size is latency-bound while total latency does
 * not yet grow commensurately with payload, i.e. while the alpha
 * (per-hop/setup) term dominates the beta (bandwidth) term.
 *
 * The produced KernelWork is tagged as one shared-node-fabric transfer
 * (KernelWork::fabric_group): when several collectives run concurrently on
 * a node, sim::NodeFabric fair-shares bandwidth between them, stretching
 * completion and saturating the links — contended phases run longer at
 * higher IOD power than the same collectives back-to-back.
 */

#include <string>

#include "kernels/kernel_model.hpp"
#include "sim/fabric.hpp"
#include "sim/machine_config.hpp"
#include "support/units.hpp"

namespace fingrav::kernels {

/** Supported collective operations. */
enum class CollectiveOp {
    kAllGather,
    kAllReduce,
};

/** Printable name ("AG"/"AR"). */
const char* toString(CollectiveOp op);

/** Latency- vs bandwidth-bound classification (paper Section V-A). */
enum class CollectiveBoundedness {
    kLatencyBound,
    kBandwidthBound,
};

/** Printable name. */
const char* toString(CollectiveBoundedness b);

/** Ring-collective cost model (see file comment). */
class CollectiveKernel : public KernelModel {
  public:
    /**
     * @param op     Operation.
     * @param bytes  Payload size (> 0; fatal otherwise).
     * @param cfg    Machine description (copied; fabric fields used).
     */
    CollectiveKernel(CollectiveOp op, support::Bytes bytes,
                     const sim::MachineConfig& cfg);

    std::string label() const override;
    sim::KernelWork workAt(double warmth) const override;

    /** Communication kernels have no meaningful FLOP:byte ratio. */
    double opsPerByte() const override { return 0.0; }

    /** Collectives run on every GPU of the node. */
    bool isCollective() const override { return true; }

    /** The operation. */
    CollectiveOp op() const { return op_; }

    /** Payload bytes. */
    support::Bytes bytes() const { return bytes_; }

    /** Latency- vs bandwidth-bound at this size. */
    CollectiveBoundedness boundedness() const;

    /** Fraction of total time spent in the alpha (latency) term. */
    double alphaShare() const;

  private:
    /** End-to-end duration from the fabric model. */
    support::Duration baseDuration() const;

    CollectiveOp op_;
    support::Bytes bytes_;
    sim::MachineConfig cfg_;
    sim::FabricModel fabric_;
};

}  // namespace fingrav::kernels

#endif  // FINGRAV_KERNELS_COLLECTIVE_HPP_

#include "runtime/host_runtime.hpp"

#include <algorithm>
#include <utility>

#include "support/logging.hpp"

namespace fingrav::runtime {

namespace {

/** CPU clock read cost (rdtsc-ish plus call overhead). */
constexpr auto kClockReadCost = fingrav::support::Duration::nanos(40);

/** Host-side cost of issuing an asynchronous launch call. */
constexpr auto kLaunchCallCost = fingrav::support::Duration::nanos(700);

/** Host-side cost of a sync call when the device is already idle. */
constexpr auto kSyncPollCost = fingrav::support::Duration::nanos(600);

/** Sync watchdog: a single synchronize may not span more than this. */
constexpr auto kSyncLimit = fingrav::support::Duration::seconds(30.0);

}  // namespace

HostRuntime::HostRuntime(sim::Simulation& sim, support::Rng rng)
    : sim_(sim), rng_(std::move(rng)),
      cpu_now_(support::SimTime::fromNanos(0)),
      loggers_(sim.deviceCount())
{
}

std::int64_t
HostRuntime::readCpuClock() const
{
    return sim_.cpuClock().domainTime(cpu_now_).nanos();
}

std::int64_t
HostRuntime::cpuClockAt(support::SimTime master) const
{
    return sim_.cpuClock().domainTime(master).nanos();
}

std::int64_t
HostRuntime::cpuNowNs()
{
    cpu_now_ += kClockReadCost;
    return readCpuClock();
}

void
HostRuntime::sleep(support::Duration d)
{
    if (d.nanos() < 0)
        support::fatal("HostRuntime::sleep: negative duration");
    cpu_now_ += d;
}

void
HostRuntime::pumpBackground(support::SimTime horizon)
{
    if (background_ != nullptr)
        background_->pump(horizon);
}

void
HostRuntime::armBackground(std::vector<BackgroundStream> streams,
                           support::Rng rng)
{
    if (streams.empty())
        return;  // isolated scenario: keep the legacy runtime bitwise
    if (background_ != nullptr)
        support::fatal("armBackground: channel already armed");
    background_ = std::make_unique<BackgroundChannel>(
        sim_, std::move(streams), std::move(rng));
}

std::vector<std::pair<std::int64_t, std::int64_t>>
HostRuntime::backgroundActiveCpuIntervals(std::int64_t from_ns,
                                          std::int64_t to_ns)
{
    if (background_ == nullptr)
        return {};
    return background_->activeCpuIntervals(from_ns, to_ns);
}

void
HostRuntime::catchUpDevice(std::size_t device, bool pump_background)
{
    // Background events due by the host present must be in the device
    // queues (or on the fabric) before anyone advances past them.
    if (pump_background)
        pumpBackground(cpu_now_);
    // While collectives are in flight the devices are fabric-coupled:
    // catching one up alone would price contention from a stale sibling
    // snapshot, so the whole node rides to the host present together.
    if (sim_.fabric().coupled())
        sim_.advanceAllTo(cpu_now_);
    else
        sim_.device(device).advanceTo(cpu_now_);
}

std::uint64_t
HostRuntime::launch(const sim::KernelWork& work, std::size_t device,
                    std::size_t queue)
{
    cpu_now_ += kLaunchCallCost;
    const auto ready =
        cpu_now_ + sim_.config().launch_overhead;
    return sim_.device(device).submit(work, ready, queue);
}

std::uint64_t
HostRuntime::launchOnAllDevices(const sim::KernelWork& work,
                                std::size_t queue)
{
    cpu_now_ += kLaunchCallCost;
    const auto ready = cpu_now_ + sim_.config().launch_overhead;
    // The per-device copies are one inter-GPU transfer: stamp a single
    // transfer id so the collective does not contend with itself on the
    // shared node fabric (concurrent collectives get distinct ids).
    sim::KernelWork shared = work;
    if (shared.fabric_group == sim::KernelWork::kAutoFabricGroup)
        shared.fabric_group = sim_.fabric().allocGroup();
    std::uint64_t id0 = 0;
    for (std::size_t d = 0; d < sim_.deviceCount(); ++d) {
        const auto id = sim_.device(d).submit(shared, ready, queue);
        if (d == 0)
            id0 = id;
    }
    return id0;
}

void
HostRuntime::synchronize(std::size_t device)
{
    synchronizeImpl(device, /*pump_background=*/true);
}

void
HostRuntime::synchronizeImpl(std::size_t device, bool pump_background)
{
    if (pump_background)
        pumpBackground(cpu_now_);
    auto& dev = sim_.device(device);
    if (dev.idle()) {
        catchUpDevice(device, pump_background);
        cpu_now_ += kSyncPollCost;
        return;
    }
    // While node-fabric transfers are outstanding the drain must step the
    // whole node in fabric epochs, or contended collectives would finish
    // at uncontended speed; otherwise the legacy single-device drain.
    // With a background channel armed, the drain is additionally split at
    // the channel's due times: a background launch (or injected-demand
    // toggle) scheduled *during* the drain fires at its exact master
    // time, so the contended phase of a foreground execution is priced
    // from the environment that was live while it ran.
    const auto limit = cpu_now_ + kSyncLimit;
    auto done = cpu_now_;
    for (;;) {
        auto bound = limit;
        if (pump_background && background_ != nullptr &&
            background_->hasPending())
            bound = std::min(limit, background_->nextDue());
        done = sim_.fabric().coupled()
                   ? sim_.advanceDeviceUntilIdle(device, bound)
                   : dev.advanceUntilIdle(bound);
        if (dev.idle() || bound == limit)
            break;
        pumpBackground(bound);
    }
    if (!dev.idle())
        support::fatal("HostRuntime::synchronize: device ", device,
                       " did not drain within the watchdog window");
    // Completion may precede the host present (the host raced ahead) or
    // follow it (the host blocked); either way the sync call returns after
    // the later of the two plus the sync return overhead.
    cpu_now_ = std::max(cpu_now_, done);
    const double jitter = rng_.lognormalJitter(0.08);
    cpu_now_ += sim_.config().sync_overhead * jitter;
}

void
HostRuntime::synchronizeAll()
{
    // Batched pre-pass: bring every device to the host present in one
    // coordinated loop, then drain them in order.  The per-device sync
    // overhead/jitter accounting below is unchanged.  Already-due
    // background events are submitted first, but the drains themselves do
    // not feed the channel: the environment never drains, so an
    // end-of-run synchronizeAll drains the node against the submitted
    // environment only and later cycle starts slip to the next host
    // interaction.
    pumpBackground(cpu_now_);
    sim_.advanceAllTo(cpu_now_);
    for (std::size_t d = 0; d < sim_.deviceCount(); ++d)
        synchronizeImpl(d, /*pump_background=*/false);
}

void
HostRuntime::advanceAllDevices()
{
    pumpBackground(cpu_now_);
    sim_.advanceAllTo(cpu_now_);
}

HostTiming
HostRuntime::timedRun(const sim::KernelWork& work, std::size_t device)
{
    HostTiming t;
    t.cpu_start_ns = cpuNowNs() + sim_.config().launch_overhead.nanos() +
                     kLaunchCallCost.nanos();
    launch(work, device);
    synchronize(device);
    t.cpu_end_ns = cpuNowNs();
    return t;
}

TimestampRead
HostRuntime::readGpuTimestamp(std::size_t device)
{
    TimestampRead r;
    r.cpu_before_ns = readCpuClock();
    // The round trip takes the configured delay with multiplicative
    // jitter; the counter is sampled mid-flight.
    const double jitter = rng_.lognormalJitter(
        sim_.config().timestamp_read_jitter);
    const auto delay = sim_.config().timestamp_read_delay * jitter;
    const auto sample_point = cpu_now_ + delay * 0.5;
    r.gpu_counter = sim_.device(device).gpuClock().readCounter(sample_point);
    cpu_now_ += delay;
    r.cpu_after_ns = readCpuClock();
    return r;
}

support::Duration
HostRuntime::benchmarkTimestampReadDelay(std::size_t device,
                                         std::size_t iterations)
{
    if (iterations == 0)
        support::fatal("benchmarkTimestampReadDelay: zero iterations");
    const std::int64_t t0 = readCpuClock();
    for (std::size_t i = 0; i < iterations; ++i)
        (void)readGpuTimestamp(device);
    const std::int64_t t1 = readCpuClock();
    return support::Duration::nanos((t1 - t0) /
                                    static_cast<std::int64_t>(iterations));
}

sim::PowerLogger*
HostRuntime::findLogger(std::size_t device, support::Duration window) const
{
    for (auto* logger : loggers_[device]) {
        if (logger->window() == window)
            return logger;
    }
    return nullptr;
}

void
HostRuntime::startPowerLog(std::size_t device, support::Duration window)
{
    auto& dev = sim_.device(device);
    catchUpDevice(device);
    sim::PowerLogger* logger = nullptr;
    if (window.nanos() > 0) {
        logger = findLogger(device, window);
    } else if (!loggers_[device].empty()) {
        // Unspecified window: reuse the primary logger whatever its
        // window (callers read the window back via powerLogWindow).
        logger = loggers_[device].front();
    }
    if (logger == nullptr) {
        const auto w =
            window.nanos() > 0 ? window : sim_.config().logger_window;
        logger = &dev.addLogger(w);
        loggers_[device].push_back(logger);
    }
    logger->clearSamples();
    logger->start(cpu_now_);
}

sim::SampleColumns
HostRuntime::stopPowerLog(std::size_t device, support::Duration window)
{
    sim::PowerLogger* logger = nullptr;
    if (window.nanos() > 0) {
        logger = findLogger(device, window);
        if (logger == nullptr || !logger->capturing())
            support::fatal("stopPowerLog: no active capture with window ",
                           window.toMicros(), "us on device ", device);
    } else {
        // Unaddressed stop: legal only while exactly one capture is live.
        for (auto* candidate : loggers_[device]) {
            if (!candidate->capturing())
                continue;
            if (logger != nullptr)
                support::fatal("stopPowerLog: several captures active on "
                               "device ", device,
                               "; address the logger by window");
            logger = candidate;
        }
        if (logger == nullptr)
            support::fatal("stopPowerLog: no active capture on device ",
                           device);
    }
    catchUpDevice(device);
    logger->stop();
    auto out = logger->samples();
    logger->clearSamples();
    return out;
}

}  // namespace fingrav::runtime

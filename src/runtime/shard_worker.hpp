#ifndef FINGRAV_RUNTIME_SHARD_WORKER_HPP_
#define FINGRAV_RUNTIME_SHARD_WORKER_HPP_

/**
 * @file
 * Worker-process bootstrap for distributed campaign sharding.
 *
 * `fingrav_cli --worker` (one-shot shard) and `fingrav_cli --serve`
 * (persistent fleet resident) both call runShardWorker(std::cin,
 * std::cout): a serve loop that reads kShardRequest frames (machine
 * config + a list of slot-addressed ScenarioSpecs) off stdin, executes
 * each spec on a fresh hermetic node via core::CampaignRunner::runOne —
 * the exact code path the in-process backends bottom out in — and
 * streams one kShardResult frame per completed spec back on stdout,
 * closing each request with a kShardDone frame.  The loop then waits
 * for the next request: ShardBackend sends one request and closes the
 * pipe; core::WorkerFleet keeps the worker resident across dispatches,
 * probing idle residents with kPing (answered kPong) and retiring them
 * with kShutdown (clean exit, same as EOF).  Streaming per spec means a
 * worker killed mid-shard forfeits only its unfinished slots;
 * everything already written is checksummed, slot-addressed and
 * bit-exact (fingrav/codec.hpp, fingrav/shard_backend.hpp).
 *
 * stdout belongs to the protocol: the worker must never print there.
 * Callers route diagnostics to stderr (the CLI lowers the log level so
 * inform() cannot leak into the frame stream).  A user-level failure
 * (unknown kernel label, invalid background schedule) is reported as a
 * kWorkerError frame and a nonzero exit, so the driver can re-place the
 * shard on its fallback path instead of hanging.
 *
 * Fault injection (`fingrav_cli --worker --fault-plan PLAN`): the serve
 * loop hosts the worker-side injection sites — each result frame is
 * counted per request, and a scripted fault fires instead of (kill,
 * truncate) or around (corrupt, stall) writing the matching frame.
 * The driver derives each worker's sub-plan from the run-level plan
 * (support/fault_injector.hpp), so the supervision stack is exercised
 * through the real subprocess machinery, not a test seam.
 */

#include <iosfwd>

namespace fingrav::core {
class CampaignCache;
}
namespace fingrav::support {
class FaultInjector;
}

namespace fingrav::runtime {

/**
 * Serve shard requests until clean EOF on `in`.
 *
 * @param cache  Optional campaign cache consulted before executing each
 *               spec and fed with every fresh result (`fingrav_cli
 *               --worker --cache-dir DIR`).  Cached results are
 *               bit-identical to execution by the cache's contract, so
 *               the frames streamed back are unchanged; null disables.
 * @param injector  Optional fault injector consulted before each result
 *               frame (see file comment); null disables.  A kill or
 *               truncate fault abandons the serve loop mid-stream and
 *               returns the fault's exit code, exactly as the driver
 *               would observe a real mid-shard death.
 * @return Process exit code: 0 after a clean EOF on a frame boundary,
 *         1 after a protocol violation or a fatal execution error (a
 *         kWorkerError frame is emitted first when possible), 137 after
 *         an injected kill.
 */
int runShardWorker(std::istream& in, std::ostream& out,
                   core::CampaignCache* cache = nullptr,
                   support::FaultInjector* injector = nullptr);

}  // namespace fingrav::runtime

#endif  // FINGRAV_RUNTIME_SHARD_WORKER_HPP_

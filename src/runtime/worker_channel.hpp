#ifndef FINGRAV_RUNTIME_WORKER_CHANNEL_HPP_
#define FINGRAV_RUNTIME_WORKER_CHANNEL_HPP_

/**
 * @file
 * Driver-side plumbing for worker subprocesses: fork/exec with a piped
 * stdin/stdout pair, budgeted raw I/O, and framed reads off the wire
 * protocol (fingrav/codec.hpp).
 *
 * Extracted from ShardBackend so every driver of `fingrav_cli --worker`
 * / `--serve` processes — the one-shot shard supervisor and the
 * persistent core::WorkerFleet — shares one spawn idiom (own process
 * group, exec-failure `_exit(127)`), one I/O budget semantics
 * (inactivity timeout re-armed by progress, optional absolute
 * deadline), and one frame-read status taxonomy that maps 1:1 onto the
 * degradation journal's kinds.
 *
 * Everything here is synchronous and single-threaded by design: callers
 * multiplex across workers either by draining them in sequence
 * (ShardBackend) or by polling readiness before committing to a framed
 * read (WorkerFleet).
 */

#include <chrono>
#include <cstddef>
#include <cstdint>
#include <string>
#include <vector>

#include "fingrav/codec.hpp"

namespace fingrav::runtime {

/**
 * The I/O budget one read/write waits under: a per-syscall inactivity
 * timeout (every byte of progress re-arms it) plus an optional absolute
 * deadline (total wall-clock regardless of progress).
 */
struct IoBudget {
    long inactivity_ms = 0;  ///< <= 0: no inactivity bound
    bool has_deadline = false;
    std::chrono::steady_clock::time_point deadline;

    static IoBudget
    inactivityOnly(long ms)
    {
        IoBudget budget;
        budget.inactivity_ms = ms;
        return budget;
    }
};

/** How a readiness wait ended. */
enum class IoWait { kReady, kTimeout, kError };

/** Wait for fd readiness under the budget (`events`: POLLIN/POLLOUT). */
IoWait awaitReady(int fd, short events, const IoBudget& budget);

/** Write the whole buffer under the budget; false on timeout/error. */
bool writeAll(int fd, const std::uint8_t* data, std::size_t size,
              const IoBudget& budget);

/** Why a read stopped short — the journal taxonomy needs the cause. */
enum class ReadStatus { kOk, kEof, kTimeout, kError };

/**
 * Read exactly `size` bytes under the budget.  `bytes_read` (optional)
 * reports partial progress so a mid-header EOF can be told apart from a
 * clean boundary EOF.
 */
ReadStatus readExact(int fd, std::uint8_t* data, std::size_t size,
                     const IoBudget& budget, std::size_t* bytes_read);

/** close() and poison the fd; no-op when already closed. */
void closeFd(int& fd);

/**
 * Route a dead driver-side pipe into an EPIPE write error instead of a
 * process-killing SIGPIPE.  Installed once, only if the disposition is
 * still the default — an embedding application's handler is kept.
 */
void ignoreSigpipeOnce();

/** One spawned worker subprocess and its pipe pair. */
struct WorkerProcess {
    long pid = -1;
    int to_child = -1;    ///< request pipe, driver write end
    int from_child = -1;  ///< response pipe, driver read end
};

/**
 * fork/exec the worker argv with stdin/stdout piped; stderr shared.
 * The child leads its own process group so a fault injector (or
 * operator) can kill the worker *and* anything it forked in one signal.
 * Returns false (with errno set) when a pipe or fork fails; exec
 * failure surfaces to the driver as immediate EOF (child `_exit(127)`).
 */
bool spawnWorkerProcess(const std::vector<std::string>& argv,
                        WorkerProcess& worker);

/** How one frame read off a worker's stdout ended. */
enum class FrameStatus {
    kFrame,    ///< `frame` holds a verified frame
    kEof,      ///< clean EOF on a frame boundary: the worker is gone
    kCorrupt,  ///< truncated/bit-flipped/foreign-version stream
    kTimeout,  ///< inactivity timeout or deadline budget exceeded
};

/**
 * Read one checksummed frame off `fd` under the budget.  EOF mid-frame
 * and any header/checksum rejection report kCorrupt (the observable a
 * half-written frame leaves); EOF on the boundary reports kEof.
 */
FrameStatus readWorkerFrame(int fd, const IoBudget& budget,
                            core::codec::Frame& frame);

}  // namespace fingrav::runtime

#endif  // FINGRAV_RUNTIME_WORKER_CHANNEL_HPP_

#ifndef FINGRAV_RUNTIME_BACKGROUND_CHANNEL_HPP_
#define FINGRAV_RUNTIME_BACKGROUND_CHANNEL_HPP_

/**
 * @file
 * Deterministic background-launch channel of the host runtime.
 *
 * Models the *environment* a kernel is profiled in: an independent
 * driver process that launches kernels on (usually) other devices of the
 * node, or injects raw bandwidth demand on the shared fabric, on a fixed
 * schedule.  The scenario layer (fingrav/scenario.hpp) compiles
 * declarative BackgroundLoads into BackgroundStreams; HostRuntime arms
 * one channel per node and *pumps* it before device time moves, so every
 * scheduled event fires at its exact master time:
 *
 *  - pump(horizon) submits/applies every event due at or before the
 *    horizon, in (time, stream) order — called before any device
 *    advance whose target is known;
 *  - drains with an open-ended target (synchronize-until-idle) are split
 *    at nextDue() boundaries by the runtime, so launches due *during* a
 *    foreground execution land mid-execution and the contended phase is
 *    priced live;
 *  - end-of-run drains (synchronizeAll) do not pump: the environment
 *    never drains, so cycle starts falling inside a drain slip to the
 *    next host interaction instead of keeping the node busy forever.
 *
 * Determinism: the channel owns a dedicated RNG stream (forked from the
 * simulation root by the scenario layer), draws are made in event order,
 * and all scheduling is in master time — the trajectory is a pure
 * function of (streams, seed) regardless of who pumps when, as long as
 * the pump points themselves are deterministic (they are: the runtime's
 * call sites depend only on host-visible state).
 *
 * The channel also records when its background work was *actually*
 * active (kernel intervals from the device execution logs of its own
 * launches — knowledge any real background driver has about its own
 * kernels — and injection windows as commanded).  The run executor
 * attaches these intervals to each RunRecord so the stitcher can
 * annotate every LOI with the contention state in force during it.
 */

#include <cstdint>
#include <utility>
#include <vector>

#include "sim/fabric.hpp"
#include "sim/kernel_work.hpp"
#include "sim/simulation.hpp"
#include "support/rng.hpp"
#include "support/time_types.hpp"

namespace fingrav::runtime {

/** One compiled background stream (see fingrav/scenario.hpp). */
struct BackgroundStream {
    /** Kernel template (ignored for injection streams). */
    sim::KernelWork work;
    /** > 0: raw fabric-demand injection instead of kernel launches. */
    double inject_demand = 0.0;
    std::size_t device = 1;        ///< executing device (kernel streams)
    std::size_t queue = 1;         ///< device queue (kernel streams)
    support::SimTime first;        ///< master time of cycle 0 start
    support::Duration period;      ///< cycle length (ignored when cycles==1)
    support::Duration active;      ///< active span per cycle
    std::size_t launches_per_cycle = 1;  ///< kernel copies queued per cycle
    std::size_t cycles = 1;        ///< 0 = unbounded
    double jitter_sigma = 0.0;     ///< per-launch duration jitter (kernels)
};

/** Drives BackgroundStreams against a simulation (owned by HostRuntime). */
class BackgroundChannel {
  public:
    /**
     * @param sim      Node to drive; must outlive the channel.
     * @param streams  Compiled streams (non-empty; validated upstream).
     * @param rng      Dedicated channel randomness (per-launch jitter).
     */
    BackgroundChannel(sim::Simulation& sim,
                      std::vector<BackgroundStream> streams,
                      support::Rng rng);

    BackgroundChannel(const BackgroundChannel&) = delete;
    BackgroundChannel& operator=(const BackgroundChannel&) = delete;

    /** True while any stream still has scheduled events. */
    bool hasPending() const;

    /** Master time of the earliest pending event (hasPending() first). */
    support::SimTime nextDue() const;

    /** Fire every event due at or before `horizon`, in schedule order. */
    void pump(support::SimTime horizon);

    /**
     * Background-active CPU-clock intervals overlapping [from_ns, to_ns],
     * merged and ascending: completed kernel launches carry their exact
     * execution bounds (from the launching device's log), in-flight ones
     * extend to the device's present, injection windows are as commanded.
     * Successive calls must not move `from_ns` backwards (the run
     * executor queries once per run, in run order): history resolved
     * before the query window is pruned so per-run cost stays bounded.
     */
    std::vector<std::pair<std::int64_t, std::int64_t>>
    activeCpuIntervals(std::int64_t from_ns, std::int64_t to_ns);

  private:
    struct StreamState {
        std::size_t next_cycle = 0;  ///< cycle of the next on-event
        bool on = false;             ///< injection currently active
        std::uint64_t group = 0;     ///< injected transfer id while on
    };

    /** One submitted kernel launch awaiting/holding its exact bounds. */
    struct Launch {
        std::size_t device = 0;
        std::uint64_t exec_id = 0;
        support::SimTime submitted;
        support::SimTime end;       ///< valid once resolved
        bool resolved = false;
    };

    /** Next event time of stream `i` (on or off), or nullopt when done. */
    bool nextEvent(std::size_t i, support::SimTime* when,
                   bool* is_off) const;

    /** Fire stream `i`'s next event. */
    void fire(std::size_t i, support::SimTime when, bool is_off);

    /** Re-post the current injected-demand set to the fabric. */
    void publishInjection();

    /** Resolve completed launches against the device execution logs. */
    void harvestCompletions();

    sim::Simulation& sim_;
    std::vector<BackgroundStream> streams_;
    std::vector<StreamState> states_;
    support::Rng rng_;

    std::vector<Launch> launches_;
    std::vector<std::size_t> log_cursor_;  ///< per device
    /** Injection windows as commanded, master time, append-ordered. */
    std::vector<std::pair<support::SimTime, support::SimTime>> windows_;
    /** Currently injected transfers (one entry per active demand cycle). */
    std::vector<sim::FabricDemand> injected_;
};

}  // namespace fingrav::runtime

#endif  // FINGRAV_RUNTIME_BACKGROUND_CHANNEL_HPP_

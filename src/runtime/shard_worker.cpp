#include "runtime/shard_worker.hpp"

#include <chrono>
#include <cstdint>
#include <string>
#include <thread>
#include <utility>
#include <vector>

#include "fingrav/campaign_cache.hpp"
#include "fingrav/campaign_runner.hpp"
#include "fingrav/codec.hpp"
#include "support/fault_injector.hpp"
#include "support/logging.hpp"

namespace fingrav::runtime {

namespace {

namespace codec = fingrav::core::codec;

/** Best-effort error report; the driver may already have hung up. */
void
sendError(std::ostream& out, const std::string& message)
{
    codec::Encoder enc;
    enc.str(message);
    codec::writeFrame(out, codec::FrameType::kWorkerError, enc.bytes());
}

/** Raw encoded-frame write + flush; false when the driver hung up. */
bool
writeBytes(std::ostream& out, const std::uint8_t* data, std::size_t size)
{
    out.write(reinterpret_cast<const char*>(data),
              static_cast<std::streamsize>(size));
    out.flush();
    return static_cast<bool>(out);
}

/** One decoded shard request. */
struct ShardRequest {
    sim::MachineConfig cfg;
    std::vector<std::pair<std::uint64_t, core::ScenarioSpec>> items;
};

ShardRequest
decodeShardRequest(const std::vector<std::uint8_t>& payload)
{
    codec::Decoder dec(payload);
    ShardRequest request;
    request.cfg = codec::decodeMachineConfig(dec);
    const auto count = codec::checkedCount(dec.u32(), "shard-request spec");
    request.items.reserve(count);
    for (std::uint64_t i = 0; i < count; ++i) {
        const std::uint64_t slot = dec.u64();
        request.items.emplace_back(slot, codec::decodeScenarioSpec(dec));
    }
    dec.expectEnd("shard request");
    return request;
}

}  // namespace

int
runShardWorker(std::istream& in, std::ostream& out,
               core::CampaignCache* cache, support::FaultInjector* injector)
{
    // The fault-site coordinate counts result frames over the *process*
    // lifetime, not per request: a persistent fleet worker serves many
    // one-spec requests, and a plan like `kill:frame=2` must mean "die
    // before the third result this worker ever produces".  One-shot
    // shard workers see a single request, so the two scopes coincide.
    std::size_t result_frame = 0;
    for (;;) {
        std::optional<codec::Frame> frame;
        try {
            frame = codec::readFrame(in);
        } catch (const support::FatalError& e) {
            sendError(out, e.what());
            return 1;
        }
        if (!frame.has_value())
            return 0;  // clean EOF: the driver closed the request stream
        if (frame->type == codec::FrameType::kShutdown)
            return 0;  // explicit fleet shutdown: same clean exit as EOF
        if (frame->type == codec::FrameType::kPing) {
            // Idle keepalive: the fleet probes residents between
            // dispatches; a missing kPong marks this worker for respawn.
            if (!codec::writeFrame(out, codec::FrameType::kPong, {}))
                return 1;
            continue;
        }
        if (frame->type != codec::FrameType::kShardRequest) {
            sendError(out, std::string("worker expected a shard-request "
                                       "frame, got ") +
                               codec::toString(frame->type));
            return 1;
        }
        try {
            const auto request = decodeShardRequest(frame->payload);
            std::size_t completed = 0;
            for (const auto& [slot, spec] : request.items) {
                // One fresh hermetic node per spec, the same runOne the
                // in-process backends use: results shipped back are
                // bit-identical to local execution.  A shared cache dir
                // lets workers reuse (and feed) the fleet's results;
                // cached or fresh, the shipped bytes are the same.
                std::optional<core::ProfileSet> hit;
                if (cache != nullptr)
                    hit = cache->lookup(spec, request.cfg);
                auto set = hit.has_value()
                               ? std::move(*hit)
                               : core::CampaignRunner::runOne(spec,
                                                              request.cfg);
                if (cache != nullptr && !hit.has_value())
                    cache->store(spec, request.cfg, set);
                codec::Encoder enc;
                enc.u64(slot);
                codec::encodeProfileSet(enc, set);
                auto wire = codec::encodeFrame(
                    codec::FrameType::kShardResult, enc.bytes());
                // Injection sites fire on the fully encoded frame, so a
                // scripted fault mutates exactly the bytes a real death
                // or corruption would leave on the pipe.
                if (injector != nullptr) {
                    const auto fault =
                        injector->onResultFrame(result_frame);
                    if (fault.has_value()) {
                        switch (fault->kind) {
                          case support::FaultKind::kKillWorker:
                            // Die before writing this frame: the driver
                            // sees EOF with this slot (and everything
                            // after it) outstanding.
                            out.flush();
                            return 137;
                          case support::FaultKind::kTruncateFrame:
                            // Half a frame, then death: the driver sees
                            // a truncated stream (frame corruption).
                            writeBytes(out, wire.data(), wire.size() / 2);
                            return 1;
                          case support::FaultKind::kCorruptFrame:
                            // Flip one payload byte; the checksum the
                            // driver verifies catches it.
                            wire[codec::kFrameHeaderBytes] ^= 0x01;
                            break;
                          case support::FaultKind::kStallPipe:
                            std::this_thread::sleep_for(
                                std::chrono::milliseconds(
                                    fault->stall_ms));
                            break;
                          default:
                            break;
                        }
                    }
                }
                if (!writeBytes(out, wire.data(), wire.size()))
                    return 1;  // driver hung up; nothing left to report to
                ++result_frame;
                ++completed;
            }
            codec::Encoder enc;
            enc.u32(static_cast<std::uint32_t>(completed));
            if (!codec::writeFrame(out, codec::FrameType::kShardDone,
                                   enc.bytes()))
                return 1;
        } catch (const std::exception& e) {
            // FatalError (user-level: bad label, bad schedule) and
            // anything else (bad_alloc, logic errors) alike: report and
            // let the driver re-place the shard, never std::terminate.
            sendError(out, e.what());
            return 1;
        }
    }
}

}  // namespace fingrav::runtime

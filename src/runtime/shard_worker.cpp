#include "runtime/shard_worker.hpp"

#include <cstdint>
#include <string>
#include <utility>
#include <vector>

#include "fingrav/campaign_cache.hpp"
#include "fingrav/campaign_runner.hpp"
#include "fingrav/codec.hpp"
#include "support/logging.hpp"

namespace fingrav::runtime {

namespace {

namespace codec = fingrav::core::codec;

/** Best-effort error report; the driver may already have hung up. */
void
sendError(std::ostream& out, const std::string& message)
{
    codec::Encoder enc;
    enc.str(message);
    codec::writeFrame(out, codec::FrameType::kWorkerError, enc.bytes());
}

/** One decoded shard request. */
struct ShardRequest {
    sim::MachineConfig cfg;
    std::vector<std::pair<std::uint64_t, core::ScenarioSpec>> items;
};

ShardRequest
decodeShardRequest(const std::vector<std::uint8_t>& payload)
{
    codec::Decoder dec(payload);
    ShardRequest request;
    request.cfg = codec::decodeMachineConfig(dec);
    const auto count = codec::checkedCount(dec.u32(), "shard-request spec");
    request.items.reserve(count);
    for (std::uint64_t i = 0; i < count; ++i) {
        const std::uint64_t slot = dec.u64();
        request.items.emplace_back(slot, codec::decodeScenarioSpec(dec));
    }
    dec.expectEnd("shard request");
    return request;
}

}  // namespace

int
runShardWorker(std::istream& in, std::ostream& out,
               core::CampaignCache* cache)
{
    for (;;) {
        std::optional<codec::Frame> frame;
        try {
            frame = codec::readFrame(in);
        } catch (const support::FatalError& e) {
            sendError(out, e.what());
            return 1;
        }
        if (!frame.has_value())
            return 0;  // clean EOF: the driver closed the request stream
        if (frame->type != codec::FrameType::kShardRequest) {
            sendError(out, std::string("worker expected a shard-request "
                                       "frame, got ") +
                               codec::toString(frame->type));
            return 1;
        }
        try {
            const auto request = decodeShardRequest(frame->payload);
            std::size_t completed = 0;
            for (const auto& [slot, spec] : request.items) {
                // One fresh hermetic node per spec, the same runOne the
                // in-process backends use: results shipped back are
                // bit-identical to local execution.  A shared cache dir
                // lets workers reuse (and feed) the fleet's results;
                // cached or fresh, the shipped bytes are the same.
                std::optional<core::ProfileSet> hit;
                if (cache != nullptr)
                    hit = cache->lookup(spec, request.cfg);
                auto set = hit.has_value()
                               ? std::move(*hit)
                               : core::CampaignRunner::runOne(spec,
                                                              request.cfg);
                if (cache != nullptr && !hit.has_value())
                    cache->store(spec, request.cfg, set);
                codec::Encoder enc;
                enc.u64(slot);
                codec::encodeProfileSet(enc, set);
                if (!codec::writeFrame(
                        out, codec::FrameType::kShardResult, enc.bytes()))
                    return 1;  // driver hung up; nothing left to report to
                ++completed;
            }
            codec::Encoder enc;
            enc.u32(static_cast<std::uint32_t>(completed));
            if (!codec::writeFrame(out, codec::FrameType::kShardDone,
                                   enc.bytes()))
                return 1;
        } catch (const std::exception& e) {
            // FatalError (user-level: bad label, bad schedule) and
            // anything else (bad_alloc, logic errors) alike: report and
            // let the driver re-place the shard, never std::terminate.
            sendError(out, e.what());
            return 1;
        }
    }
}

}  // namespace fingrav::runtime

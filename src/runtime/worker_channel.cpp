#include "runtime/worker_channel.hpp"

#include <cerrno>
#include <csignal>
#include <mutex>

#include <poll.h>
#include <unistd.h>

#include "support/logging.hpp"

namespace fingrav::runtime {

void
ignoreSigpipeOnce()
{
    static std::once_flag once;
    std::call_once(once, [] {
        struct sigaction current {};
        if (sigaction(SIGPIPE, nullptr, &current) == 0 &&
            current.sa_handler == SIG_DFL) {
            struct sigaction ignore {};
            ignore.sa_handler = SIG_IGN;
            sigaction(SIGPIPE, &ignore, nullptr);
        }
    });
}

IoWait
awaitReady(int fd, short events, const IoBudget& budget)
{
    struct pollfd pfd {};
    pfd.fd = fd;
    pfd.events = events;
    for (;;) {
        long timeout_ms = budget.inactivity_ms > 0 ? budget.inactivity_ms
                                                   : -1;
        if (budget.has_deadline) {
            const auto remaining =
                std::chrono::duration_cast<std::chrono::milliseconds>(
                    budget.deadline - std::chrono::steady_clock::now())
                    .count();
            if (remaining <= 0)
                return IoWait::kTimeout;
            timeout_ms = timeout_ms < 0
                             ? remaining
                             : std::min<long>(timeout_ms, remaining);
        }
        const int n = ::poll(&pfd, 1,
                             timeout_ms > 0 ? static_cast<int>(timeout_ms)
                                            : -1);
        if (n < 0) {
            if (errno == EINTR)
                continue;  // budget re-derived from the clock above
            return IoWait::kError;
        }
        return n > 0 ? IoWait::kReady : IoWait::kTimeout;
    }
}

bool
writeAll(int fd, const std::uint8_t* data, std::size_t size,
         const IoBudget& budget)
{
    while (size > 0) {
        if (awaitReady(fd, POLLOUT, budget) != IoWait::kReady)
            return false;
        const ssize_t n = ::write(fd, data, size);
        if (n < 0) {
            if (errno == EINTR)
                continue;
            return false;
        }
        data += n;
        size -= static_cast<std::size_t>(n);
    }
    return true;
}

ReadStatus
readExact(int fd, std::uint8_t* data, std::size_t size,
          const IoBudget& budget, std::size_t* bytes_read)
{
    if (bytes_read != nullptr)
        *bytes_read = 0;
    while (size > 0) {
        switch (awaitReady(fd, POLLIN, budget)) {
          case IoWait::kTimeout:
            return ReadStatus::kTimeout;
          case IoWait::kError:
            return ReadStatus::kError;
          case IoWait::kReady:
            break;
        }
        const ssize_t n = ::read(fd, data, size);
        if (n < 0) {
            if (errno == EINTR)
                continue;
            return ReadStatus::kError;
        }
        if (n == 0)
            return ReadStatus::kEof;
        data += n;
        size -= static_cast<std::size_t>(n);
        if (bytes_read != nullptr)
            *bytes_read += static_cast<std::size_t>(n);
    }
    return ReadStatus::kOk;
}

void
closeFd(int& fd)
{
    if (fd >= 0) {
        ::close(fd);
        fd = -1;
    }
}

bool
spawnWorkerProcess(const std::vector<std::string>& argv,
                   WorkerProcess& worker)
{
    int to_child[2];    // driver -> worker stdin
    int from_child[2];  // worker stdout -> driver
    if (::pipe(to_child) != 0)
        return false;
    if (::pipe(from_child) != 0) {
        ::close(to_child[0]);
        ::close(to_child[1]);
        return false;
    }
    const pid_t pid = ::fork();
    if (pid < 0) {
        ::close(to_child[0]);
        ::close(to_child[1]);
        ::close(from_child[0]);
        ::close(from_child[1]);
        return false;
    }
    if (pid == 0) {
        // Each worker leads its own process group, so a fault injector
        // (or operator) can kill the worker *and* anything it forked in
        // one signal — otherwise an orphaned grandchild keeps the
        // response pipe open and the driver never sees EOF.
        ::setpgid(0, 0);
        ::dup2(to_child[0], STDIN_FILENO);
        ::dup2(from_child[1], STDOUT_FILENO);
        ::close(to_child[0]);
        ::close(to_child[1]);
        ::close(from_child[0]);
        ::close(from_child[1]);
        std::vector<char*> cargv;
        cargv.reserve(argv.size() + 1);
        for (const auto& arg : argv)
            cargv.push_back(const_cast<char*>(arg.c_str()));
        cargv.push_back(nullptr);
        ::execvp(cargv[0], cargv.data());
        // Exec failure: exit without running any atexit handlers of the
        // forked image; the driver sees EOF and falls back.
        ::_exit(127);
    }
    // Mirror the child's setpgid so the group exists before this call
    // returns, whichever side runs first (the classic double-setpgid
    // idiom; EACCES after the child exec'd means the child already won).
    ::setpgid(pid, pid);
    worker.pid = pid;
    worker.to_child = to_child[1];
    worker.from_child = from_child[0];
    ::close(to_child[0]);
    ::close(from_child[1]);
    return true;
}

FrameStatus
readWorkerFrame(int fd, const IoBudget& budget, core::codec::Frame& frame)
{
    namespace codec = core::codec;
    std::uint8_t header_bytes[codec::kFrameHeaderBytes];
    std::size_t got = 0;
    switch (readExact(fd, header_bytes, codec::kFrameHeaderBytes, budget,
                      &got)) {
      case ReadStatus::kOk:
        break;
      case ReadStatus::kTimeout:
        return FrameStatus::kTimeout;
      case ReadStatus::kEof:
      case ReadStatus::kError:
        // EOF on the frame boundary is death; EOF mid-header is a
        // truncated stream — the same observable a half-written frame
        // leaves, so it journals as corruption.
        return got == 0 ? FrameStatus::kEof : FrameStatus::kCorrupt;
    }
    try {
        const auto header = codec::decodeFrameHeader(header_bytes);
        frame.type = header.type;
        frame.payload.resize(static_cast<std::size_t>(header.payload_len));
        if (header.payload_len > 0) {
            switch (readExact(fd, frame.payload.data(),
                              frame.payload.size(), budget, nullptr)) {
              case ReadStatus::kOk:
                break;
              case ReadStatus::kTimeout:
                return FrameStatus::kTimeout;
              case ReadStatus::kEof:
              case ReadStatus::kError:
                return FrameStatus::kCorrupt;  // truncated payload
            }
        }
        codec::verifyFramePayload(header, frame.payload.data());
        return FrameStatus::kFrame;
    } catch (const support::FatalError& e) {
        support::warn("worker channel: worker stream rejected: ",
                      e.what());
        return FrameStatus::kCorrupt;
    }
}

}  // namespace fingrav::runtime

#include "runtime/background_channel.hpp"

#include <algorithm>
#include <utility>

#include "sim/gpu_device.hpp"
#include "support/logging.hpp"

namespace fingrav::runtime {

BackgroundChannel::BackgroundChannel(sim::Simulation& sim,
                                     std::vector<BackgroundStream> streams,
                                     support::Rng rng)
    : sim_(sim), streams_(std::move(streams)), states_(streams_.size()),
      rng_(std::move(rng)), log_cursor_(sim.deviceCount(), 0)
{
    if (streams_.empty())
        support::fatal("BackgroundChannel: no streams (arm only when the "
                       "scenario has background loads)");
    for (const auto& s : streams_) {
        if (s.inject_demand <= 0.0 && s.device >= sim_.deviceCount())
            support::fatal("BackgroundChannel: stream device ", s.device,
                           " out of range (", sim_.deviceCount(),
                           " devices)");
    }
}

bool
BackgroundChannel::nextEvent(std::size_t i, support::SimTime* when,
                             bool* is_off) const
{
    const auto& s = streams_[i];
    const auto& st = states_[i];
    if (st.on) {
        // Injection off-event closes the current active window.
        *when = s.first + s.period * static_cast<double>(st.next_cycle - 1) +
                s.active;
        *is_off = true;
        return true;
    }
    if (s.cycles != 0 && st.next_cycle >= s.cycles)
        return false;
    *when = s.first + s.period * static_cast<double>(st.next_cycle);
    *is_off = false;
    return true;
}

bool
BackgroundChannel::hasPending() const
{
    support::SimTime when;
    bool off;
    for (std::size_t i = 0; i < streams_.size(); ++i) {
        if (nextEvent(i, &when, &off))
            return true;
    }
    return false;
}

support::SimTime
BackgroundChannel::nextDue() const
{
    bool found = false;
    auto best = support::SimTime::fromNanos(0);
    support::SimTime when;
    bool off;
    for (std::size_t i = 0; i < streams_.size(); ++i) {
        if (nextEvent(i, &when, &off) && (!found || when < best)) {
            best = when;
            found = true;
        }
    }
    FINGRAV_ASSERT(found, "nextDue called with no pending events");
    return best;
}

void
BackgroundChannel::publishInjection()
{
    sim_.fabric().injectDemand(injected_);
}

void
BackgroundChannel::fire(std::size_t i, support::SimTime when, bool is_off)
{
    auto& s = streams_[i];
    auto& st = states_[i];
    if (is_off) {
        // Close the injection window: retire this stream's transfer.
        injected_.erase(
            std::remove_if(injected_.begin(), injected_.end(),
                           [&](const sim::FabricDemand& d) {
                               return d.group == st.group;
                           }),
            injected_.end());
        publishInjection();
        st.on = false;
        st.group = 0;
        return;
    }
    ++st.next_cycle;
    if (s.inject_demand > 0.0) {
        st.group = sim_.fabric().allocGroup();
        injected_.push_back({st.group, s.inject_demand});
        publishInjection();
        windows_.emplace_back(when, when + s.active);
        st.on = true;
        return;
    }
    // Kernel burst: queued at the cycle start in one device queue, so the
    // copies run back-to-back and occupy roughly the active span.
    auto& dev = sim_.device(s.device);
    for (std::size_t l = 0; l < s.launches_per_cycle; ++l) {
        sim::KernelWork work = s.work;
        if (s.jitter_sigma > 0.0) {
            work.nominal_duration =
                work.nominal_duration * rng_.lognormalJitter(s.jitter_sigma);
        }
        // A drain may have carried the device past the cycle start (the
        // channel never rewinds time); the launch slips to the device
        // present in that case — deterministically.
        const auto ready = std::max(when, dev.localNow());
        Launch launch;
        launch.device = s.device;
        launch.submitted = ready;
        launch.exec_id = dev.submit(work, ready, s.queue);
        launches_.push_back(launch);
    }
}

void
BackgroundChannel::pump(support::SimTime horizon)
{
    for (;;) {
        // Earliest pending event at or before the horizon; off-events
        // win time ties so adjacent windows never double-count, and the
        // stream index breaks exact ties — a fixed, deterministic order.
        std::size_t best = streams_.size();
        auto best_when = horizon;
        bool best_off = false;
        for (std::size_t i = 0; i < streams_.size(); ++i) {
            support::SimTime when;
            bool off;
            if (!nextEvent(i, &when, &off) || when > horizon)
                continue;
            if (best == streams_.size() || when < best_when ||
                (when == best_when && off && !best_off)) {
                best = i;
                best_when = when;
                best_off = off;
            }
        }
        if (best == streams_.size())
            return;
        fire(best, best_when, best_off);
    }
}

void
BackgroundChannel::harvestCompletions()
{
    for (auto& launch : launches_) {
        if (launch.resolved)
            continue;
        auto& log = sim_.device(launch.device).executionLog();
        for (std::size_t k = log_cursor_[launch.device]; k < log.size();
             ++k) {
            if (log[k].id == launch.exec_id) {
                launch.submitted = log[k].start;
                launch.end = log[k].end;
                launch.resolved = true;
                break;
            }
        }
    }
    // Advance per-device cursors past fully-scanned prefixes lazily: the
    // cursor only moves when every unresolved launch on the device is
    // newer than the prefix, which the simple rule below approximates by
    // snapping to the log size once all launches are resolved.
    bool all_resolved = true;
    for (const auto& launch : launches_)
        all_resolved = all_resolved && launch.resolved;
    if (all_resolved) {
        for (std::size_t d = 0; d < log_cursor_.size(); ++d)
            log_cursor_[d] = sim_.device(d).executionLog().size();
    }
}

std::vector<std::pair<std::int64_t, std::int64_t>>
BackgroundChannel::activeCpuIntervals(std::int64_t from_ns,
                                      std::int64_t to_ns)
{
    harvestCompletions();
    const auto& clock = sim_.cpuClock();
    // Queries advance monotonically (one per run, in run order), so
    // history that resolved entirely before this query's window can
    // never be asked for again — prune it, keeping the per-run cost
    // proportional to the run instead of the whole campaign.
    std::erase_if(launches_, [&](const Launch& launch) {
        return launch.resolved &&
               clock.domainTime(launch.end).nanos() <= from_ns;
    });
    std::erase_if(windows_, [&](const auto& w) {
        return clock.domainTime(w.second).nanos() <= from_ns;
    });
    std::vector<std::pair<std::int64_t, std::int64_t>> raw;
    raw.reserve(launches_.size() + windows_.size());
    auto add = [&](support::SimTime a, support::SimTime b) {
        const std::int64_t lo = clock.domainTime(a).nanos();
        const std::int64_t hi = clock.domainTime(b).nanos();
        if (hi <= from_ns || lo >= to_ns || hi <= lo)
            return;
        raw.emplace_back(std::max(lo, from_ns), std::min(hi, to_ns));
    };
    for (const auto& launch : launches_) {
        const auto end = launch.resolved
                             ? launch.end
                             : sim_.device(launch.device).localNow();
        add(launch.submitted, end);
    }
    for (const auto& w : windows_)
        add(w.first, w.second);

    std::sort(raw.begin(), raw.end());
    std::vector<std::pair<std::int64_t, std::int64_t>> merged;
    for (const auto& iv : raw) {
        if (!merged.empty() && iv.first <= merged.back().second)
            merged.back().second = std::max(merged.back().second, iv.second);
        else
            merged.push_back(iv);
    }
    return merged;
}

}  // namespace fingrav::runtime

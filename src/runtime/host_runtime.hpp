#ifndef FINGRAV_RUNTIME_HOST_RUNTIME_HPP_
#define FINGRAV_RUNTIME_HOST_RUNTIME_HPP_

/**
 * @file
 * HIP-like host runtime over the simulated node.
 *
 * Everything the FinGraV instrumentation does on real hardware happens
 * through this API: timing kernels from the CPU side, reading the GPU
 * timestamp counter (with its benchmarkable round-trip delay — tenet S2),
 * starting/stopping the power logger around a run, sleeping random delays
 * between runs, and launching kernels.
 *
 * The runtime owns the host's position on the master time axis (the "CPU
 * thread"); every API call costs simulated time the way a real call costs
 * wall time.  CPU-visible timestamps are readings of the CPU clock domain
 * (arbitrary epoch), *not* master time — profiling code upstream never
 * sees master time, exactly as real tooling never sees a global clock.
 * Oracle accessors (masterNow, device execution logs) exist for tests and
 * error analysis only and are clearly named.
 */

#include <cstdint>
#include <memory>
#include <utility>
#include <vector>

#include "runtime/background_channel.hpp"
#include "sim/gpu_device.hpp"
#include "sim/kernel_work.hpp"
#include "sim/power_logger.hpp"
#include "sim/simulation.hpp"
#include "support/rng.hpp"
#include "support/time_types.hpp"

namespace fingrav::runtime {

/** Result of a CPU-side GPU-timestamp-counter read. */
struct TimestampRead {
    std::int64_t gpu_counter = 0;   ///< counter value (ticks)
    std::int64_t cpu_before_ns = 0; ///< CPU clock just before the read call
    std::int64_t cpu_after_ns = 0;  ///< CPU clock just after it returned
};

/** CPU-observed bounds of one kernel execution. */
struct HostTiming {
    std::int64_t cpu_start_ns = 0;  ///< CPU clock when execution began
    std::int64_t cpu_end_ns = 0;    ///< CPU clock at observed completion

    /** CPU-measured execution time. */
    support::Duration
    duration() const
    {
        return support::Duration::nanos(cpu_end_ns - cpu_start_ns);
    }
};

/** Host-side driver of a simulated multi-GPU node. */
class HostRuntime {
  public:
    /**
     * @param sim  The node; must outlive the runtime.
     * @param rng  Host-private randomness (call-latency jitter, etc).
     */
    HostRuntime(sim::Simulation& sim, support::Rng rng);

    HostRuntime(const HostRuntime&) = delete;
    HostRuntime& operator=(const HostRuntime&) = delete;

    // ------------------------------------------------------------------
    // Host time
    // ------------------------------------------------------------------

    /** Read the CPU clock (costs a small amount of simulated time). */
    std::int64_t cpuNowNs();

    /** Block the host thread for `d`. */
    void sleep(support::Duration d);

    // ------------------------------------------------------------------
    // Kernel execution
    // ------------------------------------------------------------------

    /**
     * Asynchronously launch a kernel.
     *
     * Costs the host the launch-call time; the kernel becomes ready on the
     * device after the configured launch overhead.
     *
     * @return Device execution id (matches GpuDevice::ExecutionRecord::id).
     */
    std::uint64_t launch(const sim::KernelWork& work, std::size_t device = 0,
                         std::size_t queue = 0);

    /**
     * Launch the same work on every device simultaneously (collectives).
     *
     * @return Execution id on device 0.
     */
    std::uint64_t launchOnAllDevices(const sim::KernelWork& work,
                                     std::size_t queue = 0);

    /**
     * Block until `device` drains; host time advances to completion.
     * While node-fabric transfers are outstanding (collectives in
     * flight), the drain steps the whole node in fabric epochs so
     * shared-fabric contention is priced from live sibling demand.
     */
    void synchronize(std::size_t device = 0);

    /** Block until every device drains. */
    void synchronizeAll();

    /**
     * Catch every device up to the host present in one batched loop —
     * node-scale sweeps use this instead of per-device catch-up calls.
     */
    void advanceAllDevices();

    /**
     * Launch + synchronize with CPU-side timing instrumentation — the
     * paper's step-2 "timing the kernel start/end" measurement.  The
     * returned bounds carry launch/sync overhead and CPU timer noise, as
     * on real hardware.
     */
    HostTiming timedRun(const sim::KernelWork& work, std::size_t device = 0);

    // ------------------------------------------------------------------
    // Background-launch channel (scenario environments)
    // ------------------------------------------------------------------

    /**
     * Arm the background-launch channel with compiled streams (see
     * fingrav/scenario.hpp).  The channel is a deterministic environment
     * driver: events fire at their scheduled master times, interleaved
     * with foreground drains, off the dedicated `rng` stream.  Empty
     * stream lists are a no-op, so an isolated scenario's runtime is
     * bitwise indistinguishable from a pre-scenario one.  May be armed
     * at most once, before any background event is due.
     */
    void armBackground(std::vector<BackgroundStream> streams,
                       support::Rng rng);

    /** True when a background channel is armed. */
    bool backgroundArmed() const { return background_ != nullptr; }

    /**
     * Background-active CPU-clock intervals overlapping [from_ns, to_ns]
     * (merged, ascending); empty without an armed channel.  This is the
     * contention-state record the stitcher annotates LOIs with.
     */
    std::vector<std::pair<std::int64_t, std::int64_t>>
    backgroundActiveCpuIntervals(std::int64_t from_ns, std::int64_t to_ns);

    // ------------------------------------------------------------------
    // GPU timestamp counter (tenet S2)
    // ------------------------------------------------------------------

    /** Read the GPU timestamp counter from the host (round-trip delay). */
    TimestampRead readGpuTimestamp(std::size_t device = 0);

    /**
     * Estimate the timestamp read delay by timing `iterations`
     * back-to-back reads — the paper's "separately benchmark the delay".
     */
    support::Duration benchmarkTimestampReadDelay(std::size_t device = 0,
                                                  std::size_t iterations = 64);

    // ------------------------------------------------------------------
    // Power logging (tenet S1)
    // ------------------------------------------------------------------

    /**
     * Start capturing power samples on `device` through a logger with the
     * given averaging window (window <= 0 selects the machine default of
     * 1 ms).  A device may run several loggers with distinct windows
     * concurrently — the multi-window capture RecordedCampaign's window
     * sweeps restitch from; the logger for a window is created on first
     * use and persists for the device lifetime.
     */
    void startPowerLog(std::size_t device = 0,
                       support::Duration window = support::Duration());

    /**
     * Stop a capture and return the samples accumulated since start.
     *
     * @param window  Which logger to stop; <= 0 addresses the single
     *                capturing logger (fatal when several are capturing —
     *                multi-window captures must address each by window).
     */
    sim::SampleColumns
    stopPowerLog(std::size_t device = 0,
                 support::Duration window = support::Duration());

    /** GPU timestamp-counter tick length (public hardware knowledge). */
    support::Duration
    timestampTick(std::size_t device = 0) const
    {
        return sim_.device(device).gpuClock().tick();
    }

    /**
     * The averaging window of the device's *primary* power logger — the
     * first one created on `device`, or the machine default when none
     * exists yet.  Energy integration over returned samples must use
     * this, not the config default.
     */
    support::Duration
    powerLogWindow(std::size_t device = 0) const
    {
        return !loggers_[device].empty() ? loggers_[device].front()->window()
                                         : sim_.config().logger_window;
    }

    // ------------------------------------------------------------------
    // Oracle accessors — tests & error analysis only
    // ------------------------------------------------------------------

    /** The host's true position on the master axis. */
    support::SimTime masterNow() const { return cpu_now_; }

    /** Exact device-side execution records. */
    const std::vector<sim::GpuDevice::ExecutionRecord>&
    deviceExecutionLog(std::size_t device = 0) const
    {
        return sim_.device(device).executionLog();
    }

    /** Translate a master time into the CPU clock (oracle). */
    std::int64_t cpuClockAt(support::SimTime master) const;

    /** Underlying simulation. */
    sim::Simulation& simulation() { return sim_; }

  private:
    /**
     * Advance a device's state up to the host present (the whole node
     * when fabric-coupled — see synchronize).  `pump_background` is
     * false only inside synchronizeAll's no-pump drains, so an idle
     * device's catch-up there cannot feed the channel either.
     */
    void catchUpDevice(std::size_t device, bool pump_background = true);

    /**
     * Drain one device.  With `pump_background`, the drain is split at
     * background due times so environment events land mid-drain (the
     * per-execution synchronize); without, the device drains against the
     * already-submitted environment only (the end-of-run synchronizeAll
     * — the environment never drains, so feeding it there would never
     * terminate).
     */
    void synchronizeImpl(std::size_t device, bool pump_background);

    /** Fire background events due at or before `horizon` (if armed). */
    void pumpBackground(support::SimTime horizon);

    /** CPU clock reading for the current host time. */
    std::int64_t readCpuClock() const;

    /** Logger for (device, window), created on first use; null = absent. */
    sim::PowerLogger* findLogger(std::size_t device,
                                 support::Duration window) const;

    sim::Simulation& sim_;
    support::Rng rng_;
    support::SimTime cpu_now_;
    /** Per device: loggers in creation order (front = primary window). */
    std::vector<std::vector<sim::PowerLogger*>> loggers_;
    /** Scenario environment driver; null = no background (legacy path). */
    std::unique_ptr<BackgroundChannel> background_;
};

}  // namespace fingrav::runtime

#endif  // FINGRAV_RUNTIME_HOST_RUNTIME_HPP_

#include "baselines/baseline_profilers.hpp"

#include <utility>

namespace fingrav::baselines {

namespace {

core::ProfilerOptions
withSyncMode(core::ProfilerOptions opts, core::SyncMode mode)
{
    opts.sync_mode = mode;
    return opts;
}

core::ProfilerOptions
withoutBinning(core::ProfilerOptions opts)
{
    opts.binning = false;
    return opts;
}

core::ProfilerOptions
withWindow(core::ProfilerOptions opts, support::Duration window)
{
    opts.logger_window = window;
    return opts;
}

}  // namespace

UnsyncedProfiler::UnsyncedProfiler(runtime::HostRuntime& host,
                                   core::ProfilerOptions opts,
                                   support::Rng rng)
    : profiler_(host, withSyncMode(opts, core::SyncMode::kCoarseAlign),
                std::move(rng))
{
}

core::ProfileSet
UnsyncedProfiler::profile(const kernels::KernelModelPtr& kernel)
{
    return profiler_.profile(kernel);
}

NoBinningProfiler::NoBinningProfiler(runtime::HostRuntime& host,
                                     core::ProfilerOptions opts,
                                     support::Rng rng)
    : profiler_(host, withoutBinning(opts), std::move(rng))
{
}

core::ProfileSet
NoBinningProfiler::profile(const kernels::KernelModelPtr& kernel)
{
    return profiler_.profile(kernel);
}

LangStyleProfiler::LangStyleProfiler(runtime::HostRuntime& host,
                                     core::ProfilerOptions opts,
                                     support::Rng rng)
    : profiler_(host,
                withoutBinning(withSyncMode(
                    opts, core::SyncMode::kNoDelayAccounting)),
                std::move(rng))
{
}

core::ProfileSet
LangStyleProfiler::profile(const kernels::KernelModelPtr& kernel)
{
    return profiler_.profile(kernel);
}

CoarseLoggerProfiler::CoarseLoggerProfiler(runtime::HostRuntime& host,
                                           core::ProfilerOptions opts,
                                           support::Rng rng,
                                           support::Duration window)
    : profiler_(host, withWindow(opts, window), std::move(rng))
{
}

core::ProfileSet
CoarseLoggerProfiler::profile(const kernels::KernelModelPtr& kernel)
{
    return profiler_.profile(kernel);
}

}  // namespace fingrav::baselines

#ifndef FINGRAV_BASELINES_BASELINE_PROFILERS_HPP_
#define FINGRAV_BASELINES_BASELINE_PROFILERS_HPP_

/**
 * @file
 * The degraded profilers FinGraV is evaluated against.
 *
 * Each baseline is the full pipeline with one (or more) of the paper's
 * tenets removed, so every comparison isolates the value of that tenet:
 *
 *  - UnsyncedProfiler      : no CPU-GPU time synchronization (S2 off).
 *    Power-log timestamps are aligned naively (first sample == log-start
 *    call), which misses the idle-to-kernel power ramp and scrambles LOIs
 *    across runs — the red profile of the paper's Fig. 5.
 *
 *  - NoBinningProfiler     : no execution-time binning (S3 off).  Outlier
 *    runs contribute LOIs at wrong TOIs; the profile scatter widens —
 *    Fig. 5's transparent-dot comparison.
 *
 *  - LangStyleProfiler     : Lang & Ruenger (Euro-Par'13)-style
 *    synchronization that ignores the CPU-GPU communication delay
 *    (Section VII: "the authors did not factor in the delays imposed by
 *    the CPU-GPU communication"), and no execution-time binning (the
 *    challenge their era of kernels did not face).
 *
 *  - CoarseLoggerProfiler  : FinGraV methodology on an amd-smi-style
 *    external logger with a tens-of-milliseconds averaging window
 *    (Section VI / challenge C1).
 */

#include "fingrav/profiler.hpp"
#include "kernels/kernel_model.hpp"
#include "runtime/host_runtime.hpp"
#include "support/rng.hpp"
#include "support/time_types.hpp"

namespace fingrav::baselines {

/** Fig. 5's "unsynchronized" baseline: tenet S2 disabled. */
class UnsyncedProfiler {
  public:
    UnsyncedProfiler(runtime::HostRuntime& host, core::ProfilerOptions opts,
                     support::Rng rng);

    /** Profile with naive log alignment; everything else is FinGraV. */
    core::ProfileSet profile(const kernels::KernelModelPtr& kernel);

  private:
    core::Profiler profiler_;
};

/** Fig. 5's "no binning" baseline: tenet S3 disabled. */
class NoBinningProfiler {
  public:
    NoBinningProfiler(runtime::HostRuntime& host, core::ProfilerOptions opts,
                      support::Rng rng);

    /** Profile keeping every run, outliers included. */
    core::ProfileSet profile(const kernels::KernelModelPtr& kernel);

  private:
    core::Profiler profiler_;
};

/** Lang et al. style high-resolution profiling (Section VII). */
class LangStyleProfiler {
  public:
    LangStyleProfiler(runtime::HostRuntime& host, core::ProfilerOptions opts,
                      support::Rng rng);

    /** Profile with delay-blind sync and no binning. */
    core::ProfileSet profile(const kernels::KernelModelPtr& kernel);

  private:
    core::Profiler profiler_;
};

/** FinGraV over an amd-smi-style coarse logger (Section VI). */
class CoarseLoggerProfiler {
  public:
    /**
     * @param window  External-logger averaging window (amd-smi class
     *                telemetry refreshes every few tens of ms).
     */
    CoarseLoggerProfiler(runtime::HostRuntime& host,
                         core::ProfilerOptions opts, support::Rng rng,
                         support::Duration window =
                             support::Duration::millis(50.0));

    /** Profile through the coarse logger. */
    core::ProfileSet profile(const kernels::KernelModelPtr& kernel);

  private:
    core::Profiler profiler_;
};

}  // namespace fingrav::baselines

#endif  // FINGRAV_BASELINES_BASELINE_PROFILERS_HPP_

#ifndef FINGRAV_SUPPORT_TABLE_HPP_
#define FINGRAV_SUPPORT_TABLE_HPP_

/**
 * @file
 * ASCII table and CSV emitters for benchmark/experiment output.
 *
 * Every bench binary prints the rows/series of the paper table or figure it
 * regenerates; TableWriter renders aligned console tables and CsvWriter
 * dumps the same data machine-readably (for replotting).
 */

#include <cstddef>
#include <ostream>
#include <string>
#include <vector>

namespace fingrav::support {

/** Column-aligned console table. */
class TableWriter {
  public:
    /** @param headers Column headings (defines the column count). */
    explicit TableWriter(std::vector<std::string> headers);

    /** Append a row; must match the column count (fatal otherwise). */
    void addRow(std::vector<std::string> row);

    /** Format a double with the given precision (helper for row building). */
    static std::string num(double v, int precision = 2);

    /** Render to a stream with a header underline. */
    void print(std::ostream& os) const;

    /** Number of data rows so far. */
    std::size_t rowCount() const { return rows_.size(); }

  private:
    std::vector<std::string> headers_;
    std::vector<std::vector<std::string>> rows_;
};

/** Comma-separated emitter with the same row-oriented interface. */
class CsvWriter {
  public:
    explicit CsvWriter(std::vector<std::string> headers);

    /** Append a row; must match the column count (fatal otherwise). */
    void addRow(std::vector<std::string> row);

    /** Append a row of numbers. */
    void addNumericRow(const std::vector<double>& row, int precision = 6);

    /** Render the full CSV (header + rows). */
    void print(std::ostream& os) const;

    /** Write to a file; warns and returns false on I/O failure. */
    bool writeFile(const std::string& path) const;

  private:
    std::size_t columns_;
    std::vector<std::string> lines_;
};

}  // namespace fingrav::support

#endif  // FINGRAV_SUPPORT_TABLE_HPP_

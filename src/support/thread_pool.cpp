#include "support/thread_pool.hpp"

#include <condition_variable>

namespace fingrav::support {

ThreadPool::ThreadPool(std::size_t threads)
{
    const std::size_t workers = threads > 1 ? threads - 1 : 0;
    workers_.reserve(workers);
    for (std::size_t i = 0; i < workers; ++i)
        workers_.emplace_back([this] { workerMain(); });
}

ThreadPool::~ThreadPool()
{
    {
        std::lock_guard<std::mutex> lk(mu_);
        stop_ = true;
    }
    cv_start_.notify_all();
    for (auto& w : workers_)
        w.join();
}

void
ThreadPool::workerMain()
{
    std::uint64_t seen = 0;
    for (;;) {
        {
            std::unique_lock<std::mutex> lk(mu_);
            cv_start_.wait(lk,
                           [&] { return stop_ || generation_ != seen; });
            if (stop_)
                return;
            seen = generation_;
        }
        drainJob();
        {
            std::lock_guard<std::mutex> lk(mu_);
            if (++workers_done_ == workers_.size())
                cv_done_.notify_one();
        }
    }
}

void
ThreadPool::drainJob()
{
    for (;;) {
        const std::size_t i =
            next_item_.fetch_add(1, std::memory_order_relaxed);
        if (i >= job_size_)
            return;
        try {
            (*job_)(i);
        } catch (...) {
            std::lock_guard<std::mutex> lk(error_mu_);
            if (!first_error_)
                first_error_ = std::current_exception();
        }
    }
}

void
ThreadPool::parallelFor(std::size_t n,
                        const std::function<void(std::size_t)>& fn)
{
    if (workers_.empty() || n <= 1) {
        for (std::size_t i = 0; i < n; ++i)
            fn(i);
        return;
    }
    {
        std::lock_guard<std::mutex> lk(mu_);
        job_ = &fn;
        job_size_ = n;
        next_item_.store(0, std::memory_order_relaxed);
        workers_done_ = 0;
        first_error_ = nullptr;
        ++generation_;
    }
    cv_start_.notify_all();
    drainJob();
    {
        std::unique_lock<std::mutex> lk(mu_);
        cv_done_.wait(lk, [&] { return workers_done_ == workers_.size(); });
        job_ = nullptr;
        job_size_ = 0;
    }
    if (first_error_)
        std::rethrow_exception(first_error_);
}

void
ThreadPool::roundLoop(const std::function<std::size_t()>& leader,
                      const std::function<void(std::size_t)>& fn)
{
    if (workers_.empty()) {
        for (;;) {
            const std::size_t n = leader();
            if (n == 0)
                return;
            for (std::size_t i = 0; i < n; ++i)
                fn(i);
        }
    }

    // One participant per pool thread.  Each participant loops over
    // rounds: arrive at the barrier; the last arriver runs the leader
    // section (exclusively, under the barrier mutex — everyone else is
    // asleep) and opens the next round; then every participant claims
    // items through the shared counter.  The barrier mutex orders item
    // writes before the leader's reads, so device state mutated in round
    // r is visible to the leader computing round r+1.
    struct RoundState {
        std::mutex m;
        std::condition_variable cv;
        std::size_t arrived = 0;
        std::uint64_t round = 0;
        std::size_t count = 0;
        bool done = false;
        std::atomic<std::size_t> next{0};
        std::exception_ptr error;
    } st;
    const std::size_t participants = threads();

    parallelFor(participants, [&](std::size_t) {
        std::uint64_t seen = 0;
        for (;;) {
            {
                std::unique_lock<std::mutex> lk(st.m);
                if (++st.arrived == participants) {
                    std::size_t n = 0;
                    if (!st.error) {
                        try {
                            n = leader();
                        } catch (...) {
                            st.error = std::current_exception();
                        }
                    }
                    st.count = n;
                    st.done = (n == 0);
                    st.next.store(0, std::memory_order_relaxed);
                    st.arrived = 0;
                    ++st.round;
                    lk.unlock();
                    st.cv.notify_all();
                } else {
                    st.cv.wait(lk, [&] { return st.round != seen; });
                }
            }
            ++seen;
            if (st.done)
                return;
            for (;;) {
                const std::size_t i =
                    st.next.fetch_add(1, std::memory_order_relaxed);
                if (i >= st.count)
                    break;
                try {
                    fn(i);
                } catch (...) {
                    std::lock_guard<std::mutex> lk(st.m);
                    if (!st.error)
                        st.error = std::current_exception();
                }
            }
        }
    });
    if (st.error)
        std::rethrow_exception(st.error);
}

}  // namespace fingrav::support

#include "support/thread_pool.hpp"

namespace fingrav::support {

ThreadPool::ThreadPool(std::size_t threads)
{
    const std::size_t workers = threads > 1 ? threads - 1 : 0;
    workers_.reserve(workers);
    for (std::size_t i = 0; i < workers; ++i)
        workers_.emplace_back([this] { workerMain(); });
}

ThreadPool::~ThreadPool()
{
    {
        std::lock_guard<std::mutex> lk(mu_);
        stop_ = true;
    }
    cv_start_.notify_all();
    for (auto& w : workers_)
        w.join();
}

void
ThreadPool::workerMain()
{
    std::uint64_t seen = 0;
    for (;;) {
        {
            std::unique_lock<std::mutex> lk(mu_);
            cv_start_.wait(lk,
                           [&] { return stop_ || generation_ != seen; });
            if (stop_)
                return;
            seen = generation_;
        }
        drainJob();
        {
            std::lock_guard<std::mutex> lk(mu_);
            if (++workers_done_ == workers_.size())
                cv_done_.notify_one();
        }
    }
}

void
ThreadPool::drainJob()
{
    for (;;) {
        const std::size_t i =
            next_item_.fetch_add(1, std::memory_order_relaxed);
        if (i >= job_size_)
            return;
        try {
            (*job_)(i);
        } catch (...) {
            std::lock_guard<std::mutex> lk(error_mu_);
            if (!first_error_)
                first_error_ = std::current_exception();
        }
    }
}

void
ThreadPool::parallelFor(std::size_t n,
                        const std::function<void(std::size_t)>& fn)
{
    if (workers_.empty() || n <= 1) {
        for (std::size_t i = 0; i < n; ++i)
            fn(i);
        return;
    }
    {
        std::lock_guard<std::mutex> lk(mu_);
        job_ = &fn;
        job_size_ = n;
        next_item_.store(0, std::memory_order_relaxed);
        workers_done_ = 0;
        first_error_ = nullptr;
        ++generation_;
    }
    cv_start_.notify_all();
    drainJob();
    {
        std::unique_lock<std::mutex> lk(mu_);
        cv_done_.wait(lk, [&] { return workers_done_ == workers_.size(); });
        job_ = nullptr;
        job_size_ = 0;
    }
    if (first_error_)
        std::rethrow_exception(first_error_);
}

}  // namespace fingrav::support

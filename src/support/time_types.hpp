#ifndef FINGRAV_SUPPORT_TIME_TYPES_HPP_
#define FINGRAV_SUPPORT_TIME_TYPES_HPP_

/**
 * @file
 * Strong types for simulated time.
 *
 * All simulation time is integer nanoseconds.  Two distinct types keep the
 * algebra honest: SimTime is a *point* on a time axis, Duration is a span.
 * Point - Point = Duration; Point + Duration = Point; Duration supports the
 * usual vector-space operations.  Mixing the two without an explicit
 * operation is a compile error — exactly the class of bug that plagues
 * multi-clock-domain code (CPU time vs GPU time vs master time).
 *
 * Note that SimTime values from *different clock domains* are still the same
 * C++ type; domain discipline is enforced by the sim::ClockDomain API which
 * is the only translator between domains.
 */

#include <cstdint>
#include <ostream>

namespace fingrav::support {

/** A span of simulated time, integer nanoseconds. */
class Duration {
  public:
    constexpr Duration() : ns_(0) {}

    /** Construct from raw nanoseconds. */
    static constexpr Duration
    nanos(std::int64_t ns)
    {
        return Duration(ns);
    }

    /** Construct from microseconds (converted to integer ns). */
    static constexpr Duration
    micros(double us)
    {
        return Duration(static_cast<std::int64_t>(us * 1e3));
    }

    /** Construct from milliseconds (converted to integer ns). */
    static constexpr Duration
    millis(double ms)
    {
        return Duration(static_cast<std::int64_t>(ms * 1e6));
    }

    /** Construct from seconds (converted to integer ns). */
    static constexpr Duration
    seconds(double s)
    {
        return Duration(static_cast<std::int64_t>(s * 1e9));
    }

    /** Raw nanosecond count. */
    constexpr std::int64_t nanos() const { return ns_; }
    /** Value in microseconds. */
    constexpr double toMicros() const { return static_cast<double>(ns_) / 1e3; }
    /** Value in milliseconds. */
    constexpr double toMillis() const { return static_cast<double>(ns_) / 1e6; }
    /** Value in seconds. */
    constexpr double toSeconds() const { return static_cast<double>(ns_) / 1e9; }

    constexpr Duration operator+(Duration o) const { return Duration(ns_ + o.ns_); }
    constexpr Duration operator-(Duration o) const { return Duration(ns_ - o.ns_); }
    constexpr Duration operator-() const { return Duration(-ns_); }

    /** Scale by a dimensionless factor (rounds toward zero). */
    constexpr Duration
    operator*(double f) const
    {
        return Duration(static_cast<std::int64_t>(static_cast<double>(ns_) * f));
    }

    /** Ratio of two spans, dimensionless. */
    constexpr double
    operator/(Duration o) const
    {
        return static_cast<double>(ns_) / static_cast<double>(o.ns_);
    }

    constexpr Duration& operator+=(Duration o) { ns_ += o.ns_; return *this; }
    constexpr Duration& operator-=(Duration o) { ns_ -= o.ns_; return *this; }

    constexpr auto operator<=>(const Duration&) const = default;

  private:
    explicit constexpr Duration(std::int64_t ns) : ns_(ns) {}

    std::int64_t ns_;
};

/** A point in simulated time, integer nanoseconds since an epoch. */
class SimTime {
  public:
    constexpr SimTime() : ns_(0) {}

    /** Construct from raw nanoseconds since the epoch. */
    static constexpr SimTime
    fromNanos(std::int64_t ns)
    {
        return SimTime(ns);
    }

    /** Raw nanosecond count since the epoch. */
    constexpr std::int64_t nanos() const { return ns_; }
    /** Point expressed in seconds since the epoch. */
    constexpr double toSeconds() const { return static_cast<double>(ns_) / 1e9; }

    constexpr SimTime operator+(Duration d) const { return SimTime(ns_ + d.nanos()); }
    constexpr SimTime operator-(Duration d) const { return SimTime(ns_ - d.nanos()); }
    constexpr Duration operator-(SimTime o) const { return Duration::nanos(ns_ - o.ns_); }

    constexpr SimTime& operator+=(Duration d) { ns_ += d.nanos(); return *this; }

    constexpr auto operator<=>(const SimTime&) const = default;

  private:
    explicit constexpr SimTime(std::int64_t ns) : ns_(ns) {}

    std::int64_t ns_;
};

inline std::ostream&
operator<<(std::ostream& os, Duration d)
{
    return os << d.toMicros() << "us";
}

inline std::ostream&
operator<<(std::ostream& os, SimTime t)
{
    return os << t.toSeconds() << "s";
}

namespace literals {

constexpr Duration operator""_ns(unsigned long long v)
{
    return Duration::nanos(static_cast<std::int64_t>(v));
}

constexpr Duration operator""_us(unsigned long long v)
{
    return Duration::micros(static_cast<double>(v));
}

constexpr Duration operator""_us(long double v)
{
    return Duration::micros(static_cast<double>(v));
}

constexpr Duration operator""_ms(unsigned long long v)
{
    return Duration::millis(static_cast<double>(v));
}

constexpr Duration operator""_ms(long double v)
{
    return Duration::millis(static_cast<double>(v));
}

constexpr Duration operator""_sec(unsigned long long v)
{
    return Duration::seconds(static_cast<double>(v));
}

}  // namespace literals

}  // namespace fingrav::support

#endif  // FINGRAV_SUPPORT_TIME_TYPES_HPP_

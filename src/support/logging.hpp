#ifndef FINGRAV_SUPPORT_LOGGING_HPP_
#define FINGRAV_SUPPORT_LOGGING_HPP_

/**
 * @file
 * Status/error reporting in the gem5 idiom.
 *
 * Severity model (see gem5 coding style, "Fatal v. Panic"):
 *  - inform(): normal operating status, no connotation of misbehaviour.
 *  - warn():   something may be off but execution can continue.
 *  - fatal():  the run cannot continue due to a *user* error (bad
 *              configuration, invalid argument).  Throws FatalError so
 *              tests can assert on user-error paths.
 *  - panic():  an internal invariant was violated, i.e. a bug in this
 *              library itself.  Throws PanicError.
 *
 * FINGRAV_ASSERT(cond, ...) panics with file/line context when `cond` is
 * false; it is always compiled in (simulation correctness beats the cycles).
 */

#include <sstream>
#include <stdexcept>
#include <string>

namespace fingrav::support {

/** Error thrown by fatal(): the user asked for something unsatisfiable. */
class FatalError : public std::runtime_error {
  public:
    explicit FatalError(const std::string& msg) : std::runtime_error(msg) {}
};

/** Error thrown by panic(): an internal invariant of this library broke. */
class PanicError : public std::logic_error {
  public:
    explicit PanicError(const std::string& msg) : std::logic_error(msg) {}
};

/** Verbosity threshold for inform()/warn() console output. */
enum class LogLevel {
    kSilent = 0,  ///< suppress inform() and warn()
    kWarn = 1,    ///< warn() only
    kInform = 2,  ///< warn() and inform()
};

/** Set the process-wide verbosity for inform()/warn(). */
void setLogLevel(LogLevel level);

/** Current process-wide verbosity. */
LogLevel logLevel();

namespace detail {

/** Fold any streamable argument pack into one string. */
template <typename... Args>
std::string
concat(Args&&... args)
{
    std::ostringstream oss;
    (oss << ... << std::forward<Args>(args));
    return oss.str();
}

void emit(const char* tag, const std::string& msg);

}  // namespace detail

/** Print a normal status message (stdout, "info:" prefix). */
template <typename... Args>
void
inform(Args&&... args)
{
    if (logLevel() >= LogLevel::kInform)
        detail::emit("info", detail::concat(std::forward<Args>(args)...));
}

/** Print a warning (stderr, "warn:" prefix). */
template <typename... Args>
void
warn(Args&&... args)
{
    if (logLevel() >= LogLevel::kWarn)
        detail::emit("warn", detail::concat(std::forward<Args>(args)...));
}

/** Abort the run for a user-caused condition. */
template <typename... Args>
[[noreturn]] void
fatal(Args&&... args)
{
    throw FatalError(detail::concat(std::forward<Args>(args)...));
}

/** Abort the run for an internal bug. */
template <typename... Args>
[[noreturn]] void
panic(Args&&... args)
{
    throw PanicError(detail::concat(std::forward<Args>(args)...));
}

}  // namespace fingrav::support

/** Panic with source context when an internal invariant fails. */
#define FINGRAV_ASSERT(cond, ...)                                            \
    do {                                                                     \
        if (!(cond)) {                                                       \
            ::fingrav::support::panic("assertion `" #cond "` failed at ",    \
                                      __FILE__, ":", __LINE__, ": ",         \
                                      ##__VA_ARGS__);                        \
        }                                                                    \
    } while (false)

#endif  // FINGRAV_SUPPORT_LOGGING_HPP_

#include "support/fault_injector.hpp"

#include <cctype>
#include <sstream>

#include "support/logging.hpp"

namespace fingrav::support {

namespace {

std::string
trim(const std::string& text)
{
    std::size_t begin = 0;
    std::size_t end = text.size();
    while (begin < end &&
           std::isspace(static_cast<unsigned char>(text[begin])))
        ++begin;
    while (end > begin &&
           std::isspace(static_cast<unsigned char>(text[end - 1])))
        --end;
    return text.substr(begin, end - begin);
}

std::vector<std::string>
split(const std::string& text, char sep)
{
    std::vector<std::string> parts;
    std::string part;
    std::istringstream iss(text);
    while (std::getline(iss, part, sep))
        parts.push_back(part);
    return parts;
}

FaultKind
kindFromName(const std::string& name, const std::string& plan_text)
{
    if (name == "spawn-fail")
        return FaultKind::kSpawnFail;
    if (name == "kill")
        return FaultKind::kKillWorker;
    if (name == "truncate")
        return FaultKind::kTruncateFrame;
    if (name == "corrupt")
        return FaultKind::kCorruptFrame;
    if (name == "stall")
        return FaultKind::kStallPipe;
    if (name == "store-short")
        return FaultKind::kShortStoreWrite;
    fatal("fault plan \"", plan_text, "\": unknown fault \"", name,
          "\" (expected spawn-fail|kill|truncate|corrupt|stall|store-short)");
}

long
parseValue(const std::string& key, const std::string& value,
           const std::string& plan_text)
{
    if (value == "*")
        return FaultAction::kAny;
    if (value.empty())
        fatal("fault plan \"", plan_text, "\": empty value for key \"", key,
              "\"");
    for (char c : value) {
        if (!std::isdigit(static_cast<unsigned char>(c)))
            fatal("fault plan \"", plan_text, "\": value \"", value,
                  "\" for key \"", key,
                  "\" is not a non-negative integer or '*'");
    }
    try {
        return std::stol(value);
    } catch (const std::exception&) {
        fatal("fault plan \"", plan_text, "\": value \"", value,
              "\" for key \"", key, "\" is out of range");
    }
}

bool
isWorkerSite(FaultKind kind)
{
    switch (kind) {
      case FaultKind::kKillWorker:
      case FaultKind::kTruncateFrame:
      case FaultKind::kCorruptFrame:
      case FaultKind::kStallPipe:
        return true;
      case FaultKind::kSpawnFail:
      case FaultKind::kShortStoreWrite:
        return false;
    }
    return false;
}

bool
matches(long coordinate, std::size_t value)
{
    return coordinate == FaultAction::kAny ||
           coordinate == static_cast<long>(value);
}

std::string
coordinateToString(long coordinate)
{
    if (coordinate == FaultAction::kAny)
        return "*";
    return std::to_string(coordinate);
}

/** Serialize one action; optionally drop driver coordinates (the
 *  worker-side sub-plan never carries shard/attempt). */
std::string
serializeAction(const FaultAction& action, bool strip_driver_coords)
{
    std::ostringstream oss;
    oss << toString(action.kind);
    std::vector<std::string> keys;
    if (!strip_driver_coords) {
        if (action.shard != FaultAction::kAny)
            keys.push_back("shard=" + coordinateToString(action.shard));
        if (action.attempt != 0)
            keys.push_back("attempt=" + coordinateToString(action.attempt));
    }
    if (isWorkerSite(action.kind) && action.frame != 0)
        keys.push_back("frame=" + coordinateToString(action.frame));
    if (action.kind == FaultKind::kStallPipe)
        keys.push_back("ms=" + std::to_string(action.stall_ms));
    if (action.times != 1)
        keys.push_back("times=" + coordinateToString(action.times));
    for (std::size_t k = 0; k < keys.size(); ++k)
        oss << (k == 0 ? ":" : ",") << keys[k];
    return oss.str();
}

}  // namespace

const char*
toString(FaultKind kind)
{
    switch (kind) {
      case FaultKind::kSpawnFail:
        return "spawn-fail";
      case FaultKind::kKillWorker:
        return "kill";
      case FaultKind::kTruncateFrame:
        return "truncate";
      case FaultKind::kCorruptFrame:
        return "corrupt";
      case FaultKind::kStallPipe:
        return "stall";
      case FaultKind::kShortStoreWrite:
        return "store-short";
    }
    return "unknown";
}

FaultPlan
FaultPlan::parse(const std::string& text)
{
    FaultPlan plan;
    for (const std::string& raw_action : split(text, ';')) {
        const std::string action_text = trim(raw_action);
        if (action_text.empty())
            continue;  // tolerate trailing / doubled separators

        FaultAction action;
        const std::size_t colon = action_text.find(':');
        action.kind =
            kindFromName(trim(action_text.substr(0, colon)), text);

        if (colon != std::string::npos) {
            for (const std::string& raw_pair :
                 split(action_text.substr(colon + 1), ',')) {
                const std::string pair = trim(raw_pair);
                const std::size_t eq = pair.find('=');
                if (eq == std::string::npos)
                    fatal("fault plan \"", text, "\": \"", pair,
                          "\" is not key=value");
                const std::string key = trim(pair.substr(0, eq));
                const long value =
                    parseValue(key, trim(pair.substr(eq + 1)), text);
                if (key == "shard") {
                    action.shard = value;
                } else if (key == "attempt") {
                    action.attempt = value;
                } else if (key == "frame") {
                    action.frame = value;
                } else if (key == "ms") {
                    action.stall_ms = value;
                } else if (key == "times") {
                    action.times = value;
                } else {
                    fatal("fault plan \"", text, "\": unknown key \"", key,
                          "\" (expected shard|frame|attempt|ms|times)");
                }
            }
        }
        plan.actions.push_back(action);
    }
    return plan;
}

std::string
FaultPlan::toString() const
{
    std::ostringstream oss;
    for (std::size_t i = 0; i < actions.size(); ++i)
        oss << (i == 0 ? "" : ";")
            << serializeAction(actions[i], /*strip_driver_coords=*/false);
    return oss.str();
}

FaultInjector::FaultInjector(FaultPlan plan)
    : plan_(std::move(plan)), fired_(plan_.actions.size(), 0)
{
}

bool
FaultInjector::onSpawn(std::size_t shard, std::size_t attempt)
{
    std::lock_guard<std::mutex> lock(mu_);
    for (std::size_t i = 0; i < plan_.actions.size(); ++i) {
        const FaultAction& action = plan_.actions[i];
        if (action.kind != FaultKind::kSpawnFail)
            continue;
        if (!matches(action.shard, shard) ||
            !matches(action.attempt, attempt))
            continue;
        if (action.times != FaultAction::kAny && fired_[i] >= action.times)
            continue;
        ++fired_[i];
        return true;
    }
    return false;
}

std::string
FaultInjector::workerPlan(std::size_t shard, std::size_t attempt) const
{
    // Pure derivation from the plan script — a worker sub-plan depends
    // only on (shard, attempt) coordinates, never on what already fired,
    // so the schedule of injected worker faults is deterministic.
    std::ostringstream oss;
    bool first = true;
    for (const FaultAction& action : plan_.actions) {
        if (!isWorkerSite(action.kind))
            continue;
        if (!matches(action.shard, shard) ||
            !matches(action.attempt, attempt))
            continue;
        oss << (first ? "" : ";")
            << serializeAction(action, /*strip_driver_coords=*/true);
        first = false;
    }
    return oss.str();
}

std::optional<FrameFault>
FaultInjector::onResultFrame(std::size_t frame)
{
    // Worker-site coordinates are frame-only: shard/attempt were already
    // resolved by the driver when it derived this worker's sub-plan.
    std::lock_guard<std::mutex> lock(mu_);
    for (std::size_t i = 0; i < plan_.actions.size(); ++i) {
        const FaultAction& action = plan_.actions[i];
        if (!isWorkerSite(action.kind))
            continue;
        if (!matches(action.frame, frame))
            continue;
        if (action.times != FaultAction::kAny && fired_[i] >= action.times)
            continue;
        ++fired_[i];
        return FrameFault{action.kind, action.stall_ms};
    }
    return std::nullopt;
}

bool
FaultInjector::onStoreWrite()
{
    std::lock_guard<std::mutex> lock(mu_);
    for (std::size_t i = 0; i < plan_.actions.size(); ++i) {
        const FaultAction& action = plan_.actions[i];
        if (action.kind != FaultKind::kShortStoreWrite)
            continue;
        if (action.times != FaultAction::kAny && fired_[i] >= action.times)
            continue;
        ++fired_[i];
        return true;
    }
    return false;
}

}  // namespace fingrav::support

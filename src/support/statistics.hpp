#ifndef FINGRAV_SUPPORT_STATISTICS_HPP_
#define FINGRAV_SUPPORT_STATISTICS_HPP_

/**
 * @file
 * Streaming and batch descriptive statistics.
 *
 * RunningStats is Welford's online algorithm (numerically stable single
 * pass); the free functions operate on vectors and are used by the binning
 * and profile-analysis code where the full sample is available anyway.
 */

#include <cstddef>
#include <vector>

namespace fingrav::support {

/** Single-pass mean/variance/min/max accumulator (Welford). */
class RunningStats {
  public:
    /** Fold one observation into the accumulator. */
    void add(double x);

    /** Number of observations so far. */
    std::size_t count() const { return n_; }
    /** Arithmetic mean; 0 when empty. */
    double mean() const { return n_ ? mean_ : 0.0; }
    /** Unbiased sample variance; 0 for fewer than two observations. */
    double variance() const;
    /** Unbiased sample standard deviation. */
    double stddev() const;
    /** Smallest observation; 0 when empty. */
    double min() const { return n_ ? min_ : 0.0; }
    /** Largest observation; 0 when empty. */
    double max() const { return n_ ? max_ : 0.0; }
    /** Sum of all observations. */
    double sum() const { return sum_; }

  private:
    std::size_t n_ = 0;
    double mean_ = 0.0;
    double m2_ = 0.0;
    double min_ = 0.0;
    double max_ = 0.0;
    double sum_ = 0.0;
};

/** Mean of a sample; 0 when empty. */
double mean(const std::vector<double>& xs);

/** Unbiased sample standard deviation; 0 for fewer than two observations. */
double stddev(const std::vector<double>& xs);

/** Median (average of the two middle order statistics for even n). */
double median(std::vector<double> xs);

/**
 * Linear-interpolated percentile.
 *
 * @param xs Sample (copied and sorted internally).
 * @param p  Percentile in [0, 100].
 */
double percentile(std::vector<double> xs, double p);

/** Coefficient of variation (stddev/mean); 0 when the mean is 0. */
double coefficientOfVariation(const std::vector<double>& xs);

}  // namespace fingrav::support

#endif  // FINGRAV_SUPPORT_STATISTICS_HPP_

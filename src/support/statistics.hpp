#ifndef FINGRAV_SUPPORT_STATISTICS_HPP_
#define FINGRAV_SUPPORT_STATISTICS_HPP_

/**
 * @file
 * Streaming and batch descriptive statistics.
 *
 * RunningStats is Welford's online algorithm (numerically stable single
 * pass); the free functions operate on vectors and are used by the binning
 * and profile-analysis code where the full sample is available anyway.
 *
 * Percentiles come in two shapes: the by-value overloads copy (legacy
 * convenience), the *InPlace overloads select with nth_element over a
 * caller-provided scratch buffer — O(n) instead of O(n log n) and no
 * allocation.  Both produce bit-identical results: the interpolation reads
 * order statistics, which do not depend on how the buffer was arranged.
 */

#include <cstddef>
#include <limits>
#include <vector>

namespace fingrav::support {

/** Single-pass mean/variance/min/max accumulator (Welford). */
class RunningStats {
  public:
    /**
     * Fold one observation into the accumulator.  Branch-free: min/max
     * start at ±infinity (accessors mask the empty case) and the Welford
     * update needs no first-element special case — for the first x,
     * delta = x, mean becomes x/1 = x and m2 gains x·(x−x) = ±0, which
     * sums to +0 exactly as the former `if (n_ == 1)` branch produced.
     */
    void add(double x);

    /** Number of observations so far. */
    std::size_t count() const { return n_; }
    /** Arithmetic mean; 0 when empty. */
    double mean() const { return n_ ? mean_ : 0.0; }
    /** Unbiased sample variance; 0 for fewer than two observations. */
    double variance() const;
    /** Unbiased sample standard deviation. */
    double stddev() const;
    /** Smallest observation; 0 when empty. */
    double min() const { return n_ ? min_ : 0.0; }
    /** Largest observation; 0 when empty. */
    double max() const { return n_ ? max_ : 0.0; }
    /** Sum of all observations. */
    double sum() const { return sum_; }

  private:
    std::size_t n_ = 0;
    double mean_ = 0.0;
    double m2_ = 0.0;
    double min_ = std::numeric_limits<double>::infinity();
    double max_ = -std::numeric_limits<double>::infinity();
    double sum_ = 0.0;
};

/**
 * Batch moments of a sample, computed in one call: the mean accumulates
 * in element order and the squared deviations use the classic two-pass
 * formula, so `mean` and `stddev()` reproduce the former standalone
 * helpers bit for bit while reading the sample's mean only once.
 */
struct Moments {
    std::size_t count = 0;
    double mean = 0.0;
    double m2 = 0.0;  ///< Σ(x − mean)², element order

    /** Unbiased sample variance; 0 for fewer than two observations. */
    double variance() const;
    /** Unbiased sample standard deviation. */
    double stddev() const;
};

/** Batch mean + squared deviations of a sample. */
Moments moments(const std::vector<double>& xs);

/** Mean of a sample; 0 when empty. */
double mean(const std::vector<double>& xs);

/** Unbiased sample standard deviation; 0 for fewer than two observations. */
double stddev(const std::vector<double>& xs);

/** Median (average of the two middle order statistics for even n). */
double median(std::vector<double> xs);

/**
 * Linear-interpolated percentile.
 *
 * @param xs Sample (copied and sorted internally).
 * @param p  Percentile in [0, 100].
 */
double percentile(std::vector<double> xs, double p);

/**
 * Linear-interpolated percentile over a caller-provided scratch buffer.
 * Selects the two order statistics with nth_element — O(n), no copy, no
 * full sort — and leaves `xs` partially reordered.  Bit-identical to the
 * by-value overload on the same multiset.
 */
double percentileInPlace(std::vector<double>& xs, double p);

/** In-place median; `xs` is partially reordered. */
double medianInPlace(std::vector<double>& xs);

/** Coefficient of variation (stddev/mean); 0 when the mean is 0. */
double coefficientOfVariation(const std::vector<double>& xs);

}  // namespace fingrav::support

#endif  // FINGRAV_SUPPORT_STATISTICS_HPP_

#ifndef FINGRAV_SUPPORT_SIMD_HPP_
#define FINGRAV_SUPPORT_SIMD_HPP_

/**
 * @file
 * Portable SIMD shim for the data-plane kernels.
 *
 * The columnar kernels (PR 6) lean on the autovectorizer, which balks on
 * two shapes: reductions guarded by a per-point bitmap test (the filtered
 * railStats path) and data-dependent advance-while-less scans (the
 * two-pointer stitch alignment).  This header makes those explicit, in
 * two forms:
 *
 *  - FINGRAV_SIMD_LOOP — a vectorize-me hint placed before loops whose
 *    element-wise operations are IEEE-exact per lane (casts, divisions,
 *    comparisons), so vectorizing cannot change a single bit;
 *  - manual kernels — word-level bitmap skipping for filtered reductions
 *    and 4-wide branchless boundary scans, written so every element is
 *    visited in the same order as the scalar loop they replace.
 *
 * Bit-identity is the repo-wide contract: none of these kernels may
 * reassociate a floating-point sum.  The filtered reduction therefore
 * accumulates strictly in point order — the SIMD win comes from skipping
 * 64 unselected points per bitmap word and running dense words without a
 * per-point branch, not from multi-lane accumulators.
 *
 * Every kernel keeps its scalar reference implementation compiled (the
 * *Scalar functions below); tests pit the two against each other, and
 * building with -DFINGRAV_FORCE_SCALAR_SIMD=ON (CMake option, defines
 * FINGRAV_SIMD_SCALAR) routes all callers through the scalar fallbacks so
 * both paths stay built, tested and bit-identical.
 */

#include <bit>
#include <cstddef>
#include <cstdint>

#if !defined(FINGRAV_SIMD_SCALAR)
#if defined(__clang__)
#define FINGRAV_SIMD_LOOP _Pragma("clang loop vectorize(assume_safety)")
#elif defined(__GNUC__)
#define FINGRAV_SIMD_LOOP _Pragma("GCC ivdep")
#else
#define FINGRAV_SIMD_LOOP
#endif
#else
#define FINGRAV_SIMD_LOOP
#endif

namespace fingrav::support::simd {

/** True when the manual kernels and vectorize hints are active. */
#if defined(FINGRAV_SIMD_SCALAR)
inline constexpr bool kSimdEnabled = false;
#else
inline constexpr bool kSimdEnabled = true;
#endif

/** Outcome of a bitmap-filtered reduction (count, ordered sum, extrema). */
struct FilteredReduce {
    std::size_t count = 0;
    double sum = 0.0;
    double min = 0.0;  ///< 0 when count == 0
    double max = 0.0;  ///< 0 when count == 0
};

/**
 * Scalar oracle: reduce v[i] over the points whose packed bit (64 per
 * word, LSB-first) equals `want`, testing every point individually.
 * This is the pre-PR railStats filtered loop, verbatim.
 */
inline FilteredReduce
filteredReduceScalar(const double* v, const std::uint64_t* words,
                     std::size_t n, bool want)
{
    FilteredReduce r;
    double acc = 0.0;
    double mn = 0.0;
    double mx = 0.0;
    std::size_t count = 0;
    for (std::size_t i = 0; i < n; ++i) {
        const bool bit = (words[i >> 6] >> (i & 63)) & 1u;
        if (bit != want)
            continue;
        const double x = v[i];
        if (count == 0) {
            mn = x;
            mx = x;
        } else {
            // Exactly std::min(mn, x) / std::max(mx, x) — the tie
            // behaviour (and hence -0.0/+0.0 bits) of the pre-PR loop.
            mn = x < mn ? x : mn;
            mx = mx < x ? x : mx;
        }
        acc += x;
        ++count;
    }
    r.count = count;
    r.sum = acc;
    r.min = mn;
    r.max = mx;
    return r;
}

#if !defined(FINGRAV_SIMD_SCALAR)

/**
 * Word-skipping kernel: bit-identical to filteredReduceScalar (elements
 * are visited in exactly the same ascending order), but a bitmap word
 * that selects nothing skips 64 points in one test, a word that selects
 * everything runs a dense branch-free block, and mixed words iterate
 * their set bits via count-trailing-zeros.
 */
inline FilteredReduce
filteredReduce(const double* v, const std::uint64_t* words, std::size_t n,
               bool want)
{
    FilteredReduce r;
    double acc = 0.0;
    double mn = 0.0;
    double mx = 0.0;
    std::size_t count = 0;
    const std::size_t nwords = (n + 63) / 64;
    for (std::size_t w = 0; w < nwords; ++w) {
        std::uint64_t sel = want ? words[w] : ~words[w];
        const std::size_t base = w * 64;
        const std::size_t in_word = n - base < 64 ? n - base : 64;
        if (in_word < 64)
            sel &= (std::uint64_t{1} << in_word) - 1;
        if (sel == 0)
            continue;
        if (count == 0) {
            const double x0 =
                v[base + static_cast<std::size_t>(std::countr_zero(sel))];
            mn = x0;
            mx = x0;
        }
        if (sel == ~std::uint64_t{0}) {
            // Dense word: no per-point bitmap test at all.  The sum stays
            // a strict in-order accumulation (the bit-identity contract);
            // min/max chains are branchless selects.
            for (std::size_t k = 0; k < 64; ++k) {
                const double x = v[base + k];
                acc += x;
                mn = x < mn ? x : mn;
                mx = mx < x ? x : mx;
            }
            count += 64;
            continue;
        }
        // Mixed word: LSB-first bit iteration == ascending point order.
        while (sel != 0) {
            const auto k = static_cast<std::size_t>(std::countr_zero(sel));
            const double x = v[base + k];
            acc += x;
            mn = x < mn ? x : mn;
            mx = mx < x ? x : mx;
            ++count;
            sel &= sel - 1;
        }
    }
    r.count = count;
    r.sum = acc;
    r.min = mn;
    r.max = mx;
    return r;
}

#else

inline FilteredReduce
filteredReduce(const double* v, const std::uint64_t* words, std::size_t n,
               bool want)
{
    return filteredReduceScalar(v, words, n, want);
}

#endif  // FINGRAV_SIMD_SCALAR

/**
 * Scalar oracle: first index i in [from, n) with v[i] >= bound.
 * `v` must ascend (the stitcher's translated sample times).
 */
inline std::size_t
scanGeScalar(const std::int64_t* v, std::size_t from, std::size_t n,
             std::int64_t bound)
{
    std::size_t i = from;
    while (i < n && v[i] < bound)
        ++i;
    return i;
}

/** Scalar oracle: first index i in [from, n) with v[i] > bound. */
inline std::size_t
scanGtScalar(const std::int64_t* v, std::size_t from, std::size_t n,
             std::int64_t bound)
{
    std::size_t i = from;
    while (i < n && v[i] <= bound)
        ++i;
    return i;
}

#if !defined(FINGRAV_SIMD_SCALAR)

/**
 * 4-wide advance-while-less: because v ascends, the four comparisons in a
 * block are monotone (ones then zeros), so their branchless sum *is* the
 * offset of the first element >= bound within the block.
 */
inline std::size_t
scanGe(const std::int64_t* v, std::size_t from, std::size_t n,
       std::int64_t bound)
{
    std::size_t i = from;
    for (; i + 4 <= n; i += 4) {
        const std::size_t c = static_cast<std::size_t>(v[i] < bound) +
                              static_cast<std::size_t>(v[i + 1] < bound) +
                              static_cast<std::size_t>(v[i + 2] < bound) +
                              static_cast<std::size_t>(v[i + 3] < bound);
        if (c < 4)
            return i + c;
    }
    while (i < n && v[i] < bound)
        ++i;
    return i;
}

/** 4-wide variant of scanGtScalar (first index with v[i] > bound). */
inline std::size_t
scanGt(const std::int64_t* v, std::size_t from, std::size_t n,
       std::int64_t bound)
{
    std::size_t i = from;
    for (; i + 4 <= n; i += 4) {
        const std::size_t c = static_cast<std::size_t>(v[i] <= bound) +
                              static_cast<std::size_t>(v[i + 1] <= bound) +
                              static_cast<std::size_t>(v[i + 2] <= bound) +
                              static_cast<std::size_t>(v[i + 3] <= bound);
        if (c < 4)
            return i + c;
    }
    while (i < n && v[i] <= bound)
        ++i;
    return i;
}

#else

inline std::size_t
scanGe(const std::int64_t* v, std::size_t from, std::size_t n,
       std::int64_t bound)
{
    return scanGeScalar(v, from, n, bound);
}

inline std::size_t
scanGt(const std::int64_t* v, std::size_t from, std::size_t n,
       std::int64_t bound)
{
    return scanGtScalar(v, from, n, bound);
}

#endif  // FINGRAV_SIMD_SCALAR

}  // namespace fingrav::support::simd

#endif  // FINGRAV_SUPPORT_SIMD_HPP_

#ifndef FINGRAV_SUPPORT_HISTOGRAM_HPP_
#define FINGRAV_SUPPORT_HISTOGRAM_HPP_

/**
 * @file
 * Histogram utilities.
 *
 * Two tools live here.  Histogram is a plain fixed-width bucket counter used
 * for reporting.  modalCluster() implements the sliding-window mode
 * estimator that execution-time binning (FinGraV tenet S3) is built on:
 * given a sample and a *relative* window width, find the window position
 * that captures the most observations "within binning margin of each other"
 * (paper Section IV-B step 6).
 */

#include <cstddef>
#include <string>
#include <vector>

namespace fingrav::support {

/** Fixed-width bucket histogram over [lo, hi). */
class Histogram {
  public:
    /**
     * @param lo       Lower edge of the first bucket.
     * @param hi       Upper edge of the last bucket; must exceed lo.
     * @param buckets  Number of buckets; must be >= 1.
     */
    Histogram(double lo, double hi, std::size_t buckets);

    /** Count one observation (out-of-range values clamp to the end buckets). */
    void add(double x);

    /**
     * Count a whole column of observations (same clamping) in one tight
     * loop — the bucket math hoists the invariant lo/width loads, so a
     * profile column (e.g. toi_frac) streams straight into the counters.
     */
    void addColumn(const std::vector<double>& xs);

    /** Number of buckets. */
    std::size_t bucketCount() const { return counts_.size(); }
    /** Count in bucket i. */
    std::size_t count(std::size_t i) const { return counts_.at(i); }
    /** Total observations. */
    std::size_t total() const { return total_; }
    /** Centre of bucket i. */
    double bucketCenter(std::size_t i) const;
    /** Index of the bucket with the most observations (lowest on ties). */
    std::size_t modeBucket() const;

    /** Render a small ASCII bar chart (for bench/example output). */
    std::string render(std::size_t max_width = 50) const;

  private:
    double lo_;
    double width_;
    std::vector<std::size_t> counts_;
    std::size_t total_ = 0;
};

/** Result of modalCluster: the densest relative-width window of a sample. */
struct ModalCluster {
    double center = 0.0;               ///< representative value (window midpoint)
    std::vector<std::size_t> indices;  ///< indices of samples inside the window
};

/**
 * Find the densest cluster of values that lie within +/- margin of a common
 * centre.
 *
 * A value x belongs to a window centred at c when |x - c| <= margin * c.
 * The returned cluster maximizes membership; ties break toward the smaller
 * centre (shorter execution time — the common case in the paper, as
 * outliers are slower).
 *
 * @param values  Sample; must be non-negative values (execution times).
 * @param margin  Relative margin, e.g. 0.05 for the paper's 5 %.
 */
ModalCluster modalCluster(const std::vector<double>& values, double margin);

}  // namespace fingrav::support

#endif  // FINGRAV_SUPPORT_HISTOGRAM_HPP_

#ifndef FINGRAV_SUPPORT_FAULT_INJECTOR_HPP_
#define FINGRAV_SUPPORT_FAULT_INJECTOR_HPP_

/**
 * @file
 * Deterministic, scripted fault injection for the supervised execution
 * path.
 *
 * Before this existed every fault test wired its own one-off hack: a
 * `spawn_hook` on ShardOptions to SIGKILL workers, `/bin/sh -c` stand-in
 * worker commands that printf garbage or sleep forever, hand-rolled blob
 * mutation against the cache store.  Those hacks exercised real failure
 * paths but could not compose, could not run end-to-end through the CLI,
 * and left the production binary with test-only seams.
 *
 * A FaultPlan is a small script of FaultActions, each naming an
 * injection *site* baked into the production code:
 *
 *   spawn-fail   driver: pretend fork/exec of a worker failed
 *   kill         worker: _exit(137) instead of writing result frame N
 *   truncate     worker: write half of result frame N, then _exit(1)
 *   corrupt      worker: flip a payload byte of result frame N, continue
 *   stall        worker: sleep `ms` before writing result frame N
 *   store-short  cache: store() writes a short temp blob and reports
 *                failure (ENOSPC-style)
 *
 * Text grammar (CLI `--fault-plan`, also the wire format handed to
 * worker subprocesses):
 *
 *   plan    := action (';' action)*
 *   action  := name [':' key '=' value (',' key '=' value)*]
 *   name    := spawn-fail | kill | truncate | corrupt | stall
 *            | store-short
 *   key     := shard | frame | attempt | ms | times
 *   value   := non-negative integer | '*'            ('*' = match any)
 *
 * Examples:
 *   kill:shard=0,frame=1          worker on shard 0, first attempt,
 *                                 dies after delivering one result
 *   kill:shard=0,attempt=*        every worker ever launched for shard 0
 *                                 dies before its first result (drives
 *                                 a spec into quarantine)
 *   spawn-fail:times=3            the next three spawns fail (drives
 *                                 crash-loop detection)
 *   stall:frame=0,ms=2000         worker sleeps 2 s before its first
 *                                 result (trips the io timeout)
 *
 * Faults fire deterministically: an action matches on exact
 * (shard, attempt, frame) coordinates — never on timing or randomness —
 * and fires at most `times` times, so the same plan against the same
 * campaign produces the same failure schedule, the same retry schedule,
 * and the same journal on every run.
 *
 * The worker side is a separate process, so its injector state restarts
 * fresh on every (re)spawn.  The driver therefore re-derives each
 * worker's sub-plan per launch: FaultInjector::workerPlan(shard,
 * attempt) serializes the worker-site actions matching that launch with
 * the shard/attempt coordinates stripped, and the driver appends
 * `--fault-plan <subplan>` to that worker's argv.  Retried workers get a
 * clean (usually empty) plan by default; repeat-kill plans say
 * `attempt=*`.
 */

#include <cstddef>
#include <cstdint>
#include <mutex>
#include <optional>
#include <string>
#include <vector>

namespace fingrav::support {

/** Injection sites (see file comment for per-site semantics). */
enum class FaultKind : std::uint8_t {
    kSpawnFail = 0,   ///< driver-side: worker spawn fails
    kKillWorker,      ///< worker-side: _exit before result frame N
    kTruncateFrame,   ///< worker-side: half of frame N, then _exit
    kCorruptFrame,    ///< worker-side: flip a byte of frame N
    kStallPipe,       ///< worker-side: sleep before frame N
    kShortStoreWrite, ///< cache-side: store() write fails short
};

/** Printable site name, matching the plan grammar. */
const char* toString(FaultKind kind);

/** One scripted fault. */
struct FaultAction {
    /** Wildcard for shard / attempt / frame coordinates. */
    static constexpr long kAny = -1;

    FaultKind kind = FaultKind::kKillWorker;
    long shard = kAny;    ///< which shard's worker (driver coordinates)
    long attempt = 0;     ///< which (re)launch; retries get fresh workers
    long frame = 0;       ///< which result frame (worker coordinates)
    long stall_ms = 2000; ///< kStallPipe only: sleep duration
    long times = 1;       ///< fire at most this many times (0 = never)
};

/** An ordered script of FaultActions. */
struct FaultPlan {
    std::vector<FaultAction> actions;

    bool empty() const { return actions.empty(); }

    /** Parse the `--fault-plan` grammar; fatal() on malformed input. */
    static FaultPlan parse(const std::string& text);

    /** Round-trippable serialization in the same grammar. */
    std::string toString() const;
};

/** What a worker-side frame site should do to the pending frame. */
struct FrameFault {
    FaultKind kind = FaultKind::kKillWorker;
    long stall_ms = 0;  ///< kStallPipe only
};

/**
 * Stateful evaluator of a FaultPlan.  Each site consults the injector
 * at its fire point; matching actions fire at most `times` times.
 * Thread-safe (the cache store site is hit concurrently).
 */
class FaultInjector {
  public:
    FaultInjector() = default;
    explicit FaultInjector(FaultPlan plan);

    /** Whether any action is scripted at all (fast no-op check). */
    bool armed() const { return !plan_.actions.empty(); }

    /** Driver site: should the spawn for (shard, attempt) fail? */
    bool onSpawn(std::size_t shard, std::size_t attempt);

    /**
     * Driver side: serialize the worker-site actions matching
     * (shard, attempt) into a standalone plan for that worker process,
     * with shard/attempt stripped and attempt-consumed counts ignored
     * (the worker's own injector tracks its fire counts).  Empty string
     * when no worker-site action matches.
     */
    std::string workerPlan(std::size_t shard, std::size_t attempt) const;

    /** Worker site: fault to apply to result frame `frame`, if any. */
    std::optional<FrameFault> onResultFrame(std::size_t frame);

    /** Cache site: should this store() write fail short? */
    bool onStoreWrite();

  private:
    FaultPlan plan_;
    std::vector<long> fired_;  ///< per-action fire counts
    mutable std::mutex mu_;
};

}  // namespace fingrav::support

#endif  // FINGRAV_SUPPORT_FAULT_INJECTOR_HPP_

#ifndef FINGRAV_SUPPORT_RUN_JOURNAL_HPP_
#define FINGRAV_SUPPORT_RUN_JOURNAL_HPP_

/**
 * @file
 * Structured degradation journal: no degradation is ever silent.
 *
 * The repo's failure philosophy (tests/failure_injection_test.cpp) is
 * "degrade gracefully (and loudly), never crash or silently fabricate
 * data".  The *gracefully* half has always been enforced by bit-identity
 * gates — a dead worker's slots re-execute in-process and the results
 * cannot diverge.  The *loudly* half used to be a scatter of warn()
 * lines and counters; RunJournal makes it a first-class artifact: every
 * component that degrades (shard supervisor, worker protocol, campaign
 * cache) records a typed DegradeEvent, the events fold into ShardStats,
 * and fingrav_cli prints the journal after every supervised run.
 *
 * The taxonomy is deliberately small and closed — a new failure mode
 * must pick a kind (or add one here), so it cannot slip through as an
 * untyped warning:
 *
 *   spawn-failure         a worker process could not be started
 *   worker-death          a worker died/EOF'd with slots outstanding
 *   frame-corruption      a worker's result stream failed validation
 *   timeout               inactivity or per-spec deadline budget tripped
 *   cache-corruption-miss a cache blob was rejected and re-executed
 *   cache-store-failure   a cache store write failed (ENOSPC-style)
 *   retry                 forfeited slots redispatched to fresh workers
 *   quarantine            a poisoned spec forced onto the in-process path
 *   fallback              slots executed in-process after supervision
 *                         gave up on the wire path
 *   crash-loop            consecutive spawn failures disabled sharding
 *
 * Thread safety: record()/merge() and all readers are safe to call
 * concurrently.  The journal is copyable (a locked snapshot), so it can
 * ride inside value types such as core::ShardStats.
 */

#include <cstddef>
#include <cstdint>
#include <mutex>
#include <string>
#include <utility>
#include <vector>

#include "support/logging.hpp"

namespace fingrav::support {

/** The closed error taxonomy of the supervision layer (file comment). */
enum class DegradeKind : std::uint8_t {
    kSpawnFailure = 0,
    kWorkerDeath,
    kFrameCorruption,
    kTimeout,
    kCacheCorruptionMiss,
    kCacheStoreFailure,
    kRetry,
    kQuarantine,
    kFallback,
    kCrashLoop,
};

/** Printable kind name ("worker-death", "cache-corruption-miss", ...). */
const char* toString(DegradeKind kind);

/** One recorded degradation. */
struct DegradeEvent {
    DegradeKind kind = DegradeKind::kFallback;
    std::string detail;  ///< human-readable context (shard, slot, cause)
};

/** Append-only, thread-safe, copyable list of degradation events. */
class RunJournal {
  public:
    RunJournal() = default;
    RunJournal(const RunJournal& other) : events_(other.events()) {}
    RunJournal&
    operator=(const RunJournal& other)
    {
        if (this != &other) {
            auto snapshot = other.events();
            std::lock_guard<std::mutex> lock(mu_);
            events_ = std::move(snapshot);
        }
        return *this;
    }

    /** Append one event (thread-safe). */
    void record(DegradeKind kind, std::string detail);

    /** Streamed-detail convenience: record(kind, "shard ", s, " died"). */
    template <typename First, typename... Rest>
    void
    record(DegradeKind kind, First&& first, Rest&&... rest)
    {
        record(kind, detail::concat(std::forward<First>(first),
                                    std::forward<Rest>(rest)...));
    }

    /** Snapshot of every event, in record order. */
    std::vector<DegradeEvent> events() const;

    /** Events recorded after the first `from` (incremental folding). */
    std::vector<DegradeEvent> eventsSince(std::size_t from) const;

    /** Append a snapshot of another journal's events. */
    void merge(const RunJournal& other);

    std::size_t size() const;
    bool empty() const { return size() == 0; }

    /** How many events carry `kind`. */
    std::size_t count(DegradeKind kind) const;

    /** Multi-line printable report, one "[kind] detail" line per event;
     *  empty string for an empty journal. */
    std::string report() const;

  private:
    mutable std::mutex mu_;
    std::vector<DegradeEvent> events_;
};

}  // namespace fingrav::support

#endif  // FINGRAV_SUPPORT_RUN_JOURNAL_HPP_

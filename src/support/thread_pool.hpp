#ifndef FINGRAV_SUPPORT_THREAD_POOL_HPP_
#define FINGRAV_SUPPORT_THREAD_POOL_HPP_

/**
 * @file
 * Minimal persistent thread pool for data-parallel loops.
 *
 * Built for Simulation::advanceAllTo's parallel node stepping: between
 * fabric epochs every device advances independently, so the per-epoch work
 * is a parallelFor over devices.  Epochs are frequent (every collective
 * start/completion), which rules out spawning threads per call — workers
 * are created once and woken per job with a generation-counted barrier.
 *
 * Work items are claimed through a shared atomic counter, so the
 * *assignment* of items to threads is non-deterministic — callers must
 * only submit items that are independent and deterministic in isolation
 * (true for device advancement: each device touches only its own state
 * plus read-only shared state).  Exceptions thrown by items are captured
 * and the first one is rethrown on the calling thread after the barrier.
 *
 * roundLoop() extends the same contract to leader-coordinated epoch
 * loops: one dispatch runs an arbitrary number of rounds, with a serial
 * leader section between rounds, so per-epoch work no longer pays the
 * full job submission/wake handshake (the PR-2 follow-up: batch fabric
 * epochs per dispatch).
 */

#include <atomic>
#include <condition_variable>
#include <cstddef>
#include <exception>
#include <functional>
#include <mutex>
#include <thread>
#include <vector>

namespace fingrav::support {

/** Persistent worker pool running parallelFor jobs; caller participates. */
class ThreadPool {
  public:
    /**
     * @param threads  Total concurrency including the calling thread;
     *                 `threads - 1` workers are spawned (0 and 1 mean
     *                 "no workers": parallelFor degenerates to a loop).
     */
    explicit ThreadPool(std::size_t threads);

    ThreadPool(const ThreadPool&) = delete;
    ThreadPool& operator=(const ThreadPool&) = delete;

    ~ThreadPool();

    /** Total concurrency (workers + the calling thread). */
    std::size_t threads() const { return workers_.size() + 1; }

    /**
     * Run `fn(i)` for every i in [0, n), distributed over the pool.
     * Blocks until all items complete; rethrows the first item exception.
     */
    void parallelFor(std::size_t n,
                     const std::function<void(std::size_t)>& fn);

    /**
     * Leader-coordinated round loop in a single pool dispatch.
     *
     * Repeats rounds until the leader ends the loop: `leader()` runs
     * exclusively on one thread (with all items of the previous round
     * complete and visible) and returns the item count of the next round
     * — 0 ends the loop; then `fn(i)` runs for i in [0, count) distributed
     * over the pool.  Equivalent to `while ((n = leader())) parallelFor(n,
     * fn)` but workers stay engaged across rounds instead of being woken
     * and collected per round, which is what makes fine-grained fabric
     * epochs affordable (sim::Simulation::advanceAllTo).
     *
     * Blocks until the loop ends; rethrows the first exception thrown by
     * `leader` or `fn` (remaining rounds are abandoned).
     */
    void roundLoop(const std::function<std::size_t()>& leader,
                   const std::function<void(std::size_t)>& fn);

  private:
    void workerMain();

    /** Claim and run items until the current job is exhausted. */
    void drainJob();

    std::vector<std::thread> workers_;

    std::mutex mu_;
    std::condition_variable cv_start_;
    std::condition_variable cv_done_;
    bool stop_ = false;
    std::uint64_t generation_ = 0;  ///< bumped per job; wakes workers
    std::size_t workers_done_ = 0;

    const std::function<void(std::size_t)>* job_ = nullptr;
    std::size_t job_size_ = 0;
    std::atomic<std::size_t> next_item_{0};

    std::mutex error_mu_;
    std::exception_ptr first_error_;
};

}  // namespace fingrav::support

#endif  // FINGRAV_SUPPORT_THREAD_POOL_HPP_

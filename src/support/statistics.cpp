#include "support/statistics.hpp"

#include <algorithm>
#include <cmath>
#include <numeric>

#include "support/logging.hpp"

namespace fingrav::support {

void
RunningStats::add(double x)
{
    ++n_;
    sum_ += x;
    if (n_ == 1) {
        mean_ = x;
        min_ = x;
        max_ = x;
        m2_ = 0.0;
        return;
    }
    const double delta = x - mean_;
    mean_ += delta / static_cast<double>(n_);
    m2_ += delta * (x - mean_);
    min_ = std::min(min_, x);
    max_ = std::max(max_, x);
}

double
RunningStats::variance() const
{
    if (n_ < 2)
        return 0.0;
    return m2_ / static_cast<double>(n_ - 1);
}

double
RunningStats::stddev() const
{
    return std::sqrt(variance());
}

double
mean(const std::vector<double>& xs)
{
    if (xs.empty())
        return 0.0;
    return std::accumulate(xs.begin(), xs.end(), 0.0) /
           static_cast<double>(xs.size());
}

double
stddev(const std::vector<double>& xs)
{
    if (xs.size() < 2)
        return 0.0;
    const double m = mean(xs);
    double acc = 0.0;
    for (double x : xs)
        acc += (x - m) * (x - m);
    return std::sqrt(acc / static_cast<double>(xs.size() - 1));
}

double
median(std::vector<double> xs)
{
    return percentile(std::move(xs), 50.0);
}

double
percentile(std::vector<double> xs, double p)
{
    FINGRAV_ASSERT(p >= 0.0 && p <= 100.0, "percentile p=", p);
    if (xs.empty())
        return 0.0;
    std::sort(xs.begin(), xs.end());
    if (xs.size() == 1)
        return xs.front();
    const double rank = p / 100.0 * static_cast<double>(xs.size() - 1);
    const auto lo = static_cast<std::size_t>(rank);
    const auto hi = std::min(lo + 1, xs.size() - 1);
    const double frac = rank - static_cast<double>(lo);
    return xs[lo] * (1.0 - frac) + xs[hi] * frac;
}

double
coefficientOfVariation(const std::vector<double>& xs)
{
    const double m = mean(xs);
    if (m == 0.0)
        return 0.0;
    return stddev(xs) / m;
}

}  // namespace fingrav::support

#include "support/statistics.hpp"

#include <algorithm>
#include <cmath>
#include <numeric>
#include <utility>

#include "support/logging.hpp"

namespace fingrav::support {

void
RunningStats::add(double x)
{
    // No first-observation branch: mean_ starts at 0 so the first delta
    // is x itself, mean_ becomes x/1 and m2_ gains x·(x − x) = ±0 which
    // +0 absorbs — the same state the former `if (n_ == 1)` arm set.
    ++n_;
    sum_ += x;
    const double delta = x - mean_;
    mean_ += delta / static_cast<double>(n_);
    m2_ += delta * (x - mean_);
    min_ = std::min(min_, x);
    max_ = std::max(max_, x);
}

double
RunningStats::variance() const
{
    if (n_ < 2)
        return 0.0;
    return m2_ / static_cast<double>(n_ - 1);
}

double
RunningStats::stddev() const
{
    return std::sqrt(variance());
}

double
Moments::variance() const
{
    if (count < 2)
        return 0.0;
    return m2 / static_cast<double>(count - 1);
}

double
Moments::stddev() const
{
    return std::sqrt(variance());
}

Moments
moments(const std::vector<double>& xs)
{
    Moments m;
    m.count = xs.size();
    if (xs.empty())
        return m;
    m.mean = std::accumulate(xs.begin(), xs.end(), 0.0) /
             static_cast<double>(xs.size());
    double acc = 0.0;
    for (const double x : xs)
        acc += (x - m.mean) * (x - m.mean);
    m.m2 = acc;
    return m;
}

double
mean(const std::vector<double>& xs)
{
    return moments(xs).mean;
}

double
stddev(const std::vector<double>& xs)
{
    if (xs.size() < 2)
        return 0.0;
    return moments(xs).stddev();
}

double
median(std::vector<double> xs)
{
    return percentileInPlace(xs, 50.0);
}

double
percentile(std::vector<double> xs, double p)
{
    return percentileInPlace(xs, p);
}

double
percentileInPlace(std::vector<double>& xs, double p)
{
    FINGRAV_ASSERT(p >= 0.0 && p <= 100.0, "percentile p=", p);
    if (xs.empty())
        return 0.0;
    if (xs.size() == 1)
        return xs.front();
    const double rank = p / 100.0 * static_cast<double>(xs.size() - 1);
    const auto lo = static_cast<std::size_t>(rank);
    const auto hi = std::min(lo + 1, xs.size() - 1);
    const double frac = rank - static_cast<double>(lo);
    // Select the lo-th order statistic; the (lo+1)-th is then the minimum
    // of the upper partition.  Order statistics are properties of the
    // multiset, so the interpolation reads the same two values the former
    // full sort produced.
    std::nth_element(xs.begin(),
                     xs.begin() + static_cast<std::ptrdiff_t>(lo),
                     xs.end());
    const double lo_val = xs[lo];
    const double hi_val =
        hi == lo ? lo_val
                 : *std::min_element(
                       xs.begin() + static_cast<std::ptrdiff_t>(lo) + 1,
                       xs.end());
    return lo_val * (1.0 - frac) + hi_val * frac;
}

double
medianInPlace(std::vector<double>& xs)
{
    return percentileInPlace(xs, 50.0);
}

double
coefficientOfVariation(const std::vector<double>& xs)
{
    // One moments pass serves both the mean and the deviation — the mean
    // is no longer computed twice (once here, once inside stddev).
    const Moments m = moments(xs);
    if (m.mean == 0.0)
        return 0.0;
    if (m.count < 2)
        return 0.0;
    return m.stddev() / m.mean;
}

}  // namespace fingrav::support

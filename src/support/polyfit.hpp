#ifndef FINGRAV_SUPPORT_POLYFIT_HPP_
#define FINGRAV_SUPPORT_POLYFIT_HPP_

/**
 * @file
 * Polynomial least-squares regression.
 *
 * The paper overlays degree-4 linear-regression trend lines on its power
 * profiles ("we do a linear regression of degree four over the power data",
 * Section V-B) and on the component-comparison figure (Fig. 7).  This module
 * provides exactly that: fit a polynomial of small degree by solving the
 * normal equations with partial-pivot Gaussian elimination in long double.
 *
 * Inputs are shifted/scaled to [-1, 1] internally before forming the normal
 * equations, which keeps them well-conditioned for the degrees (<= 6) used
 * here.
 */

#include <cstddef>
#include <vector>

namespace fingrav::support {

/** A fitted polynomial y = sum_i coeff[i] * x^i over the original x scale. */
class Polynomial {
  public:
    Polynomial() = default;

    /**
     * Construct from coefficients in a normalized domain.
     *
     * @param coeffs  Coefficients c_i of sum c_i * u^i where
     *                u = (x - shift) * scale.
     * @param shift   Centre of the original x range.
     * @param scale   1 / half-width of the original x range.
     */
    Polynomial(std::vector<double> coeffs, double shift, double scale)
        : coeffs_(std::move(coeffs)), shift_(shift), scale_(scale)
    {
    }

    /** Evaluate at x (original scale). */
    double operator()(double x) const;

    /** Polynomial degree (0 when empty). */
    std::size_t degree() const { return coeffs_.empty() ? 0 : coeffs_.size() - 1; }

    /** True when a fit has been stored. */
    bool valid() const { return !coeffs_.empty(); }

  private:
    std::vector<double> coeffs_;
    double shift_ = 0.0;
    double scale_ = 1.0;
};

/** Result of fitPolynomial: the polynomial plus goodness-of-fit. */
struct PolyFitResult {
    Polynomial poly;       ///< the fitted polynomial
    double r_squared = 0;  ///< coefficient of determination
    double rmse = 0;       ///< root-mean-square residual
};

/**
 * Fit y ~ poly(x) of the given degree by least squares.
 *
 * Degenerate inputs degrade gracefully: with fewer points than
 * coefficients the degree is clamped; with zero x-spread a constant fit
 * (the mean) is returned.
 *
 * @param xs      Sample abscissae.
 * @param ys      Sample ordinates (same length as xs; fatal otherwise).
 * @param degree  Requested degree (paper uses 4); must be <= 8.
 */
PolyFitResult fitPolynomial(const std::vector<double>& xs,
                            const std::vector<double>& ys,
                            std::size_t degree);

}  // namespace fingrav::support

#endif  // FINGRAV_SUPPORT_POLYFIT_HPP_

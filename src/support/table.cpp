#include "support/table.hpp"

#include <algorithm>
#include <fstream>
#include <iomanip>
#include <sstream>

#include "support/logging.hpp"

namespace fingrav::support {

TableWriter::TableWriter(std::vector<std::string> headers)
    : headers_(std::move(headers))
{
    if (headers_.empty())
        fatal("TableWriter: need at least one column");
}

void
TableWriter::addRow(std::vector<std::string> row)
{
    if (row.size() != headers_.size())
        fatal("TableWriter: row has ", row.size(), " cells, expected ",
              headers_.size());
    rows_.push_back(std::move(row));
}

std::string
TableWriter::num(double v, int precision)
{
    std::ostringstream oss;
    oss << std::fixed << std::setprecision(precision) << v;
    return oss.str();
}

void
TableWriter::print(std::ostream& os) const
{
    std::vector<std::size_t> widths(headers_.size());
    for (std::size_t c = 0; c < headers_.size(); ++c)
        widths[c] = headers_[c].size();
    for (const auto& row : rows_) {
        for (std::size_t c = 0; c < row.size(); ++c)
            widths[c] = std::max(widths[c], row[c].size());
    }

    auto emit_row = [&](const std::vector<std::string>& row) {
        for (std::size_t c = 0; c < row.size(); ++c) {
            os << std::left << std::setw(static_cast<int>(widths[c]) + 2)
               << row[c];
        }
        os << "\n";
    };

    emit_row(headers_);
    std::size_t total = 0;
    for (std::size_t w : widths)
        total += w + 2;
    os << std::string(total, '-') << "\n";
    for (const auto& row : rows_)
        emit_row(row);
}

CsvWriter::CsvWriter(std::vector<std::string> headers)
    : columns_(headers.size())
{
    if (columns_ == 0)
        fatal("CsvWriter: need at least one column");
    std::ostringstream oss;
    for (std::size_t i = 0; i < headers.size(); ++i)
        oss << (i ? "," : "") << headers[i];
    lines_.push_back(oss.str());
}

void
CsvWriter::addRow(std::vector<std::string> row)
{
    if (row.size() != columns_)
        fatal("CsvWriter: row has ", row.size(), " cells, expected ",
              columns_);
    std::ostringstream oss;
    for (std::size_t i = 0; i < row.size(); ++i)
        oss << (i ? "," : "") << row[i];
    lines_.push_back(oss.str());
}

void
CsvWriter::addNumericRow(const std::vector<double>& row, int precision)
{
    std::vector<std::string> cells;
    cells.reserve(row.size());
    for (double v : row) {
        std::ostringstream oss;
        oss << std::setprecision(precision) << v;
        cells.push_back(oss.str());
    }
    addRow(std::move(cells));
}

void
CsvWriter::print(std::ostream& os) const
{
    for (const auto& line : lines_)
        os << line << "\n";
}

bool
CsvWriter::writeFile(const std::string& path) const
{
    std::ofstream out(path);
    if (!out) {
        warn("CsvWriter: cannot open ", path, " for writing");
        return false;
    }
    print(out);
    return static_cast<bool>(out);
}

}  // namespace fingrav::support

#include "support/run_journal.hpp"

#include <sstream>
#include <utility>

namespace fingrav::support {

const char*
toString(DegradeKind kind)
{
    switch (kind) {
      case DegradeKind::kSpawnFailure:
        return "spawn-failure";
      case DegradeKind::kWorkerDeath:
        return "worker-death";
      case DegradeKind::kFrameCorruption:
        return "frame-corruption";
      case DegradeKind::kTimeout:
        return "timeout";
      case DegradeKind::kCacheCorruptionMiss:
        return "cache-corruption-miss";
      case DegradeKind::kCacheStoreFailure:
        return "cache-store-failure";
      case DegradeKind::kRetry:
        return "retry";
      case DegradeKind::kQuarantine:
        return "quarantine";
      case DegradeKind::kFallback:
        return "fallback";
      case DegradeKind::kCrashLoop:
        return "crash-loop";
    }
    return "unknown";
}

void
RunJournal::record(DegradeKind kind, std::string detail)
{
    std::lock_guard<std::mutex> lock(mu_);
    events_.push_back(DegradeEvent{kind, std::move(detail)});
}

std::vector<DegradeEvent>
RunJournal::events() const
{
    std::lock_guard<std::mutex> lock(mu_);
    return events_;
}

std::vector<DegradeEvent>
RunJournal::eventsSince(std::size_t from) const
{
    std::lock_guard<std::mutex> lock(mu_);
    if (from >= events_.size())
        return {};
    return std::vector<DegradeEvent>(events_.begin() +
                                         static_cast<std::ptrdiff_t>(from),
                                     events_.end());
}

void
RunJournal::merge(const RunJournal& other)
{
    auto snapshot = other.events();
    std::lock_guard<std::mutex> lock(mu_);
    for (auto& event : snapshot)
        events_.push_back(std::move(event));
}

std::size_t
RunJournal::size() const
{
    std::lock_guard<std::mutex> lock(mu_);
    return events_.size();
}

std::size_t
RunJournal::count(DegradeKind kind) const
{
    std::lock_guard<std::mutex> lock(mu_);
    std::size_t n = 0;
    for (const auto& event : events_) {
        if (event.kind == kind)
            ++n;
    }
    return n;
}

std::string
RunJournal::report() const
{
    const auto snapshot = events();
    std::ostringstream oss;
    for (const auto& event : snapshot)
        oss << "  [" << toString(event.kind) << "] " << event.detail << "\n";
    return oss.str();
}

}  // namespace fingrav::support

#ifndef FINGRAV_SUPPORT_RNG_HPP_
#define FINGRAV_SUPPORT_RNG_HPP_

/**
 * @file
 * Deterministic random number generation.
 *
 * Every stochastic element of the simulator (execution-time jitter,
 * allocation outliers, clock-read noise, random inter-run delays) draws from
 * an explicitly seeded Rng.  There is no global generator and no wall-clock
 * seeding, so every experiment, test and benchmark is bit-reproducible.
 *
 * fork() derives an independent child stream from a parent; components each
 * get their own fork so adding a consumer never perturbs another component's
 * sequence.
 */

#include <cmath>
#include <cstdint>
#include <random>

namespace fingrav::support {

/** Seeded pseudo-random source wrapping std::mt19937_64. */
class Rng {
  public:
    /** Construct with an explicit seed. */
    explicit Rng(std::uint64_t seed) : engine_(seed), seed_(seed) {}

    /** The seed this stream was constructed with. */
    std::uint64_t seed() const { return seed_; }

    /**
     * Derive an independent child stream.
     *
     * @param stream_id Distinguishes sibling forks of the same parent.
     */
    Rng
    fork(std::uint64_t stream_id)
    {
        // splitmix64-style mixing of (seed, stream_id) for decorrelation.
        std::uint64_t z = seed_ + 0x9e3779b97f4a7c15ULL * (stream_id + 1);
        z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9ULL;
        z = (z ^ (z >> 27)) * 0x94d049bb133111ebULL;
        return Rng(z ^ (z >> 31));
    }

    /** Uniform double in [lo, hi). */
    double
    uniform(double lo, double hi)
    {
        return std::uniform_real_distribution<double>(lo, hi)(engine_);
    }

    /** Uniform integer in [lo, hi] inclusive. */
    std::int64_t
    uniformInt(std::int64_t lo, std::int64_t hi)
    {
        return std::uniform_int_distribution<std::int64_t>(lo, hi)(engine_);
    }

    /** Normal deviate. */
    double
    normal(double mean, double stddev)
    {
        return std::normal_distribution<double>(mean, stddev)(engine_);
    }

    /**
     * Multiplicative jitter centred on 1.0: exp(N(0, sigma)).
     *
     * Models relative execution-time noise; always positive.
     */
    double
    lognormalJitter(double sigma)
    {
        return std::exp(normal(0.0, sigma));
    }

    /** True with probability p. */
    bool
    bernoulli(double p)
    {
        return std::bernoulli_distribution(p)(engine_);
    }

  private:
    std::mt19937_64 engine_;
    std::uint64_t seed_;
};

}  // namespace fingrav::support

#endif  // FINGRAV_SUPPORT_RNG_HPP_

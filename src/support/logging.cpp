#include "support/logging.hpp"

#include <iostream>

namespace fingrav::support {

namespace {

LogLevel g_level = LogLevel::kWarn;

}  // namespace

void
setLogLevel(LogLevel level)
{
    g_level = level;
}

LogLevel
logLevel()
{
    return g_level;
}

namespace detail {

void
emit(const char* tag, const std::string& msg)
{
    if (tag == std::string("warn")) {
        std::cerr << tag << ": " << msg << "\n";
    } else {
        std::cout << tag << ": " << msg << "\n";
    }
}

}  // namespace detail

}  // namespace fingrav::support

#include "support/polyfit.hpp"

#include <algorithm>
#include <cmath>

#include "support/logging.hpp"
#include "support/statistics.hpp"

namespace fingrav::support {

double
Polynomial::operator()(double x) const
{
    if (coeffs_.empty())
        return 0.0;
    const double u = (x - shift_) * scale_;
    // Horner evaluation in the normalized domain.
    double acc = 0.0;
    for (auto it = coeffs_.rbegin(); it != coeffs_.rend(); ++it)
        acc = acc * u + *it;
    return acc;
}

namespace {

/**
 * Solve A x = b in-place with partial-pivot Gaussian elimination.
 *
 * A is a dense square matrix in row-major order.  Returns false when the
 * system is numerically singular.
 */
bool
solveDense(std::vector<long double>& a, std::vector<long double>& b,
           std::size_t n)
{
    for (std::size_t col = 0; col < n; ++col) {
        // Pivot selection.
        std::size_t pivot = col;
        for (std::size_t row = col + 1; row < n; ++row) {
            if (std::fabs(static_cast<double>(a[row * n + col])) >
                std::fabs(static_cast<double>(a[pivot * n + col]))) {
                pivot = row;
            }
        }
        if (a[pivot * n + col] == 0.0L)
            return false;
        if (pivot != col) {
            for (std::size_t k = 0; k < n; ++k)
                std::swap(a[pivot * n + k], a[col * n + k]);
            std::swap(b[pivot], b[col]);
        }
        // Eliminate below.
        for (std::size_t row = col + 1; row < n; ++row) {
            const long double f = a[row * n + col] / a[col * n + col];
            for (std::size_t k = col; k < n; ++k)
                a[row * n + k] -= f * a[col * n + k];
            b[row] -= f * b[col];
        }
    }
    // Back substitution.
    for (std::size_t i = n; i-- > 0;) {
        long double acc = b[i];
        for (std::size_t k = i + 1; k < n; ++k)
            acc -= a[i * n + k] * b[k];
        b[i] = acc / a[i * n + i];
    }
    return true;
}

}  // namespace

PolyFitResult
fitPolynomial(const std::vector<double>& xs, const std::vector<double>& ys,
              std::size_t degree)
{
    if (xs.size() != ys.size())
        fatal("fitPolynomial: xs (", xs.size(), ") and ys (", ys.size(),
              ") length mismatch");
    if (degree > 8)
        fatal("fitPolynomial: degree ", degree, " > 8 unsupported");

    PolyFitResult result;
    if (xs.empty())
        return result;

    // Clamp degree to the information available.
    degree = std::min(degree, xs.size() - 1);

    const auto [min_it, max_it] = std::minmax_element(xs.begin(), xs.end());
    const double lo = *min_it;
    const double hi = *max_it;
    const double shift = 0.5 * (lo + hi);
    const double half = 0.5 * (hi - lo);

    if (half == 0.0 || degree == 0) {
        // Constant fit: the mean.
        const double m = mean(ys);
        result.poly = Polynomial({m}, 0.0, 1.0);
        double ss_res = 0.0;
        for (double y : ys)
            ss_res += (y - m) * (y - m);
        result.rmse = std::sqrt(ss_res / static_cast<double>(ys.size()));
        result.r_squared = 0.0;
        return result;
    }
    const double scale = 1.0 / half;

    const std::size_t n = degree + 1;
    // Normal equations: (V^T V) c = V^T y with Vandermonde V over u.
    std::vector<long double> ata(n * n, 0.0L);
    std::vector<long double> atb(n, 0.0L);
    std::vector<long double> powers(2 * degree + 1);
    for (std::size_t i = 0; i < xs.size(); ++i) {
        const long double u = (xs[i] - shift) * scale;
        powers[0] = 1.0L;
        for (std::size_t k = 1; k < powers.size(); ++k)
            powers[k] = powers[k - 1] * u;
        for (std::size_t r = 0; r < n; ++r) {
            for (std::size_t c = 0; c < n; ++c)
                ata[r * n + c] += powers[r + c];
            atb[r] += powers[r] * static_cast<long double>(ys[i]);
        }
    }

    if (!solveDense(ata, atb, n)) {
        // Singular system: fall back to the constant fit.
        return fitPolynomial(xs, ys, 0);
    }

    std::vector<double> coeffs(n);
    for (std::size_t i = 0; i < n; ++i)
        coeffs[i] = static_cast<double>(atb[i]);
    result.poly = Polynomial(std::move(coeffs), shift, scale);

    const double y_mean = mean(ys);
    double ss_res = 0.0;
    double ss_tot = 0.0;
    for (std::size_t i = 0; i < xs.size(); ++i) {
        const double r = ys[i] - result.poly(xs[i]);
        ss_res += r * r;
        ss_tot += (ys[i] - y_mean) * (ys[i] - y_mean);
    }
    result.rmse = std::sqrt(ss_res / static_cast<double>(xs.size()));
    result.r_squared = ss_tot > 0.0 ? 1.0 - ss_res / ss_tot : 1.0;
    return result;
}

}  // namespace fingrav::support

#include "support/histogram.hpp"

#include <algorithm>
#include <numeric>
#include <sstream>

#include "support/logging.hpp"
#include "support/simd.hpp"

namespace fingrav::support {

Histogram::Histogram(double lo, double hi, std::size_t buckets)
    : lo_(lo), width_((hi - lo) / static_cast<double>(buckets)),
      counts_(buckets, 0)
{
    if (buckets == 0)
        fatal("Histogram: need at least one bucket");
    if (hi <= lo)
        fatal("Histogram: hi (", hi, ") must exceed lo (", lo, ")");
}

void
Histogram::add(double x)
{
    auto idx = static_cast<std::ptrdiff_t>((x - lo_) / width_);
    idx = std::clamp<std::ptrdiff_t>(
        idx, 0, static_cast<std::ptrdiff_t>(counts_.size()) - 1);
    ++counts_[static_cast<std::size_t>(idx)];
    ++total_;
}

void
Histogram::addColumn(const std::vector<double>& xs)
{
    const double lo = lo_;
    const double width = width_;
    const auto last = static_cast<std::ptrdiff_t>(counts_.size()) - 1;
    std::size_t* counts = counts_.data();
    // Two-phase fill: the bucket-index arithmetic is element-independent
    // and vectorizes (same (x - lo) / width truncation as add() — a
    // precomputed reciprocal would round differently near bucket edges,
    // so the division stays); the count scatter cannot (two lanes may
    // hit the same bucket), so it runs scalar over a small index block.
    constexpr std::size_t kBlock = 256;
    std::ptrdiff_t idx[kBlock];
    const double* v = xs.data();
    const std::size_t n = xs.size();
    for (std::size_t base = 0; base < n; base += kBlock) {
        const std::size_t m = n - base < kBlock ? n - base : kBlock;
        FINGRAV_SIMD_LOOP
        for (std::size_t k = 0; k < m; ++k) {
            auto i = static_cast<std::ptrdiff_t>((v[base + k] - lo) / width);
            idx[k] = i < 0 ? 0 : (i > last ? last : i);
        }
        for (std::size_t k = 0; k < m; ++k)
            ++counts[static_cast<std::size_t>(idx[k])];
    }
    total_ += xs.size();
}

double
Histogram::bucketCenter(std::size_t i) const
{
    return lo_ + (static_cast<double>(i) + 0.5) * width_;
}

std::size_t
Histogram::modeBucket() const
{
    const auto it = std::max_element(counts_.begin(), counts_.end());
    return static_cast<std::size_t>(std::distance(counts_.begin(), it));
}

std::string
Histogram::render(std::size_t max_width) const
{
    const std::size_t peak =
        counts_.empty() ? 0 : *std::max_element(counts_.begin(), counts_.end());
    std::ostringstream oss;
    for (std::size_t i = 0; i < counts_.size(); ++i) {
        const std::size_t bar =
            peak ? counts_[i] * max_width / peak : 0;
        oss << bucketCenter(i) << "\t" << counts_[i] << "\t"
            << std::string(bar, '#') << "\n";
    }
    return oss.str();
}

ModalCluster
modalCluster(const std::vector<double>& values, double margin)
{
    if (margin < 0.0)
        fatal("modalCluster: negative margin ", margin);

    ModalCluster best;
    if (values.empty())
        return best;

    // Sort value/index pairs; then for each candidate window anchored at a
    // sample, count members with a two-pointer sweep.  A window centred at c
    // admits [c*(1-margin), c*(1+margin)]; anchoring candidate centres at
    // sample values is sufficient to find the max-membership window.
    std::vector<std::size_t> order(values.size());
    std::iota(order.begin(), order.end(), 0);
    std::sort(order.begin(), order.end(), [&](std::size_t a, std::size_t b) {
        return values[a] < values[b];
    });

    std::size_t best_count = 0;
    double best_center = 0.0;
    std::size_t best_lo = 0;
    std::size_t best_hi = 0;  // half-open over `order`

    // Both window edges are monotone in the anchor (values ascend), so a
    // single sweep costs O(n) beyond the sort.
    std::size_t lo = 0;
    std::size_t hi = 0;
    for (std::size_t anchor = 0; anchor < order.size(); ++anchor) {
        const double c = values[order[anchor]];
        const double lo_val = c * (1.0 - margin);
        const double hi_val = c * (1.0 + margin);
        while (lo < order.size() && values[order[lo]] < lo_val)
            ++lo;
        if (hi < anchor)
            hi = anchor;
        while (hi < order.size() && values[order[hi]] <= hi_val)
            ++hi;
        const std::size_t count = hi - lo;
        // Strict > keeps the earliest (smallest-centre) window on ties.
        if (count > best_count) {
            best_count = count;
            best_center = c;
            best_lo = lo;
            best_hi = hi;
        }
    }

    best.center = best_center;
    best.indices.reserve(best_count);
    for (std::size_t i = best_lo; i < best_hi; ++i)
        best.indices.push_back(order[i]);
    std::sort(best.indices.begin(), best.indices.end());
    return best;
}

}  // namespace fingrav::support

#ifndef FINGRAV_SUPPORT_UNITS_HPP_
#define FINGRAV_SUPPORT_UNITS_HPP_

/**
 * @file
 * Lightweight unit helpers for data sizes, rates, power and energy.
 *
 * Power/energy/bandwidth stay as plain doubles (they flow through numeric
 * models where strong types would add friction without catching real bugs),
 * but construction goes through named helpers and literals so magnitudes
 * are explicit at the call site.
 */

#include <cstdint>

namespace fingrav::support {

/** Bytes as a 64-bit count. */
using Bytes = std::int64_t;

/** Floating-point operation count. */
using Flops = double;

/** Power in watts. */
using Watts = double;

/** Energy in joules. */
using Joules = double;

/** Bandwidth in bytes per second. */
using BytesPerSecond = double;

/** Compute throughput in FLOP per second. */
using FlopsPerSecond = double;

namespace literals {

/** Decimal kilobytes (the paper's collective sizes are decimal). */
constexpr Bytes operator""_KB(unsigned long long v)
{
    return static_cast<Bytes>(v) * 1000;
}

/** Decimal megabytes. */
constexpr Bytes operator""_MB(unsigned long long v)
{
    return static_cast<Bytes>(v) * 1000 * 1000;
}

/** Decimal gigabytes. */
constexpr Bytes operator""_GB(unsigned long long v)
{
    return static_cast<Bytes>(v) * 1000 * 1000 * 1000;
}

/** Binary kibibytes (cache capacities). */
constexpr Bytes operator""_KiB(unsigned long long v)
{
    return static_cast<Bytes>(v) * 1024;
}

/** Binary mebibytes. */
constexpr Bytes operator""_MiB(unsigned long long v)
{
    return static_cast<Bytes>(v) * 1024 * 1024;
}

/** Binary gibibytes. */
constexpr Bytes operator""_GiB(unsigned long long v)
{
    return static_cast<Bytes>(v) * 1024 * 1024 * 1024;
}

}  // namespace literals

}  // namespace fingrav::support

#endif  // FINGRAV_SUPPORT_UNITS_HPP_

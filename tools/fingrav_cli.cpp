/**
 * @file
 * fingrav — command-line front-end to the FinGraV profiler.
 *
 * Usage:
 *   fingrav list
 *       List the built-in paper kernels.
 *   fingrav profile <kernel> [options]
 *       Run a full FinGraV campaign and print the profile.
 *   fingrav compare <kernel-a> <kernel-b> [options]
 *       Profile two kernels and compare rails side by side.
 *   fingrav coschedule <kernel-a> <kernel-b> [options]
 *       Evaluate recommendation-R1 co-scheduling of a pair.
 *
 * Common options:
 *   --runs N          override the guidance-table run count
 *   --margin F        override the binning margin (e.g. 0.05)
 *   --window MS       logger averaging window in ms (default 1)
 *   --seed N          simulation seed (default 1)
 *   --sync MODE       fingrav | drift | lang | none
 *   --no-binning      keep every run (tenet S3 off)
 *   --csv NAME        dump profiles to fingrav_out/NAME_{sse,ssp}.csv
 *   --quiet           summary only, no plot
 *
 * Custom kernels (instead of a paper label):
 *   gemm:M,N,K        e.g. gemm:8192,8192,8192
 *   gemv:M            e.g. gemv:4096
 *   ag:BYTES | ar:BYTES   e.g. ag:1000000000
 */

#include <cstdint>
#include <iostream>
#include <string>
#include <vector>

#include "analysis/ascii_plot.hpp"
#include "analysis/report.hpp"
#include "analysis/series.hpp"
#include "fingrav/concurrency.hpp"
#include "fingrav/energy.hpp"
#include "fingrav/profiler.hpp"
#include "kernels/workloads.hpp"
#include "runtime/host_runtime.hpp"
#include "sim/machine_config.hpp"
#include "sim/simulation.hpp"
#include "support/logging.hpp"
#include "support/table.hpp"

namespace an = fingrav::analysis;
namespace fc = fingrav::core;
namespace fk = fingrav::kernels;
namespace fs = fingrav::support;
namespace rt = fingrav::runtime;
namespace sim = fingrav::sim;

namespace {

struct CliOptions {
    fc::ProfilerOptions profiler;
    std::uint64_t seed = 1;
    std::string csv;
    bool quiet = false;
};

[[noreturn]] void
usage(const char* argv0)
{
    std::cerr
        << "usage: " << argv0 << " <command> [args]\n"
        << "  list                                 list built-in kernels\n"
        << "  profile <kernel> [options]           run a FinGraV campaign\n"
        << "  compare <kernel-a> <kernel-b>        compare two kernels\n"
        << "  coschedule <kernel-a> <kernel-b>     evaluate R1 co-scheduling\n"
        << "options: --runs N --margin F --window MS --seed N\n"
        << "         --sync fingrav|drift|lang|none --no-binning\n"
        << "         --csv NAME --quiet\n"
        << "kernels: paper labels (CB-8K-GEMM, MB-4K-GEMV, AG-1GB, ...)\n"
        << "         or gemm:M,N,K | gemv:M | ag:BYTES | ar:BYTES\n";
    std::exit(2);
}

/** Parse a kernel spec: paper label or gemm:/gemv:/ag:/ar: shorthand. */
fk::KernelModelPtr
parseKernel(const std::string& spec, const sim::MachineConfig& cfg)
{
    auto starts = [&](const char* p) {
        return spec.rfind(p, 0) == 0;
    };
    try {
        if (starts("gemm:")) {
            const auto body = spec.substr(5);
            const auto c1 = body.find(',');
            const auto c2 = body.find(',', c1 + 1);
            if (c1 == std::string::npos || c2 == std::string::npos)
                fs::fatal("gemm spec needs M,N,K: ", spec);
            fk::GemmShape shape;
            shape.m = std::stoll(body.substr(0, c1));
            shape.n = std::stoll(body.substr(c1 + 1, c2 - c1 - 1));
            shape.k = std::stoll(body.substr(c2 + 1));
            return std::make_shared<fk::GemmKernel>(shape, cfg);
        }
        if (starts("gemv:"))
            return fk::makeGemv(std::stoll(spec.substr(5)), cfg);
        if (starts("ag:")) {
            return fk::makeCollective(fk::CollectiveOp::kAllGather,
                                      std::stoll(spec.substr(3)), cfg);
        }
        if (starts("ar:")) {
            return fk::makeCollective(fk::CollectiveOp::kAllReduce,
                                      std::stoll(spec.substr(3)), cfg);
        }
    } catch (const std::invalid_argument&) {
        fs::fatal("cannot parse kernel spec: ", spec);
    }
    return fk::kernelByLabel(spec, cfg);
}

/** Parse trailing --flag options into CliOptions. */
CliOptions
parseOptions(const std::vector<std::string>& args, std::size_t from)
{
    CliOptions out;
    for (std::size_t i = from; i < args.size(); ++i) {
        const auto& a = args[i];
        auto next = [&]() -> const std::string& {
            if (i + 1 >= args.size())
                fs::fatal(a, " needs a value");
            return args[++i];
        };
        if (a == "--runs") {
            out.profiler.runs_override = std::stoull(next());
        } else if (a == "--margin") {
            out.profiler.margin_override = std::stod(next());
        } else if (a == "--window") {
            out.profiler.logger_window =
                fs::Duration::millis(std::stod(next()));
        } else if (a == "--seed") {
            out.seed = std::stoull(next());
        } else if (a == "--sync") {
            const auto& mode = next();
            if (mode == "fingrav")
                out.profiler.sync_mode = fc::SyncMode::kFinGraV;
            else if (mode == "drift")
                out.profiler.sync_mode = fc::SyncMode::kFinGraVDrift;
            else if (mode == "lang")
                out.profiler.sync_mode = fc::SyncMode::kNoDelayAccounting;
            else if (mode == "none")
                out.profiler.sync_mode = fc::SyncMode::kCoarseAlign;
            else
                fs::fatal("unknown sync mode: ", mode);
        } else if (a == "--no-binning") {
            out.profiler.binning = false;
        } else if (a == "--csv") {
            out.csv = next();
        } else if (a == "--quiet") {
            out.quiet = true;
        } else {
            fs::fatal("unknown option: ", a);
        }
    }
    return out;
}

fc::ProfileSet
runCampaign(const std::string& spec, const CliOptions& opts)
{
    const auto cfg = sim::mi300xConfig();
    const auto kernel = parseKernel(spec, cfg);
    sim::Simulation node(cfg, opts.seed, kernel->isCollective() ? 0 : 1);
    rt::HostRuntime host(node, node.forkRng(7));
    fc::Profiler profiler(host, opts.profiler, node.forkRng(8));
    return profiler.profile(kernel);
}

void
printProfile(const fc::ProfileSet& set, const CliOptions& opts)
{
    std::cout << an::summarize(set) << "\n";
    const auto rep = fc::differentiationError(set);
    std::cout << "SSE " << rep.sse_mean_w << " W | SSP " << rep.ssp_mean_w
              << " W | differentiation error " << rep.error_pct
              << " % | energy/exec " << rep.ssp_energy_j * 1e3 << " mJ\n";
    if (!opts.quiet && !set.ssp.empty()) {
        an::AsciiPlot plot(70, 12);
        plot.addSeries(an::toSeries(set.ssp, fc::Rail::kTotal), 'o',
                       "SSP LOIs");
        plot.addSeries(an::trendSeries(set.ssp, fc::Rail::kTotal), '=',
                       "trend");
        std::cout << plot.render();
    }
    if (!opts.csv.empty()) {
        an::dumpProfileCsv(set.sse, opts.csv + "_sse");
        an::dumpProfileCsv(set.ssp, opts.csv + "_ssp");
        an::dumpProfileCsv(set.timeline, opts.csv + "_timeline");
        std::cout << "CSV written to fingrav_out/" << opts.csv << "_*.csv\n";
    }
}

int
cmdList()
{
    const auto cfg = sim::mi300xConfig();
    fs::TableWriter table({"label", "class", "exec@nominal (us)",
                           "op:byte"});
    for (const auto& k : fk::paperKernels(cfg)) {
        std::string cls = "collective";
        if (k->opsPerByte() > 0.0) {
            cls = k->opsPerByte() > cfg.machineOpsPerByte()
                      ? "compute-bound"
                      : "memory-bound";
        }
        table.addRow({k->label(), cls,
                      fs::TableWriter::num(
                          k->nominalDuration().toMicros(), 1),
                      fs::TableWriter::num(k->opsPerByte(), 1)});
    }
    table.print(std::cout);
    return 0;
}

int
cmdProfile(const std::vector<std::string>& args)
{
    if (args.size() < 3)
        fs::fatal("profile needs a kernel spec");
    const auto opts = parseOptions(args, 3);
    printProfile(runCampaign(args[2], opts), opts);
    return 0;
}

int
cmdCompare(const std::vector<std::string>& args)
{
    if (args.size() < 4)
        fs::fatal("compare needs two kernel specs");
    const auto opts = parseOptions(args, 4);
    const auto a = runCampaign(args[2], opts);
    CliOptions opts_b = opts;
    opts_b.seed += 1;
    const auto b = runCampaign(args[3], opts_b);

    fs::TableWriter table({"kernel", "exec (us)", "total (W)", "XCD (W)",
                           "IOD (W)", "HBM (W)", "SSE err (%)"});
    for (const auto* set : {&a, &b}) {
        const auto rep = fc::differentiationError(*set);
        table.addRow(
            {set->label,
             fs::TableWriter::num(set->measured_exec_time.toMicros(), 1),
             fs::TableWriter::num(set->ssp.meanPower(fc::Rail::kTotal), 1),
             fs::TableWriter::num(set->ssp.meanPower(fc::Rail::kXcd), 1),
             fs::TableWriter::num(set->ssp.meanPower(fc::Rail::kIod), 1),
             fs::TableWriter::num(set->ssp.meanPower(fc::Rail::kHbm), 1),
             fs::TableWriter::num(rep.error_pct, 1)});
    }
    table.print(std::cout);
    return 0;
}

int
cmdCoschedule(const std::vector<std::string>& args)
{
    if (args.size() < 4)
        fs::fatal("coschedule needs two kernel specs");
    const auto opts = parseOptions(args, 4);
    const auto cfg = sim::mi300xConfig();
    const auto a = parseKernel(args[2], cfg);
    const auto b = parseKernel(args[3], cfg);
    sim::Simulation node(cfg, opts.seed, 1);
    rt::HostRuntime host(node, node.forkRng(7));
    fc::ConcurrencyAdvisor advisor(host, node.forkRng(8));
    const auto rep = advisor.evaluate(a, b, 16, 1, 4);

    std::cout << rep.kernel_a << " + " << rep.kernel_b
              << "\ncomplementarity : " << rep.complementarity
              << "\nserial          : " << rep.serial_ms << " ms @ "
              << rep.serial_avg_w << " W avg, " << rep.serial_energy_j
              << " J"
              << "\nconcurrent      : " << rep.concurrent_ms << " ms @ "
              << rep.concurrent_avg_w << " W avg (peak " << rep.peak_w
              << " W), " << rep.concurrent_energy_j << " J"
              << "\nspeedup         : " << rep.speedup << "x"
              << "\nverdict         : "
              << (rep.worthIt(cfg.dvfs.sustained_limit_w)
                      ? "co-schedule (R1 pays off)"
                      : "keep serial")
              << "\n";
    return 0;
}

}  // namespace

int
main(int argc, char** argv)
{
    std::vector<std::string> args(argv, argv + argc);
    if (args.size() < 2)
        usage(argv[0]);
    try {
        const std::string& cmd = args[1];
        if (cmd == "list")
            return cmdList();
        if (cmd == "profile")
            return cmdProfile(args);
        if (cmd == "compare")
            return cmdCompare(args);
        if (cmd == "coschedule")
            return cmdCoschedule(args);
        usage(argv[0]);
    } catch (const fs::FatalError& e) {
        std::cerr << "error: " << e.what() << "\n";
        return 1;
    } catch (const fs::PanicError& e) {
        std::cerr << "internal error (bug): " << e.what() << "\n";
        return 70;
    }
}

/**
 * @file
 * fingrav — command-line front-end to the FinGraV profiler.
 *
 * Usage:
 *   fingrav list
 *       List the built-in paper kernels.
 *   fingrav profile <kernel> [options]
 *       Run a full FinGraV campaign and print the profile.
 *   fingrav compare <kernel-a> <kernel-b> [options]
 *       Profile two kernels and compare rails side by side.
 *   fingrav coschedule <kernel-a> <kernel-b> [options]
 *       Evaluate recommendation-R1 co-scheduling of a pair.
 *   fingrav campaign <label> [<label>...] [options]
 *       Profile a set of paper kernels as one campaign set — in
 *       process by default, sharded across worker subprocesses of this
 *       same binary with --shards N.
 *   fingrav cache stats --cache-dir DIR
 *       Survey an on-disk campaign cache: blob count, bytes, how many
 *       entries revalidate, leftover write-temps.
 *   fingrav --worker [--cache-dir DIR]
 *       Shard-worker mode: serve length-prefixed campaign requests on
 *       stdin/stdout (spawned by --shards drivers; not for humans).
 *   fingrav --serve [--cache-dir DIR]
 *       Fleet-worker mode: the persistent sibling of --worker — stays
 *       resident across requests, answers kPing keepalives, exits on
 *       kShutdown or EOF (spawned by --fleet drivers; not for humans).
 *
 * Common options: see usage() — one flag table covers every command.
 *
 * Unknown options after a command are rejected with the usage text,
 * a nearest-flag suggestion, and a nonzero exit — trailing junk is
 * never silently ignored.
 *
 * Custom kernels (instead of a paper label):
 *   gemm:M,N,K        e.g. gemm:8192,8192,8192
 *   gemv:M            e.g. gemv:4096
 *   ag:BYTES | ar:BYTES   e.g. ag:1000000000
 */

#include <algorithm>
#include <chrono>
#include <cstdint>
#include <iostream>
#include <memory>
#include <string>
#include <vector>

#include "analysis/ascii_plot.hpp"
#include "analysis/report.hpp"
#include "analysis/series.hpp"
#include "fingrav/campaign_cache.hpp"
#include "fingrav/campaign_runner.hpp"
#include "fingrav/concurrency.hpp"
#include "fingrav/energy.hpp"
#include "fingrav/profiler.hpp"
#include "fingrav/recorded_campaign.hpp"
#include "fingrav/shard_backend.hpp"
#include "fingrav/worker_fleet.hpp"
#include "kernels/workloads.hpp"
#include "runtime/host_runtime.hpp"
#include "runtime/shard_worker.hpp"
#include "sim/machine_config.hpp"
#include "sim/simulation.hpp"
#include "support/fault_injector.hpp"
#include "support/logging.hpp"
#include "support/run_journal.hpp"
#include "support/table.hpp"

namespace an = fingrav::analysis;
namespace fc = fingrav::core;
namespace fk = fingrav::kernels;
namespace fs = fingrav::support;
namespace rt = fingrav::runtime;
namespace sim = fingrav::sim;

namespace {

struct CliOptions {
    fc::ProfilerOptions profiler;
    std::uint64_t seed = 1;
    std::string csv;
    bool quiet = false;
    std::size_t shards = 0;  ///< 0 = no one-shot shard dispatch
    std::size_t fleet = 0;   ///< 0 = no persistent fleet dispatch
    bool autotune = false;
    std::string cache_dir;   ///< empty = no campaign cache
    bool no_cache = false;   ///< overrides --cache-dir (aliases/scripts)
    long io_timeout_ms = 0;  ///< worker-pipe inactivity bound (0 = off)
    fs::FaultPlan fault_plan;  ///< scripted faults (empty = none)
};

[[noreturn]] void
usage(const char* argv0)
{
    std::cerr
        << "usage: " << argv0 << " <command> [args] [options]\n"
        << "\n"
        << "commands:\n"
        << "  list                               list built-in kernels\n"
        << "  profile <kernel> [options]         run a FinGraV campaign\n"
        << "  campaign <label> [<label>...]      profile a kernel set\n"
        << "  compare <kernel-a> <kernel-b>      compare two kernels\n"
        << "  coschedule <kernel-a> <kernel-b>   evaluate R1 co-scheduling\n"
        << "  cache stats --cache-dir DIR        survey an on-disk cache\n"
        << "  --worker [--cache-dir DIR]         one-shot shard worker on\n"
        << "                                     stdin/stdout (internal)\n"
        << "  --serve  [--cache-dir DIR]         persistent fleet worker on\n"
        << "                                     stdin/stdout (internal)\n"
        << "\n"
        << "options (one table; per-flag command scope in parentheses):\n"
        << "  --runs N           override the guidance-table run count\n"
        << "  --margin F         override the binning margin (e.g. 0.05)\n"
        << "  --window MS        logger averaging window in ms (default 1)\n"
        << "  --seed N           simulation seed (default 1)\n"
        << "  --sync MODE        fingrav | drift | lang | none\n"
        << "  --no-binning       keep every run (tenet S3 off)\n"
        << "  --csv NAME         dump profiles to fingrav_out/NAME_*.csv\n"
        << "  --quiet            summary only, no plot\n"
        << "  --shards N         one-shot round-robin dispatch to N worker\n"
        << "                     subprocesses (profile/campaign; paper\n"
        << "                     labels only)\n"
        << "  --fleet N          persistent N-worker fleet with cost-aware\n"
        << "                     pull dispatch (profile/campaign; paper\n"
        << "                     labels only; exclusive with --shards)\n"
        << "  --autotune         report the autotuned run budget vs\n"
        << "                     Table I (profile; paper labels only)\n"
        << "  --cache-dir DIR    content-addressed campaign cache: reuse\n"
        << "                     stored results bit-identically, store\n"
        << "                     fresh ones (profile/campaign/cache stats;\n"
        << "                     paper labels only)\n"
        << "  --no-cache         ignore --cache-dir for this run\n"
        << "  --io-timeout-ms N  worker-pipe inactivity timeout for\n"
        << "                     --shards/--fleet runs (0 = wait forever)\n"
        << "  --fault-plan PLAN  scripted fault injection for CI fault\n"
        << "                     matrices: kill:shard=0,frame=1 |\n"
        << "                     corrupt:frame=0 | stall:frame=0,ms=2000 |\n"
        << "                     spawn-fail | store-short (';'-separated;\n"
        << "                     grammar in support/fault_injector.hpp)\n"
        << "\n"
        << "kernels: paper labels (CB-8K-GEMM, MB-4K-GEMV, AG-1GB, ...)\n"
        << "         or gemm:M,N,K | gemv:M | ag:BYTES | ar:BYTES\n";
    std::exit(2);
}

/** Every flag parseOptions understands (nearest-match suggestions). */
constexpr const char* kKnownFlags[] = {
    "--runs",      "--margin",        "--window",     "--seed",
    "--sync",      "--no-binning",    "--csv",        "--quiet",
    "--shards",    "--fleet",         "--autotune",   "--cache-dir",
    "--no-cache",  "--io-timeout-ms", "--fault-plan",
};

/** Levenshtein distance — small strings, so the O(n*m) table is fine. */
std::size_t
editDistance(const std::string& a, const std::string& b)
{
    std::vector<std::size_t> prev(b.size() + 1);
    std::vector<std::size_t> cur(b.size() + 1);
    for (std::size_t j = 0; j <= b.size(); ++j)
        prev[j] = j;
    for (std::size_t i = 1; i <= a.size(); ++i) {
        cur[0] = i;
        for (std::size_t j = 1; j <= b.size(); ++j) {
            const std::size_t subst =
                prev[j - 1] + (a[i - 1] == b[j - 1] ? 0 : 1);
            cur[j] = std::min({prev[j] + 1, cur[j - 1] + 1, subst});
        }
        std::swap(prev, cur);
    }
    return prev[b.size()];
}

/** The valid flag closest to a typo, or empty when nothing is close. */
std::string
nearestFlag(const std::string& given)
{
    std::string best;
    std::size_t best_distance = 4;  // farther than 3 edits = no guess
    for (const char* flag : kKnownFlags) {
        const std::size_t d = editDistance(given, flag);
        if (d < best_distance) {
            best_distance = d;
            best = flag;
        }
    }
    return best;
}

/** Parse a kernel spec: paper label or gemm:/gemv:/ag:/ar: shorthand. */
fk::KernelModelPtr
parseKernel(const std::string& spec, const sim::MachineConfig& cfg)
{
    auto starts = [&](const char* p) {
        return spec.rfind(p, 0) == 0;
    };
    try {
        if (starts("gemm:")) {
            const auto body = spec.substr(5);
            const auto c1 = body.find(',');
            const auto c2 = body.find(',', c1 + 1);
            if (c1 == std::string::npos || c2 == std::string::npos)
                fs::fatal("gemm spec needs M,N,K: ", spec);
            fk::GemmShape shape;
            shape.m = std::stoll(body.substr(0, c1));
            shape.n = std::stoll(body.substr(c1 + 1, c2 - c1 - 1));
            shape.k = std::stoll(body.substr(c2 + 1));
            return std::make_shared<fk::GemmKernel>(shape, cfg);
        }
        if (starts("gemv:"))
            return fk::makeGemv(std::stoll(spec.substr(5)), cfg);
        if (starts("ag:")) {
            return fk::makeCollective(fk::CollectiveOp::kAllGather,
                                      std::stoll(spec.substr(3)), cfg);
        }
        if (starts("ar:")) {
            return fk::makeCollective(fk::CollectiveOp::kAllReduce,
                                      std::stoll(spec.substr(3)), cfg);
        }
    } catch (const std::invalid_argument&) {
        fs::fatal("cannot parse kernel spec: ", spec);
    }
    return fk::kernelByLabel(spec, cfg);
}

/**
 * Parse trailing --flag options into CliOptions.  Anything that is not
 * a recognised option is rejected with the usage text and a nonzero
 * exit — a typo must never be silently ignored.
 */
CliOptions
parseOptions(const std::vector<std::string>& args, std::size_t from,
             const char* argv0)
{
    CliOptions out;
    for (std::size_t i = from; i < args.size(); ++i) {
        const auto& a = args[i];
        auto next = [&]() -> const std::string& {
            if (i + 1 >= args.size())
                fs::fatal(a, " needs a value");
            return args[++i];
        };
        // Malformed numbers get the same usage-text rejection as
        // unknown flags — never std::terminate out of stoull/stod, and
        // never stoull's silent wrap of "-1" or half-parse of "10x".
        auto unsigned_value = [&]() -> std::uint64_t {
            const auto& value = next();
            try {
                if (value.empty() ||
                    value.find_first_not_of("0123456789") !=
                        std::string::npos)
                    throw std::invalid_argument(value);
                return std::stoull(value);
            } catch (const std::exception&) {
                std::cerr << "error: " << a
                          << " needs a non-negative integer, got '"
                          << value << "'\n";
                usage(argv0);
            }
        };
        auto double_value = [&]() -> double {
            const auto& value = next();
            try {
                std::size_t parsed = 0;
                const double out = std::stod(value, &parsed);
                if (parsed != value.size())
                    throw std::invalid_argument(value);
                return out;
            } catch (const std::exception&) {
                std::cerr << "error: " << a << " needs a number, got '"
                          << value << "'\n";
                usage(argv0);
            }
        };
        if (a == "--runs") {
            out.profiler.runs_override = unsigned_value();
        } else if (a == "--margin") {
            out.profiler.margin_override = double_value();
        } else if (a == "--window") {
            out.profiler.logger_window =
                fs::Duration::millis(double_value());
        } else if (a == "--seed") {
            out.seed = unsigned_value();
        } else if (a == "--sync") {
            const auto& mode = next();
            if (mode == "fingrav")
                out.profiler.sync_mode = fc::SyncMode::kFinGraV;
            else if (mode == "drift")
                out.profiler.sync_mode = fc::SyncMode::kFinGraVDrift;
            else if (mode == "lang")
                out.profiler.sync_mode = fc::SyncMode::kNoDelayAccounting;
            else if (mode == "none")
                out.profiler.sync_mode = fc::SyncMode::kCoarseAlign;
            else
                fs::fatal("unknown sync mode: ", mode);
        } else if (a == "--no-binning") {
            out.profiler.binning = false;
        } else if (a == "--csv") {
            out.csv = next();
        } else if (a == "--quiet") {
            out.quiet = true;
        } else if (a == "--shards") {
            out.shards = unsigned_value();
        } else if (a == "--fleet") {
            out.fleet = unsigned_value();
        } else if (a == "--autotune") {
            out.autotune = true;
        } else if (a == "--cache-dir") {
            out.cache_dir = next();
            if (out.cache_dir.empty())
                fs::fatal("--cache-dir needs a non-empty directory");
        } else if (a == "--no-cache") {
            out.no_cache = true;
        } else if (a == "--io-timeout-ms") {
            out.io_timeout_ms = static_cast<long>(unsigned_value());
        } else if (a == "--fault-plan") {
            // Parsed eagerly so a malformed plan is rejected before any
            // work runs (FaultPlan::parse is fatal on bad grammar).
            out.fault_plan = fs::FaultPlan::parse(next());
        } else {
            std::cerr << "error: unknown option '" << a << "'";
            const std::string suggestion = nearestFlag(a);
            if (!suggestion.empty())
                std::cerr << " (did you mean '" << suggestion << "'?)";
            std::cerr << "\n";
            usage(argv0);
        }
    }
    if (out.shards > 0 && out.fleet > 0) {
        fs::fatal("--shards and --fleet are exclusive: pick one-shot "
                  "round-robin sharding or the persistent fleet");
    }
    return out;
}

/** The campaign cache a run asked for; null = uncached. */
std::shared_ptr<fc::CampaignCache>
makeCache(const CliOptions& opts)
{
    if (opts.cache_dir.empty() || opts.no_cache)
        return nullptr;
    fc::CacheOptions cache_opts;
    cache_opts.dir = opts.cache_dir;
    cache_opts.fault_plan = opts.fault_plan;  // store-short actions
    return std::make_shared<fc::CampaignCache>(std::move(cache_opts));
}

/** One session-stats line: what this run's cache actually did. */
void
reportCacheStats(const fc::CampaignCache& cache)
{
    const auto s = cache.stats();
    std::cout << "cache: " << s.hits() << " hit(s) (" << s.memory_hits
              << " memory, " << s.disk_hits << " disk), " << s.misses
              << " miss(es) (" << s.corrupt_misses << " corrupt), "
              << s.stores << " store(s), " << s.evictions
              << " eviction(s), " << s.disk_bytes_written
              << " B written, " << s.disk_bytes_read << " B read\n";
    if (!cache.journal().empty()) {
        std::cout << "cache journal (" << cache.journal().size()
                  << " degradation(s)):\n"
                  << cache.journal().report();
    }
}

/** A --shards backend: worker subprocesses of this same binary. */
std::shared_ptr<fc::ShardBackend>
makeShardBackend(const CliOptions& opts, const char* argv0)
{
    fc::ShardOptions shard_opts;
    shard_opts.shards = opts.shards;
    shard_opts.worker_command = fc::defaultWorkerCommand(argv0);
    shard_opts.io_timeout_ms = opts.io_timeout_ms;
    shard_opts.fault_plan = opts.fault_plan;
    // Workers share the driver's on-disk store (atomic-rename publication
    // makes concurrent writers safe), so shard placement cannot defeat
    // fleet-level memoization.
    if (!opts.cache_dir.empty() && !opts.no_cache) {
        shard_opts.worker_command.push_back("--cache-dir");
        shard_opts.worker_command.push_back(opts.cache_dir);
    }
    return std::make_shared<fc::ShardBackend>(std::move(shard_opts));
}

/** A --fleet backend: persistent --serve subprocesses of this binary. */
std::shared_ptr<fc::FleetBackend>
makeFleetBackend(const CliOptions& opts, const char* argv0)
{
    fc::FleetOptions fleet_opts;
    fleet_opts.workers = opts.fleet;
    fleet_opts.worker_command = fc::defaultServeCommand(argv0);
    fleet_opts.io_timeout_ms = opts.io_timeout_ms;
    fleet_opts.fault_plan = opts.fault_plan;
    // Same shared-store rule as --shards: residents read and write the
    // driver's cache directory directly.
    if (!opts.cache_dir.empty() && !opts.no_cache) {
        fleet_opts.worker_command.push_back("--cache-dir");
        fleet_opts.worker_command.push_back(opts.cache_dir);
    }
    return std::make_shared<fc::FleetBackend>(std::move(fleet_opts));
}

/** reportShardDelivery's analog for the persistent fleet. */
int
reportFleetDelivery(const fc::FleetBackend& backend)
{
    const auto& stats = backend.lastStats();
    std::cout << "fleet: " << stats.remote_specs
              << " spec(s) over the wire (" << stats.workers_spawned
              << " worker(s) spawned, " << stats.workers_live
              << " resident, " << stats.pulls << " pull(s)), "
              << stats.fallback_specs << " recovered in-process, "
              << stats.local_specs << " process-local\n";
    if (!stats.journal.empty()) {
        std::cout << "run journal (" << stats.journal.size()
                  << " degradation(s), results bit-identical):\n"
                  << stats.journal.report();
    }
    if (stats.fallback_specs > 0) {
        std::cerr << "error: " << stats.fallback_specs << " spec(s) "
                     "failed to execute remotely (" << stats.worker_failures
                  << " worker failure(s)); results above are correct but "
                     "were recovered in-process\n";
        return 1;
    }
    return 0;
}

/**
 * Report where the sharded specs actually executed.  The fallback path
 * keeps results correct when workers die, but a user who asked for
 * --shards deserves a hard signal whenever the wire path degraded —
 * and so does the CI step exercising this path end to end (a partially
 * broken protocol must not hide behind the in-process recovery).
 */
int
reportShardDelivery(const fc::ShardBackend& backend)
{
    const auto& stats = backend.lastStats();
    std::cout << "shards: " << stats.remote_specs
              << " spec(s) over the wire, " << stats.fallback_specs
              << " recovered in-process, " << stats.local_specs
              << " process-local\n";
    // The degradation journal: everything the supervisor absorbed —
    // retries, quarantines, worker deaths, cache corruption — prints
    // even when the run recovered completely, so no degradation is
    // ever silent.
    if (!stats.journal.empty()) {
        std::cout << "run journal (" << stats.journal.size()
                  << " degradation(s), results bit-identical):\n"
                  << stats.journal.report();
    }
    if (stats.fallback_specs > 0) {
        std::cerr << "error: " << stats.fallback_specs << " spec(s) "
                     "failed to execute remotely (" << stats.shard_failures
                  << " worker failure(s)); results above are correct but "
                     "were recovered in-process\n";
        return 1;
    }
    return 0;
}

fc::ProfileSet
runCampaign(const std::string& spec, const CliOptions& opts)
{
    const auto cfg = sim::mi300xConfig();
    const auto kernel = parseKernel(spec, cfg);
    sim::Simulation node(cfg, opts.seed, kernel->isCollective() ? 0 : 1);
    rt::HostRuntime host(node, node.forkRng(7));
    fc::Profiler profiler(host, opts.profiler, node.forkRng(8));
    return profiler.profile(kernel);
}

void
printProfile(const fc::ProfileSet& set, const CliOptions& opts,
             const fc::AutotuneResult* autotune = nullptr)
{
    if (autotune != nullptr)
        std::cout << an::summarize(set, *autotune) << "\n";
    else
        std::cout << an::summarize(set) << "\n";
    const auto rep = fc::differentiationError(set);
    std::cout << "SSE " << rep.sse_mean_w << " W | SSP " << rep.ssp_mean_w
              << " W | differentiation error " << rep.error_pct
              << " % | energy/exec " << rep.ssp_energy_j * 1e3 << " mJ\n";
    if (!opts.quiet && !set.ssp.empty()) {
        an::AsciiPlot plot(70, 12);
        plot.addSeries(an::toSeries(set.ssp, fc::Rail::kTotal), 'o',
                       "SSP LOIs");
        plot.addSeries(an::trendSeries(set.ssp, fc::Rail::kTotal), '=',
                       "trend");
        std::cout << plot.render();
    }
    if (!opts.csv.empty()) {
        an::dumpProfileCsv(set.sse, opts.csv + "_sse");
        an::dumpProfileCsv(set.ssp, opts.csv + "_ssp");
        an::dumpProfileCsv(set.timeline, opts.csv + "_timeline");
        std::cout << "CSV written to fingrav_out/" << opts.csv << "_*.csv\n";
    }
}

int
cmdList(const std::vector<std::string>& args, const char* argv0)
{
    if (args.size() > 2) {
        std::cerr << "error: unexpected argument '" << args[2]
                  << "' after 'list'\n";
        usage(argv0);
    }
    const auto cfg = sim::mi300xConfig();
    fs::TableWriter table({"label", "class", "exec@nominal (us)",
                           "op:byte"});
    for (const auto& k : fk::paperKernels(cfg)) {
        std::string cls = "collective";
        if (k->opsPerByte() > 0.0) {
            cls = k->opsPerByte() > cfg.machineOpsPerByte()
                      ? "compute-bound"
                      : "memory-bound";
        }
        table.addRow({k->label(), cls,
                      fs::TableWriter::num(
                          k->nominalDuration().toMicros(), 1),
                      fs::TableWriter::num(k->opsPerByte(), 1)});
    }
    table.print(std::cout);
    return 0;
}

int
cmdProfile(const std::vector<std::string>& args, const char* argv0)
{
    if (args.size() < 3)
        fs::fatal("profile needs a kernel spec");
    const auto opts = parseOptions(args, 3, argv0);

    // The sharded and autotuned paths ride the scenario layer, which
    // resolves kernels by paper label (kernelByLabel rejects shorthand
    // specs with the full label list).
    if (opts.autotune) {
        if (opts.shards > 0 || opts.fleet > 0) {
            fs::fatal("--autotune cannot be combined with "
                      "--shards/--fleet: autotuning replays a locally "
                      "recorded run pool");
        }
        fc::ScenarioSpec spec;
        spec.label = args[2];
        spec.seed = opts.seed;
        spec.opts = opts.profiler;
        const auto recorded = fc::RecordedCampaign::record(spec);
        const auto set = recorded.restitch({});
        const auto autotune = recorded.autotuneBudget();
        printProfile(set, opts, &autotune);
        return 0;
    }
    if (opts.shards > 0 || opts.fleet > 0) {
        fc::ScenarioSpec spec;
        spec.label = args[2];
        spec.seed = opts.seed;
        spec.opts = opts.profiler;
        std::shared_ptr<fc::ShardBackend> shard_backend;
        std::shared_ptr<fc::FleetBackend> fleet_backend;
        if (opts.shards > 0)
            shard_backend = makeShardBackend(opts, argv0);
        else
            fleet_backend = makeFleetBackend(opts, argv0);
        const auto runner =
            shard_backend
                ? fc::CampaignRunner(shard_backend)
                : fc::CampaignRunner(fleet_backend);
        const auto cache = makeCache(opts);
        if (cache)
            runner.attachCache(cache);
        const auto results =
            runner.run(std::vector<fc::ScenarioSpec>{spec});
        printProfile(results.front(), opts);
        if (cache)
            reportCacheStats(*cache);
        return shard_backend ? reportShardDelivery(*shard_backend)
                             : reportFleetDelivery(*fleet_backend);
    }
    if (const auto cache = makeCache(opts)) {
        // Cached profiling rides the scenario layer like --shards does:
        // the cache key is the spec's canonical codec bytes, so only
        // paper labels qualify (shorthand kernels have no spec form).
        fc::ScenarioSpec spec;
        spec.label = args[2];
        spec.seed = opts.seed;
        spec.opts = opts.profiler;
        const fc::CampaignRunner runner;
        runner.attachCache(cache);
        const auto results =
            runner.run(std::vector<fc::ScenarioSpec>{spec});
        printProfile(results.front(), opts);
        reportCacheStats(*cache);
        return 0;
    }
    printProfile(runCampaign(args[2], opts), opts);
    return 0;
}

int
cmdCampaign(const std::vector<std::string>& args, const char* argv0)
{
    // Kernel labels run up to the first --flag.
    std::vector<std::string> labels;
    std::size_t first_flag = 2;
    while (first_flag < args.size() &&
           args[first_flag].rfind("--", 0) != 0)
        labels.push_back(args[first_flag++]);
    if (labels.empty())
        fs::fatal("campaign needs at least one paper kernel label");
    const auto opts = parseOptions(args, first_flag, argv0);
    if (opts.autotune) {
        fs::fatal("--autotune applies to 'profile', not 'campaign' "
                  "(autotuning replays one locally recorded run pool)");
    }

    std::vector<fc::ScenarioSpec> specs;
    specs.reserve(labels.size());
    std::uint64_t seed = opts.seed;
    for (const auto& label : labels) {
        fc::ScenarioSpec spec;
        spec.label = label;
        spec.seed = seed++;
        spec.opts = opts.profiler;
        specs.push_back(std::move(spec));
    }

    std::shared_ptr<fc::ShardBackend> shard_backend;
    std::shared_ptr<fc::FleetBackend> fleet_backend;
    if (opts.shards > 0)
        shard_backend = makeShardBackend(opts, argv0);
    else if (opts.fleet > 0)
        fleet_backend = makeFleetBackend(opts, argv0);
    const auto runner =
        shard_backend  ? fc::CampaignRunner(shard_backend)
        : fleet_backend ? fc::CampaignRunner(fleet_backend)
                        : fc::CampaignRunner();
    const auto cache = makeCache(opts);
    if (cache)
        runner.attachCache(cache);
    const auto t0 = std::chrono::steady_clock::now();
    const auto results = runner.run(specs);
    const double wall_ms =
        std::chrono::duration<double, std::milli>(
            std::chrono::steady_clock::now() - t0)
            .count();

    for (const auto& set : results)
        std::cout << an::summarize(set) << "\n";
    std::cout << results.size() << " campaigns via "
              << runner.backend().name() << " backend";
    if (opts.shards > 0)
        std::cout << " (" << opts.shards << " shards)";
    else if (opts.fleet > 0)
        std::cout << " (" << opts.fleet << " fleet workers)";
    std::cout << " in " << wall_ms << " ms\n";
    if (cache)
        reportCacheStats(*cache);
    if (!opts.csv.empty()) {
        for (const auto& set : results)
            an::dumpProfileCsv(set.ssp, opts.csv + "_" + set.label);
        std::cout << "CSV written to fingrav_out/" << opts.csv
                  << "_*.csv\n";
    }
    if (shard_backend)
        return reportShardDelivery(*shard_backend);
    return fleet_backend ? reportFleetDelivery(*fleet_backend) : 0;
}

int
cmdCache(const std::vector<std::string>& args, const char* argv0)
{
    if (args.size() < 3 || args[2] != "stats") {
        std::cerr << "error: 'cache' supports one subcommand: "
                     "cache stats --cache-dir DIR\n";
        usage(argv0);
    }
    const auto opts = parseOptions(args, 3, argv0);
    if (opts.cache_dir.empty())
        fs::fatal("cache stats needs --cache-dir DIR");
    // Survey the store as it sits on disk: every blob is revalidated end
    // to end (frame checksum, codec version, key address), the same
    // acceptance test a lookup applies.
    const auto scan = fc::CampaignCache::scanDir(opts.cache_dir);
    std::cout << "cache dir      : " << opts.cache_dir << "\n"
              << "entries        : " << scan.entries << "\n"
              << "valid entries  : " << scan.valid_entries << "\n"
              << "corrupt entries: " << scan.corrupt_entries << "\n"
              << "blob bytes     : " << scan.bytes << "\n"
              << "temp leftovers : " << scan.temp_files << "\n";
    return 0;
}

int
cmdCompare(const std::vector<std::string>& args, const char* argv0)
{
    if (args.size() < 4)
        fs::fatal("compare needs two kernel specs");
    const auto opts = parseOptions(args, 4, argv0);
    if (opts.shards > 0 || opts.fleet > 0 || opts.autotune) {
        fs::fatal("--shards/--fleet/--autotune are not supported by "
                  "'compare'");
    }
    const auto a = runCampaign(args[2], opts);
    CliOptions opts_b = opts;
    opts_b.seed += 1;
    const auto b = runCampaign(args[3], opts_b);

    fs::TableWriter table({"kernel", "exec (us)", "total (W)", "XCD (W)",
                           "IOD (W)", "HBM (W)", "SSE err (%)"});
    for (const auto* set : {&a, &b}) {
        const auto rep = fc::differentiationError(*set);
        table.addRow(
            {set->label,
             fs::TableWriter::num(set->measured_exec_time.toMicros(), 1),
             fs::TableWriter::num(set->ssp.meanPower(fc::Rail::kTotal), 1),
             fs::TableWriter::num(set->ssp.meanPower(fc::Rail::kXcd), 1),
             fs::TableWriter::num(set->ssp.meanPower(fc::Rail::kIod), 1),
             fs::TableWriter::num(set->ssp.meanPower(fc::Rail::kHbm), 1),
             fs::TableWriter::num(rep.error_pct, 1)});
    }
    table.print(std::cout);
    return 0;
}

int
cmdCoschedule(const std::vector<std::string>& args, const char* argv0)
{
    if (args.size() < 4)
        fs::fatal("coschedule needs two kernel specs");
    const auto opts = parseOptions(args, 4, argv0);
    if (opts.shards > 0 || opts.fleet > 0 || opts.autotune) {
        fs::fatal("--shards/--fleet/--autotune are not supported by "
                  "'coschedule'");
    }
    const auto cfg = sim::mi300xConfig();
    const auto a = parseKernel(args[2], cfg);
    const auto b = parseKernel(args[3], cfg);
    sim::Simulation node(cfg, opts.seed, 1);
    rt::HostRuntime host(node, node.forkRng(7));
    fc::ConcurrencyAdvisor advisor(host, node.forkRng(8));
    const auto rep = advisor.evaluate(a, b, 16, 1, 4);

    std::cout << rep.kernel_a << " + " << rep.kernel_b
              << "\ncomplementarity : " << rep.complementarity
              << "\nserial          : " << rep.serial_ms << " ms @ "
              << rep.serial_avg_w << " W avg, " << rep.serial_energy_j
              << " J"
              << "\nconcurrent      : " << rep.concurrent_ms << " ms @ "
              << rep.concurrent_avg_w << " W avg (peak " << rep.peak_w
              << " W), " << rep.concurrent_energy_j << " J"
              << "\nspeedup         : " << rep.speedup << "x"
              << "\nverdict         : "
              << (rep.worthIt(cfg.dvfs.sustained_limit_w)
                      ? "co-schedule (R1 pays off)"
                      : "keep serial")
              << "\n";
    return 0;
}

}  // namespace

int
main(int argc, char** argv)
{
    std::vector<std::string> args(argv, argv + argc);
    if (args.size() < 2)
        usage(argv[0]);
    try {
        const std::string& cmd = args[1];
        if (cmd == "--worker" || cmd == "--serve") {
            // One serve loop covers both: runShardWorker already answers
            // requests until EOF/kShutdown.  A --shards driver closes the
            // pipe after one request (one-shot); a --fleet driver keeps
            // it open and the worker resident.
            // stdout carries protocol frames; keep inform() off it so a
            // status line can never corrupt the stream.
            fs::setLogLevel(fs::LogLevel::kWarn);
            // Worker options: a shared cache store (drivers append it
            // when their own run is cached) and a fault sub-plan (the
            // driver derives one per (shard, attempt) launch from the
            // run-level plan).
            const auto opts = parseOptions(args, 2, argv[0]);
            const auto cache = makeCache(opts);
            fs::FaultInjector injector(opts.fault_plan);
            return rt::runShardWorker(std::cin, std::cout, cache.get(),
                                      injector.armed() ? &injector
                                                       : nullptr);
        }
        if (cmd == "list")
            return cmdList(args, argv[0]);
        if (cmd == "profile")
            return cmdProfile(args, argv[0]);
        if (cmd == "campaign")
            return cmdCampaign(args, argv[0]);
        if (cmd == "cache")
            return cmdCache(args, argv[0]);
        if (cmd == "compare")
            return cmdCompare(args, argv[0]);
        if (cmd == "coschedule")
            return cmdCoschedule(args, argv[0]);
        std::cerr << "error: unknown command '" << cmd << "'\n";
        usage(argv[0]);
    } catch (const fs::FatalError& e) {
        std::cerr << "error: " << e.what() << "\n";
        return 1;
    } catch (const fs::PanicError& e) {
        std::cerr << "internal error (bug): " << e.what() << "\n";
        return 70;
    }
}

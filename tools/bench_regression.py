#!/usr/bin/env python3
"""Benchmark regression gate: compare a BENCH_*.json against a baseline.

Replaces the fixed speedup floors as the trend check (ROADMAP item): CI
downloads the previous run's uploaded benchmark artifact and warns when
any scenario regressed by more than the threshold relative to it.

Comparison rules, per scenario:
  * metrics named "speedup" (higher is better): warn when
        current < baseline * (1 - threshold)
  * metrics ending in "_wall_ms" (lower is better): warn when
        current > baseline * (1 + threshold)
  * notes named "bit_identical" / "bytes_conserved": warn on any value
    that is not an affirmative "yes" (these are correctness canaries the
    benches themselves enforce; the gate just surfaces them in the diff).

Wall-clock numbers from shared CI runners are noisy, so regressions are
*warnings* (GitHub "::warning::" annotations), not failures — the gate
exits non-zero only on malformed input.  Scenarios present on one side
only are reported and skipped.

Usage:
    bench_regression.py CURRENT.json BASELINE.json [--threshold 0.20]
"""

import argparse
import json
import sys


def load(path):
    try:
        with open(path, encoding="utf-8") as fh:
            doc = json.load(fh)
    except (OSError, json.JSONDecodeError) as exc:
        sys.exit(f"bench_regression: cannot read {path}: {exc}")
    scenarios = doc.get("scenarios")
    if not isinstance(scenarios, dict):
        sys.exit(f"bench_regression: {path} has no 'scenarios' object")
    return doc.get("bench", "?"), scenarios


def warn(message):
    print(f"::warning::{message}")


def compare_scenario(name, cur, base, threshold):
    regressions = 0
    for key, cur_val in cur.items():
        # Correctness canaries need no baseline to judge.
        if key in ("bit_identical", "bytes_conserved"):
            if str(cur_val).lower() != "yes":
                warn(f"{name}: {key} = {cur_val!r} (expected 'yes')")
                regressions += 1
            continue
        if key not in base:
            continue
        base_val = base[key]
        if not isinstance(cur_val, (int, float)) or not isinstance(
            base_val, (int, float)
        ):
            continue
        if key == "speedup" or key.endswith("_speedup"):
            if base_val > 0 and cur_val < base_val * (1.0 - threshold):
                warn(
                    f"{name}: speedup {cur_val:.2f}x is "
                    f"{(1 - cur_val / base_val) * 100:.0f}% below the "
                    f"previous run's {base_val:.2f}x"
                )
                regressions += 1
        elif key.endswith("_wall_ms"):
            if base_val > 0 and cur_val > base_val * (1.0 + threshold):
                warn(
                    f"{name}: {key} {cur_val:.1f} ms is "
                    f"{(cur_val / base_val - 1) * 100:.0f}% above the "
                    f"previous run's {base_val:.1f} ms"
                )
                regressions += 1
    return regressions


def main():
    parser = argparse.ArgumentParser()
    parser.add_argument("current")
    parser.add_argument("baseline")
    parser.add_argument("--threshold", type=float, default=0.20)
    args = parser.parse_args()

    cur_name, current = load(args.current)
    base_name, baseline = load(args.baseline)
    if cur_name != base_name:
        warn(
            f"comparing different benches: {cur_name!r} vs {base_name!r};"
            " artifact names probably drifted"
        )

    regressions = 0
    for name, scenario in current.items():
        if name not in baseline:
            print(f"bench_regression: new scenario {name!r} (no baseline)")
            continue
        regressions += compare_scenario(
            name, scenario, baseline[name], args.threshold
        )
    for name in baseline:
        if name not in current:
            warn(f"scenario {name!r} disappeared from the benchmark")
            regressions += 1

    if regressions:
        print(
            f"bench_regression: {regressions} regression(s) beyond "
            f"{args.threshold:.0%} — see warnings above"
        )
    else:
        print(
            f"bench_regression: {cur_name} within {args.threshold:.0%} "
            "of the previous run"
        )
    return 0


if __name__ == "__main__":
    sys.exit(main())

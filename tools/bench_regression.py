#!/usr/bin/env python3
"""Benchmark regression gate: compare a BENCH_*.json against a baseline.

Replaces the fixed speedup floors as the trend check (ROADMAP item): CI
downloads the previous run's uploaded benchmark artifact and warns when
any scenario regressed by more than the threshold relative to it.

A missing baseline is *informational*, not an error: a bench that has
never run before (e.g. a freshly added BENCH_campaign.json) has nothing
to regress against, so the gate prints the current per-metric table and
exits clean; the artifact this run uploads becomes the next run's
baseline.

Comparison rules, per scenario:
  * metrics named "speedup" (higher is better): warn when
        current < baseline * (1 - threshold)
  * metrics ending in "_wall_ms" (lower is better): warn when
        current > baseline * (1 + threshold)
  * notes named "bit_identical" / "bytes_conserved" /
    "zero_reexecutions" / "all_from_disk" / "journal_nonempty": warn on
    any value that is not an affirmative "yes" (these are correctness
    canaries the benches themselves enforce; the gate just surfaces
    them in the diff).

A per-metric delta table is printed for every scenario so the run log
shows the full trajectory, not only the violations.

Wall-clock numbers from shared CI runners are noisy, so regressions are
*warnings* (GitHub "::warning::" annotations), not failures — the gate
exits non-zero only on malformed input.  Scenarios present on one side
only are reported and skipped.

Usage:
    bench_regression.py CURRENT.json [BASELINE.json] [--threshold 0.20]
"""

import argparse
import json
import os
import sys


def load(path):
    try:
        with open(path, encoding="utf-8") as fh:
            doc = json.load(fh)
    except (OSError, json.JSONDecodeError) as exc:
        sys.exit(f"bench_regression: cannot read {path}: {exc}")
    scenarios = doc.get("scenarios")
    if not isinstance(scenarios, dict):
        sys.exit(f"bench_regression: {path} has no 'scenarios' object")
    return doc.get("bench", "?"), scenarios


def warn(message):
    print(f"::warning::{message}")


def fmt(value):
    if isinstance(value, float):
        return f"{value:.3f}"
    return str(value)


def print_metric_table(name, cur, base=None):
    """Per-metric delta table for one scenario (base may be absent)."""
    rows = []
    for key, cur_val in cur.items():
        base_val = base.get(key) if base else None
        delta = ""
        if (
            isinstance(cur_val, (int, float))
            and isinstance(base_val, (int, float))
            and not isinstance(cur_val, bool)
            and base_val
        ):
            delta = f"{(cur_val / base_val - 1) * 100:+.1f}%"
        rows.append((key, fmt(cur_val),
                     fmt(base_val) if base_val is not None else "-", delta))
    width = max((len(r[0]) for r in rows), default=8)
    print(f"  {name}:")
    header = f"    {'metric':<{width}}  {'current':>12}  {'baseline':>12}  delta"
    print(header)
    for key, cur_s, base_s, delta in rows:
        print(f"    {key:<{width}}  {cur_s:>12}  {base_s:>12}  {delta}")


def check_canaries(name, cur):
    regressions = 0
    for key, cur_val in cur.items():
        if key in (
            "bit_identical",
            "bytes_conserved",
            "zero_reexecutions",
            "all_from_disk",
            "journal_nonempty",
        ):
            if str(cur_val).lower() != "yes":
                warn(f"{name}: {key} = {cur_val!r} (expected 'yes')")
                regressions += 1
    return regressions


def compare_scenario(name, cur, base, threshold):
    regressions = check_canaries(name, cur)
    for key, cur_val in cur.items():
        if key in (
            "bit_identical",
            "bytes_conserved",
            "zero_reexecutions",
            "all_from_disk",
            "journal_nonempty",
        ):
            continue
        if key not in base:
            continue
        base_val = base[key]
        if not isinstance(cur_val, (int, float)) or not isinstance(
            base_val, (int, float)
        ):
            continue
        if key == "speedup" or key.endswith("_speedup"):
            if base_val > 0 and cur_val < base_val * (1.0 - threshold):
                warn(
                    f"{name}: speedup {cur_val:.2f}x is "
                    f"{(1 - cur_val / base_val) * 100:.0f}% below the "
                    f"previous run's {base_val:.2f}x"
                )
                regressions += 1
        elif key.endswith("_wall_ms"):
            if base_val > 0 and cur_val > base_val * (1.0 + threshold):
                warn(
                    f"{name}: {key} {cur_val:.1f} ms is "
                    f"{(cur_val / base_val - 1) * 100:.0f}% above the "
                    f"previous run's {base_val:.1f} ms"
                )
                regressions += 1
    return regressions


def main():
    parser = argparse.ArgumentParser()
    parser.add_argument("current")
    parser.add_argument("baseline", nargs="?")
    parser.add_argument("--threshold", type=float, default=0.20)
    args = parser.parse_args()

    if not os.path.exists(args.current):
        # The bench artifact is entirely absent (step skipped, bench not
        # run on this configuration).  That is a pipeline-shape fact, not
        # a performance regression: report it informationally and exit
        # clean — malformed JSON, by contrast, still fails the gate.
        print(
            f"bench_regression: current artifact {args.current!r} does "
            "not exist; nothing to gate — informational run"
        )
        if args.baseline is not None and os.path.exists(args.baseline):
            base_name, baseline = load(args.baseline)
            print(
                f"bench_regression: previous run of {base_name!r} for "
                "reference:"
            )
            for name, scenario in baseline.items():
                print_metric_table(name, scenario)
        return 0

    cur_name, current = load(args.current)

    if args.baseline is None or not os.path.exists(args.baseline):
        # First run of a new bench: nothing to regress against.  The
        # correctness canaries still apply; metrics print informationally.
        missing = args.baseline or "(none given)"
        print(
            f"bench_regression: no baseline for {cur_name!r} "
            f"({missing}); informational run — current metrics:"
        )
        regressions = 0
        for name, scenario in current.items():
            regressions += check_canaries(name, scenario)
            print_metric_table(name, scenario)
        if regressions:
            print(
                f"bench_regression: {regressions} correctness canary "
                "warning(s) — see above"
            )
        return 0

    base_name, baseline = load(args.baseline)
    if cur_name != base_name:
        warn(
            f"comparing different benches: {cur_name!r} vs {base_name!r};"
            " artifact names probably drifted"
        )

    regressions = 0
    print(f"bench_regression: {cur_name} vs previous run:")
    for name, scenario in current.items():
        if name not in baseline:
            print(f"bench_regression: new scenario {name!r} (no baseline)")
            regressions += check_canaries(name, scenario)
            print_metric_table(name, scenario)
            continue
        print_metric_table(name, scenario, baseline[name])
        regressions += compare_scenario(
            name, scenario, baseline[name], args.threshold
        )
    for name in baseline:
        if name not in current:
            warn(f"scenario {name!r} disappeared from the benchmark")
            regressions += 1

    if regressions:
        print(
            f"bench_regression: {regressions} regression(s) beyond "
            f"{args.threshold:.0%} — see warnings above"
        )
    else:
        print(
            f"bench_regression: {cur_name} within {args.threshold:.0%} "
            "of the previous run"
        )
    return 0


if __name__ == "__main__":
    sys.exit(main())

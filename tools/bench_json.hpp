#ifndef FINGRAV_TOOLS_BENCH_JSON_HPP_
#define FINGRAV_TOOLS_BENCH_JSON_HPP_

/**
 * @file
 * Minimal JSON emitter for benchmark reports (BENCH_*.json).
 *
 * Benchmarks record wall times and work counters per scenario so the perf
 * trajectory of the hot paths is tracked across PRs (docs/PERFORMANCE.md
 * describes the schema).  Deliberately dependency-free: scenarios are
 * flat name → number/string metric maps.
 *
 * Usage:
 *   tools::BenchReport report("hotpath");
 *   auto& s = report.scenario("idle_heavy_long_window");
 *   s.metric("quantum_wall_ms", 12.5);
 *   s.metric("slices", std::int64_t{40000});
 *   s.note("mode", "event-driven");
 *   report.write("BENCH_hotpath.json");
 */

#include <cstdint>
#include <cstdio>
#include <fstream>
#include <sstream>
#include <string>
#include <utility>
#include <vector>

namespace fingrav::tools {

namespace detail {

inline std::string
jsonEscape(const std::string& in)
{
    std::string out;
    out.reserve(in.size() + 2);
    for (const char c : in) {
        switch (c) {
          case '"':
            out += "\\\"";
            break;
          case '\\':
            out += "\\\\";
            break;
          case '\n':
            out += "\\n";
            break;
          case '\t':
            out += "\\t";
            break;
          default:
            if (static_cast<unsigned char>(c) < 0x20) {
                char buf[8];
                std::snprintf(buf, sizeof buf, "\\u%04x", c);
                out += buf;
            } else {
                out += c;
            }
        }
    }
    return out;
}

}  // namespace detail

/** One benchmark report, serialized as a JSON object of scenarios. */
class BenchReport {
  public:
    /** Flat metric map of one scenario. */
    class Scenario {
      public:
        explicit Scenario(std::string name) : name_(std::move(name)) {}

        void
        metric(const std::string& key, double value)
        {
            std::ostringstream oss;
            oss.precision(6);
            oss << std::fixed << value;
            entries_.emplace_back(key, oss.str());
        }

        void
        metric(const std::string& key, std::int64_t value)
        {
            entries_.emplace_back(key, std::to_string(value));
        }

        void
        metric(const std::string& key, std::uint64_t value)
        {
            entries_.emplace_back(key, std::to_string(value));
        }

        void
        note(const std::string& key, const std::string& value)
        {
            entries_.emplace_back(
                key, "\"" + detail::jsonEscape(value) + "\"");
        }

        const std::string& name() const { return name_; }

      private:
        friend class BenchReport;
        std::string name_;
        /** key → pre-serialized JSON value, in insertion order. */
        std::vector<std::pair<std::string, std::string>> entries_;
    };

    explicit BenchReport(std::string name) : name_(std::move(name)) {}

    /** Scenario by name (created on first use). */
    Scenario&
    scenario(const std::string& name)
    {
        for (auto& s : scenarios_) {
            if (s.name() == name)
                return s;
        }
        scenarios_.emplace_back(name);
        return scenarios_.back();
    }

    /** Serialize the report. */
    std::string
    toJson() const
    {
        std::ostringstream os;
        os << "{\n  \"bench\": \"" << detail::jsonEscape(name_)
           << "\",\n  \"scenarios\": {";
        for (std::size_t i = 0; i < scenarios_.size(); ++i) {
            const auto& s = scenarios_[i];
            os << (i ? "," : "") << "\n    \""
               << detail::jsonEscape(s.name_) << "\": {";
            for (std::size_t j = 0; j < s.entries_.size(); ++j) {
                os << (j ? "," : "") << "\n      \""
                   << detail::jsonEscape(s.entries_[j].first)
                   << "\": " << s.entries_[j].second;
            }
            os << "\n    }";
        }
        os << "\n  }\n}\n";
        return os.str();
    }

    /** Write the report to `path`; returns false on I/O failure. */
    bool
    write(const std::string& path) const
    {
        std::ofstream out(path);
        if (!out)
            return false;
        out << toJson();
        return static_cast<bool>(out);
    }

  private:
    std::string name_;
    std::vector<Scenario> scenarios_;
};

}  // namespace fingrav::tools

#endif  // FINGRAV_TOOLS_BENCH_JSON_HPP_

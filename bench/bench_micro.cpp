/**
 * @file
 * Micro-benchmarks (google-benchmark) of the methodology's moving parts:
 * the cost of FinGraV itself, independent of what it measures.
 *
 * Covers: the modal-cluster binning kernel, degree-4 trend fitting,
 * timestamp translation, power-logger slice accounting, simulated-device
 * stepping throughput, and a small end-to-end campaign.
 */

#include <cstdint>
#include <vector>

#include <benchmark/benchmark.h>

#include "analysis/report.hpp"
#include "fingrav/profiler.hpp"
#include "fingrav/time_sync.hpp"
#include "kernels/workloads.hpp"
#include "sim/clock_domain.hpp"
#include "sim/power_logger.hpp"
#include "support/histogram.hpp"
#include "support/polyfit.hpp"
#include "support/rng.hpp"
#include "support/time_types.hpp"

namespace an = fingrav::analysis;
namespace fc = fingrav::core;
namespace fk = fingrav::kernels;
namespace fs = fingrav::support;
namespace sim = fingrav::sim;
using namespace fingrav::support::literals;

namespace {

std::vector<double>
jitteredTimes(std::size_t n)
{
    fs::Rng rng(42);
    std::vector<double> v;
    v.reserve(n);
    for (std::size_t i = 0; i < n; ++i) {
        v.push_back(100.0 * rng.lognormalJitter(0.01) *
                    (rng.bernoulli(0.06) ? rng.uniform(1.1, 1.35) : 1.0));
    }
    return v;
}

}  // namespace

static void
BM_ModalCluster(benchmark::State& state)
{
    const auto v = jitteredTimes(static_cast<std::size_t>(state.range(0)));
    for (auto _ : state) {
        benchmark::DoNotOptimize(fs::modalCluster(v, 0.05));
    }
    state.SetComplexityN(state.range(0));
}
BENCHMARK(BM_ModalCluster)->Range(64, 16384)->Complexity();

static void
BM_PolyFitDegree4(benchmark::State& state)
{
    fs::Rng rng(7);
    const auto n = static_cast<std::size_t>(state.range(0));
    std::vector<double> xs(n);
    std::vector<double> ys(n);
    for (std::size_t i = 0; i < n; ++i) {
        xs[i] = rng.uniform(0.0, 100.0);
        ys[i] = 600.0 + 0.5 * xs[i] + rng.normal(0.0, 3.0);
    }
    for (auto _ : state) {
        benchmark::DoNotOptimize(fs::fitPolynomial(xs, ys, 4));
    }
}
BENCHMARK(BM_PolyFitDegree4)->Range(64, 16384);

static void
BM_TimestampTranslation(benchmark::State& state)
{
    an::Campaign campaign(1);
    auto sync = fc::TimeSync::calibrate(campaign.host());
    std::int64_t counter = 123456789;
    for (auto _ : state) {
        benchmark::DoNotOptimize(sync.gpuCounterToCpuNs(counter));
        counter += 100000;
    }
}
BENCHMARK(BM_TimestampTranslation);

static void
BM_PowerLoggerSlice(benchmark::State& state)
{
    sim::ClockDomain clk(fs::Duration::seconds(5.0), 4.0, 10_ns);
    sim::PowerLogger logger(1_ms, clk, 0.0, fs::Rng(1));
    logger.start(fs::SimTime::fromNanos(0));
    sim::RailPower rails{500.0, 80.0, 60.0, 12.0};
    auto t = fs::SimTime::fromNanos(0);
    for (auto _ : state) {
        logger.addSlice(t, 2_us, rails);
        t += 2_us;
        if (logger.samples().size() > 1000000)
            logger.clearSamples();
    }
    state.SetItemsProcessed(state.iterations());
}
BENCHMARK(BM_PowerLoggerSlice);

static void
BM_DeviceStepBusy(benchmark::State& state)
{
    // Throughput of the fixed-step engine under load: one advanceTo step
    // per iteration (2 us of simulated time with power integration).
    auto cfg = sim::mi300xConfig();
    cfg.logger_noise_w = 0.0;
    sim::Simulation s(cfg, 3, 1);
    auto& dev = s.device(0);
    dev.addLogger(1_ms, 0.0).start(dev.localNow());
    const auto work = fk::makeSquareGemm(8192, cfg)->workAt(1.0);
    auto now = dev.localNow();
    std::uint64_t pending = 0;
    for (auto _ : state) {
        if (pending == 0) {
            for (int i = 0; i < 64; ++i)
                dev.submit(work, now);
            pending = 64;
        }
        now += 2_us;
        dev.advanceTo(now);
        if (dev.idle())
            pending = 0;
    }
    state.SetItemsProcessed(state.iterations());
}
BENCHMARK(BM_DeviceStepBusy);

static void
BM_EndToEndSmallCampaign(benchmark::State& state)
{
    // A complete 9-step FinGraV campaign (reduced run count) per
    // iteration: the real-world cost of profiling one kernel.
    std::uint64_t seed = 100;
    for (auto _ : state) {
        fc::ProfilerOptions opts;
        opts.runs_override = 20;
        opts.collect_extra_runs = false;
        an::Campaign campaign(seed++);
        const auto cfg = campaign.config();
        benchmark::DoNotOptimize(
            campaign.profiler(opts).profile(
                fk::makeSquareGemm(2048, cfg)));
    }
}
BENCHMARK(BM_EndToEndSmallCampaign)->Unit(benchmark::kMillisecond);

BENCHMARK_MAIN();

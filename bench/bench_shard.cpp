/**
 * @file
 * Distributed-sharding benchmark: multi-process campaign placement with
 * bit-identity verification and dispatch-overhead accounting.
 *
 * Two scenarios track the fourth leg of the scaling story (after
 * event-driven stepping, parallel node stepping and campaign-level
 * threading):
 *
 *  1. shard_identity — the nine-kernel Fig. 10 campaign set plus one
 *     background-load scenario executed serially, through
 *     ThreadPoolBackend, and through ShardBackend at 2 and 4 worker
 *     processes (`fingrav_cli --worker` over the codec wire protocol).
 *     Any bitwise divergence between any pair is a hard failure, as is
 *     any spec that did NOT travel over the wire (a quiet in-process
 *     fallback would fake the identity gate).  Wall clocks for every
 *     placement feed the regression gate.
 *
 *  2. dispatch_overhead — the amortization story: the same campaign
 *     set dispatched through ShardBackend at a small and a large run
 *     budget.  Worker spawn + serialization is a fixed per-shard cost,
 *     so its share of the wall clock must shrink as the per-campaign
 *     simulation grows; the bench reports the absolute overhead and
 *     its percentage at both budgets (identity enforced here too).
 *
 * Results go to BENCH_shard.json via tools/bench_json.hpp; CI feeds the
 * file through tools/bench_regression.py (docs/PERFORMANCE.md).
 *
 * Usage: bench_shard [--smoke] [--out PATH] [--worker PATH]
 *   --smoke   reduced run counts (CI)
 *   --out     output JSON path (default BENCH_shard.json)
 *   --worker  fingrav_cli binary (default: next to this executable)
 */

#include <chrono>
#include <cstdint>
#include <iostream>
#include <memory>
#include <string>
#include <vector>

#include "analysis/report.hpp"
#include "fingrav/campaign_runner.hpp"
#include "fingrav/execution_backend.hpp"
#include "fingrav/shard_backend.hpp"
#include "tools/bench_json.hpp"

namespace an = fingrav::analysis;
namespace fc = fingrav::core;
namespace tools = fingrav::tools;

namespace {

std::vector<std::string> g_worker_command;

double
wallMs(const std::chrono::steady_clock::time_point& t0)
{
    const auto t1 = std::chrono::steady_clock::now();
    return std::chrono::duration<double, std::milli>(t1 - t0).count();
}

bool
identicalSets(const std::vector<fc::ProfileSet>& a,
              const std::vector<fc::ProfileSet>& b)
{
    if (a.size() != b.size())
        return false;
    for (std::size_t i = 0; i < a.size(); ++i) {
        if (!fc::identicalProfileSets(a[i], b[i]))
            return false;
    }
    return true;
}

/** Run the set through N worker processes; fails hard on divergence or
 *  on any spec that silently skipped the wire. */
bool
runSharded(const std::vector<fc::ScenarioSpec>& specs,
           const std::vector<fc::ProfileSet>& reference,
           std::size_t shards, double& wall_ms)
{
    fc::ShardOptions opts;
    opts.shards = shards;
    opts.worker_command = g_worker_command;
    auto backend = std::make_shared<fc::ShardBackend>(opts);
    const auto t0 = std::chrono::steady_clock::now();
    const auto results = fc::CampaignRunner(backend).run(specs);
    wall_ms = wallMs(t0);

    if (!identicalSets(reference, results)) {
        std::cerr << "FAIL: " << shards << "-shard results diverged from "
                     "the in-process reference\n";
        return false;
    }
    const auto& stats = backend->lastStats();
    if (stats.remote_specs != specs.size()) {
        std::cerr << "FAIL: only " << stats.remote_specs << "/"
                  << specs.size() << " specs crossed the wire at "
                  << shards << " shards (" << stats.fallback_specs
                  << " fell back; worker: " << g_worker_command.front()
                  << ")\n";
        return false;
    }
    return true;
}

// ---------------------------------------------------------------------------
// Scenario 1: N-shard vs in-process identity (the hard gate)
// ---------------------------------------------------------------------------

bool
runShardIdentity(tools::BenchReport& report, bool smoke)
{
    const auto specs = an::fig10ScenarioSet(smoke ? 20 : 60);

    const auto t0 = std::chrono::steady_clock::now();
    const auto serial = fc::CampaignRunner(1).run(specs);
    const double serial_ms = wallMs(t0);

    const auto t1 = std::chrono::steady_clock::now();
    const auto pooled =
        fc::CampaignRunner(
            std::make_shared<fc::ThreadPoolBackend>(std::size_t{8}))
            .run(specs);
    const double pooled_ms = wallMs(t1);

    bool ok = identicalSets(serial, pooled);
    if (!ok)
        std::cerr << "FAIL: thread-pool results diverged from serial\n";

    double shard2_ms = 0.0;
    double shard4_ms = 0.0;
    ok = runSharded(specs, serial, 2, shard2_ms) && ok;
    ok = runSharded(specs, serial, 4, shard4_ms) && ok;

    auto& s = report.scenario("shard_identity");
    s.note("description",
           "Fig. 10 set + contended scenario: serial vs thread pool vs "
           "2/4 worker processes, bitwise identity enforced");
    s.metric("campaigns", static_cast<std::int64_t>(specs.size()));
    s.metric("runs_per_campaign",
             static_cast<std::int64_t>(*specs.front().opts.runs_override));
    s.metric("serial_wall_ms", serial_ms);
    s.metric("threadpool_wall_ms", pooled_ms);
    s.metric("shard2_wall_ms", shard2_ms);
    s.metric("shard4_wall_ms", shard4_ms);
    s.metric("shard4_speedup",
             shard4_ms > 0.0 ? serial_ms / shard4_ms : 0.0);
    s.note("bit_identical", ok ? "yes" : "NO");

    std::cout << "shard_identity: serial " << serial_ms
              << " ms, thread pool " << pooled_ms << " ms, 2-shard "
              << shard2_ms << " ms, 4-shard " << shard4_ms
              << " ms, bit-identical: " << (ok ? "yes" : "NO") << "\n";
    return ok;
}

// ---------------------------------------------------------------------------
// Scenario 2: dispatch-overhead amortization
// ---------------------------------------------------------------------------

bool
runDispatchOverhead(tools::BenchReport& report, bool smoke)
{
    const std::size_t small_runs = smoke ? 4 : 8;
    const std::size_t large_runs = smoke ? 24 : 80;
    bool ok = true;

    double small_overhead_pct = 0.0;
    double large_overhead_pct = 0.0;
    double small_overhead_ms = 0.0;
    double large_overhead_ms = 0.0;

    auto& s = report.scenario("dispatch_overhead");
    for (const bool large : {false, true}) {
        const auto specs = an::fig10ScenarioSet(large ? large_runs : small_runs);

        // The 2-thread pool is the placement-matched in-process
        // reference for the 2-worker dispatch.
        const auto t0 = std::chrono::steady_clock::now();
        const auto inproc =
            fc::CampaignRunner(
                std::make_shared<fc::ThreadPoolBackend>(std::size_t{2}))
                .run(specs);
        const double inproc_ms = wallMs(t0);

        double shard_ms = 0.0;
        ok = runSharded(specs, inproc, 2, shard_ms) && ok;

        const double overhead_ms = shard_ms - inproc_ms;
        const double overhead_pct =
            inproc_ms > 0.0 ? overhead_ms / inproc_ms * 100.0 : 0.0;
        if (large) {
            large_overhead_ms = overhead_ms;
            large_overhead_pct = overhead_pct;
        } else {
            small_overhead_ms = overhead_ms;
            small_overhead_pct = overhead_pct;
        }
        const char* tag = large ? "large" : "small";
        s.metric(std::string(tag) + "_runs",
                 static_cast<std::int64_t>(large ? large_runs : small_runs));
        s.metric(std::string(tag) + "_inproc_wall_ms", inproc_ms);
        s.metric(std::string(tag) + "_shard_wall_ms", shard_ms);
        s.metric(std::string(tag) + "_overhead_ms", overhead_ms);
        s.metric(std::string(tag) + "_overhead_pct", overhead_pct);
    }
    s.note("description",
           "2-worker dispatch vs 2-thread in-process at small and large "
           "run budgets: fixed spawn+codec cost amortizes as campaigns "
           "grow");
    s.note("bit_identical", ok ? "yes" : "NO");

    std::cout << "dispatch_overhead: small-budget overhead "
              << small_overhead_ms << " ms (" << small_overhead_pct
              << " %), large-budget overhead " << large_overhead_ms
              << " ms (" << large_overhead_pct
              << " %), bit-identical: " << (ok ? "yes" : "NO") << "\n";
    return ok;
}

}  // namespace

int
main(int argc, char** argv)
{
    bool smoke = false;
    std::string out_path = "BENCH_shard.json";
    g_worker_command = fc::defaultWorkerCommand(argv[0]);
    for (int i = 1; i < argc; ++i) {
        const std::string arg = argv[i];
        if (arg == "--smoke") {
            smoke = true;
        } else if (arg == "--out" && i + 1 < argc) {
            out_path = argv[++i];
        } else if (arg == "--worker" && i + 1 < argc) {
            g_worker_command = {argv[++i], "--worker"};
        } else {
            std::cerr << "usage: bench_shard [--smoke] [--out PATH] "
                         "[--worker PATH]\n";
            return 2;
        }
    }

    tools::BenchReport report("shard");
    bool ok = true;
    ok = runShardIdentity(report, smoke) && ok;
    ok = runDispatchOverhead(report, smoke) && ok;

    if (!report.write(out_path)) {
        std::cerr << "bench_shard: cannot write " << out_path << "\n";
        return 1;
    }
    std::cout << "wrote " << out_path << "\n";
    if (!ok) {
        std::cerr << "bench_shard: FAILED (divergence or specs that "
                     "never crossed the wire)\n";
        return 1;
    }
    return 0;
}

/**
 * @file
 * Distributed-sharding benchmark: multi-process campaign placement with
 * bit-identity verification and dispatch-overhead accounting.
 *
 * Three scenarios track the fourth leg of the scaling story (after
 * event-driven stepping, parallel node stepping and campaign-level
 * threading):
 *
 *  1. shard_identity — the nine-kernel Fig. 10 campaign set plus one
 *     background-load scenario executed serially, through
 *     ThreadPoolBackend, and through ShardBackend at 2 and 4 worker
 *     processes (`fingrav_cli --worker` over the codec wire protocol).
 *     Any bitwise divergence between any pair is a hard failure, as is
 *     any spec that did NOT travel over the wire (a quiet in-process
 *     fallback would fake the identity gate).  Wall clocks for every
 *     placement feed the regression gate.
 *
 *  2. dispatch_overhead — the amortization story: the same campaign
 *     set dispatched through ShardBackend at a small and a large run
 *     budget.  Worker spawn + serialization is a fixed per-shard cost,
 *     so its share of the wall clock must shrink as the per-campaign
 *     simulation grows; the bench reports the absolute overhead and
 *     its percentage at both budgets (identity enforced here too).
 *
 *  3. degraded_identity — the supervision gate: the same campaign set
 *     with a scripted worker kill mid-shard (--fault-plan machinery,
 *     support/fault_injector.hpp).  The supervisor must recover via a
 *     retry on a fresh worker; any divergence from the clean reference
 *     OR an empty degradation journal (a silent recovery) is a hard
 *     failure.  The degraded wall clock tracks the supervision cost.
 *
 *  4. codec_throughput — the wire cost itself: a large ProfileSet
 *     through the columnar codec, reporting encode/decode MB/s and the
 *     heap allocations one decode performs (counted by a bench-local
 *     global operator new) — the zero-copy column decode should stay
 *     at a handful of vector allocations, not one per point.
 *
 * Results go to BENCH_shard.json via tools/bench_json.hpp; CI feeds the
 * file through tools/bench_regression.py (docs/PERFORMANCE.md).
 *
 * Usage: bench_shard [--smoke] [--out PATH] [--worker PATH]
 *   --smoke   reduced run counts (CI)
 *   --out     output JSON path (default BENCH_shard.json)
 *   --worker  fingrav_cli binary (default: next to this executable)
 */

#include <atomic>
#include <chrono>
#include <cstdint>
#include <cstdlib>
#include <iostream>
#include <memory>
#include <new>
#include <string>
#include <vector>

#include "fingrav/campaign_runner.hpp"
#include "fingrav/codec.hpp"
#include "fingrav/execution_backend.hpp"
#include "fingrav/profile.hpp"
#include "fingrav/shard_backend.hpp"
#include "sim/power_logger.hpp"
#include "support/fault_injector.hpp"
#include "tests/test_fixtures.hpp"
#include "tools/bench_json.hpp"

namespace fc = fingrav::core;
namespace fsup = fingrav::support;
namespace sim = fingrav::sim;
namespace tools = fingrav::tools;

namespace {

/** Heap-allocation counter behind the replaced global operator new. */
std::atomic<std::uint64_t> g_alloc_count{0};

}  // namespace

// Bench-local allocation accounting: the minimal replaceable pair.  The
// aligned overloads fall through to the default implementation, which is
// fine — the codec's column vectors use the plain form.
void*
operator new(std::size_t size)
{
    g_alloc_count.fetch_add(1, std::memory_order_relaxed);
    if (void* p = std::malloc(size ? size : 1))
        return p;
    throw std::bad_alloc();
}

void*
operator new[](std::size_t size)
{
    return ::operator new(size);
}

void
operator delete(void* p) noexcept
{
    std::free(p);
}

void
operator delete[](void* p) noexcept
{
    std::free(p);
}

void
operator delete(void* p, std::size_t) noexcept
{
    std::free(p);
}

void
operator delete[](void* p, std::size_t) noexcept
{
    std::free(p);
}

namespace {

std::vector<std::string> g_worker_command;

double
wallMs(const std::chrono::steady_clock::time_point& t0)
{
    const auto t1 = std::chrono::steady_clock::now();
    return std::chrono::duration<double, std::milli>(t1 - t0).count();
}

using fingrav::testing::identicalSets;

/** Run the set through N worker processes; fails hard on divergence or
 *  on any spec that silently skipped the wire. */
bool
runSharded(const std::vector<fc::ScenarioSpec>& specs,
           const std::vector<fc::ProfileSet>& reference,
           std::size_t shards, double& wall_ms)
{
    fc::ShardOptions opts;
    opts.shards = shards;
    opts.worker_command = g_worker_command;
    auto backend = std::make_shared<fc::ShardBackend>(opts);
    const auto t0 = std::chrono::steady_clock::now();
    const auto results = fc::CampaignRunner(backend).run(specs);
    wall_ms = wallMs(t0);

    if (!identicalSets(reference, results)) {
        std::cerr << "FAIL: " << shards << "-shard results diverged from "
                     "the in-process reference\n";
        return false;
    }
    const auto& stats = backend->lastStats();
    if (stats.remote_specs != specs.size()) {
        std::cerr << "FAIL: only " << stats.remote_specs << "/"
                  << specs.size() << " specs crossed the wire at "
                  << shards << " shards (" << stats.fallback_specs
                  << " fell back; worker: " << g_worker_command.front()
                  << ")\n";
        return false;
    }
    return true;
}

// ---------------------------------------------------------------------------
// Scenario 1: N-shard vs in-process identity (the hard gate)
// ---------------------------------------------------------------------------

bool
runShardIdentity(tools::BenchReport& report, bool smoke)
{
    const auto specs = fingrav::testing::fig10Specs(smoke ? 20 : 60);

    const auto t0 = std::chrono::steady_clock::now();
    const auto serial = fc::CampaignRunner(1).run(specs);
    const double serial_ms = wallMs(t0);

    const auto t1 = std::chrono::steady_clock::now();
    const auto pooled =
        fc::CampaignRunner(
            std::make_shared<fc::ThreadPoolBackend>(std::size_t{8}))
            .run(specs);
    const double pooled_ms = wallMs(t1);

    bool ok = identicalSets(serial, pooled);
    if (!ok)
        std::cerr << "FAIL: thread-pool results diverged from serial\n";

    double shard2_ms = 0.0;
    double shard4_ms = 0.0;
    ok = runSharded(specs, serial, 2, shard2_ms) && ok;
    ok = runSharded(specs, serial, 4, shard4_ms) && ok;

    auto& s = report.scenario("shard_identity");
    s.note("description",
           "Fig. 10 set + contended scenario: serial vs thread pool vs "
           "2/4 worker processes, bitwise identity enforced");
    s.metric("campaigns", static_cast<std::int64_t>(specs.size()));
    s.metric("runs_per_campaign",
             static_cast<std::int64_t>(*specs.front().opts.runs_override));
    s.metric("serial_wall_ms", serial_ms);
    s.metric("threadpool_wall_ms", pooled_ms);
    s.metric("shard2_wall_ms", shard2_ms);
    s.metric("shard4_wall_ms", shard4_ms);
    s.metric("shard4_speedup",
             shard4_ms > 0.0 ? serial_ms / shard4_ms : 0.0);
    s.note("bit_identical", ok ? "yes" : "NO");

    std::cout << "shard_identity: serial " << serial_ms
              << " ms, thread pool " << pooled_ms << " ms, 2-shard "
              << shard2_ms << " ms, 4-shard " << shard4_ms
              << " ms, bit-identical: " << (ok ? "yes" : "NO") << "\n";
    return ok;
}

// ---------------------------------------------------------------------------
// Scenario 2: dispatch-overhead amortization
// ---------------------------------------------------------------------------

bool
runDispatchOverhead(tools::BenchReport& report, bool smoke)
{
    const std::size_t small_runs = smoke ? 4 : 8;
    const std::size_t large_runs = smoke ? 24 : 80;
    bool ok = true;

    double small_overhead_pct = 0.0;
    double large_overhead_pct = 0.0;
    double small_overhead_ms = 0.0;
    double large_overhead_ms = 0.0;

    auto& s = report.scenario("dispatch_overhead");
    for (const bool large : {false, true}) {
        const auto specs =
            fingrav::testing::fig10Specs(large ? large_runs : small_runs);

        // The 2-thread pool is the placement-matched in-process
        // reference for the 2-worker dispatch.
        const auto t0 = std::chrono::steady_clock::now();
        const auto inproc =
            fc::CampaignRunner(
                std::make_shared<fc::ThreadPoolBackend>(std::size_t{2}))
                .run(specs);
        const double inproc_ms = wallMs(t0);

        double shard_ms = 0.0;
        ok = runSharded(specs, inproc, 2, shard_ms) && ok;

        const double overhead_ms = shard_ms - inproc_ms;
        const double overhead_pct =
            inproc_ms > 0.0 ? overhead_ms / inproc_ms * 100.0 : 0.0;
        if (large) {
            large_overhead_ms = overhead_ms;
            large_overhead_pct = overhead_pct;
        } else {
            small_overhead_ms = overhead_ms;
            small_overhead_pct = overhead_pct;
        }
        const char* tag = large ? "large" : "small";
        s.metric(std::string(tag) + "_runs",
                 static_cast<std::int64_t>(large ? large_runs : small_runs));
        s.metric(std::string(tag) + "_inproc_wall_ms", inproc_ms);
        s.metric(std::string(tag) + "_shard_wall_ms", shard_ms);
        s.metric(std::string(tag) + "_overhead_ms", overhead_ms);
        s.metric(std::string(tag) + "_overhead_pct", overhead_pct);
    }
    s.note("description",
           "2-worker dispatch vs 2-thread in-process at small and large "
           "run budgets: fixed spawn+codec cost amortizes as campaigns "
           "grow");
    s.note("bit_identical", ok ? "yes" : "NO");

    std::cout << "dispatch_overhead: small-budget overhead "
              << small_overhead_ms << " ms (" << small_overhead_pct
              << " %), large-budget overhead " << large_overhead_ms
              << " ms (" << large_overhead_pct
              << " %), bit-identical: " << (ok ? "yes" : "NO") << "\n";
    return ok;
}

// ---------------------------------------------------------------------------
// Scenario 3: bit-identity under injected faults (the supervision gate)
// ---------------------------------------------------------------------------

bool
runDegradedIdentity(tools::BenchReport& report, bool smoke)
{
    const auto specs = fingrav::testing::fig10Specs(smoke ? 8 : 24);

    const auto t0 = std::chrono::steady_clock::now();
    const auto serial = fc::CampaignRunner(1).run(specs);
    const double clean_ms = wallMs(t0);

    // Shard 0's worker delivers one result and is then killed; the
    // supervisor must redispatch the forfeited slots to a fresh worker.
    fc::ShardOptions opts;
    opts.shards = 2;
    opts.worker_command = g_worker_command;
    opts.backoff_base_ms = 1;
    opts.fault_plan = fsup::FaultPlan::parse("kill:shard=0,frame=1");
    auto backend = std::make_shared<fc::ShardBackend>(opts);
    const auto t1 = std::chrono::steady_clock::now();
    const auto degraded = fc::CampaignRunner(backend).run(specs);
    const double degraded_ms = wallMs(t1);

    const auto& stats = backend->lastStats();
    bool ok = true;
    if (!identicalSets(serial, degraded)) {
        std::cerr << "FAIL: degraded run diverged from the clean "
                     "reference\n";
        ok = false;
    }
    if (stats.journal.empty()) {
        std::cerr << "FAIL: degraded run left an empty journal — the "
                     "injected worker kill was recovered silently\n";
        ok = false;
    }
    if (stats.remote_specs != specs.size()) {
        std::cerr << "FAIL: only " << stats.remote_specs << "/"
                  << specs.size()
                  << " specs crossed the wire; the retry did not place "
                     "the forfeited slots remotely\n";
        ok = false;
    }

    auto& s = report.scenario("degraded_identity");
    s.note("description",
           "Fig. 10 set under an injected mid-shard worker kill: retry "
           "on a fresh worker, bitwise identity and a non-empty "
           "degradation journal enforced");
    s.metric("campaigns", static_cast<std::int64_t>(specs.size()));
    s.metric("clean_wall_ms", clean_ms);
    s.metric("degraded_wall_ms", degraded_ms);
    s.metric("retries", static_cast<std::int64_t>(stats.retries));
    s.metric("journal_events",
             static_cast<std::int64_t>(stats.journal.size()));
    s.note("bit_identical", ok ? "yes" : "NO");
    s.note("journal_nonempty", stats.journal.empty() ? "NO" : "yes");

    std::cout << "degraded_identity: clean " << clean_ms
              << " ms, degraded " << degraded_ms << " ms, "
              << stats.retries << " retry round(s), "
              << stats.journal.size()
              << " journal event(s), bit-identical: "
              << (ok ? "yes" : "NO") << "\n";
    return ok;
}

// ---------------------------------------------------------------------------
// Scenario 4: wire-codec throughput and decode allocation economy
// ---------------------------------------------------------------------------

/** Synthetic profile exercising every column (mixed contention, spread
 *  rails) — wire-shaped data without paying for a campaign. */
fc::PowerProfile
syntheticProfile(std::size_t n, fc::ProfileKind kind, std::uint64_t seed)
{
    std::uint64_t state = seed | 1;
    const auto next = [&state] {
        state ^= state >> 12;
        state ^= state << 25;
        state ^= state >> 27;
        return state * 0x2545F4914F6CDD1DULL;
    };
    const auto uniform = [&next](double lo, double hi) {
        return lo + static_cast<double>(next() >> 11) * 0x1.0p-53 * (hi - lo);
    };

    fc::PowerProfile prof("wire", kind);
    prof.reserve(n);
    for (std::size_t i = 0; i < n; ++i) {
        sim::PowerSample s;
        s.gpu_timestamp = static_cast<std::int64_t>(i * 113);
        s.total_w = uniform(80.0, 760.0);
        s.xcd_w = uniform(30.0, 500.0);
        s.iod_w = uniform(10.0, 120.0);
        s.hbm_w = uniform(20.0, 140.0);
        prof.addRow(uniform(0.0, 900.0), uniform(0.0, 1.0),
                    uniform(0.0, 50'000.0), s, i % 60, i % 24,
                    (next() & 3) == 0);
    }
    return prof;
}

bool
runCodecThroughput(tools::BenchReport& report, bool smoke)
{
    const std::size_t n = smoke ? 40'000 : 400'000;
    const int reps = smoke ? 3 : 5;

    fc::ProfileSet set;
    set.label = "wire";
    set.sse = syntheticProfile(n / 8, fc::ProfileKind::kSse, 61);
    set.ssp = syntheticProfile(n / 2, fc::ProfileKind::kSsp, 67);
    set.timeline = syntheticProfile(n, fc::ProfileKind::kTimeline, 71);
    const std::uint64_t points =
        set.sse.size() + set.ssp.size() + set.timeline.size();

    std::vector<std::uint8_t> bytes;
    double enc_ms = 0.0;
    for (int r = 0; r < reps; ++r) {
        const auto t0 = std::chrono::steady_clock::now();
        bytes = fc::codec::encode(set);
        const double ms = wallMs(t0);
        if (r == 0 || ms < enc_ms)
            enc_ms = ms;
    }

    fc::ProfileSet decoded;
    double dec_ms = 0.0;
    std::uint64_t dec_allocs = 0;
    for (int r = 0; r < reps; ++r) {
        const std::uint64_t a0 =
            g_alloc_count.load(std::memory_order_relaxed);
        const auto t0 = std::chrono::steady_clock::now();
        decoded = fc::codec::decodeProfileSet(bytes);
        const double ms = wallMs(t0);
        const std::uint64_t allocs =
            g_alloc_count.load(std::memory_order_relaxed) - a0;
        if (r == 0 || ms < dec_ms) {
            dec_ms = ms;
            dec_allocs = allocs;
        }
    }

    const bool identical = fc::identicalProfileSets(decoded, set);
    const double mb = static_cast<double>(bytes.size()) / 1.0e6;
    const double enc_mbps = enc_ms > 0.0 ? mb / (enc_ms / 1.0e3) : 0.0;
    const double dec_mbps = dec_ms > 0.0 ? mb / (dec_ms / 1.0e3) : 0.0;
    const double allocs_per_kpoint =
        points > 0 ? static_cast<double>(dec_allocs) * 1.0e3 /
                         static_cast<double>(points)
                   : 0.0;

    auto& s = report.scenario("codec_throughput");
    s.note("description",
           "columnar ProfileSet wire codec: encode/decode MB/s and heap "
           "allocations per decode (zero-copy column adoption)");
    s.metric("points", points);
    s.metric("payload_bytes", static_cast<std::uint64_t>(bytes.size()));
    s.metric("encode_wall_ms", enc_ms);
    s.metric("decode_wall_ms", dec_ms);
    s.metric("encode_mb_per_s", enc_mbps);
    s.metric("decode_mb_per_s", dec_mbps);
    s.metric("decode_allocs", dec_allocs);
    s.metric("decode_allocs_per_1k_points", allocs_per_kpoint);
    s.note("bit_identical", identical ? "yes" : "NO");

    std::cout << "codec_throughput: " << mb << " MB payload, encode "
              << enc_mbps << " MB/s, decode " << dec_mbps << " MB/s, "
              << dec_allocs << " allocations per decode ("
              << allocs_per_kpoint << " per 1k points), bit-identical: "
              << (identical ? "yes" : "NO") << "\n";
    if (!identical)
        std::cerr << "FAIL: codec round trip diverged from the source "
                     "set\n";
    return identical;
}

}  // namespace

int
main(int argc, char** argv)
{
    bool smoke = false;
    std::string out_path = "BENCH_shard.json";
    g_worker_command = fc::defaultWorkerCommand(argv[0]);
    for (int i = 1; i < argc; ++i) {
        const std::string arg = argv[i];
        if (arg == "--smoke") {
            smoke = true;
        } else if (arg == "--out" && i + 1 < argc) {
            out_path = argv[++i];
        } else if (arg == "--worker" && i + 1 < argc) {
            g_worker_command = {argv[++i], "--worker"};
        } else {
            std::cerr << "usage: bench_shard [--smoke] [--out PATH] "
                         "[--worker PATH]\n";
            return 2;
        }
    }

    tools::BenchReport report("shard");
    bool ok = true;
    ok = runShardIdentity(report, smoke) && ok;
    ok = runDispatchOverhead(report, smoke) && ok;
    ok = runDegradedIdentity(report, smoke) && ok;
    ok = runCodecThroughput(report, smoke) && ok;

    if (!report.write(out_path)) {
        std::cerr << "bench_shard: cannot write " << out_path << "\n";
        return 1;
    }
    std::cout << "wrote " << out_path << "\n";
    if (!ok) {
        std::cerr << "bench_shard: FAILED (divergence or specs that "
                     "never crossed the wire)\n";
        return 1;
    }
    return 0;
}

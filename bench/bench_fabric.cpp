/**
 * @file
 * Shared-fabric contention + parallel node stepping benchmark.
 *
 * Two scenarios track the node-level machinery added with the NodeFabric
 * arbiter (docs/ARCHITECTURE.md):
 *
 *  1. contended_pair — two independent 512 MB all-reduces on a 2-GPU
 *     node, back-to-back vs concurrent.  Reports the fair-share stretch
 *     (contended/solo latency) and verifies conservation of transferred
 *     bytes (allocated bandwidth x time is payload-invariant).  Hard
 *     failure if the contended pair is NOT slower — the coupling this
 *     bench exists to track would be dead.
 *
 *  2. parallel_stepping — an 8-GPU campaign of contended collectives
 *     plus per-device compute under power logging, advanced serially and
 *     with the thread-pool path.  Wall times and speedup are reported;
 *     any output divergence (execution logs or power samples) is a hard
 *     failure, since the parallel path is only admissible bit-identical.
 *
 * Results go to BENCH_fabric.json via tools/bench_json.hpp; CI uploads
 * the file so the trajectory is tracked (docs/PERFORMANCE.md).
 *
 * Usage: bench_fabric [--smoke] [--out PATH]
 *   --smoke   reduced repetitions (CI); numbers reported, not judged
 *   --out     output JSON path (default BENCH_fabric.json)
 */

#include <chrono>
#include <cstdint>
#include <iostream>
#include <string>
#include <thread>
#include <vector>

#include "kernels/collective.hpp"
#include "kernels/workloads.hpp"
#include "runtime/host_runtime.hpp"
#include "sim/machine_config.hpp"
#include "sim/power_logger.hpp"
#include "sim/simulation.hpp"
#include "support/time_types.hpp"
#include "tools/bench_json.hpp"

namespace fk = fingrav::kernels;
namespace fs = fingrav::support;
namespace rt = fingrav::runtime;
namespace sim = fingrav::sim;
namespace tools = fingrav::tools;

namespace {

double
wallMs(const std::chrono::steady_clock::time_point& t0)
{
    const auto t1 = std::chrono::steady_clock::now();
    return std::chrono::duration<double, std::milli>(t1 - t0).count();
}

// ---------------------------------------------------------------------------
// Scenario 1: contended all-reduce pair on a 2-GPU node
// ---------------------------------------------------------------------------

bool
runContendedPair(tools::BenchReport& report)
{
    auto cfg = sim::mi300xConfig();
    cfg.node_gpus = 2;
    const fk::CollectiveKernel ar(fk::CollectiveOp::kAllReduce,
                                  512LL * 1000 * 1000, cfg);
    const auto work = ar.workAt(1.0);
    const double u = work.util.fabric_bw;
    const auto t0 = fs::SimTime::fromNanos(1000);
    const auto limit = t0 + fs::Duration::seconds(10.0);

    auto duration_ns = [](const sim::GpuDevice& dev) {
        const auto& e = dev.executionLog().back();
        return (e.end - e.start).nanos();
    };

    // Back-to-back.
    sim::Simulation solo(cfg, 7, 2);
    auto first = work;
    first.fabric_group = solo.fabric().allocGroup();
    solo.device(0).submit(first, t0);
    solo.advanceAllUntilIdle(limit);
    auto second = work;
    second.fabric_group = solo.fabric().allocGroup();
    solo.device(1).submit(second, solo.device(0).localNow());
    solo.advanceAllUntilIdle(limit);
    const double solo_us =
        static_cast<double>(duration_ns(solo.device(0))) * 1e-3;

    // Concurrent.
    sim::Simulation pair(cfg, 7, 2);
    auto x = work;
    x.fabric_group = pair.fabric().allocGroup();
    auto y = work;
    y.fabric_group = pair.fabric().allocGroup();
    pair.device(0).submit(x, t0);
    pair.device(1).submit(y, t0);
    pair.advanceAllUntilIdle(limit);
    const double cont_us =
        static_cast<double>(duration_ns(pair.device(0))) * 1e-3;

    const double stretch = cont_us / solo_us;
    // Conservation: share x time must match the uncontended transfer.
    const double bytes_ratio =
        (u / std::max(1.0, 2.0 * u) * cont_us) / (u * solo_us);
    const bool conserved =
        bytes_ratio > 0.92 && bytes_ratio < 1.08;
    const bool slower = stretch > 1.2;

    auto& s = report.scenario("contended_pair");
    s.metric("solo_us", solo_us);
    s.metric("contended_us", cont_us);
    s.metric("stretch", stretch);
    s.metric("fabric_demand_each", u);
    s.metric("bytes_ratio", bytes_ratio);
    s.note("bytes_conserved", conserved ? "yes" : "no");
    s.note("contention_live", slower ? "yes" : "no");

    std::cout << "contended_pair: solo " << solo_us << " us, contended "
              << cont_us << " us, stretch " << stretch
              << (conserved ? ", bytes conserved" : ", BYTES NOT CONSERVED")
              << "\n";
    return slower && conserved;
}

// ---------------------------------------------------------------------------
// Scenario 2: serial vs parallel advanceAllTo on an 8-GPU campaign
// ---------------------------------------------------------------------------

struct CampaignResult {
    double wall_ms = 0.0;
    std::vector<sim::SampleColumns> samples;
    std::vector<std::vector<sim::GpuDevice::ExecutionRecord>> logs;
};

CampaignResult
runCampaign(std::size_t threads, int rounds)
{
    auto cfg = sim::mi300xConfig();
    cfg.advance_threads = threads;
    const auto t0 = std::chrono::steady_clock::now();
    sim::Simulation s(cfg, 99, 0);  // full 8-GPU node
    rt::HostRuntime host(s, s.forkRng(1));

    const fk::CollectiveKernel big(fk::CollectiveOp::kAllReduce,
                                   512LL * 1000 * 1000, cfg);
    const fk::CollectiveKernel mid(fk::CollectiveOp::kAllGather,
                                   128LL * 1000 * 1000, cfg);
    const auto gemm = fk::kernelByLabel("CB-8K-GEMM", cfg);

    for (std::size_t d = 0; d < s.deviceCount(); ++d)
        host.startPowerLog(d);
    for (int r = 0; r < rounds; ++r) {
        host.launchOnAllDevices(big.workAt(1.0));
        host.launchOnAllDevices(mid.workAt(0.7), /*queue=*/1);
        for (std::size_t d = 0; d < s.deviceCount(); ++d)
            host.launch(gemm->workAt(1.0), d, /*queue=*/2);
        host.sleep(fs::Duration::micros(400.0));
        host.advanceAllDevices();
        host.synchronizeAll();
        host.sleep(fs::Duration::millis(3.0));
    }
    host.synchronizeAll();

    CampaignResult out;
    for (std::size_t d = 0; d < s.deviceCount(); ++d) {
        out.samples.push_back(host.stopPowerLog(d));
        out.logs.push_back(host.deviceExecutionLog(d));
    }
    out.wall_ms = wallMs(t0);
    return out;
}

bool
identical(const CampaignResult& a, const CampaignResult& b)
{
    if (a.samples.size() != b.samples.size())
        return false;
    for (std::size_t d = 0; d < a.samples.size(); ++d) {
        if (a.samples[d].size() != b.samples[d].size() ||
            a.logs[d].size() != b.logs[d].size())
            return false;
        for (std::size_t i = 0; i < a.samples[d].size(); ++i) {
            if (!(a.samples[d][i] == b.samples[d][i]))
                return false;
        }
        for (std::size_t i = 0; i < a.logs[d].size(); ++i) {
            const auto& x = a.logs[d][i];
            const auto& y = b.logs[d][i];
            if (x.id != y.id || x.label != y.label ||
                x.start.nanos() != y.start.nanos() ||
                x.end.nanos() != y.end.nanos())
                return false;
        }
    }
    return true;
}

bool
runParallelStepping(tools::BenchReport& report, bool smoke)
{
    const int rounds = smoke ? 4 : 40;
    const std::size_t hw = std::thread::hardware_concurrency();
    const std::size_t threads = std::min<std::size_t>(8, hw > 1 ? hw : 2);

    const auto serial = runCampaign(1, rounds);
    const auto parallel = runCampaign(threads, rounds);
    const bool bit_identical = identical(serial, parallel);

    std::size_t samples = 0;
    std::size_t execs = 0;
    for (std::size_t d = 0; d < serial.samples.size(); ++d) {
        samples += serial.samples[d].size();
        execs += serial.logs[d].size();
    }

    auto& s = report.scenario("parallel_stepping");
    s.metric("serial_wall_ms", serial.wall_ms);
    s.metric("parallel_wall_ms", parallel.wall_ms);
    s.metric("speedup", serial.wall_ms / parallel.wall_ms);
    s.metric("threads", static_cast<std::int64_t>(threads));
    s.metric("rounds", static_cast<std::int64_t>(rounds));
    s.metric("samples", static_cast<std::int64_t>(samples));
    s.metric("executions", static_cast<std::int64_t>(execs));
    s.note("bit_identical", bit_identical ? "yes" : "NO");

    std::cout << "parallel_stepping: serial " << serial.wall_ms
              << " ms, parallel(" << threads << ") " << parallel.wall_ms
              << " ms, speedup " << serial.wall_ms / parallel.wall_ms
              << ", bit-identical: " << (bit_identical ? "yes" : "NO")
              << "\n";
    return bit_identical;
}

}  // namespace

int
main(int argc, char** argv)
{
    bool smoke = false;
    std::string out_path = "BENCH_fabric.json";
    for (int i = 1; i < argc; ++i) {
        const std::string arg = argv[i];
        if (arg == "--smoke") {
            smoke = true;
        } else if (arg == "--out" && i + 1 < argc) {
            out_path = argv[++i];
        } else {
            std::cerr << "usage: bench_fabric [--smoke] [--out PATH]\n";
            return 2;
        }
    }

    tools::BenchReport report("fabric");
    bool ok = true;
    ok = runContendedPair(report) && ok;
    ok = runParallelStepping(report, smoke) && ok;

    if (!report.write(out_path)) {
        std::cerr << "bench_fabric: cannot write " << out_path << "\n";
        return 1;
    }
    std::cout << "wrote " << out_path << "\n";
    if (!ok) {
        std::cerr << "bench_fabric: FAILED (dead coupling or parallel "
                     "divergence)\n";
        return 1;
    }
    return 0;
}

/**
 * @file
 * Regenerates paper Figure 5: FinGraV methodology evaluation on
 * CB-4K-GEMM.
 *
 * Four comparisons, as in the paper:
 *  (a) CPU-GPU time sync on vs off — the unsynchronized profile misses the
 *      idle-to-kernel power ramp and misaligns power changes with
 *      executions;
 *  (b) SSE vs SSP profile differentiation — assuming SSE is "the" profile
 *      misestimates power by up to ~36 % for this kernel;
 *  (c) execution-time binning on vs off — binning tightens the profile;
 *  (d) resiliency to #runs — a 50-run campaign with a degree-4 regression
 *      recovers the 200-run trend.
 */

#include <cmath>
#include <iostream>

#include "analysis/ascii_plot.hpp"
#include "analysis/report.hpp"
#include "analysis/series.hpp"
#include "baselines/baseline_profilers.hpp"
#include "fingrav/campaign_runner.hpp"
#include "fingrav/energy.hpp"
#include "fingrav/profiler.hpp"
#include "kernels/workloads.hpp"
#include "support/statistics.hpp"

namespace an = fingrav::analysis;
namespace bl = fingrav::baselines;
namespace fc = fingrav::core;
namespace fk = fingrav::kernels;

namespace {

/** Std-dev of SSP LOI power around the degree-4 trend (profile tightness). */
double
scatterAroundTrend(const fc::PowerProfile& profile)
{
    if (profile.size() < 8)
        return 0.0;
    const auto fit = profile.trend(fc::Rail::kTotal, 4);
    std::vector<double> residuals;
    residuals.reserve(profile.size());
    for (const auto& p : profile.points())
        residuals.push_back(p.sample.total_w - fit.poly(p.toi_us));
    return fingrav::support::stddev(residuals);
}

}  // namespace

int
main()
{
    an::printHeader(
        "Figure 5 - FinGraV methodology evaluation (CB-4K-GEMM)",
        "paper: sync captures the power ramp; SSE!=SSP (up to 36% error); "
        "binning tightens the profile; 50 runs + regression ~= 200 runs");

    fc::ProfilerOptions opts;

    // All four comparison campaigns ride the campaign engine at once:
    // the full methodology, the two degraded baselines on the *same*
    // seed (same workload draws, so the tenet is the only variable), and
    // the 50-run resiliency campaign.
    fc::ScenarioSpec synced_spec{"CB-4K-GEMM", 5001, opts, 0, nullptr};
    fc::ScenarioSpec unsynced_spec{
        "CB-4K-GEMM", 5001, opts, 0,
        fc::makeProfileFn([](auto& h, const auto& o, auto rng) {
            return bl::UnsyncedProfiler(h, o, std::move(rng));
        })};
    fc::ScenarioSpec nobin_spec{
        "CB-4K-GEMM", 5001, opts, 0,
        fc::makeProfileFn([](auto& h, const auto& o, auto rng) {
            return bl::NoBinningProfiler(h, o, std::move(rng));
        })};
    fc::ProfilerOptions small;
    small.runs_override = 50;
    fc::ScenarioSpec small_spec{"CB-4K-GEMM", 5002, small, 0, nullptr};

    const auto results = fc::CampaignRunner().run(
        {synced_spec, unsynced_spec, nobin_spec, small_spec});
    const auto& synced = results[0];
    const auto& unsynced = results[1];
    const auto& nobin = results[2];
    const auto& few = results[3];
    std::cout << "\n[synced]   " << an::summarize(synced) << "\n";
    std::cout << "[unsynced] " << an::summarize(unsynced) << "\n";

    // Timeline comparison: the synchronized profile shows the idle ->
    // warm-up -> SSE -> SSP ramp aligned with run time; the naive
    // alignment smears it by up to one averaging window per run.
    an::AsciiPlot timeline(72, 16);
    timeline.addSeries(an::toSeries(synced.timeline, fc::Rail::kTotal), 'o',
                       "synchronized (FinGraV S2)");
    timeline.addSeries(an::toSeries(unsynced.timeline, fc::Rail::kTotal),
                       'x', "unsynchronized (naive alignment)");
    std::cout << "\nTotal power vs time in run (us):\n" << timeline.render();

    // Quantify (a): scatter of the stitched SSP profile.
    const double synced_scatter = scatterAroundTrend(synced.ssp);
    const double unsynced_scatter = scatterAroundTrend(unsynced.ssp);
    std::cout << "\n(a) SSP LOI scatter around trend: synced "
              << synced_scatter << " W vs unsynced " << unsynced_scatter
              << " W  (paper: unsynced fails to align power with "
                 "executions)\n";

    // Quantify (b): SSE vs SSP error (paper: up to 36 % for CB-4K-GEMM).
    const auto rep = fc::differentiationError(synced);
    std::cout << "(b) SSE " << rep.sse_mean_w << " W vs SSP "
              << rep.ssp_mean_w << " W -> error " << rep.error_pct
              << " %  (paper: up to 36 %)\n";

    // --- (c): binning on vs off ------------------------------------------
    const double bin_scatter = scatterAroundTrend(synced.ssp);
    const double nobin_scatter = scatterAroundTrend(nobin.ssp);
    std::cout << "(c) SSP scatter: binning " << bin_scatter
              << " W vs no binning " << nobin_scatter
              << " W over " << nobin.binning.total_runs
              << " runs (outliers kept: "
              << (nobin.runs_executed - synced.binning.golden_runs.size())
              << ")  (paper: binning -> tighter profile)\n";

    // --- (d): 50-run resiliency -------------------------------------------
    const auto trend200 = synced.ssp.trend(fc::Rail::kTotal, 4);
    const auto trend50 = few.ssp.trend(fc::Rail::kTotal, 4);
    double max_dev_pct = 0.0;
    const double lo = 2.0;
    const double hi = synced.ssp_exec_time.toMicros() - 2.0;
    for (double x = lo; x <= hi; x += (hi - lo) / 32.0) {
        const double a = trend200.poly(x);
        const double b = trend50.poly(x);
        if (a > 0.0)
            max_dev_pct = std::max(max_dev_pct,
                                   std::fabs(a - b) / a * 100.0);
    }
    std::cout << "(d) degree-4 trend, 50 runs vs 200 runs: max deviation "
              << max_dev_pct << " %  (paper: 50 runs still capture the "
                 "overall trend)\n";

    // SSP profile plot with both trends, as in the figure.
    an::AsciiPlot ssp_plot(72, 14);
    ssp_plot.addSeries(an::toSeries(synced.ssp, fc::Rail::kTotal), 'o',
                       "SSP LOIs (200 runs, binned)");
    ssp_plot.addSeries(an::trendSeries(synced.ssp, fc::Rail::kTotal), '=',
                       "degree-4 trend, 200 runs");
    ssp_plot.addSeries(an::trendSeries(few.ssp, fc::Rail::kTotal), '-',
                       "degree-4 trend, 50 runs");
    std::cout << "\nSSP profile: total power vs TOI (us):\n"
              << ssp_plot.render();

    an::dumpProfileCsv(synced.ssp, "fig5_ssp_synced");
    an::dumpProfileCsv(unsynced.ssp, "fig5_ssp_unsynced");
    an::dumpProfileCsv(nobin.ssp, "fig5_ssp_nobinning");
    an::dumpProfileCsv(synced.timeline, "fig5_timeline_synced");
    an::dumpProfileCsv(unsynced.timeline, "fig5_timeline_unsynced");
    std::cout << "\nCSV dumps under fingrav_out/fig5_*.csv\n";
    return 0;
}

/**
 * @file
 * Contended-phase profiling benchmark: the scenario layer end to end.
 *
 * The paper profiles kernels in isolation; the scenario layer profiles
 * them *while* a configurable background load contends the shared node
 * fabric (ROADMAP "Contended-phase profiling").  Three scenarios:
 *
 *  1. contended_profile — a 512 MB all-reduce taken through the full
 *     methodology isolated and under steady injected fabric demand.
 *     Reports per-phase SSP (normalized-TOI bins) for both, the
 *     execution stretch and the conservation check: fair-share stretch
 *     must equal the distinct-transfer demand total (allocated share x
 *     stretched time moves the original payload).  Hard failure if the
 *     contended and isolated ProfileSets are bitwise IDENTICAL — the
 *     coupling this bench exists to track would be dead — or if bytes
 *     are not conserved.
 *
 *  2. phased_contention — the same collective against a *periodic*
 *     background transfer (kernel-based, on another device): contention
 *     now covers only part of the campaign, so the stitched profile
 *     carries a mix of contended- and uncontended-flagged LOIs — the
 *     per-LOI contention annotation reports split on.
 *
 *  3. thread_identity — the full scenario set executed by CampaignRunner
 *     at 1, 2 and 8 threads.  Any bitwise divergence is a hard failure:
 *     background launches ride a dedicated per-campaign RNG stream, so
 *     scenarios keep the campaign engine's bit-identity contract.
 *
 * Results go to BENCH_contention.json via tools/bench_json.hpp; CI runs
 * tools/bench_regression.py over it like the other gates
 * (docs/PERFORMANCE.md).
 *
 * Usage: bench_contention [--smoke] [--out PATH]
 *   --smoke   reduced run counts (CI); numbers reported, gates still on
 *   --out     output JSON path (default BENCH_contention.json)
 */

#include <cmath>
#include <cstdint>
#include <iostream>
#include <string>
#include <vector>

#include "analysis/report.hpp"
#include "fingrav/campaign_runner.hpp"
#include "fingrav/scenario.hpp"
#include "kernels/workloads.hpp"
#include "sim/machine_config.hpp"
#include "support/time_types.hpp"
#include "tools/bench_json.hpp"

namespace an = fingrav::analysis;
namespace fc = fingrav::core;
namespace fk = fingrav::kernels;
namespace fs = fingrav::support;
namespace tools = fingrav::tools;
using namespace fingrav::support::literals;

namespace {

constexpr const char* kKernel = "AR-512MB";
constexpr double kInjectedDemand = 0.6;

/** The three specs of the benchmark: isolated, steady, phased. */
std::vector<fc::ScenarioSpec>
benchSpecs(bool smoke)
{
    fc::ProfilerOptions opts;
    opts.runs_override = smoke ? 4 : 10;
    opts.collect_extra_runs = false;

    fc::ScenarioSpec isolated;
    isolated.label = kKernel;
    isolated.seed = 20001;
    isolated.opts = opts;

    // Steady contention: raw fabric demand injected for the whole
    // campaign — every phase of every execution is contended.
    fc::ScenarioSpec steady = isolated;
    fc::BackgroundLoad inject;
    inject.kind = fc::BackgroundKind::kFabricDemand;
    inject.demand = kInjectedDemand;
    steady.background.push_back(inject);

    // Phased contention: a periodic background transfer on device 1 —
    // kernel-based, so the contended spans come from real executions and
    // only part of the campaign is contended.
    fc::ScenarioSpec phased = isolated;
    fc::BackgroundLoad transfer;
    transfer.kind = fc::BackgroundKind::kKernel;
    transfer.kernel = kKernel;
    transfer.device = 1;
    transfer.offset = 500_us;
    transfer.period = 8_ms;
    transfer.duty_cycle = 0.4;
    phased.background.push_back(transfer);

    return {isolated, steady, phased};
}

bool
runContendedProfile(tools::BenchReport& report,
                    const std::vector<fc::ProfileSet>& sets)
{
    const auto& isolated = sets[0];
    const auto& steady = sets[1];

    const bool distinct = !fc::identicalProfileSets(isolated, steady);
    const auto delta = an::contentionDelta(isolated, steady);

    // Conservation: under fair share the foreground's allocated share is
    // u / (u + d), so the stretched execution moves share x time = the
    // uncontended payload exactly when stretch == u + d.
    const auto cfg = fingrav::sim::mi300xConfig();
    const double u =
        fk::kernelByLabel(kKernel, cfg)->workAt(1.0).util.fabric_bw;
    const double expected_stretch = std::max(1.0, u + kInjectedDemand);
    const double bytes_ratio = delta.exec_stretch / expected_stretch;
    const bool conserved = bytes_ratio > 0.92 && bytes_ratio < 1.08;

    auto& s = report.scenario("contended_profile");
    s.note("description",
           "512 MB all-reduce isolated vs steady injected fabric demand");
    s.metric("isolated_ssp_w", isolated.ssp.meanPower());
    s.metric("contended_ssp_w", steady.ssp.meanPower());
    s.metric("ssp_delta_pct", delta.ssp_delta_pct);
    s.metric("exec_stretch", delta.exec_stretch);
    s.metric("expected_stretch", expected_stretch);
    s.metric("bytes_ratio", bytes_ratio);
    s.metric("contended_loi_frac", delta.contended_loi_frac);
    s.metric("foreground_demand", u);
    s.metric("injected_demand", kInjectedDemand);
    s.note("profiles_distinct", distinct ? "yes" : "NO (dead coupling)");
    s.note("bytes_conserved", conserved ? "yes" : "NO");

    std::cout << "contended_profile: " << kKernel << " isolated "
              << isolated.ssp.meanPower() << " W vs contended "
              << steady.ssp.meanPower() << " W, exec stretch "
              << delta.exec_stretch << "x (expected " << expected_stretch
              << "x), contended LOI coverage "
              << delta.contended_loi_frac * 100.0 << " %\n\n"
              << an::contentionReport(delta) << "\n";

    if (!distinct)
        std::cerr << "FAIL: contended profile is bitwise identical to the "
                     "isolated one (dead coupling)\n";
    if (!conserved)
        std::cerr << "FAIL: bytes not conserved (stretch " << bytes_ratio
                  << "x of the fair-share expectation)\n";
    return distinct && conserved;
}

bool
runPhasedContention(tools::BenchReport& report,
                    const std::vector<fc::ProfileSet>& sets)
{
    const auto& isolated = sets[0];
    const auto& phased = sets[2];

    const bool distinct = !fc::identicalProfileSets(isolated, phased);
    const double frac =
        phased.ssp.empty()
            ? 0.0
            : static_cast<double>(phased.ssp.contendedCount()) /
                  static_cast<double>(phased.ssp.size());
    const bool mixed = frac > 0.0 && frac < 1.0;

    auto& s = report.scenario("phased_contention");
    s.note("description",
           "periodic background transfer: mixed contended/uncontended LOIs");
    s.metric("ssp_lois", static_cast<std::int64_t>(phased.ssp.size()));
    s.metric("contended_lois",
             static_cast<std::int64_t>(phased.ssp.contendedCount()));
    s.metric("contended_loi_frac", frac);
    s.metric("uncontended_ssp_w", phased.ssp.meanPowerWhere(false));
    s.metric("contended_ssp_w", phased.ssp.meanPowerWhere(true));
    s.note("profiles_distinct", distinct ? "yes" : "NO");
    s.note("mixed_phases", mixed ? "yes" : "no");

    std::cout << "phased_contention: " << phased.ssp.contendedCount() << "/"
              << phased.ssp.size() << " SSP LOIs contended ("
              << frac * 100.0 << " %), uncontended "
              << phased.ssp.meanPowerWhere(false) << " W vs contended "
              << phased.ssp.meanPowerWhere(true) << " W\n";

    if (!distinct)
        std::cerr << "FAIL: phased-contention profile identical to the "
                     "isolated one\n";
    return distinct;
}

bool
runThreadIdentity(tools::BenchReport& report,
                  const std::vector<fc::ScenarioSpec>& specs,
                  const std::vector<fc::ProfileSet>& serial)
{
    bool identical = true;
    for (const std::size_t threads : {2u, 8u}) {
        const auto parallel = fc::CampaignRunner(threads).run(specs);
        for (std::size_t i = 0; i < serial.size(); ++i) {
            if (!fc::identicalProfileSets(serial[i], parallel[i])) {
                std::cerr << "FAIL: spec " << i << " diverged at "
                          << threads << " runner threads\n";
                identical = false;
            }
        }
    }

    auto& s = report.scenario("thread_identity");
    s.note("description",
           "scenario set at 1/2/8 runner threads, bitwise comparison");
    s.metric("specs", static_cast<std::int64_t>(serial.size()));
    s.note("bit_identical", identical ? "yes" : "NO");
    std::cout << "thread_identity: 1/2/8-thread scenario results "
              << (identical ? "bit-identical" : "DIVERGED") << "\n";
    return identical;
}

}  // namespace

int
main(int argc, char** argv)
{
    bool smoke = false;
    std::string out_path = "BENCH_contention.json";
    for (int i = 1; i < argc; ++i) {
        const std::string arg = argv[i];
        if (arg == "--smoke") {
            smoke = true;
        } else if (arg == "--out" && i + 1 < argc) {
            out_path = argv[++i];
        } else {
            std::cerr << "usage: bench_contention [--smoke] [--out PATH]\n";
            return 2;
        }
    }

    tools::BenchReport report("contention");
    const auto specs = benchSpecs(smoke);
    const auto serial = fc::CampaignRunner(1).run(specs);

    bool ok = true;
    ok = runContendedProfile(report, serial) && ok;
    ok = runPhasedContention(report, serial) && ok;
    ok = runThreadIdentity(report, specs, serial) && ok;

    if (!report.write(out_path)) {
        std::cerr << "bench_contention: cannot write " << out_path << "\n";
        return 1;
    }
    std::cout << "wrote " << out_path << "\n";
    if (!ok) {
        std::cerr << "bench_contention: FAILED (dead coupling, broken "
                     "conservation or parallel divergence)\n";
        return 1;
    }
    return 0;
}

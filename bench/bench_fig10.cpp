/**
 * @file
 * Regenerates paper Figure 10: component-level power of the communication
 * kernels (all-gather / all-reduce at latency- and bandwidth-bound sizes)
 * compared against CB-8K-GEMM.
 *
 * Paper facts:
 *  - CB-8K-GEMM has much higher XCD power than every collective;
 *  - bandwidth-bound collectives sit between latency-bound collectives
 *    and the GEMM in total power;
 *  - the gap is explained by the considerably higher IOD and HBM power of
 *    bandwidth-bound collectives (Infinity-Fabric SerDes + staging
 *    traffic).
 */

#include <iostream>
#include <map>
#include <string>
#include <vector>

#include "analysis/report.hpp"
#include "fingrav/campaign_runner.hpp"
#include "fingrav/profiler.hpp"
#include "kernels/workloads.hpp"
#include "support/table.hpp"

namespace an = fingrav::analysis;
namespace fc = fingrav::core;
namespace fk = fingrav::kernels;
namespace fs = fingrav::support;

int
main()
{
    an::printHeader(
        "Figure 10 - communication kernels vs CB-8K-GEMM, per component",
        "paper: GEMM >> comms in XCD; BB comms between LB comms and GEMM "
        "in total, with the highest IOD/HBM power");

    const auto cfg = fingrav::sim::mi300xConfig();
    const std::vector<std::string> labels{
        "AG-64KB", "AG-128KB", "AG-512MB", "AG-1GB",
        "AR-64KB", "AR-128KB", "AR-512MB", "AR-1GB",
        "CB-8K-GEMM"};

    fc::ProfilerOptions opts;
    opts.runs_override = 100;  // collectives are long; 100 runs suffice

    // Nine independent campaigns, fanned out over the campaign engine
    // (bench_campaign measures this exact sweep serial vs parallel).
    std::vector<fc::ScenarioSpec> specs;
    std::uint64_t seed = 10001;
    for (const auto& label : labels) {
        fc::ScenarioSpec spec;
        spec.label = label;
        spec.seed = seed++;
        spec.opts = opts;
        specs.push_back(std::move(spec));
    }
    const auto results = fc::CampaignRunner().run(specs);

    std::map<std::string, fc::ProfileSet> sets;
    for (std::size_t i = 0; i < labels.size(); ++i) {
        sets.emplace(labels[i], results[i]);
        std::cout << an::summarize(sets.at(labels[i])) << "\n";
    }

    double ref = 0.0;
    for (const auto& [label, set] : sets)
        ref = std::max(ref, set.ssp.meanPower());

    fs::TableWriter table({"kernel", "class", "total", "XCD", "IOD", "HBM",
                           "total (W)"});
    for (const auto& label : labels) {
        const auto& set = sets.at(label);
        std::string cls = "compute";
        if (label != "CB-8K-GEMM") {
            const auto k = fk::kernelByLabel(label, cfg);
            const auto* coll =
                dynamic_cast<const fk::CollectiveKernel*>(k.get());
            cls = toString(coll->boundedness());
        }
        const auto& ssp = set.ssp;
        table.addRow({label, cls,
                      fs::TableWriter::num(ssp.meanPower(fc::Rail::kTotal) / ref, 3),
                      fs::TableWriter::num(ssp.meanPower(fc::Rail::kXcd) / ref, 3),
                      fs::TableWriter::num(ssp.meanPower(fc::Rail::kIod) / ref, 3),
                      fs::TableWriter::num(ssp.meanPower(fc::Rail::kHbm) / ref, 3),
                      fs::TableWriter::num(ssp.meanPower(fc::Rail::kTotal), 1)});
    }
    std::cout << "\nSSP power relative to max:\n";
    table.print(std::cout);

    // Paper-fact checklist.
    auto mean = [&](const std::string& l, fc::Rail r) {
        return sets.at(l).ssp.meanPower(r);
    };
    const double gemm_xcd = mean("CB-8K-GEMM", fc::Rail::kXcd);
    bool xcd_gap = true;
    for (const auto& label : labels) {
        if (label != "CB-8K-GEMM")
            xcd_gap = xcd_gap && mean(label, fc::Rail::kXcd) < 0.5 * gemm_xcd;
    }
    const double lb_total =
        std::max(mean("AG-128KB", fc::Rail::kTotal),
                 mean("AR-128KB", fc::Rail::kTotal));
    const double bb_total =
        std::min(mean("AG-512MB", fc::Rail::kTotal),
                 mean("AR-512MB", fc::Rail::kTotal));
    const bool bb_middle =
        bb_total > lb_total &&
        bb_total < mean("CB-8K-GEMM", fc::Rail::kTotal);
    const bool bb_iod =
        mean("AG-1GB", fc::Rail::kIod) > mean("CB-8K-GEMM", fc::Rail::kIod) &&
        mean("AR-1GB", fc::Rail::kIod) > mean("CB-8K-GEMM", fc::Rail::kIod);
    const bool bb_hbm =
        mean("AG-1GB", fc::Rail::kHbm) > mean("CB-8K-GEMM", fc::Rail::kHbm);

    std::cout << "\nPaper-fact checklist:\n"
              << "  [" << (xcd_gap ? "ok" : "MISMATCH")
              << "] CB-8K-GEMM XCD power >> all collectives\n"
              << "  [" << (bb_middle ? "ok" : "MISMATCH")
              << "] BB collectives between LB collectives and GEMM in "
                 "total power\n"
              << "  [" << (bb_iod ? "ok" : "MISMATCH")
              << "] BB collectives have the highest IOD power\n"
              << "  [" << (bb_hbm ? "ok" : "MISMATCH")
              << "] BB collectives exceed the GEMM's HBM power\n";

    std::cout << "\nRecommendation (paper): heterogeneous power profiles "
                 "-> concurrent execution of latency-bound communication "
                 "with computation exploits available headroom.\n";

    for (const auto& label : labels)
        an::dumpProfileCsv(sets.at(label).ssp, "fig10_" + label);
    std::cout << "CSV dumps under fingrav_out/fig10_*.csv\n";
    return 0;
}

/**
 * @file
 * Regenerates paper Figure 9: total power of interleaved GEMM/GEMV
 * executions compared against each kernel's isolated SSP profile.
 *
 * Paper cases and directions:
 *  - CB->8K      : CB-8K-GEMM after 60 CB-2K-GEMMs — slight rise vs SSP;
 *  - CB->2K      : CB-2K-GEMM after CB-8K + CB-4K — power above SSP;
 *  - MB->2K      : CB-2K-GEMM after 40 MB-4K-GEMVs — power far below SSP;
 *  - MB->8Kgemv  : MB-8K-GEMV after MB-4K/2K-GEMVs — below its SSP;
 *  - CB->4Kgemv  : MB-4K-GEMV after CB-8K/4K-GEMMs — above its SSP.
 *
 * Takeaway #5: kernels shorter than the logger's averaging window inherit
 * the power of whatever preceded them; compute-heavy long kernels do not.
 */

#include <algorithm>
#include <cmath>
#include <iostream>
#include <map>
#include <string>
#include <vector>

#include "analysis/report.hpp"
#include "fingrav/campaign_runner.hpp"
#include "fingrav/energy.hpp"
#include "fingrav/profiler.hpp"
#include "kernels/workloads.hpp"
#include "support/table.hpp"

namespace an = fingrav::analysis;
namespace fc = fingrav::core;
namespace fk = fingrav::kernels;
namespace fs = fingrav::support;

namespace {

struct Case {
    std::string name;          ///< the paper's tag, e.g. "CB->2K"
    std::string main;          ///< profiled kernel
    std::vector<std::pair<std::string, std::size_t>> prelude;
    std::string expectation;   ///< the paper's reported direction
};

}  // namespace

int
main()
{
    an::printHeader(
        "Figure 9 - interleaved GEMM/GEMV total power vs isolated SSP",
        "paper: short/compute-light kernels inherit preceding kernels' "
        "power; CB-8K-GEMM is unaffected (takeaway #5)");

    const auto cfg = fingrav::sim::mi300xConfig();

    const std::vector<Case> cases{
        {"CB->8K", "CB-8K-GEMM", {{"CB-2K-GEMM", 60}}, "small shift"},
        {"CB->2K", "CB-2K-GEMM",
         {{"CB-8K-GEMM", 1}, {"CB-4K-GEMM", 1}}, "higher than SSP"},
        {"MB->2K", "CB-2K-GEMM", {{"MB-4K-GEMV", 40}}, "far lower than SSP"},
        {"MB->8Kgemv", "MB-8K-GEMV",
         {{"MB-4K-GEMV", 20}, {"MB-2K-GEMV", 20}}, "lower than SSP"},
        {"CB->4Kgemv", "MB-4K-GEMV",
         {{"CB-8K-GEMM", 1}, {"CB-4K-GEMM", 1}}, "higher than SSP"},
    };

    // Isolated SSP references: one independent campaign per distinct
    // main kernel, fanned out over the campaign engine.
    std::uint64_t seed = 9001;
    fc::ProfilerOptions opts;
    opts.runs_override = 150;  // plenty of LOIs for means; keeps runtime sane
    std::vector<std::string> iso_labels;
    std::vector<fc::ScenarioSpec> iso_specs;
    for (const auto& c : cases) {
        if (std::find(iso_labels.begin(), iso_labels.end(), c.main) !=
            iso_labels.end())
            continue;
        iso_labels.push_back(c.main);
        fc::ScenarioSpec spec;
        spec.label = c.main;
        spec.seed = seed++;
        spec.opts = opts;
        iso_specs.push_back(std::move(spec));
    }
    const auto iso_sets = fc::CampaignRunner().run(iso_specs);
    std::map<std::string, fc::ProfileSet> isolated;
    for (std::size_t i = 0; i < iso_labels.size(); ++i) {
        isolated.emplace(iso_labels[i], iso_sets[i]);
        std::cout << "[isolated] " << an::summarize(isolated.at(iso_labels[i]))
                  << "\n";
    }

    // The interleaved campaigns are just as independent: each spec's
    // profile_fn runs the Section V-C3 interleaved pipeline on its node.
    std::vector<fc::ScenarioSpec> inter_specs;
    for (const auto& c : cases) {
        std::vector<fc::InterleaveItem> prelude;
        for (const auto& [label, count] : c.prelude)
            prelude.push_back({fk::kernelByLabel(label, cfg), count});
        fc::ScenarioSpec spec;
        spec.label = c.main;
        spec.seed = seed++;
        spec.opts = opts;
        spec.profile_fn = [prelude](fingrav::runtime::HostRuntime& host,
                                    const fk::KernelModelPtr& kernel,
                                    const fc::ProfilerOptions& o,
                                    fingrav::support::Rng rng) {
            return fc::Profiler(host, o, std::move(rng))
                .profileInterleaved(kernel, prelude, 6);
        };
        inter_specs.push_back(std::move(spec));
    }
    const auto inter_sets = fc::CampaignRunner().run(inter_specs);

    fs::TableWriter table({"case", "isolated SSP (W)", "interleaved (W)",
                           "shift (%)", "paper direction", "match"});
    for (std::size_t i = 0; i < cases.size(); ++i) {
        const auto& c = cases[i];
        const auto& inter = inter_sets[i];
        const auto& iso = isolated.at(c.main);
        const double shift = fc::interleavingShiftPct(inter, iso);

        bool match = false;
        if (c.expectation == "small shift")
            match = std::abs(shift) < 12.0;
        else if (c.expectation == "higher than SSP")
            match = shift > 3.0;
        else if (c.expectation == "far lower than SSP")
            match = shift < -30.0;
        else if (c.expectation == "lower than SSP")
            match = shift < -3.0;

        table.addRow({c.name,
                      fs::TableWriter::num(iso.ssp.meanPower(), 1),
                      fs::TableWriter::num(inter.ssp.meanPower(), 1),
                      fs::TableWriter::num(shift, 1), c.expectation,
                      match ? "ok" : "MISMATCH"});
        an::dumpProfileCsv(inter.ssp, "fig9_" + c.name);
    }
    std::cout << "\nInterleaved total power vs isolated SSP:\n";
    table.print(std::cout);

    std::cout << "\nMeasurement guidance #2 (paper): kernels whose "
                 "execution time is below the averaging window need "
                 "isolated executions for true power assessment.\n";
    std::cout << "CSV dumps under fingrav_out/fig9_*.csv\n";
    return 0;
}

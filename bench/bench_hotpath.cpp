/**
 * @file
 * Hot-path benchmark: event-driven stepping and incremental stitching,
 * with bit-identity verification.
 *
 * Two scenarios cover the paths that dominate every profiling campaign:
 *
 *  1. idle_heavy_long_window — short kernels separated by long idle gaps
 *     under a coarse (amd-smi style) power logger.  The retired legacy
 *     engine paid one logger slice per idle_step; the event engine pays
 *     one per window boundary or state event.  With the legacy engine
 *     gone (kQuantum retirement, PR 3) the scenario reports the event
 *     engine's wall time and slice economy against the *analytic* legacy
 *     slice count, and verifies run-to-run bit-identity (determinism)
 *     in place of cross-engine equivalence.
 *
 *  2. stitch_10x_runs — the step-8 top-up loop: stitch after every
 *     appended run.  The reference re-stitches all runs from scratch each
 *     iteration with the quadratic pair scan; the incremental stitcher
 *     appends.  Target: >= 5x wall-time reduction, bit-identical output.
 *
 * Results (wall times, slice/sample counts, speedups) are written to
 * BENCH_hotpath.json via the tools/ emitter so the perf trajectory is
 * tracked across PRs (docs/PERFORMANCE.md).
 *
 * Usage: bench_hotpath [--smoke] [--out PATH]
 *   --smoke   reduced problem sizes, thresholds reported but not enforced
 *   --out     output JSON path (default BENCH_hotpath.json)
 */

#include <chrono>
#include <cstdint>
#include <iostream>
#include <memory>
#include <string>
#include <vector>

#include "fingrav/profiler.hpp"
#include "fingrav/run_executor.hpp"
#include "fingrav/stitcher.hpp"
#include "fingrav/time_sync.hpp"
#include "kernels/workloads.hpp"
#include "runtime/host_runtime.hpp"
#include "sim/gpu_device.hpp"
#include "sim/machine_config.hpp"
#include "sim/simulation.hpp"
#include "support/time_types.hpp"
#include "tools/bench_json.hpp"

namespace fc = fingrav::core;
namespace fk = fingrav::kernels;
namespace fs = fingrav::support;
namespace rt = fingrav::runtime;
namespace sim = fingrav::sim;
namespace tools = fingrav::tools;
using namespace fingrav::support::literals;

namespace {

double
wallMs(const std::chrono::steady_clock::time_point& t0)
{
    const auto t1 = std::chrono::steady_clock::now();
    return std::chrono::duration<double, std::milli>(t1 - t0).count();
}

// ---------------------------------------------------------------------------
// Scenario 1: idle-heavy advancement under a long-window logger
// ---------------------------------------------------------------------------

struct IdleHeavyResult {
    double wall_ms = 0.0;
    std::vector<sim::GpuDevice::ExecutionRecord> log;
    sim::SampleColumns samples;
    sim::GpuDevice::StepStats stats;
};

IdleHeavyResult
runIdleHeavy(int bursts, int repetitions)
{
    sim::KernelWork work;
    work.label = "burst";
    work.nominal_duration = 200_us;
    work.freq_sensitivity = 0.6;
    work.util.xcd_occupancy = 0.4;
    work.util.xcd_issue = 0.3;
    work.util.llc_bw = 0.2;
    work.util.hbm_bw = 0.15;

    IdleHeavyResult best;
    for (int rep = 0; rep < repetitions; ++rep) {
        auto cfg = sim::mi300xConfig();
        sim::Simulation s(cfg, 1234, 1);
        auto& dev = s.device(0);
        auto& logger = dev.addLogger(50_ms);  // amd-smi style window
        logger.start(dev.localNow());

        const auto t0 = std::chrono::steady_clock::now();
        for (int i = 0; i < bursts; ++i) {
            // One short burst every 20 ms: ~1% duty cycle.
            dev.submit(work, fs::SimTime::fromNanos(
                                 static_cast<std::int64_t>(i) * 20'000'000));
        }
        const auto horizon = fs::SimTime::fromNanos(
            static_cast<std::int64_t>(bursts) * 20'000'000 + 30'000'000);
        dev.advanceUntilIdle(horizon);
        dev.advanceTo(horizon);
        const double ms = wallMs(t0);

        if (rep == 0 || ms < best.wall_ms) {
            best.wall_ms = ms;
            best.log = dev.executionLog();
            best.samples = logger.samples();
            best.stats = dev.stepStats();
        }
    }
    return best;
}

bool
identicalOutputs(const IdleHeavyResult& a, const IdleHeavyResult& b)
{
    if (a.log.size() != b.log.size() ||
        a.samples.size() != b.samples.size())
        return false;
    for (std::size_t i = 0; i < a.log.size(); ++i) {
        if (a.log[i].id != b.log[i].id || a.log[i].label != b.log[i].label ||
            a.log[i].start != b.log[i].start ||
            a.log[i].end != b.log[i].end || a.log[i].queue != b.log[i].queue)
            return false;
    }
    for (std::size_t i = 0; i < a.samples.size(); ++i) {
        if (!(a.samples[i] == b.samples[i]))
            return false;
    }
    return true;
}

// ---------------------------------------------------------------------------
// Scenario 2: top-up stitching, full re-stitch vs incremental
// ---------------------------------------------------------------------------

bool
profilesEqual(const fc::PowerProfile& a, const fc::PowerProfile& b)
{
    if (a.size() != b.size())
        return false;
    for (std::size_t i = 0; i < a.size(); ++i) {
        if (!(a.points()[i] == b.points()[i]))
            return false;
    }
    return true;
}

bool
setsEqual(const fc::ProfileSet& a, const fc::ProfileSet& b)
{
    return a.binning.golden_runs == b.binning.golden_runs &&
           a.ssp_exec_time == b.ssp_exec_time &&
           profilesEqual(a.sse, b.sse) && profilesEqual(a.ssp, b.ssp) &&
           profilesEqual(a.timeline, b.timeline);
}

fc::ProfileSet
stitchSkeleton()
{
    fc::ProfileSet out;
    out.label = "CB-2K-GEMM";
    out.sse_exec_index = 3;
    out.ssp_exec_index = 20;
    return out;
}

struct StitchScenario {
    std::vector<fc::RunRecord> runs;
    std::unique_ptr<sim::Simulation> simulation;
    std::unique_ptr<rt::HostRuntime> host;
    std::unique_ptr<fc::TimeSync> sync;
    std::size_t total_samples = 0;
    std::size_t total_execs = 0;
};

StitchScenario
buildStitchScenario(std::size_t run_count)
{
    StitchScenario sc;
    auto cfg = sim::mi300xConfig();
    sc.simulation = std::make_unique<sim::Simulation>(cfg, 77, 1);
    sc.host = std::make_unique<rt::HostRuntime>(*sc.simulation,
                                                sc.simulation->forkRng(7));
    sc.sync = std::make_unique<fc::TimeSync>(
        fc::TimeSync::calibrate(*sc.host));

    fc::RunExecutor exec(*sc.host, sc.simulation->forkRng(9));
    fc::RunPlan plan;
    plan.main = fk::makeSquareGemm(2048, cfg);
    plan.main_execs_per_block = 60;
    plan.logger_window = 200_us;  // denser LOI stream than the default
    sc.runs.reserve(run_count);
    for (std::size_t r = 0; r < run_count; ++r) {
        sc.runs.push_back(exec.executeRun(plan, r));
        sc.total_samples += sc.runs.back().samples.size();
        sc.total_execs += sc.runs.back().main_exec_indices.size();
    }
    return sc;
}

}  // namespace

int
main(int argc, char** argv)
{
    bool smoke = false;
    std::string out_path = "BENCH_hotpath.json";
    for (int i = 1; i < argc; ++i) {
        const std::string arg = argv[i];
        if (arg == "--smoke") {
            smoke = true;
        } else if (arg == "--out" && i + 1 < argc) {
            out_path = argv[++i];
        } else {
            std::cerr << "usage: bench_hotpath [--smoke] [--out PATH]\n";
            return 2;
        }
    }

    tools::BenchReport report("hotpath");
    bool ok = true;

    // ---- scenario 1 -----------------------------------------------------
    {
        const int bursts = smoke ? 25 : 100;
        const int reps = smoke ? 2 : 3;
        const auto event = runIdleHeavy(bursts, reps);
        // Determinism stands in for the retired cross-engine equivalence:
        // a second execution must reproduce every output bitwise.
        const auto again = runIdleHeavy(bursts, 1);
        const bool identical = identicalOutputs(event, again);

        // The retired legacy feed paid >= sim_time / idle_step slices on
        // this idle-heavy scenario; the event engine pays one slice per
        // stretch.  The analytic ratio tracks the engine's slice economy.
        const std::int64_t sim_ms =
            static_cast<std::int64_t>(bursts) * 20 + 30;
        const double legacy_slices =
            static_cast<double>(sim_ms) * 1e6 /
            static_cast<double>(sim::mi300xConfig().idle_step.nanos());
        const double reduction =
            event.stats.slices > 0
                ? legacy_slices / static_cast<double>(event.stats.slices)
                : 0.0;

        auto& s = report.scenario("idle_heavy_long_window");
        s.note("description",
               "bursty 1% duty cycle under a 50 ms logger window");
        s.metric("sim_time_ms", sim_ms);
        s.metric("event_wall_ms", event.wall_ms);
        s.metric("event_slices", event.stats.slices);
        s.metric("stretches", event.stats.stretches);
        // "*_speedup" so the CI regression gate tracks it (the gate only
        // compares speedup/wall-ms-named metrics).
        s.metric("legacy_equiv_slices", legacy_slices);
        s.metric("slice_speedup", reduction);
        s.metric("samples", static_cast<std::uint64_t>(event.samples.size()));
        s.metric("executions", static_cast<std::uint64_t>(event.log.size()));
        s.note("bit_identical", identical ? "yes" : "NO");

        std::cout << "idle_heavy_long_window: event " << event.wall_ms
                  << " ms (" << event.stats.slices << " slices vs "
                  << legacy_slices << " legacy-equivalent), reduction "
                  << reduction << "x, deterministic: "
                  << (identical ? "yes" : "NO") << "\n";

        if (!identical) {
            std::cerr << "FAIL: stepping outputs not deterministic\n";
            ok = false;
        }
        if (!smoke && reduction < 3.0) {
            std::cerr << "FAIL: slice reduction " << reduction
                      << "x below the 3x floor\n";
            ok = false;
        }
    }

    // ---- scenario 2 -----------------------------------------------------
    {
        const std::size_t run_count = smoke ? 16 : 60;
        auto sc = buildStitchScenario(run_count);

        fc::ProfilerOptions opts;
        opts.margin_override = 0.05;
        const auto tick = sc.host->timestampTick();

        // Reference: the seed's behaviour — every appended run triggers a
        // full quadratic re-stitch of everything so far.
        auto ref_set = stitchSkeleton();
        std::vector<fc::RunRecord> prefix;
        prefix.reserve(sc.runs.size());
        const auto t0 = std::chrono::steady_clock::now();
        for (const auto& run : sc.runs) {
            prefix.push_back(run);
            fc::ProfileStitcher::stitchReference(opts, *sc.sync, tick,
                                                 prefix, ref_set);
        }
        const double ref_ms = wallMs(t0);

        // Incremental: append-only restitch.
        auto inc_set = stitchSkeleton();
        fc::ProfileStitcher stitcher(opts, *sc.sync, tick);
        prefix.clear();
        const auto t1 = std::chrono::steady_clock::now();
        for (const auto& run : sc.runs) {
            prefix.push_back(run);
            stitcher.restitch(prefix, inc_set);
        }
        const double inc_ms = wallMs(t1);

        const bool identical = setsEqual(ref_set, inc_set);
        const double speedup = inc_ms > 0.0 ? ref_ms / inc_ms : 0.0;

        auto& s = report.scenario("stitch_10x_runs");
        s.note("description",
               "step-8 top-up: restitch after each appended run");
        s.metric("runs", static_cast<std::uint64_t>(run_count));
        s.metric("total_execs", static_cast<std::uint64_t>(sc.total_execs));
        s.metric("total_samples",
                 static_cast<std::uint64_t>(sc.total_samples));
        s.metric("reference_wall_ms", ref_ms);
        s.metric("incremental_wall_ms", inc_ms);
        s.metric("speedup", speedup);
        s.metric("rebuilds",
                 static_cast<std::uint64_t>(stitcher.rebuildCount()));
        s.metric("ssp_lois", static_cast<std::uint64_t>(inc_set.ssp.size()));
        s.note("bit_identical", identical ? "yes" : "NO");

        std::cout << "stitch_10x_runs: reference " << ref_ms
                  << " ms, incremental " << inc_ms << " ms, speedup "
                  << speedup << "x over " << run_count
                  << " runs, bit-identical: " << (identical ? "yes" : "NO")
                  << "\n";

        if (!identical) {
            std::cerr << "FAIL: incremental stitch diverged from the "
                         "reference\n";
            ok = false;
        }
        if (!smoke && speedup < 5.0) {
            std::cerr << "FAIL: stitch speedup " << speedup
                      << "x below the 5x floor\n";
            ok = false;
        }
    }

    if (!report.write(out_path)) {
        std::cerr << "FAIL: cannot write " << out_path << "\n";
        ok = false;
    } else {
        std::cout << "wrote " << out_path << "\n";
    }
    return ok ? 0 : 1;
}

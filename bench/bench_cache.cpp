/**
 * @file
 * Campaign-cache benchmark: cold execution vs warm content-addressed
 * replay, with bit-identity verification.
 *
 * Two scenarios quantify the memoization leg of the scaling story (the
 * fourth, after event-driven stepping, parallel node stepping, and
 * distributed sharding): re-running a sweep whose results are already
 * in the store must cost retrieval, not simulation.
 *
 *  1. warm_sweep — the Fig. 10 scenario set executed cold (populating
 *     a fresh store) and again warm through the same cache instance
 *     (memory-tier hits).  The warm pass must perform ZERO
 *     re-executions (cache stats gate: no new misses or stores) and
 *     every warm ProfileSet must match its cold counterpart bitwise —
 *     either violation is a hard failure in both modes.  The speedup
 *     floor (>= 20x; retrieval is decode-only) is enforced in full
 *     mode.
 *
 *  2. disk_tier — a fresh cache instance over the same store directory
 *     (empty memory tier, simulating a new process) replays the sweep
 *     from disk blobs alone.  Bit-identity against the cold pass is
 *     again a hard failure; the store must survey fully valid.
 *
 * Results go to BENCH_cache.json via tools/bench_json.hpp; CI feeds the
 * file through tools/bench_regression.py (docs/PERFORMANCE.md).
 *
 * Usage: bench_cache [--smoke] [--out PATH]
 *   --smoke   reduced run counts (CI); floors reported, not enforced
 *   --out     output JSON path (default BENCH_cache.json)
 */

#include <chrono>
#include <cstdint>
#include <iostream>
#include <memory>
#include <string>
#include <vector>

#include "fingrav/campaign_cache.hpp"
#include "fingrav/campaign_runner.hpp"
#include "tests/test_fixtures.hpp"
#include "tools/bench_json.hpp"

namespace fc = fingrav::core;
namespace tools = fingrav::tools;

namespace {

double
wallMs(const std::chrono::steady_clock::time_point& t0)
{
    const auto t1 = std::chrono::steady_clock::now();
    return std::chrono::duration<double, std::milli>(t1 - t0).count();
}

bool
allIdentical(const std::vector<fc::ProfileSet>& a,
             const std::vector<fc::ProfileSet>& b)
{
    if (a.size() != b.size())
        return false;
    for (std::size_t i = 0; i < a.size(); ++i)
        if (!fc::identicalProfileSets(a[i], b[i]))
            return false;
    return true;
}

bool
runCacheSweep(tools::BenchReport& report, bool smoke)
{
    const auto specs = fingrav::testing::fig10Specs(smoke ? 6 : 24);
    fingrav::testing::TempDir store;

    fc::CacheOptions copts;
    copts.dir = store.path();
    auto cache = std::make_shared<fc::CampaignCache>(copts);

    // Serial runner on both sides so the speedup isolates memoization,
    // not thread-pool fan-out.
    fc::CampaignRunner runner(1);
    runner.attachCache(cache);

    const auto t0 = std::chrono::steady_clock::now();
    const auto cold = runner.run(specs);
    const double cold_ms = wallMs(t0);
    const auto after_cold = cache->stats();

    const auto t1 = std::chrono::steady_clock::now();
    const auto warm = runner.run(specs);
    const double warm_ms = wallMs(t1);
    const auto after_warm = cache->stats();

    const bool identical = allIdentical(cold, warm);
    const bool zero_reexec =
        after_warm.misses == after_cold.misses &&
        after_warm.stores == after_cold.stores &&
        after_warm.hits() == after_cold.hits() + specs.size();
    const double speedup = warm_ms > 0.0 ? cold_ms / warm_ms : 0.0;

    auto& s = report.scenario("warm_sweep");
    s.note("description",
           "Fig. 10 sweep cold (execute + populate) vs warm (memory-tier "
           "replay) through one cache instance");
    s.metric("specs", static_cast<std::int64_t>(specs.size()));
    s.metric("cold_wall_ms", cold_ms);
    s.metric("warm_wall_ms", warm_ms);
    s.metric("speedup", speedup);
    s.metric("memory_hits", static_cast<std::int64_t>(after_warm.memory_hits));
    s.metric("stores", static_cast<std::int64_t>(after_warm.stores));
    s.metric("disk_bytes_written",
             static_cast<std::int64_t>(after_warm.disk_bytes_written));
    s.note("bit_identical", identical ? "yes" : "NO");
    s.note("zero_reexecutions", zero_reexec ? "yes" : "NO");

    std::cout << "warm_sweep: cold " << cold_ms << " ms vs warm " << warm_ms
              << " ms over " << specs.size() << " specs, speedup " << speedup
              << "x, bit-identical: " << (identical ? "yes" : "NO")
              << ", zero re-executions: " << (zero_reexec ? "yes" : "NO")
              << "\n";

    bool ok = true;
    if (!identical) {
        std::cerr << "FAIL: warm ProfileSets diverged from cold execution\n";
        ok = false;
    }
    if (!zero_reexec) {
        std::cerr << "FAIL: warm pass re-executed or re-stored specs\n";
        ok = false;
    }
    if (!smoke && speedup < 20.0) {
        std::cerr << "FAIL: warm-cache speedup " << speedup
                  << "x below the 20x floor\n";
        ok = false;
    }

    // Scenario 2: a fresh instance over the same directory — the memory
    // tier is empty, so every hit decodes a disk blob (new process).
    auto fresh = std::make_shared<fc::CampaignCache>(copts);
    fc::CampaignRunner disk_runner(1);
    disk_runner.attachCache(fresh);

    const auto t2 = std::chrono::steady_clock::now();
    const auto from_disk = disk_runner.run(specs);
    const double disk_ms = wallMs(t2);
    const auto disk_stats = fresh->stats();
    const auto scan = fc::CampaignCache::scanDir(copts.dir);

    const bool disk_identical = allIdentical(cold, from_disk);
    const bool all_from_disk = disk_stats.disk_hits == specs.size() &&
                               disk_stats.misses == 0;
    const double disk_speedup = disk_ms > 0.0 ? cold_ms / disk_ms : 0.0;

    auto& d = report.scenario("disk_tier");
    d.note("description",
           "fresh cache instance over the populated store: process-restart "
           "replay from disk blobs");
    d.metric("specs", static_cast<std::int64_t>(specs.size()));
    d.metric("disk_wall_ms", disk_ms);
    d.metric("replay_speedup", disk_speedup);
    d.metric("disk_hits", static_cast<std::int64_t>(disk_stats.disk_hits));
    d.metric("disk_bytes_read",
             static_cast<std::int64_t>(disk_stats.disk_bytes_read));
    d.metric("store_entries", static_cast<std::int64_t>(scan.entries));
    d.metric("store_valid_entries",
             static_cast<std::int64_t>(scan.valid_entries));
    d.note("bit_identical", disk_identical ? "yes" : "NO");
    d.note("all_from_disk", all_from_disk ? "yes" : "NO");

    std::cout << "disk_tier: replay " << disk_ms << " ms ("
              << disk_stats.disk_hits << " disk hits, "
              << disk_stats.disk_bytes_read << " B read), speedup vs cold "
              << disk_speedup << "x, bit-identical: "
              << (disk_identical ? "yes" : "NO") << "\n";

    if (!disk_identical) {
        std::cerr << "FAIL: disk-tier ProfileSets diverged from cold "
                     "execution\n";
        ok = false;
    }
    if (!all_from_disk) {
        std::cerr << "FAIL: disk-tier replay missed the store ("
                  << disk_stats.disk_hits << "/" << specs.size()
                  << " disk hits, " << disk_stats.misses << " misses)\n";
        ok = false;
    }
    if (scan.valid_entries != scan.entries || scan.entries != specs.size()) {
        std::cerr << "FAIL: store survey " << scan.valid_entries << "/"
                  << scan.entries << " valid for " << specs.size()
                  << " specs\n";
        ok = false;
    }
    return ok;
}

}  // namespace

int
main(int argc, char** argv)
{
    bool smoke = false;
    std::string out_path = "BENCH_cache.json";
    for (int i = 1; i < argc; ++i) {
        const std::string arg = argv[i];
        if (arg == "--smoke") {
            smoke = true;
        } else if (arg == "--out" && i + 1 < argc) {
            out_path = argv[++i];
        } else {
            std::cerr << "usage: bench_cache [--smoke] [--out PATH]\n";
            return 2;
        }
    }

    tools::BenchReport report("cache");
    bool ok = runCacheSweep(report, smoke);

    if (!report.write(out_path)) {
        std::cerr << "bench_cache: cannot write " << out_path << "\n";
        return 1;
    }
    std::cout << "wrote " << out_path << "\n";
    if (!ok) {
        std::cerr << "bench_cache: FAILED (divergence, re-execution, or "
                     "speedup floor)\n";
        return 1;
    }
    return 0;
}

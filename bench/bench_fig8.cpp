/**
 * @file
 * Regenerates paper Figure 8: CB-2K-GEMM total and XCD power, and the
 * headline SSE/SSP measurement-error comparison against CB-8K-GEMM.
 *
 * Paper shape: power starts low for the initial executions and rises
 * gradually to SSP (no excursion for this compute-light kernel — the
 * rise is the 1 ms averaging window filling with kernel activity).
 * Because CB-2K's execution time is far below the averaging window while
 * CB-8K's exceeds it, the SSE-vs-SSP spread is ~80 % vs ~20 % — the
 * paper's takeaway #1.
 */

#include <iostream>

#include "analysis/ascii_plot.hpp"
#include "analysis/report.hpp"
#include "analysis/series.hpp"
#include "fingrav/campaign_runner.hpp"
#include "fingrav/energy.hpp"
#include "fingrav/profiler.hpp"
#include "kernels/workloads.hpp"
#include "support/table.hpp"

namespace an = fingrav::analysis;
namespace fc = fingrav::core;
namespace fk = fingrav::kernels;
namespace fs = fingrav::support;

int
main()
{
    an::printHeader(
        "Figure 8 - CB-2K-GEMM total and XCD power across a run",
        "paper: power starts low, rises gradually to SSP; SSE/SSP spread "
        "80% (2K) vs 20% (8K)");

    // Both campaigns ride the campaign engine concurrently, as isolated
    // scenarios on the unified spec type.
    const auto results = fc::CampaignRunner().run(
        std::vector<fc::ScenarioSpec>{{"CB-2K-GEMM", 8001, {}, 0, nullptr},
                                      {"CB-8K-GEMM", 8002, {}, 0, nullptr}});
    const auto& set2k = results[0];
    const auto& set8k = results[1];
    std::cout << "\n" << an::summarize(set2k) << "\n";

    an::AsciiPlot plot(72, 16);
    plot.addSeries(an::toSeries(set2k.timeline, fc::Rail::kTotal), 'o',
                   "total power");
    plot.addSeries(an::toSeries(set2k.timeline, fc::Rail::kXcd), 'x',
                   "XCD power");
    std::cout << "\nPower vs time in run (us):\n" << plot.render();

    const auto rep2k = fc::differentiationError(set2k);
    std::cout << "\nCB-2K-GEMM: SSE " << rep2k.sse_mean_w << " W, SSP "
              << rep2k.ssp_mean_w << " W\n";

    // The gradual-rise shape: early-run samples sit well below SSP.
    double early = 0.0;
    std::size_t early_n = 0;
    for (const auto& p : set2k.timeline.points()) {
        if (p.run_time_us >= 0.0 && p.run_time_us < 500.0) {
            early += p.sample.total_w;
            ++early_n;
        }
    }
    if (early_n > 0) {
        early /= static_cast<double>(early_n);
        std::cout << "early-run mean (first 0.5 ms) " << early
                  << " W vs SSP " << rep2k.ssp_mean_w << " W -> "
                  << (early < 0.6 * rep2k.ssp_mean_w
                          ? "gradual rise (matches paper)"
                          : "UNEXPECTED")
                  << "\n";
    }

    // --- the 80 % vs 20 % comparison --------------------------------------
    const auto rep8k = fc::differentiationError(set8k);

    fs::TableWriter table({"kernel", "exec time (us)", "SSE (W)", "SSP (W)",
                           "error (%)", "paper error"});
    table.addRow({"CB-2K-GEMM",
                  fs::TableWriter::num(set2k.measured_exec_time.toMicros(), 1),
                  fs::TableWriter::num(rep2k.sse_mean_w, 1),
                  fs::TableWriter::num(rep2k.ssp_mean_w, 1),
                  fs::TableWriter::num(rep2k.error_pct, 1), "~80%"});
    table.addRow({"CB-8K-GEMM",
                  fs::TableWriter::num(set8k.measured_exec_time.toMicros(), 1),
                  fs::TableWriter::num(rep8k.sse_mean_w, 1),
                  fs::TableWriter::num(rep8k.ssp_mean_w, 1),
                  fs::TableWriter::num(rep8k.error_pct, 1), "~20%"});
    std::cout << "\nSSE-vs-SSP measurement error (takeaway #1):\n";
    table.print(std::cout);
    std::cout << "shape check: error(2K) >> error(8K): "
              << (rep2k.error_pct > 2.5 * rep8k.error_pct ? "yes (matches)"
                                                          : "NO")
              << "\n";

    // Energy view: energy errors equal power errors (E = P * t).
    std::cout << "\nper-execution energy (SSP): CB-2K "
              << rep2k.ssp_energy_j << " J vs naive SSE estimate "
              << rep2k.sse_energy_j << " J\n";

    an::dumpProfileCsv(set2k.timeline, "fig8_timeline");
    an::dumpProfileCsv(set2k.ssp, "fig8_ssp");
    std::cout << "\nCSV dumps under fingrav_out/fig8_*.csv\n";
    return 0;
}

/**
 * @file
 * Campaign-engine benchmark: parallel multi-kernel profiling and
 * cross-campaign run reuse, with bit-identity verification.
 *
 * Two scenarios track the third leg of the scaling story (after
 * event-driven stepping, PR 1, and parallel node stepping, PR 2):
 *
 *  1. parallel_campaigns — the nine-kernel Fig. 10 campaign set (eight
 *     collectives + CB-8K-GEMM) executed serially and fanned out over
 *     CampaignRunner at up to eight threads.  Any bitwise divergence
 *     between serial and parallel ProfileSets is a hard failure; the
 *     wall-clock speedup floor (>= 3x at 8 threads) is enforced in full
 *     mode when the host actually has eight hardware threads — on
 *     smaller hosts the measured speedup is reported for the regression
 *     gate to track.
 *
 *  2. sweep_reuse — the bench_ablation logger-window sweep run both
 *     ways: re-executing the recorded campaign once per window vs
 *     recording once (multi-window capture) and restitching per window.
 *     Reused and re-executed ProfileSets must match bitwise (hard
 *     failure otherwise); the reuse speedup floor (>= 5x) is enforced in
 *     full mode — it is algorithmic (avoided re-simulation), so it holds
 *     on any core count.
 *
 * Results go to BENCH_campaign.json via tools/bench_json.hpp; CI feeds
 * the file through tools/bench_regression.py (docs/PERFORMANCE.md).
 *
 * Usage: bench_campaign [--smoke] [--out PATH]
 *   --smoke   reduced run counts (CI); floors reported, not enforced
 *   --out     output JSON path (default BENCH_campaign.json)
 */

#include <chrono>
#include <cstdint>
#include <iostream>
#include <string>
#include <thread>
#include <vector>

#include "fingrav/campaign_runner.hpp"
#include "fingrav/recorded_campaign.hpp"
#include "support/time_types.hpp"
#include "tests/test_fixtures.hpp"
#include "tools/bench_json.hpp"

namespace fc = fingrav::core;
namespace fs = fingrav::support;
namespace tools = fingrav::tools;
using namespace fingrav::support::literals;

namespace {

double
wallMs(const std::chrono::steady_clock::time_point& t0)
{
    const auto t1 = std::chrono::steady_clock::now();
    return std::chrono::duration<double, std::milli>(t1 - t0).count();
}

// ---------------------------------------------------------------------------
// Scenario 1: the nine-kernel Fig. 10 campaign set, serial vs parallel
// ---------------------------------------------------------------------------

bool
runParallelCampaigns(tools::BenchReport& report, bool smoke)
{
    fc::ProfilerOptions opts;
    opts.runs_override = smoke ? 30 : 100;  // bench_fig10 uses 100
    const auto specs = fingrav::testing::fig10SpecsWithOptions(opts);

    const auto t0 = std::chrono::steady_clock::now();
    const auto serial = fc::CampaignRunner(1).run(specs);
    const double serial_ms = wallMs(t0);

    const std::size_t threads = 8;
    const auto t1 = std::chrono::steady_clock::now();
    const auto parallel = fc::CampaignRunner(threads).run(specs);
    const double parallel_ms = wallMs(t1);

    bool identical = serial.size() == parallel.size();
    for (std::size_t i = 0; identical && i < serial.size(); ++i)
        identical = fc::identicalProfileSets(serial[i], parallel[i]);
    const double speedup =
        parallel_ms > 0.0 ? serial_ms / parallel_ms : 0.0;

    std::size_t lois = 0;
    for (const auto& set : serial)
        lois += set.ssp.size();

    const std::size_t hw = std::thread::hardware_concurrency();
    auto& s = report.scenario("parallel_campaigns");
    s.note("description", "9-kernel Fig. 10 set, serial vs 8-thread runner");
    s.metric("campaigns", static_cast<std::int64_t>(specs.size()));
    s.metric("runs_per_campaign",
             static_cast<std::int64_t>(*opts.runs_override));
    s.metric("serial_wall_ms", serial_ms);
    s.metric("parallel_wall_ms", parallel_ms);
    s.metric("speedup", speedup);
    s.metric("threads", static_cast<std::int64_t>(threads));
    s.metric("hardware_concurrency", static_cast<std::int64_t>(hw));
    s.metric("ssp_lois", static_cast<std::int64_t>(lois));
    s.note("bit_identical", identical ? "yes" : "NO");

    std::cout << "parallel_campaigns: serial " << serial_ms
              << " ms, parallel(" << threads << " threads, " << hw
              << " hw) " << parallel_ms << " ms, speedup " << speedup
              << "x, bit-identical: " << (identical ? "yes" : "NO") << "\n";

    bool ok = identical;
    if (!identical)
        std::cerr << "FAIL: parallel campaigns diverged from serial\n";
    // The wall-clock floor needs the cores to exist; the bit-identity
    // contract above is the unconditional gate.
    if (!smoke && hw >= threads && speedup < 3.0) {
        std::cerr << "FAIL: campaign speedup " << speedup
                  << "x below the 3x floor at " << threads << " threads\n";
        ok = false;
    }
    return ok;
}

// ---------------------------------------------------------------------------
// Scenario 2: window sweep via run reuse vs re-execution
// ---------------------------------------------------------------------------

bool
runSweepReuse(tools::BenchReport& report, bool smoke)
{
    // The ablation's Section VI study: one kernel observed at six logger
    // windows.  CB-8K-GEMM keeps execs-per-run moderate at 50 ms.
    fc::ScenarioSpec spec;
    spec.label = "CB-8K-GEMM";
    spec.seed = 13002;
    spec.opts.runs_override = smoke ? 10 : 24;
    spec.opts.collect_extra_runs = false;
    const std::vector<fs::Duration> extras{5_ms, 10_ms, 20_ms, 35_ms, 50_ms};

    // Reuse: record once, restitch per window.
    const auto t0 = std::chrono::steady_clock::now();
    const auto recorded = fc::RecordedCampaign::record(spec, extras);
    const double record_ms = wallMs(t0);
    const std::size_t points = recorded.windows().size();

    const auto t1 = std::chrono::steady_clock::now();
    std::vector<fc::ProfileSet> reused;
    for (std::size_t w = 0; w < points; ++w) {
        fc::SweepPoint point;
        point.window_index = w;
        reused.push_back(recorded.restitch(point));
    }
    const double restitch_ms = wallMs(t1);
    const double reuse_ms = record_ms + restitch_ms;

    // Re-execute: a fresh recording (fresh simulation) per sweep point.
    const auto t2 = std::chrono::steady_clock::now();
    std::vector<fc::ProfileSet> reexecuted;
    for (std::size_t w = 0; w < points; ++w) {
        fc::SweepPoint point;
        point.window_index = w;
        reexecuted.push_back(
            fc::RecordedCampaign::record(spec, extras).restitch(point));
    }
    const double reexec_ms = wallMs(t2);

    bool identical = true;
    for (std::size_t w = 0; identical && w < points; ++w)
        identical = fc::identicalProfileSets(reused[w], reexecuted[w]);
    const double speedup = reuse_ms > 0.0 ? reexec_ms / reuse_ms : 0.0;

    auto& s = report.scenario("sweep_reuse");
    s.note("description",
           "6-window ablation sweep: re-execute per point vs record once "
           "+ restitch");
    s.metric("sweep_points", static_cast<std::int64_t>(points));
    s.metric("runs", static_cast<std::int64_t>(recorded.runCount()));
    s.metric("record_wall_ms", record_ms);
    s.metric("restitch_wall_ms", restitch_ms);
    s.metric("reuse_wall_ms", reuse_ms);
    s.metric("reexecute_wall_ms", reexec_ms);
    s.metric("speedup", speedup);
    s.note("bit_identical", identical ? "yes" : "NO");

    std::cout << "sweep_reuse: re-execute " << reexec_ms << " ms vs reuse "
              << reuse_ms << " ms (record " << record_ms << " + restitch "
              << restitch_ms << ") over " << points
              << " windows, speedup " << speedup << "x, bit-identical: "
              << (identical ? "yes" : "NO") << "\n";

    bool ok = identical;
    if (!identical)
        std::cerr << "FAIL: reused ProfileSets diverged from serial "
                     "re-execution\n";
    if (!smoke && speedup < 5.0) {
        std::cerr << "FAIL: sweep-reuse speedup " << speedup
                  << "x below the 5x floor\n";
        ok = false;
    }
    return ok;
}

}  // namespace

int
main(int argc, char** argv)
{
    bool smoke = false;
    std::string out_path = "BENCH_campaign.json";
    for (int i = 1; i < argc; ++i) {
        const std::string arg = argv[i];
        if (arg == "--smoke") {
            smoke = true;
        } else if (arg == "--out" && i + 1 < argc) {
            out_path = argv[++i];
        } else {
            std::cerr << "usage: bench_campaign [--smoke] [--out PATH]\n";
            return 2;
        }
    }

    tools::BenchReport report("campaign");
    bool ok = true;
    ok = runParallelCampaigns(report, smoke) && ok;
    ok = runSweepReuse(report, smoke) && ok;

    if (!report.write(out_path)) {
        std::cerr << "bench_campaign: cannot write " << out_path << "\n";
        return 1;
    }
    std::cout << "wrote " << out_path << "\n";
    if (!ok) {
        std::cerr << "bench_campaign: FAILED (divergence or speedup "
                     "floor)\n";
        return 1;
    }
    return 0;
}

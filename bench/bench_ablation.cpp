/**
 * @file
 * Ablation study: each FinGraV tenet toggled or swept independently.
 *
 * Not a paper figure — this quantifies the design choices DESIGN.md calls
 * out, on CB-2K-GEMM (the kernel most sensitive to all four challenges):
 *
 *  1. #runs sweep     : LOI count and trend stability vs run budget;
 *  2. margin sweep    : golden fraction and profile scatter vs margin;
 *  3. sync-mode sweep : profile quality per timestamp-mapping strategy
 *                       (FinGraV, FinGraV+drift, Lang-style, naive);
 *  4. window sweep    : SSE/SSP error vs logger averaging window — the
 *                       Section VI "external loggers" discussion: coarser
 *                       windows (amd-smi style) inflate the error and
 *                       starve the profile of LOIs.
 *
 * Every sweep restitches one RecordedCampaign instead of re-executing the
 * simulation per point (sweeps 1-3 share a single 400-run recording;
 * sweep 4 uses a multi-window recording that captures 1/10/50 ms loggers
 * around the *same* executions).  Beyond the speedup — bench_campaign
 * tracks it — this is the methodologically cleaner design: every sweep
 * point sees the identical workload draws, so the swept parameter is the
 * only variable.
 */

#include <cmath>
#include <iostream>
#include <vector>

#include "analysis/report.hpp"
#include "fingrav/energy.hpp"
#include "fingrav/profiler.hpp"
#include "fingrav/recorded_campaign.hpp"
#include "support/statistics.hpp"
#include "support/table.hpp"
#include "support/time_types.hpp"

namespace an = fingrav::analysis;
namespace fc = fingrav::core;
namespace fs = fingrav::support;
using namespace fingrav::support::literals;

namespace {

double
scatterAroundTrend(const fc::PowerProfile& profile)
{
    if (profile.size() < 8)
        return 0.0;
    const auto fit = profile.trend(fc::Rail::kTotal, 4);
    std::vector<double> residuals;
    for (const auto& p : profile.points())
        residuals.push_back(p.sample.total_w - fit.poly(p.toi_us));
    return fs::stddev(residuals);
}

}  // namespace

int
main()
{
    an::printHeader("Ablation - FinGraV tenets toggled independently",
                    "CB-2K-GEMM; one recorded campaign per study, "
                    "restitched per sweep point (identical workload draws "
                    "across points)");

    const auto cfg = fingrav::sim::mi300xConfig();

    // One 400-run recording backs the run-budget, margin and sync-mode
    // sweeps: the largest budget any point needs, replayed as prefixes.
    fc::ScenarioSpec spec;
    spec.label = "CB-2K-GEMM";
    spec.seed = 13001;
    spec.opts.runs_override = 400;
    spec.opts.collect_extra_runs = false;
    const auto recorded = fc::RecordedCampaign::record(spec);

    // --- 1: #runs sweep ---------------------------------------------------
    fs::TableWriter runs_table({"runs", "SSP LOIs", "SSP mean (W)",
                                "scatter (W)"});
    for (std::size_t runs : {25u, 50u, 100u, 200u, 400u}) {
        fc::SweepPoint point;
        point.runs = runs;
        const auto set = recorded.restitch(point);
        runs_table.addRow({std::to_string(runs),
                           std::to_string(set.ssp.size()),
                           fs::TableWriter::num(set.ssp.meanPower(), 1),
                           fs::TableWriter::num(scatterAroundTrend(set.ssp), 2)});
    }
    std::cout << "\n1) run-budget sweep (prefixes of one recording):\n";
    runs_table.print(std::cout);

    // --- 2: margin sweep ----------------------------------------------------
    fs::TableWriter margin_table({"margin (%)", "golden (%)", "SSP mean (W)",
                                  "scatter (W)"});
    for (double margin : {0.01, 0.02, 0.05, 0.10, 0.20}) {
        fc::SweepPoint point;
        point.runs = 200;
        point.margin = margin;
        const auto set = recorded.restitch(point);
        margin_table.addRow(
            {fs::TableWriter::num(margin * 100, 0),
             fs::TableWriter::num(set.binning.goldenFraction() * 100, 1),
             fs::TableWriter::num(set.ssp.meanPower(), 1),
             fs::TableWriter::num(scatterAroundTrend(set.ssp), 2)});
    }
    std::cout << "\n2) binning-margin sweep (wide margins admit allocation "
                 "outliers; scatter grows):\n";
    margin_table.print(std::cout);

    // --- 3: sync modes -------------------------------------------------------
    fs::TableWriter sync_table({"sync mode", "SSP mean (W)", "scatter (W)",
                                "read delay (us)", "drift est (ppm)"});
    for (const auto mode :
         {fc::SyncMode::kFinGraV, fc::SyncMode::kFinGraVDrift,
          fc::SyncMode::kNoDelayAccounting, fc::SyncMode::kCoarseAlign}) {
        fc::SweepPoint point;
        point.runs = 200;
        point.sync_mode = mode;
        const auto set = recorded.restitch(point);
        sync_table.addRow({toString(mode),
                           fs::TableWriter::num(set.ssp.meanPower(), 1),
                           fs::TableWriter::num(scatterAroundTrend(set.ssp), 2),
                           fs::TableWriter::num(set.read_delay_us, 2),
                           fs::TableWriter::num(set.drift_ppm, 2)});
    }
    std::cout << "\n3) timestamp-mapping sweep (configured GPU drift: "
              << cfg.gpu_clock_drift_ppm << " ppm):\n";
    sync_table.print(std::cout);

    // --- 4: logger window sweep ----------------------------------------------
    // Multi-window recording: the 1 ms on-GPU logger and 10/50 ms
    // external (amd-smi style) loggers observe the *same* 120 runs; each
    // sweep point restitches its window's samples.
    fc::ScenarioSpec window_spec;
    window_spec.label = "CB-2K-GEMM";
    window_spec.seed = 13002;
    window_spec.opts.runs_override = 120;
    window_spec.opts.collect_extra_runs = false;
    const auto window_recorded =
        fc::RecordedCampaign::record(window_spec, {10_ms, 50_ms});

    fs::TableWriter window_table({"window", "SSP LOIs", "SSE (W)", "SSP (W)",
                                  "error (%)"});
    for (std::size_t w = 0; w < window_recorded.windows().size(); ++w) {
        fc::SweepPoint point;
        point.window_index = w;
        const auto set = window_recorded.restitch(point);
        const auto rep = fc::differentiationError(set);
        window_table.addRow(
            {std::to_string(static_cast<long>(
                 window_recorded.windows()[w].toMillis())) + "ms",
             std::to_string(set.ssp.size()),
             fs::TableWriter::num(rep.sse_mean_w, 1),
             fs::TableWriter::num(rep.ssp_mean_w, 1),
             fs::TableWriter::num(rep.error_pct, 1)});
    }
    std::cout << "\n4) logger-window sweep (Section VI: external amd-smi "
                 "style loggers average longer; profiles degrade):\n";
    window_table.print(std::cout);
    return 0;
}

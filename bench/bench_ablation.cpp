/**
 * @file
 * Ablation study: each FinGraV tenet toggled or swept independently.
 *
 * Not a paper figure — this quantifies the design choices DESIGN.md calls
 * out, on CB-2K-GEMM (the kernel most sensitive to all four challenges):
 *
 *  1. #runs sweep     : LOI count and trend stability vs run budget;
 *  2. margin sweep    : golden fraction and profile scatter vs margin;
 *  3. sync-mode sweep : profile quality per timestamp-mapping strategy
 *                       (FinGraV, FinGraV+drift, Lang-style, naive);
 *  4. window sweep    : SSE/SSP error vs logger averaging window — the
 *                       Section VI "external loggers" discussion: coarser
 *                       windows (amd-smi style) inflate the error and
 *                       starve the profile of LOIs.
 */

#include <cmath>
#include <iostream>
#include <vector>

#include "analysis/report.hpp"
#include "baselines/baseline_profilers.hpp"
#include "fingrav/energy.hpp"
#include "fingrav/profiler.hpp"
#include "kernels/workloads.hpp"
#include "support/statistics.hpp"
#include "support/table.hpp"
#include "support/time_types.hpp"

namespace an = fingrav::analysis;
namespace bl = fingrav::baselines;
namespace fc = fingrav::core;
namespace fk = fingrav::kernels;
namespace fs = fingrav::support;
using namespace fingrav::support::literals;

namespace {

double
scatterAroundTrend(const fc::PowerProfile& profile)
{
    if (profile.size() < 8)
        return 0.0;
    const auto fit = profile.trend(fc::Rail::kTotal, 4);
    std::vector<double> residuals;
    for (const auto& p : profile.points())
        residuals.push_back(p.sample.total_w - fit.poly(p.toi_us));
    return fs::stddev(residuals);
}

}  // namespace

int
main()
{
    an::printHeader("Ablation - FinGraV tenets toggled independently",
                    "CB-2K-GEMM unless stated; fresh node per campaign");

    const auto cfg = fingrav::sim::mi300xConfig();
    const auto kernel = fk::kernelByLabel("CB-2K-GEMM", cfg);
    std::uint64_t seed = 13001;

    // --- 1: #runs sweep ---------------------------------------------------
    fs::TableWriter runs_table({"runs", "SSP LOIs", "SSP mean (W)",
                                "scatter (W)"});
    for (std::size_t runs : {25u, 50u, 100u, 200u, 400u}) {
        fc::ProfilerOptions opts;
        opts.runs_override = runs;
        opts.collect_extra_runs = false;
        an::Campaign c(seed++);
        const auto set = c.profiler(opts).profile(kernel);
        runs_table.addRow({std::to_string(runs),
                           std::to_string(set.ssp.size()),
                           fs::TableWriter::num(set.ssp.meanPower(), 1),
                           fs::TableWriter::num(scatterAroundTrend(set.ssp), 2)});
    }
    std::cout << "\n1) run-budget sweep:\n";
    runs_table.print(std::cout);

    // --- 2: margin sweep ----------------------------------------------------
    fs::TableWriter margin_table({"margin (%)", "golden (%)", "SSP mean (W)",
                                  "scatter (W)"});
    // One fixed seed across margin rows: identical workload draws, so the
    // margin is the only variable.
    const std::uint64_t margin_seed = seed++;
    for (double margin : {0.01, 0.02, 0.05, 0.10, 0.20}) {
        fc::ProfilerOptions opts;
        opts.margin_override = margin;
        opts.runs_override = 200;
        an::Campaign c(margin_seed);
        const auto set = c.profiler(opts).profile(kernel);
        margin_table.addRow(
            {fs::TableWriter::num(margin * 100, 0),
             fs::TableWriter::num(set.binning.goldenFraction() * 100, 1),
             fs::TableWriter::num(set.ssp.meanPower(), 1),
             fs::TableWriter::num(scatterAroundTrend(set.ssp), 2)});
    }
    std::cout << "\n2) binning-margin sweep (wide margins admit allocation "
                 "outliers; scatter grows):\n";
    margin_table.print(std::cout);

    // --- 3: sync modes -------------------------------------------------------
    fs::TableWriter sync_table({"sync mode", "SSP mean (W)", "scatter (W)",
                                "read delay (us)", "drift est (ppm)"});
    const std::uint64_t sync_seed = seed++;
    for (const auto mode :
         {fc::SyncMode::kFinGraV, fc::SyncMode::kFinGraVDrift,
          fc::SyncMode::kNoDelayAccounting, fc::SyncMode::kCoarseAlign}) {
        fc::ProfilerOptions opts;
        opts.sync_mode = mode;
        opts.runs_override = 200;
        an::Campaign c(sync_seed);
        const auto set = c.profiler(opts).profile(kernel);
        sync_table.addRow({toString(mode),
                           fs::TableWriter::num(set.ssp.meanPower(), 1),
                           fs::TableWriter::num(scatterAroundTrend(set.ssp), 2),
                           fs::TableWriter::num(set.read_delay_us, 2),
                           fs::TableWriter::num(set.drift_ppm, 2)});
    }
    std::cout << "\n3) timestamp-mapping sweep (configured GPU drift: "
              << cfg.gpu_clock_drift_ppm << " ppm):\n";
    sync_table.print(std::cout);

    // --- 4: logger window sweep ----------------------------------------------
    fs::TableWriter window_table({"window", "SSP LOIs", "SSE (W)", "SSP (W)",
                                  "error (%)"});
    for (const auto window : {1_ms, 10_ms, 50_ms}) {
        fc::ProfilerOptions opts;
        opts.logger_window = window;
        opts.runs_override = 120;
        an::Campaign c(seed++);
        bl::CoarseLoggerProfiler coarse(c.host(), opts,
                                        c.host().simulation().forkRng(8),
                                        window);
        const auto set = coarse.profile(kernel);
        const auto rep = fc::differentiationError(set);
        window_table.addRow({std::to_string(static_cast<long>(
                                 window.toMillis())) + "ms",
                             std::to_string(set.ssp.size()),
                             fs::TableWriter::num(rep.sse_mean_w, 1),
                             fs::TableWriter::num(rep.ssp_mean_w, 1),
                             fs::TableWriter::num(rep.error_pct, 1)});
    }
    std::cout << "\n4) logger-window sweep (Section VI: external amd-smi "
                 "style loggers average longer; profiles degrade):\n";
    window_table.print(std::cout);
    return 0;
}

/**
 * @file
 * Data-plane benchmark: the columnar (SoA) profile kernels against
 * in-bench scalar baselines that replicate the retired AoS layout, with
 * bitwise-equality verification on every scenario.
 *
 * Four scenarios cover the profile data plane end to end:
 *
 *  1. rail_reduction — the full reduction suite (mean/min/max on all
 *     four rails plus the contended/uncontended split means) through
 *     PowerProfile::railStats, against the seed's per-accessor loops
 *     over a materialized std::vector<ProfilePoint>.
 *
 *  2. percentile — the order-statistics battery (seven percentiles)
 *     through support::percentile (copy + nth_element selection),
 *     against the seed's copy + full std::sort + interpolation.
 *
 *  3. codec — ProfileSet encode/decode through the v2 columnar codec
 *     (one contiguous block per column, decode adopting columns
 *     wholesale), against an in-bench replica of the v1 field-wise
 *     per-point layout built from the same Encoder/Decoder primitives.
 *     Reports MB/s both ways.
 *
 *  4. stitch_append — bulk timeline assembly through
 *     PowerProfile::appendTimelineRun (one resize, tight per-column
 *     loops), against the seed's per-sample ProfilePoint temporaries
 *     fed through add().
 *
 * Two more cover the SIMD-explicit kernels and the capture-time SoA
 * (support/simd.hpp; sim::SampleColumns):
 *
 *  5. filtered_reduction — the contention-filtered railStats path
 *     (word-skipping bitmap kernel) against the pre-PR per-point
 *     branchy loop, on a blocky contention pattern like the one real
 *     background-active intervals produce.  Floor: >= 1.5x.
 *
 *  6. capture_to_stitch — end to end from window emission to stitched
 *     ProfileSet: columnar capture + translateColumn + 4-wide boundary
 *     scans + bulk column appends (the production ProfileStitcher)
 *     against an in-bench replica of the pre-PR path (row capture,
 *     per-sample translation calls, branchy scans, transposing
 *     appendTimelineRun).  Floor: >= 1.3x.
 *
 * Every scenario hard-fails on any bitwise divergence between baseline
 * and columnar results, smoke or not — including in forced-scalar
 * (FINGRAV_FORCE_SCALAR_SIMD) builds, where the shim routes through its
 * scalar fallbacks and the speedup floors are reported but not enforced.
 * In full SIMD-enabled mode at least two of the four original kernels
 * must clear 2x, filtered_reduction must clear 1.5x and
 * capture_to_stitch 1.3x (floors tracked by tools/bench_regression.py);
 * results go to BENCH_dataplane.json.
 *
 * Usage: bench_dataplane [--smoke] [--out PATH]
 *   --smoke   reduced problem sizes, thresholds reported but not enforced
 *   --out     output JSON path (default BENCH_dataplane.json)
 */

#include <algorithm>
#include <bit>
#include <chrono>
#include <cmath>
#include <cstdint>
#include <iostream>
#include <string>
#include <vector>

#include "fingrav/campaign_runner.hpp"
#include "fingrav/codec.hpp"
#include "fingrav/profile.hpp"
#include "fingrav/profiler.hpp"
#include "fingrav/run_executor.hpp"
#include "fingrav/stitcher.hpp"
#include "fingrav/time_sync.hpp"
#include "runtime/host_runtime.hpp"
#include "sim/machine_config.hpp"
#include "sim/power_logger.hpp"
#include "sim/simulation.hpp"
#include "support/simd.hpp"
#include "support/statistics.hpp"
#include "tools/bench_json.hpp"

namespace fc = fingrav::core;
namespace fs = fingrav::support;
namespace sim = fingrav::sim;
namespace tools = fingrav::tools;

namespace {

double
wallMs(const std::chrono::steady_clock::time_point& t0)
{
    const auto t1 = std::chrono::steady_clock::now();
    return std::chrono::duration<double, std::milli>(t1 - t0).count();
}

/** Bit-pattern equality: distinguishes -0.0 from +0.0 and survives any
 *  future NaN in the pipeline, unlike operator==. */
bool
sameBits(double a, double b)
{
    return std::bit_cast<std::uint64_t>(a) == std::bit_cast<std::uint64_t>(b);
}

/** Deterministic xorshift64* stream (the bench needs repeatable data,
 *  not statistical quality). */
struct Xorshift {
    std::uint64_t state;

    explicit Xorshift(std::uint64_t seed) : state(seed | 1) {}

    std::uint64_t
    next()
    {
        state ^= state >> 12;
        state ^= state << 25;
        state ^= state >> 27;
        return state * 0x2545F4914F6CDD1DULL;
    }

    /** Uniform double in [lo, hi). */
    double
    uniform(double lo, double hi)
    {
        const double u =
            static_cast<double>(next() >> 11) * 0x1.0p-53;
        return lo + u * (hi - lo);
    }
};

/** Synthetic profile with every column exercised (mixed contention,
 *  spread rails, multiple runs/execs). */
fc::PowerProfile
makeProfile(std::size_t n, fc::ProfileKind kind, std::uint64_t seed)
{
    Xorshift rng(seed);
    fc::PowerProfile prof("bench", kind);
    prof.reserve(n);
    for (std::size_t i = 0; i < n; ++i) {
        sim::PowerSample s;
        s.gpu_timestamp = static_cast<std::int64_t>(i * 97 + (rng.next() & 7));
        s.total_w = rng.uniform(80.0, 760.0);
        s.xcd_w = rng.uniform(30.0, 500.0);
        s.iod_w = rng.uniform(10.0, 120.0);
        s.hbm_w = rng.uniform(20.0, 140.0);
        prof.addRow(rng.uniform(0.0, 900.0), rng.uniform(0.0, 1.0),
                    rng.uniform(0.0, 50'000.0), s, i % 60, i % 24,
                    (rng.next() & 3) == 0);
    }
    return prof;
}

bool
profilesBitIdentical(const fc::PowerProfile& a, const fc::PowerProfile& b)
{
    if (a.size() != b.size())
        return false;
    for (std::size_t i = 0; i < a.size(); ++i) {
        if (!(a.point(i) == b.point(i)))
            return false;
    }
    return a.contendedWords() == b.contendedWords();
}

/** Best wall time of `reps` runs of `fn` (first run warms caches). */
template <typename Fn>
double
bestMs(int reps, Fn&& fn)
{
    double best = 0.0;
    for (int r = 0; r < reps; ++r) {
        const auto t0 = std::chrono::steady_clock::now();
        fn();
        const double ms = wallMs(t0);
        if (r == 0 || ms < best)
            best = ms;
    }
    return best;
}

// ---------------------------------------------------------------------------
// Scenario 1: rail reductions — per-accessor AoS loops vs railStats
// ---------------------------------------------------------------------------

constexpr fc::Rail kRails[] = {fc::Rail::kTotal, fc::Rail::kXcd,
                               fc::Rail::kIod, fc::Rail::kHbm};

/** The seed's reduction suite over the materialized AoS vector: one
 *  loop per accessor, per-point railValue dispatch — 14 results (mean,
 *  min, max per rail; contended/uncontended total-rail means). */
std::vector<double>
reductionSuiteAos(const std::vector<fc::ProfilePoint>& pts)
{
    std::vector<double> out;
    out.reserve(14);
    for (const fc::Rail rail : kRails) {
        double acc = 0.0;
        for (const auto& p : pts)
            acc += fc::railValue(p.sample, rail);
        out.push_back(pts.empty()
                          ? 0.0
                          : acc / static_cast<double>(pts.size()));
        double mn = pts.empty() ? 0.0 : fc::railValue(pts[0].sample, rail);
        for (const auto& p : pts)
            mn = std::min(mn, fc::railValue(p.sample, rail));
        out.push_back(mn);
        double mx = pts.empty() ? 0.0 : fc::railValue(pts[0].sample, rail);
        for (const auto& p : pts)
            mx = std::max(mx, fc::railValue(p.sample, rail));
        out.push_back(mx);
    }
    for (const bool contended : {false, true}) {
        double acc = 0.0;
        std::size_t count = 0;
        for (const auto& p : pts) {
            if (p.contended != contended)
                continue;
            acc += p.sample.total_w;
            ++count;
        }
        out.push_back(count ? acc / static_cast<double>(count) : 0.0);
    }
    return out;
}

/** The same 14 results through the columnar kernel. */
std::vector<double>
reductionSuiteSoa(const fc::PowerProfile& prof)
{
    std::vector<double> out;
    out.reserve(14);
    for (const fc::Rail rail : kRails) {
        const auto st = prof.railStats(rail);
        out.push_back(st.mean());
        out.push_back(st.min);
        out.push_back(st.max);
    }
    out.push_back(prof.meanPowerWhere(false));
    out.push_back(prof.meanPowerWhere(true));
    return out;
}

bool
runRailReduction(tools::BenchReport& report, bool smoke, double& speedup_out)
{
    const std::size_t n = smoke ? 50'000 : 1'000'000;
    const int reps = smoke ? 3 : 5;
    const auto prof = makeProfile(n, fc::ProfileKind::kSsp, 11);

    // The AoS baseline gets its vector materialized up front — only the
    // reduction loops are timed, not the layout conversion.
    std::vector<fc::ProfilePoint> pts;
    pts.reserve(n);
    for (std::size_t i = 0; i < n; ++i)
        pts.push_back(prof.point(i));

    std::vector<double> aos;
    const double aos_ms = bestMs(reps, [&] { aos = reductionSuiteAos(pts); });
    std::vector<double> soa;
    const double soa_ms = bestMs(reps, [&] { soa = reductionSuiteSoa(prof); });

    bool identical = aos.size() == soa.size();
    for (std::size_t i = 0; identical && i < aos.size(); ++i)
        identical = sameBits(aos[i], soa[i]);
    const double speedup = soa_ms > 0.0 ? aos_ms / soa_ms : 0.0;
    speedup_out = speedup;

    auto& s = report.scenario("rail_reduction");
    s.note("description",
           "mean/min/max x 4 rails + contention-split means: AoS "
           "per-accessor loops vs columnar railStats");
    s.metric("points", static_cast<std::uint64_t>(n));
    s.metric("aos_wall_ms", aos_ms);
    s.metric("soa_wall_ms", soa_ms);
    s.metric("speedup", speedup);
    s.note("bit_identical", identical ? "yes" : "NO");

    std::cout << "rail_reduction: AoS " << aos_ms << " ms, SoA " << soa_ms
              << " ms, speedup " << speedup << "x, bit-identical: "
              << (identical ? "yes" : "NO") << "\n";
    if (!identical)
        std::cerr << "FAIL: railStats diverged from the AoS reference\n";
    return identical;
}

// ---------------------------------------------------------------------------
// Scenario 2: percentiles — copy+sort vs copy+nth_element
// ---------------------------------------------------------------------------

constexpr double kPercentiles[] = {1.0, 25.0, 50.0, 75.0, 90.0, 99.0, 99.9};

/** The seed's percentile: copy, full sort, interpolate. */
double
percentileSorted(std::vector<double> xs, double p)
{
    if (xs.empty())
        return 0.0;
    std::sort(xs.begin(), xs.end());
    const double rank =
        p / 100.0 * static_cast<double>(xs.size() - 1);
    const auto lo = static_cast<std::size_t>(rank);
    const auto hi = std::min(lo + 1, xs.size() - 1);
    const double frac = rank - static_cast<double>(lo);
    return xs[lo] * (1.0 - frac) + xs[hi] * frac;
}

bool
runPercentile(tools::BenchReport& report, bool smoke, double& speedup_out)
{
    const std::size_t n = smoke ? 50'000 : 1'000'000;
    const int reps = smoke ? 3 : 5;
    Xorshift rng(23);
    std::vector<double> xs;
    xs.reserve(n);
    for (std::size_t i = 0; i < n; ++i)
        xs.push_back(rng.uniform(50.0, 5'000.0));

    std::vector<double> sorted_vals(std::size(kPercentiles));
    const double sort_ms = bestMs(reps, [&] {
        for (std::size_t i = 0; i < std::size(kPercentiles); ++i)
            sorted_vals[i] = percentileSorted(xs, kPercentiles[i]);
    });
    std::vector<double> select_vals(std::size(kPercentiles));
    const double select_ms = bestMs(reps, [&] {
        for (std::size_t i = 0; i < std::size(kPercentiles); ++i)
            select_vals[i] = fs::percentile(xs, kPercentiles[i]);
    });

    bool identical = true;
    for (std::size_t i = 0; i < std::size(kPercentiles); ++i)
        identical = identical && sameBits(sorted_vals[i], select_vals[i]);
    const double speedup = select_ms > 0.0 ? sort_ms / select_ms : 0.0;
    speedup_out = speedup;

    auto& s = report.scenario("percentile");
    s.note("description",
           "seven percentiles over one sample: full sort vs nth_element "
           "selection");
    s.metric("points", static_cast<std::uint64_t>(n));
    s.metric("sort_wall_ms", sort_ms);
    s.metric("select_wall_ms", select_ms);
    s.metric("speedup", speedup);
    s.note("bit_identical", identical ? "yes" : "NO");

    std::cout << "percentile: sort " << sort_ms << " ms, select "
              << select_ms << " ms, speedup " << speedup
              << "x, bit-identical: " << (identical ? "yes" : "NO") << "\n";
    if (!identical)
        std::cerr << "FAIL: nth_element percentile diverged from the sort "
                     "reference\n";
    return identical;
}

// ---------------------------------------------------------------------------
// Scenario 3: codec — v1 field-wise point replica vs v2 columnar
// ---------------------------------------------------------------------------

/** Replica of the v1 per-point profile layout (field-interleaved
 *  records), built from the same Encoder primitives the v1 codec used. */
void
encodeProfileV1(fc::codec::Encoder& enc, const fc::PowerProfile& prof)
{
    enc.str(prof.label());
    enc.u8(static_cast<std::uint8_t>(prof.kind()));
    enc.u32(static_cast<std::uint32_t>(prof.size()));
    for (const auto& p : prof.points()) {
        enc.f64(p.toi_us);
        enc.f64(p.toi_frac);
        enc.f64(p.run_time_us);
        enc.i64(p.sample.gpu_timestamp);
        enc.f64(p.sample.total_w);
        enc.f64(p.sample.xcd_w);
        enc.f64(p.sample.iod_w);
        enc.f64(p.sample.hbm_w);
        enc.u64(p.run_index);
        enc.u64(p.exec_index);
        enc.boolean(p.contended);
    }
}

fc::PowerProfile
decodeProfileV1(fc::codec::Decoder& dec)
{
    const std::string label = dec.str();
    const auto kind = static_cast<fc::ProfileKind>(dec.u8());
    const auto n = static_cast<std::size_t>(
        fc::codec::checkedCount(dec.u32(), "v1 bench profile points"));
    fc::PowerProfile prof(label, kind);
    prof.reserve(n);
    for (std::size_t i = 0; i < n; ++i) {
        fc::ProfilePoint p;
        p.toi_us = dec.f64();
        p.toi_frac = dec.f64();
        p.run_time_us = dec.f64();
        p.sample.gpu_timestamp = dec.i64();
        p.sample.total_w = dec.f64();
        p.sample.xcd_w = dec.f64();
        p.sample.iod_w = dec.f64();
        p.sample.hbm_w = dec.f64();
        p.run_index = dec.u64();
        p.exec_index = dec.u64();
        p.contended = dec.boolean();
        prof.add(p);
    }
    return prof;
}

bool
runCodec(tools::BenchReport& report, bool smoke, double& speedup_out)
{
    const std::size_t n = smoke ? 40'000 : 400'000;
    const int reps = smoke ? 3 : 5;
    fc::ProfileSet set;
    set.label = "bench";
    set.sse = makeProfile(n / 8, fc::ProfileKind::kSse, 31);
    set.ssp = makeProfile(n / 2, fc::ProfileKind::kSsp, 37);
    set.timeline = makeProfile(n, fc::ProfileKind::kTimeline, 41);

    // v1 replica: the three profiles as field-interleaved point records.
    std::vector<std::uint8_t> v1_bytes;
    const double v1_enc_ms = bestMs(reps, [&] {
        fc::codec::Encoder enc;
        encodeProfileV1(enc, set.sse);
        encodeProfileV1(enc, set.ssp);
        encodeProfileV1(enc, set.timeline);
        v1_bytes = enc.bytes();
    });
    fc::PowerProfile v1_sse, v1_ssp, v1_timeline;
    const double v1_dec_ms = bestMs(reps, [&] {
        fc::codec::Decoder dec(v1_bytes);
        v1_sse = decodeProfileV1(dec);
        v1_ssp = decodeProfileV1(dec);
        v1_timeline = decodeProfileV1(dec);
        dec.expectEnd("v1 bench payload");
    });

    // v2: the real columnar ProfileSet codec (whole set, so the v2 side
    // carries the extra scalar fields the replica skips — conservative).
    std::vector<std::uint8_t> v2_bytes;
    const double v2_enc_ms =
        bestMs(reps, [&] { v2_bytes = fc::codec::encode(set); });
    fc::ProfileSet v2_set;
    const double v2_dec_ms =
        bestMs(reps, [&] { v2_set = fc::codec::decodeProfileSet(v2_bytes); });

    const bool identical = profilesBitIdentical(v1_sse, set.sse) &&
                           profilesBitIdentical(v1_ssp, set.ssp) &&
                           profilesBitIdentical(v1_timeline, set.timeline) &&
                           fc::identicalProfileSets(v2_set, set);
    const double enc_speedup = v2_enc_ms > 0.0 ? v1_enc_ms / v2_enc_ms : 0.0;
    const double dec_speedup = v2_dec_ms > 0.0 ? v1_dec_ms / v2_dec_ms : 0.0;
    speedup_out = dec_speedup;
    const double mb = static_cast<double>(v2_bytes.size()) / 1.0e6;

    auto& s = report.scenario("codec");
    s.note("description",
           "ProfileSet wire codec: v1 field-wise point replica vs v2 "
           "columnar encode/decode");
    s.metric("points", static_cast<std::uint64_t>(
                           set.sse.size() + set.ssp.size() +
                           set.timeline.size()));
    s.metric("v1_payload_bytes", static_cast<std::uint64_t>(v1_bytes.size()));
    s.metric("v2_payload_bytes", static_cast<std::uint64_t>(v2_bytes.size()));
    s.metric("v1_encode_wall_ms", v1_enc_ms);
    s.metric("v2_encode_wall_ms", v2_enc_ms);
    s.metric("v1_decode_wall_ms", v1_dec_ms);
    s.metric("v2_decode_wall_ms", v2_dec_ms);
    s.metric("encode_speedup", enc_speedup);
    s.metric("decode_speedup", dec_speedup);
    s.metric("v2_encode_mb_per_s",
             v2_enc_ms > 0.0 ? mb / (v2_enc_ms / 1.0e3) : 0.0);
    s.metric("v2_decode_mb_per_s",
             v2_dec_ms > 0.0 ? mb / (v2_dec_ms / 1.0e3) : 0.0);
    s.note("bit_identical", identical ? "yes" : "NO");

    std::cout << "codec: v1 encode " << v1_enc_ms << " ms / decode "
              << v1_dec_ms << " ms, v2 encode " << v2_enc_ms
              << " ms / decode " << v2_dec_ms << " ms, speedups "
              << enc_speedup << "x / " << dec_speedup
              << "x, bit-identical: " << (identical ? "yes" : "NO") << "\n";
    if (!identical)
        std::cerr << "FAIL: codec round trips diverged from the source "
                     "set\n";
    return identical;
}

// ---------------------------------------------------------------------------
// Scenario 4: timeline assembly — per-point add() vs appendTimelineRun
// ---------------------------------------------------------------------------

bool
runStitchAppend(tools::BenchReport& report, bool smoke, double& speedup_out)
{
    const std::size_t runs = 64;
    const std::size_t per_run = smoke ? 1'000 : 12'000;
    const int reps = smoke ? 3 : 5;

    Xorshift rng(53);
    std::vector<sim::PowerSample> samples(per_run);
    std::vector<std::int64_t> cpu_ns(per_run);
    std::vector<std::uint8_t> contended(per_run);
    for (std::size_t k = 0; k < per_run; ++k) {
        samples[k].gpu_timestamp = static_cast<std::int64_t>(k * 131);
        samples[k].total_w = rng.uniform(80.0, 760.0);
        samples[k].xcd_w = rng.uniform(30.0, 500.0);
        samples[k].iod_w = rng.uniform(10.0, 120.0);
        samples[k].hbm_w = rng.uniform(20.0, 140.0);
        cpu_ns[k] = 5'000'000 + static_cast<std::int64_t>(k) * 200'000;
        contended[k] = (rng.next() & 3) == 0 ? 1 : 0;
    }
    const std::int64_t run_start = 4'000'000;

    // Baseline: the seed stitcher's inner loop — one ProfilePoint
    // temporary per sample through add().
    fc::PowerProfile aos;
    const double aos_ms = bestMs(reps, [&] {
        aos = fc::PowerProfile("bench", fc::ProfileKind::kTimeline);
        for (std::size_t r = 0; r < runs; ++r) {
            for (std::size_t k = 0; k < per_run; ++k) {
                fc::ProfilePoint p;
                p.run_time_us =
                    static_cast<double>(cpu_ns[k] - run_start) / 1.0e3;
                p.sample = samples[k];
                p.run_index = r;
                p.contended = contended[k] != 0;
                aos.add(p);
            }
        }
    });

    // Columnar: one bulk append per run.
    fc::PowerProfile soa;
    const double soa_ms = bestMs(reps, [&] {
        soa = fc::PowerProfile("bench", fc::ProfileKind::kTimeline);
        for (std::size_t r = 0; r < runs; ++r) {
            soa.appendTimelineRun(samples.data(), cpu_ns.data(),
                                  contended.data(), per_run, run_start, r);
        }
    });

    const bool identical = profilesBitIdentical(aos, soa);
    const double speedup = soa_ms > 0.0 ? aos_ms / soa_ms : 0.0;
    speedup_out = speedup;

    auto& s = report.scenario("stitch_append");
    s.note("description",
           "64-run timeline assembly: per-sample ProfilePoint add() vs "
           "bulk appendTimelineRun");
    s.metric("points", static_cast<std::uint64_t>(runs * per_run));
    s.metric("pointwise_wall_ms", aos_ms);
    s.metric("bulk_wall_ms", soa_ms);
    s.metric("speedup", speedup);
    s.note("bit_identical", identical ? "yes" : "NO");

    std::cout << "stitch_append: point-wise " << aos_ms << " ms, bulk "
              << soa_ms << " ms, speedup " << speedup
              << "x, bit-identical: " << (identical ? "yes" : "NO") << "\n";
    if (!identical)
        std::cerr << "FAIL: appendTimelineRun diverged from the point-wise "
                     "reference\n";
    return identical;
}

// ---------------------------------------------------------------------------
// Scenario 5: filtered reduction — branchy per-point loop vs word-skipping
// ---------------------------------------------------------------------------

/** Profile with *blocky* contention: background-active intervals cover
 *  stretches of consecutive samples (plus scattered single flips so
 *  mixed bitmap words are exercised), the shape real scenario runs
 *  produce — and the shape the word-level kernel exploits. */
fc::PowerProfile
makeBlockyProfile(std::size_t n, std::uint64_t seed)
{
    Xorshift rng(seed);
    fc::PowerProfile prof("bench", fc::ProfileKind::kSsp);
    prof.reserve(n);
    bool contended = false;
    std::size_t left = 0;
    for (std::size_t i = 0; i < n; ++i) {
        if (left == 0) {
            contended = !contended;
            left = contended ? 200 + (rng.next() % 300)
                             : 400 + (rng.next() % 900);
        }
        --left;
        // ~1% scattered flips keep some words mixed.
        const bool flag =
            (rng.next() % 128) == 0 ? !contended : contended;
        sim::PowerSample s;
        s.gpu_timestamp = static_cast<std::int64_t>(i * 97);
        s.total_w = rng.uniform(80.0, 760.0);
        s.xcd_w = rng.uniform(30.0, 500.0);
        s.iod_w = rng.uniform(10.0, 120.0);
        s.hbm_w = rng.uniform(20.0, 140.0);
        prof.addRow(rng.uniform(0.0, 900.0), rng.uniform(0.0, 1.0),
                    rng.uniform(0.0, 50'000.0), s, i % 60, i % 24, flag);
    }
    return prof;
}

/** The pre-PR railStats filtered path, verbatim: one bitmap test and
 *  one branch per point, over the same profile columns. */
fc::RailStats
filteredStatsBranchy(const fc::PowerProfile& prof, fc::Rail rail, bool want)
{
    fc::RailStats st;
    const std::vector<double>& col = prof.railColumn(rail);
    const double* v = col.data();
    double acc = 0.0;
    double mn = 0.0;
    double mx = 0.0;
    std::size_t n = 0;
    for (std::size_t i = 0; i < prof.size(); ++i) {
        if (prof.contendedBit(i) != want)
            continue;
        const double x = v[i];
        if (n == 0) {
            mn = x;
            mx = x;
        } else {
            mn = std::min(mn, x);
            mx = std::max(mx, x);
        }
        acc += x;
        ++n;
    }
    st.count = n;
    st.sum = acc;
    st.min = mn;
    st.max = mx;
    return st;
}

bool
runFilteredReduction(tools::BenchReport& report, bool smoke,
                     double& speedup_out)
{
    const std::size_t n = smoke ? 50'000 : 1'000'000;
    const int reps = smoke ? 3 : 7;
    const auto prof = makeBlockyProfile(n, 67);

    // 8 reductions: {contended, uncontended} x 4 rails.
    std::vector<fc::RailStats> branchy(8);
    const double branchy_ms = bestMs(reps, [&] {
        std::size_t out = 0;
        for (const bool want : {false, true}) {
            for (const fc::Rail rail : kRails)
                branchy[out++] = filteredStatsBranchy(prof, rail, want);
        }
    });
    std::vector<fc::RailStats> simd(8);
    const double simd_ms = bestMs(reps, [&] {
        std::size_t out = 0;
        for (const bool want : {false, true}) {
            const auto filter = want ? fc::ContentionFilter::kContended
                                     : fc::ContentionFilter::kUncontended;
            for (const fc::Rail rail : kRails)
                simd[out++] = prof.railStats(rail, filter);
        }
    });

    bool identical = true;
    for (std::size_t i = 0; i < 8; ++i) {
        identical = identical && branchy[i].count == simd[i].count &&
                    sameBits(branchy[i].sum, simd[i].sum) &&
                    sameBits(branchy[i].min, simd[i].min) &&
                    sameBits(branchy[i].max, simd[i].max);
    }
    const double speedup = simd_ms > 0.0 ? branchy_ms / simd_ms : 0.0;
    speedup_out = speedup;

    auto& s = report.scenario("filtered_reduction");
    s.note("description",
           "contention-filtered railStats x 4 rails x 2 filters: per-point "
           "branchy loop vs word-skipping bitmap kernel");
    s.metric("points", static_cast<std::uint64_t>(n));
    s.metric("branchy_wall_ms", branchy_ms);
    s.metric("simd_wall_ms", simd_ms);
    s.metric("speedup", speedup);
    s.note("bit_identical", identical ? "yes" : "NO");
    s.note("simd_enabled", fs::simd::kSimdEnabled ? "yes" : "no");

    std::cout << "filtered_reduction: branchy " << branchy_ms << " ms, simd "
              << simd_ms << " ms, speedup " << speedup
              << "x, bit-identical: " << (identical ? "yes" : "NO") << "\n";
    if (!identical)
        std::cerr << "FAIL: filtered railStats diverged from the branchy "
                     "reference\n";
    return identical;
}

// ---------------------------------------------------------------------------
// Scenario 6: capture to stitch — pre-PR row pipeline vs SoA end to end
// ---------------------------------------------------------------------------

/** One run's synthetic window-emission stream (what the logger's window
 *  closes would produce), in raw field arrays so both capture layouts
 *  fill their storage from the same source. */
struct EmissionStream {
    std::vector<std::int64_t> gpu_ts;  ///< ascending counter values
    std::vector<double> total_w;
    std::vector<double> xcd_w;
    std::vector<double> iod_w;
    std::vector<double> hbm_w;
};

bool
runCaptureToStitch(tools::BenchReport& report, bool smoke,
                   double& speedup_out)
{
    const std::size_t runs = smoke ? 6 : 12;
    const std::size_t per_run = smoke ? 4'000 : 20'000;
    const std::size_t execs = 8;
    const int reps = smoke ? 3 : 9;

    // A real simulated device only to calibrate TimeSync (the bench's
    // translation must run the production sync math, division included).
    sim::Simulation simulation(sim::mi300xConfig(), 71, 1);
    fingrav::runtime::HostRuntime host(simulation, simulation.forkRng(7));
    const auto sync = fc::TimeSync::calibrate(host);
    const auto tick = host.timestampTick();

    fc::ProfilerOptions opts;
    opts.binning = false;  // every run golden: stitch = pure data plane
    const std::size_t sse_idx = 3;
    const std::size_t ssp_idx = 4;

    // Synthetic runs: emission streams plus RunRecord skeletons whose
    // exec windows and contention intervals land inside the sample span.
    Xorshift rng(73);
    std::vector<EmissionStream> streams(runs);
    std::vector<fc::RunRecord> records(runs);
    for (std::size_t r = 0; r < runs; ++r) {
        auto& st = streams[r];
        st.gpu_ts.resize(per_run);
        st.total_w.resize(per_run);
        st.xcd_w.resize(per_run);
        st.iod_w.resize(per_run);
        st.hbm_w.resize(per_run);
        const std::int64_t base =
            sync.anchorGpuNs() / tick.nanos() +
            static_cast<std::int64_t>(r) * 40'000'000;
        for (std::size_t k = 0; k < per_run; ++k) {
            st.gpu_ts[k] = base + static_cast<std::int64_t>(k) * 131;
            st.total_w[k] = rng.uniform(80.0, 760.0);
            st.xcd_w[k] = rng.uniform(30.0, 500.0);
            st.iod_w[k] = rng.uniform(10.0, 120.0);
            st.hbm_w[k] = rng.uniform(20.0, 140.0);
        }

        auto& rec = records[r];
        rec.run_index = r;
        const std::int64_t cpu0 = sync.gpuCounterToCpuNs(st.gpu_ts.front());
        const std::int64_t cpu1 = sync.gpuCounterToCpuNs(st.gpu_ts.back());
        const std::int64_t span = cpu1 - cpu0;
        rec.run_start_cpu_ns = cpu0 - 1'000;
        rec.log_start_cpu_ns = cpu0 - 5'000;
        // Executions are short relative to the log span (the paper's
        // sparse-LOI geometry: delays and idle dominate a run's log, so
        // only a few windows land inside any one execution) — each of
        // the 8 windows covers 1/64 of the span.
        for (std::size_t j = 0; j < execs; ++j) {
            fc::ExecObservation ob;
            ob.label = "bench";
            ob.is_main = true;
            ob.timing.cpu_start_ns =
                cpu0 + span * static_cast<std::int64_t>(j) /
                           static_cast<std::int64_t>(execs);
            ob.timing.cpu_end_ns =
                ob.timing.cpu_start_ns +
                span / (8 * static_cast<std::int64_t>(execs));
            rec.main_exec_indices.push_back(rec.execs.size());
            rec.execs.push_back(ob);
        }
        // Two background-active intervals covering ~30% of the span.
        rec.contended_cpu_ns.push_back(
            {cpu0 + span / 10, cpu0 + span / 4});
        rec.contended_cpu_ns.push_back(
            {cpu0 + span / 2, cpu0 + span / 2 + span / 6});
    }

    auto skeletonSet = [&] {
        fc::ProfileSet out;
        out.label = "bench";
        out.sse_exec_index = sse_idx;
        out.ssp_exec_index = ssp_idx;
        return out;
    };

    // Baseline: the pre-PR pipeline, replicated in its real two-phase
    // shape — capture happens during the campaign (RunExecutor fills
    // every record's rows as its windows close), stitching afterwards
    // walks the cold records: one translation call per sample, branchy
    // advance-while-less scans, transposing AoS appendTimelineRun
    // growing the profile columns run by run.  Storage is per run (each
    // RunRecord owned its row vector and each RunCache its alignment
    // vectors pre-PR), warm after the first rep — the same discipline
    // as the refilled capture columns opposite.
    fc::ProfileSet base_set;
    std::vector<std::vector<sim::PowerSample>> rows_per_run(runs);
    std::vector<std::vector<std::int64_t>> cpu_per_run(runs);
    std::vector<std::vector<std::uint8_t>> contended_per_run(runs);
    const double base_ms = bestMs(reps, [&] {
        // Phase 1: capture — one struct push per closed window.
        for (std::size_t r = 0; r < runs; ++r) {
            const auto& st = streams[r];
            auto& rows = rows_per_run[r];
            rows.clear();
            rows.reserve(per_run);
            for (std::size_t k = 0; k < per_run; ++k) {
                sim::PowerSample s;
                s.gpu_timestamp = st.gpu_ts[k];
                s.total_w = st.total_w[k];
                s.xcd_w = st.xcd_w[k];
                s.iod_w = st.iod_w[k];
                s.hbm_w = st.hbm_w[k];
                rows.push_back(s);
            }
        }
        // Phase 2: stitch every record.
        base_set = skeletonSet();
        for (std::size_t r = 0; r < runs; ++r) {
            const auto& run = records[r];
            const auto& rows = rows_per_run[r];
            auto& cpu = cpu_per_run[r];
            auto& contended = contended_per_run[r];
            // Align: one translation call per sample.
            cpu.resize(per_run);
            for (std::size_t k = 0; k < per_run; ++k)
                cpu[k] = sync.gpuCounterToCpuNs(rows[k].gpu_timestamp);
            contended.assign(per_run, 0);
            const auto& ivs = run.contended_cpu_ns;
            std::size_t ii = 0;
            for (std::size_t k = 0; k < per_run; ++k) {
                const std::int64_t t = cpu[k];
                while (ii < ivs.size() && t >= ivs[ii].second)
                    ++ii;
                contended[k] =
                    (ii < ivs.size() && t >= ivs[ii].first) ? 1 : 0;
            }
            // Scalar two-pointer sweep + per-point addRow.
            std::size_t si = 0;
            const std::size_t n = per_run;
            for (std::size_t j = 0; j < run.main_exec_indices.size();
                 ++j) {
                const auto& timing =
                    run.execs[run.main_exec_indices[j]].timing;
                const double dur_ns = static_cast<double>(
                    timing.cpu_end_ns - timing.cpu_start_ns);
                if (dur_ns <= 0.0)
                    continue;
                while (si < n && cpu[si] < timing.cpu_start_ns)
                    ++si;
                const bool is_sse = j == base_set.sse_exec_index;
                const bool is_ssp = j >= base_set.ssp_exec_index;
                if (!is_sse && !is_ssp)
                    continue;
                for (std::size_t k = si;
                     k < n && cpu[k] <= timing.cpu_end_ns; ++k) {
                    const double toi_ns = static_cast<double>(
                        cpu[k] - timing.cpu_start_ns);
                    const double toi_us = toi_ns / 1e3;
                    const double toi_frac = toi_ns / dur_ns;
                    const double run_time_us =
                        static_cast<double>(cpu[k] -
                                            run.run_start_cpu_ns) /
                        1e3;
                    const bool flag = contended[k] != 0;
                    if (is_sse)
                        base_set.sse.addRow(toi_us, toi_frac, run_time_us,
                                            rows[k], run.run_index, j,
                                            flag);
                    if (is_ssp)
                        base_set.ssp.addRow(toi_us, toi_frac, run_time_us,
                                            rows[k], run.run_index, j,
                                            flag);
                }
            }
            base_set.timeline.appendTimelineRun(
                rows.data(), cpu.data(), contended.data(), n,
                run.run_start_cpu_ns, run.run_index);
        }
    });

    // SoA end to end: columnar capture into the RunRecords, then the
    // production ProfileStitcher (translateColumn, 4-wide scans, bulk
    // column appends into pre-reserved profile columns).
    fc::ProfileSet soa_set;
    const double soa_ms = bestMs(reps, [&] {
        for (std::size_t r = 0; r < runs; ++r) {
            const auto& st = streams[r];
            auto& cols = records[r].samples;
            cols.clear();
            cols.reserve(per_run);
            for (std::size_t k = 0; k < per_run; ++k)
                cols.push(st.gpu_ts[k], st.total_w[k], st.xcd_w[k],
                          st.iod_w[k], st.hbm_w[k]);
        }
        soa_set = skeletonSet();
        fc::ProfileStitcher stitcher(opts, sync, tick);
        stitcher.restitch(records, soa_set);
    });

    const bool identical = profilesBitIdentical(base_set.sse, soa_set.sse) &&
                           profilesBitIdentical(base_set.ssp, soa_set.ssp) &&
                           profilesBitIdentical(base_set.timeline,
                                                soa_set.timeline);
    const double speedup = soa_ms > 0.0 ? base_ms / soa_ms : 0.0;
    speedup_out = speedup;

    auto& s = report.scenario("capture_to_stitch");
    s.note("description",
           "window emission to stitched ProfileSet: pre-PR row pipeline "
           "(struct capture, per-sample translation, branchy scans, "
           "transposing append) vs SoA capture + SIMD stitcher");
    s.metric("points", static_cast<std::uint64_t>(runs * per_run));
    s.metric("row_wall_ms", base_ms);
    s.metric("soa_wall_ms", soa_ms);
    s.metric("speedup", speedup);
    s.note("bit_identical", identical ? "yes" : "NO");
    s.note("simd_enabled", fs::simd::kSimdEnabled ? "yes" : "no");

    std::cout << "capture_to_stitch: rows " << base_ms << " ms, soa "
              << soa_ms << " ms, speedup " << speedup
              << "x, bit-identical: " << (identical ? "yes" : "NO") << "\n";
    if (!identical)
        std::cerr << "FAIL: SoA capture-to-stitch diverged from the row "
                     "reference\n";
    return identical;
}

}  // namespace

int
main(int argc, char** argv)
{
    bool smoke = false;
    std::string out_path = "BENCH_dataplane.json";
    for (int i = 1; i < argc; ++i) {
        const std::string arg = argv[i];
        if (arg == "--smoke") {
            smoke = true;
        } else if (arg == "--out" && i + 1 < argc) {
            out_path = argv[++i];
        } else {
            std::cerr << "usage: bench_dataplane [--smoke] [--out PATH]\n";
            return 2;
        }
    }

    tools::BenchReport report("dataplane");
    bool ok = true;
    double speedups[6] = {0.0, 0.0, 0.0, 0.0, 0.0, 0.0};
    ok = runRailReduction(report, smoke, speedups[0]) && ok;
    ok = runPercentile(report, smoke, speedups[1]) && ok;
    ok = runCodec(report, smoke, speedups[2]) && ok;
    ok = runStitchAppend(report, smoke, speedups[3]) && ok;
    ok = runFilteredReduction(report, smoke, speedups[4]) && ok;
    ok = runCaptureToStitch(report, smoke, speedups[5]) && ok;

    // The tentpole floor: at least two data-plane kernels >= 2x over
    // their scalar baselines (rail_reduction, percentile, codec decode,
    // stitch_append).
    if (!smoke) {
        int cleared = 0;
        for (std::size_t i = 0; i < 4; ++i) {
            if (speedups[i] >= 2.0)
                ++cleared;
        }
        if (cleared < 2) {
            std::cerr << "FAIL: only " << cleared
                      << " data-plane kernels cleared the 2x floor (need "
                         ">= 2)\n";
            ok = false;
        }
    }
    // SIMD-kernel floors — enforced only when the shim is live (the
    // forced-scalar leg runs the same comparisons for bit-identity but
    // measures the fallbacks against themselves).
    if (!smoke && fs::simd::kSimdEnabled) {
        if (speedups[4] < 1.5) {
            std::cerr << "FAIL: filtered_reduction speedup " << speedups[4]
                      << "x below the 1.5x floor\n";
            ok = false;
        }
        if (speedups[5] < 1.3) {
            std::cerr << "FAIL: capture_to_stitch speedup " << speedups[5]
                      << "x below the 1.3x floor\n";
            ok = false;
        }
    }

    if (!report.write(out_path)) {
        std::cerr << "FAIL: cannot write " << out_path << "\n";
        return 1;
    }
    std::cout << "wrote " << out_path << "\n";
    return ok ? 0 : 1;
}

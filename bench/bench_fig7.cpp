/**
 * @file
 * Regenerates paper Figure 7: component-level comparative analysis of the
 * compute-bound GEMMs vs the memory-bound GEMVs.
 *
 * Paper facts reproduced here (all from SSP profiles, reported relative as
 * in the paper):
 *  - CB GEMMs show considerably higher total and XCD power than MB GEMVs;
 *  - among CB GEMMs, CB-8K has slightly higher total/XCD power;
 *  - GEMV total power drops from 8K to 2K;
 *  - MB-8K-GEMV stresses IOD power (above every CB GEMM);
 *  - HBM power is similar across kernels except CB-8K-GEMM, whose working
 *    set spills the Infinity Cache and has the highest HBM power.
 */

#include <iostream>
#include <map>
#include <string>
#include <vector>

#include "analysis/report.hpp"
#include "analysis/series.hpp"
#include "fingrav/campaign_runner.hpp"
#include "fingrav/profiler.hpp"
#include "support/table.hpp"

namespace an = fingrav::analysis;
namespace fc = fingrav::core;
namespace fs = fingrav::support;

int
main()
{
    an::printHeader(
        "Figure 7 - component-level comparison: CB GEMMs vs MB GEMVs",
        "paper: CB >> MB in total/XCD; MB-8K-GEMV stresses IOD; CB-8K-GEMM "
        "has the highest HBM power; GEMV power drops with size");

    const std::vector<std::string> labels{
        "CB-8K-GEMM", "CB-4K-GEMM", "CB-2K-GEMM",
        "MB-8K-GEMV", "MB-4K-GEMV", "MB-2K-GEMV"};

    // Six independent campaigns, fanned out over the campaign engine
    // (bit-identical to the former serial profileOnFreshNode loop).
    std::vector<fc::ScenarioSpec> specs;
    std::uint64_t seed = 7001;
    for (const auto& label : labels) {
        fc::ScenarioSpec spec;
        spec.label = label;
        spec.seed = seed++;
        specs.push_back(std::move(spec));
    }
    const auto results = fc::CampaignRunner().run(specs);

    std::map<std::string, fc::ProfileSet> sets;
    for (std::size_t i = 0; i < labels.size(); ++i) {
        sets.emplace(labels[i], results[i]);
        std::cout << an::summarize(sets.at(labels[i])) << "\n";
    }

    // Reference for relative power: the highest SSP total observed.
    double ref = 0.0;
    for (const auto& [label, set] : sets)
        ref = std::max(ref, set.ssp.meanPower(fc::Rail::kTotal));

    fs::TableWriter table({"kernel", "total", "XCD", "IOD", "HBM",
                           "total (W)"});
    for (const auto& label : labels) {
        const auto& ssp = sets.at(label).ssp;
        table.addRow({label,
                      fs::TableWriter::num(ssp.meanPower(fc::Rail::kTotal) / ref, 3),
                      fs::TableWriter::num(ssp.meanPower(fc::Rail::kXcd) / ref, 3),
                      fs::TableWriter::num(ssp.meanPower(fc::Rail::kIod) / ref, 3),
                      fs::TableWriter::num(ssp.meanPower(fc::Rail::kHbm) / ref, 3),
                      fs::TableWriter::num(ssp.meanPower(fc::Rail::kTotal), 1)});
    }
    std::cout << "\nSSP power relative to max (paper reports relative "
                 "power):\n";
    table.print(std::cout);

    // Degree-4 regression endpoints (the figure overlays trend lines).
    fs::TableWriter trends({"kernel", "rail", "trend@10%TOI", "trend@90%TOI"});
    for (const auto& label : labels) {
        const auto& ssp = sets.at(label).ssp;
        if (ssp.size() < 8)
            continue;
        for (const auto rail : {fc::Rail::kTotal, fc::Rail::kXcd,
                                fc::Rail::kIod, fc::Rail::kHbm}) {
            const auto t = an::trendSeries(ssp, rail, 4, 11);
            if (t.size() < 11)
                continue;
            trends.addRow({label, fc::toString(rail),
                           fs::TableWriter::num(t.y[1], 1),
                           fs::TableWriter::num(t.y[9], 1)});
        }
    }
    std::cout << "\nDegree-4 trend endpoints (W):\n";
    trends.print(std::cout);

    // Paper-fact checklist.
    auto ssp_mean = [&](const std::string& l, fc::Rail r) {
        return sets.at(l).ssp.meanPower(r);
    };
    struct Check {
        std::string claim;
        bool holds;
    };
    std::vector<Check> checks;
    bool cb_over_mb = true;
    for (const auto* cb : {"CB-8K-GEMM", "CB-4K-GEMM", "CB-2K-GEMM"}) {
        for (const auto* mb : {"MB-8K-GEMV", "MB-4K-GEMV", "MB-2K-GEMV"}) {
            cb_over_mb = cb_over_mb &&
                         ssp_mean(cb, fc::Rail::kTotal) >
                             ssp_mean(mb, fc::Rail::kTotal) &&
                         ssp_mean(cb, fc::Rail::kXcd) >
                             ssp_mean(mb, fc::Rail::kXcd);
        }
    }
    checks.push_back({"CB GEMMs > MB GEMVs in total and XCD power",
                      cb_over_mb});
    checks.push_back(
        {"CB-8K-GEMM slightly highest total/XCD among GEMMs",
         ssp_mean("CB-8K-GEMM", fc::Rail::kTotal) >
                 ssp_mean("CB-4K-GEMM", fc::Rail::kTotal) &&
             ssp_mean("CB-8K-GEMM", fc::Rail::kXcd) >
                 ssp_mean("CB-4K-GEMM", fc::Rail::kXcd)});
    checks.push_back(
        {"GEMV total power drops 8K -> 4K -> 2K",
         ssp_mean("MB-8K-GEMV", fc::Rail::kTotal) >
                 ssp_mean("MB-4K-GEMV", fc::Rail::kTotal) &&
             ssp_mean("MB-4K-GEMV", fc::Rail::kTotal) >
                 ssp_mean("MB-2K-GEMV", fc::Rail::kTotal)});
    checks.push_back(
        {"MB-8K-GEMV IOD power above every CB GEMM",
         ssp_mean("MB-8K-GEMV", fc::Rail::kIod) >
                 ssp_mean("CB-8K-GEMM", fc::Rail::kIod) &&
             ssp_mean("MB-8K-GEMV", fc::Rail::kIod) >
                 ssp_mean("CB-4K-GEMM", fc::Rail::kIod)});
    bool hbm_top = true;
    for (const auto& label : labels) {
        if (label != "CB-8K-GEMM") {
            hbm_top = hbm_top && ssp_mean("CB-8K-GEMM", fc::Rail::kHbm) >
                                     ssp_mean(label, fc::Rail::kHbm);
        }
    }
    checks.push_back({"CB-8K-GEMM has the highest HBM power", hbm_top});
    // "Ballpark" threshold: instantaneous XCD powers sit within ~88 % of
    // each other; the windowed SSP view of the 33 us CB-2K kernel dilutes
    // it further with inter-launch gaps, so 75 % is the honest bound.
    checks.push_back(
        {"all CB GEMM XCD powers within the same ballpark (>= 75 %)",
         ssp_mean("CB-2K-GEMM", fc::Rail::kXcd) /
                 ssp_mean("CB-8K-GEMM", fc::Rail::kXcd) >
             0.75});

    std::cout << "\nPaper-fact checklist:\n";
    for (const auto& c : checks) {
        std::cout << "  [" << (c.holds ? "ok" : "MISMATCH") << "] "
                  << c.claim << "\n";
    }

    for (const auto& label : labels)
        an::dumpProfileCsv(sets.at(label).ssp, "fig7_" + label);
    std::cout << "\nCSV dumps under fingrav_out/fig7_*.csv\n";
    return 0;
}

/**
 * @file
 * Persistent-fleet benchmark: cost-scheduled pull dispatch vs one-shot
 * round-robin sharding, with bit-identity verification throughout.
 *
 * Three scenarios track the fifth leg of the scaling story (after
 * event-driven stepping, parallel node stepping, campaign threading and
 * multi-process sharding):
 *
 *  1. skewed_makespan — a campaign set with one long scenario buried
 *     among short ones, self-tuned so the heavy spec's wall clock is
 *     comparable to the whole light tail.  Round-robin partitioning
 *     (ShardBackend, 2 workers) straggles: whichever shard draws the
 *     heavy spec also drags half the lights behind it.  Cost-scheduled
 *     pull dispatch (FleetBackend, 2 workers) starts the heavy spec
 *     first and streams the lights through the other worker, so the
 *     makespan collapses toward max(heavy, lights).  Any bitwise
 *     divergence from the serial reference is a hard failure; the
 *     makespan_speedup metric gates the >= 1.3x claim.
 *
 *  2. spawn_amortization — five back-to-back dispatches through ONE
 *     FleetBackend vs the placement-matched in-process reference.  The
 *     first dispatch pays worker spawns; later dispatches reuse the
 *     residents (workers_spawned must be 0 — enforced), so per-dispatch
 *     overhead must drop >= 2x by the fifth dispatch.
 *
 *  3. degraded_fleet — the supervision gate on the fleet: a scripted
 *     worker kill mid-dispatch must be recovered by a replacement
 *     worker in the same seat, bit-identically, with a non-empty
 *     degradation journal (a silent recovery is a failure).
 *
 * Results go to BENCH_fleet.json via tools/bench_json.hpp; CI feeds the
 * file through tools/bench_regression.py (docs/PERFORMANCE.md).
 *
 * Usage: bench_fleet [--smoke] [--out PATH] [--worker PATH]
 *   --smoke   reduced budgets (CI)
 *   --out     output JSON path (default BENCH_fleet.json)
 *   --worker  fingrav_cli binary (default: next to this executable)
 */

#include <algorithm>
#include <chrono>
#include <cstdint>
#include <iostream>
#include <memory>
#include <string>
#include <thread>
#include <vector>

#include "fingrav/campaign_runner.hpp"
#include "fingrav/execution_backend.hpp"
#include "fingrav/shard_backend.hpp"
#include "fingrav/worker_fleet.hpp"
#include "support/fault_injector.hpp"
#include "tests/test_fixtures.hpp"
#include "tools/bench_json.hpp"

namespace fc = fingrav::core;
namespace fsup = fingrav::support;
namespace tools = fingrav::tools;

namespace {

using fingrav::testing::identicalSets;

std::string g_cli_path;

double
wallMs(const std::chrono::steady_clock::time_point& t0)
{
    const auto t1 = std::chrono::steady_clock::now();
    return std::chrono::duration<double, std::milli>(t1 - t0).count();
}

fc::ScenarioSpec
makeSpec(const char* label, std::size_t runs, std::uint64_t seed)
{
    fc::ScenarioSpec spec;
    spec.label = label;
    spec.seed = seed;
    spec.opts.runs_override = runs;
    spec.opts.collect_extra_runs = false;
    return spec;
}

fc::ShardOptions
shardOptions(std::size_t shards)
{
    fc::ShardOptions opts;
    opts.shards = shards;
    opts.worker_command = {g_cli_path, "--worker"};
    return opts;
}

fc::FleetOptions
fleetOptions(std::size_t workers)
{
    fc::FleetOptions opts;
    opts.workers = workers;
    opts.worker_command = {g_cli_path, "--serve"};
    return opts;
}

// ---------------------------------------------------------------------------
// Scenario 1: skewed-campaign makespan, fleet vs round-robin
// ---------------------------------------------------------------------------

bool
runSkewedMakespan(tools::BenchReport& report, bool smoke)
{
    // The light tail: short memory-bound campaigns, cheap but numerous.
    // The run budget keeps per-spec compute well above the wire and
    // spawn overheads, so the makespan ratio measures scheduling.
    const std::size_t n_lights = smoke ? 12 : 16;
    const std::size_t light_runs = smoke ? 24 : 48;
    std::vector<fc::ScenarioSpec> lights;
    for (std::size_t i = 0; i < n_lights; ++i) {
        lights.push_back(makeSpec(i % 2 == 0 ? "MB-2K-GEMV" : "AG-64KB",
                                  light_runs, 6200 + i));
    }

    // Per-spec serial pass: one timed run per campaign gives both the
    // bitwise reference and the measured costs the schedule replay
    // uses.  Campaigns are independent and seeded, so running them one
    // at a time is bit-identical to the batch serial path.
    std::vector<fc::ProfileSet> serial;
    std::vector<double> costs;
    double lights_ms = 0.0;
    for (const auto& light : lights) {
        const auto t0 = std::chrono::steady_clock::now();
        auto one = fc::CampaignRunner(1).run({light});
        costs.push_back(std::max(wallMs(t0), 0.01));
        lights_ms += costs.back();
        serial.push_back(std::move(one.front()));
    }

    // Self-tune the heavy spec so its wall clock lands near the whole
    // light tail's (the worst case for static round-robin; the
    // >= 1.3x window tolerates ~2.5x mistuning either way).  Campaign
    // wall scales ~linearly in the run budget, so one probe suffices.
    const std::size_t probe_runs = 8;
    auto heavy = makeSpec("CB-8K-GEMM", probe_runs, 6100);
    const auto t_probe0 = std::chrono::steady_clock::now();
    fc::CampaignRunner(1).run({heavy});
    const double probe_ms = std::max(wallMs(t_probe0), 0.1);

    const double scaled = static_cast<double>(probe_runs) *
                          (lights_ms / probe_ms);
    const std::size_t heavy_runs = std::min<std::size_t>(
        smoke ? 400 : 1200,
        std::max<std::size_t>(4, static_cast<std::size_t>(scaled)));
    heavy.opts.runs_override = heavy_runs;

    // The heavy spec rides mid-list, where round-robin can't see it.
    const std::size_t heavy_slot = n_lights / 2;
    std::vector<fc::ScenarioSpec> specs = lights;
    specs.insert(specs.begin() + static_cast<long>(heavy_slot), heavy);
    const auto t_heavy0 = std::chrono::steady_clock::now();
    auto heavy_one = fc::CampaignRunner(1).run({heavy});
    costs.insert(costs.begin() + static_cast<long>(heavy_slot),
                 std::max(wallMs(t_heavy0), 0.01));
    serial.insert(serial.begin() + static_cast<long>(heavy_slot),
                  std::move(heavy_one.front()));
    double serial_ms = 0.0;
    for (const double c : costs)
        serial_ms += c;

    auto rr_backend = std::make_shared<fc::ShardBackend>(shardOptions(2));
    const auto t_rr0 = std::chrono::steady_clock::now();
    const auto rr = fc::CampaignRunner(rr_backend).run(specs);
    const double rr_ms = wallMs(t_rr0);

    auto fleet_backend =
        std::make_shared<fc::FleetBackend>(fleetOptions(2));
    const auto t_fleet0 = std::chrono::steady_clock::now();
    const auto fleet = fc::CampaignRunner(fleet_backend).run(specs);
    const double fleet_ms = wallMs(t_fleet0);
    const auto& stats = fleet_backend->lastStats();

    bool ok = true;
    if (!identicalSets(serial, rr)) {
        std::cerr << "FAIL: round-robin results diverged from serial\n";
        ok = false;
    }
    if (!identicalSets(serial, fleet)) {
        std::cerr << "FAIL: fleet results diverged from serial\n";
        ok = false;
    }
    if (stats.remote_specs != specs.size()) {
        std::cerr << "FAIL: only " << stats.remote_specs << "/"
                  << specs.size() << " specs crossed the fleet wire\n";
        ok = false;
    }

    // Schedule-quality gate, hardware-independent: replay the fleet's
    // ACTUAL dispatch order (pull = greedy earliest-free seat) against
    // the measured per-spec costs and compare with the static
    // round-robin partition's bottleneck shard.  This is the makespan
    // the two schedules impose on parallel hardware, and it must clear
    // the 1.3x floor on any host.
    if (stats.dispatch_order.size() != specs.size()) {
        std::cerr << "FAIL: clean dispatch order covers "
                  << stats.dispatch_order.size() << "/" << specs.size()
                  << " specs; expected exactly one dispatch each\n";
        ok = false;
    }
    double shard_load[2] = {0.0, 0.0};
    for (std::size_t slot = 0; slot < costs.size(); ++slot)
        shard_load[slot % 2] += costs[slot];
    const double rr_sched_ms = std::max(shard_load[0], shard_load[1]);
    double seat_load[2] = {0.0, 0.0};
    for (const std::size_t slot : stats.dispatch_order) {
        if (slot < costs.size())
            seat_load[seat_load[0] <= seat_load[1] ? 0 : 1] +=
                costs[slot];
    }
    const double fleet_sched_ms = std::max(seat_load[0], seat_load[1]);
    const double sched_speedup =
        fleet_sched_ms > 0.0 ? rr_sched_ms / fleet_sched_ms : 0.0;
    const bool sched_floor_met = sched_speedup >= 1.3;
    if (!sched_floor_met) {
        std::cerr << "FAIL: scheduled makespan speedup " << sched_speedup
                  << "x is below the 1.3x floor (round-robin bottleneck "
                  << rr_sched_ms << " ms vs fleet " << fleet_sched_ms
                  << " ms)\n";
    }

    // The measured wall-clock ratio needs the cores to exist: on a
    // host that can't actually run two workers side by side the wall
    // times collapse onto total work, so the floor follows the
    // bench_campaign convention and gates only with the hardware.
    const std::size_t hw = std::thread::hardware_concurrency();
    const double wall_speedup = fleet_ms > 0.0 ? rr_ms / fleet_ms : 0.0;
    const bool wall_gated = hw >= 2;
    const bool wall_floor_met = wall_speedup >= 1.3;
    if (wall_gated && !wall_floor_met) {
        std::cerr << "FAIL: fleet wall-clock makespan speedup "
                  << wall_speedup << "x is below the 1.3x floor (rr "
                  << rr_ms << " ms vs fleet " << fleet_ms << " ms)\n";
    }

    auto& s = report.scenario("skewed_makespan");
    s.note("description",
           "one heavy campaign mid-list among short ones: 2-worker "
           "round-robin sharding vs 2-worker cost-scheduled fleet pull "
           "dispatch, bitwise identity enforced");
    s.metric("campaigns", static_cast<std::int64_t>(specs.size()));
    s.metric("heavy_runs", static_cast<std::int64_t>(heavy_runs));
    s.metric("hardware_concurrency", static_cast<std::int64_t>(hw));
    s.metric("light_tail_wall_ms", lights_ms);
    s.metric("serial_wall_ms", serial_ms);
    s.metric("roundrobin_wall_ms", rr_ms);
    s.metric("fleet_wall_ms", fleet_ms);
    s.metric("roundrobin_schedule_ms", rr_sched_ms);
    s.metric("fleet_schedule_ms", fleet_sched_ms);
    s.metric("makespan_speedup", sched_speedup);
    s.metric("wall_makespan_ratio", wall_speedup);
    s.note("bit_identical", ok ? "yes" : "NO");
    s.note("floor_1_3x", sched_floor_met ? "yes" : "NO");
    s.note("wall_floor_gated", wall_gated ? "yes" : "no (single core)");

    std::cout << "skewed_makespan: serial " << serial_ms
              << " ms; schedule makespan round-robin " << rr_sched_ms
              << " ms vs fleet " << fleet_sched_ms << " ms ("
              << sched_speedup << "x); wall round-robin " << rr_ms
              << " ms vs fleet " << fleet_ms << " ms (" << wall_speedup
              << "x, " << hw << " hw); heavy runs " << heavy_runs
              << "; bit-identical: " << (ok ? "yes" : "NO") << "\n";
    return ok && sched_floor_met && (!wall_gated || wall_floor_met);
}

// ---------------------------------------------------------------------------
// Scenario 2: spawn amortization across back-to-back dispatches
// ---------------------------------------------------------------------------

bool
runSpawnAmortization(tools::BenchReport& report, bool smoke)
{
    const std::size_t runs = smoke ? 3 : 6;
    const std::vector<fc::ScenarioSpec> specs = {
        makeSpec("MB-2K-GEMV", runs, 6300),
        makeSpec("AG-64KB", runs, 6301),
        makeSpec("CB-2K-GEMM", runs, 6302),
        makeSpec("MB-4K-GEMV", runs, 6303),
    };

    // The placement-matched in-process reference (best of 3 to de-noise
    // the baseline every overhead below subtracts).
    const auto pool = std::make_shared<fc::ThreadPoolBackend>(
        std::size_t{2});
    std::vector<fc::ProfileSet> reference;
    double inproc_ms = 0.0;
    for (int rep = 0; rep < 3; ++rep) {
        const auto t0 = std::chrono::steady_clock::now();
        reference = fc::CampaignRunner(pool).run(specs);
        const double ms = wallMs(t0);
        if (rep == 0 || ms < inproc_ms)
            inproc_ms = ms;
    }

    auto backend = std::make_shared<fc::FleetBackend>(fleetOptions(2));
    constexpr int kDispatches = 5;
    constexpr double kEpsMs = 0.5;  // overhead floor: below this is noise
    bool ok = true;
    double overhead_first = 0.0;
    double overhead_fifth = 0.0;

    auto& s = report.scenario("spawn_amortization");
    for (int d = 1; d <= kDispatches; ++d) {
        const auto t0 = std::chrono::steady_clock::now();
        const auto results = fc::CampaignRunner(backend).run(specs);
        const double ms = wallMs(t0);
        if (!identicalSets(reference, results)) {
            std::cerr << "FAIL: dispatch " << d
                      << " diverged from the in-process reference\n";
            ok = false;
        }
        const auto& stats = backend->lastStats();
        if (d > 1 && stats.workers_spawned != 0) {
            std::cerr << "FAIL: dispatch " << d << " spawned "
                      << stats.workers_spawned
                      << " worker(s); the residents were not reused\n";
            ok = false;
        }
        const double overhead = std::max(ms - inproc_ms, kEpsMs);
        if (d == 1)
            overhead_first = overhead;
        if (d == kDispatches)
            overhead_fifth = overhead;
        s.metric("dispatch" + std::to_string(d) + "_wall_ms", ms);
        s.metric("dispatch" + std::to_string(d) + "_spawns",
                 static_cast<std::int64_t>(stats.workers_spawned));
    }

    const double ratio =
        overhead_fifth > 0.0 ? overhead_first / overhead_fifth : 0.0;
    const bool floor_met = ratio >= 2.0;
    if (!floor_met) {
        std::cerr << "FAIL: amortization ratio " << ratio
                  << "x is below the 2x floor (first dispatch overhead "
                  << overhead_first << " ms, fifth " << overhead_fifth
                  << " ms over the " << inproc_ms
                  << " ms in-process reference)\n";
    }

    s.note("description",
           "five back-to-back dispatches through one persistent fleet: "
           "spawn cost is paid once, warm dispatches must reuse the "
           "residents (zero spawns enforced)");
    s.metric("inproc_wall_ms", inproc_ms);
    s.metric("first_overhead_ms", overhead_first);
    s.metric("fifth_overhead_ms", overhead_fifth);
    s.metric("amortization_speedup", ratio);
    s.note("bit_identical", ok ? "yes" : "NO");
    s.note("floor_2x", floor_met ? "yes" : "NO");

    std::cout << "spawn_amortization: in-process " << inproc_ms
              << " ms, first-dispatch overhead " << overhead_first
              << " ms, fifth " << overhead_fifth << " ms (" << ratio
              << "x), bit-identical: " << (ok ? "yes" : "NO") << "\n";
    return ok && floor_met;
}

// ---------------------------------------------------------------------------
// Scenario 3: bit-identity under an injected mid-dispatch worker kill
// ---------------------------------------------------------------------------

bool
runDegradedFleet(tools::BenchReport& report, bool smoke)
{
    const auto specs = fingrav::testing::fig10Specs(smoke ? 6 : 16);

    const auto t0 = std::chrono::steady_clock::now();
    const auto serial = fc::CampaignRunner(1).run(specs);
    const double clean_ms = wallMs(t0);

    // Seat 0's first resident dies at its first result frame; the
    // replacement must redispatch only the forfeited spec.
    auto opts = fleetOptions(2);
    opts.backoff_base_ms = 1;
    opts.fault_plan = fsup::FaultPlan::parse("kill:shard=0,frame=0");
    auto backend = std::make_shared<fc::FleetBackend>(opts);
    const auto t1 = std::chrono::steady_clock::now();
    const auto degraded = fc::CampaignRunner(backend).run(specs);
    const double degraded_ms = wallMs(t1);

    const auto& stats = backend->lastStats();
    bool ok = true;
    if (!identicalSets(serial, degraded)) {
        std::cerr << "FAIL: degraded fleet run diverged from the clean "
                     "reference\n";
        ok = false;
    }
    if (stats.journal.empty()) {
        std::cerr << "FAIL: degraded fleet run left an empty journal — "
                     "the injected worker kill was recovered silently\n";
        ok = false;
    }
    if (stats.remote_specs != specs.size()) {
        std::cerr << "FAIL: only " << stats.remote_specs << "/"
                  << specs.size() << " specs crossed the wire; the "
                     "replacement worker did not take over\n";
        ok = false;
    }

    auto& s = report.scenario("degraded_fleet");
    s.note("description",
           "Fig. 10 set under an injected mid-dispatch worker kill: "
           "replacement in the same seat, bitwise identity and a "
           "non-empty degradation journal enforced");
    s.metric("campaigns", static_cast<std::int64_t>(specs.size()));
    s.metric("clean_wall_ms", clean_ms);
    s.metric("degraded_wall_ms", degraded_ms);
    s.metric("worker_failures",
             static_cast<std::int64_t>(stats.worker_failures));
    s.metric("journal_events",
             static_cast<std::int64_t>(stats.journal.size()));
    s.note("bit_identical", ok ? "yes" : "NO");
    s.note("journal_nonempty", stats.journal.empty() ? "NO" : "yes");

    std::cout << "degraded_fleet: clean " << clean_ms
              << " ms, degraded " << degraded_ms << " ms, "
              << stats.worker_failures << " worker failure(s), "
              << stats.journal.size()
              << " journal event(s), bit-identical: "
              << (ok ? "yes" : "NO") << "\n";
    return ok;
}

}  // namespace

int
main(int argc, char** argv)
{
    bool smoke = false;
    std::string out_path = "BENCH_fleet.json";
    g_cli_path = fc::defaultServeCommand(argv[0]).front();
    for (int i = 1; i < argc; ++i) {
        const std::string arg = argv[i];
        if (arg == "--smoke") {
            smoke = true;
        } else if (arg == "--out" && i + 1 < argc) {
            out_path = argv[++i];
        } else if (arg == "--worker" && i + 1 < argc) {
            g_cli_path = argv[++i];
        } else {
            std::cerr << "usage: bench_fleet [--smoke] [--out PATH] "
                         "[--worker PATH]\n";
            return 2;
        }
    }

    tools::BenchReport report("fleet");
    bool ok = true;
    ok = runSkewedMakespan(report, smoke) && ok;
    ok = runSpawnAmortization(report, smoke) && ok;
    ok = runDegradedFleet(report, smoke) && ok;

    if (!report.write(out_path)) {
        std::cerr << "bench_fleet: cannot write " << out_path << "\n";
        return 1;
    }
    std::cout << "wrote " << out_path << "\n";
    if (!ok) {
        std::cerr << "bench_fleet: FAILED (divergence, unreused "
                     "residents, or a missed makespan/amortization "
                     "floor)\n";
        return 1;
    }
    return 0;
}

/**
 * @file
 * Regenerates paper Figure 6: CB-8K-GEMM total and XCD power across the
 * executions of a run.
 *
 * Paper shape: power rises for the initial executions (boost clocks +
 * cold-cache memory traffic push past the excursion threshold), the power
 * management firmware throttles frequency (the deep drop), then power
 * slowly recovers to the steady-state operating point — SSE power sits
 * below SSP.  Warm-up executions are slower; execution time stabilizes at
 * SSE.
 */

#include <algorithm>
#include <iostream>
#include <map>
#include <vector>

#include "analysis/ascii_plot.hpp"
#include "analysis/report.hpp"
#include "analysis/series.hpp"
#include "fingrav/energy.hpp"
#include "fingrav/profiler.hpp"
#include "kernels/workloads.hpp"
#include "support/statistics.hpp"
#include "support/table.hpp"

namespace an = fingrav::analysis;
namespace fc = fingrav::core;
namespace fk = fingrav::kernels;
namespace fs = fingrav::support;

int
main()
{
    an::printHeader(
        "Figure 6 - CB-8K-GEMM total and XCD power across a run",
        "paper: sharp rise -> throttle drop to SSE -> slight rise to SSP; "
        "warm-ups slower; SSE/SSP spread ~20%");

    const auto set = an::profileOnFreshNode("CB-8K-GEMM", 6001);
    std::cout << "\n" << an::summarize(set) << "\n";

    // Timeline: total and XCD power against time in run, overlaid across
    // all golden runs (the paper's x-axis is "time for a run").
    an::AsciiPlot plot(72, 16);
    plot.addSeries(an::toSeries(set.timeline, fc::Rail::kTotal), 'o',
                   "total power");
    plot.addSeries(an::toSeries(set.timeline, fc::Rail::kXcd), 'x',
                   "XCD power");
    std::cout << "\nPower vs time in run (us):\n" << plot.render();

    // Per-execution-position mean power from the stitched SSP/SSE/warm-up
    // structure: reconstruct by bucketing timeline samples by run time
    // relative to the mean execution length.
    const double exec_us = set.ssp_exec_time.toMicros();
    std::map<std::size_t, fs::RunningStats> by_exec;
    for (const auto& p : set.timeline.points()) {
        if (p.run_time_us < 0.0)
            continue;
        const auto slot =
            static_cast<std::size_t>(p.run_time_us / exec_us);
        if (slot < 16)
            by_exec[slot].add(p.sample.total_w);
    }
    fs::TableWriter table({"exec slot", "mean total (W)", "n"});
    for (const auto& [slot, stats] : by_exec) {
        table.addRow({std::to_string(slot),
                      fs::TableWriter::num(stats.mean(), 1),
                      std::to_string(stats.count())});
    }
    std::cout << "\nMean total power per execution-length slot:\n";
    table.print(std::cout);

    // The paper's three phase markers.
    const auto rep = fc::differentiationError(set);
    std::cout << "\nwarm-ups: executions 0-" << set.sse_exec_index - 1
              << "; SSE: execution " << set.sse_exec_index
              << "; SSP: execution " << set.ssp_exec_index << "\n";
    std::cout << "SSE power " << rep.sse_mean_w << " W, SSP power "
              << rep.ssp_mean_w << " W -> spread " << rep.error_pct
              << " %  (paper: ~20 %)\n";

    // Shape checks the paper narrates.
    double spike = 0.0;
    for (const auto& [slot, stats] : by_exec) {
        if (slot <= 2)
            spike = std::max(spike, stats.mean());
    }
    std::cout << "initial-execution peak " << spike
              << " W vs SSE " << rep.sse_mean_w << " W vs SSP "
              << rep.ssp_mean_w << " W -> shape "
              << ((spike > rep.ssp_mean_w && rep.sse_mean_w < rep.ssp_mean_w)
                      ? "rise->drop->rise (matches paper)"
                      : "UNEXPECTED")
              << "\n";

    an::dumpProfileCsv(set.timeline, "fig6_timeline");
    an::dumpProfileCsv(set.ssp, "fig6_ssp");
    an::dumpProfileCsv(set.sse, "fig6_sse");
    std::cout << "\nCSV dumps under fingrav_out/fig6_*.csv\n";
    return 0;
}

/**
 * @file
 * Regenerates paper Table II: the five takeaways with their measurement
 * guidance / hardware recommendations, each verified quantitatively on
 * the simulated node.
 *
 *  #1 similar execution times can hide very different power profiles
 *     (SSE vs SSP; error up to ~80 % depending on exec-time/window ratio);
 *  #2 total power scales with work; components stress by algorithm;
 *  #3 compute-heavy kernels are XCD-dominated;
 *  #4 compute-light and compute-heavy kernels show similar XCD power
 *     (power proportionality gap);
 *  #5 short kernels inherit preceding kernels' power; compute-heavy long
 *     kernels do not.
 */

#include <cmath>
#include <iostream>
#include <map>
#include <string>
#include <vector>

#include "analysis/report.hpp"
#include "fingrav/campaign_runner.hpp"
#include "fingrav/energy.hpp"
#include "fingrav/profiler.hpp"
#include "kernels/workloads.hpp"
#include "support/table.hpp"

namespace an = fingrav::analysis;
namespace fc = fingrav::core;
namespace fk = fingrav::kernels;
namespace fs = fingrav::support;

int
main()
{
    an::printHeader("Table II - takeaways, guidance and recommendations",
                    "each paper takeaway verified quantitatively");

    const auto cfg = fingrav::sim::mi300xConfig();
    std::uint64_t seed = 12001;

    // Shared campaigns, fanned out over the campaign engine.
    const std::vector<std::string> labels{
        "CB-8K-GEMM", "CB-4K-GEMM", "CB-2K-GEMM", "MB-8K-GEMV"};
    std::vector<fc::ScenarioSpec> specs;
    for (const auto& label : labels) {
        fc::ScenarioSpec spec;
        spec.label = label;
        spec.seed = seed++;
        specs.push_back(std::move(spec));
    }
    const auto results = fc::CampaignRunner().run(specs);
    std::map<std::string, fc::ProfileSet> sets;
    for (std::size_t i = 0; i < labels.size(); ++i)
        sets.emplace(labels[i], results[i]);
    auto mean = [&](const std::string& l, fc::Rail r) {
        return sets.at(l).ssp.meanPower(r);
    };

    fs::TableWriter table({"#", "takeaway", "measured evidence", "verdict"});

    // --- takeaway #1 ------------------------------------------------------
    const auto rep2k = fc::differentiationError(sets.at("CB-2K-GEMM"));
    const auto rep8k = fc::differentiationError(sets.at("CB-8K-GEMM"));
    table.addRow(
        {"1",
         "similar exec times, very different profiles; error grows as "
         "exec time shrinks vs averaging window",
         "SSE-vs-SSP error: CB-2K " + fs::TableWriter::num(rep2k.error_pct, 1) +
             "% (paper ~80%), CB-8K " +
             fs::TableWriter::num(rep8k.error_pct, 1) + "% (paper ~20%)",
         (rep2k.error_pct > 55.0 && rep2k.error_pct > 2.5 * rep8k.error_pct)
             ? "ok"
             : "MISMATCH"});

    // --- takeaway #2 ------------------------------------------------------
    const double cb_total = mean("CB-8K-GEMM", fc::Rail::kTotal);
    const double mb_total = mean("MB-8K-GEMV", fc::Rail::kTotal);
    const double mb_iod_share =
        mean("MB-8K-GEMV", fc::Rail::kIod) / mb_total;
    const double cb_iod_share =
        mean("CB-8K-GEMM", fc::Rail::kIod) / cb_total;
    table.addRow(
        {"2",
         "total power scales with work; components stress by algorithm",
         "CB total " + fs::TableWriter::num(cb_total, 0) + "W > MB total " +
             fs::TableWriter::num(mb_total, 0) + "W; IOD share MB " +
             fs::TableWriter::num(mb_iod_share * 100, 0) + "% vs CB " +
             fs::TableWriter::num(cb_iod_share * 100, 0) + "%",
         (cb_total > mb_total && mb_iod_share > 2.0 * cb_iod_share)
             ? "ok"
             : "MISMATCH"});

    // --- takeaway #3 ------------------------------------------------------
    const double xcd_share =
        mean("CB-8K-GEMM", fc::Rail::kXcd) / cb_total;
    table.addRow({"3", "compute-heavy kernels dominated by XCD power",
                  "CB-8K-GEMM XCD share " +
                      fs::TableWriter::num(xcd_share * 100, 1) + "% of total",
                  xcd_share > 0.65 ? "ok" : "MISMATCH"});

    // --- takeaway #4 ------------------------------------------------------
    const auto k2 = fk::GemmKernel({2048, 2048, 2048, 2}, cfg);
    const auto k8 = fk::GemmKernel({8192, 8192, 8192, 2}, cfg);
    const double util_ratio = k2.achievedComputeUtilization() /
                              k8.achievedComputeUtilization();
    const double xcd_ratio =
        mean("CB-2K-GEMM", fc::Rail::kXcd) / mean("CB-8K-GEMM", fc::Rail::kXcd);
    table.addRow(
        {"4",
         "compute-light and compute-heavy kernels show similar XCD power "
         "(proportionality gap)",
         "CB-2K at " + fs::TableWriter::num(util_ratio * 100, 0) +
             "% of CB-8K's compute utilization draws " +
             fs::TableWriter::num(xcd_ratio * 100, 0) + "% of its XCD power",
         (util_ratio < 0.62 && xcd_ratio > 0.72) ? "ok" : "MISMATCH"});

    // --- takeaway #5 ------------------------------------------------------
    fc::ProfilerOptions iopts;
    iopts.runs_override = 120;
    an::Campaign up(seed++);
    const auto cb2k_after_cb = up.profiler(iopts).profileInterleaved(
        fk::kernelByLabel("CB-2K-GEMM", cfg),
        {{fk::kernelByLabel("CB-8K-GEMM", cfg), 1},
         {fk::kernelByLabel("CB-4K-GEMM", cfg), 1}},
        6);
    an::Campaign down(seed++);
    const auto cb2k_after_mb = down.profiler(iopts).profileInterleaved(
        fk::kernelByLabel("CB-2K-GEMM", cfg),
        {{fk::kernelByLabel("MB-4K-GEMV", cfg), 40}}, 6);
    an::Campaign big(seed++);
    const auto cb8k_after_cb = big.profiler(iopts).profileInterleaved(
        fk::kernelByLabel("CB-8K-GEMM", cfg),
        {{fk::kernelByLabel("CB-2K-GEMM", cfg), 60}}, 4);
    const double up_shift =
        fc::interleavingShiftPct(cb2k_after_cb, sets.at("CB-2K-GEMM"));
    const double down_shift =
        fc::interleavingShiftPct(cb2k_after_mb, sets.at("CB-2K-GEMM"));
    const double big_shift =
        fc::interleavingShiftPct(cb8k_after_cb, sets.at("CB-8K-GEMM"));
    // The essence of #5: the >window compute-heavy kernel moves far less
    // than the sub-window kernels.  (The paper saw a slight *rise* for
    // CB->8K where we see a slight dip: on the authors' silicon CB-2K
    // draws near-parity power with CB-8K, so its windows do not dilute
    // the 8K reading; see EXPERIMENTS.md.)
    const bool big_unaffected =
        std::abs(big_shift) < 0.25 * std::abs(down_shift) &&
        std::abs(big_shift) < 12.0;
    table.addRow(
        {"5",
         "short kernels' measured power inherits preceding kernels; "
         "compute-heavy long kernels (relatively) unaffected",
         "CB-2K shifts: +" + fs::TableWriter::num(up_shift, 1) +
             "% after CB, " + fs::TableWriter::num(down_shift, 1) +
             "% after MB; CB-8K shifts only " +
             fs::TableWriter::num(big_shift, 1) + "%",
         (up_shift > 3.0 && down_shift < -30.0 && big_unaffected)
             ? "ok"
             : "MISMATCH"});

    table.print(std::cout);

    std::cout
        << "\nMeasurement guidance (paper Table II):\n"
           "  G1: power-profile differentiation (SSE vs SSP) is crucial;\n"
           "  G2: isolated executions are necessary for kernels shorter\n"
           "      than the logger's averaging window.\n"
           "Recommendations (paper Table II):\n"
           "  R1: co-schedule computations with complementary power "
           "profiles;\n"
           "  R2: prioritize XCD power optimization for compute-heavy "
           "kernels;\n"
           "  R3: pursue GPU power proportionality for compute-light "
           "kernels.\n";
    return 0;
}

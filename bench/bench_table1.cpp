/**
 * @file
 * Regenerates paper Table I: the FinGraV profiling-guidance table, and
 * validates each row empirically.
 *
 * For a representative kernel in each execution-time range, a campaign at
 * the row's parameters must deliver at least the row's LOI target with a
 * healthy golden-run fraction; a campaign with a fraction of the runs
 * shows the LOI yield scaling (why short kernels need 400 runs), and an
 * over-tight margin shows why the short rows allow 5 %.
 */

#include <iostream>
#include <string>
#include <vector>

#include "analysis/report.hpp"
#include "fingrav/guidance.hpp"
#include "fingrav/profiler.hpp"
#include "support/table.hpp"

namespace an = fingrav::analysis;
namespace fc = fingrav::core;
namespace fs = fingrav::support;

int
main()
{
    an::printHeader(
        "Table I - FinGraV profiling guidance",
        "exec-time range -> #runs, #LOI target, binning margin; validated "
        "per row on a representative kernel");

    // The table itself.
    const auto table = fc::GuidanceTable::paperDefault();
    fs::TableWriter rows({"exec range", "# runs", "# LOI", "binning margin"});
    for (const auto& r : table.rows()) {
        const std::string range =
            r.exec_hi.toMicros() > 1e6
                ? std::string(">1ms")
                : std::to_string(static_cast<long>(r.exec_lo.toMicros())) +
                      "-" +
                      std::to_string(static_cast<long>(r.exec_hi.toMicros())) +
                      "us";
        rows.addRow({range, std::to_string(r.runs),
                     "1/" + std::to_string(
                                static_cast<long>(r.loi_per.toMicros())) +
                         "us",
                     fs::TableWriter::num(r.binning_margin * 100.0, 0) + "%"});
    }
    rows.print(std::cout);

    // Representative kernels per row (the paper's own operator space).
    struct RowCase {
        std::string label;
        std::string range;
    };
    const std::vector<RowCase> cases{
        {"MB-4K-GEMV", "<25us"},
        {"CB-2K-GEMM", "25-50us"},
        {"CB-4K-GEMM", "50-200us"},
        {"CB-8K-GEMM", ">1ms"},
    };

    fs::TableWriter val({"kernel", "row", "exec (us)", "runs", "LOI target",
                         "LOIs got", "golden %", "validates"});
    std::uint64_t seed = 11001;
    for (const auto& c : cases) {
        const auto set = an::profileOnFreshNode(c.label, seed++);
        const auto target =
            set.guidance.recommendedLois(set.measured_exec_time);
        const bool ok = set.ssp.size() >= target &&
                        set.binning.goldenFraction() > 0.6;
        val.addRow({c.label, c.range,
                    fs::TableWriter::num(set.measured_exec_time.toMicros(), 1),
                    std::to_string(set.runs_executed),
                    std::to_string(target), std::to_string(set.ssp.size()),
                    fs::TableWriter::num(set.binning.goldenFraction() * 100.0, 1),
                    ok ? "ok" : "MISMATCH"});
    }
    std::cout << "\nPer-row empirical validation (full guidance "
                 "parameters):\n";
    val.print(std::cout);

    // Why short kernels need 400 runs: LOI yield vs run count for
    // CB-2K-GEMM.
    fs::TableWriter yield({"runs", "SSP LOIs", "LOIs per run"});
    for (std::size_t runs : {50u, 100u, 200u, 400u}) {
        fc::ProfilerOptions opts;
        opts.runs_override = runs;
        opts.collect_extra_runs = false;  // show the raw yield
        const auto set = an::profileOnFreshNode("CB-2K-GEMM", seed++, opts);
        yield.addRow({std::to_string(runs), std::to_string(set.ssp.size()),
                      fs::TableWriter::num(
                          static_cast<double>(set.ssp.size()) /
                              static_cast<double>(runs), 2)});
    }
    std::cout << "\nLOI yield vs #runs (CB-2K-GEMM):\n";
    yield.print(std::cout);

    // Why the short rows allow a 5 % margin: golden fraction vs margin for
    // CB-2K-GEMM (measurement noise is a larger share of short kernels).
    fs::TableWriter margins({"margin (%)", "golden runs (%)"});
    for (double m : {0.01, 0.02, 0.05, 0.10}) {
        fc::ProfilerOptions opts;
        opts.runs_override = 150;
        opts.margin_override = m;
        opts.collect_extra_runs = false;
        const auto set = an::profileOnFreshNode("CB-2K-GEMM", seed++, opts);
        margins.addRow({fs::TableWriter::num(m * 100.0, 0),
                        fs::TableWriter::num(
                            set.binning.goldenFraction() * 100.0, 1)});
    }
    std::cout << "\nGolden-run fraction vs binning margin (CB-2K-GEMM; "
                 "tighter margins discard noise-displaced runs):\n";
    margins.print(std::cout);
    return 0;
}

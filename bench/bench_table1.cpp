/**
 * @file
 * Regenerates paper Table I: the FinGraV profiling-guidance table, and
 * validates each row empirically.
 *
 * For a representative kernel in each execution-time range, a campaign at
 * the row's parameters must deliver at least the row's LOI target with a
 * healthy golden-run fraction; a campaign with a fraction of the runs
 * shows the LOI yield scaling (why short kernels need 400 runs), and an
 * over-tight margin shows why the short rows allow 5 %.
 */

#include <iostream>
#include <string>
#include <vector>

#include "analysis/report.hpp"
#include "fingrav/campaign_runner.hpp"
#include "fingrav/guidance.hpp"
#include "fingrav/profiler.hpp"
#include "fingrav/recorded_campaign.hpp"
#include "support/table.hpp"

namespace an = fingrav::analysis;
namespace fc = fingrav::core;
namespace fs = fingrav::support;

int
main()
{
    an::printHeader(
        "Table I - FinGraV profiling guidance",
        "exec-time range -> #runs, #LOI target, binning margin; validated "
        "per row on a representative kernel");

    // The table itself.
    const auto table = fc::GuidanceTable::paperDefault();
    fs::TableWriter rows({"exec range", "# runs", "# LOI", "binning margin"});
    for (const auto& r : table.rows()) {
        const std::string range =
            r.exec_hi.toMicros() > 1e6
                ? std::string(">1ms")
                : std::to_string(static_cast<long>(r.exec_lo.toMicros())) +
                      "-" +
                      std::to_string(static_cast<long>(r.exec_hi.toMicros())) +
                      "us";
        rows.addRow({range, std::to_string(r.runs),
                     "1/" + std::to_string(
                                static_cast<long>(r.loi_per.toMicros())) +
                         "us",
                     fs::TableWriter::num(r.binning_margin * 100.0, 0) + "%"});
    }
    rows.print(std::cout);

    // Representative kernels per row (the paper's own operator space).
    struct RowCase {
        std::string label;
        std::string range;
    };
    const std::vector<RowCase> cases{
        {"MB-4K-GEMV", "<25us"},
        {"CB-2K-GEMM", "25-50us"},
        {"CB-4K-GEMM", "50-200us"},
        {"CB-8K-GEMM", ">1ms"},
    };

    fs::TableWriter val({"kernel", "row", "exec (us)", "runs", "LOI target",
                         "LOIs got", "golden %", "validates"});
    std::uint64_t seed = 11001;
    // One campaign per row, fanned out over the campaign engine.
    std::vector<fc::ScenarioSpec> row_specs;
    for (const auto& c : cases) {
        fc::ScenarioSpec spec;
        spec.label = c.label;
        spec.seed = seed++;
        row_specs.push_back(std::move(spec));
    }
    const auto row_sets = fc::CampaignRunner().run(row_specs);
    for (std::size_t i = 0; i < cases.size(); ++i) {
        const auto& c = cases[i];
        const auto& set = row_sets[i];
        const auto target =
            set.guidance.recommendedLois(set.measured_exec_time);
        const bool ok = set.ssp.size() >= target &&
                        set.binning.goldenFraction() > 0.6;
        val.addRow({c.label, c.range,
                    fs::TableWriter::num(set.measured_exec_time.toMicros(), 1),
                    std::to_string(set.runs_executed),
                    std::to_string(target), std::to_string(set.ssp.size()),
                    fs::TableWriter::num(set.binning.goldenFraction() * 100.0, 1),
                    ok ? "ok" : "MISMATCH"});
    }
    std::cout << "\nPer-row empirical validation (full guidance "
                 "parameters):\n";
    val.print(std::cout);

    // Why short kernels need 400 runs, and why the short rows allow a 5 %
    // margin: both sweeps restitch one 400-run recording (cross-campaign
    // run reuse), so every point sees the identical workload draws.
    fc::ScenarioSpec sweep_spec;
    sweep_spec.label = "CB-2K-GEMM";
    sweep_spec.seed = seed++;
    sweep_spec.opts.runs_override = 400;
    sweep_spec.opts.collect_extra_runs = false;  // show the raw yield
    const auto recorded = fc::RecordedCampaign::record(sweep_spec);

    fs::TableWriter yield({"runs", "SSP LOIs", "LOIs per run"});
    for (std::size_t runs : {50u, 100u, 200u, 400u}) {
        fc::SweepPoint point;
        point.runs = runs;
        const auto set = recorded.restitch(point);
        yield.addRow({std::to_string(runs), std::to_string(set.ssp.size()),
                      fs::TableWriter::num(
                          static_cast<double>(set.ssp.size()) /
                              static_cast<double>(runs), 2)});
    }
    std::cout << "\nLOI yield vs #runs (CB-2K-GEMM):\n";
    yield.print(std::cout);

    fs::TableWriter margins({"margin (%)", "golden runs (%)"});
    for (double m : {0.01, 0.02, 0.05, 0.10}) {
        fc::SweepPoint point;
        point.runs = 150;
        point.margin = m;
        const auto set = recorded.restitch(point);
        margins.addRow({fs::TableWriter::num(m * 100.0, 0),
                        fs::TableWriter::num(
                            set.binning.goldenFraction() * 100.0, 1)});
    }
    std::cout << "\nGolden-run fraction vs binning margin (CB-2K-GEMM; "
                 "tighter margins discard noise-displaced runs):\n";
    margins.print(std::cout);
    return 0;
}
